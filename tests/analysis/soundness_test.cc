// Soundness of the static gas bounds: for every function the protocol
// driver actually executes on the interpreter, the analyzer's worst-case
// bound must cover the gas the receipt reports. This is the acceptance test
// for the machine-verified light/heavy classification — a bound that ever
// undershoots reality would let a "light" function blow the block gas limit
// in production.

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "analysis/analyzer.h"
#include "chain/blockchain.h"
#include "contracts/betting.h"
#include "contracts/synthetic.h"
#include "crypto/keccak.h"
#include "crypto/secp256k1.h"

namespace onoff::analysis {
namespace {

using chain::Blockchain;
using contracts::Ether;
using secp256k1::PrivateKey;

// Execution gas as the analyzer models it: the receipt total minus the
// intrinsic (21000 + calldata + creation) charge. Refunds can push the
// receipt below the intrinsic cost, in which case execution is covered by
// any bound.
uint64_t MeasuredExecGas(const chain::Receipt& receipt, const Bytes& data,
                         bool is_create) {
  chain::Transaction probe;
  if (!is_create) probe.to = Address();
  probe.data = data;
  uint64_t intrinsic = probe.IntrinsicGas();
  return receipt.gas_used > intrinsic ? receipt.gas_used - intrinsic : 0;
}

class AnalysisSoundnessTest : public ::testing::Test {
 protected:
  AnalysisSoundnessTest()
      : alice_(PrivateKey::FromSeed("alice")),
        bob_(PrivateKey::FromSeed("bob")) {
    chain_.FundAccount(alice_.EthAddress(), Ether(50));
    chain_.FundAccount(bob_.EthAddress(), Ether(50));

    uint64_t now = chain_.Now();
    config_.alice = alice_.EthAddress();
    config_.bob = bob_.EthAddress();
    config_.deposit_amount = Ether(1);
    config_.t1 = now + 100;
    config_.t2 = now + 200;
    config_.t3 = now + 300;

    offchain_.alice = alice_.EthAddress();
    offchain_.bob = bob_.EthAddress();
    offchain_.secret_alice = U256(0xa11ce);
    offchain_.secret_bob = U256(0xb0b);
    offchain_.reveal_iterations = 10;
  }

  // Executes a call and asserts the dispatch-recovered bound for the
  // selector covers what the interpreter actually charged.
  chain::Receipt CallCovered(const AnalysisReport& report,
                             const PrivateKey& from, const Address& to,
                             const Bytes& calldata, const U256& value = U256(),
                             uint64_t gas = 3'000'000) {
    auto receipt = chain_.Execute(from, to, value, calldata, gas);
    EXPECT_TRUE(receipt.ok()) << receipt.status().ToString();
    if (!receipt.ok()) return chain::Receipt{};
    EXPECT_TRUE(receipt->success);
    EXPECT_GE(calldata.size(), 4u);
    uint32_t selector = (uint32_t{calldata[0]} << 24) |
                        (uint32_t{calldata[1]} << 16) |
                        (uint32_t{calldata[2]} << 8) | uint32_t{calldata[3]};
    const FunctionReport* fn = nullptr;
    for (const FunctionReport& f : report.functions) {
      if (f.selector == selector) fn = &f;
    }
    EXPECT_NE(fn, nullptr) << "selector not recovered from dispatch";
    if (fn != nullptr) {
      uint64_t measured = MeasuredExecGas(*receipt, calldata, false);
      EXPECT_TRUE(fn->gas_bound.Covers(measured))
          << fn->name << ": static bound " << fn->gas_bound.ToString()
          << " < measured " << measured;
    }
    return *receipt;
  }

  // Deploys init code and asserts DeployGasBound covers the receipt.
  Address DeployCovered(const Bytes& init, const AnalysisOptions& options) {
    DeploymentReport report = AnalyzeDeployment(init, options);
    EXPECT_FALSE(report.HasErrors());
    auto receipt = chain_.Execute(alice_, std::nullopt, U256(), init,
                                  6'000'000);
    EXPECT_TRUE(receipt.ok()) << receipt.status().ToString();
    if (!receipt.ok()) return Address();
    EXPECT_TRUE(receipt->success);
    uint64_t measured = MeasuredExecGas(*receipt, init, true);
    EXPECT_TRUE(report.DeployGasBound().Covers(measured))
        << "deploy bound " << report.DeployGasBound().ToString()
        << " < measured " << measured;
    return receipt->contract_address;
  }

  Result<AnalysisReport> AnalyzeRuntime(Result<Bytes> runtime,
                                        const AnalysisOptions& options = {}) {
    ONOFF_RETURN_NOT_OK(runtime.status());
    AnalysisReport report = AnalyzeProgram(*runtime, options);
    if (report.HasErrors()) {
      return Status::AnalysisRejected(report.FirstError());
    }
    return report;
  }

  Blockchain chain_;
  PrivateKey alice_;
  PrivateKey bob_;
  contracts::BettingConfig config_;
  contracts::OffchainConfig offchain_;
};

TEST_F(AnalysisSoundnessTest, BettingHonestPathWithinStaticBounds) {
  auto report = AnalyzeRuntime(contracts::BuildOnChainRuntime(config_));
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  auto init = contracts::BuildOnChainInit(config_);
  ASSERT_TRUE(init.ok());
  Address contract = DeployCovered(*init, {});

  CallCovered(*report, alice_, contract, contracts::DepositCalldata(),
              Ether(1));
  CallCovered(*report, bob_, contract, contracts::DepositCalldata(), Ether(1));
  chain_.AdvanceTimeTo(config_.t2);
  CallCovered(*report, alice_, contract, contracts::ReassignCalldata());
}

TEST_F(AnalysisSoundnessTest, BettingRefundPathsWithinStaticBounds) {
  auto report = AnalyzeRuntime(contracts::BuildOnChainRuntime(config_));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto init = contracts::BuildOnChainInit(config_);
  ASSERT_TRUE(init.ok());
  Address contract = DeployCovered(*init, {});

  CallCovered(*report, alice_, contract, contracts::DepositCalldata(),
              Ether(1));
  CallCovered(*report, alice_, contract, contracts::RefundRoundOneCalldata());
  // Deposit again so round two has something to refund.
  CallCovered(*report, alice_, contract, contracts::DepositCalldata(),
              Ether(1));
  chain_.AdvanceTimeTo(config_.t1);
  CallCovered(*report, alice_, contract, contracts::RefundRoundTwoCalldata());
}

TEST_F(AnalysisSoundnessTest, BettingDisputePathWithinStaticBounds) {
  auto onchain = AnalyzeRuntime(contracts::BuildOnChainRuntime(config_));
  ASSERT_TRUE(onchain.ok()) << onchain.status().ToString();
  auto offchain = AnalyzeRuntime(contracts::BuildOffChainRuntime(offchain_));
  ASSERT_TRUE(offchain.ok()) << offchain.status().ToString();

  auto init = contracts::BuildOnChainInit(config_);
  ASSERT_TRUE(init.ok());
  Address contract = DeployCovered(*init, {});
  CallCovered(*onchain, alice_, contract, contracts::DepositCalldata(),
              Ether(1));
  CallCovered(*onchain, bob_, contract, contracts::DepositCalldata(),
              Ether(1));
  chain_.AdvanceTimeTo(config_.t3);

  auto offchain_init = contracts::BuildOffChainInit(offchain_);
  ASSERT_TRUE(offchain_init.ok());
  Hash32 digest = Keccak256(*offchain_init);
  auto sig_a = secp256k1::Sign(digest, alice_);
  auto sig_b = secp256k1::Sign(digest, bob_);
  ASSERT_TRUE(sig_a.ok() && sig_b.ok());
  Bytes dispute = contracts::DeployVerifiedInstanceCalldata(
      *offchain_init, sig_a->v, sig_a->r, sig_a->s, sig_b->v, sig_b->r,
      sig_b->s);
  // deployVerifiedInstance CREATEs: its static bound is ⊤, which trivially
  // covers — the point is that the analyzer never *under*-reports it as
  // bounded.
  chain::Receipt dispute_receipt =
      CallCovered(*onchain, bob_, contract, dispute, U256(), 6'000'000);
  Address instance = Address::FromWord(
      chain_.GetStorage(contract, U256(contracts::betting_slots::kDeployedAddr)));
  ASSERT_FALSE(instance.IsZero());
  EXPECT_GT(dispute_receipt.gas_used, 0u);

  CallCovered(*offchain, bob_, instance,
              contracts::ReturnDisputeResolutionCalldata(contract));
  EXPECT_EQ(chain_.GetStorage(contract,
                              U256(contracts::betting_slots::kResolved)),
            U256(1));
}

TEST_F(AnalysisSoundnessTest, BettingClassificationMachineChecked) {
  // The analyzer agrees with the paper's classification: every on-chain
  // entry point except the CREATE-ing dispute weapon is bounded under the
  // block gas limit, and the off-chain reveal logic is pure (cannot leak
  // private inputs into state).
  auto onchain = AnalyzeRuntime(contracts::BuildOnChainRuntime(config_));
  ASSERT_TRUE(onchain.ok()) << onchain.status().ToString();
  Bytes deploy_selector_probe = contracts::DeployVerifiedInstanceCalldata(
      Bytes{}, 0, U256(), U256(), 0, U256(), U256());
  uint32_t deploy_selector = (uint32_t{deploy_selector_probe[0]} << 24) |
                             (uint32_t{deploy_selector_probe[1]} << 16) |
                             (uint32_t{deploy_selector_probe[2]} << 8) |
                             uint32_t{deploy_selector_probe[3]};
  ASSERT_FALSE(onchain->functions.empty());
  for (const FunctionReport& f : onchain->functions) {
    if (f.selector == deploy_selector) {
      EXPECT_FALSE(f.gas_bound.bounded);
      continue;
    }
    EXPECT_TRUE(f.gas_bound.bounded) << f.name;
    EXPECT_LT(f.gas_bound.gas, 8'000'000u) << f.name;
  }

  auto offchain = AnalyzeRuntime(contracts::BuildOffChainRuntime(offchain_));
  ASSERT_TRUE(offchain.ok()) << offchain.status().ToString();
  Bytes winner_calldata = contracts::GetWinnerCalldata();
  uint32_t winner_selector = (uint32_t{winner_calldata[0]} << 24) |
                             (uint32_t{winner_calldata[1]} << 16) |
                             (uint32_t{winner_calldata[2]} << 8) |
                             uint32_t{winner_calldata[3]};
  bool found = false;
  for (const FunctionReport& f : offchain->functions) {
    if (f.selector != winner_selector) continue;
    found = true;
    // The heavy reveal loop is (correctly) unbounded and must not touch
    // state: that is the privacy guarantee the signature endorses.
    EXPECT_TRUE(f.has_loop);
    EXPECT_EQ(f.effects & effect::kStateLeakMask, 0u);
  }
  EXPECT_TRUE(found);
}

TEST_F(AnalysisSoundnessTest, SyntheticContractsWithinStaticBounds) {
  contracts::SyntheticConfig cfg;
  cfg.num_light = 2;
  cfg.num_heavy = 1;
  cfg.heavy_iterations = 5;

  auto whole = AnalyzeRuntime(contracts::BuildWholeRuntime(cfg));
  ASSERT_TRUE(whole.ok()) << whole.status().ToString();
  auto whole_init = contracts::BuildWholeInit(cfg);
  ASSERT_TRUE(whole_init.ok());
  Address whole_addr = DeployCovered(*whole_init, {});
  for (int i = 0; i < cfg.num_light; ++i) {
    CallCovered(*whole, alice_, whole_addr, contracts::LightCalldata(i));
  }
  CallCovered(*whole, alice_, whole_addr, contracts::HeavyCalldata(0));

  auto hybrid = AnalyzeRuntime(contracts::BuildHybridOnChainRuntime(cfg));
  ASSERT_TRUE(hybrid.ok()) << hybrid.status().ToString();
  auto hybrid_init = contracts::BuildHybridOnChainInit(cfg);
  ASSERT_TRUE(hybrid_init.ok());
  Address hybrid_addr = DeployCovered(*hybrid_init, {});
  for (int i = 0; i < cfg.num_light; ++i) {
    chain::Receipt r = CallCovered(*hybrid, alice_, hybrid_addr,
                                   contracts::LightCalldata(i));
    EXPECT_GT(r.gas_used, 0u);
  }
  CallCovered(*hybrid, alice_, hybrid_addr,
              contracts::SubmitResultCalldata(
                  0, contracts::NativeHeavyResult(0, cfg.heavy_iterations)));
  // Every hybrid on-chain entry point is statically bounded — the split
  // moved all unbounded computation off-chain.
  ASSERT_FALSE(hybrid->functions.empty());
  for (const FunctionReport& f : hybrid->functions) {
    EXPECT_TRUE(f.gas_bound.bounded) << f.name;
  }
}

}  // namespace
}  // namespace onoff::analysis
