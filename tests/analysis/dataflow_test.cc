// The storage-access / privacy-taint dataflow engine (DESIGN §12): the
// value-set domain, per-selector access summaries, the taint lattice and
// its ANA13–ANA18 diagnostics, the cached-decode layer (DecodedCode must
// agree byte-for-byte with raw decoding), and the taint-leak regression
// corpus — each entry rejected by the pre-signing audit with its expected
// diagnostic code.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "analysis/access_summary.h"
#include "analysis/analyzer.h"
#include "analysis/cfg.h"
#include "analysis/taint.h"
#include "easm/assembler.h"
#include "evm/opcodes.h"
#include "onoff/signed_copy.h"

namespace onoff::analysis {
namespace {

Bytes Asm(const std::string& src) {
  auto code = easm::Assemble(src);
  EXPECT_TRUE(code.ok()) << code.status().ToString();
  return code.ok() ? *code : Bytes{};
}

// A one-function selector dispatcher in the exact shape our codegen emits.
Bytes Dispatcher(const std::string& body) {
  return Asm(
      "PUSH1 0x00 CALLDATALOAD PUSH1 0xe0 SHR\n"
      "DUP1 PUSH4 0xaabbccdd EQ PUSH @f JUMPI\n"
      "PUSH1 0x00 PUSH1 0x00 REVERT\n"
      "f:\nPOP\n" +
      body + "\nSTOP\n");
}

bool HasCode(const AnalysisReport& report, DiagCode code) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == code) return true;
  }
  return false;
}

// ---- ValueSet ------------------------------------------------------------

TEST(ValueSetTest, JoinWidensPastMaxValues) {
  ValueSet v = ValueSet::Of(U256(1));
  for (uint64_t i = 2; i <= ValueSet::kMaxValues; ++i) {
    v.Join(ValueSet::Of(U256(i)));
  }
  EXPECT_FALSE(v.top);
  EXPECT_EQ(v.values.size(), ValueSet::kMaxValues);
  v.Join(ValueSet::Of(U256(99)));
  EXPECT_TRUE(v.top);
  EXPECT_TRUE(v.values.empty());
}

TEST(ValueSetTest, JoinDeduplicatesAndSorts) {
  ValueSet v = ValueSet::Of(U256(7));
  v.Join(ValueSet::Of(U256(3)));
  v.Join(ValueSet::Of(U256(7)));
  ASSERT_EQ(v.values.size(), 2u);
  EXPECT_EQ(v.values[0], U256(3));
  EXPECT_EQ(v.values[1], U256(7));
}

TEST(ValueSetTest, EvalBinaryFoldsLikeTheInterpreter) {
  // ADD binds `a` to the first-popped operand; for ADD the order is
  // irrelevant, for SUB it is the whole point: SUB computes a - b.
  ValueSet sum = EvalBinary(static_cast<uint8_t>(evm::Opcode::ADD),
                            ValueSet::Of(U256(2)), ValueSet::Of(U256(40)));
  ASSERT_TRUE(sum.IsConstant());
  EXPECT_EQ(sum.Constant(), U256(42));

  ValueSet diff = EvalBinary(static_cast<uint8_t>(evm::Opcode::SUB),
                             ValueSet::Of(U256(50)), ValueSet::Of(U256(8)));
  ASSERT_TRUE(diff.IsConstant());
  EXPECT_EQ(diff.Constant(), U256(42));
}

TEST(ValueSetTest, EvalBinaryCartesianProductAndTop) {
  ValueSet a = ValueSet::Of(U256(1));
  a.Join(ValueSet::Of(U256(2)));
  ValueSet b = ValueSet::Of(U256(10));
  b.Join(ValueSet::Of(U256(20)));
  ValueSet sum = EvalBinary(static_cast<uint8_t>(evm::Opcode::ADD), a, b);
  ASSERT_FALSE(sum.top);
  EXPECT_EQ(sum.values, (std::vector<U256>{U256(11), U256(12), U256(21),
                                           U256(22)}));
  // One ⊤ operand poisons the result.
  EXPECT_TRUE(
      EvalBinary(static_cast<uint8_t>(evm::Opcode::ADD), a, ValueSet::Top())
          .top);
}

TEST(ValueSetTest, EvalUnaryIszero) {
  ValueSet v = ValueSet::Of(U256(0));
  v.Join(ValueSet::Of(U256(5)));
  ValueSet r = EvalUnary(static_cast<uint8_t>(evm::Opcode::ISZERO), v);
  ASSERT_FALSE(r.top);
  EXPECT_EQ(r.values, (std::vector<U256>{U256(0), U256(1)}));
}

// ---- Taint lattice -------------------------------------------------------

TEST(TaintTest, ChainAndEscalation) {
  EXPECT_EQ(JoinTaint(Taint::kClean, Taint::kPrivate), Taint::kPrivate);
  EXPECT_EQ(JoinTaint(Taint::kSelectorWord, Taint::kClean),
            Taint::kSelectorWord);
  EXPECT_EQ(Escalate(Taint::kSelectorWord), Taint::kPrivate);
  EXPECT_EQ(Escalate(Taint::kClean), Taint::kClean);
}

TEST(TaintTest, SlotTaintedCoversTopKeys) {
  TaintEnv env;
  env.storage.insert(U256(7));
  EXPECT_TRUE(env.SlotTainted(ValueSet::Of(U256(7))));
  EXPECT_FALSE(env.SlotTainted(ValueSet::Of(U256(8))));
  // A ⊤ key may alias any tainted slot.
  EXPECT_TRUE(env.SlotTainted(ValueSet::Top()));
  env.storage.clear();
  EXPECT_FALSE(env.SlotTainted(ValueSet::Top()));
  env.storage_any = true;
  EXPECT_TRUE(env.SlotTainted(ValueSet::Of(U256(1))));
}

// ---- Access summaries ----------------------------------------------------

TEST(AccessSummaryTest, ConstantKeysYieldExactSlotSets) {
  AnalysisReport report = AnalyzeProgram(Dispatcher(
      "PUSH1 0x64 SLOAD PUSH1 0x01 ADD PUSH1 0x65 SSTORE"));
  ASSERT_FALSE(report.HasErrors()) << report.FirstError();
  ASSERT_EQ(report.functions.size(), 1u);
  const AccessSummary& access = report.functions[0].access;
  EXPECT_FALSE(access.reads.top);
  EXPECT_FALSE(access.writes.top);
  EXPECT_EQ(access.reads.slots, std::set<U256>{U256(0x64)});
  EXPECT_EQ(access.writes.slots, std::set<U256>{U256(0x65)});
  EXPECT_TRUE(access.StaticallySchedulable());
  // The program-wide summary covers the selector too.
  EXPECT_TRUE(report.program_access.reads.slots.count(U256(0x64)) > 0);
}

TEST(AccessSummaryTest, ValueSetTracksKeysThroughArithmetic) {
  // Key = 0x60 + 0x04: constant-propagated through ADD.
  AnalysisReport report =
      AnalyzeProgram(Dispatcher("PUSH1 0x2a PUSH1 0x04 PUSH1 0x60 ADD SSTORE"));
  ASSERT_FALSE(report.HasErrors()) << report.FirstError();
  ASSERT_EQ(report.functions.size(), 1u);
  EXPECT_EQ(report.functions[0].access.writes.slots,
            std::set<U256>{U256(0x64)});
}

TEST(AccessSummaryTest, CalldataKeyIsTopAndNotSchedulable) {
  AnalysisReport report = AnalyzeProgram(
      Dispatcher("PUSH1 0x2a PUSH1 0x04 CALLDATALOAD SSTORE"));
  ASSERT_FALSE(report.HasErrors()) << report.FirstError();
  ASSERT_EQ(report.functions.size(), 1u);
  EXPECT_TRUE(report.functions[0].access.writes.top);
  EXPECT_FALSE(report.functions[0].access.StaticallySchedulable());
}

TEST(AccessSummaryTest, CallsAndExternalReadsBlockScheduling) {
  AnalysisReport call_report = AnalyzeProgram(Dispatcher(
      "PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 "
      "PUSH1 0x42 PUSH1 0x00 CALL POP"));
  ASSERT_EQ(call_report.functions.size(), 1u);
  EXPECT_FALSE(call_report.functions[0].access.StaticallySchedulable());

  AnalysisReport bal_report =
      AnalyzeProgram(Dispatcher("PUSH1 0x42 BALANCE POP"));
  ASSERT_EQ(bal_report.functions.size(), 1u);
  EXPECT_TRUE(bal_report.functions[0].access.external_reads);
  EXPECT_FALSE(bal_report.functions[0].access.StaticallySchedulable());
}

TEST(AccessSummaryTest, UnresolvedKeyWarnsForPolicyFunctions) {
  AnalysisOptions options;
  options.light_selectors.push_back(0xaabbccdd);
  AnalysisReport report = AnalyzeProgram(
      Dispatcher("PUSH1 0x2a PUSH1 0x04 CALLDATALOAD SSTORE"), options);
  // ANA13 is a warning: the function still lints clean overall.
  EXPECT_FALSE(report.HasErrors()) << report.FirstError();
  EXPECT_TRUE(HasCode(report, DiagCode::kUnresolvedStorageKey));
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == DiagCode::kUnresolvedStorageKey) {
      EXPECT_EQ(d.selector, int64_t{0xaabbccdd});
    }
  }
}

TEST(AccessSummaryTest, CacheReturnsSameSummaryObject) {
  Bytes code = Dispatcher("PUSH1 0x2a PUSH1 0x64 SSTORE");
  Hash32 hash = Keccak256(code);
  auto first = AccessSummaryCache::Global().Get(hash, code);
  auto second = AccessSummaryCache::Global().Get(hash, code);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), second.get());
  ASSERT_EQ(first->selectors.size(), 1u);
  EXPECT_NE(first->ForSelector(0xaabbccdd), nullptr);
  EXPECT_EQ(first->ForSelector(0x11111111), nullptr);
}

// ---- Cached decode (DecodedCode vs raw decode) ---------------------------

TEST(DecodedCodeTest, AgreesWithRawDecodeOnRandomPrograms) {
  std::mt19937_64 rng(0xdec0de);
  for (int trial = 0; trial < 64; ++trial) {
    Bytes code(1 + rng() % 256);
    for (uint8_t& b : code) b = static_cast<uint8_t>(rng());
    DecodedCode decoded(code);
    ASSERT_EQ(decoded.jumpdests(), ComputeJumpdests(code));
    for (uint32_t pc = 0; pc < code.size(); ++pc) {
      Instruction raw = DecodeInstruction(code, pc);
      Instruction cached = decoded.At(pc);
      ASSERT_EQ(cached.pc, raw.pc);
      ASSERT_EQ(cached.opcode, raw.opcode);
      ASSERT_EQ(cached.immediate_size, raw.immediate_size);
      ASSERT_EQ(cached.truncated, raw.truncated);
      ASSERT_EQ(cached.immediate, raw.immediate)
          << "trial " << trial << " pc " << pc << ": "
          << InstructionToString(raw);
    }
  }
}

TEST(DecodedCodeTest, BlockMatchesRawDecodeBlock) {
  Bytes code = Dispatcher("PUSH1 0x2a PUSH1 0x64 SSTORE");
  DecodedCode decoded(code);
  BasicBlock raw = DecodeBlock(code, 0);
  BasicBlock cached = decoded.Block(0);
  ASSERT_EQ(cached.instructions.size(), raw.instructions.size());
  EXPECT_EQ(cached.end_pc, raw.end_pc);
  EXPECT_EQ(cached.effects, raw.effects);
  for (size_t i = 0; i < raw.instructions.size(); ++i) {
    EXPECT_EQ(cached.instructions[i].immediate, raw.instructions[i].immediate);
  }
}

// ---- Taint-leak regression corpus ----------------------------------------

struct LeakEntry {
  const char* name;
  std::string body;
  DiagCode expected;
};

// Every entry is a declared-private function leaking private calldata into
// a public sink; the audit must reject it with the exact ANA code.
std::vector<LeakEntry> LeakCorpus() {
  return {
      // Private argument word stored to the contract's public storage.
      {"private-to-sstore", "PUSH1 0x04 CALLDATALOAD PUSH1 0x64 SSTORE",
       DiagCode::kTaintedStore},
      // Private argument used as the *key*: the slot choice leaks it.
      {"private-as-store-key", "PUSH1 0x2a PUSH1 0x04 CALLDATALOAD SSTORE",
       DiagCode::kTaintedStore},
      // Private word emitted as a log topic.
      {"private-to-log-topic",
       "PUSH1 0x04 CALLDATALOAD PUSH1 0x00 PUSH1 0x00 LOG1",
       DiagCode::kTaintedLog},
      // Private word staged through memory, then logged as data.
      {"private-to-log-data",
       "PUSH1 0x04 CALLDATALOAD PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 LOG0",
       DiagCode::kTaintedLog},
      // Private word forwarded as a CALL's value argument.
      {"private-to-call-value",
       "PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 "
       "PUSH1 0x04 CALLDATALOAD PUSH1 0x42 PUSH2 0xffff CALL POP",
       DiagCode::kTaintedCall},
      // Private word in memory reaching CALL argument bytes.
      {"private-to-call-args",
       "PUSH1 0x04 CALLDATALOAD PUSH1 0x00 MSTORE "
       "PUSH1 0x00 PUSH1 0x00 PUSH1 0x20 PUSH1 0x00 PUSH1 0x00 "
       "PUSH1 0x42 PUSH2 0xffff CALL POP",
       DiagCode::kTaintedCall},
      // Private word returned verbatim.
      {"private-to-return",
       "PUSH1 0x04 CALLDATALOAD PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 "
       "RETURN",
       DiagCode::kTaintedReturn},
      // Laundered through storage: written to a slot, read back, stored to
      // another slot — the env's tainted-slot set carries it across.
      {"private-laundered-through-storage",
       "PUSH1 0x04 CALLDATALOAD PUSH1 0x70 SSTORE "
       "PUSH1 0x70 SLOAD PUSH1 0x71 SSTORE",
       DiagCode::kTaintedStore},
      // Laundered through memory and SHA3.
      {"private-through-sha3",
       "PUSH1 0x04 CALLDATALOAD PUSH1 0x00 MSTORE "
       "PUSH1 0x20 PUSH1 0x00 SHA3 PUSH1 0x64 SSTORE",
       DiagCode::kTaintedStore},
  };
}

AnalysisOptions PrivateOptions() {
  AnalysisOptions options;
  options.private_selectors.push_back(0xaabbccdd);
  options.function_names[0xaabbccdd] = "secretFn()";
  return options;
}

TEST(TaintCorpusTest, EveryLeakRejectedWithExpectedCode) {
  for (const LeakEntry& entry : LeakCorpus()) {
    SCOPED_TRACE(entry.name);
    AnalysisReport report =
        AnalyzeProgram(Dispatcher(entry.body), PrivateOptions());
    EXPECT_TRUE(report.HasErrors());
    EXPECT_TRUE(HasCode(report, entry.expected))
        << "expected " << DiagCodeId(entry.expected) << ", first: "
        << report.FirstError();
    // The taint sink is the *first* error — the most actionable finding a
    // rejection reports — and it is attributed to the private selector.
    for (const Diagnostic& d : report.diagnostics) {
      if (!IsError(d.code)) continue;
      EXPECT_EQ(d.code, entry.expected) << FormatDiagnostic(d);
      EXPECT_EQ(d.selector, int64_t{0xaabbccdd});
      break;
    }
  }
}

TEST(TaintCorpusTest, SignedCopyRefusesEveryLeak) {
  auto key = secp256k1::PrivateKey::FromSeed("taint-corpus-signer");
  for (const LeakEntry& entry : LeakCorpus()) {
    SCOPED_TRACE(entry.name);
    core::SignedCopy copy(Dispatcher(entry.body));
    copy.set_audit_options(PrivateOptions());
    Status status = copy.AddSignature(key);
    EXPECT_EQ(status.code(), StatusCode::kAnalysisRejected)
        << status.ToString();
    EXPECT_EQ(copy.signature_count(), 0u);
    EXPECT_NE(status.message().find(DiagCodeId(entry.expected)),
              std::string::npos)
        << status.ToString();
  }
}

TEST(TaintCorpusTest, ImplicitFlowWarnsWithoutRejectingOnItsOwn) {
  // A branch on private data guarding a clean-operand SSTORE: the explicit
  // taint rules see clean operands, but the store's *execution* correlates
  // with the secret. ANA18 flags it as a warning; the store itself is still
  // an ANA12 state-effect error for a private function.
  AnalysisReport report = AnalyzeProgram(
      Dispatcher("PUSH1 0x04 CALLDATALOAD PUSH @t JUMPI PUSH1 0x01 PUSH1 0x64 "
                 "SSTORE t: JUMPDEST"),
      PrivateOptions());
  EXPECT_TRUE(HasCode(report, DiagCode::kTaintedBranchEffect));
  EXPECT_FALSE(IsError(DiagCode::kTaintedBranchEffect));
  EXPECT_TRUE(HasCode(report, DiagCode::kPrivateStateLeak));
}

TEST(TaintCorpusTest, SelectorDispatchStaysClean) {
  // The dispatch idiom itself — CALLDATALOAD(0), SHR 224, EQ-cascade — must
  // not be flagged: the selector bytes are public by construction. A
  // private function with no sinks lints clean.
  AnalysisReport report = AnalyzeProgram(
      Dispatcher("PUSH1 0x64 SLOAD PUSH1 0x01 ADD POP"), PrivateOptions());
  EXPECT_FALSE(report.HasErrors()) << report.FirstError();
  for (const Diagnostic& d : report.diagnostics) {
    EXPECT_NE(d.code, DiagCode::kTaintedStore);
    EXPECT_NE(d.code, DiagCode::kTaintedReturn);
  }
}

}  // namespace
}  // namespace onoff::analysis
