// Differential fuzz for the static access analyzer (DESIGN §12): the
// dynamic AccessSet recorder is the soundness oracle. For randomized
// template programs we assert static summary ⊇ dynamic footprint, both
// directly at the EVM level (SpeculativeState overlay vs the analyzer's
// slot sets) and at the chain level (check_static_containment audits every
// known hint against the recorded overlay and must count zero violations).
// The betting-protocol drivers run every settlement path on a parallel
// chain with static scheduling + containment checking enabled.

#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <string>
#include <vector>

#include "analysis/access_summary.h"
#include "chain/blockchain.h"
#include "easm/assembler.h"
#include "evm/evm.h"
#include "evm/opcodes.h"
#include "onoff/protocol.h"
#include "state/speculative_state.h"
#include "state/world_state.h"

namespace onoff {
namespace {

Address Addr(uint8_t tag) {
  std::array<uint8_t, 20> raw{};
  raw[19] = tag;
  return Address(raw);
}

Bytes Asm(const std::string& src) {
  auto code = easm::Assemble(src);
  EXPECT_TRUE(code.ok()) << code.status().ToString();
  return code.ok() ? *code : Bytes{};
}

std::string Hex2(unsigned v) {
  static const char* digits = "0123456789abcdef";
  std::string s = "0x";
  s += digits[(v >> 4) & 0xf];
  s += digits[v & 0xf];
  return s;
}

std::string HexSelector(uint32_t sel) {
  static const char* digits = "0123456789abcdef";
  std::string s = "0x";
  for (int shift = 28; shift >= 0; shift -= 4) s += digits[(sel >> shift) & 0xf];
  return s;
}

// One random function body. Fragment kinds 0-3 have fully constant storage
// keys (statically schedulable); 4-6 inject ⊤ keys or external reads so the
// analyzer must fall back, exercising the unknown-hint path.
std::string RandomBody(std::mt19937& rng) {
  std::uniform_int_distribution<int> frag_count(1, 3);
  // Bias toward resolvable bodies: ⊤/external fragments at ~1/8 each.
  std::uniform_int_distribution<int> pick(0, 15);
  std::uniform_int_distribution<int> slot(0, 11);
  std::string body;
  int n = frag_count(rng);
  for (int i = 0; i < n; ++i) {
    int kind = pick(rng);
    unsigned k = static_cast<unsigned>(slot(rng));
    switch (kind) {
      case 12:
      case 13:  // calldata-keyed read: unresolvable key
        body += "PUSH1 0x04 CALLDATALOAD SLOAD POP\n";
        break;
      case 14:  // calldata-keyed write
        body += "PUSH1 0x2a PUSH1 0x04 CALLDATALOAD SSTORE\n";
        break;
      case 15:  // external state read
        body += "CALLER BALANCE POP\n";
        break;
      default:
        switch (kind % 4) {
          case 0:  // constant-key load
            body += "PUSH1 " + Hex2(k) + " SLOAD POP\n";
            break;
          case 1:  // constant-key store
            body += "PUSH1 " + Hex2(0x40 + k) + " PUSH1 " + Hex2(k) +
                    " SSTORE\n";
            break;
          case 2:  // read-modify-write of one slot
            body += "PUSH1 " + Hex2(k) + " SLOAD PUSH1 0x01 ADD PUSH1 " +
                    Hex2(k) + " SSTORE\n";
            break;
          default:  // key built by constant arithmetic
            body += "PUSH1 " + Hex2(k) + " PUSH1 0x20 ADD SLOAD POP\n";
            break;
        }
        break;
    }
  }
  return body;
}

struct RandomProgram {
  Bytes code;
  std::vector<uint32_t> selectors;
};

// A multi-function contract in the codegen dispatch shape, with randomized
// bodies behind each selector.
RandomProgram MakeRandomProgram(std::mt19937& rng) {
  std::uniform_int_distribution<int> fn_count(1, 3);
  std::uniform_int_distribution<uint32_t> sel(0x10000000u, 0xffffffffu);
  RandomProgram p;
  int n = fn_count(rng);
  std::string src = "PUSH1 0x00 CALLDATALOAD PUSH1 0xe0 SHR\n";
  for (int i = 0; i < n; ++i) {
    p.selectors.push_back(sel(rng));
    src += "DUP1 PUSH4 " + HexSelector(p.selectors.back()) + " EQ PUSH @f" +
           std::to_string(i) + " JUMPI\n";
  }
  src += "PUSH1 0x00 PUSH1 0x00 REVERT\n";
  for (int i = 0; i < n; ++i) {
    src += "f" + std::to_string(i) + ":\nPOP\n" + RandomBody(rng) + "STOP\n";
  }
  p.code = Asm(src);
  return p;
}

// Init code returning `runtime` verbatim, built byte-by-byte:
//   PUSH2 len PUSH1 14 PUSH1 0 CODECOPY PUSH2 len PUSH1 0 RETURN <runtime>
Bytes InitCodeFor(const Bytes& runtime) {
  EXPECT_LT(runtime.size(), 0x10000u);
  auto push2 = [](Bytes& out, size_t v) {
    out.push_back(static_cast<uint8_t>(evm::Opcode::PUSH1) + 1);  // PUSH2
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v & 0xff));
  };
  auto push1 = [](Bytes& out, uint8_t v) {
    out.push_back(static_cast<uint8_t>(evm::Opcode::PUSH1));
    out.push_back(v);
  };
  Bytes init;
  push2(init, runtime.size());
  push1(init, 14);  // offset of <runtime> below
  push1(init, 0);
  init.push_back(static_cast<uint8_t>(evm::Opcode::CODECOPY));
  push2(init, runtime.size());
  push1(init, 0);
  init.push_back(static_cast<uint8_t>(evm::Opcode::RETURN));
  EXPECT_EQ(init.size(), 14u);
  init.insert(init.end(), runtime.begin(), runtime.end());
  return init;
}

Bytes CallDataFor(uint32_t selector, const U256& arg) {
  Bytes data;
  data.push_back(static_cast<uint8_t>(selector >> 24));
  data.push_back(static_cast<uint8_t>(selector >> 16));
  data.push_back(static_cast<uint8_t>(selector >> 8));
  data.push_back(static_cast<uint8_t>(selector));
  auto word = arg.ToBigEndian();
  data.insert(data.end(), word.begin(), word.end());
  return data;
}

// ---- EVM-level differential: static slot sets vs the dynamic recorder ----

// Expected static footprint of one call, mirroring what the chain layer's
// BuildAccessHint derives from a schedulable summary. Intrinsic account
// fields are included generously for both endpoints; the differential
// content is the storage-slot containment.
void BuildExpected(const Address& caller, const Address& to,
                   const analysis::AccessSummary& summary,
                   state::AccessSet* reads, state::AccessSet* writes) {
  namespace key = state::access_key;
  for (const Address& a : {caller, to}) {
    reads->keys.insert(key::Existence(a));
    reads->keys.insert(key::Balance(a));
    reads->keys.insert(key::Nonce(a));
    reads->keys.insert(key::Code(a));
    writes->keys.insert(key::Balance(a));
  }
  for (const U256& slot : summary.reads.slots) {
    reads->keys.insert(key::Slot(to, slot));
  }
  for (const U256& slot : summary.writes.slots) {
    // SSTORE loads the slot first (original-value gas accounting), so every
    // static write slot is also a static read slot — same rule as the hint
    // builder.
    reads->keys.insert(key::Slot(to, slot));
    writes->keys.insert(key::Slot(to, slot));
  }
}

TEST(AccessFuzzTest, StaticSummaryCoversDynamicFootprint) {
  std::mt19937 rng(0x5eed5107);
  const Address caller = Addr(0xaa);
  const Address to = Addr(0xcc);
  std::uniform_int_distribution<int> undeclared(0, 7);
  std::uniform_int_distribution<uint64_t> arg(0, 1u << 20);
  int checked = 0;
  for (int iter = 0; iter < 48; ++iter) {
    RandomProgram program = MakeRandomProgram(rng);
    ASSERT_FALSE(program.code.empty());

    state::WorldState world;
    world.AddBalance(caller, U256(1'000'000'000));
    world.SetCode(to, program.code);
    std::shared_ptr<const analysis::ProgramAccess> access =
        analysis::AccessSummaryCache::Global().Get(world.GetCodeHash(to),
                                                   program.code);

    // Mix declared selectors with undeclared ones (which hit the REVERT
    // fallthrough and must still be covered by the program summary).
    uint32_t selector = undeclared(rng) == 0
                            ? 0xdeadbeefu
                            : program.selectors[iter % program.selectors.size()];
    const analysis::AccessSummary* summary = access->ForSelector(selector);
    if (summary == nullptr) summary = &access->program;
    if (!summary->StaticallySchedulable()) continue;  // chain falls back to ⊤

    state::SpeculativeState overlay(world);
    evm::BlockContext block;
    block.number = 7;
    block.coinbase = Addr(0xee);
    evm::TxContext txctx;
    txctx.origin = caller;
    txctx.gas_price = U256(1);
    evm::Evm evm(&overlay, block, txctx);
    evm::CallMessage msg;
    msg.caller = caller;
    msg.to = to;
    msg.data = CallDataFor(selector, U256(arg(rng)));
    msg.gas = 200'000;
    evm.Call(msg);  // reverts are fine: partial footprints must still nest

    state::AccessSet expected_reads;
    state::AccessSet expected_writes;
    BuildExpected(caller, to, *summary, &expected_reads, &expected_writes);
    EXPECT_TRUE(expected_reads.Covers(overlay.reads()))
        << "iter " << iter << " selector " << HexSelector(selector)
        << ": dynamic read escaped the static summary "
        << summary->ToString();
    EXPECT_TRUE(expected_writes.Covers(overlay.writes()))
        << "iter " << iter << " selector " << HexSelector(selector)
        << ": dynamic write escaped the static summary "
        << summary->ToString();
    ++checked;
  }
  // The generator is biased toward resolvable bodies; make sure the loop
  // actually exercised the containment check.
  EXPECT_GE(checked, 16);
}

// ---- Chain-level fuzz: the containment oracle under real blocks ---------

const U256 kEther = U256(10).Exp(U256(18));

chain::ChainConfig ParallelStaticConfig() {
  chain::ChainConfig config;
  config.exec_mode = chain::ExecMode::kParallel;
  config.exec_workers = 4;
  // Replays every block serially and aborts on divergence.
  config.assert_parallel_equivalence = true;
  // Audit every known hint against the recorded dynamic overlay.
  config.check_static_containment = true;
  return config;
}

chain::Transaction SignedTx(const secp256k1::PrivateKey& key, uint64_t nonce,
                            std::optional<Address> to, const U256& value,
                            Bytes data, uint64_t gas_limit) {
  chain::Transaction tx;
  tx.nonce = nonce;
  tx.gas_price = U256(1);
  tx.gas_limit = gas_limit;
  tx.to = to;
  tx.value = value;
  tx.data = std::move(data);
  tx.Sign(key);
  return tx;
}

void SubmitMineAndCompare(chain::Blockchain& serial,
                          chain::Blockchain& parallel,
                          const std::vector<chain::Transaction>& txs) {
  for (const chain::Transaction& tx : txs) {
    ASSERT_TRUE(serial.SubmitTransaction(tx).ok());
    ASSERT_TRUE(parallel.SubmitTransaction(tx).ok());
  }
  const chain::Block& sb = serial.MineBlock();
  const chain::Block& pb = parallel.MineBlock();
  ASSERT_EQ(pb.transactions.size(), txs.size());
  EXPECT_EQ(sb.header.state_root, pb.header.state_root);
  EXPECT_EQ(sb.header.receipt_root, pb.header.receipt_root);
  EXPECT_EQ(sb.header.gas_used, pb.header.gas_used);
}

class ChainAccessFuzzTest : public ::testing::Test {
 protected:
  ChainAccessFuzzTest()
      : serial_(chain::ChainConfig()), parallel_(ParallelStaticConfig()) {
    for (int i = 0; i < 8; ++i) {
      keys_.push_back(
          secp256k1::PrivateKey::FromSeed("fuzz-key-" + std::to_string(i)));
      serial_.FundAccount(keys_.back().EthAddress(), kEther * U256(100));
      parallel_.FundAccount(keys_.back().EthAddress(), kEther * U256(100));
    }
  }

  Address Deploy(const Bytes& runtime, size_t key_index, uint64_t* nonce) {
    chain::Transaction deploy =
        SignedTx(keys_[key_index], (*nonce)++, std::nullopt, U256(),
                 InitCodeFor(runtime), 1'000'000);
    SubmitMineAndCompare(serial_, parallel_, {deploy});
    auto receipt = parallel_.GetReceipt(deploy.Hash());
    EXPECT_TRUE(receipt.ok() && receipt->success);
    EXPECT_EQ(parallel_.GetCode(receipt->contract_address), runtime);
    return receipt->contract_address;
  }

  chain::Blockchain serial_;
  chain::Blockchain parallel_;
  std::vector<secp256k1::PrivateKey> keys_;
};

TEST_F(ChainAccessFuzzTest, RandomizedBlocksNeverViolateHintContainment) {
  std::mt19937 rng(0xacce55);
  std::vector<uint64_t> nonces(keys_.size(), 0);

  std::vector<RandomProgram> programs;
  std::vector<Address> contracts;
  for (int i = 0; i < 3; ++i) {
    programs.push_back(MakeRandomProgram(rng));
    contracts.push_back(Deploy(programs.back().code, 0, &nonces[0]));
  }

  std::uniform_int_distribution<size_t> tx_count(3, 10);
  std::uniform_int_distribution<size_t> pick_key(0, keys_.size() - 1);
  std::uniform_int_distribution<size_t> pick_contract(0, contracts.size() - 1);
  std::uniform_int_distribution<int> pick_kind(0, 7);
  std::uniform_int_distribution<uint64_t> arg(0, 1u << 16);
  for (int block = 0; block < 6; ++block) {
    std::vector<chain::Transaction> txs;
    size_t n = tx_count(rng);
    for (size_t t = 0; t < n; ++t) {
      size_t k = pick_key(rng);
      int kind = pick_kind(rng);
      if (kind == 0) {  // plain transfer
        txs.push_back(SignedTx(keys_[k], nonces[k]++,
                               keys_[(k + 3) % keys_.size()].EthAddress(),
                               U256(17), {}, 21'000));
        continue;
      }
      size_t c = pick_contract(rng);
      // Mostly declared selectors, sometimes garbage (REVERT path).
      uint32_t selector =
          kind == 1 ? 0xdeadbeefu
                    : programs[c].selectors[t % programs[c].selectors.size()];
      txs.push_back(SignedTx(keys_[k], nonces[k]++, contracts[c], U256(),
                             CallDataFor(selector, U256(arg(rng))), 200'000));
    }
    SubmitMineAndCompare(serial_, parallel_, txs);
  }
  // The soundness headline: no dynamic access ever escaped a known hint.
  EXPECT_EQ(parallel_.parallel_stats().hint_violations, 0u);
  ASSERT_EQ(serial_.blocks().size(), parallel_.blocks().size());
  for (size_t i = 0; i < serial_.blocks().size(); ++i) {
    EXPECT_EQ(serial_.blocks()[i].Hash(), parallel_.blocks()[i].Hash())
        << "block " << i;
  }
}

TEST_F(ChainAccessFuzzTest, DisjointContractLeadersAreStaticallyClear) {
  // Two contracts, each half of the senders hammering one slot of its own
  // contract. Within a half the calls serialize (same slot), but the first
  // call against each contract reads nothing any earlier hint writes, so
  // exactly the two leaders are proven clear before the speculation wave.
  uint64_t nonce0 = 0;
  Bytes a = Asm(
      "PUSH1 0x00 CALLDATALOAD PUSH1 0xe0 SHR\n"
      "DUP1 PUSH4 0x11111111 EQ PUSH @f JUMPI\n"
      "PUSH1 0x00 PUSH1 0x00 REVERT\n"
      "f:\nPOP PUSH1 0x10 SLOAD PUSH1 0x01 ADD PUSH1 0x10 SSTORE STOP\n");
  Bytes b = Asm(
      "PUSH1 0x00 CALLDATALOAD PUSH1 0xe0 SHR\n"
      "DUP1 PUSH4 0x22222222 EQ PUSH @f JUMPI\n"
      "PUSH1 0x00 PUSH1 0x00 REVERT\n"
      "f:\nPOP PUSH1 0x20 SLOAD PUSH1 0x01 ADD PUSH1 0x20 SSTORE STOP\n");
  Address ca = Deploy(a, 0, &nonce0);
  Address cb = Deploy(b, 0, &nonce0);

  chain::ParallelExecStats before = parallel_.parallel_stats();
  std::vector<chain::Transaction> txs;
  for (size_t i = 0; i < keys_.size(); ++i) {
    uint64_t nonce = i == 0 ? nonce0 : 0;
    bool first_half = i < keys_.size() / 2;
    txs.push_back(SignedTx(keys_[i], nonce, first_half ? ca : cb, U256(),
                           CallDataFor(first_half ? 0x11111111u : 0x22222222u,
                                       U256(0)),
                           200'000));
  }
  SubmitMineAndCompare(serial_, parallel_, txs);

  const chain::ParallelExecStats& after = parallel_.parallel_stats();
  EXPECT_EQ(after.hint_violations, 0u);
  EXPECT_EQ(after.static_clear - before.static_clear, 2u);
  // The followers really do collide on their contract's slot.
  EXPECT_GT(after.conflicts - before.conflicts, 0u);
  EXPECT_EQ(parallel_.GetStorage(ca, U256(0x10)), U256(keys_.size() / 2));
  EXPECT_EQ(parallel_.GetStorage(cb, U256(0x20)), U256(keys_.size() / 2));
}

TEST_F(ChainAccessFuzzTest, PerSenderSlotsMakeTheWholeBlockStaticallyClear) {
  // One contract, eight selectors, each touching its own slot: the entire
  // block is provably conflict-free before execution.
  uint64_t nonce0 = 0;
  std::string src = "PUSH1 0x00 CALLDATALOAD PUSH1 0xe0 SHR\n";
  for (size_t i = 0; i < 8; ++i) {
    src += "DUP1 PUSH4 " + HexSelector(0x11110000u + static_cast<uint32_t>(i)) +
           " EQ PUSH @f" + std::to_string(i) + " JUMPI\n";
  }
  src += "PUSH1 0x00 PUSH1 0x00 REVERT\n";
  for (size_t i = 0; i < 8; ++i) {
    src += "f" + std::to_string(i) + ":\nPOP PUSH1 " + Hex2(0x50 + i) +
           " SLOAD PUSH1 0x01 ADD PUSH1 " + Hex2(0x50 + i) + " SSTORE STOP\n";
  }
  Address contract = Deploy(Asm(src), 0, &nonce0);

  chain::ParallelExecStats before = parallel_.parallel_stats();
  std::vector<chain::Transaction> txs;
  for (size_t i = 0; i < keys_.size(); ++i) {
    uint64_t nonce = i == 0 ? nonce0 : 0;
    txs.push_back(SignedTx(
        keys_[i], nonce, contract, U256(),
        CallDataFor(0x11110000u + static_cast<uint32_t>(i), U256(0)),
        200'000));
  }
  SubmitMineAndCompare(serial_, parallel_, txs);

  const chain::ParallelExecStats& after = parallel_.parallel_stats();
  EXPECT_EQ(after.hint_violations, 0u);
  EXPECT_EQ(after.conflicts - before.conflicts, 0u);
  EXPECT_EQ(after.static_clear - before.static_clear, keys_.size());
  for (size_t i = 0; i < keys_.size(); ++i) {
    EXPECT_EQ(parallel_.GetStorage(contract, U256(0x50 + i)), U256(1));
  }
}

TEST_F(ChainAccessFuzzTest, UnresolvableKeysFallBackToTheOptimisticPath) {
  // Calldata-keyed stores: the analyzer reports ⊤, hints stay unknown, and
  // the block must go through the dynamic conflict detector unchanged.
  uint64_t nonce0 = 0;
  Bytes runtime = Asm(
      "PUSH1 0x00 CALLDATALOAD PUSH1 0xe0 SHR\n"
      "DUP1 PUSH4 0x33333333 EQ PUSH @f JUMPI\n"
      "PUSH1 0x00 PUSH1 0x00 REVERT\n"
      "f:\nPOP PUSH1 0x2a PUSH1 0x04 CALLDATALOAD SSTORE STOP\n");
  Address contract = Deploy(runtime, 0, &nonce0);

  chain::ParallelExecStats before = parallel_.parallel_stats();
  std::vector<chain::Transaction> txs;
  for (size_t i = 0; i < 4; ++i) {
    uint64_t nonce = i == 0 ? nonce0 : 0;
    txs.push_back(SignedTx(keys_[i], nonce, contract, U256(),
                           CallDataFor(0x33333333u, U256(0x100 + i)),
                           200'000));
  }
  SubmitMineAndCompare(serial_, parallel_, txs);

  const chain::ParallelExecStats& after = parallel_.parallel_stats();
  EXPECT_EQ(after.static_clear - before.static_clear, 0u);
  EXPECT_EQ(after.hint_violations, 0u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(parallel_.GetStorage(contract, U256(0x100 + i)), U256(0x2a));
  }
}

// ---- Protocol drivers: every settlement path under static scheduling ----

TEST(ProtocolAccessFuzzTest, EveryProtocolPathRunsCleanUnderContainmentAudit) {
  using core::Behavior;
  using core::Settlement;
  struct Scenario {
    const char* name;
    Behavior loser;
    Settlement expected;
  };
  Behavior dishonest;
  dishonest.admit_loss = false;
  Behavior no_sign;
  no_sign.sign_offchain_copy = false;
  Behavior no_deposit;
  no_deposit.make_deposit = false;
  const Scenario scenarios[] = {
      {"honest", Behavior{}, Settlement::kOptimistic},
      {"dishonest-loser", dishonest, Settlement::kDisputed},
      {"refuses-to-sign", no_sign, Settlement::kAbortedUnsigned},
      {"missing-deposit", no_deposit, Settlement::kRefunded},
  };
  for (const Scenario& s : scenarios) {
    SCOPED_TRACE(s.name);
    auto alice = secp256k1::PrivateKey::FromSeed("alice");
    auto bob = secp256k1::PrivateKey::FromSeed("bob");
    chain::Blockchain chain(ParallelStaticConfig());
    chain.FundAccount(alice.EthAddress(), contracts::Ether(10));
    chain.FundAccount(bob.EthAddress(), contracts::Ether(10));
    core::MessageBus bus;
    contracts::OffchainConfig offchain;
    offchain.secret_alice = U256(0xa11ce);
    offchain.secret_bob = U256(0xb0b);
    offchain.reveal_iterations = 20;
    core::BettingProtocol protocol(&chain, &bus, alice, bob, offchain,
                                   contracts::Ether(1));
    auto report = protocol.Run(Behavior{}, s.loser);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->settlement, s.expected);
    EXPECT_TRUE(report->correct_payout);
    // No dynamic access on any driver path escaped a static hint.
    EXPECT_EQ(chain.parallel_stats().hint_violations, 0u);
  }
}

}  // namespace
}  // namespace onoff
