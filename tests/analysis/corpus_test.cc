// The negative corpus: known-bad bytecode that the pre-signing audit must
// reject with a specific diagnostic, and that SignedCopy must consequently
// refuse to sign. Each entry is a distinct way for a malicious counterparty
// to slip a trap into the off-chain contract before signatures are
// exchanged.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "easm/assembler.h"
#include "onoff/signed_copy.h"

namespace onoff::analysis {
namespace {

Bytes Asm(const std::string& src) {
  auto code = easm::Assemble(src);
  EXPECT_TRUE(code.ok()) << code.status().ToString();
  return code.ok() ? *code : Bytes{};
}

struct CorpusEntry {
  const char* name;
  Bytes bytecode;
  DiagCode expected;
  AnalysisOptions options;
};

std::vector<CorpusEntry> Corpus() {
  std::vector<CorpusEntry> corpus;

  // A jump whose target lands on a 0x5b byte that is a PUSH immediate, not
  // a real JUMPDEST: the interpreter throws at runtime, after signing.
  corpus.push_back({"jump-into-push-immediate",
                    Bytes{0x60, 0x04, 0x56, 0x60, 0x5b, 0x00},
                    DiagCode::kBadJumpTarget,
                    {}});

  // Pops below an empty stack on the only path through the code.
  corpus.push_back({"stack-underflow",
                    Asm("PUSH1 0x01 ADD ADD STOP"),
                    DiagCode::kStackUnderflow,
                    {}});

  // PUSH20 with only two immediate bytes left: the tail of the code is
  // silently swallowed as a zero-extended immediate.
  corpus.push_back({"truncated-push",
                    Bytes{0x73, 0xde, 0xad},
                    DiagCode::kTruncatedPush,
                    {}});

  // A function declared private (off-chain, sees private inputs) that can
  // reach SSTORE — the privacy leak the paper's split must prevent.
  AnalysisOptions leak_options;
  leak_options.private_selectors.push_back(0xaabbccdd);
  leak_options.function_names[0xaabbccdd] = "secretReveal()";
  corpus.push_back({"private-state-leak",
                    Asm(R"(
                      PUSH1 0x00 CALLDATALOAD PUSH1 0xe0 SHR
                      DUP1 PUSH4 0xaabbccdd EQ PUSH @f JUMPI
                      PUSH1 0x00 PUSH1 0x00 REVERT
                      f:
                      POP
                      PUSH1 0x2a PUSH1 0x64 SSTORE
                      STOP
                    )"),
                    DiagCode::kPrivateStateLeak, leak_options});

  // A jump guided by calldata: the target cannot be statically verified, so
  // the contract cannot be audited at all.
  corpus.push_back({"unresolved-jump",
                    Asm("PUSH1 0x00 CALLDATALOAD JUMP STOP"),
                    DiagCode::kUnresolvedJump,
                    {}});

  return corpus;
}

TEST(AnalysisCorpusTest, EveryEntryRejectedWithExpectedDiagnostic) {
  for (const CorpusEntry& entry : Corpus()) {
    SCOPED_TRACE(entry.name);
    DeploymentReport report = AnalyzeDeployment(entry.bytecode, entry.options);
    EXPECT_TRUE(report.HasErrors());
    bool found = false;
    for (const Diagnostic& d : report.AllDiagnostics()) {
      found |= d.code == entry.expected;
    }
    EXPECT_TRUE(found) << "expected " << DiagCodeId(entry.expected)
                       << ", first finding: "
                       << (report.AllDiagnostics().empty()
                               ? std::string("none")
                               : FormatDiagnostic(report.AllDiagnostics()[0]));
  }
}

TEST(AnalysisCorpusTest, SignedCopyRefusesToSignEveryEntry) {
  auto key = secp256k1::PrivateKey::FromSeed("corpus-signer");
  for (const CorpusEntry& entry : Corpus()) {
    SCOPED_TRACE(entry.name);
    core::SignedCopy copy(entry.bytecode);
    copy.set_audit_options(entry.options);
    Status status = copy.AddSignature(key);
    EXPECT_EQ(status.code(), StatusCode::kAnalysisRejected)
        << status.ToString();
    // The refusal must leave no signature behind: a half-signed copy would
    // still be a weapon in a dispute.
    EXPECT_EQ(copy.signature_count(), 0u);
    // The diagnostic id is carried in the error for the CLI/logs.
    EXPECT_NE(status.message().find(DiagCodeId(entry.expected)),
              std::string::npos)
        << status.ToString();
  }
}

TEST(AnalysisCorpusTest, BypassFlagStillSignsForTests) {
  auto key = secp256k1::PrivateKey::FromSeed("corpus-signer");
  core::SignedCopy copy(Bytes{0x01});  // lone ADD: underflows
  copy.set_audit_enabled(false);
  EXPECT_TRUE(copy.AddSignature(key).ok());
  EXPECT_EQ(copy.signature_count(), 1u);
}

}  // namespace
}  // namespace onoff::analysis
