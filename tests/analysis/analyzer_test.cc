#include "analysis/analyzer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "easm/assembler.h"

namespace onoff::analysis {
namespace {

Bytes Asm(const std::string& src) {
  auto code = easm::Assemble(src);
  EXPECT_TRUE(code.ok()) << code.status().ToString();
  return code.ok() ? *code : Bytes{};
}

bool HasCode(const AnalysisReport& report, DiagCode code) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [code](const Diagnostic& d) { return d.code == code; });
}

TEST(AnalyzerTest, StraightLineExactGas) {
  // PUSH1(3) + PUSH1(3) + MSTORE(3 + 3 for one memory word) + STOP(0) = 12.
  AnalysisReport report =
      AnalyzeProgram(Asm("PUSH1 0x00 PUSH1 0x00 MSTORE STOP"));
  EXPECT_FALSE(report.HasErrors()) << report.FirstError();
  ASSERT_TRUE(report.program_bound.bounded);
  EXPECT_EQ(report.program_bound.gas, 12u);
  EXPECT_EQ(report.effects, 0u);
}

TEST(AnalyzerTest, BranchBoundTakesTheMax) {
  // Prefix: PUSH1(3) CALLDATALOAD(3) PUSH2(3) JUMPI(10) = 19.
  // Cheap branch: STOP (0). Expensive branch: JUMPDEST(1) + 2*PUSH1(6) +
  // SSTORE(20000) + STOP(0) = 20007. Bound = 19 + 20007.
  AnalysisReport report = AnalyzeProgram(Asm(R"(
    PUSH1 0x00 CALLDATALOAD PUSH @a JUMPI
    STOP
    a:
    PUSH1 0x01 PUSH1 0x02 SSTORE STOP
  )"));
  EXPECT_FALSE(report.HasErrors()) << report.FirstError();
  ASSERT_TRUE(report.program_bound.bounded);
  EXPECT_EQ(report.program_bound.gas, 20'026u);
  EXPECT_NE(report.effects & effect::kSstore, 0u);
}

TEST(AnalyzerTest, LoopMakesTheBoundTop) {
  AnalysisReport report = AnalyzeProgram(Asm("loop: PUSH @loop JUMP"));
  EXPECT_FALSE(report.HasErrors()) << report.FirstError();
  EXPECT_FALSE(report.program_bound.bounded);
}

TEST(AnalyzerTest, DynamicJumpTargetRejected) {
  AnalysisReport report = AnalyzeProgram(Asm("PUSH1 0x00 CALLDATALOAD JUMP"));
  EXPECT_TRUE(report.HasErrors());
  EXPECT_TRUE(HasCode(report, DiagCode::kUnresolvedJump));
}

TEST(AnalyzerTest, JumpOutOfRangeRejected) {
  AnalysisReport report = AnalyzeProgram(Asm("PUSH1 0xff JUMP STOP"));
  EXPECT_TRUE(report.HasErrors());
  EXPECT_TRUE(HasCode(report, DiagCode::kBadJumpTarget));
}

TEST(AnalyzerTest, JumpIntoPushImmediateRejected) {
  // PUSH1 0x04 JUMP PUSH1 0x5b STOP: byte 4 IS 0x5b, but it is a PUSH
  // immediate, not an instruction — the interpreter would throw, and so
  // must the analyzer.
  AnalysisReport report =
      AnalyzeProgram(Bytes{0x60, 0x04, 0x56, 0x60, 0x5b, 0x00});
  EXPECT_TRUE(report.HasErrors());
  ASSERT_TRUE(HasCode(report, DiagCode::kBadJumpTarget));
  EXPECT_NE(report.FirstError().find("PUSH immediate"), std::string::npos)
      << report.FirstError();
}

TEST(AnalyzerTest, StackUnderflowRejected) {
  AnalysisReport report = AnalyzeProgram(Bytes{0x01});  // lone ADD
  EXPECT_TRUE(report.HasErrors());
  EXPECT_TRUE(HasCode(report, DiagCode::kStackUnderflow));
}

TEST(AnalyzerTest, StackOverflowRejected) {
  Bytes code(1025, 0x30);  // 1025x ADDRESS
  code.push_back(0x00);    // STOP
  AnalysisReport report = AnalyzeProgram(code);
  EXPECT_TRUE(report.HasErrors());
  EXPECT_TRUE(HasCode(report, DiagCode::kStackOverflow));
}

TEST(AnalyzerTest, StackHeightMismatchAtJoinRejected) {
  // The fallthrough path reaches `a` with one extra item vs the jump path.
  AnalysisReport report = AnalyzeProgram(Asm(R"(
    CALLDATASIZE PUSH @a JUMPI
    PUSH1 0x07
    a:
    STOP
  )"));
  EXPECT_TRUE(report.HasErrors());
  EXPECT_TRUE(HasCode(report, DiagCode::kStackHeightMismatch));
}

TEST(AnalyzerTest, TruncatedPushRejected) {
  AnalysisReport report = AnalyzeProgram(Bytes{0x61, 0x00});  // PUSH2 + 1 byte
  EXPECT_TRUE(report.HasErrors());
  EXPECT_TRUE(HasCode(report, DiagCode::kTruncatedPush));
}

TEST(AnalyzerTest, UndefinedOpcodeRejected) {
  AnalysisReport report = AnalyzeProgram(Bytes{0x0c});
  EXPECT_TRUE(report.HasErrors());
  EXPECT_TRUE(HasCode(report, DiagCode::kUndefinedOpcode));
}

TEST(AnalyzerTest, UnreachableCodeIsOnlyAWarning) {
  AnalysisReport report = AnalyzeProgram(Asm("STOP PUSH1 0x00 STOP"));
  EXPECT_FALSE(report.HasErrors()) << report.FirstError();
  EXPECT_TRUE(HasCode(report, DiagCode::kUnreachableCode));
}

TEST(AnalyzerTest, ImplicitStopIsOnlyAWarning) {
  AnalysisReport report = AnalyzeProgram(Asm("PUSH1 0x01"));
  EXPECT_FALSE(report.HasErrors()) << report.FirstError();
  EXPECT_TRUE(HasCode(report, DiagCode::kImplicitStop));
}

TEST(AnalyzerTest, CallMakesGasTop) {
  // CALL forwards GAS: statically unbounded.
  AnalysisReport report = AnalyzeProgram(Asm(R"(
    PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00
    PUSH1 0x42 GAS CALL
    STOP
  )"));
  EXPECT_FALSE(report.HasErrors()) << report.FirstError();
  EXPECT_FALSE(report.program_bound.bounded);
  EXPECT_NE(report.effects & effect::kCall, 0u);
}

TEST(AnalyzerTest, GasBoundAlgebra) {
  GasBound a{true, 100};
  GasBound b{true, 250};
  GasBound top = GasBound::Unbounded();
  EXPECT_EQ((a + b).gas, 350u);
  EXPECT_FALSE((a + top).bounded);
  EXPECT_EQ(GasBound::Max(a, b).gas, 250u);
  EXPECT_FALSE(GasBound::Max(a, top).bounded);
  EXPECT_TRUE(a.Covers(100));
  EXPECT_FALSE(a.Covers(101));
  EXPECT_TRUE(top.Covers(~uint64_t{0}));
  EXPECT_EQ(a.ToString(), "100");
  EXPECT_EQ(top.ToString(), "unbounded");
}

// A one-function selector dispatcher in the exact shape our codegen emits.
Bytes Dispatcher(const std::string& body) {
  return Asm(
      "PUSH1 0x00 CALLDATALOAD PUSH1 0xe0 SHR\n"
      "DUP1 PUSH4 0xaabbccdd EQ PUSH @f JUMPI\n"
      "PUSH1 0x00 PUSH1 0x00 REVERT\n"
      "f:\nPOP\n" +
      body + "\nSTOP\n");
}

TEST(AnalyzerTest, DispatchRecoveryFindsFunctions) {
  AnalysisOptions options;
  options.function_names[0xaabbccdd] = "frob()";
  AnalysisReport report =
      AnalyzeProgram(Dispatcher("PUSH1 0x2a PUSH1 0x64 SSTORE"), options);
  EXPECT_FALSE(report.HasErrors()) << report.FirstError();
  ASSERT_EQ(report.functions.size(), 1u);
  EXPECT_EQ(report.functions[0].selector, 0xaabbccddu);
  EXPECT_EQ(report.functions[0].name, "frob()");
  EXPECT_TRUE(report.functions[0].gas_bound.bounded);
  EXPECT_NE(report.functions[0].effects & effect::kSstore, 0u);
  EXPECT_FALSE(report.functions[0].has_loop);
}

TEST(AnalyzerTest, LightFunctionWithLoopRejected) {
  AnalysisOptions options;
  options.light_selectors.push_back(0xaabbccdd);
  AnalysisReport report =
      AnalyzeProgram(Dispatcher("loop: PUSH @loop JUMP"), options);
  EXPECT_TRUE(report.HasErrors());
  bool found = false;
  for (const Diagnostic& d : report.diagnostics) {
    found |= d.code == DiagCode::kUnboundedGas;
  }
  EXPECT_TRUE(found);
}

TEST(AnalyzerTest, LightFunctionAboveBlockLimitRejected) {
  AnalysisOptions options;
  options.light_selectors.push_back(0xaabbccdd);
  options.block_gas_limit = 10;  // absurdly small: any SSTORE breaks it
  AnalysisReport report =
      AnalyzeProgram(Dispatcher("PUSH1 0x2a PUSH1 0x64 SSTORE"), options);
  EXPECT_TRUE(report.HasErrors());
  EXPECT_TRUE(HasCode(report, DiagCode::kGasAboveBlockLimit));
}

TEST(AnalyzerTest, PrivateFunctionStateLeakRejected) {
  AnalysisOptions options;
  options.private_selectors.push_back(0xaabbccdd);
  AnalysisReport report =
      AnalyzeProgram(Dispatcher("PUSH1 0x2a PUSH1 0x64 SSTORE"), options);
  EXPECT_TRUE(report.HasErrors());
  EXPECT_TRUE(HasCode(report, DiagCode::kPrivateStateLeak));
}

TEST(AnalyzerTest, PrivatePureFunctionAccepted) {
  // SLOAD and pure computation do not leak; only writes/outbound calls do.
  AnalysisOptions options;
  options.private_selectors.push_back(0xaabbccdd);
  AnalysisReport report = AnalyzeProgram(
      Dispatcher("PUSH1 0x64 SLOAD PUSH1 0x01 ADD POP"), options);
  EXPECT_FALSE(report.HasErrors()) << report.FirstError();
}

TEST(AnalyzerTest, RecognizesWrapDeployerPrologue) {
  // PUSH2 0001 PUSH2 000f PUSH1 00 CODECOPY PUSH2 0001 PUSH1 00 RETURN,
  // followed by a 1-byte runtime (STOP).
  Bytes init{0x61, 0x00, 0x01, 0x61, 0x00, 0x0f, 0x60, 0x00,
             0x39, 0x61, 0x00, 0x01, 0x60, 0x00, 0xf3, 0x00};
  DeploymentReport report = AnalyzeDeployment(init);
  EXPECT_TRUE(report.recognized_deployer);
  EXPECT_EQ(report.runtime_offset, 15u);
  ASSERT_TRUE(report.runtime.has_value());
  EXPECT_EQ(report.runtime->code_size, 1u);
  EXPECT_FALSE(report.HasErrors());
  ASSERT_TRUE(report.DeployGasBound().bounded);
  // Deploy bound = prologue execution + 200 gas code deposit per byte.
  EXPECT_EQ(report.DeployGasBound().gas, report.init.program_bound.gas + 200u);
}

TEST(AnalyzerTest, RuntimeDiagnosticsAreRebasedOntoInitCode) {
  // Same deployer, but the runtime is a lone ADD (underflow at runtime
  // pc 0 == init pc 15).
  Bytes init{0x61, 0x00, 0x01, 0x61, 0x00, 0x0f, 0x60, 0x00,
             0x39, 0x61, 0x00, 0x01, 0x60, 0x00, 0xf3, 0x01};
  DeploymentReport report = AnalyzeDeployment(init);
  ASSERT_TRUE(report.recognized_deployer);
  ASSERT_TRUE(report.HasErrors());
  bool found = false;
  for (const Diagnostic& d : report.AllDiagnostics()) {
    if (d.code == DiagCode::kStackUnderflow) {
      EXPECT_EQ(d.pc, 15u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AnalyzerTest, UnrecognizedInitCodeAnalyzedWhole) {
  DeploymentReport report = AnalyzeDeployment(Asm("PUSH1 0x00 PUSH1 0x00 RETURN"));
  EXPECT_FALSE(report.recognized_deployer);
  EXPECT_FALSE(report.runtime.has_value());
  EXPECT_FALSE(report.HasErrors());
  // Unknown runtime length: the deposit charge cannot be bounded.
  EXPECT_FALSE(report.DeployGasBound().bounded);
}

TEST(AnalyzerTest, AuditForSigningReturnsTypedError) {
  Status status = AuditForSigning(Bytes{0x01});
  EXPECT_EQ(status.code(), StatusCode::kAnalysisRejected);
  EXPECT_NE(status.message().find("ANA03"), std::string::npos)
      << status.ToString();
  EXPECT_TRUE(AuditForSigning(Bytes{0x00}).ok());
}

TEST(AnalyzerTest, DiagnosticFormattingUsesSourceMap) {
  easm::SourceMap map;
  auto code = easm::AssembleWithMap("STOP\nADD\n", &map);
  ASSERT_TRUE(code.ok());
  AnalysisReport report = AnalyzeProgram(*code);
  // ADD at line 2 is unreachable (warning), which the formatter should
  // attribute to the source line.
  ASSERT_FALSE(report.diagnostics.empty());
  std::string formatted = FormatDiagnostic(report.diagnostics[0], &map);
  EXPECT_NE(formatted.find("line 2"), std::string::npos) << formatted;
}

}  // namespace
}  // namespace onoff::analysis
