// Registry under concurrent hammering: writer threads create and update
// instruments while readers take snapshots and dump JSON. Run under TSan in
// CI; the assertions here additionally prove snapshots are not torn — a
// histogram snapshot's bucket counts always sum to its count, because each
// histogram is copied under its own lock.

#include <atomic>
#include <cstdint>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"

namespace onoff::obs {
namespace {

TEST(RegistryConcurrencyTest, WritersAndSnapshotReaderDoNotTear) {
  Registry reg;
  constexpr int kWriters = 8;
  constexpr int kIterations = 2000;
  std::atomic<bool> stop{false};
  std::atomic<int> writers_done{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&reg, &writers_done, t] {
      for (int i = 0; i < kIterations; ++i) {
        // Mix of hot-path updates on shared instruments and creation of new
        // ones (the map rehash/insert path) on every iteration.
        reg.GetCounter("shared.counter")->Inc();
        reg.GetGauge("shared.gauge")->Add(t % 2 == 0 ? 1 : -1);
        reg.GetHistogram("shared.hist", {1.0, 10.0, 100.0})
            ->Observe(static_cast<double>(i % 128));
        reg.GetCounter("w" + std::to_string(t) + "." +
                       std::to_string(i % 17))
            ->Inc();
      }
      writers_done.fetch_add(1);
    });
  }

  // The reader loops snapshots + JSON dumps until every writer finishes; a
  // torn histogram copy would break the bucket-sum == count identity.
  std::thread reader([&reg, &stop] {
    uint64_t snapshots = 0;
    while (!stop.load()) {
      Registry::InstrumentSnapshot snap = reg.Snapshot();
      for (const auto& entry : snap.histograms) {
        uint64_t bucket_sum = std::accumulate(entry.data.buckets.begin(),
                                              entry.data.buckets.end(),
                                              uint64_t{0});
        ASSERT_EQ(bucket_sum, entry.data.count)
            << "torn snapshot of histogram " << entry.name;
      }
      std::string json = reg.ToJsonString();
      ASSERT_NE(json.find("onoffchain-metrics-v1"), std::string::npos);
      ++snapshots;
    }
    EXPECT_GT(snapshots, 0u);
  });

  for (auto& th : writers) th.join();
  stop.store(true);
  reader.join();

  // Final totals are exact once all writers joined.
  EXPECT_EQ(reg.CounterValue("shared.counter"),
            static_cast<uint64_t>(kWriters) * kIterations);
  EXPECT_EQ(reg.GaugeValue("shared.gauge"), 0);
  EXPECT_EQ(reg.GetHistogram("shared.hist", {})->Count(),
            static_cast<uint64_t>(kWriters) * kIterations);
  EXPECT_EQ(writers_done.load(), kWriters);
}

TEST(RegistryConcurrencyTest, ConcurrentGetOfSameNameYieldsOneInstrument) {
  Registry reg;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &seen, t] {
      Counter* c = reg.GetCounter("contended.name");
      c->Inc();
      seen[static_cast<size_t>(t)] = c;
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0], seen[t]);
  EXPECT_EQ(reg.CounterValue("contended.name"),
            static_cast<uint64_t>(kThreads));
}

}  // namespace
}  // namespace onoff::obs
