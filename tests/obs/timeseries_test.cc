// Time-series sampler: interval gating on the injected obs::Clock, counter
// deltas and histogram quantiles in the export, clock-regression recovery,
// and null-registry no-op behaviour.

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "obs/clock.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace onoff::obs {
namespace {

// Installs a settable virtual clock for the test's lifetime and restores the
// wall clock on destruction (the shared_ptr keeps the cell alive for any
// reader that raced the restore).
class VirtualClockFixture {
 public:
  VirtualClockFixture() : now_us_(std::make_shared<uint64_t>(0)) {
    auto cell = now_us_;
    Clock::Install([cell] { return *cell; });
  }
  ~VirtualClockFixture() { Clock::Install(nullptr); }
  void SetMs(uint64_t ms) { *now_us_ = ms * 1000; }

 private:
  std::shared_ptr<uint64_t> now_us_;
};

TEST(TimeseriesTest, TickHonoursIntervalOnVirtualClock) {
  VirtualClockFixture clock;
  Registry reg;
  TimeseriesConfig config;
  config.interval_ms = 100;
  TimeseriesSampler sampler(&reg, config);

  clock.SetMs(10);
  EXPECT_TRUE(sampler.Tick());   // first tick always samples
  EXPECT_FALSE(sampler.Tick());  // same instant: inside the interval
  clock.SetMs(60);
  EXPECT_FALSE(sampler.Tick());  // 50ms elapsed < 100ms interval
  clock.SetMs(110);
  EXPECT_TRUE(sampler.Tick());  // 100ms elapsed
  EXPECT_EQ(sampler.samples(), 2u);
}

TEST(TimeseriesTest, ClockRegressionResamplesInsteadOfStalling) {
  VirtualClockFixture clock;
  Registry reg;
  TimeseriesConfig config;
  config.interval_ms = 100;
  TimeseriesSampler sampler(&reg, config);
  clock.SetMs(500);
  EXPECT_TRUE(sampler.Tick());
  // A fresh simulated run rebinds the virtual clock back to zero; the
  // sampler must treat the regression as a new cadence, not go silent for
  // 500 virtual ms.
  clock.SetMs(0);
  EXPECT_TRUE(sampler.Tick());
  EXPECT_EQ(sampler.samples(), 2u);
}

TEST(TimeseriesTest, ExportDerivesCounterDeltasAndQuantiles) {
  VirtualClockFixture clock;
  Registry reg;
  Counter* blocks = reg.GetCounter("chain.blocks_mined");
  Histogram* h = reg.GetHistogram("mine_us", {10.0, 100.0, 1000.0});
  TimeseriesConfig config;
  config.interval_ms = 100;
  TimeseriesSampler sampler(&reg, config);

  clock.SetMs(100);
  blocks->Inc(3);
  h->Observe(50.0);
  sampler.SampleNow();
  clock.SetMs(200);
  blocks->Inc(5);
  h->Observe(50.0);
  h->Observe(500.0);
  sampler.SampleNow();

  std::string json = sampler.ToJson().Dump();
  EXPECT_NE(json.find("\"onoffchain-timeseries-v1\""), std::string::npos);
  // Second counter point carries the delta since the first (3 -> 8).
  EXPECT_NE(json.find("\"delta\": 5"), std::string::npos);
  // Timestamps come from the virtual clock.
  EXPECT_NE(json.find("\"ts_us\": 100000"), std::string::npos);
  EXPECT_NE(json.find("\"ts_us\": 200000"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);

  EXPECT_EQ(sampler.LatestCounter("chain.blocks_mined"), 8u);
  EXPECT_FALSE(sampler.LatestCounter("missing").has_value());
  // 8 - 3 = 5 increments over 100ms of virtual time = 50/s.
  ASSERT_TRUE(sampler.CounterRatePerSec("chain.blocks_mined").has_value());
  EXPECT_DOUBLE_EQ(*sampler.CounterRatePerSec("chain.blocks_mined"), 50.0);
  ASSERT_TRUE(sampler.LatestQuantile("mine_us", 0.5).has_value());
  EXPECT_GT(*sampler.LatestQuantile("mine_us", 0.99),
            *sampler.LatestQuantile("mine_us", 0.25));
}

TEST(TimeseriesTest, CapacityEvictsOldestSamples) {
  VirtualClockFixture clock;
  Registry reg;
  Counter* c = reg.GetCounter("c");
  TimeseriesConfig config;
  config.interval_ms = 1;
  config.capacity = 3;
  TimeseriesSampler sampler(&reg, config);
  for (uint64_t i = 1; i <= 10; ++i) {
    clock.SetMs(i * 10);
    c->Inc();
    sampler.SampleNow();
  }
  EXPECT_EQ(sampler.samples(), 3u);
  EXPECT_EQ(sampler.LatestCounter("c"), 10u);
  sampler.Clear();
  EXPECT_EQ(sampler.samples(), 0u);
  EXPECT_FALSE(sampler.LatestCounter("c").has_value());
}

TEST(TimeseriesTest, NullRegistryIsANoOp) {
  TimeseriesSampler sampler(nullptr);
  EXPECT_FALSE(sampler.Tick());
  sampler.SampleNow();
  EXPECT_EQ(sampler.samples(), 0u);
  std::string json = sampler.ToJson().Dump();
  EXPECT_NE(json.find("\"samples\": 0"), std::string::npos);
  EXPECT_FALSE(sampler.LatestCounter("anything").has_value());
}

// The satellite contract for obs::Clock: ScopedTimer reads the installed
// source, so virtual-clocked spans measure virtual, not wall, time.
TEST(TimeseriesTest, ScopedTimerMeasuresOnInstalledClock) {
  VirtualClockFixture clock;
  Histogram h({1e12});
  clock.SetMs(1000);
  {
    ScopedTimer timer(&h);
    clock.SetMs(1250);
    EXPECT_DOUBLE_EQ(timer.ElapsedUs(), 250'000.0);
  }
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_DOUBLE_EQ(h.Sum(), 250'000.0);
}

}  // namespace
}  // namespace onoff::obs
