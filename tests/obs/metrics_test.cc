#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json.h"

namespace onoff::obs {
namespace {

TEST(JsonTest, ScalarsAndEscaping) {
  EXPECT_EQ(Json::Null().Dump(false), "null");
  EXPECT_EQ(Json::Bool(true).Dump(false), "true");
  EXPECT_EQ(Json::Int(-7).Dump(false), "-7");
  EXPECT_EQ(Json::Uint(18'000'000'000'000'000'000ull).Dump(false),
            "18000000000000000000");
  EXPECT_EQ(Json::Str("a\"b\\c\n").Dump(false), "\"a\\\"b\\\\c\\n\"");
}

TEST(JsonTest, IntegralDoublesPrintWithoutDecimalPoint) {
  EXPECT_EQ(Json::Num(21000).Dump(false), "21000");
  EXPECT_EQ(Json::Num(0.5).Dump(false), "0.5");
}

TEST(JsonTest, ObjectsKeepInsertionOrder) {
  Json obj = Json::Object();
  obj.Set("z", Json::Int(1)).Set("a", Json::Int(2));
  EXPECT_EQ(obj.Dump(false), "{\"z\":1,\"a\":2}");
  Json arr = Json::Array();
  arr.Push(Json::Int(1)).Push(Json::Str("x"));
  EXPECT_EQ(arr.Dump(false), "[1,\"x\"]");
}

TEST(MetricsTest, CounterAndGauge) {
  Counter c;
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
}

TEST(MetricsTest, HistogramBucketsAndStats) {
  Histogram h({1.0, 10.0, 100.0});
  for (double v : {0.5, 5.0, 5.0, 50.0, 5000.0}) h.Observe(v);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_DOUBLE_EQ(h.Sum(), 5060.5);
  EXPECT_DOUBLE_EQ(h.Min(), 0.5);
  EXPECT_DOUBLE_EQ(h.Max(), 5000.0);
  // Cumulative-style per-bucket counts: <=1, <=10, <=100, +Inf overflow.
  std::vector<uint64_t> buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.BucketCounts()[1], 0u);
}

TEST(MetricsTest, ExponentialBuckets) {
  std::vector<double> b = ExponentialBuckets(1.0, 4.0, 3);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[1], 4.0);
  EXPECT_DOUBLE_EQ(b[2], 16.0);
}

TEST(MetricsTest, RegistryPointersAreStableAndNamed) {
  Registry reg;
  Counter* a = reg.GetCounter("a");
  a->Inc(3);
  // Creating more instruments must not invalidate earlier pointers.
  for (int i = 0; i < 100; ++i) {
    reg.GetCounter("c" + std::to_string(i));
  }
  EXPECT_EQ(reg.GetCounter("a"), a);
  EXPECT_EQ(reg.CounterValue("a"), 3u);
  EXPECT_EQ(reg.CounterValue("missing"), 0u);
  reg.GetGauge("g")->Set(-5);
  EXPECT_EQ(reg.GaugeValue("g"), -5);
  Histogram* h = reg.GetHistogram("h", {1.0, 2.0});
  // Same name returns the same histogram; later bounds are ignored.
  EXPECT_EQ(reg.GetHistogram("h", {99.0}), h);
  EXPECT_EQ(h->Bounds().size(), 2u);
  reg.Reset();
  EXPECT_EQ(reg.CounterValue("a"), 0u);
  EXPECT_EQ(reg.GaugeValue("g"), 0);
}

TEST(MetricsTest, RegistryIsThreadSafe) {
  Registry reg;
  Counter* shared = reg.GetCounter("shared");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&reg, shared, t] {
      for (int i = 0; i < 1000; ++i) {
        shared->Inc();
        reg.GetCounter("t" + std::to_string(t))->Inc();
        reg.GetHistogram("h", {10.0})->Observe(static_cast<double>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.CounterValue("shared"), 4000u);
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(reg.CounterValue("t" + std::to_string(t)), 1000u);
  }
  EXPECT_EQ(reg.GetHistogram("h", {})->Count(), 4000u);
}

TEST(MetricsTest, JsonExportSchema) {
  Registry reg;
  reg.GetCounter("chain.blocks")->Inc(2);
  reg.GetGauge("pool.depth")->Set(7);
  Histogram* h = reg.GetHistogram("span_us", {1.0, 10.0});
  h->Observe(5.0);
  std::string json = reg.ToJsonString();
  EXPECT_NE(json.find("\"schema\": \"onoffchain-metrics-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"chain.blocks\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"pool.depth\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"span_us\""), std::string::npos);
  // The overflow bucket serialises with le = "+Inf".
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos);
}

TEST(MetricsTest, WriteJsonFile) {
  Registry reg;
  reg.GetCounter("x")->Inc();
  std::string path = ::testing::TempDir() + "/metrics_test_out.json";
  ASSERT_TRUE(reg.WriteJsonFile(path).ok());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("onoffchain-metrics-v1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(MetricsTest, ScopedTimerObservesIntoHistogram) {
  Histogram h({1e9});
  {
    ScopedTimer timer(&h);
    EXPECT_GE(timer.ElapsedUs(), 0.0);
  }
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_GE(h.Sum(), 0.0);
  // A null histogram is a supported no-op target.
  { ScopedTimer noop(nullptr); }
}

TEST(MetricsTest, GlobalRegistryRespectsCompileTimeSwitch) {
#if ONOFF_METRICS
  // May still be nullptr if the environment disables it; when present it
  // must be the same instance on every call.
  Registry* g = Registry::Global();
  EXPECT_EQ(Registry::Global(), g);
#else
  EXPECT_EQ(Registry::Global(), nullptr);
#endif
}

// Export determinism: the same instruments dumped from registries populated
// in different insertion orders serialise to byte-identical JSON (keys are
// sorted), so diffing two runs' metric dumps is meaningful.
TEST(MetricsTest, JsonDumpIsByteDeterministicAcrossInsertionOrder) {
  Registry forward;
  forward.GetCounter("alpha")->Inc(1);
  forward.GetCounter("zeta")->Inc(2);
  forward.GetGauge("mid")->Set(3);
  forward.GetHistogram("hist", {1.0, 2.0})->Observe(1.5);

  Registry reversed;
  reversed.GetHistogram("hist", {1.0, 2.0})->Observe(1.5);
  reversed.GetGauge("mid")->Set(3);
  reversed.GetCounter("zeta")->Inc(2);
  reversed.GetCounter("alpha")->Inc(1);

  std::string a = forward.ToJsonString();
  EXPECT_EQ(a, reversed.ToJsonString());
  EXPECT_LT(a.find("\"alpha\""), a.find("\"zeta\""));
}

}  // namespace
}  // namespace onoff::obs
