// Flight recorder: ring wrap accounting, seq-ordered snapshots across
// stripes, concurrent recording, triage-bundle structure, and the
// global-install / call-site helper contract.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/audit.h"
#include "obs/flight_recorder.h"

namespace onoff::obs {
namespace {

TEST(FlightRecorderTest, RecordsAndSnapshotsInSeqOrder) {
  FlightRecorderConfig config;
  config.capacity = 64;
  config.stripes = 4;
  FlightRecorder rec(config);
  for (uint64_t i = 0; i < 10; ++i) {
    rec.Record(FlightKind::kBlockCommit, /*trace_id=*/i, /*a=*/i, /*b=*/0,
               "root-" + std::to_string(i));
  }
  EXPECT_EQ(rec.events_recorded(), 10u);
  EXPECT_EQ(rec.events_dropped(), 0u);
  std::vector<FlightEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 10u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
  EXPECT_EQ(events[3].a, 3u);
  EXPECT_STREQ(events[3].detail, "root-3");
  EXPECT_EQ(events[3].kind, FlightKind::kBlockCommit);
}

TEST(FlightRecorderTest, RingWrapDropsOldestAndCountsThem) {
  FlightRecorderConfig config;
  config.capacity = 8;
  config.stripes = 1;  // single stripe so wrap arithmetic is exact
  FlightRecorder rec(config);
  for (uint64_t i = 0; i < 20; ++i) {
    rec.Record(FlightKind::kPoolAdmit, 0, /*a=*/i, 0, "");
  }
  EXPECT_EQ(rec.events_recorded(), 20u);
  EXPECT_EQ(rec.events_dropped(), 12u);
  std::vector<FlightEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Only the newest 8 survive.
  EXPECT_EQ(events.front().a, 12u);
  EXPECT_EQ(events.back().a, 19u);
  rec.Clear();
  EXPECT_EQ(rec.events_recorded(), 0u);
  EXPECT_EQ(rec.events_dropped(), 0u);
  EXPECT_TRUE(rec.Snapshot().empty());
}

TEST(FlightRecorderTest, DetailIsTruncatedNotOverflowed) {
  FlightRecorder rec;
  std::string long_detail(200, 'x');
  rec.Record(FlightKind::kLog, 0, 0, 0, long_detail);
  std::vector<FlightEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  std::string stored = events[0].detail;
  EXPECT_LT(stored.size(), sizeof events[0].detail);
  EXPECT_EQ(stored, long_detail.substr(0, stored.size()));
}

TEST(FlightRecorderTest, ConcurrentRecordsAllLand) {
  FlightRecorderConfig config;
  config.capacity = 100'000;  // large enough that nothing wraps
  FlightRecorder rec(config);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        rec.Record(FlightKind::kBusDeliver, static_cast<uint64_t>(t),
                   static_cast<uint64_t>(i), 0, "topic");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(rec.events_recorded(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(rec.events_dropped(), 0u);
  std::vector<FlightEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads) * kPerThread);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
}

TEST(FlightRecorderTest, TriageBundleCarriesEventsAndViolation) {
  FlightRecorder rec;
  rec.Record(FlightKind::kSettlement, 7, 21000, 0, "optimistic");
  ViolationReport report;
  report.invariant = "conservation";
  report.message = "balance sum drifted";
  report.trace_id = 7;
  report.block_height = 3;
  report.values.emplace_back("expected", "100");
  report.values.emplace_back("actual", "101");
  Json violation = report.ToJson();
  std::string bundle = rec.TriageBundle("unit-test", &violation).Dump();
  EXPECT_NE(bundle.find("\"onoffchain-flightrec-v1\""), std::string::npos);
  EXPECT_NE(bundle.find("\"unit-test\""), std::string::npos);
  EXPECT_NE(bundle.find("\"conservation\""), std::string::npos);
  EXPECT_NE(bundle.find("\"optimistic\""), std::string::npos);
  EXPECT_NE(bundle.find("\"settlement\""), std::string::npos);  // kind name

  std::string path = ::testing::TempDir() + "/flightrec_test_bundle.json";
  ASSERT_TRUE(rec.DumpTriageBundle(path, "unit-test", &violation).ok());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("onoffchain-flightrec-v1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, GlobalInstallRoutesHelperAndRestores) {
  ASSERT_EQ(FlightRecorder::Global(), nullptr)
      << "test requires no ambient global recorder";
  // With no global installed the helper is a no-op.
  FlightRecord(FlightKind::kLog, 0, 0, 0, "dropped on the floor");

  FlightRecorder rec;
  FlightRecorder* prev = FlightRecorder::InstallGlobal(&rec);
  EXPECT_EQ(prev, nullptr);
  EXPECT_EQ(FlightRecorder::Global(), &rec);
  FlightRecord(FlightKind::kPoolDrop, 1, 2, 0, "stale-nonce");
  EXPECT_EQ(rec.events_recorded(), 1u);

  EXPECT_EQ(FlightRecorder::InstallGlobal(prev), &rec);
  EXPECT_EQ(FlightRecorder::Global(), nullptr);
}

}  // namespace
}  // namespace onoff::obs
