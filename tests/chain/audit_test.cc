// The auditor's injected-fault corpus: each class of corruption the runtime
// invariants exist to catch — minted balance, skipped nonce, replayed
// settlement, tampered receipt root — is injected through the chain's
// test-only mutation hooks and must be caught by exactly its invariant, with
// a trace-id-bearing ViolationReport and a triage-bundle dump. The negative
// half runs every betting settlement path under full auditing and demands
// zero violations.

#include "chain/chain_audit.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "contracts/betting.h"
#include "obs/audit.h"
#include "obs/flight_recorder.h"
#include "onoff/protocol.h"

namespace onoff::chain {
namespace {

using contracts::Ether;
using secp256k1::PrivateKey;

class AuditTest : public ::testing::Test {
 protected:
  AuditTest()
      : alice_(PrivateKey::FromSeed("alice")),
        bob_(PrivateKey::FromSeed("bob")) {
    // Incident dumps from the chain-owned auditor land in the test tempdir,
    // not the working directory.
    setenv("ONOFF_FLIGHTREC_DIR", ::testing::TempDir().c_str(), 1);
    chain::ChainConfig config;
    config.audit_invariants = "all";
    chain_ = std::make_unique<chain::Blockchain>(config);
    chain_->FundAccount(alice_.EthAddress(), Ether(10));
    chain_->FundAccount(bob_.EthAddress(), Ether(10));
  }

  // One clean value transfer, mined; establishes the lazy audit baselines.
  void CleanBlock() {
    auto receipt = chain_->Execute(alice_, bob_.EthAddress(), U256(1000),
                                   Bytes{}, 100'000);
    ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
    ASSERT_TRUE(receipt->success);
  }

  // All retained reports must name `expected` — "caught by exactly its
  // invariant" means no collateral reports from the other four.
  void ExpectOnlyInvariant(const std::string& expected) {
    std::vector<obs::ViolationReport> reports =
        chain_->auditor()->sink().Reports();
    ASSERT_FALSE(reports.empty());
    for (const obs::ViolationReport& report : reports) {
      EXPECT_EQ(report.invariant, expected) << report.ToString();
    }
  }

  PrivateKey alice_;
  PrivateKey bob_;
  std::unique_ptr<chain::Blockchain> chain_;
};

TEST_F(AuditTest, CleanTransfersProduceZeroViolations) {
  ASSERT_NE(chain_->auditor(), nullptr);
  EXPECT_EQ(chain_->auditor()->invariant_count(), 5u);
  for (int i = 0; i < 3; ++i) CleanBlock();
  EXPECT_EQ(chain_->auditor()->violations(), 0u);
}

TEST_F(AuditTest, MintedBalanceIsCaughtByConservation) {
  CleanBlock();
  EXPECT_EQ(chain_->auditor()->violations(), 0u);
  // The fault: value appears from nowhere, bypassing FundAccount's OnMint.
  chain_->mutable_state_for_test().AddBalance(bob_.EthAddress(), Ether(1));
  CleanBlock();
  EXPECT_EQ(chain_->auditor()->violations(), 1u);
  ExpectOnlyInvariant("conservation");
  const obs::ViolationReport report = chain_->auditor()->sink().Reports()[0];
  EXPECT_EQ(report.block_height, chain_->Height());
  EXPECT_EQ(report.values.size(), 2u);
  EXPECT_EQ(report.values[0].first, "expected_total");
  EXPECT_EQ(report.values[1].first, "actual_total");
  EXPECT_NE(report.values[0].second, report.values[1].second);
}

TEST_F(AuditTest, LegitimateMintIsNotAViolation) {
  CleanBlock();
  // Post-baseline faucet credit through the audited path.
  chain_->FundAccount(bob_.EthAddress(), Ether(5));
  CleanBlock();
  EXPECT_EQ(chain_->auditor()->violations(), 0u);
}

TEST_F(AuditTest, SkippedNonceIsCaughtByNonceInvariant) {
  CleanBlock();
  // The fault: an EOA's nonce jumps with no transaction from it. (Balances
  // are untouched, so conservation stays quiet — the corpus point is that
  // each fault trips its own invariant.)
  chain_->mutable_state_for_test().SetNonce(bob_.EthAddress(), 7);
  CleanBlock();
  ASSERT_EQ(chain_->auditor()->violations(), 1u);
  ExpectOnlyInvariant("nonce");
  const obs::ViolationReport report = chain_->auditor()->sink().Reports()[0];
  EXPECT_EQ(report.message, "account nonce changed with no transaction from it");
  ASSERT_FALSE(report.values.empty());
  EXPECT_EQ(report.values[0].first, "account");
  EXPECT_EQ(report.values[0].second, bob_.EthAddress().ToHex());
}

TEST_F(AuditTest, NonceDecreaseIsCaughtForAnyAccount) {
  CleanBlock();  // alice's nonce is now 1
  chain_->mutable_state_for_test().SetNonce(alice_.EthAddress(), 0);
  auto receipt = chain_->Execute(bob_, alice_.EthAddress(), U256(1), Bytes{},
                                 100'000);
  ASSERT_TRUE(receipt.ok());
  ASSERT_GE(chain_->auditor()->violations(), 1u);
  ExpectOnlyInvariant("nonce");
  EXPECT_EQ(chain_->auditor()->sink().Reports()[0].message,
            "account nonce decreased");
}

TEST_F(AuditTest, ReplayedSettlementIsCaughtBySettlementInvariant) {
  SettlementAudit settled;
  settled.game = alice_.EthAddress();  // any address works as a game id
  settled.settlement = "disputed";
  settled.resolved = true;
  settled.correct_payout = true;
  settled.trace_id = 42;
  chain_->auditor()->OnSettlement(settled);
  EXPECT_EQ(chain_->auditor()->violations(), 0u);
  // The fault: the same game id reaches a terminal payout twice.
  chain_->auditor()->OnSettlement(settled);
  ASSERT_EQ(chain_->auditor()->violations(), 1u);
  ExpectOnlyInvariant("settlement");
  const obs::ViolationReport report = chain_->auditor()->sink().Reports()[0];
  EXPECT_EQ(report.message, "game settled twice");
  EXPECT_EQ(report.trace_id, 42u);
}

TEST_F(AuditTest, WrongPayoutIsCaughtBySettlementInvariant) {
  SettlementAudit wrong;
  wrong.game = bob_.EthAddress();
  wrong.settlement = "optimistic";
  wrong.resolved = true;
  wrong.correct_payout = false;
  chain_->auditor()->OnSettlement(wrong);
  ASSERT_EQ(chain_->auditor()->violations(), 1u);
  EXPECT_EQ(chain_->auditor()->sink().Reports()[0].message,
            "settlement completed but the pot missed the winner");
}

TEST_F(AuditTest, UnresolvedSettlementsAreExemptFromReplayChecks) {
  SettlementAudit aborted;
  aborted.game = alice_.EthAddress();
  aborted.settlement = "aborted-unsigned";
  aborted.resolved = false;
  chain_->auditor()->OnSettlement(aborted);
  chain_->auditor()->OnSettlement(aborted);  // retries of an abort are fine
  EXPECT_EQ(chain_->auditor()->violations(), 0u);
}

TEST_F(AuditTest, TamperedReceiptRootIsCaughtByReceiptRootInvariant) {
  auto receipt = chain_->Execute(alice_, bob_.EthAddress(), U256(1000),
                                 Bytes{}, 100'000);
  ASSERT_TRUE(receipt.ok());
  EXPECT_EQ(chain_->auditor()->violations(), 0u);

  // The fault: replay the committed block through a fresh auditor with its
  // header receipt root flipped — the speculation/commit consistency check
  // must refuse the header.
  Block tampered = chain_->blocks().back();
  std::vector<Receipt> receipts = {*receipt};
  obs::AuditorConfig sink_config;
  sink_config.dump_flight = false;
  ChainAuditor replay("receipt_root", sink_config);
  replay.OnBlockCommit(tampered, receipts, chain_->state());
  EXPECT_EQ(replay.violations(), 0u) << "untampered block must pass";

  tampered.header.receipt_root[0] ^= 0xff;
  replay.OnBlockCommit(tampered, receipts, chain_->state());
  ASSERT_EQ(replay.violations(), 1u);
  const obs::ViolationReport report = replay.sink().Reports()[0];
  EXPECT_EQ(report.invariant, "receipt_root");
  ASSERT_FALSE(report.values.empty());
  EXPECT_EQ(report.values[0].second, "receipt_root");
}

TEST_F(AuditTest, TimerViolationsOnVirtualClockFacts) {
  obs::AuditorConfig sink_config;
  sink_config.dump_flight = false;
  ChainAuditor timer_audit("timer", sink_config);
  SettlementAudit late;
  late.game = alice_.EthAddress();
  late.settlement = "disputed";
  late.resolved = true;
  late.correct_payout = true;
  late.t3_ms = 300'000;
  late.challenge_period_ms = 8'000;
  late.settled_ms = 309'000;  // 1s past the window
  timer_audit.OnSettlement(late);
  ASSERT_EQ(timer_audit.violations(), 1u);
  EXPECT_EQ(timer_audit.sink().Reports()[0].message,
            "dispute resolved after the challenge window closed");

  late.settled_ms = 307'000;  // inside the window: fine
  late.game = bob_.EthAddress();
  timer_audit.OnSettlement(late);
  EXPECT_EQ(timer_audit.violations(), 1u);
}

// A violation with a global flight recorder installed dumps a schema-tagged
// triage bundle into the configured directory.
TEST_F(AuditTest, ViolationDumpsTriageBundleIntoDumpDir) {
  std::string dump_dir =
      ::testing::TempDir() + "/audit_test_dumps_" +
      std::to_string(static_cast<unsigned>(::getpid()));
  std::filesystem::create_directories(dump_dir);

  obs::FlightRecorder recorder;
  obs::FlightRecorder* previous = obs::FlightRecorder::InstallGlobal(&recorder);
  recorder.Record(obs::FlightKind::kSettlement, 7, 21'000, 0, "disputed");

  obs::AuditorConfig sink_config;
  sink_config.dump_dir = dump_dir;
  ChainAuditor audited("settlement", sink_config);
  SettlementAudit settled;
  settled.game = alice_.EthAddress();
  settled.settlement = "disputed";
  settled.resolved = true;
  settled.correct_payout = true;
  settled.trace_id = 7;
  audited.OnSettlement(settled);
  audited.OnSettlement(settled);
  ASSERT_EQ(audited.violations(), 1u);
  obs::FlightRecorder::InstallGlobal(previous);

  bool found = false;
  for (const auto& entry : std::filesystem::directory_iterator(dump_dir)) {
    std::ifstream in(entry.path());
    std::stringstream buf;
    buf << in.rdbuf();
    if (buf.str().find("onoffchain-flightrec-v1") == std::string::npos) {
      continue;
    }
    EXPECT_NE(buf.str().find("\"game settled twice\""), std::string::npos);
    EXPECT_NE(buf.str().find("\"invariant-violation\""), std::string::npos);
    found = true;
  }
  EXPECT_TRUE(found) << "no triage bundle written to " << dump_dir;
  std::filesystem::remove_all(dump_dir);
}

// The negative corpus: every betting settlement path runs under full
// auditing with zero violations — the invariants accept the protocol's
// legitimate behaviours, including the adversarial ones.
class AuditNegativeTest : public ::testing::Test {
 protected:
  // Runs one betting game on a freshly audited chain and returns (settlement,
  // violations).
  std::pair<core::Settlement, uint64_t> RunAudited(core::Behavior alice_b,
                                                   core::Behavior bob_b) {
    setenv("ONOFF_FLIGHTREC_DIR", ::testing::TempDir().c_str(), 1);
    auto alice = PrivateKey::FromSeed("alice");
    auto bob = PrivateKey::FromSeed("bob");
    chain::ChainConfig config;
    config.audit_invariants = "all";
    chain::Blockchain chain(config);
    chain.FundAccount(alice.EthAddress(), Ether(10));
    chain.FundAccount(bob.EthAddress(), Ether(10));
    core::MessageBus bus;
    contracts::OffchainConfig offchain;
    offchain.secret_alice = U256(0xa11ce);
    offchain.secret_bob = U256(0xb0b);
    offchain.reveal_iterations = 20;
    core::BettingProtocol protocol(&chain, &bus, alice, bob, offchain,
                                   Ether(1));
    auto report = protocol.Run(alice_b, bob_b);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    if (!report.ok()) return {core::Settlement::kAbortedUnsigned, UINT64_MAX};
    return {report->settlement, chain.auditor()->violations()};
  }
};

TEST_F(AuditNegativeTest, AllSettlementPathsAuditClean) {
  core::Behavior honest;
  core::Behavior dishonest;
  dishonest.admit_loss = false;
  core::Behavior unsigned_copy;
  unsigned_copy.sign_offchain_copy = false;
  core::Behavior no_deposit;
  no_deposit.make_deposit = false;

  auto [optimistic, v1] = RunAudited(honest, honest);
  EXPECT_EQ(optimistic, core::Settlement::kOptimistic);
  EXPECT_EQ(v1, 0u);

  auto [disputed, v2] = RunAudited(dishonest, dishonest);
  EXPECT_EQ(disputed, core::Settlement::kDisputed);
  EXPECT_EQ(v2, 0u);

  auto [aborted, v3] = RunAudited(honest, unsigned_copy);
  EXPECT_EQ(aborted, core::Settlement::kAbortedUnsigned);
  EXPECT_EQ(v3, 0u);

  auto [refunded, v4] = RunAudited(honest, no_deposit);
  EXPECT_EQ(refunded, core::Settlement::kRefunded);
  EXPECT_EQ(v4, 0u);
}

}  // namespace
}  // namespace onoff::chain
