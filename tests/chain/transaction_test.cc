#include "chain/transaction.h"

#include <gtest/gtest.h>

#include "evm/gas.h"
#include "obs/metrics.h"

namespace onoff::chain {
namespace {

Transaction MakeTx() {
  Transaction tx;
  tx.nonce = 7;
  tx.gas_price = U256(20);
  tx.gas_limit = 100'000;
  auto to = Address::FromHex("0x1111111111111111111111111111111111111111");
  tx.to = *to;
  tx.value = U256(1'000'000);
  tx.data = Bytes{0x01, 0x00, 0x02};
  return tx;
}

TEST(TransactionTest, SignAndRecoverSender) {
  auto key = secp256k1::PrivateKey::FromSeed("tx-sender");
  Transaction tx = MakeTx();
  tx.Sign(key);
  auto sender = tx.Sender();
  ASSERT_TRUE(sender.ok());
  EXPECT_EQ(*sender, key.EthAddress());
}

TEST(TransactionTest, TamperedFieldChangesSender) {
  auto key = secp256k1::PrivateKey::FromSeed("tx-sender");
  Transaction tx = MakeTx();
  tx.Sign(key);
  tx.value += U256(1);  // tamper after signing
  auto sender = tx.Sender();
  // Recovery either fails or yields a different address — never the signer.
  if (sender.ok()) {
    EXPECT_NE(*sender, key.EthAddress());
  }
}

TEST(TransactionTest, EncodeDecodeRoundTrip) {
  auto key = secp256k1::PrivateKey::FromSeed("round-trip");
  Transaction tx = MakeTx();
  tx.Sign(key);
  Bytes wire = tx.Encode();
  auto decoded = Transaction::Decode(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->nonce, tx.nonce);
  EXPECT_EQ(decoded->gas_price, tx.gas_price);
  EXPECT_EQ(decoded->gas_limit, tx.gas_limit);
  EXPECT_EQ(decoded->to, tx.to);
  EXPECT_EQ(decoded->value, tx.value);
  EXPECT_EQ(decoded->data, tx.data);
  EXPECT_EQ(decoded->signature, tx.signature);
  EXPECT_EQ(decoded->Hash(), tx.Hash());
}

TEST(TransactionTest, ContractCreationEncoding) {
  auto key = secp256k1::PrivateKey::FromSeed("creator");
  Transaction tx = MakeTx();
  tx.to = std::nullopt;
  tx.Sign(key);
  EXPECT_TRUE(tx.IsContractCreation());
  auto decoded = Transaction::Decode(tx.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->IsContractCreation());
}

TEST(TransactionTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(Transaction::Decode(Bytes{0x01, 0x02}).ok());
  EXPECT_FALSE(Transaction::Decode(Bytes{0xc0}).ok());  // empty list
}

TEST(TransactionTest, IntrinsicGas) {
  Transaction tx = MakeTx();
  tx.data = Bytes{0x01, 0x00, 0x02};  // 2 non-zero + 1 zero
  EXPECT_EQ(tx.IntrinsicGas(),
            evm::gas::kTx + 2 * evm::gas::kTxDataNonZero + evm::gas::kTxDataZero);
  tx.to = std::nullopt;
  EXPECT_EQ(tx.IntrinsicGas(), evm::gas::kTx + evm::gas::kTxCreate +
                                   2 * evm::gas::kTxDataNonZero +
                                   evm::gas::kTxDataZero);
  tx.data.clear();
  tx.to = Address();
  EXPECT_EQ(tx.IntrinsicGas(), evm::gas::kTx);
}

// Counter delta helper; returns 0 deltas when metrics are disabled.
class CounterDelta {
 public:
  explicit CounterDelta(const std::string& name)
      : name_(name), start_(Read()) {}
  uint64_t Value() const { return Read() - start_; }

 private:
  uint64_t Read() const {
    obs::Registry* r = obs::Registry::Global();
    return r != nullptr ? r->CounterValue(name_) : 0;
  }
  std::string name_;
  uint64_t start_;
};

bool MetricsEnabled() { return obs::Registry::Global() != nullptr; }

TEST(TransactionTest, SenderIsMemoized) {
  auto key = secp256k1::PrivateKey::FromSeed("memo-sender");
  Transaction tx = MakeTx();
  tx.Sign(key);
  CounterDelta misses("chain.sender_cache_misses");
  CounterDelta hits("chain.sender_cache_hits");
  for (int i = 0; i < 5; ++i) {
    auto sender = tx.Sender();
    ASSERT_TRUE(sender.ok());
    EXPECT_EQ(*sender, key.EthAddress());
  }
  if (MetricsEnabled()) {
    // One ECDSA recovery, then four cache hits.
    EXPECT_EQ(misses.Value(), 1u);
    EXPECT_EQ(hits.Value(), 4u);
  }
}

TEST(TransactionTest, SenderCacheInvalidatedByFieldMutation) {
  auto key = secp256k1::PrivateKey::FromSeed("memo-mutate");
  Transaction tx = MakeTx();
  tx.Sign(key);
  ASSERT_TRUE(tx.Sender().ok());
  // Mutating any signed field changes the signing hash, so the memo must
  // not serve the stale sender.
  tx.nonce += 1;
  auto tampered = tx.Sender();
  if (tampered.ok()) {
    EXPECT_NE(*tampered, key.EthAddress());
  }
  // Re-signing repairs the transaction and refreshes the memo.
  tx.Sign(key);
  auto sender = tx.Sender();
  ASSERT_TRUE(sender.ok());
  EXPECT_EQ(*sender, key.EthAddress());
}

TEST(TransactionTest, SenderCacheInvalidatedBySignatureMutation) {
  auto key = secp256k1::PrivateKey::FromSeed("memo-sig");
  Transaction tx = MakeTx();
  tx.Sign(key);
  ASSERT_TRUE(tx.Sender().ok());
  // Same signing hash, different signature: the memo is keyed on both.
  tx.signature.s += U256(1);
  CounterDelta hits("chain.sender_cache_hits");
  auto tampered = tx.Sender();
  if (tampered.ok()) {
    EXPECT_NE(*tampered, key.EthAddress());
  }
  if (MetricsEnabled()) {
    EXPECT_EQ(hits.Value(), 0u);
  }
}

TEST(TransactionTest, CopyCarriesWarmSenderCache) {
  auto key = secp256k1::PrivateKey::FromSeed("memo-copy");
  Transaction tx = MakeTx();
  tx.Sign(key);
  ASSERT_TRUE(tx.Sender().ok());  // warm the memo
  Transaction copy = tx;          // pool/block copies keep the warm cache
  CounterDelta misses("chain.sender_cache_misses");
  auto sender = copy.Sender();
  ASSERT_TRUE(sender.ok());
  EXPECT_EQ(*sender, key.EthAddress());
  if (MetricsEnabled()) {
    EXPECT_EQ(misses.Value(), 0u);
  }
}

TEST(TransactionTest, DistinctHashes) {
  auto key = secp256k1::PrivateKey::FromSeed("hashes");
  Transaction a = MakeTx();
  a.Sign(key);
  Transaction b = MakeTx();
  b.nonce = 8;
  b.Sign(key);
  EXPECT_NE(a.Hash(), b.Hash());
  EXPECT_NE(a.SigningHash(), b.SigningHash());
}

}  // namespace
}  // namespace onoff::chain
