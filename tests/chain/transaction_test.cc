#include "chain/transaction.h"

#include <gtest/gtest.h>

#include "evm/gas.h"

namespace onoff::chain {
namespace {

Transaction MakeTx() {
  Transaction tx;
  tx.nonce = 7;
  tx.gas_price = U256(20);
  tx.gas_limit = 100'000;
  auto to = Address::FromHex("0x1111111111111111111111111111111111111111");
  tx.to = *to;
  tx.value = U256(1'000'000);
  tx.data = Bytes{0x01, 0x00, 0x02};
  return tx;
}

TEST(TransactionTest, SignAndRecoverSender) {
  auto key = secp256k1::PrivateKey::FromSeed("tx-sender");
  Transaction tx = MakeTx();
  tx.Sign(key);
  auto sender = tx.Sender();
  ASSERT_TRUE(sender.ok());
  EXPECT_EQ(*sender, key.EthAddress());
}

TEST(TransactionTest, TamperedFieldChangesSender) {
  auto key = secp256k1::PrivateKey::FromSeed("tx-sender");
  Transaction tx = MakeTx();
  tx.Sign(key);
  tx.value += U256(1);  // tamper after signing
  auto sender = tx.Sender();
  // Recovery either fails or yields a different address — never the signer.
  if (sender.ok()) {
    EXPECT_NE(*sender, key.EthAddress());
  }
}

TEST(TransactionTest, EncodeDecodeRoundTrip) {
  auto key = secp256k1::PrivateKey::FromSeed("round-trip");
  Transaction tx = MakeTx();
  tx.Sign(key);
  Bytes wire = tx.Encode();
  auto decoded = Transaction::Decode(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->nonce, tx.nonce);
  EXPECT_EQ(decoded->gas_price, tx.gas_price);
  EXPECT_EQ(decoded->gas_limit, tx.gas_limit);
  EXPECT_EQ(decoded->to, tx.to);
  EXPECT_EQ(decoded->value, tx.value);
  EXPECT_EQ(decoded->data, tx.data);
  EXPECT_EQ(decoded->signature, tx.signature);
  EXPECT_EQ(decoded->Hash(), tx.Hash());
}

TEST(TransactionTest, ContractCreationEncoding) {
  auto key = secp256k1::PrivateKey::FromSeed("creator");
  Transaction tx = MakeTx();
  tx.to = std::nullopt;
  tx.Sign(key);
  EXPECT_TRUE(tx.IsContractCreation());
  auto decoded = Transaction::Decode(tx.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->IsContractCreation());
}

TEST(TransactionTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(Transaction::Decode(Bytes{0x01, 0x02}).ok());
  EXPECT_FALSE(Transaction::Decode(Bytes{0xc0}).ok());  // empty list
}

TEST(TransactionTest, IntrinsicGas) {
  Transaction tx = MakeTx();
  tx.data = Bytes{0x01, 0x00, 0x02};  // 2 non-zero + 1 zero
  EXPECT_EQ(tx.IntrinsicGas(),
            evm::gas::kTx + 2 * evm::gas::kTxDataNonZero + evm::gas::kTxDataZero);
  tx.to = std::nullopt;
  EXPECT_EQ(tx.IntrinsicGas(), evm::gas::kTx + evm::gas::kTxCreate +
                                   2 * evm::gas::kTxDataNonZero +
                                   evm::gas::kTxDataZero);
  tx.data.clear();
  tx.to = Address();
  EXPECT_EQ(tx.IntrinsicGas(), evm::gas::kTx);
}

TEST(TransactionTest, DistinctHashes) {
  auto key = secp256k1::PrivateKey::FromSeed("hashes");
  Transaction a = MakeTx();
  a.Sign(key);
  Transaction b = MakeTx();
  b.nonce = 8;
  b.Sign(key);
  EXPECT_NE(a.Hash(), b.Hash());
  EXPECT_NE(a.SigningHash(), b.SigningHash());
}

}  // namespace
}  // namespace onoff::chain
