#include "chain/blockchain.h"

#include <gtest/gtest.h>

#include <array>

#include "easm/assembler.h"
#include "evm/gas.h"
#include "obs/metrics.h"

namespace onoff::chain {
namespace {

const U256 kEther = U256(10).Exp(U256(18));

class BlockchainTest : public ::testing::Test {
 protected:
  BlockchainTest()
      : alice_(secp256k1::PrivateKey::FromSeed("alice")),
        bob_(secp256k1::PrivateKey::FromSeed("bob")) {
    chain_.FundAccount(alice_.EthAddress(), kEther * U256(100));
    chain_.FundAccount(bob_.EthAddress(), kEther * U256(100));
  }

  Blockchain chain_;
  secp256k1::PrivateKey alice_;
  secp256k1::PrivateKey bob_;
};

TEST_F(BlockchainTest, GenesisBlock) {
  ASSERT_EQ(chain_.blocks().size(), 1u);
  EXPECT_EQ(chain_.blocks()[0].header.number, 0u);
  EXPECT_EQ(chain_.Height(), 0u);
}

TEST_F(BlockchainTest, SimpleValueTransfer) {
  U256 bob_before = chain_.GetBalance(bob_.EthAddress());
  auto receipt = chain_.Execute(alice_, bob_.EthAddress(), kEther, {}, 21'000);
  ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
  EXPECT_TRUE(receipt->success);
  EXPECT_EQ(receipt->gas_used, 21'000u);
  EXPECT_EQ(chain_.GetBalance(bob_.EthAddress()), bob_before + kEther);
  // Alice paid value + gas (gas price 1).
  EXPECT_EQ(chain_.GetBalance(alice_.EthAddress()),
            kEther * U256(100) - kEther - U256(21'000));
  // Miner got the fee.
  EXPECT_EQ(chain_.GetBalance(Address()), U256(21'000));
}

TEST_F(BlockchainTest, NonceSequenceEnforced) {
  // Regression (pool gap-holding): a gapped nonce used to be mined into a
  // guaranteed "nonce mismatch" failure. It must instead stay pending until
  // the gap fills, then mine in nonce order.
  Transaction tx;
  tx.nonce = 2;  // gapped: account nonce is 0
  tx.gas_price = U256(1);
  tx.gas_limit = 21'000;
  tx.to = bob_.EthAddress();
  tx.value = U256(1);
  tx.Sign(alice_);
  auto hash = chain_.SubmitTransaction(tx);
  ASSERT_TRUE(hash.ok());
  chain_.MineBlock();
  EXPECT_FALSE(chain_.GetReceipt(*hash).ok());  // held, not mined
  EXPECT_EQ(chain_.PendingCount(), 1u);
  EXPECT_EQ(chain_.GetNonce(alice_.EthAddress()), 0u);
  for (uint64_t nonce : {0u, 1u}) {
    Transaction fill;
    fill.nonce = nonce;
    fill.gas_price = U256(1);
    fill.gas_limit = 21'000;
    fill.to = bob_.EthAddress();
    fill.value = U256(1);
    fill.Sign(alice_);
    ASSERT_TRUE(chain_.SubmitTransaction(fill).ok());
  }
  const Block& block = chain_.MineBlock();
  EXPECT_EQ(block.transactions.size(), 3u);
  auto receipt = chain_.GetReceipt(*hash);
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(receipt->success);
  EXPECT_EQ(chain_.GetNonce(alice_.EthAddress()), 3u);
}

TEST_F(BlockchainTest, NonceIncrementsPerTransaction) {
  EXPECT_EQ(chain_.GetNonce(alice_.EthAddress()), 0u);
  ASSERT_TRUE(chain_.Execute(alice_, bob_.EthAddress(), U256(1), {}, 21'000).ok());
  EXPECT_EQ(chain_.GetNonce(alice_.EthAddress()), 1u);
  ASSERT_TRUE(chain_.Execute(alice_, bob_.EthAddress(), U256(1), {}, 21'000).ok());
  EXPECT_EQ(chain_.GetNonce(alice_.EthAddress()), 2u);
}

TEST_F(BlockchainTest, ContractDeploymentAndCall) {
  // Init code returning runtime that echoes CALLVALUE... simpler: runtime
  // stores 42 at slot 0 on any call.
  // Runtime: PUSH1 42 PUSH1 0 SSTORE STOP = 602a60005500
  // Init: PUSH6 <runtime> PUSH1 0 MSTORE ... easier via CODECOPY pattern:
  auto init = easm::Assemble(R"(
    PUSH1 0x06
    PUSH @runtime PUSH1 0x01 ADD
    PUSH1 0x00
    CODECOPY
    PUSH1 0x06 PUSH1 0x00 RETURN
    runtime: DB 0x602a60005500
  )");
  ASSERT_TRUE(init.ok());

  auto receipt = chain_.Execute(alice_, std::nullopt, U256(), *init, 500'000);
  ASSERT_TRUE(receipt.ok());
  ASSERT_TRUE(receipt->success) << std::string(receipt->output.begin(),
                                               receipt->output.end());
  Address contract = receipt->contract_address;
  EXPECT_FALSE(contract.IsZero());
  EXPECT_EQ(chain_.GetCode(contract).size(), 6u);
  EXPECT_EQ(contract, evm::Evm::ContractAddress(alice_.EthAddress(), 0));

  // Call it; storage slot 0 becomes 42.
  auto call_receipt = chain_.Execute(alice_, contract, U256(), {}, 100'000);
  ASSERT_TRUE(call_receipt.ok());
  EXPECT_TRUE(call_receipt->success);
  EXPECT_EQ(chain_.GetStorage(contract, U256(0)), U256(42));
}

TEST_F(BlockchainTest, DeploymentGasMatchesFormula) {
  // Deploying N bytes of runtime code costs
  // 21000 + 32000 + calldata + execution + 200*N.
  auto init = easm::Assemble(R"(
    PUSH1 0x06
    PUSH @runtime PUSH1 0x01 ADD
    PUSH1 0x00
    CODECOPY
    PUSH1 0x06 PUSH1 0x00 RETURN
    runtime: DB 0x602a60005500
  )");
  ASSERT_TRUE(init.ok());
  auto receipt = chain_.Execute(alice_, std::nullopt, U256(), *init, 500'000);
  ASSERT_TRUE(receipt.ok());
  ASSERT_TRUE(receipt->success);
  Transaction probe;
  probe.to = std::nullopt;
  probe.data = *init;
  uint64_t intrinsic = probe.IntrinsicGas();
  // Execution: 5 pushes (15) + ADD (3) + CODECOPY (3 + 3*1 words) + RETURN
  // memory expansion (3) ... assert the deposit dominates as expected.
  uint64_t expected_min = intrinsic + 200 * 6;
  EXPECT_GE(receipt->gas_used, expected_min);
  EXPECT_LT(receipt->gas_used, expected_min + 100);
}

TEST_F(BlockchainTest, RevertedCallRefundsRemainingGas) {
  auto init = easm::Assemble(R"(
    PUSH1 0x05
    PUSH @runtime PUSH1 0x01 ADD
    PUSH1 0x00
    CODECOPY
    PUSH1 0x05 PUSH1 0x00 RETURN
    runtime: DB 0x60006000fd00
  )");  // runtime: PUSH1 0 PUSH1 0 REVERT
  ASSERT_TRUE(init.ok());
  auto deploy = chain_.Execute(alice_, std::nullopt, U256(), *init, 500'000);
  ASSERT_TRUE(deploy.ok());
  ASSERT_TRUE(deploy->success);

  U256 before = chain_.GetBalance(alice_.EthAddress());
  auto receipt = chain_.Execute(alice_, deploy->contract_address, U256(), {},
                                100'000);
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(receipt->success);
  // Only 21000 + a few gas consumed, the rest refunded.
  EXPECT_LT(receipt->gas_used, 22'000u);
  EXPECT_EQ(chain_.GetBalance(alice_.EthAddress()),
            before - U256(receipt->gas_used));
}

TEST_F(BlockchainTest, InsufficientBalanceRejectedAtApply) {
  auto poor = secp256k1::PrivateKey::FromSeed("poor");
  Transaction tx;
  tx.nonce = 0;
  tx.gas_price = U256(1);
  tx.gas_limit = 21'000;
  tx.to = bob_.EthAddress();
  tx.value = U256(1);
  tx.Sign(poor);
  auto hash = chain_.SubmitTransaction(tx);
  ASSERT_TRUE(hash.ok());
  chain_.MineBlock();
  auto receipt = chain_.GetReceipt(*hash);
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(receipt->success);
}

TEST_F(BlockchainTest, SubmitValidation) {
  Transaction tx;
  tx.nonce = 0;
  tx.gas_price = U256(1);
  tx.gas_limit = 20'000;  // below intrinsic
  tx.to = bob_.EthAddress();
  tx.Sign(alice_);
  EXPECT_FALSE(chain_.SubmitTransaction(tx).ok());
  tx.gas_limit = 9'000'000;  // above block limit
  tx.Sign(alice_);
  EXPECT_FALSE(chain_.SubmitTransaction(tx).ok());
  // Unsigned tx has no recoverable sender.
  Transaction unsigned_tx;
  unsigned_tx.gas_limit = 21'000;
  unsigned_tx.to = bob_.EthAddress();
  EXPECT_FALSE(chain_.SubmitTransaction(unsigned_tx).ok());
}

TEST_F(BlockchainTest, DuplicateSubmissionRejected) {
  Transaction tx;
  tx.nonce = 0;
  tx.gas_price = U256(1);
  tx.gas_limit = 21'000;
  tx.to = bob_.EthAddress();
  tx.value = U256(5);
  tx.Sign(alice_);
  EXPECT_TRUE(chain_.SubmitTransaction(tx).ok());
  EXPECT_FALSE(chain_.SubmitTransaction(tx).ok());
}

TEST_F(BlockchainTest, BlockChainingAndTimestamps) {
  uint64_t t0 = chain_.Now();
  const Block& b1 = chain_.MineBlock();
  EXPECT_EQ(b1.header.number, 1u);
  EXPECT_EQ(b1.header.timestamp, t0);
  const Block& b2 = chain_.MineBlock();
  EXPECT_EQ(b2.header.parent_hash, chain_.blocks()[1].Hash());
  EXPECT_GT(b2.header.timestamp, t0);
  chain_.AdvanceTime(1000);
  const Block& b3 = chain_.MineBlock();
  EXPECT_GE(b3.header.timestamp, t0 + 1000);
}

TEST_F(BlockchainTest, StateRootInHeaderMatchesState) {
  ASSERT_TRUE(chain_.Execute(alice_, bob_.EthAddress(), U256(9), {}, 21'000).ok());
  EXPECT_EQ(chain_.blocks().back().header.state_root, chain_.state().StateRoot());
}

TEST_F(BlockchainTest, CallReadOnlyDoesNotMutate) {
  auto init = easm::Assemble(R"(
    PUSH1 0x06
    PUSH @runtime PUSH1 0x01 ADD
    PUSH1 0x00
    CODECOPY
    PUSH1 0x06 PUSH1 0x00 RETURN
    runtime: DB 0x602a60005500
  )");
  ASSERT_TRUE(init.ok());
  auto deploy = chain_.Execute(alice_, std::nullopt, U256(), *init, 500'000);
  ASSERT_TRUE(deploy.ok());
  Address contract = deploy->contract_address;
  Hash32 root_before = chain_.state().StateRoot();
  auto res = chain_.CallReadOnly(alice_.EthAddress(), contract, {});
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(chain_.state().StateRoot(), root_before);
  EXPECT_TRUE(chain_.GetStorage(contract, U256(0)).IsZero());
}

TEST_F(BlockchainTest, ManyTransactionsInOneBlock) {
  for (int i = 0; i < 10; ++i) {
    Transaction tx;
    tx.nonce = i;
    tx.gas_price = U256(1);
    tx.gas_limit = 21'000;
    tx.to = bob_.EthAddress();
    tx.value = U256(1);
    tx.Sign(alice_);
    ASSERT_TRUE(chain_.SubmitTransaction(tx).ok());
  }
  const Block& block = chain_.MineBlock();
  EXPECT_EQ(block.transactions.size(), 10u);
  EXPECT_EQ(block.header.gas_used, 210'000u);
  EXPECT_EQ(chain_.GetNonce(alice_.EthAddress()), 10u);
  EXPECT_EQ(chain_.TotalGasUsed(), 210'000u);
}

TEST_F(BlockchainTest, GetLogsFiltersByAddressAndTopic) {
  // Contract emitting LOG1 with topic 0x07 and 32 bytes of data per call.
  auto init = easm::Assemble(R"(
    PUSH1 0x0e
    PUSH @runtime PUSH1 0x01 ADD
    PUSH1 0x00
    CODECOPY
    PUSH1 0x0e PUSH1 0x00 RETURN
    runtime: DB 0x6042600052600760206000a100
  )");
  ASSERT_TRUE(init.ok());
  auto deploy = chain_.Execute(alice_, std::nullopt, U256(), *init, 500'000);
  ASSERT_TRUE(deploy->success);
  Address emitter = deploy->contract_address;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(chain_.Execute(alice_, emitter, U256(), {}, 100'000)->success);
  }
  // All logs from the emitter.
  Blockchain::LogQuery q;
  q.address = emitter;
  auto logs = chain_.GetLogs(q);
  ASSERT_EQ(logs.size(), 3u);
  EXPECT_EQ(logs[0].topics[0], U256(7));
  EXPECT_EQ(U256::FromBigEndianTruncating(logs[0].data), U256(0x42));
  // Topic filter: matching and non-matching.
  q.topic0 = U256(7);
  EXPECT_EQ(chain_.GetLogs(q).size(), 3u);
  q.topic0 = U256(8);
  EXPECT_TRUE(chain_.GetLogs(q).empty());
  // Block-range filter.
  Blockchain::LogQuery range;
  range.address = emitter;
  range.from_block = chain_.Height();  // only the last block
  EXPECT_EQ(chain_.GetLogs(range).size(), 1u);
  // Address filter excludes other contracts.
  Blockchain::LogQuery other;
  other.address = bob_.EthAddress();
  EXPECT_TRUE(chain_.GetLogs(other).empty());
}

TEST_F(BlockchainTest, ReceiptLookupMissing) {
  EXPECT_FALSE(chain_.GetReceipt(Hash32{}).ok());
}

TEST_F(BlockchainTest, BlockGasLimitDefersOverflowToNextBlock) {
  // Three transactions with a 4M gas limit each against the default 8M
  // block gas limit: the first block takes two, the third is deferred —
  // not dropped — and mines in the next block.
  for (int i = 0; i < 3; ++i) {
    Transaction tx;
    tx.nonce = i;
    tx.gas_price = U256(1);
    tx.gas_limit = 4'000'000;
    tx.to = bob_.EthAddress();
    tx.value = U256(1);
    tx.Sign(alice_);
    ASSERT_TRUE(chain_.SubmitTransaction(tx).ok());
  }
  const Block& b1 = chain_.MineBlock();
  EXPECT_EQ(b1.transactions.size(), 2u);
  EXPECT_EQ(b1.transactions[0].nonce, 0u);
  EXPECT_EQ(b1.transactions[1].nonce, 1u);
  const Block& b2 = chain_.MineBlock();
  ASSERT_EQ(b2.transactions.size(), 1u);
  EXPECT_EQ(b2.transactions[0].nonce, 2u);
  // All three applied in order despite the split.
  EXPECT_EQ(chain_.GetNonce(alice_.EthAddress()), 3u);
  EXPECT_EQ(chain_.GetBalance(bob_.EthAddress()),
            kEther * U256(100) + U256(3));
}

TEST_F(BlockchainTest, OutOfOrderNoncesMineInNonceOrder) {
  // A sender whose transactions arrive as {2, 0, 1} must not burn two of
  // them on nonce-gap failures: the pool reorders per sender.
  std::array<Hash32, 3> hashes;
  for (uint64_t nonce : {2u, 0u, 1u}) {
    Transaction tx;
    tx.nonce = nonce;
    tx.gas_price = U256(1);
    tx.gas_limit = 21'000;
    tx.to = bob_.EthAddress();
    tx.value = U256(1);
    tx.Sign(alice_);
    auto hash = chain_.SubmitTransaction(tx);
    ASSERT_TRUE(hash.ok());
    hashes[nonce] = *hash;
  }
  const Block& block = chain_.MineBlock();
  ASSERT_EQ(block.transactions.size(), 3u);
  for (uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(block.transactions[i].nonce, i);
    auto receipt = chain_.GetReceipt(hashes[i]);
    ASSERT_TRUE(receipt.ok());
    EXPECT_TRUE(receipt->success) << "nonce " << i;
  }
  EXPECT_EQ(chain_.GetNonce(alice_.EthAddress()), 3u);
}

TEST_F(BlockchainTest, GetCodeForFreshAddressIsStableEmptySingleton) {
  auto fresh = secp256k1::PrivateKey::FromSeed("fresh");
  auto fresh2 = secp256k1::PrivateKey::FromSeed("fresh2");
  const Bytes& code = chain_.GetCode(fresh.EthAddress());
  EXPECT_TRUE(code.empty());
  // Absent accounts all map to one function-local singleton, so the
  // reference stays valid (and identical) across calls and state changes.
  EXPECT_EQ(&code, &chain_.GetCode(fresh2.EthAddress()));
  ASSERT_TRUE(
      chain_.Execute(alice_, bob_.EthAddress(), U256(1), {}, 21'000).ok());
  EXPECT_TRUE(code.empty());
  EXPECT_EQ(&code, &chain_.GetCode(fresh.EthAddress()));
}

TEST_F(BlockchainTest, SstoreRefundCappedAtHalfGasUsed) {
  // Runtime stores calldata word 0 at slot 0:
  //   PUSH1 0 CALLDATALOAD PUSH1 0 SSTORE STOP = 60003560005500
  auto init = easm::Assemble(R"(
    PUSH1 0x07
    PUSH @runtime PUSH1 0x01 ADD
    PUSH1 0x00
    CODECOPY
    PUSH1 0x07 PUSH1 0x00 RETURN
    runtime: DB 0x60003560005500
  )");
  ASSERT_TRUE(init.ok());
  auto deploy = chain_.Execute(alice_, std::nullopt, U256(), *init, 500'000);
  ASSERT_TRUE(deploy.ok());
  ASSERT_TRUE(deploy->success);
  Address contract = deploy->contract_address;

  // Set slot 0 := 1 (zero -> non-zero, 20000 gas, no refund).
  Bytes set_one(32, 0);
  set_one[31] = 1;
  auto set_receipt =
      chain_.Execute(alice_, contract, U256(), set_one, 100'000);
  ASSERT_TRUE(set_receipt.ok());
  ASSERT_TRUE(set_receipt->success);
  EXPECT_EQ(chain_.GetStorage(contract, U256(0)), U256(1));

  // Clear slot 0 (non-zero -> zero): 15000 refund, but the Yellow Paper
  // caps refunds at gas_used / 2. Pre-refund gas:
  //   21000 intrinsic + 9 (PUSH1,CALLDATALOAD,PUSH1) + 5000 SSTORE = 26009
  // cap = 13004 < 15000, so gas_used = 26009 - 13004 = 13005.
  U256 before = chain_.GetBalance(alice_.EthAddress());
  auto clear_receipt = chain_.Execute(alice_, contract, U256(), {}, 100'000);
  ASSERT_TRUE(clear_receipt.ok());
  ASSERT_TRUE(clear_receipt->success);
  EXPECT_TRUE(chain_.GetStorage(contract, U256(0)).IsZero());
  EXPECT_EQ(clear_receipt->gas_used, 13'005u);
  // The capped (not full) refund is what the sender got back.
  EXPECT_EQ(chain_.GetBalance(alice_.EthAddress()),
            before - U256(clear_receipt->gas_used));
}

TEST_F(BlockchainTest, ExactlyOneRecoveryPerTransactionLifecycle) {
  obs::Registry* registry = obs::Registry::Global();
  if (registry == nullptr) {
    GTEST_SKIP() << "metrics disabled (ONOFF_METRICS=0)";
  }
  // Submit -> pool admission -> mining/apply used to recover the sender
  // three times; the memoized sender must collapse that to ONE ECDSA
  // recovery per transaction.
  constexpr int kTxCount = 3;
  uint64_t recover_before = registry->CounterValue("crypto.recover_ops");
  uint64_t base_nonce = chain_.GetNonce(alice_.EthAddress());
  std::array<Hash32, kTxCount> hashes;
  for (int i = 0; i < kTxCount; ++i) {
    Transaction tx;
    tx.nonce = base_nonce + i;  // consecutive nonces so all three pool up
    tx.gas_price = U256(1);
    tx.gas_limit = 21'000;
    tx.to = bob_.EthAddress();
    tx.value = U256(1);
    tx.Sign(alice_);
    auto hash = chain_.SubmitTransaction(tx);
    ASSERT_TRUE(hash.ok()) << hash.status().ToString();
    hashes[i] = *hash;
  }
  chain_.MineBlock();
  for (const Hash32& hash : hashes) {
    auto receipt = chain_.GetReceipt(hash);
    ASSERT_TRUE(receipt.ok());
    EXPECT_TRUE(receipt->success);
  }
  EXPECT_EQ(registry->CounterValue("crypto.recover_ops") - recover_before,
            uint64_t{kTxCount});
}

}  // namespace
}  // namespace onoff::chain
