#include "chain/network.h"

#include <gtest/gtest.h>

#include "contracts/betting.h"  // Ether()
#include "easm/assembler.h"
#include "sim/scheduler.h"
#include "sim/transport.h"

namespace onoff::chain {
namespace {

using contracts::Ether;
using secp256k1::PrivateKey;

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : alice_(PrivateKey::FromSeed("alice")), bob_(PrivateKey::FromSeed("bob")) {
    alloc_ = {{alice_.EthAddress(), Ether(100)},
              {bob_.EthAddress(), Ether(100)}};
    producer_ = std::make_unique<Node>("producer", ChainConfig{}, alloc_);
    for (int i = 0; i < 3; ++i) {
      replicas_.push_back(std::make_unique<Node>(
          "replica" + std::to_string(i), ChainConfig{}, alloc_));
    }
    net_.AddNode(producer_.get());
    for (auto& r : replicas_) net_.AddNode(r.get());
  }

  Transaction Transfer(uint64_t nonce, const U256& amount) {
    Transaction tx;
    tx.nonce = nonce;
    tx.gas_price = U256(1);
    tx.gas_limit = 21'000;
    tx.to = bob_.EthAddress();
    tx.value = amount;
    tx.Sign(alice_);
    return tx;
  }

  PrivateKey alice_;
  PrivateKey bob_;
  GenesisAlloc alloc_;
  std::unique_ptr<Node> producer_;
  std::vector<std::unique_ptr<Node>> replicas_;
  Network net_;
};

TEST_F(NetworkTest, IdenticalGenesis) {
  for (auto& r : replicas_) {
    EXPECT_EQ(r->HeadHash(), producer_->HeadHash());
  }
}

TEST_F(NetworkTest, ReplicasConvergeOnBroadcast) {
  ASSERT_TRUE(producer_->SubmitTransaction(Transfer(0, Ether(1))).ok());
  EXPECT_EQ(net_.ProduceAndBroadcast(producer_.get()), 3u);
  ASSERT_TRUE(producer_->SubmitTransaction(Transfer(1, Ether(2))).ok());
  EXPECT_EQ(net_.ProduceAndBroadcast(producer_.get()), 3u);

  for (auto& r : replicas_) {
    EXPECT_EQ(r->Height(), producer_->Height());
    EXPECT_EQ(r->HeadHash(), producer_->HeadHash());
    EXPECT_EQ(r->chain().GetBalance(bob_.EthAddress()),
              producer_->chain().GetBalance(bob_.EthAddress()));
    EXPECT_EQ(r->chain().state().StateRoot(),
              producer_->chain().state().StateRoot());
    EXPECT_EQ(r->rejected_blocks(), 0u);
  }
}

TEST_F(NetworkTest, TamperedBlockRejectedWithoutCorruption) {
  ASSERT_TRUE(producer_->SubmitTransaction(Transfer(0, Ether(1))).ok());
  Block block = producer_->ProduceBlock();
  // A byzantine producer inflates the transfer before gossiping.
  Block forged = block;
  forged.transactions[0].value = Ether(50);
  EXPECT_EQ(net_.BroadcastBlock(producer_.get(), forged), 0u);
  for (auto& r : replicas_) {
    EXPECT_EQ(r->Height(), 0u);
    EXPECT_EQ(r->rejected_blocks(), 1u);
    EXPECT_EQ(r->chain().GetBalance(bob_.EthAddress()), Ether(100));
  }
  // The honest block still goes through afterwards.
  EXPECT_EQ(net_.BroadcastBlock(producer_.get(), block), 3u);
  for (auto& r : replicas_) {
    EXPECT_EQ(r->HeadHash(), producer_->HeadHash());
  }
}

TEST_F(NetworkTest, ForgedStateRootRejected) {
  Block block = producer_->ProduceBlock();
  Block forged = block;
  forged.header.state_root[5] ^= 0x42;
  EXPECT_EQ(net_.BroadcastBlock(producer_.get(), forged), 0u);
}

TEST_F(NetworkTest, LateJoinerSyncsFromHistory) {
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(producer_->SubmitTransaction(Transfer(i, Ether(1))).ok());
    net_.ProduceAndBroadcast(producer_.get());
  }
  Node late("latecomer", ChainConfig{}, alloc_);
  Status st = late.SyncFrom(producer_->chain().blocks());
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(late.Height(), producer_->Height());
  EXPECT_EQ(late.HeadHash(), producer_->HeadHash());
  EXPECT_EQ(late.chain().GetBalance(bob_.EthAddress()), Ether(104));
}

TEST_F(NetworkTest, ContractStatePropagates) {
  // Deploy a contract through the network and confirm every replica can
  // serve the same storage proofs.
  auto init = easm::Assemble(R"(
    PUSH1 0x06
    PUSH @runtime PUSH1 0x01 ADD
    PUSH1 0x00
    CODECOPY
    PUSH1 0x06 PUSH1 0x00 RETURN
    runtime: DB 0x602a60005500
  )");
  ASSERT_TRUE(init.ok());
  Transaction deploy;
  deploy.nonce = 0;
  deploy.gas_price = U256(1);
  deploy.gas_limit = 500'000;
  deploy.to = std::nullopt;
  deploy.data = *init;
  deploy.Sign(alice_);
  ASSERT_TRUE(producer_->SubmitTransaction(deploy).ok());
  ASSERT_EQ(net_.ProduceAndBroadcast(producer_.get()), 3u);
  Address contract =
      evm::Evm::ContractAddress(alice_.EthAddress(), 0);
  Transaction call;
  call.nonce = 1;
  call.gas_price = U256(1);
  call.gas_limit = 100'000;
  call.to = contract;
  call.Sign(alice_);
  ASSERT_TRUE(producer_->SubmitTransaction(call).ok());
  ASSERT_EQ(net_.ProduceAndBroadcast(producer_.get()), 3u);
  for (auto& r : replicas_) {
    EXPECT_EQ(r->chain().GetStorage(contract, U256(0)), U256(42));
    EXPECT_EQ(r->chain().GetCode(contract).size(), 6u);
  }
}

TEST_F(NetworkTest, InstantTransportMatchesSynchronousBroadcast) {
  // The zero-latency transport is the pre-sim behaviour: the return value
  // still counts deliveries because they land synchronously.
  net_.SetTransport(sim::DefaultInstantTransport());
  ASSERT_TRUE(producer_->SubmitTransaction(Transfer(0, Ether(1))).ok());
  EXPECT_EQ(net_.ProduceAndBroadcast(producer_.get()), 3u);
  for (auto& r : replicas_) {
    EXPECT_EQ(r->HeadHash(), producer_->HeadHash());
  }
}

TEST_F(NetworkTest, SimTransportDefersGossipUntilSchedulerRuns) {
  sim::Scheduler sched;
  sim::SimTransport transport(&sched, 42);
  sim::LinkConfig cfg;
  cfg.latency_ms = 80;
  transport.SetDefaultLink(cfg);
  net_.SetTransport(&transport);

  ASSERT_TRUE(producer_->SubmitTransaction(Transfer(0, Ether(1))).ok());
  net_.ProduceAndBroadcast(producer_.get());
  // Nothing has arrived yet: the blocks are on the wire.
  for (auto& r : replicas_) EXPECT_EQ(r->Height(), 0u);
  sched.RunAll();
  for (auto& r : replicas_) {
    EXPECT_EQ(r->Height(), 1u);
    EXPECT_EQ(r->HeadHash(), producer_->HeadHash());
  }
  EXPECT_EQ(transport.stats().delivered, 3u);
  EXPECT_EQ(sched.NowMs(), 80u);
}

TEST_F(NetworkTest, TamperedBlockOverSimTransportRejectedWithoutCorruption) {
  sim::Scheduler sched;
  sim::SimTransport transport(&sched, 42);
  net_.SetTransport(&transport);

  ASSERT_TRUE(producer_->SubmitTransaction(Transfer(0, Ether(1))).ok());
  Block block = producer_->ProduceBlock();
  Block forged = block;
  forged.transactions[0].value = Ether(50);
  net_.BroadcastBlock(producer_.get(), forged);
  sched.RunAll();
  for (auto& r : replicas_) {
    EXPECT_EQ(r->Height(), 0u);
    EXPECT_EQ(r->rejected_blocks(), 1u);
    EXPECT_EQ(r->chain().GetBalance(bob_.EthAddress()), Ether(100));
  }
  net_.BroadcastBlock(producer_.get(), block);
  sched.RunAll();
  for (auto& r : replicas_) {
    EXPECT_EQ(r->HeadHash(), producer_->HeadHash());
  }
}

TEST_F(NetworkTest, CrashedReplicaCatchesUpViaSyncFrom) {
  sim::Scheduler sched;
  sim::SimTransport transport(&sched, 42);
  net_.SetTransport(&transport);
  transport.Crash("replica0");

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(producer_->SubmitTransaction(Transfer(i, Ether(1))).ok());
    net_.ProduceAndBroadcast(producer_.get());
    sched.RunAll();
  }
  EXPECT_EQ(replicas_[0]->Height(), 0u);  // missed every block
  EXPECT_EQ(replicas_[1]->Height(), 3u);

  transport.Restart("replica0");
  auto applied = net_.CatchUp(replicas_[0].get(), *producer_);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(*applied, 3u);
  EXPECT_EQ(replicas_[0]->HeadHash(), producer_->HeadHash());
  // A second catch-up finds nothing to apply.
  applied = net_.CatchUp(replicas_[0].get(), *producer_);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 0u);
}

TEST_F(NetworkTest, SameSeedRunsAreIdentical) {
  // The determinism contract: identical seeds replay identical runs —
  // same head hashes, same heights, same transport stats.
  auto run = [this](uint64_t seed) {
    GenesisAlloc alloc = alloc_;
    Node producer("producer", ChainConfig{}, alloc);
    std::vector<std::unique_ptr<Node>> replicas;
    Network net;
    net.AddNode(&producer);
    for (int i = 0; i < 3; ++i) {
      replicas.push_back(std::make_unique<Node>("replica" + std::to_string(i),
                                                ChainConfig{}, alloc));
      net.AddNode(replicas.back().get());
    }
    sim::Scheduler sched;
    sim::SimTransport transport(&sched, seed);
    sim::LinkConfig cfg;
    cfg.latency_ms = 40;
    cfg.jitter_ms = 60;
    cfg.loss = 0.3;
    transport.SetDefaultLink(cfg);
    net.SetTransport(&transport);
    for (int i = 0; i < 5; ++i) {
      Transaction tx = Transfer(i, Ether(1));
      EXPECT_TRUE(producer.SubmitTransaction(tx).ok());
      net.ProduceAndBroadcast(&producer);
      sched.RunAll();
    }
    struct Outcome {
      std::vector<uint64_t> heights;
      std::vector<Hash32> heads;
      sim::SimTransport::Stats stats;
      uint64_t clock;
    } out;
    for (auto& r : replicas) {
      out.heights.push_back(r->Height());
      out.heads.push_back(r->HeadHash());
    }
    out.stats = transport.stats();
    out.clock = sched.NowMs();
    return out;
  };
  auto a = run(1337), b = run(1337), c = run(7331);
  EXPECT_EQ(a.heights, b.heights);
  EXPECT_EQ(a.heads, b.heads);
  EXPECT_EQ(a.clock, b.clock);
  EXPECT_EQ(a.stats.sent, b.stats.sent);
  EXPECT_EQ(a.stats.delivered, b.stats.delivered);
  EXPECT_EQ(a.stats.dropped_loss, b.stats.dropped_loss);
  EXPECT_EQ(a.stats.delay_ms_sum, b.stats.delay_ms_sum);
  // With 30% loss some replica must have missed at least one block in one
  // of the seeds; the two seeds should not produce identical traffic.
  EXPECT_NE(a.stats.delay_ms_sum, c.stats.delay_ms_sum);
}

}  // namespace
}  // namespace onoff::chain
