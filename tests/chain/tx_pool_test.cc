#include "chain/tx_pool.h"

#include <gtest/gtest.h>

#include "crypto/secp256k1.h"

namespace onoff::chain {
namespace {

Transaction MakeTx(const secp256k1::PrivateKey& key, uint64_t nonce,
                   uint64_t gas_limit = 21'000) {
  Transaction tx;
  tx.nonce = nonce;
  tx.gas_price = U256(1);
  tx.gas_limit = gas_limit;
  tx.to = Address{};
  tx.value = U256(1);
  tx.Sign(key);
  return tx;
}

TEST(TxPoolTest, OutOfOrderNoncesReorderedPerSender) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  TxPool pool;
  for (uint64_t nonce : {2u, 0u, 1u}) {
    ASSERT_TRUE(pool.Add(MakeTx(alice, nonce)).ok());
  }
  std::vector<Transaction> taken = pool.Take(10);
  ASSERT_EQ(taken.size(), 3u);
  EXPECT_EQ(taken[0].nonce, 0u);
  EXPECT_EQ(taken[1].nonce, 1u);
  EXPECT_EQ(taken[2].nonce, 2u);
  EXPECT_TRUE(pool.empty());
}

TEST(TxPoolTest, ReorderingPreservesSenderSlots) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  auto bob = secp256k1::PrivateKey::FromSeed("bob");
  TxPool pool;
  // Submission slots: [alice, bob, alice]. Alice's transactions arrive
  // nonce-reversed; bob keeps his slot in between.
  ASSERT_TRUE(pool.Add(MakeTx(alice, 1)).ok());
  ASSERT_TRUE(pool.Add(MakeTx(bob, 0)).ok());
  ASSERT_TRUE(pool.Add(MakeTx(alice, 0)).ok());
  std::vector<Transaction> taken = pool.Take(10);
  ASSERT_EQ(taken.size(), 3u);
  EXPECT_EQ(*taken[0].Sender(), alice.EthAddress());
  EXPECT_EQ(taken[0].nonce, 0u);
  EXPECT_EQ(*taken[1].Sender(), bob.EthAddress());
  EXPECT_EQ(*taken[2].Sender(), alice.EthAddress());
  EXPECT_EQ(taken[2].nonce, 1u);
}

TEST(TxPoolTest, InOrderSubmissionIsUnchanged) {
  // Replay determinism: a block's transactions re-submitted in block order
  // must come back out in exactly that order (the reorder is idempotent).
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  auto bob = secp256k1::PrivateKey::FromSeed("bob");
  TxPool pool;
  std::vector<Transaction> block = {MakeTx(alice, 0), MakeTx(bob, 0),
                                    MakeTx(alice, 1), MakeTx(bob, 1)};
  for (const Transaction& tx : block) ASSERT_TRUE(pool.Add(tx).ok());
  std::vector<Transaction> taken = pool.Take(10);
  ASSERT_EQ(taken.size(), block.size());
  for (size_t i = 0; i < block.size(); ++i) {
    EXPECT_EQ(taken[i].Hash(), block[i].Hash()) << "slot " << i;
  }
}

TEST(TxPoolTest, GasBudgetStopsPacking) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  TxPool pool;
  for (uint64_t nonce : {0u, 1u, 2u}) {
    ASSERT_TRUE(pool.Add(MakeTx(alice, nonce, 4'000'000)).ok());
  }
  // 4M + 4M fills an 8M budget; the third must stay pending.
  std::vector<Transaction> taken = pool.Take(10, 8'000'000);
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].nonce, 0u);
  EXPECT_EQ(taken[1].nonce, 1u);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<Transaction> rest = pool.Take(10, 8'000'000);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].nonce, 2u);
}

TEST(TxPoolTest, BudgetStopDefersInsteadOfSkipping) {
  // When a transaction does not fit, packing STOPS; later (smaller)
  // transactions are not pulled ahead of it, or nonce ordering would break.
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  TxPool pool;
  ASSERT_TRUE(pool.Add(MakeTx(alice, 0, 5'000'000)).ok());
  ASSERT_TRUE(pool.Add(MakeTx(alice, 1, 2'000'000)).ok());
  ASSERT_TRUE(pool.Add(MakeTx(alice, 2, 100'000)).ok());
  std::vector<Transaction> taken = pool.Take(10, 6'000'000);
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0].nonce, 0u);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(TxPoolTest, MaxCountStillApplies) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  TxPool pool;
  for (uint64_t nonce : {0u, 1u, 2u}) {
    ASSERT_TRUE(pool.Add(MakeTx(alice, nonce)).ok());
  }
  EXPECT_EQ(pool.Take(2).size(), 2u);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(TxPoolTest, DuplicateRejectedAndContainsTracksTakes) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  TxPool pool;
  Transaction tx = MakeTx(alice, 0);
  ASSERT_TRUE(pool.Add(tx).ok());
  EXPECT_FALSE(pool.Add(tx).ok());
  EXPECT_TRUE(pool.Contains(tx.Hash()));
  ASSERT_EQ(pool.Take(10).size(), 1u);
  EXPECT_FALSE(pool.Contains(tx.Hash()));
  // Once mined (taken), the same hash may be re-submitted, e.g. by a
  // replica replaying the block.
  EXPECT_TRUE(pool.Add(tx).ok());
}

}  // namespace
}  // namespace onoff::chain
