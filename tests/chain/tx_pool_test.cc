#include "chain/tx_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <unordered_map>
#include <vector>

#include "crypto/secp256k1.h"

namespace onoff::chain {
namespace {

Transaction MakeTx(const secp256k1::PrivateKey& key, uint64_t nonce,
                   uint64_t gas_limit = 21'000) {
  Transaction tx;
  tx.nonce = nonce;
  tx.gas_price = U256(1);
  tx.gas_limit = gas_limit;
  tx.to = Address{};
  tx.value = U256(1);
  tx.Sign(key);
  return tx;
}

TEST(TxPoolTest, OutOfOrderNoncesReorderedPerSender) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  TxPool pool;
  for (uint64_t nonce : {2u, 0u, 1u}) {
    ASSERT_TRUE(pool.Add(MakeTx(alice, nonce)).ok());
  }
  std::vector<Transaction> taken = pool.Take(10);
  ASSERT_EQ(taken.size(), 3u);
  EXPECT_EQ(taken[0].nonce, 0u);
  EXPECT_EQ(taken[1].nonce, 1u);
  EXPECT_EQ(taken[2].nonce, 2u);
  EXPECT_TRUE(pool.empty());
}

TEST(TxPoolTest, ReorderingPreservesSenderSlots) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  auto bob = secp256k1::PrivateKey::FromSeed("bob");
  TxPool pool;
  // Submission slots: [alice, bob, alice]. Alice's transactions arrive
  // nonce-reversed; bob keeps his slot in between.
  ASSERT_TRUE(pool.Add(MakeTx(alice, 1)).ok());
  ASSERT_TRUE(pool.Add(MakeTx(bob, 0)).ok());
  ASSERT_TRUE(pool.Add(MakeTx(alice, 0)).ok());
  std::vector<Transaction> taken = pool.Take(10);
  ASSERT_EQ(taken.size(), 3u);
  EXPECT_EQ(*taken[0].Sender(), alice.EthAddress());
  EXPECT_EQ(taken[0].nonce, 0u);
  EXPECT_EQ(*taken[1].Sender(), bob.EthAddress());
  EXPECT_EQ(*taken[2].Sender(), alice.EthAddress());
  EXPECT_EQ(taken[2].nonce, 1u);
}

TEST(TxPoolTest, InOrderSubmissionIsUnchanged) {
  // Replay determinism: a block's transactions re-submitted in block order
  // must come back out in exactly that order (the reorder is idempotent).
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  auto bob = secp256k1::PrivateKey::FromSeed("bob");
  TxPool pool;
  std::vector<Transaction> block = {MakeTx(alice, 0), MakeTx(bob, 0),
                                    MakeTx(alice, 1), MakeTx(bob, 1)};
  for (const Transaction& tx : block) ASSERT_TRUE(pool.Add(tx).ok());
  std::vector<Transaction> taken = pool.Take(10);
  ASSERT_EQ(taken.size(), block.size());
  for (size_t i = 0; i < block.size(); ++i) {
    EXPECT_EQ(taken[i].Hash(), block[i].Hash()) << "slot " << i;
  }
}

TEST(TxPoolTest, GasBudgetStopsPacking) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  TxPool pool;
  for (uint64_t nonce : {0u, 1u, 2u}) {
    ASSERT_TRUE(pool.Add(MakeTx(alice, nonce, 4'000'000)).ok());
  }
  // 4M + 4M fills an 8M budget; the third must stay pending.
  std::vector<Transaction> taken = pool.Take(10, 8'000'000);
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].nonce, 0u);
  EXPECT_EQ(taken[1].nonce, 1u);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<Transaction> rest = pool.Take(10, 8'000'000);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].nonce, 2u);
}

TEST(TxPoolTest, BudgetStopDefersInsteadOfSkipping) {
  // When a transaction does not fit, packing STOPS; later (smaller)
  // transactions are not pulled ahead of it, or nonce ordering would break.
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  TxPool pool;
  ASSERT_TRUE(pool.Add(MakeTx(alice, 0, 5'000'000)).ok());
  ASSERT_TRUE(pool.Add(MakeTx(alice, 1, 2'000'000)).ok());
  ASSERT_TRUE(pool.Add(MakeTx(alice, 2, 100'000)).ok());
  std::vector<Transaction> taken = pool.Take(10, 6'000'000);
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0].nonce, 0u);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(TxPoolTest, MaxCountStillApplies) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  TxPool pool;
  for (uint64_t nonce : {0u, 1u, 2u}) {
    ASSERT_TRUE(pool.Add(MakeTx(alice, nonce)).ok());
  }
  EXPECT_EQ(pool.Take(2).size(), 2u);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(TxPoolTest, DuplicateRejectedAndContainsTracksTakes) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  TxPool pool;
  Transaction tx = MakeTx(alice, 0);
  ASSERT_TRUE(pool.Add(tx).ok());
  EXPECT_FALSE(pool.Add(tx).ok());
  EXPECT_TRUE(pool.Contains(tx.Hash()));
  ASSERT_EQ(pool.Take(10).size(), 1u);
  EXPECT_FALSE(pool.Contains(tx.Hash()));
  // Regression: a taken (in-flight/mined) transaction re-gossiped to the
  // pool used to be re-admitted and mined a second time. The hash now sits
  // in the recently-taken window and the duplicate is rejected.
  EXPECT_TRUE(pool.RecentlyTaken(tx.Hash()));
  EXPECT_FALSE(pool.Add(tx).ok());
  EXPECT_TRUE(pool.empty());
}

TEST(TxPoolTest, RecentlyTakenWindowIsBounded) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  TxPoolConfig config;
  config.recent_take_batches = 2;
  TxPool pool(config);
  Transaction tx = MakeTx(alice, 0);
  ASSERT_TRUE(pool.Add(tx).ok());
  ASSERT_EQ(pool.Take(10).size(), 1u);
  EXPECT_FALSE(pool.Add(tx).ok());
  // Two further non-empty take batches on the same stripe push the hash out
  // of the bounded window; afterwards the (stale, unminable) duplicate is
  // admitted again rather than remembered forever.
  for (uint64_t nonce : {1u, 2u}) {
    ASSERT_TRUE(pool.Add(MakeTx(alice, nonce)).ok());
    ASSERT_EQ(pool.Take(10).size(), 1u);
  }
  EXPECT_FALSE(pool.RecentlyTaken(tx.Hash()));
  EXPECT_TRUE(pool.Add(tx).ok());
}

TEST(TxPoolTest, OverBudgetSenderDoesNotBlockOthers) {
  // Regression: one sender's transaction exceeding the remaining block
  // budget used to stop packing entirely (head-of-line blocking). It must
  // only defer that sender's sequence; other senders still pack.
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  auto bob = secp256k1::PrivateKey::FromSeed("bob");
  auto carol = secp256k1::PrivateKey::FromSeed("carol");
  TxPool pool;
  ASSERT_TRUE(pool.Add(MakeTx(alice, 0, 7'000'000)).ok());
  ASSERT_TRUE(pool.Add(MakeTx(bob, 0, 5'000'000)).ok());
  ASSERT_TRUE(pool.Add(MakeTx(carol, 0, 900'000)).ok());
  std::vector<Transaction> taken = pool.Take(10, 8'000'000);
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(*taken[0].Sender(), alice.EthAddress());
  EXPECT_EQ(*taken[1].Sender(), carol.EthAddress());
  // Bob stays pending and packs next block.
  ASSERT_EQ(pool.size(), 1u);
  std::vector<Transaction> next = pool.Take(10, 8'000'000);
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(*next[0].Sender(), bob.EthAddress());
}

TEST(TxPoolTest, NonceGapHeldUntilFilled) {
  // Regression: a gapped nonce used to be packed and mined straight into a
  // nonce-mismatch failure. The gapped entry must stay pending until the
  // missing nonce arrives.
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  TxPool pool;
  ASSERT_TRUE(pool.Add(MakeTx(alice, 0)).ok());
  ASSERT_TRUE(pool.Add(MakeTx(alice, 2)).ok());
  std::vector<Transaction> taken = pool.Take(10);
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0].nonce, 0u);
  EXPECT_EQ(pool.size(), 1u);
  // Still gapped relative to its own lowest pending nonce? No — without a
  // base-nonce provider the base is the lowest pending nonce, so nonce 2
  // now packs alone. Wire a provider to model the chain's view instead.
  pool.set_base_nonce_provider([](const Address&) { return uint64_t{1}; });
  EXPECT_TRUE(pool.Take(10).empty());
  EXPECT_EQ(pool.size(), 1u);
  ASSERT_TRUE(pool.Add(MakeTx(alice, 1)).ok());
  std::vector<Transaction> rest = pool.Take(10);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].nonce, 1u);
  EXPECT_EQ(rest[1].nonce, 2u);
}

TEST(TxPoolTest, StaleNonceDropped) {
  // With a base-nonce provider wired, entries below the account nonce can
  // never be mined and are dropped instead of packed into certain failure.
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  TxPool pool;
  pool.set_base_nonce_provider([](const Address&) { return uint64_t{2}; });
  ASSERT_TRUE(pool.Add(MakeTx(alice, 0)).ok());
  ASSERT_TRUE(pool.Add(MakeTx(alice, 1)).ok());
  ASSERT_TRUE(pool.Add(MakeTx(alice, 2)).ok());
  std::vector<Transaction> taken = pool.Take(10);
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0].nonce, 2u);
  EXPECT_TRUE(pool.empty());
}

TEST(TxPoolTest, ConcurrentAddsLandInArrivalOrderPerThread) {
  // Lock-striping smoke test (runs under TSan in CI): concurrent Adds from
  // many senders while a consumer Takes. Every transaction must come out
  // exactly once, in ascending nonce order per sender.
  constexpr int kSenders = 8;
  constexpr uint64_t kPerSender = 24;
  std::vector<secp256k1::PrivateKey> keys;
  for (int i = 0; i < kSenders; ++i) {
    keys.push_back(
        secp256k1::PrivateKey::FromSeed("sender-" + std::to_string(i)));
  }
  TxPool pool;
  std::atomic<bool> done{false};
  std::vector<Transaction> taken;
  std::thread consumer([&] {
    while (!done.load() || !pool.empty()) {
      for (Transaction& tx : pool.Take(4)) taken.push_back(std::move(tx));
    }
  });
  std::vector<std::thread> producers;
  for (int i = 0; i < kSenders; ++i) {
    producers.emplace_back([&, i] {
      for (uint64_t nonce = 0; nonce < kPerSender; ++nonce) {
        ASSERT_TRUE(pool.Add(MakeTx(keys[i], nonce)).ok());
      }
    });
  }
  for (std::thread& t : producers) t.join();
  done.store(true);
  consumer.join();
  ASSERT_EQ(taken.size(), kSenders * kPerSender);
  std::unordered_map<Address, uint64_t> next_nonce;
  for (const Transaction& tx : taken) {
    Address sender = *tx.Sender();
    EXPECT_EQ(tx.nonce, next_nonce[sender]) << "per-sender order broken";
    ++next_nonce[sender];
  }
}

}  // namespace
}  // namespace onoff::chain
