// Serial-vs-parallel equivalence: the optimistic executor must produce
// byte-identical results to serial execution — same state roots, same
// receipt encodings, same gas — for conflict-free blocks, heavily
// conflicting blocks, and randomized mixes of both.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "chain/blockchain.h"
#include "easm/assembler.h"

namespace onoff::chain {
namespace {

const U256 kEther = U256(10).Exp(U256(18));

// Init code deploying a runtime that increments storage slot 0 on every
// call: PUSH1 0 SLOAD PUSH1 1 ADD PUSH1 0 SSTORE STOP.
Bytes IncrementContractInit() {
  auto init = easm::Assemble(R"(
    PUSH1 0x0a
    PUSH @runtime PUSH1 0x01 ADD
    PUSH1 0x00
    CODECOPY
    PUSH1 0x0a PUSH1 0x00 RETURN
    runtime: DB 0x60005460010160005500
  )");
  EXPECT_TRUE(init.ok());
  return init.ok() ? *init : Bytes{};
}

ChainConfig ParallelConfig() {
  ChainConfig config;
  config.exec_mode = ExecMode::kParallel;
  config.exec_workers = 4;
  // Every test block also cross-checks itself against a serial replay of
  // the pre-block state and aborts on divergence.
  config.assert_parallel_equivalence = true;
  return config;
}

Transaction SignedTx(const secp256k1::PrivateKey& key, uint64_t nonce,
                     std::optional<Address> to, const U256& value, Bytes data,
                     uint64_t gas_limit) {
  Transaction tx;
  tx.nonce = nonce;
  tx.gas_price = U256(1);
  tx.gas_limit = gas_limit;
  tx.to = to;
  tx.value = value;
  tx.data = std::move(data);
  tx.Sign(key);
  return tx;
}

// Mines the same transactions on both chains and checks the results are
// byte-identical: state roots, receipt encodings, block gas.
void SubmitMineAndCompare(Blockchain& serial, Blockchain& parallel,
                          const std::vector<Transaction>& txs) {
  for (const Transaction& tx : txs) {
    ASSERT_TRUE(serial.SubmitTransaction(tx).ok());
    ASSERT_TRUE(parallel.SubmitTransaction(tx).ok());
  }
  const Block& sb = serial.MineBlock();
  const Block& pb = parallel.MineBlock();
  ASSERT_EQ(sb.transactions.size(), txs.size());
  ASSERT_EQ(pb.transactions.size(), txs.size());
  EXPECT_EQ(sb.header.state_root, pb.header.state_root);
  EXPECT_EQ(sb.header.receipt_root, pb.header.receipt_root);
  EXPECT_EQ(sb.header.tx_root, pb.header.tx_root);
  EXPECT_EQ(sb.header.gas_used, pb.header.gas_used);
  for (const Transaction& tx : txs) {
    auto sr = serial.GetReceipt(tx.Hash());
    auto pr = parallel.GetReceipt(tx.Hash());
    ASSERT_TRUE(sr.ok());
    ASSERT_TRUE(pr.ok());
    EXPECT_EQ(sr->Encode(), pr->Encode());
  }
}

class ParallelExecTest : public ::testing::Test {
 protected:
  ParallelExecTest() : serial_(ChainConfig()), parallel_(ParallelConfig()) {
    for (int i = 0; i < 8; ++i) {
      keys_.push_back(
          secp256k1::PrivateKey::FromSeed("key-" + std::to_string(i)));
      serial_.FundAccount(keys_.back().EthAddress(), kEther * U256(100));
      parallel_.FundAccount(keys_.back().EthAddress(), kEther * U256(100));
    }
  }

  // Deploys the increment contract on both chains (same address on both).
  Address DeployIncrementContract(size_t key_index, uint64_t nonce) {
    Bytes init = IncrementContractInit();
    Transaction deploy = SignedTx(keys_[key_index], nonce, std::nullopt,
                                  U256(), init, 500'000);
    SubmitMineAndCompare(serial_, parallel_, {deploy});
    auto receipt = parallel_.GetReceipt(deploy.Hash());
    EXPECT_TRUE(receipt.ok() && receipt->success);
    return receipt->contract_address;
  }

  Blockchain serial_;
  Blockchain parallel_;
  std::vector<secp256k1::PrivateKey> keys_;
};

TEST_F(ParallelExecTest, DisjointTransfersCommitWithoutConflicts) {
  // Eight senders paying eight distinct fresh recipients: fully disjoint,
  // every speculation commits verbatim.
  std::vector<Transaction> txs;
  for (size_t i = 0; i < keys_.size(); ++i) {
    auto recipient =
        secp256k1::PrivateKey::FromSeed("recipient-" + std::to_string(i));
    txs.push_back(SignedTx(keys_[i], 0, recipient.EthAddress(),
                           U256(1'000 + i), {}, 21'000));
  }
  SubmitMineAndCompare(serial_, parallel_, txs);
}

TEST_F(ParallelExecTest, ConflictingStorageWritesMatchSerial) {
  // Every transaction increments the same storage slot of the same
  // contract: a fully serialized workload. Speculations all read the
  // pre-block counter, so all but the first conflict and re-execute; the
  // final counter must equal the transaction count.
  Address counter = DeployIncrementContract(0, 0);
  std::vector<Transaction> txs;
  for (size_t i = 0; i < keys_.size(); ++i) {
    uint64_t nonce = i == 0 ? 1 : 0;
    txs.push_back(SignedTx(keys_[i], nonce, counter, U256(), {}, 100'000));
  }
  SubmitMineAndCompare(serial_, parallel_, txs);
  EXPECT_EQ(parallel_.GetStorage(counter, U256(0)), U256(keys_.size()));
}

TEST_F(ParallelExecTest, SameSenderSequenceStaysInNonceOrder) {
  // One sender, five dependent transactions: nonce reads force each later
  // speculation into conflict + ordered re-execution.
  auto recipient = secp256k1::PrivateKey::FromSeed("recipient");
  std::vector<Transaction> txs;
  for (uint64_t nonce = 0; nonce < 5; ++nonce) {
    txs.push_back(SignedTx(keys_[0], nonce, recipient.EthAddress(),
                           U256(10), {}, 21'000));
  }
  SubmitMineAndCompare(serial_, parallel_, txs);
  EXPECT_EQ(parallel_.GetNonce(keys_[0].EthAddress()), 5u);
  EXPECT_EQ(parallel_.GetBalance(recipient.EthAddress()), U256(50));
}

TEST_F(ParallelExecTest, PayingTheCoinbaseDirectlyStillMatches) {
  // Transfers *to* the coinbase read/write the same balance the fee
  // credits land on — the nastiest interleaving for the commutative-fee
  // trick. (Default coinbase is the zero address.)
  std::vector<Transaction> txs;
  for (size_t i = 0; i < 4; ++i) {
    txs.push_back(SignedTx(keys_[i], 0, Address(), U256(7), {}, 21'000));
  }
  SubmitMineAndCompare(serial_, parallel_, txs);
}

TEST_F(ParallelExecTest, RandomizedWorkloadFuzz) {
  // Randomized serial-vs-parallel equivalence: a mix of value transfers
  // (some to shared hot recipients), counter increments against a shared
  // contract, and same-sender chains, across several blocks. Deterministic
  // seeds keep failures reproducible.
  Address counter = DeployIncrementContract(0, 0);
  std::mt19937 rng(20'260'808);
  std::vector<uint64_t> nonces(keys_.size(), 0);
  nonces[0] = 1;  // key 0 spent nonce 0 deploying the contract
  for (int block = 0; block < 6; ++block) {
    std::uniform_int_distribution<size_t> tx_count(2, 12);
    std::uniform_int_distribution<size_t> pick_key(0, keys_.size() - 1);
    std::uniform_int_distribution<int> pick_kind(0, 3);
    std::vector<Transaction> txs;
    size_t n = tx_count(rng);
    for (size_t t = 0; t < n; ++t) {
      size_t k = pick_key(rng);
      switch (pick_kind(rng)) {
        case 0:  // transfer to a fresh recipient (disjoint)
          txs.push_back(SignedTx(
              keys_[k], nonces[k]++,
              secp256k1::PrivateKey::FromSeed("fresh-" + std::to_string(block) +
                                              "-" + std::to_string(t))
                  .EthAddress(),
              U256(100), {}, 21'000));
          break;
        case 1:  // transfer to a shared hot recipient (balance conflicts)
          txs.push_back(SignedTx(keys_[k], nonces[k]++,
                                 keys_[(k + 1) % keys_.size()].EthAddress(),
                                 U256(55), {}, 21'000));
          break;
        case 2:  // increment the shared counter (storage conflicts)
          txs.push_back(
              SignedTx(keys_[k], nonces[k]++, counter, U256(), {}, 100'000));
          break;
        default:  // pay the coinbase (fee-path conflicts)
          txs.push_back(
              SignedTx(keys_[k], nonces[k]++, Address(), U256(3), {}, 21'000));
          break;
      }
    }
    SubmitMineAndCompare(serial_, parallel_, txs);
  }
  // Cross-check the full chains, not just per-block roots.
  ASSERT_EQ(serial_.blocks().size(), parallel_.blocks().size());
  for (size_t i = 0; i < serial_.blocks().size(); ++i) {
    EXPECT_EQ(serial_.blocks()[i].Hash(), parallel_.blocks()[i].Hash())
        << "block " << i;
  }
  EXPECT_EQ(serial_.TotalGasUsed(), parallel_.TotalGasUsed());
}

}  // namespace
}  // namespace onoff::chain
