// LOG0–LOG4 entries travel end-to-end: emitted by the EVM, carried on the
// transaction receipt, queryable via GetLogs, and rendered by
// DescribeReceipt (the CLI's receipt output).

#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "easm/assembler.h"

namespace onoff::chain {
namespace {

const U256 kEther = U256(10).Exp(U256(18));

// Wraps assembled runtime bytes in the standard CODECOPY deployer.
Bytes DeployerFor(const Bytes& runtime) {
  char size_hex[8];
  std::snprintf(size_hex, sizeof size_hex, "%04zx", runtime.size());
  std::string src = std::string("PUSH2 0x") + size_hex +
                    "\nPUSH @runtime PUSH1 0x01 ADD\nPUSH1 0x00\nCODECOPY\n" +
                    "PUSH2 0x" + size_hex + " PUSH1 0x00 RETURN\n" +
                    "runtime: DB 0x" + ToHex(runtime) + "\n";
  auto init = easm::Assemble(src);
  EXPECT_TRUE(init.ok()) << init.status().ToString();
  return *init;
}

TEST(ReceiptLogTest, LogsRideTheReceipt) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  Blockchain chain;
  chain.FundAccount(alice.EthAddress(), kEther);

  // On call: MSTORE 0x2a at 0, emit LOG1(topic 0x77, data = that word),
  // then LOG0 with empty data.
  auto runtime = easm::Assemble(R"(
    PUSH1 0x2a PUSH1 0x00 MSTORE
    PUSH1 0x77 PUSH1 0x20 PUSH1 0x00 LOG1
    PUSH1 0x00 PUSH1 0x00 LOG0
    STOP
  )");
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();

  auto deploy =
      chain.Execute(alice, std::nullopt, U256(), DeployerFor(*runtime),
                    500'000);
  ASSERT_TRUE(deploy.ok());
  ASSERT_TRUE(deploy->success);
  Address contract = deploy->contract_address;

  auto receipt = chain.Execute(alice, contract, U256(), {}, 200'000);
  ASSERT_TRUE(receipt.ok());
  ASSERT_TRUE(receipt->success);

  ASSERT_EQ(receipt->logs.size(), 2u);
  const evm::LogEntry& first = receipt->logs[0];
  EXPECT_EQ(first.address, contract);
  ASSERT_EQ(first.topics.size(), 1u);
  EXPECT_EQ(first.topics[0], U256(0x77));
  ASSERT_EQ(first.data.size(), 32u);
  EXPECT_EQ(first.data[31], 0x2a);
  const evm::LogEntry& second = receipt->logs[1];
  EXPECT_TRUE(second.topics.empty());
  EXPECT_TRUE(second.data.empty());

  // The same entries come back through the eth_getLogs-style query.
  Blockchain::LogQuery query;
  query.address = contract;
  EXPECT_EQ(chain.GetLogs(query).size(), 2u);
  query.topic0 = U256(0x77);
  EXPECT_EQ(chain.GetLogs(query).size(), 1u);

  // And the receipt lookup returns them too (not just the Execute copy).
  auto looked_up = chain.GetReceipt(receipt->tx_hash);
  ASSERT_TRUE(looked_up.ok());
  EXPECT_EQ(looked_up->logs.size(), 2u);
}

TEST(ReceiptLogTest, DescribeReceiptRendersLogs) {
  Receipt receipt;
  receipt.tx_hash[0] = 0xab;
  receipt.success = true;
  receipt.block_number = 7;
  receipt.gas_used = 30'000;
  receipt.cumulative_gas_used = 30'000;
  evm::LogEntry log;
  std::array<uint8_t, 20> raw{};
  raw[19] = 0xcc;
  log.address = Address(raw);
  log.topics.push_back(U256(0x77));
  log.data = {0xde, 0xad};
  receipt.logs.push_back(log);
  receipt.logs.push_back(evm::LogEntry{});  // LOG0, no data

  std::string text = DescribeReceipt(receipt);
  EXPECT_NE(text.find("status:   success"), std::string::npos);
  EXPECT_NE(text.find("block:    7"), std::string::npos);
  EXPECT_NE(text.find("logs:     2"), std::string::npos);
  EXPECT_NE(text.find("log[0]"), std::string::npos);
  EXPECT_NE(text.find(log.address.ToHex()), std::string::npos);
  EXPECT_NE(text.find(U256(0x77).ToHexFull()), std::string::npos);
  EXPECT_NE(text.find("0xdead"), std::string::npos);
  EXPECT_NE(text.find("(empty)"), std::string::npos);
}

TEST(ReceiptLogTest, FailedTransactionDropsLogs) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  Blockchain chain;
  chain.FundAccount(alice.EthAddress(), kEther);

  // Emits a LOG0 then reverts: the receipt must not carry the entry.
  auto runtime = easm::Assemble(R"(
    PUSH1 0x00 PUSH1 0x00 LOG0
    PUSH1 0x00 PUSH1 0x00 REVERT
  )");
  ASSERT_TRUE(runtime.ok());
  auto deploy =
      chain.Execute(alice, std::nullopt, U256(), DeployerFor(*runtime),
                    500'000);
  ASSERT_TRUE(deploy.ok());
  ASSERT_TRUE(deploy->success);

  auto receipt =
      chain.Execute(alice, deploy->contract_address, U256(), {}, 200'000);
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(receipt->success);
  EXPECT_TRUE(receipt->logs.empty());
  Blockchain::LogQuery query;
  query.address = deploy->contract_address;
  EXPECT_TRUE(chain.GetLogs(query).empty());
}

}  // namespace
}  // namespace onoff::chain
