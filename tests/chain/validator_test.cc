#include "chain/validator.h"

#include <gtest/gtest.h>

#include "contracts/betting.h"  // Ether()
#include "easm/assembler.h"

namespace onoff::chain {
namespace {

using contracts::Ether;
using secp256k1::PrivateKey;

class ValidatorTest : public ::testing::Test {
 protected:
  ValidatorTest()
      : alice_(PrivateKey::FromSeed("alice")), bob_(PrivateKey::FromSeed("bob")) {
    alloc_ = {{alice_.EthAddress(), Ether(100)}, {bob_.EthAddress(), Ether(50)}};
    for (const auto& [addr, amount] : alloc_) chain_.FundAccount(addr, amount);
  }

  // A chain with transfers, a deployment, contract calls and empty blocks.
  void BuildActivity() {
    ASSERT_TRUE(chain_.Execute(alice_, bob_.EthAddress(), Ether(1), {}, 21'000)
                    .ok());
    chain_.MineBlock();  // empty block
    chain_.AdvanceTime(500);
    auto init = easm::Assemble(R"(
      PUSH1 0x06
      PUSH @runtime PUSH1 0x01 ADD
      PUSH1 0x00
      CODECOPY
      PUSH1 0x06 PUSH1 0x00 RETURN
      runtime: DB 0x602a60005500
    )");
    ASSERT_TRUE(init.ok());
    auto deploy = chain_.Execute(alice_, std::nullopt, U256(), *init, 500'000);
    ASSERT_TRUE(deploy.ok());
    ASSERT_TRUE(deploy->success);
    ASSERT_TRUE(chain_
                    .Execute(bob_, deploy->contract_address, U256(), {},
                             100'000)
                    .ok());
  }

  Blockchain chain_;
  PrivateKey alice_;
  PrivateKey bob_;
  GenesisAlloc alloc_;
};

TEST_F(ValidatorTest, FreshChainVerifies) {
  EXPECT_TRUE(VerifyChain(chain_, alloc_).ok());
}

TEST_F(ValidatorTest, ActiveChainVerifies) {
  BuildActivity();
  Status st = VerifyChain(chain_, alloc_);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST_F(ValidatorTest, WrongAllocationRejected) {
  BuildActivity();
  GenesisAlloc wrong = {{alice_.EthAddress(), Ether(1)}};
  Status st = VerifyChain(chain_, wrong);
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailed);
}

TEST_F(ValidatorTest, TamperedTransactionDetected) {
  BuildActivity();
  std::vector<Block> blocks = chain_.blocks();
  // Inflate the value of a mined transfer.
  for (auto& block : blocks) {
    for (auto& tx : block.transactions) {
      if (tx.value == Ether(1)) {
        tx.value = Ether(2);
      }
    }
  }
  Status st = VerifyChain(blocks, alloc_, chain_.config());
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailed);
}

TEST_F(ValidatorTest, TamperedStateRootDetected) {
  BuildActivity();
  std::vector<Block> blocks = chain_.blocks();
  blocks.back().header.state_root[0] ^= 0xff;
  Status st = VerifyChain(blocks, alloc_, chain_.config());
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailed);
}

TEST_F(ValidatorTest, ReorderedBlocksDetected) {
  BuildActivity();
  std::vector<Block> blocks = chain_.blocks();
  ASSERT_GE(blocks.size(), 3u);
  std::swap(blocks[1], blocks[2]);
  Status st = VerifyChain(blocks, alloc_, chain_.config());
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailed);
}

TEST_F(ValidatorTest, DroppedTransactionDetected) {
  BuildActivity();
  std::vector<Block> blocks = chain_.blocks();
  for (auto& block : blocks) {
    if (!block.transactions.empty()) {
      block.transactions.pop_back();
      break;
    }
  }
  Status st = VerifyChain(blocks, alloc_, chain_.config());
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailed);
}

TEST_F(ValidatorTest, EmptyChainRejected) {
  EXPECT_EQ(VerifyChain({}, alloc_, chain_.config()).code(),
            StatusCode::kInvalidArgument);
}

// Serial and parallel sender pre-recovery must be observationally
// identical: same Status code AND same message, on valid and invalid
// chains alike.
class ValidatorParallelTest : public ValidatorTest {
 protected:
  void ExpectBothModesAgree(const std::vector<Block>& blocks,
                            StatusCode expected) {
    VerifyOptions serial{.parallel_sender_recovery = false};
    VerifyOptions parallel{.parallel_sender_recovery = true};
    Status serial_st = VerifyChain(blocks, alloc_, chain_.config(), serial);
    Status parallel_st = VerifyChain(blocks, alloc_, chain_.config(), parallel);
    EXPECT_EQ(serial_st.code(), expected) << serial_st.ToString();
    EXPECT_EQ(parallel_st.code(), serial_st.code());
    EXPECT_EQ(parallel_st.message(), serial_st.message());
  }
};

TEST_F(ValidatorParallelTest, AgreeOnValidChain) {
  BuildActivity();
  ExpectBothModesAgree(chain_.blocks(), StatusCode::kOk);
}

TEST_F(ValidatorParallelTest, AgreeOnManyTransactionBlocks) {
  // Enough transactions per block that the pre-recovery pool actually fans
  // out. SendTransaction always uses the state nonce, so batch-submit with
  // explicit consecutive nonces instead.
  uint64_t alice_nonce = 0;
  uint64_t bob_nonce = 0;
  for (int block = 0; block < 3; ++block) {
    for (int i = 0; i < 8; ++i) {
      const PrivateKey& signer = i % 2 == 0 ? alice_ : bob_;
      uint64_t& nonce = i % 2 == 0 ? alice_nonce : bob_nonce;
      Transaction tx;
      tx.nonce = nonce++;
      tx.gas_price = U256(1);
      tx.gas_limit = 21'000;
      tx.to = bob_.EthAddress();
      tx.value = U256(1);
      tx.Sign(signer);
      auto hash = chain_.SubmitTransaction(tx);
      ASSERT_TRUE(hash.ok()) << hash.status().ToString();
    }
    chain_.MineBlock();
  }
  ExpectBothModesAgree(chain_.blocks(), StatusCode::kOk);
}

TEST_F(ValidatorParallelTest, AgreeOnTamperedTransaction) {
  BuildActivity();
  std::vector<Block> blocks = chain_.blocks();
  for (auto& block : blocks) {
    for (auto& tx : block.transactions) {
      if (tx.value == Ether(1)) tx.value = Ether(2);
    }
  }
  ExpectBothModesAgree(blocks, StatusCode::kVerificationFailed);
}

TEST_F(ValidatorParallelTest, AgreeOnCorruptedSignature) {
  BuildActivity();
  std::vector<Block> blocks = chain_.blocks();
  bool corrupted = false;
  for (auto& block : blocks) {
    if (!block.transactions.empty()) {
      // An unrecoverable signature: the parallel pre-pass must not cache
      // the failure, and the serial replay must report the same rejection.
      block.transactions[0].signature.r = U256(0);
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  ExpectBothModesAgree(blocks, StatusCode::kVerificationFailed);
}

TEST_F(ValidatorParallelTest, AgreeOnTamperedStateRoot) {
  BuildActivity();
  std::vector<Block> blocks = chain_.blocks();
  blocks.back().header.state_root[0] ^= 0xff;
  ExpectBothModesAgree(blocks, StatusCode::kVerificationFailed);
}

}  // namespace
}  // namespace onoff::chain
