#include "trie/trie.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "support/bytes.h"
#include "support/u256.h"

namespace onoff::trie {
namespace {

std::string RootHex(const Trie& t) {
  Hash32 h = t.RootHash();
  return ToHex(BytesView(h.data(), h.size()));
}

TEST(TrieTest, EmptyRootMatchesEthereum) {
  Trie t;
  EXPECT_TRUE(t.IsEmpty());
  EXPECT_EQ(RootHex(t),
            "56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421");
}

TEST(TrieTest, EthereumWikiDogVector) {
  // The canonical example from the Ethereum MPT documentation.
  Trie t;
  t.Put(BytesOf("doe"), BytesOf("reindeer"));
  t.Put(BytesOf("dog"), BytesOf("puppy"));
  t.Put(BytesOf("dogglesworth"), BytesOf("cat"));
  EXPECT_EQ(RootHex(t),
            "8aad789dff2f538bca5d8ea56e8abe10f4c7ba3a5dea95fea4cd6e7c3a1168d3");
}

TEST(TrieTest, EthereumFooVector) {
  // From the ethereum/tests trietest.json "foo" case.
  Trie t;
  t.Put(BytesOf("foo"), BytesOf("bar"));
  t.Put(BytesOf("food"), BytesOf("bass"));
  EXPECT_EQ(RootHex(t),
            "17beaa1648bafa633cda809c90c04af50fc8aed3cb40d16efbddee6fdf63c4c3");
}

TEST(TrieTest, EthereumAnyOrderVector) {
  // From ethereum/tests trieanyorder.json: same root in any insert order.
  std::vector<std::pair<std::string, std::string>> kv = {
      {"do", "verb"}, {"horse", "stallion"}, {"doge", "coin"}, {"dog", "puppy"}};
  const std::string expected =
      "5991bb8c6514148a29db676a14ac506cd2cd5775ace63c30a4fe457715e9ac84";
  std::sort(kv.begin(), kv.end());
  do {
    Trie t;
    for (const auto& [k, v] : kv) t.Put(BytesOf(k), BytesOf(v));
    EXPECT_EQ(RootHex(t), expected);
  } while (std::next_permutation(kv.begin(), kv.end()));
}

TEST(TrieTest, GetReturnsStoredValues) {
  Trie t;
  t.Put(BytesOf("alpha"), BytesOf("1"));
  t.Put(BytesOf("alphabet"), BytesOf("2"));
  t.Put(BytesOf("beta"), BytesOf("3"));
  auto v = t.Get(BytesOf("alpha"));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, BytesOf("1"));
  v = t.Get(BytesOf("alphabet"));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, BytesOf("2"));
  EXPECT_FALSE(t.Get(BytesOf("alph")).ok());
  EXPECT_FALSE(t.Get(BytesOf("gamma")).ok());
  EXPECT_TRUE(t.Contains(BytesOf("beta")));
}

TEST(TrieTest, OverwriteChangesRoot) {
  Trie t;
  t.Put(BytesOf("k"), BytesOf("v1"));
  Hash32 r1 = t.RootHash();
  t.Put(BytesOf("k"), BytesOf("v2"));
  EXPECT_NE(t.RootHash(), r1);
  t.Put(BytesOf("k"), BytesOf("v1"));
  EXPECT_EQ(t.RootHash(), r1);
}

TEST(TrieTest, DeleteRestoresPriorRoot) {
  Trie t;
  t.Put(BytesOf("doe"), BytesOf("reindeer"));
  t.Put(BytesOf("dog"), BytesOf("puppy"));
  Hash32 before = t.RootHash();
  t.Put(BytesOf("dogglesworth"), BytesOf("cat"));
  EXPECT_NE(t.RootHash(), before);
  t.Delete(BytesOf("dogglesworth"));
  EXPECT_EQ(t.RootHash(), before);
  EXPECT_FALSE(t.Get(BytesOf("dogglesworth")).ok());
  EXPECT_TRUE(t.Get(BytesOf("dog")).ok());
}

TEST(TrieTest, DeleteAllYieldsEmptyRoot) {
  Trie t;
  std::vector<std::string> keys = {"a", "ab", "abc", "abd", "b", "xyz"};
  for (const auto& k : keys) t.Put(BytesOf(k), BytesOf("v" + k));
  for (const auto& k : keys) t.Delete(BytesOf(k));
  EXPECT_EQ(RootHex(t),
            "56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421");
}

TEST(TrieTest, EmptyValuePutDeletes) {
  Trie t;
  t.Put(BytesOf("k"), BytesOf("v"));
  t.Put(BytesOf("k"), Bytes{});
  EXPECT_TRUE(t.IsEmpty());
  EXPECT_FALSE(t.Get(BytesOf("k")).ok());
}

TEST(TrieTest, DeleteMissingKeyIsNoOp) {
  Trie t;
  t.Put(BytesOf("present"), BytesOf("yes"));
  Hash32 before = t.RootHash();
  t.Delete(BytesOf("absent"));
  t.Delete(BytesOf("presenx"));
  t.Delete(BytesOf("presentlonger"));
  EXPECT_EQ(t.RootHash(), before);
}

TEST(TrieTest, HexPrefixEncoding) {
  // Vectors from the Ethereum hex-prefix spec.
  EXPECT_EQ(ToHex(HexPrefixEncode({1, 2, 3, 4, 5}, false)), "112345");
  EXPECT_EQ(ToHex(HexPrefixEncode({0, 1, 2, 3, 4, 5}, false)), "00012345");
  EXPECT_EQ(ToHex(HexPrefixEncode({0, 15, 1, 12, 11, 8}, true)), "200f1cb8");
  EXPECT_EQ(ToHex(HexPrefixEncode({15, 1, 12, 11, 8}, true)), "3f1cb8");
  EXPECT_EQ(ToHex(HexPrefixEncode({}, false)), "00");
  EXPECT_EQ(ToHex(HexPrefixEncode({}, true)), "20");
}

TEST(TrieTest, NibbleConversion) {
  auto n = BytesToNibbles(Bytes{0xab, 0x01});
  EXPECT_EQ(n, (std::vector<uint8_t>{0xa, 0xb, 0x0, 0x1}));
  EXPECT_TRUE(BytesToNibbles(Bytes{}).empty());
}

TEST(SecureTrieTest, BasicOps) {
  SecureTrie t;
  EXPECT_TRUE(t.IsEmpty());
  t.Put(BytesOf("account1"), BytesOf("balance=100"));
  auto v = t.Get(BytesOf("account1"));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, BytesOf("balance=100"));
  t.Delete(BytesOf("account1"));
  EXPECT_TRUE(t.IsEmpty());
}

TEST(SecureTrieTest, RootDiffersFromRawTrie) {
  Trie raw;
  SecureTrie sec;
  raw.Put(BytesOf("k"), BytesOf("v"));
  sec.Put(BytesOf("k"), BytesOf("v"));
  EXPECT_NE(raw.RootHash(), sec.RootHash());
}

// ---- Merkle proofs ----

TEST(TrieProofTest, ProvesPresentKeys) {
  Trie t;
  t.Put(BytesOf("doe"), BytesOf("reindeer"));
  t.Put(BytesOf("dog"), BytesOf("puppy"));
  t.Put(BytesOf("dogglesworth"), BytesOf("cat"));
  Hash32 root = t.RootHash();
  for (const char* key : {"doe", "dog", "dogglesworth"}) {
    auto proof = t.Prove(BytesOf(key));
    ASSERT_FALSE(proof.empty());
    auto verified = Trie::VerifyProof(root, BytesOf(key), proof);
    ASSERT_TRUE(verified.ok()) << key << ": " << verified.status().ToString();
    ASSERT_TRUE(verified->has_value()) << key;
    EXPECT_EQ(**verified, *t.Get(BytesOf(key)));
  }
}

TEST(TrieProofTest, ProvesKeysThroughEmbeddedNodes) {
  // Regression: when a proof path descends into a node embedded in its
  // parent's record (encoding < 32 bytes), the verifier used to read the
  // embedded item after reassigning the list that owned it — returning
  // freed memory instead of the value.
  Trie t;
  for (int i = 0; i < 50; ++i) {
    t.Put(BytesOf("account-" + std::to_string(i)),
          BytesOf("balance-" + std::to_string(i * 7)));
  }
  Hash32 root = t.RootHash();
  for (int i = 0; i < 50; ++i) {
    Bytes key = BytesOf("account-" + std::to_string(i));
    auto verified = Trie::VerifyProof(root, key, t.Prove(key));
    ASSERT_TRUE(verified.ok()) << i << ": " << verified.status().ToString();
    ASSERT_TRUE(verified->has_value()) << i;
    EXPECT_EQ(**verified, BytesOf("balance-" + std::to_string(i * 7))) << i;
  }
}

TEST(TrieProofTest, ProvesAbsentKeys) {
  Trie t;
  t.Put(BytesOf("doe"), BytesOf("reindeer"));
  t.Put(BytesOf("dog"), BytesOf("puppy"));
  Hash32 root = t.RootHash();
  for (const char* key : {"do", "dogs", "cat", "doggo", ""}) {
    auto proof = t.Prove(BytesOf(key));
    auto verified = Trie::VerifyProof(root, BytesOf(key), proof);
    ASSERT_TRUE(verified.ok()) << key << ": " << verified.status().ToString();
    EXPECT_FALSE(verified->has_value()) << key;
  }
}

TEST(TrieProofTest, EmptyTrie) {
  Trie t;
  auto proof = t.Prove(BytesOf("anything"));
  EXPECT_TRUE(proof.empty());
  auto verified = Trie::VerifyProof(Trie::EmptyRoot(), BytesOf("anything"), proof);
  ASSERT_TRUE(verified.ok());
  EXPECT_FALSE(verified->has_value());
  // Empty proof against a non-empty root is rejected.
  t.Put(BytesOf("k"), BytesOf("v"));
  EXPECT_FALSE(Trie::VerifyProof(t.RootHash(), BytesOf("k"), {}).ok());
}

TEST(TrieProofTest, RejectsTamperedProof) {
  Trie t;
  for (int i = 0; i < 32; ++i) {
    t.Put(BytesOf("key" + std::to_string(i)), BytesOf("val" + std::to_string(i)));
  }
  Hash32 root = t.RootHash();
  auto proof = t.Prove(BytesOf("key7"));
  ASSERT_FALSE(proof.empty());
  // Flip a byte in each element in turn: every mutation must be caught.
  for (size_t i = 0; i < proof.size(); ++i) {
    auto bad = proof;
    bad[i][bad[i].size() / 2] ^= 0x01;
    auto verified = Trie::VerifyProof(root, BytesOf("key7"), bad);
    EXPECT_FALSE(verified.ok()) << "element " << i;
  }
  // Truncated proof fails too (unless truncation leaves a complete path).
  if (proof.size() > 1) {
    auto truncated = proof;
    truncated.pop_back();
    EXPECT_FALSE(Trie::VerifyProof(root, BytesOf("key7"), truncated).ok());
  }
  // Wrong root fails.
  Hash32 wrong = root;
  wrong[0] ^= 0xff;
  EXPECT_FALSE(Trie::VerifyProof(wrong, BytesOf("key7"), proof).ok());
}

TEST(TrieProofTest, ProofDoesNotLeakWholeTrie) {
  // A proof is logarithmic-ish, not the whole database.
  Trie t;
  for (int i = 0; i < 512; ++i) {
    Bytes key = U256(uint64_t(i) * 2654435761u).ToBytes();
    t.Put(key, BytesOf("v" + std::to_string(i)));
  }
  Bytes key = U256(uint64_t(7) * 2654435761u).ToBytes();
  auto proof = t.Prove(key);
  EXPECT_LT(proof.size(), 10u);
  auto verified = Trie::VerifyProof(t.RootHash(), key, proof);
  ASSERT_TRUE(verified.ok());
  EXPECT_TRUE(verified->has_value());
}

TEST(TrieProofTest, HexPrefixDecodeRoundTrip) {
  for (bool leaf : {false, true}) {
    for (auto nibbles : std::vector<std::vector<uint8_t>>{
             {}, {1}, {1, 2}, {0xf, 0x0, 0xa}, {5, 5, 5, 5}}) {
      auto decoded = HexPrefixDecode(HexPrefixEncode(nibbles, leaf));
      ASSERT_TRUE(decoded.ok());
      EXPECT_EQ(decoded->nibbles, nibbles);
      EXPECT_EQ(decoded->is_leaf, leaf);
    }
  }
  EXPECT_FALSE(HexPrefixDecode(Bytes{}).ok());
  EXPECT_FALSE(HexPrefixDecode(Bytes{0x40}).ok());  // flag > 3
}

// Property sweep: random maps are insert-order independent and delete-exact.
class TriePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TriePropertyTest, InsertOrderIndependence) {
  std::mt19937_64 rng(GetParam());
  // Build a deduplicated map (duplicate keys would make order matter).
  std::map<Bytes, Bytes> entries;
  while (entries.size() < 64) {
    Bytes key;
    size_t len = rng() % 8 + 1;
    for (size_t j = 0; j < len; ++j) key.push_back(rng() % 4);  // collide a lot
    entries[key] = BytesOf("value" + std::to_string(rng() % 1000 + 1));
  }
  std::vector<std::pair<Bytes, Bytes>> kv(entries.begin(), entries.end());
  Trie forward;
  for (const auto& [k, v] : kv) forward.Put(k, v);
  Trie backward;
  for (auto it = kv.rbegin(); it != kv.rend(); ++it) {
    backward.Put(it->first, it->second);
  }
  std::shuffle(kv.begin(), kv.end(), rng);
  Trie shuffled;
  for (const auto& [k, v] : kv) shuffled.Put(k, v);
  EXPECT_EQ(forward.RootHash(), backward.RootHash());
  EXPECT_EQ(forward.RootHash(), shuffled.RootHash());
}

TEST_P(TriePropertyTest, InsertDeleteInverse) {
  std::mt19937_64 rng(GetParam());
  Trie t;
  // Base content.
  std::vector<Bytes> base_keys;
  for (int i = 0; i < 32; ++i) {
    Bytes key{static_cast<uint8_t>(rng() % 16), static_cast<uint8_t>(i)};
    base_keys.push_back(key);
    t.Put(key, BytesOf("base"));
  }
  Hash32 base_root = t.RootHash();
  // Insert a batch of extra keys, then delete them in random order.
  std::vector<Bytes> extra;
  for (int i = 0; i < 32; ++i) {
    Bytes key{static_cast<uint8_t>(rng() % 16), static_cast<uint8_t>(i),
              static_cast<uint8_t>(rng() % 256)};
    extra.push_back(key);
    t.Put(key, BytesOf("extra"));
  }
  std::shuffle(extra.begin(), extra.end(), rng);
  for (const Bytes& k : extra) t.Delete(k);
  EXPECT_EQ(t.RootHash(), base_root);
  for (const Bytes& k : base_keys) EXPECT_TRUE(t.Contains(k));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriePropertyTest,
                         ::testing::Values(7u, 99u, 2019u, 0xabcdefu));

}  // namespace
}  // namespace onoff::trie
