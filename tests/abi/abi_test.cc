#include "abi/abi.h"

#include <gtest/gtest.h>

namespace onoff::abi {
namespace {

TEST(AbiTest, KnownSelectors) {
  // Canonical ERC-20 selectors.
  EXPECT_EQ(ToHex(SelectorOf("transfer(address,uint256)")), "a9059cbb");
  EXPECT_EQ(ToHex(SelectorOf("balanceOf(address)")), "70a08231");
  EXPECT_EQ(ToHex(SelectorOf("deposit()")), "d0e30db0");
}

TEST(AbiTest, EncodeStaticArgs) {
  auto addr = Address::FromHex("0x1234567890123456789012345678901234567890");
  ASSERT_TRUE(addr.ok());
  Bytes enc = EncodeArgs({Value::Uint(U256(5)), Value::Addr(*addr),
                          Value::Bool(true)});
  ASSERT_EQ(enc.size(), 96u);
  EXPECT_EQ(U256::FromBigEndianTruncating(BytesView(enc.data(), 32)), U256(5));
  EXPECT_EQ(Address::FromWord(
                U256::FromBigEndianTruncating(BytesView(enc.data() + 32, 32))),
            *addr);
  EXPECT_EQ(U256::FromBigEndianTruncating(BytesView(enc.data() + 64, 32)),
            U256(1));
}

TEST(AbiTest, EncodeDynamicBytes) {
  // f(uint256, bytes): head = [value, offset=0x40], tail = [len, data].
  Bytes payload = {0xde, 0xad, 0xbe, 0xef, 0x99};
  Bytes enc = EncodeArgs({Value::Uint(U256(7)), Value::DynBytes(payload)});
  ASSERT_EQ(enc.size(), 32u + 32u + 32u + 32u);  // head(2) + len + padded data
  EXPECT_EQ(U256::FromBigEndianTruncating(BytesView(enc.data() + 32, 32)),
            U256(64));  // offset to tail
  EXPECT_EQ(U256::FromBigEndianTruncating(BytesView(enc.data() + 64, 32)),
            U256(5));  // length
  EXPECT_EQ(Bytes(enc.begin() + 96, enc.begin() + 101), payload);
  // Padding is zero.
  for (size_t i = 101; i < enc.size(); ++i) EXPECT_EQ(enc[i], 0);
}

TEST(AbiTest, EncodeCallPrependsSelector) {
  Bytes call = EncodeCall("deposit()", {});
  ASSERT_EQ(call.size(), 4u);
  EXPECT_EQ(ToHex(call), "d0e30db0");

  Bytes call2 = EncodeCall("set(uint256)", {Value::Uint(U256(3))});
  EXPECT_EQ(call2.size(), 36u);
}

TEST(AbiTest, RoundTripAllTypes) {
  auto addr = Address::FromHex("0xaabbccddeeff00112233445566778899aabbccdd");
  ASSERT_TRUE(addr.ok());
  Bytes blob = BytesOf("the signed off-chain contract bytecode blob");
  std::vector<Value> args = {
      Value::Uint(U256(42)),          Value::Addr(*addr),
      Value::Bool(true),              Value::Bytes32(U256(0xdead)),
      Value::DynBytes(blob),          Value::Uint(~U256()),
  };
  Bytes enc = EncodeArgs(args);
  auto dec = DecodeArgs(enc, {Type::kUint256, Type::kAddress, Type::kBool,
                              Type::kBytes32, Type::kBytes, Type::kUint256});
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  ASSERT_EQ(dec->size(), 6u);
  EXPECT_EQ((*dec)[0].AsUint(), U256(42));
  EXPECT_EQ((*dec)[1].AsAddress(), *addr);
  EXPECT_TRUE((*dec)[2].AsBool());
  EXPECT_EQ((*dec)[3].AsUint(), U256(0xdead));
  EXPECT_EQ((*dec)[4].AsBytes(), blob);
  EXPECT_EQ((*dec)[5].AsUint(), ~U256());
}

TEST(AbiTest, MultipleDynamicArgs) {
  Bytes a = BytesOf("first");
  Bytes b = BytesOf("second blob that is longer than one word.......!");
  Bytes enc = EncodeArgs({Value::DynBytes(a), Value::DynBytes(b)});
  auto dec = DecodeArgs(enc, {Type::kBytes, Type::kBytes});
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ((*dec)[0].AsBytes(), a);
  EXPECT_EQ((*dec)[1].AsBytes(), b);
}

TEST(AbiTest, EmptyDynamicBytes) {
  Bytes enc = EncodeArgs({Value::DynBytes({})});
  auto dec = DecodeArgs(enc, {Type::kBytes});
  ASSERT_TRUE(dec.ok());
  EXPECT_TRUE((*dec)[0].AsBytes().empty());
}

TEST(AbiTest, DecodeErrors) {
  // Head too short.
  EXPECT_FALSE(DecodeArgs(Bytes(31, 0), {Type::kUint256}).ok());
  // Bytes offset out of range.
  Bytes bad_offset = U256(9999).ToBytes();
  EXPECT_FALSE(DecodeArgs(bad_offset, {Type::kBytes}).ok());
  // Bytes length out of range.
  Bytes bad_len = U256(32).ToBytes();
  Bytes huge = U256(1000).ToBytes();
  Append(bad_len, huge);
  EXPECT_FALSE(DecodeArgs(bad_len, {Type::kBytes}).ok());
}

TEST(AbiTest, DecodeOne) {
  Bytes enc = EncodeArgs({Value::Bool(true)});
  auto v = DecodeOne(enc, Type::kBool);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->AsBool());
}

}  // namespace
}  // namespace onoff::abi
