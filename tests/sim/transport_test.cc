#include "sim/transport.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace onoff::sim {
namespace {

TEST(InstantTransportTest, DeliversSynchronously) {
  InstantTransport t;
  bool delivered = false;
  EXPECT_TRUE(t.Deliver("a", "b", 100, [&] { delivered = true; }));
  EXPECT_TRUE(delivered);  // before any scheduler runs
  EXPECT_EQ(DefaultInstantTransport(), DefaultInstantTransport());
}

class SimTransportTest : public ::testing::Test {
 protected:
  Scheduler sched_;
};

TEST_F(SimTransportTest, DefaultLinkIsIdentity) {
  SimTransport t(&sched_, 1);
  bool delivered = false;
  ASSERT_TRUE(t.Deliver("a", "b", 64, [&] { delivered = true; }));
  EXPECT_FALSE(delivered);  // deferred — lands when the scheduler runs
  sched_.RunAll();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(sched_.NowMs(), 0u);  // but with zero virtual delay
  EXPECT_EQ(t.stats().delivered, 1u);
}

TEST_F(SimTransportTest, LatencyAndBandwidthShapeDelay) {
  SimTransport t(&sched_, 1);
  LinkConfig cfg;
  cfg.latency_ms = 40;
  cfg.bytes_per_ms = 10;  // 300 bytes -> +30ms serialisation
  t.SetDefaultLink(cfg);
  uint64_t arrived_at = 0;
  ASSERT_TRUE(t.Deliver("a", "b", 300, [&] { arrived_at = sched_.NowMs(); }));
  sched_.RunAll();
  EXPECT_EQ(arrived_at, 70u);
  EXPECT_EQ(t.stats().delay_ms_sum, 70u);
}

TEST_F(SimTransportTest, JitterStaysWithinBound) {
  SimTransport t(&sched_, 7);
  LinkConfig cfg;
  cfg.latency_ms = 100;
  cfg.jitter_ms = 25;
  t.SetDefaultLink(cfg);
  for (int i = 0; i < 50; ++i) {
    uint64_t at = 0;
    uint64_t sent = sched_.NowMs();
    ASSERT_TRUE(t.Deliver("a", "b", 8, [&at, this] { at = sched_.NowMs(); }));
    sched_.RunAll();
    EXPECT_GE(at - sent, 100u);
    EXPECT_LE(at - sent, 125u);
  }
}

TEST_F(SimTransportTest, PerLinkOverrideBeatsDefault) {
  SimTransport t(&sched_, 1);
  LinkConfig slow;
  slow.latency_ms = 500;
  t.SetDefaultLink(slow);
  LinkConfig fast;
  fast.latency_ms = 5;
  t.SetLink("a", "b", fast);
  uint64_t ab = 0, ba = 0;
  t.Deliver("a", "b", 8, [&] { ab = sched_.NowMs(); });
  t.Deliver("b", "a", 8, [&] { ba = sched_.NowMs(); });
  sched_.RunAll();
  EXPECT_EQ(ab, 5u);    // overridden direction
  EXPECT_EQ(ba, 500u);  // default applies to the reverse direction
}

TEST_F(SimTransportTest, TotalLossDropsEverything) {
  SimTransport t(&sched_, 3);
  LinkConfig cfg;
  cfg.loss = 1.0;
  t.SetDefaultLink(cfg);
  int delivered = 0;
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(t.Deliver("a", "b", 8, [&] { ++delivered; }));
  }
  sched_.RunAll();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(t.stats().dropped_loss, 20u);
  EXPECT_EQ(t.stats().sent, 20u);
}

TEST_F(SimTransportTest, PartialLossIsSeedDeterministic) {
  auto run = [](uint64_t seed) {
    Scheduler sched;
    SimTransport t(&sched, seed);
    LinkConfig cfg;
    cfg.loss = 0.3;
    t.SetDefaultLink(cfg);
    std::vector<bool> fates;
    for (int i = 0; i < 200; ++i) {
      fates.push_back(t.Deliver("a", "b", 8, [] {}));
    }
    sched.RunAll();
    return fates;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
  // ~30% loss: sanity-bound, deterministic given the seed above.
  auto fates = run(11);
  int drops = 0;
  for (bool ok : fates) drops += ok ? 0 : 1;
  EXPECT_GT(drops, 30);
  EXPECT_LT(drops, 90);
}

TEST_F(SimTransportTest, IndependentLinksDoNotPerturbEachOther) {
  // Consuming randomness on one link must not change another link's draws.
  auto run = [](bool also_use_cd) {
    Scheduler sched;
    SimTransport t(&sched, 5);
    LinkConfig cfg;
    cfg.loss = 0.5;
    t.SetDefaultLink(cfg);
    std::vector<bool> ab_fates;
    for (int i = 0; i < 50; ++i) {
      if (also_use_cd) t.Deliver("c", "d", 8, [] {});
      ab_fates.push_back(t.Deliver("a", "b", 8, [] {}));
    }
    sched.RunAll();
    return ab_fates;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST_F(SimTransportTest, PartitionBlocksCrossIslandTraffic) {
  SimTransport t(&sched_, 1);
  t.Partition({"a", "b"});
  EXPECT_TRUE(t.partitioned());
  int delivered = 0;
  EXPECT_TRUE(t.Deliver("a", "b", 8, [&] { ++delivered; }));   // same side
  EXPECT_FALSE(t.Deliver("a", "c", 8, [&] { ++delivered; }));  // cross
  EXPECT_FALSE(t.Deliver("c", "b", 8, [&] { ++delivered; }));  // cross
  EXPECT_TRUE(t.Deliver("c", "d", 8, [&] { ++delivered; }));   // same side
  sched_.RunAll();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(t.stats().dropped_partition, 2u);
  t.Heal();
  EXPECT_FALSE(t.partitioned());
  EXPECT_TRUE(t.Deliver("a", "c", 8, [&] { ++delivered; }));
  sched_.RunAll();
  EXPECT_EQ(delivered, 3);
}

TEST_F(SimTransportTest, InFlightMessageSurvivesPartitionOnset) {
  SimTransport t(&sched_, 1);
  LinkConfig cfg;
  cfg.latency_ms = 100;
  t.SetDefaultLink(cfg);
  bool delivered = false;
  ASSERT_TRUE(t.Deliver("a", "c", 8, [&] { delivered = true; }));
  t.SchedulePartition(10, {"a", "b"}, 0);  // starts while msg is in flight
  sched_.RunAll();
  // Partitions cut links, not packets already past them.
  EXPECT_TRUE(delivered);
}

TEST_F(SimTransportTest, ScheduledPartitionHealsOnTime) {
  SimTransport t(&sched_, 1);
  t.SchedulePartition(50, {"a"}, 150);
  sched_.RunUntil(60);
  EXPECT_TRUE(t.partitioned());
  EXPECT_FALSE(t.Deliver("a", "b", 8, [] {}));
  sched_.RunUntil(200);
  EXPECT_FALSE(t.partitioned());
  EXPECT_TRUE(t.Deliver("a", "b", 8, [] {}));
  sched_.RunAll();
}

TEST_F(SimTransportTest, CrashedEndpointNeitherSendsNorReceives) {
  SimTransport t(&sched_, 1);
  t.Crash("b");
  EXPECT_TRUE(t.crashed("b"));
  int delivered = 0;
  EXPECT_FALSE(t.Deliver("a", "b", 8, [&] { ++delivered; }));
  EXPECT_FALSE(t.Deliver("b", "a", 8, [&] { ++delivered; }));
  sched_.RunAll();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(t.stats().dropped_crash, 2u);
  t.Restart("b");
  EXPECT_FALSE(t.crashed("b"));
  EXPECT_TRUE(t.Deliver("a", "b", 8, [&] { ++delivered; }));
  sched_.RunAll();
  EXPECT_EQ(delivered, 1);
}

TEST_F(SimTransportTest, InFlightMessageToCrashingReceiverIsDroppedOnArrival) {
  SimTransport t(&sched_, 1);
  LinkConfig cfg;
  cfg.latency_ms = 100;
  t.SetDefaultLink(cfg);
  bool delivered = false;
  // Send succeeds (receiver is up), but the receiver crashes at t=10 while
  // the message is still on the wire: the sender is never told.
  EXPECT_TRUE(t.Deliver("a", "b", 8, [&] { delivered = true; }));
  t.ScheduleCrash(10, "b", 0);
  sched_.RunAll();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(t.stats().dropped_crash, 1u);
}

TEST_F(SimTransportTest, StatsAreSeedDeterministic) {
  auto run = [](uint64_t seed) {
    Scheduler sched;
    SimTransport t(&sched, seed);
    LinkConfig cfg;
    cfg.latency_ms = 20;
    cfg.jitter_ms = 30;
    cfg.loss = 0.25;
    t.SetDefaultLink(cfg);
    for (int i = 0; i < 100; ++i) {
      t.Deliver("a", "b", 64, [] {});
      t.Deliver("b", "a", 64, [] {});
    }
    sched.RunAll();
    return t.stats();
  };
  SimTransport::Stats s1 = run(77), s2 = run(77);
  EXPECT_EQ(s1.sent, s2.sent);
  EXPECT_EQ(s1.delivered, s2.delivered);
  EXPECT_EQ(s1.dropped_loss, s2.dropped_loss);
  EXPECT_EQ(s1.delay_ms_sum, s2.delay_ms_sum);
  EXPECT_EQ(s1.sent, 200u);
  EXPECT_EQ(s1.delivered + s1.dropped_total(), s1.sent);
}

}  // namespace
}  // namespace onoff::sim
