#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.h"

namespace onoff::sim {
namespace {

TEST(SchedulerTest, ClockStartsAtZeroAndLandsOnEventTimes) {
  Scheduler sched;
  EXPECT_EQ(sched.NowMs(), 0u);
  std::vector<uint64_t> seen;
  sched.ScheduleAt(30, [&] { seen.push_back(sched.NowMs()); });
  sched.ScheduleAt(10, [&] { seen.push_back(sched.NowMs()); });
  sched.ScheduleAt(20, [&] { seen.push_back(sched.NowMs()); });
  EXPECT_EQ(sched.RunAll(), 3u);
  EXPECT_EQ(seen, (std::vector<uint64_t>{10, 20, 30}));
  EXPECT_EQ(sched.NowMs(), 30u);
}

TEST(SchedulerTest, SameInstantRunsInInsertionOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    sched.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sched.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(SchedulerTest, SchedulingInThePastClampsToNow) {
  Scheduler sched;
  sched.ScheduleAt(100, [] {});
  sched.RunAll();
  ASSERT_EQ(sched.NowMs(), 100u);
  uint64_t ran_at = 0;
  sched.ScheduleAt(3, [&] { ran_at = sched.NowMs(); });
  sched.RunAll();
  EXPECT_EQ(ran_at, 100u);  // the past is immutable
}

TEST(SchedulerTest, EventsScheduleMoreEvents) {
  Scheduler sched;
  std::vector<uint64_t> seen;
  sched.ScheduleAt(10, [&] {
    seen.push_back(sched.NowMs());
    sched.ScheduleAfter(5, [&] { seen.push_back(sched.NowMs()); });
  });
  EXPECT_EQ(sched.RunAll(), 2u);
  EXPECT_EQ(seen, (std::vector<uint64_t>{10, 15}));
}

TEST(SchedulerTest, RunUntilAdvancesToWindowEndWhenIdle) {
  Scheduler sched;
  int ran = 0;
  sched.ScheduleAt(10, [&] { ++ran; });
  sched.ScheduleAt(500, [&] { ++ran; });
  EXPECT_EQ(sched.RunUntil(100), 100u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sched.NowMs(), 100u);  // waited out the window
  EXPECT_EQ(sched.PendingEvents(), 1u);
}

TEST(SchedulerTest, RunUntilStopPredicateHaltsWithoutAdvancing) {
  Scheduler sched;
  bool landed = false;
  sched.ScheduleAt(40, [&] { landed = true; });
  sched.ScheduleAt(60, [] {});
  uint64_t at = sched.RunUntil(1000, [&] { return landed; });
  // Stopped right after the event at t=40 — the clock must NOT run on to
  // 1000, so a caller can react at the moment its condition became true.
  EXPECT_EQ(at, 40u);
  EXPECT_EQ(sched.NowMs(), 40u);
  EXPECT_EQ(sched.PendingEvents(), 1u);
}

TEST(SchedulerTest, RunUntilStopAlreadyTrueRunsNothing) {
  Scheduler sched;
  int ran = 0;
  sched.ScheduleAt(10, [&] { ++ran; });
  EXPECT_EQ(sched.RunUntil(100, [] { return true; }), 0u);
  EXPECT_EQ(ran, 0);
}

TEST(SchedulerTest, StepReturnsFalseOnEmptyQueue) {
  Scheduler sched;
  EXPECT_FALSE(sched.Step());
  sched.ScheduleAt(1, [] {});
  EXPECT_TRUE(sched.Step());
  EXPECT_FALSE(sched.Step());
  EXPECT_EQ(sched.EventsExecuted(), 1u);
}

TEST(RngTest, SameSeedSameSequence) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, StreamsAreIndependentOfConsumption) {
  // The derived stream must not depend on how much the parent seed's own
  // generator was used — only on (seed, stream).
  Rng burn(42);
  for (int i = 0; i < 17; ++i) burn.NextU64();
  Rng s1 = Rng::ForStream(42, 9);
  Rng s2 = Rng::ForStream(42, 9);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(s1.NextU64(), s2.NextU64());
  }
  Rng other = Rng::ForStream(42, 10);
  EXPECT_NE(Rng::ForStream(42, 9).NextU64(), other.NextU64());
}

TEST(RngTest, HashNameIsStable) {
  // FNV-1a is part of the determinism contract (stream ids derive from it);
  // pin a known vector so a refactor cannot silently reshuffle streams.
  EXPECT_EQ(HashName(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(HashName("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(HashName("chain"), HashName("chain"));
  EXPECT_NE(HashName("producer"), HashName("replica0"));
}

}  // namespace
}  // namespace onoff::sim
