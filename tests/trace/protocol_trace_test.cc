// The acceptance test for end-to-end causal tracing: one protocol run on the
// simulated network yields ONE trace id that links message-bus delivery,
// network hops, tx-pool admission, block inclusion, EVM call frames and
// settlement — and the export is byte-deterministic across identical runs.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "chain/blockchain.h"
#include "contracts/betting.h"
#include "onoff/protocol.h"
#include "sim/scheduler.h"
#include "sim/transport.h"
#include "trace/trace.h"

namespace onoff::trace {
namespace {

struct TracedRun {
  std::string trace_json;
  std::string chrome_json;
  std::vector<Span> spans;
};

TracedRun RunTracedDispute(uint64_t seed) {
  Tracer tracer;
  Tracer* previous = Tracer::InstallGlobal(&tracer);

  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  auto bob = secp256k1::PrivateKey::FromSeed("bob");
  chain::Blockchain chain;
  chain.FundAccount(alice.EthAddress(), contracts::Ether(10));
  chain.FundAccount(bob.EthAddress(), contracts::Ether(10));
  core::MessageBus bus;
  contracts::OffchainConfig offchain;
  offchain.secret_alice = U256(0xa11ce);
  offchain.secret_bob = U256(0xb0b);
  offchain.reveal_iterations = 10;

  sim::Scheduler sched;
  sim::SimTransport transport(&sched, seed);
  sim::LinkConfig link;
  link.latency_ms = 50;
  transport.SetLink(alice.EthAddress().ToHex(), "chain", link);
  transport.SetLink(bob.EthAddress().ToHex(), "chain", link);

  core::BettingProtocol protocol(&chain, &bus, alice, bob, offchain,
                                 contracts::Ether(1));
  protocol.BindSimulation(&sched, &transport);
  core::Behavior dishonest;
  dishonest.admit_loss = false;
  auto report = protocol.Run(dishonest, dishonest);
  Tracer::InstallGlobal(previous);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (report.ok()) {
    EXPECT_EQ(report->settlement, core::Settlement::kDisputed);
  }

  TracedRun run;
  run.trace_json = tracer.ToJson().Dump();
  run.chrome_json = tracer.ToChromeTrace().Dump();
  run.spans = tracer.Snapshot();
  return run;
}

bool HasSpan(const std::vector<Span>& spans, const std::string& name) {
  for (const Span& s : spans) {
    if (s.name == name) return true;
  }
  return false;
}

TEST(ProtocolTraceTest, OneTraceIdLinksEveryLayer) {
  TracedRun run = RunTracedDispute(/*seed=*/42);
  ASSERT_FALSE(run.spans.empty());

  // Exactly one trace id across every span of every layer.
  std::set<uint64_t> trace_ids;
  for (const Span& s : run.spans) trace_ids.insert(s.trace_id);
  EXPECT_EQ(trace_ids.size(), 1u);

  // Every pipeline hop is present under that id: protocol root, network
  // flight, pool admission, transaction application, block inclusion, EVM
  // call frames, settlement.
  EXPECT_TRUE(HasSpan(run.spans, "protocol.run"));
  EXPECT_TRUE(HasSpan(run.spans, "net.flight"));
  EXPECT_TRUE(HasSpan(run.spans, "pool.admit"));
  EXPECT_TRUE(HasSpan(run.spans, "tx.apply"));
  EXPECT_TRUE(HasSpan(run.spans, "block.include"));
  EXPECT_TRUE(HasSpan(run.spans, "evm.call"));
  EXPECT_TRUE(HasSpan(run.spans, "evm.create"));
  EXPECT_TRUE(HasSpan(run.spans, "protocol.settled"));
  EXPECT_TRUE(HasSpan(run.spans, "bus.flight"));

  // Parent links resolve within the trace: every non-root span's parent is
  // another span of the same trace (roots have parent_span_id == 0).
  std::set<uint64_t> span_ids;
  for (const Span& s : run.spans) span_ids.insert(s.span_id);
  for (const Span& s : run.spans) {
    if (s.parent_span_id == 0) continue;
    EXPECT_TRUE(span_ids.count(s.parent_span_id) > 0)
        << s.name << " has dangling parent " << s.parent_span_id;
  }

  // The settlement annotation rides on the root span.
  for (const Span& s : run.spans) {
    if (s.name != "protocol.run") continue;
    bool found = false;
    for (const auto& [key, value] : s.args) {
      if (key == "settlement") {
        EXPECT_EQ(value, "disputed");
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(ProtocolTraceTest, ExportsAreByteIdenticalAcrossRuns) {
  TracedRun first = RunTracedDispute(/*seed=*/42);
  TracedRun second = RunTracedDispute(/*seed=*/42);
  EXPECT_EQ(first.trace_json, second.trace_json);
  EXPECT_EQ(first.chrome_json, second.chrome_json);
  EXPECT_GT(first.trace_json.size(), 1000u);
}

TEST(ProtocolTraceTest, SampledOutRunProducesNoSpans) {
  TracerConfig config;
  config.sample_every = 1000;  // ordinal 1 % 1000 != 0 -> sampled out
  Tracer tracer(config);
  // Consume ordinal 0 (which IS sampled) so the protocol run lands on 1.
  ASSERT_TRUE(tracer.StartTrace().valid());
  tracer.Clear();
  Tracer* previous = Tracer::InstallGlobal(&tracer);

  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  auto bob = secp256k1::PrivateKey::FromSeed("bob");
  chain::Blockchain chain;
  chain.FundAccount(alice.EthAddress(), contracts::Ether(10));
  chain.FundAccount(bob.EthAddress(), contracts::Ether(10));
  core::MessageBus bus;
  contracts::OffchainConfig offchain;
  offchain.secret_alice = U256(0xa11ce);
  offchain.secret_bob = U256(0xb0b);
  offchain.reveal_iterations = 5;
  core::BettingProtocol protocol(&chain, &bus, alice, bob, offchain,
                                 contracts::Ether(1));
  core::Behavior honest;
  auto report = protocol.Run(honest, honest);
  Tracer::InstallGlobal(previous);
  ASSERT_TRUE(report.ok());

  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.traces_sampled_out(), 1u);
}

}  // namespace
}  // namespace onoff::trace
