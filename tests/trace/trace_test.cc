#include "trace/trace.h"

#include <gtest/gtest.h>

namespace onoff::trace {
namespace {

TEST(TracerTest, RootSpanAndChildComplete) {
  Tracer tracer;
  uint64_t fake_now = 100;
  tracer.SetClock([&fake_now] { return fake_now; });

  TraceContext root = tracer.StartTrace();
  ASSERT_TRUE(root.valid());
  EXPECT_EQ(root.span_id, 0u);

  TraceContext span = tracer.BeginSpan(root, "outer", "test");
  ASSERT_TRUE(span.valid());
  EXPECT_EQ(span.trace_id, root.trace_id);
  fake_now = 250;
  TraceContext child = tracer.BeginSpan(span, "inner", "test");
  fake_now = 300;
  tracer.EndSpan(child);
  fake_now = 400;
  tracer.EndSpan(span, {{"k", "v"}});

  std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Stable order: (trace_id, start_us, span_id).
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].start_us, 100u);
  EXPECT_EQ(spans[0].dur_us, 300u);
  EXPECT_EQ(spans[0].parent_span_id, 0u);
  ASSERT_EQ(spans[0].args.size(), 1u);
  EXPECT_EQ(spans[0].args[0].first, "k");
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent_span_id, spans[0].span_id);
  EXPECT_EQ(spans[1].dur_us, 50u);
}

TEST(TracerTest, InvalidContextIsNoOp) {
  Tracer tracer;
  TraceContext invalid;
  EXPECT_FALSE(invalid.valid());
  TraceContext span = tracer.BeginSpan(invalid, "x", "test");
  EXPECT_FALSE(span.valid());
  tracer.EndSpan(span);
  tracer.Event(invalid, "e", "test");
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.spans_completed(), 0u);
}

TEST(TracerTest, DeterministicSampling) {
  TracerConfig config;
  config.sample_every = 4;
  Tracer tracer(config);
  int sampled = 0;
  for (int i = 0; i < 16; ++i) {
    if (tracer.StartTrace().valid()) ++sampled;
  }
  EXPECT_EQ(sampled, 4);
  EXPECT_EQ(tracer.traces_started(), 16u);
  EXPECT_EQ(tracer.traces_sampled_out(), 12u);
}

TEST(TracerTest, RingOverwritesOldest) {
  TracerConfig config;
  config.ring_capacity = 3;
  Tracer tracer(config);
  TraceContext root = tracer.StartTrace();
  for (int i = 0; i < 5; ++i) {
    tracer.Event(root, "event" + std::to_string(i), "test");
  }
  std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(tracer.spans_dropped(), 2u);
  // The two oldest were overwritten.
  EXPECT_EQ(spans[0].name, "event2");
  EXPECT_EQ(spans[2].name, "event4");
}

TEST(TracerTest, TxAnnotationRoundTripAndEviction) {
  TracerConfig config;
  config.tx_annotation_capacity = 2;
  Tracer tracer(config);
  TraceContext root = tracer.StartTrace();

  Hash32 a{}, b{}, c{};
  a[0] = 1;
  b[0] = 2;
  c[0] = 3;
  tracer.AnnotateTx(a, root);
  EXPECT_EQ(tracer.ContextForTx(a).trace_id, root.trace_id);
  tracer.AnnotateTx(b, root);
  tracer.AnnotateTx(c, root);  // evicts a (FIFO)
  EXPECT_FALSE(tracer.ContextForTx(a).valid());
  EXPECT_TRUE(tracer.ContextForTx(b).valid());
  EXPECT_TRUE(tracer.ContextForTx(c).valid());
  // Invalid contexts are not stored.
  Hash32 d{};
  d[0] = 4;
  tracer.AnnotateTx(d, TraceContext{});
  EXPECT_FALSE(tracer.ContextForTx(d).valid());
}

TEST(TracerTest, ScopedContextStackNests) {
  EXPECT_FALSE(CurrentContext().valid());
  TraceContext outer{7, 1};
  {
    ScopedContext a(outer);
    EXPECT_EQ(CurrentContext().trace_id, 7u);
    TraceContext inner{7, 2};
    {
      ScopedContext b(inner);
      EXPECT_EQ(CurrentContext().span_id, 2u);
    }
    EXPECT_EQ(CurrentContext().span_id, 1u);
  }
  EXPECT_FALSE(CurrentContext().valid());
}

TEST(TracerTest, GlobalInstallRestores) {
  EXPECT_EQ(Tracer::Global(), nullptr);
  Tracer tracer;
  Tracer* previous = Tracer::InstallGlobal(&tracer);
  EXPECT_EQ(previous, nullptr);
  EXPECT_EQ(Tracer::Global(), &tracer);
  Tracer::InstallGlobal(previous);
  EXPECT_EQ(Tracer::Global(), nullptr);
}

// Two tracers fed the same operations under the same virtual clock export
// byte-identical JSON in both schemas — the determinism contract.
TEST(TracerTest, ExportsAreByteDeterministic) {
  auto build = [] {
    Tracer tracer;
    uint64_t now = 0;
    tracer.SetClock([&now] { return now; });
    TraceContext root = tracer.StartTrace();
    TraceContext span =
        tracer.BeginSpan(root, "work", "test", {{"zeta", "1"}, {"alpha", "2"}});
    now = 10;
    tracer.Event(span, "tick", "test");
    now = 42;
    tracer.EndSpan(span);
    return std::make_pair(tracer.ToJson().Dump(),
                          tracer.ToChromeTrace().Dump());
  };
  auto [json1, chrome1] = build();
  auto [json2, chrome2] = build();
  EXPECT_EQ(json1, json2);
  EXPECT_EQ(chrome1, chrome2);
  // Args are key-sorted at export.
  EXPECT_LT(json1.find("\"alpha\""), json1.find("\"zeta\""));
  EXPECT_NE(json1.find("onoffchain-trace-v1"), std::string::npos);
  EXPECT_NE(chrome1.find("traceEvents"), std::string::npos);
}

TEST(TracerTest, ScopedSpanDeliversEndArgs) {
  Tracer tracer;
  TraceContext root = tracer.StartTrace();
  {
    ScopedSpan span(&tracer, root, "scoped", "test");
    ASSERT_TRUE(span.context().valid());
    span.AddArg("result", "ok");
  }
  std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].args.size(), 1u);
  EXPECT_EQ(spans[0].args[0].second, "ok");
  // Null tracer / invalid parent variants are inert.
  ScopedSpan noop_tracer(nullptr, root, "x", "test");
  EXPECT_FALSE(noop_tracer.context().valid());
  ScopedSpan noop_parent(&tracer, TraceContext{}, "x", "test");
  EXPECT_FALSE(noop_parent.context().valid());
}

TEST(TracerTest, ClearDropsSpansButKeepsIdsUnique) {
  Tracer tracer;
  TraceContext first = tracer.StartTrace();
  tracer.Event(first, "e", "test");
  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
  TraceContext second = tracer.StartTrace();
  EXPECT_NE(second.trace_id, first.trace_id);
}

}  // namespace
}  // namespace onoff::trace
