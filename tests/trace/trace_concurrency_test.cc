// Thread-safety of the tracer ring buffer, the tx-annotation table and the
// metrics registry under concurrent writers. Meant to run under TSan (the CI
// sanitizer job includes it): the assertions are deliberately loose, the
// value is the data-race coverage.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "trace/trace.h"

namespace onoff::trace {
namespace {

TEST(TraceConcurrencyTest, ParallelSpansEventsAndSnapshots) {
  TracerConfig config;
  config.ring_capacity = 256;  // force overwrites under contention
  Tracer tracer(config);
  Tracer* previous = Tracer::InstallGlobal(&tracer);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 500;
  std::atomic<int> started{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, &started, t] {
      started.fetch_add(1);
      while (started.load() < kThreads) {
      }  // line up for maximal overlap
      for (int i = 0; i < kOpsPerThread; ++i) {
        TraceContext root = tracer.StartTrace();
        ScopedContext ambient(root);
        TraceContext span = tracer.BeginSpan(
            root, "worker", "test", {{"thread", std::to_string(t)}});
        tracer.Event(span, "tick", "test");
        Hash32 h{};
        h[0] = static_cast<uint8_t>(t);
        h[1] = static_cast<uint8_t>(i);
        tracer.AnnotateTx(h, span);
        (void)tracer.ContextForTx(h);
        tracer.EndSpan(span);
        if (i % 64 == 0) (void)tracer.Snapshot();
        if (obs::Counter* c = obs::GetCounterOrNull("trace.test_ops")) {
          c->Inc();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  Tracer::InstallGlobal(previous);

  EXPECT_EQ(tracer.traces_started(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  // 2 completed spans per op (worker + tick event), ring-capped.
  EXPECT_EQ(tracer.spans_completed() ,
            2u * static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(tracer.Snapshot().size(), 256u);
}

TEST(TraceConcurrencyTest, InstallAndUseRace) {
  // Readers hammer Tracer::Global() while a writer flips it: the atomic
  // install path must never hand out a torn pointer.
  Tracer tracer;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&stop] {
      while (!stop.load()) {
        if (Tracer* g = Tracer::Global()) {
          TraceContext ctx = g->StartTrace();
          g->Event(ctx, "ping", "test");
        }
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    Tracer::InstallGlobal(&tracer);
    Tracer::InstallGlobal(nullptr);
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  SUCCEED();
}

}  // namespace
}  // namespace onoff::trace
