#include "trace/structlog.h"

#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "contracts/betting.h"
#include "easm/assembler.h"
#include "evm/evm.h"
#include "state/world_state.h"

namespace onoff::trace {
namespace {

Address Addr(uint8_t tag) {
  std::array<uint8_t, 20> raw{};
  raw[19] = tag;
  return Address(raw);
}

const Address kSender = Addr(0xaa);
const Address kContract = Addr(0xcc);

class StructLogTest : public ::testing::Test {
 protected:
  StructLogTest() {
    block_.number = 100;
    block_.timestamp = 1'550'000'000;
    block_.gas_limit = 8'000'000;
    tx_.origin = kSender;
    tx_.gas_price = U256(1);
    world_.AddBalance(kSender, U256(1'000'000'000));
  }

  evm::ExecResult Run(const std::string& source, StructLogTracer* tracer,
                      uint64_t gas = 100'000) {
    auto code = easm::Assemble(source);
    EXPECT_TRUE(code.ok()) << code.status().ToString();
    world_.SetCode(kContract, *code);
    evm::Evm evm(&world_, block_, tx_);
    evm.set_trace_hook(tracer);
    evm::CallMessage msg;
    msg.caller = kSender;
    msg.to = kContract;
    msg.gas = gas;
    return evm.Call(msg);
  }

  state::WorldState world_;
  evm::BlockContext block_;
  evm::TxContext tx_;
};

// Golden structLog for a fixed program: every pc, opcode, remaining gas,
// per-step cost, and stack against hand-computed values.
TEST_F(StructLogTest, GoldenSmallProgram) {
  StructLogTracer tracer;
  evm::ExecResult res =
      Run("PUSH1 0x02 PUSH1 0x03 ADD PUSH1 0x00 MSTORE STOP", &tracer);
  ASSERT_TRUE(res.ok());

  const auto& records = tracer.records();
  ASSERT_EQ(records.size(), 6u);
  struct Golden {
    uint64_t pc;
    const char* op;
    uint64_t gas;
    uint64_t gas_cost;
    std::vector<U256> stack;  // top first
  };
  // PUSH1 costs 3, ADD 3, MSTORE 3 + 3 memory expansion (one word), STOP 0.
  const Golden golden[] = {
      {0, "PUSH1", 100'000, 3, {}},
      {2, "PUSH1", 99'997, 3, {U256(2)}},
      {4, "ADD", 99'994, 3, {U256(3), U256(2)}},
      {5, "PUSH1", 99'991, 3, {U256(5)}},
      {7, "MSTORE", 99'988, 6, {U256(0), U256(5)}},
      {8, "STOP", 99'982, 0, {}},
  };
  for (size_t i = 0; i < records.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(records[i].pc, golden[i].pc);
    EXPECT_EQ(records[i].op, golden[i].op);
    EXPECT_EQ(records[i].gas, golden[i].gas);
    EXPECT_EQ(records[i].gas_cost, golden[i].gas_cost);
    EXPECT_EQ(records[i].depth, 0);
    EXPECT_EQ(records[i].stack_top, golden[i].stack);
  }
  ASSERT_EQ(tracer.frames().size(), 1u);
  EXPECT_EQ(tracer.frames()[0].gas_used, 18u);
  EXPECT_EQ(tracer.TotalGasUsed(), 18u);
}

TEST_F(StructLogTest, CallFrameTreeAndGasAttribution) {
  // Callee at 0xcd: PUSH1 1 PUSH1 0 SSTORE STOP (3 + 3 + 20000-ish SSTORE).
  auto callee = easm::Assemble("PUSH1 0x01 PUSH1 0x00 SSTORE STOP");
  ASSERT_TRUE(callee.ok());
  Address callee_addr = Addr(0xcd);
  world_.SetCode(callee_addr, *callee);

  StructLogTracer tracer;
  // CALL(gas, to, value, inoff, insize, outoff, outsize).
  evm::ExecResult res = Run(
      "PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 "
      "PUSH20 0x00000000000000000000000000000000000000cd "
      "PUSH3 0x00ffff CALL STOP",
      &tracer);
  ASSERT_TRUE(res.ok());

  const auto& frames = tracer.frames();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].kind, "CALL");
  EXPECT_EQ(frames[0].depth, 0);
  EXPECT_EQ(frames[0].parent, -1);
  ASSERT_EQ(frames[0].children.size(), 1u);
  EXPECT_EQ(frames[0].children[0], 1);
  EXPECT_EQ(frames[1].kind, "CALL");
  EXPECT_EQ(frames[1].depth, 1);
  EXPECT_EQ(frames[1].self, callee_addr);
  EXPECT_EQ(frames[1].parent, 0);
  // Parent's total includes the child; self-gas excludes it.
  EXPECT_EQ(frames[0].gas_self + frames[1].gas_used, frames[0].gas_used);
  EXPECT_GT(frames[1].gas_used, 20'000u);  // cold SSTORE dominates

  // The CALL step's cost covers the child's net consumption (geth default).
  uint64_t call_cost = 0;
  for (const StructLogRecord& rec : tracer.records()) {
    if (rec.op == std::string("CALL")) call_cost = rec.gas_cost;
  }
  EXPECT_GT(call_cost, frames[1].gas_used);
}

TEST_F(StructLogTest, StackTopKAndRecordCapRespected) {
  StructLogConfig config;
  config.stack_top_k = 2;
  config.max_records = 4;
  StructLogTracer tracer(config);
  evm::ExecResult res = Run(
      "PUSH1 0x01 PUSH1 0x02 PUSH1 0x03 PUSH1 0x04 ADD ADD ADD STOP",
      &tracer);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(tracer.records().size(), 4u);
  EXPECT_EQ(tracer.steps_seen(), 8u);
  EXPECT_EQ(tracer.records_dropped(), 4u);
  // Fourth record: stack is [1,2,3] but only the top 2 are kept.
  const StructLogRecord& rec = tracer.records()[3];
  ASSERT_EQ(rec.stack_top.size(), 2u);
  EXPECT_EQ(rec.stack_top[0], U256(3));
  EXPECT_EQ(rec.stack_top[1], U256(2));
}

// The "bundled contract" golden: deploying the paper's off-chain betting
// program twice produces byte-identical structLog JSON, and the frame tree's
// root accounts for exactly the EVM-level gas the receipt reports.
TEST_F(StructLogTest, BundledContractDeterministicAndGasConsistent) {
  auto run_once = [](std::string* dump, uint64_t* root_gas,
                     uint64_t* receipt_gas, uint64_t* intrinsic) {
    auto alice = secp256k1::PrivateKey::FromSeed("alice");
    contracts::OffchainConfig config;
    config.alice = alice.EthAddress();
    config.bob = secp256k1::PrivateKey::FromSeed("bob").EthAddress();
    config.secret_alice = U256(0xa11ce);
    config.secret_bob = U256(0xb0b);
    config.reveal_iterations = 5;
    auto init = contracts::BuildOffChainInit(config);
    ASSERT_TRUE(init.ok());

    chain::Blockchain chain;
    chain.FundAccount(alice.EthAddress(), contracts::Ether(10));
    StructLogTracer tracer;
    chain.set_step_tracer(&tracer);
    auto receipt = chain.Execute(alice, std::nullopt, U256(), *init,
                                 8'000'000);
    ASSERT_TRUE(receipt.ok());
    ASSERT_TRUE(receipt->success);
    ASSERT_EQ(tracer.frames().size(), 1u);
    *dump = tracer.ToJson().Dump();
    *root_gas = tracer.frames()[0].gas_used;
    *receipt_gas = receipt->gas_used;
    chain::Transaction probe;
    probe.to = std::nullopt;
    probe.data = *init;
    *intrinsic = probe.IntrinsicGas();
  };
  std::string dump1, dump2;
  uint64_t root_gas = 0, receipt_gas = 0, intrinsic = 0;
  run_once(&dump1, &root_gas, &receipt_gas, &intrinsic);
  {
    uint64_t g = 0, r = 0, i = 0;
    run_once(&dump2, &g, &r, &i);
  }
  EXPECT_EQ(dump1, dump2);
  EXPECT_GT(dump1.size(), 1000u);
  // receipt gas = intrinsic + EVM execution + code-deposit charge; the
  // structLog frame sees the middle term plus the deposit taken inside the
  // create frame, so it can never exceed the receipt's total.
  EXPECT_GT(root_gas, 0u);
  EXPECT_LE(root_gas, receipt_gas - intrinsic);
}

TEST_F(StructLogTest, ClearResetsEverything) {
  StructLogTracer tracer;
  ASSERT_TRUE(Run("PUSH1 0x00 POP STOP", &tracer).ok());
  EXPECT_FALSE(tracer.records().empty());
  tracer.Clear();
  EXPECT_TRUE(tracer.records().empty());
  EXPECT_TRUE(tracer.frames().empty());
  EXPECT_EQ(tracer.steps_seen(), 0u);
  ASSERT_TRUE(Run("PUSH1 0x00 POP STOP", &tracer).ok());
  EXPECT_EQ(tracer.records().size(), 3u);
}

}  // namespace
}  // namespace onoff::trace
