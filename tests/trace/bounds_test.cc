#include "trace/bounds.h"

#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "contracts/betting.h"
#include "easm/assembler.h"
#include "onoff/protocol.h"
#include "sim/scheduler.h"
#include "sim/transport.h"

namespace onoff::trace {
namespace {

TEST(GasBoundsCheckerTest, ObservedWithinBoundPasses) {
  auto code = easm::Assemble("PUSH1 0x02 PUSH1 0x03 ADD POP STOP");
  ASSERT_TRUE(code.ok());
  GasBoundsChecker checker;
  // Actual execution costs 11 gas (3+3+3+2+0), exactly the static bound.
  EXPECT_FALSE(checker.CheckCall(*code, {}, 11).has_value());
  EXPECT_EQ(checker.checks(), 1u);
  EXPECT_EQ(checker.violations(), 0u);
}

TEST(GasBoundsCheckerTest, ObservedAboveBoundViolates) {
  auto code = easm::Assemble("PUSH1 0x02 PUSH1 0x03 ADD POP STOP");
  ASSERT_TRUE(code.ok());
  GasBoundsChecker checker;
  // A loop-free 5-instruction program is bounded well under 1000 gas; an
  // observation above the bound must surface as a violation.
  auto violation = checker.CheckCall(*code, {}, 1'000'000);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->observed_gas, 1'000'000u);
  EXPECT_GE(violation->observed_gas, violation->bound_gas);
  EXPECT_FALSE(violation->ToString().empty());
  EXPECT_EQ(checker.violations(), 1u);
}

TEST(GasBoundsCheckerTest, UnboundedProgramsNeverViolate) {
  // An unconditional backwards jump: the analyzer cannot bound it, so the
  // checker must not cry wolf regardless of the observation.
  auto code = easm::Assemble("loop: JUMPDEST PUSH @loop JUMP");
  ASSERT_TRUE(code.ok());
  GasBoundsChecker checker;
  EXPECT_FALSE(checker.CheckCall(*code, {}, UINT64_MAX / 2).has_value());
}

// Every transaction the protocol driver sends — deploys, deposits, the
// dispute round trip — stays within the static analyzer's bounds, for both
// the optimistic and the disputed path. This is the paper's soundness story
// told end-to-end: worst-case bounds certified before signing are never
// beaten by observed execution.
class ProtocolBoundsTest : public ::testing::TestWithParam<bool> {};

TEST_P(ProtocolBoundsTest, NoViolationOnDriverPath) {
  const bool dispute = GetParam();
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  auto bob = secp256k1::PrivateKey::FromSeed("bob");
  chain::Blockchain chain;
  chain.FundAccount(alice.EthAddress(), contracts::Ether(10));
  chain.FundAccount(bob.EthAddress(), contracts::Ether(10));
  GasBoundsChecker checker;
  chain.set_bounds_checker(&checker);

  core::MessageBus bus;
  contracts::OffchainConfig offchain;
  offchain.secret_alice = U256(0xa11ce);
  offchain.secret_bob = U256(0xb0b);
  offchain.reveal_iterations = 10;
  core::BettingProtocol protocol(&chain, &bus, alice, bob, offchain,
                                 contracts::Ether(1));
  core::Behavior behavior;
  behavior.admit_loss = !dispute;
  auto report = protocol.Run(behavior, behavior);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->correct_payout);

  EXPECT_GT(checker.checks(), 0u);
  EXPECT_EQ(checker.violations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(OptimisticAndDisputed, ProtocolBoundsTest,
                         ::testing::Values(false, true));

// The same invariant under the simulated network (retransmissions, delays):
// the full dispute path on the sim driver never beats a bound either.
TEST(GasBoundsCheckerTest, NoViolationOnSimulatedDisputePath) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  auto bob = secp256k1::PrivateKey::FromSeed("bob");
  chain::Blockchain chain;
  chain.FundAccount(alice.EthAddress(), contracts::Ether(10));
  chain.FundAccount(bob.EthAddress(), contracts::Ether(10));
  GasBoundsChecker checker;
  chain.set_bounds_checker(&checker);

  core::MessageBus bus;
  contracts::OffchainConfig offchain;
  offchain.secret_alice = U256(0xa11ce);
  offchain.secret_bob = U256(0xb0b);
  offchain.reveal_iterations = 10;

  sim::Scheduler sched;
  sim::SimTransport transport(&sched, /*seed=*/7);
  sim::LinkConfig link;
  link.latency_ms = 40;
  link.jitter_ms = 10;
  transport.SetLink(alice.EthAddress().ToHex(), "chain", link);
  transport.SetLink(bob.EthAddress().ToHex(), "chain", link);

  core::BettingProtocol protocol(&chain, &bus, alice, bob, offchain,
                                 contracts::Ether(1));
  protocol.BindSimulation(&sched, &transport);
  core::Behavior dishonest;
  dishonest.admit_loss = false;
  auto report = protocol.Run(dishonest, dishonest);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_GT(checker.checks(), 0u);
  EXPECT_EQ(checker.violations(), 0u);
}

}  // namespace
}  // namespace onoff::trace
