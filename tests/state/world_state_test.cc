#include "state/world_state.h"

#include <gtest/gtest.h>

#include "crypto/secp256k1.h"
#include "trie/trie.h"

namespace onoff::state {
namespace {

Address Addr(uint8_t tag) {
  std::array<uint8_t, 20> raw{};
  raw[19] = tag;
  return Address(raw);
}

TEST(WorldStateTest, MissingAccountReadsAsZero) {
  WorldState ws;
  EXPECT_FALSE(ws.Exists(Addr(1)));
  EXPECT_TRUE(ws.GetBalance(Addr(1)).IsZero());
  EXPECT_EQ(ws.GetNonce(Addr(1)), 0u);
  EXPECT_TRUE(ws.GetCode(Addr(1)).empty());
  EXPECT_TRUE(ws.GetStorage(Addr(1), U256(0)).IsZero());
}

TEST(WorldStateTest, BalanceArithmetic) {
  WorldState ws;
  ws.AddBalance(Addr(1), U256(100));
  EXPECT_EQ(ws.GetBalance(Addr(1)), U256(100));
  EXPECT_TRUE(ws.SubBalance(Addr(1), U256(30)).ok());
  EXPECT_EQ(ws.GetBalance(Addr(1)), U256(70));
  // Insufficient balance is rejected and leaves state intact.
  EXPECT_FALSE(ws.SubBalance(Addr(1), U256(71)).ok());
  EXPECT_EQ(ws.GetBalance(Addr(1)), U256(70));
}

TEST(WorldStateTest, Transfer) {
  WorldState ws;
  ws.AddBalance(Addr(1), U256(50));
  EXPECT_TRUE(ws.Transfer(Addr(1), Addr(2), U256(20)).ok());
  EXPECT_EQ(ws.GetBalance(Addr(1)), U256(30));
  EXPECT_EQ(ws.GetBalance(Addr(2)), U256(20));
  EXPECT_FALSE(ws.Transfer(Addr(1), Addr(2), U256(31)).ok());
}

TEST(WorldStateTest, NonceAndCode) {
  WorldState ws;
  ws.IncrementNonce(Addr(3));
  ws.IncrementNonce(Addr(3));
  EXPECT_EQ(ws.GetNonce(Addr(3)), 2u);
  ws.SetCode(Addr(3), Bytes{0x60, 0x00});
  EXPECT_EQ(ws.GetCode(Addr(3)), (Bytes{0x60, 0x00}));
  EXPECT_NE(ws.GetCodeHash(Addr(3)), ws.GetCodeHash(Addr(4)));
}

TEST(WorldStateTest, StorageZeroErases) {
  WorldState ws;
  ws.SetStorage(Addr(1), U256(5), U256(42));
  EXPECT_EQ(ws.GetStorage(Addr(1), U256(5)), U256(42));
  ws.SetStorage(Addr(1), U256(5), U256(0));
  EXPECT_TRUE(ws.GetStorage(Addr(1), U256(5)).IsZero());
}

TEST(WorldStateTest, SnapshotRevertUndoesEverything) {
  WorldState ws;
  ws.AddBalance(Addr(1), U256(100));
  ws.SetStorage(Addr(1), U256(1), U256(11));
  auto snap = ws.TakeSnapshot();

  ws.AddBalance(Addr(1), U256(5));
  ws.SetStorage(Addr(1), U256(1), U256(99));
  ws.SetStorage(Addr(1), U256(2), U256(22));
  ws.SetCode(Addr(2), Bytes{0x01});
  ws.IncrementNonce(Addr(1));
  ws.CreateAccount(Addr(9));
  ws.DeleteAccount(Addr(1));

  ws.RevertToSnapshot(snap);
  EXPECT_EQ(ws.GetBalance(Addr(1)), U256(100));
  EXPECT_EQ(ws.GetStorage(Addr(1), U256(1)), U256(11));
  EXPECT_TRUE(ws.GetStorage(Addr(1), U256(2)).IsZero());
  EXPECT_TRUE(ws.GetCode(Addr(2)).empty());
  EXPECT_EQ(ws.GetNonce(Addr(1)), 0u);
  EXPECT_FALSE(ws.Exists(Addr(9)));
  EXPECT_FALSE(ws.Exists(Addr(2)));
}

TEST(WorldStateTest, NestedSnapshots) {
  WorldState ws;
  ws.AddBalance(Addr(1), U256(1));
  auto outer = ws.TakeSnapshot();
  ws.AddBalance(Addr(1), U256(10));
  auto inner = ws.TakeSnapshot();
  ws.AddBalance(Addr(1), U256(100));
  ws.RevertToSnapshot(inner);
  EXPECT_EQ(ws.GetBalance(Addr(1)), U256(11));
  ws.RevertToSnapshot(outer);
  EXPECT_EQ(ws.GetBalance(Addr(1)), U256(1));
}

TEST(WorldStateTest, DeleteAccountRevertRestoresWholeRecord) {
  WorldState ws;
  ws.AddBalance(Addr(7), U256(77));
  ws.SetCode(Addr(7), Bytes{0xfe});
  ws.SetStorage(Addr(7), U256(0), U256(1));
  auto snap = ws.TakeSnapshot();
  ws.DeleteAccount(Addr(7));
  EXPECT_FALSE(ws.Exists(Addr(7)));
  ws.RevertToSnapshot(snap);
  EXPECT_EQ(ws.GetBalance(Addr(7)), U256(77));
  EXPECT_EQ(ws.GetCode(Addr(7)), Bytes{0xfe});
  EXPECT_EQ(ws.GetStorage(Addr(7), U256(0)), U256(1));
}

TEST(WorldStateTest, EmptyStateRootIsEmptyTrieRoot) {
  WorldState ws;
  EXPECT_EQ(ws.StateRoot(), trie::Trie::EmptyRoot());
}

TEST(WorldStateTest, StateRootTracksContent) {
  WorldState ws;
  Hash32 empty_root = ws.StateRoot();
  ws.AddBalance(Addr(1), U256(100));
  Hash32 r1 = ws.StateRoot();
  EXPECT_NE(r1, empty_root);
  ws.SetStorage(Addr(1), U256(0), U256(7));
  Hash32 r2 = ws.StateRoot();
  EXPECT_NE(r2, r1);
  // Clearing the slot returns to the prior root.
  ws.SetStorage(Addr(1), U256(0), U256(0));
  EXPECT_EQ(ws.StateRoot(), r1);
}

TEST(WorldStateTest, StateRootIsOrderIndependent) {
  WorldState a;
  a.AddBalance(Addr(1), U256(5));
  a.AddBalance(Addr(2), U256(6));
  a.SetStorage(Addr(1), U256(3), U256(9));
  WorldState b;
  b.SetStorage(Addr(1), U256(3), U256(9));
  b.AddBalance(Addr(2), U256(6));
  b.AddBalance(Addr(1), U256(5));
  EXPECT_EQ(a.StateRoot(), b.StateRoot());
}

TEST(WorldStateTest, AddressesSorted) {
  WorldState ws;
  ws.AddBalance(Addr(9), U256(1));
  ws.AddBalance(Addr(2), U256(1));
  ws.AddBalance(Addr(5), U256(1));
  auto addrs = ws.Addresses();
  ASSERT_EQ(addrs.size(), 3u);
  EXPECT_EQ(addrs[0], Addr(2));
  EXPECT_EQ(addrs[1], Addr(5));
  EXPECT_EQ(addrs[2], Addr(9));
}

// ---- Light-client proofs ----

class StateProofTest : public ::testing::Test {
 protected:
  StateProofTest() {
    ws_.AddBalance(Addr(1), U256(1000));
    ws_.SetNonce(Addr(1), 7);
    ws_.SetCode(Addr(1), Bytes{0x60, 0x00});
    ws_.SetStorage(Addr(1), U256(5), U256(42));
    ws_.SetStorage(Addr(1), U256(6), U256(99));
    ws_.AddBalance(Addr(2), U256(22));
    ws_.AddBalance(Addr(3), U256(33));
    root_ = ws_.StateRoot();
  }

  WorldState ws_;
  Hash32 root_;
};

TEST_F(StateProofTest, AccountProofRoundTrip) {
  auto proof = ws_.ProveAccount(Addr(1));
  auto verified = WorldState::VerifyAccountProof(root_, Addr(1),
                                                 proof.account_proof);
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  ASSERT_TRUE(verified->has_value());
  EXPECT_EQ((*verified)->nonce, 7u);
  EXPECT_EQ((*verified)->balance, U256(1000));
  EXPECT_EQ((*verified)->code_hash, Keccak256(Bytes{0x60, 0x00}));
}

TEST_F(StateProofTest, MissingAccountProvenAbsent) {
  auto proof = ws_.ProveAccount(Addr(9));
  auto verified = WorldState::VerifyAccountProof(root_, Addr(9),
                                                 proof.account_proof);
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  EXPECT_FALSE(verified->has_value());
}

TEST_F(StateProofTest, StorageProofRoundTrip) {
  auto proof = ws_.ProveStorage(Addr(1), U256(5));
  auto account = WorldState::VerifyAccountProof(root_, Addr(1),
                                                proof.account_proof);
  ASSERT_TRUE(account.ok());
  ASSERT_TRUE(account->has_value());
  auto value = WorldState::VerifyStorageProof((*account)->storage_root,
                                              U256(5), proof.storage_proof);
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_EQ(*value, U256(42));
  // Absent slot proves zero.
  auto absent = ws_.ProveStorage(Addr(1), U256(123));
  auto zero = WorldState::VerifyStorageProof((*account)->storage_root,
                                             U256(123), absent.storage_proof);
  ASSERT_TRUE(zero.ok());
  EXPECT_TRUE(zero->IsZero());
}

TEST_F(StateProofTest, ProofInvalidAfterStateChange) {
  auto proof = ws_.ProveAccount(Addr(1));
  ws_.AddBalance(Addr(1), U256(1));  // state moved on
  Hash32 new_root = ws_.StateRoot();
  auto verified = WorldState::VerifyAccountProof(new_root, Addr(1),
                                                 proof.account_proof);
  EXPECT_FALSE(verified.ok());  // stale proof no longer matches the root
}

TEST_F(StateProofTest, TamperedAccountProofRejected) {
  auto proof = ws_.ProveAccount(Addr(1));
  ASSERT_FALSE(proof.account_proof.empty());
  proof.account_proof.back()[0] ^= 0x01;
  EXPECT_FALSE(WorldState::VerifyAccountProof(root_, Addr(1),
                                              proof.account_proof)
                   .ok());
}

}  // namespace
}  // namespace onoff::state
