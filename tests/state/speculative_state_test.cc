#include "state/speculative_state.h"

#include <gtest/gtest.h>

#include <array>

#include "state/world_state.h"

namespace onoff::state {
namespace {

Address Addr(uint8_t tag) {
  std::array<uint8_t, Address::kSize> raw{};
  raw[Address::kSize - 1] = tag;
  return Address(raw);
}

class SpeculativeStateTest : public ::testing::Test {
 protected:
  SpeculativeStateTest() {
    base_.AddBalance(Addr(1), U256(1'000));
    base_.SetNonce(Addr(1), 7);
    base_.SetCode(Addr(1), Bytes{0x60, 0x01});
    base_.SetStorage(Addr(1), U256(5), U256(42));
    base_.AddBalance(Addr(2), U256(500));
    base_.ClearJournal();
  }

  WorldState base_;
};

TEST_F(SpeculativeStateTest, ReadsPassThroughAndAreRecorded) {
  SpeculativeState view(base_);
  EXPECT_EQ(view.GetBalance(Addr(1)), U256(1'000));
  EXPECT_EQ(view.GetNonce(Addr(1)), 7u);
  EXPECT_EQ(view.GetCode(Addr(1)), (Bytes{0x60, 0x01}));
  EXPECT_EQ(view.GetStorage(Addr(1), U256(5)), U256(42));
  EXPECT_FALSE(view.Exists(Addr(3)));
  // existence(1), balance, nonce, code, slot 5, existence(3).
  EXPECT_EQ(view.reads().size(), 6u);
  EXPECT_EQ(view.writes().size(), 0u);
}

TEST_F(SpeculativeStateTest, WritesStayInOverlayUntilApplied) {
  SpeculativeState view(base_);
  view.AddBalance(Addr(1), U256(100));
  view.SetStorage(Addr(1), U256(5), U256(43));
  view.SetNonce(Addr(2), 3);
  EXPECT_EQ(view.GetBalance(Addr(1)), U256(1'100));
  EXPECT_EQ(view.GetStorage(Addr(1), U256(5)), U256(43));
  // The base is untouched until ApplyTo.
  EXPECT_EQ(base_.GetBalance(Addr(1)), U256(1'000));
  EXPECT_EQ(base_.GetStorage(Addr(1), U256(5)), U256(42));
  EXPECT_EQ(base_.GetNonce(Addr(2)), 0u);
  view.ApplyTo(base_);
  EXPECT_EQ(base_.GetBalance(Addr(1)), U256(1'100));
  EXPECT_EQ(base_.GetStorage(Addr(1), U256(5)), U256(43));
  EXPECT_EQ(base_.GetNonce(Addr(2)), 3u);
}

TEST_F(SpeculativeStateTest, MutatorsCreateAbsentAccountsLikeWorldState) {
  // GetOrCreate parity: WorldState mutators create absent accounts (and
  // empty accounts appear in the state root), so the overlay must too.
  WorldState direct = base_.Clone();
  direct.AddBalance(Addr(9), U256(0));
  direct.ClearJournal();

  SpeculativeState view(base_);
  view.AddBalance(Addr(9), U256(0));
  EXPECT_TRUE(view.Exists(Addr(9)));
  view.ApplyTo(base_);
  EXPECT_TRUE(base_.Exists(Addr(9)));
  EXPECT_EQ(base_.StateRoot(), direct.StateRoot());
}

TEST_F(SpeculativeStateTest, SnapshotRevertDiscardsOverlayChanges) {
  SpeculativeState view(base_);
  view.AddBalance(Addr(1), U256(100));
  auto snap = view.TakeSnapshot();
  (void)view.SubBalance(Addr(1), U256(50)).ok();
  view.SetStorage(Addr(1), U256(5), U256(99));
  view.SetCode(Addr(2), Bytes{0xfe});
  view.CreateAccount(Addr(7));
  view.RevertToSnapshot(snap);
  EXPECT_EQ(view.GetBalance(Addr(1)), U256(1'100));
  EXPECT_EQ(view.GetStorage(Addr(1), U256(5)), U256(42));
  EXPECT_TRUE(view.GetCode(Addr(2)).empty());
  EXPECT_FALSE(view.Exists(Addr(7)));
  view.ApplyTo(base_);
  EXPECT_EQ(base_.GetBalance(Addr(1)), U256(1'100));
  EXPECT_EQ(base_.GetStorage(Addr(1), U256(5)), U256(42));
  EXPECT_FALSE(base_.Exists(Addr(7)));
}

TEST_F(SpeculativeStateTest, DeleteAccountWipesAndRecordsWholeAccountWrite) {
  SpeculativeState view(base_);
  view.DeleteAccount(Addr(1));
  EXPECT_FALSE(view.Exists(Addr(1)));
  EXPECT_EQ(view.GetBalance(Addr(1)), U256(0));
  EXPECT_EQ(view.GetStorage(Addr(1), U256(5)), U256(0));
  EXPECT_EQ(view.writes().accounts.size(), 1u);
  view.ApplyTo(base_);
  EXPECT_FALSE(base_.Exists(Addr(1)));

  // A whole-account write conflicts with any read of that address.
  SpeculativeState reader(base_);
  (void)reader.GetBalance(Addr(1));
  EXPECT_TRUE(reader.reads().Intersects(view.writes()));
}

TEST_F(SpeculativeStateTest, DisjointAccessSetsDoNotConflict) {
  SpeculativeState a(base_);
  a.AddBalance(Addr(1), U256(1));
  SpeculativeState b(base_);
  b.AddBalance(Addr(2), U256(1));
  EXPECT_FALSE(b.reads().Intersects(a.writes()));
  EXPECT_FALSE(a.reads().Intersects(b.writes()));
}

TEST_F(SpeculativeStateTest, ReadOfWrittenFieldConflicts) {
  SpeculativeState writer(base_);
  writer.SetStorage(Addr(1), U256(5), U256(43));
  SpeculativeState reader(base_);
  (void)reader.GetStorage(Addr(1), U256(5));
  EXPECT_TRUE(reader.reads().Intersects(writer.writes()));
  // A different slot of the same account does not conflict.
  SpeculativeState other(base_);
  (void)other.GetStorage(Addr(1), U256(6));
  EXPECT_FALSE(other.reads().Intersects(writer.writes()));
}

TEST_F(SpeculativeStateTest, CreditFeeIsAWriteNotARead) {
  SpeculativeState payer(base_);
  payer.CreditFee(Addr(2), U256(21'000));
  EXPECT_EQ(payer.reads().size(), 0u);
  EXPECT_EQ(payer.writes().size(), 1u);
  // Two fee credits to the same account commute: neither *reads* the
  // balance, so a later transaction's credit does not conflict-check
  // against the earlier one's write via its read set.
  SpeculativeState payer2(base_);
  payer2.CreditFee(Addr(2), U256(42'000));
  EXPECT_FALSE(payer2.reads().Intersects(payer.writes()));
  payer.ApplyTo(base_);
  payer2.ApplyTo(base_);
  EXPECT_EQ(base_.GetBalance(Addr(2)), U256(500 + 21'000 + 42'000));
}

TEST_F(SpeculativeStateTest, ApplyToMatchesDirectExecution) {
  // The same mutation sequence applied directly and through an overlay must
  // produce identical state roots (byte-identical commit).
  WorldState direct = base_.Clone();
  (void)direct.SubBalance(Addr(1), U256(300)).ok();
  direct.AddBalance(Addr(2), U256(300));
  direct.IncrementNonce(Addr(1));
  direct.SetStorage(Addr(1), U256(5), U256(1));
  direct.SetStorage(Addr(1), U256(6), U256(2));
  direct.SetCode(Addr(3), Bytes{0x00});
  direct.ClearJournal();

  SpeculativeState view(base_);
  (void)view.SubBalance(Addr(1), U256(300)).ok();
  view.AddBalance(Addr(2), U256(300));
  view.IncrementNonce(Addr(1));
  view.SetStorage(Addr(1), U256(5), U256(1));
  view.SetStorage(Addr(1), U256(6), U256(2));
  view.SetCode(Addr(3), Bytes{0x00});
  view.ApplyTo(base_);
  EXPECT_EQ(base_.StateRoot(), direct.StateRoot());
}

}  // namespace
}  // namespace onoff::state
