#include "easm/assembler.h"

#include <gtest/gtest.h>

#include "evm/opcodes.h"

namespace onoff::easm {
namespace {

using evm::Opcode;

TEST(AssemblerTest, SimpleOpcodes) {
  auto code = Assemble("PUSH1 0x60 PUSH1 0x40 MSTORE STOP");
  ASSERT_TRUE(code.ok()) << code.status().ToString();
  EXPECT_EQ(ToHex(*code), "6060604052" "00");
}

TEST(AssemblerTest, CommentsAndWhitespace) {
  auto code = Assemble(R"(
    ; store 0x60 at 0x40
    PUSH1 0x60   ; value
    PUSH1 0x40   ; offset
    MSTORE
  )");
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(ToHex(*code), "6060604052");
}

TEST(AssemblerTest, AutoWidthPush) {
  auto code = Assemble("PUSH 0 PUSH 255 PUSH 256 PUSH 0x123456");
  ASSERT_TRUE(code.ok());
  // PUSH1 00, PUSH1 ff, PUSH2 0100, PUSH3 123456
  EXPECT_EQ(ToHex(*code), "6000" "60ff" "610100" "62123456");
}

TEST(AssemblerTest, ExplicitWidthPush) {
  auto code = Assemble("PUSH4 0xdeadbeef PUSH32 1");
  ASSERT_TRUE(code.ok());
  EXPECT_EQ((*code)[0], 0x63);
  EXPECT_EQ((*code)[5], 0x7f);
  EXPECT_EQ(code->size(), 5u + 33u);
  // Literal too wide for requested push fails.
  EXPECT_FALSE(Assemble("PUSH1 0x1234").ok());
}

TEST(AssemblerTest, LabelsAndJumps) {
  auto code = Assemble(R"(
    PUSH @end JUMP
    PUSH1 0xff    ; skipped
    end:
    STOP
  )");
  ASSERT_TRUE(code.ok());
  // PUSH2 0006 JUMP PUSH1 ff JUMPDEST STOP
  EXPECT_EQ(ToHex(*code), "610006" "56" "60ff" "5b" "00");
}

TEST(AssemblerTest, ForwardAndBackwardLabels) {
  auto code = Assemble(R"(
    loop:
    PUSH @loop JUMP
  )");
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(ToHex(*code), "5b" "610000" "56");
}

TEST(AssemblerTest, RawData) {
  auto code = Assemble("STOP DB 0xdeadbeef");
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(ToHex(*code), "00deadbeef");
}

TEST(AssemblerTest, Errors) {
  EXPECT_FALSE(Assemble("BOGUS").ok());
  EXPECT_FALSE(Assemble("PUSH1").ok());       // missing operand
  EXPECT_FALSE(Assemble("PUSH1 zz").ok());    // bad literal
  EXPECT_FALSE(Assemble("@floating").ok());   // label ref without PUSH
  EXPECT_FALSE(Assemble("PUSH @nowhere JUMP").ok());  // unbound label
  EXPECT_FALSE(Assemble("DB").ok());          // missing data
}

TEST(AssemblerTest, AllNamedOpcodesRoundTrip) {
  // Every defined non-push opcode assembles to its own byte.
  for (int op = 0; op < 256; ++op) {
    const auto& info = evm::GetOpcodeInfo(static_cast<uint8_t>(op));
    if (!info.defined || evm::IsPush(static_cast<uint8_t>(op))) continue;
    auto code = Assemble(std::string(info.name));
    ASSERT_TRUE(code.ok()) << info.name;
    ASSERT_EQ(code->size(), 1u) << info.name;
    EXPECT_EQ((*code)[0], op) << info.name;
  }
}

TEST(DisassemblerTest, RendersInstructions) {
  auto code = Assemble("PUSH1 0x60 PUSH2 0x0102 ADD STOP");
  ASSERT_TRUE(code.ok());
  std::string dis = Disassemble(*code);
  EXPECT_NE(dis.find("PUSH1 0x60"), std::string::npos);
  EXPECT_NE(dis.find("PUSH2 0x0102"), std::string::npos);
  EXPECT_NE(dis.find("ADD"), std::string::npos);
  EXPECT_NE(dis.find("STOP"), std::string::npos);
}

TEST(DisassemblerTest, UndefinedBytes) {
  std::string dis = Disassemble(Bytes{0x0c});
  EXPECT_NE(dis.find("UNDEFINED"), std::string::npos);
}

TEST(DisassemblerTest, TruncatedPushPadsWithZeros) {
  std::string dis = Disassemble(Bytes{0x61, 0x01});  // PUSH2 with 1 byte left
  EXPECT_NE(dis.find("PUSH2 0x0100"), std::string::npos);
}

TEST(AssemblerTest, SourceMapTracksLinesAndLabels) {
  SourceMap map;
  auto code = AssembleWithMap(
      "PUSH @end JUMP\n"
      "PUSH1 0xff\n"
      "end:\n"
      "STOP\n",
      &map);
  ASSERT_TRUE(code.ok()) << code.status().ToString();
  // PUSH2 0006 (pc 0, line 1) JUMP (pc 3, line 1) PUSH1 ff (pc 4, line 2)
  // JUMPDEST (pc 6, line 3) STOP (pc 7, line 4)
  EXPECT_EQ(map.LineAt(0), 1);
  EXPECT_EQ(map.LineAt(3), 1);
  EXPECT_EQ(map.LineAt(4), 2);
  EXPECT_EQ(map.LineAt(6), 3);
  EXPECT_EQ(map.LineAt(7), 4);
  ASSERT_NE(map.LabelAt(6), nullptr);
  EXPECT_EQ(*map.LabelAt(6), "end");
  EXPECT_EQ(map.LabelAt(0), nullptr);
}

TEST(AssemblerTest, UndefinedLabelNamesTheLabelAndLine) {
  auto code = Assemble("STOP\nPUSH @missing JUMP");
  ASSERT_FALSE(code.ok());
  EXPECT_NE(code.status().message().find("missing"), std::string::npos)
      << code.status().ToString();
  EXPECT_NE(code.status().message().find("line 2"), std::string::npos)
      << code.status().ToString();
}

TEST(CodeBuilderTest, BuildsAndPatchesLabels) {
  CodeBuilder b;
  auto end = b.NewLabel();
  b.PushLabel(end).Op(Opcode::JUMP).Push(uint64_t{0xff}).Bind(end).Op(
      Opcode::STOP);
  auto code = b.Build();
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(ToHex(*code), "610006" "56" "60ff" "5b" "00");
}

TEST(CodeBuilderTest, UnboundLabelFails) {
  CodeBuilder b;
  auto l = b.NewLabel();
  b.PushLabel(l);
  EXPECT_FALSE(b.Build().ok());
}

TEST(CodeBuilderTest, MinimalPushWidths) {
  CodeBuilder b;
  b.Push(U256(0)).Push(U256(0x100)).Push(~U256());
  auto code = b.Build();
  ASSERT_TRUE(code.ok());
  EXPECT_EQ((*code)[0], 0x60);  // PUSH1 0
  EXPECT_EQ((*code)[2], 0x61);  // PUSH2
  EXPECT_EQ((*code)[5], 0x7f);  // PUSH32
}

}  // namespace
}  // namespace onoff::easm
