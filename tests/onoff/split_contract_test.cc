#include "onoff/split_contract.h"

#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "contracts/betting.h"  // Ether()
#include "evm/opcodes.h"

namespace onoff::core {
namespace {

using contracts::ContractWriter;
using contracts::Ether;
using evm::Opcode;
using secp256k1::PrivateKey;

// The whole contract for these tests: two light functions and one heavy
// function. ping() stores 7 to slot 1; pong() stores 8 to slot 2; compute()
// runs a small keccak chain and yields its result.
std::vector<FunctionDef> TestFunctions() {
  std::vector<FunctionDef> fns;
  fns.push_back({"ping()", false, [](ContractWriter& w) {
                   w.PushU(U256(7));
                   w.SStore(U256(1));
                 }});
  fns.push_back({"pong()", false, [](ContractWriter& w) {
                   w.PushU(U256(8));
                   w.SStore(U256(2));
                 }});
  fns.push_back({"compute()", true, [](ContractWriter& w) {
                   // keccak256 of the word 0x1234 stored at memory 0.
                   w.PushU(U256(0x1234));
                   w.PushU(U256(0));
                   w.b().Op(Opcode::MSTORE);
                   w.PushU(U256(0x20));
                   w.PushU(U256(0));
                   w.b().Op(Opcode::SHA3);
                 }});
  return fns;
}

U256 ExpectedComputeResult() {
  Hash32 h = Keccak256(U256(0x1234).ToBytes());
  return U256::FromBigEndianTruncating(BytesView(h.data(), h.size()));
}

class SplitContractTest : public ::testing::Test {
 protected:
  SplitContractTest()
      : alice_(PrivateKey::FromSeed("alice")), bob_(PrivateKey::FromSeed("bob")) {
    chain_.FundAccount(alice_.EthAddress(), Ether(10));
    chain_.FundAccount(bob_.EthAddress(), Ether(10));
    config_.participants = {alice_.EthAddress(), bob_.EthAddress()};
    config_.challenge_period_seconds = 50;
  }

  Address Deploy(const Bytes& init, const PrivateKey& from) {
    auto r = chain_.Execute(from, std::nullopt, U256(), init, 5'000'000);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r->success);
    return r->contract_address;
  }

  chain::Receipt Call(const PrivateKey& from, const Address& to, Bytes data,
                      uint64_t gas = 3'000'000) {
    auto r = chain_.Execute(from, to, U256(), std::move(data), gas);
    EXPECT_TRUE(r.ok());
    return *r;
  }

  SignedCopy SignBoth(const Bytes& bytecode) {
    SignedCopy copy(bytecode);
    copy.AddSignature(alice_);
    copy.AddSignature(bob_);
    return copy;
  }

  chain::Blockchain chain_;
  PrivateKey alice_;
  PrivateKey bob_;
  SplitConfig config_;
};

TEST_F(SplitContractTest, SplitsByTag) {
  auto split = SplitContract(config_, TestFunctions());
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  EXPECT_EQ(split->onchain_signatures[0], "ping()");
  EXPECT_EQ(split->onchain_signatures[1], "pong()");
  // Padded extras on both sides.
  EXPECT_EQ(split->onchain_signatures.size(), 2u + 4u);
  ASSERT_EQ(split->offchain_signatures.size(), 1u + 1u);
  EXPECT_EQ(split->offchain_signatures[0], "compute()");
  EXPECT_EQ(split->offchain_signatures[1], "returnDisputeResolution(address)");
}

TEST_F(SplitContractTest, RequiresAHeavyFunction) {
  std::vector<FunctionDef> only_light = {
      {"ping()", false, [](ContractWriter& w) { w.PushU(U256(0)); w.b().Op(Opcode::POP); }}};
  EXPECT_FALSE(SplitContract(config_, only_light).ok());
  auto fns = TestFunctions();
  config_.resolver_index = 5;
  EXPECT_FALSE(SplitContract(config_, fns).ok());
}

TEST_F(SplitContractTest, LightFunctionsRunOnChain) {
  auto split = SplitContract(config_, TestFunctions());
  ASSERT_TRUE(split.ok());
  Address onchain = Deploy(split->onchain_init, alice_);
  EXPECT_TRUE(Call(alice_, onchain, abi::EncodeCall("ping()", {})).success);
  EXPECT_TRUE(Call(bob_, onchain, abi::EncodeCall("pong()", {})).success);
  EXPECT_EQ(chain_.GetStorage(onchain, U256(1)), U256(7));
  EXPECT_EQ(chain_.GetStorage(onchain, U256(2)), U256(8));
  // The heavy function is NOT on-chain.
  EXPECT_FALSE(Call(alice_, onchain, abi::EncodeCall("compute()", {})).success);
}

TEST_F(SplitContractTest, HeavyFunctionRunsOffChainAndMatchesWhole) {
  auto split = SplitContract(config_, TestFunctions());
  ASSERT_TRUE(split.ok());
  // Local (participant-side) execution of the off-chain contract.
  Address offchain = Deploy(split->offchain_init, alice_);
  auto res = chain_.CallReadOnly(alice_.EthAddress(), offchain,
                                 abi::EncodeCall("compute()", {}));
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(U256::FromBigEndianTruncating(res.output), ExpectedComputeResult());

  // The all-on-chain baseline stores the same result.
  auto whole = BuildWholeContract(TestFunctions());
  ASSERT_TRUE(whole.ok());
  Address whole_addr = Deploy(*whole, alice_);
  EXPECT_TRUE(Call(alice_, whole_addr, abi::EncodeCall("compute()", {})).success);
  EXPECT_EQ(chain_.GetStorage(whole_addr, U256(split_slots::kFinalResult)),
            ExpectedComputeResult());
  EXPECT_EQ(chain_.GetStorage(whole_addr, U256(split_slots::kResultReady)),
            U256(1));
}

TEST_F(SplitContractTest, OptimisticSubmitFinalize) {
  auto split = SplitContract(config_, TestFunctions());
  ASSERT_TRUE(split.ok());
  Address onchain = Deploy(split->onchain_init, alice_);
  U256 result = ExpectedComputeResult();
  EXPECT_TRUE(Call(alice_, onchain, SubmitResultCalldata(result)).success);
  // Finalize before the challenge period elapses: rejected.
  EXPECT_FALSE(Call(bob_, onchain, FinalizeResultCalldata()).success);
  chain_.AdvanceTime(config_.challenge_period_seconds);
  EXPECT_TRUE(Call(bob_, onchain, FinalizeResultCalldata()).success);
  EXPECT_EQ(chain_.GetStorage(onchain, U256(split_slots::kFinalResult)), result);
  EXPECT_EQ(chain_.GetStorage(onchain, U256(split_slots::kResultReady)), U256(1));
  // No second proposal/finalization.
  EXPECT_FALSE(Call(alice_, onchain, SubmitResultCalldata(U256(1))).success);
  EXPECT_FALSE(Call(bob_, onchain, FinalizeResultCalldata()).success);
}

TEST_F(SplitContractTest, SubmitGuards) {
  auto split = SplitContract(config_, TestFunctions());
  ASSERT_TRUE(split.ok());
  Address onchain = Deploy(split->onchain_init, alice_);
  auto outsider = PrivateKey::FromSeed("outsider");
  chain_.FundAccount(outsider.EthAddress(), Ether(1));
  EXPECT_FALSE(Call(outsider, onchain, SubmitResultCalldata(U256(1))).success);
  EXPECT_TRUE(Call(alice_, onchain, SubmitResultCalldata(U256(1))).success);
  // Only one pending proposal at a time.
  EXPECT_FALSE(Call(bob_, onchain, SubmitResultCalldata(U256(2))).success);
  // Finalize with no proposal: fresh contract.
  Address second = Deploy(split->onchain_init, bob_);
  EXPECT_FALSE(Call(bob_, second, FinalizeResultCalldata()).success);
}

TEST_F(SplitContractTest, DisputeOverridesFalseProposal) {
  auto split = SplitContract(config_, TestFunctions());
  ASSERT_TRUE(split.ok());
  Address onchain = Deploy(split->onchain_init, alice_);

  // Alice (dishonest representative) submits a FALSE result.
  U256 false_result(0xbadbad);
  ASSERT_TRUE(Call(alice_, onchain, SubmitResultCalldata(false_result)).success);

  // Bob challenges within the window with the signed copy.
  SignedCopy copy = SignBoth(split->offchain_init);
  auto calldata = DeployVerifiedInstanceCalldata(copy, config_);
  ASSERT_TRUE(calldata.ok());
  ASSERT_TRUE(Call(bob_, onchain, *calldata, 6'000'000).success);
  Address instance = Address::FromWord(
      chain_.GetStorage(onchain, U256(split_slots::kDeployedAddr)));
  ASSERT_FALSE(instance.IsZero());
  EXPECT_EQ(chain_.GetCode(instance), split->offchain_runtime);

  // The verified instance pushes the TRUE result into the on-chain contract.
  ASSERT_TRUE(
      Call(bob_, instance, ReturnDisputeResolutionCalldata(onchain)).success);
  EXPECT_EQ(chain_.GetStorage(onchain, U256(split_slots::kFinalResult)),
            ExpectedComputeResult());
  EXPECT_EQ(chain_.GetStorage(onchain, U256(split_slots::kResultReady)), U256(1));
  // The false proposal can no longer be finalized.
  chain_.AdvanceTime(config_.challenge_period_seconds);
  EXPECT_FALSE(Call(alice_, onchain, FinalizeResultCalldata()).success);
  EXPECT_NE(chain_.GetStorage(onchain, U256(split_slots::kFinalResult)),
            false_result);
}

TEST_F(SplitContractTest, DisputeRejectsForgedCopy) {
  auto split = SplitContract(config_, TestFunctions());
  ASSERT_TRUE(split.ok());
  Address onchain = Deploy(split->onchain_init, alice_);
  // Copy signed only by alice (bob's slot holds alice's signature).
  SignedCopy copy(split->offchain_init);
  copy.AddSignature(alice_);
  auto alice_sig = copy.SignatureOf(alice_.EthAddress());
  ASSERT_TRUE(alice_sig.ok());
  copy.AttachSignature(bob_.EthAddress(), *alice_sig);
  auto calldata = DeployVerifiedInstanceCalldata(copy, config_);
  ASSERT_TRUE(calldata.ok());
  EXPECT_FALSE(Call(bob_, onchain, *calldata, 6'000'000).success);
}

TEST_F(SplitContractTest, EnforceResultOnlyFromInstance) {
  auto split = SplitContract(config_, TestFunctions());
  ASSERT_TRUE(split.ok());
  Address onchain = Deploy(split->onchain_init, alice_);
  EXPECT_FALSE(Call(alice_, onchain, EnforceResultCalldata(U256(5))).success);
  EXPECT_TRUE(
      chain_.GetStorage(onchain, U256(split_slots::kResultReady)).IsZero());
}

TEST_F(SplitContractTest, FinalizedResultBlocksLateDispute) {
  auto split = SplitContract(config_, TestFunctions());
  ASSERT_TRUE(split.ok());
  Address onchain = Deploy(split->onchain_init, alice_);
  ASSERT_TRUE(
      Call(alice_, onchain, SubmitResultCalldata(ExpectedComputeResult()))
          .success);
  chain_.AdvanceTime(config_.challenge_period_seconds);
  ASSERT_TRUE(Call(bob_, onchain, FinalizeResultCalldata()).success);
  // The challenge window is closed: deployVerifiedInstance now reverts.
  SignedCopy copy = SignBoth(split->offchain_init);
  auto calldata = DeployVerifiedInstanceCalldata(copy, config_);
  ASSERT_TRUE(calldata.ok());
  EXPECT_FALSE(Call(bob_, onchain, *calldata, 6'000'000).success);
}

TEST_F(SplitContractTest, VerifiedInstanceAddressIsCounterfactual) {
  // Because CREATE derives the instance address from (on-chain contract,
  // nonce), participants can compute the verified instance's address BEFORE
  // any dispute — useful for pre-authorizing it in other contracts.
  auto split = SplitContract(config_, TestFunctions());
  ASSERT_TRUE(split.ok());
  Address onchain = Deploy(split->onchain_init, alice_);
  // The on-chain contract is created with nonce 1 (EIP-161), so its first
  // CREATE uses nonce 1.
  Address predicted = evm::Evm::ContractAddress(onchain, 1);

  SignedCopy copy = SignBoth(split->offchain_init);
  auto calldata = DeployVerifiedInstanceCalldata(copy, config_);
  ASSERT_TRUE(calldata.ok());
  ASSERT_TRUE(Call(bob_, onchain, *calldata, 6'000'000).success);
  Address actual = Address::FromWord(
      chain_.GetStorage(onchain, U256(split_slots::kDeployedAddr)));
  EXPECT_EQ(actual, predicted);
}

TEST_F(SplitContractTest, SplitterRejectsLeakyPrivateFunction) {
  // A function tagged heavy/private whose body writes state: the generator
  // must refuse to produce contracts whose privacy claim is false.
  auto fns = TestFunctions();
  fns.push_back({"leaky()", true, [](ContractWriter& w) {
                   w.PushU(U256(0x5ec2e7));
                   w.b().Op(Opcode::DUP1);
                   w.SStore(U256(9));  // leaks the secret into public state
                 }});
  auto split = SplitContract(config_, fns);
  ASSERT_FALSE(split.ok());
  EXPECT_EQ(split.status().code(), StatusCode::kAnalysisRejected);
  EXPECT_NE(split.status().message().find("ANA12"), std::string::npos)
      << split.status().ToString();
}

TEST_F(SplitContractTest, AuditOptionsCarryTheClassification) {
  auto split = SplitContract(config_, TestFunctions());
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  // The splitter's policies re-verify on signing: the generated off-chain
  // init code passes its own private-function audit.
  SignedCopy copy(split->offchain_init);
  copy.set_audit_options(split->offchain_audit);
  EXPECT_TRUE(copy.AddSignature(alice_).ok());
  EXPECT_EQ(copy.signature_count(), 1u);
  // The on-chain policy declares the light functions (and padded extras
  // minus deployVerifiedInstance) light.
  EXPECT_EQ(split->onchain_audit.light_selectors.size(), 2u + 3u);
  EXPECT_EQ(split->offchain_audit.private_selectors.size(), 1u);
}

// ---- n-party generalization ----

class NPartySplitTest : public ::testing::TestWithParam<int> {};

TEST_P(NPartySplitTest, DisputeVerifiesAllSignatures) {
  int n = GetParam();
  chain::Blockchain chain;
  std::vector<PrivateKey> keys;
  SplitConfig config;
  for (int i = 0; i < n; ++i) {
    keys.push_back(PrivateKey::FromSeed("party" + std::to_string(i)));
    chain.FundAccount(keys.back().EthAddress(), Ether(10));
    config.participants.push_back(keys.back().EthAddress());
  }
  auto split = SplitContract(config, TestFunctions());
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  EXPECT_EQ(split->onchain_signatures[2 + 2],
            DeploySignatureFor(static_cast<size_t>(n)));

  auto deploy = chain.Execute(keys[0], std::nullopt, U256(),
                              split->onchain_init, 8'000'000);
  ASSERT_TRUE(deploy.ok());
  ASSERT_TRUE(deploy->success);
  Address onchain = deploy->contract_address;

  // A copy missing the LAST participant's signature must be rejected.
  SignedCopy partial(split->offchain_init);
  for (int i = 0; i + 1 < n; ++i) partial.AddSignature(keys[i]);
  // Forge the missing one with a duplicate of the first signature.
  auto first_sig = partial.SignatureOf(keys[0].EthAddress());
  ASSERT_TRUE(first_sig.ok());
  partial.AttachSignature(keys[n - 1].EthAddress(), *first_sig);
  auto bad_calldata = DeployVerifiedInstanceCalldata(partial, config);
  ASSERT_TRUE(bad_calldata.ok());
  auto bad = chain.Execute(keys[1], onchain, U256(), *bad_calldata, 8'000'000);
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->success);

  // The complete copy passes and the dispute resolves the true result.
  SignedCopy copy(split->offchain_init);
  for (const auto& key : keys) copy.AddSignature(key);
  auto calldata = DeployVerifiedInstanceCalldata(copy, config);
  ASSERT_TRUE(calldata.ok());
  auto good = chain.Execute(keys[1], onchain, U256(), *calldata, 8'000'000);
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(good->success);
  Address instance = Address::FromWord(
      chain.GetStorage(onchain, U256(split_slots::kDeployedAddr)));
  auto resolve = chain.Execute(keys[n - 1], instance, U256(),
                               ReturnDisputeResolutionCalldata(onchain),
                               8'000'000);
  ASSERT_TRUE(resolve.ok());
  ASSERT_TRUE(resolve->success);
  EXPECT_EQ(chain.GetStorage(onchain, U256(split_slots::kFinalResult)),
            ExpectedComputeResult());
}

INSTANTIATE_TEST_SUITE_P(PartyCounts, NPartySplitTest,
                         ::testing::Values(2, 3, 5, 8));

}  // namespace
}  // namespace onoff::core
