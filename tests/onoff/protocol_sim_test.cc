#include <gtest/gtest.h>

#include "onoff/protocol.h"
#include "sim/scheduler.h"
#include "sim/transport.h"

namespace onoff::core {
namespace {

using contracts::Ether;
using secp256k1::PrivateKey;

// The protocol under simulated time. The timing template puts T1/T2/T3 at
// +100s/+200s/+300s of chain time, i.e. virtual ms 100'000/200'000/300'000
// relative to the start of the run.
class ProtocolSimTest : public ::testing::Test {
 protected:
  ProtocolSimTest()
      : alice_(PrivateKey::FromSeed("alice")),
        bob_(PrivateKey::FromSeed("bob")) {
    chain_.FundAccount(alice_.EthAddress(), Ether(10));
    chain_.FundAccount(bob_.EthAddress(), Ether(10));
    offchain_.secret_alice = U256(0xa11ce);
    offchain_.secret_bob = U256(0xb0b);
    offchain_.reveal_iterations = 20;
  }

  // Who loses this configuration's bet (decides which link to slow down).
  Address LoserAddress() {
    contracts::OffchainConfig cfg = offchain_;
    cfg.alice = alice_.EthAddress();
    cfg.bob = bob_.EthAddress();
    return contracts::ComputeWinner(cfg) ? alice_.EthAddress()
                                         : bob_.EthAddress();
  }

  chain::Blockchain chain_;
  MessageBus bus_;
  PrivateKey alice_;
  PrivateKey bob_;
  contracts::OffchainConfig offchain_;
};

TEST_F(ProtocolSimTest, ZeroLatencySimMatchesSynchronousRun) {
  // Identity links: the simulated run must reproduce the synchronous one —
  // same settlement, same gas, nothing revealed.
  chain::Blockchain sync_chain;
  sync_chain.FundAccount(alice_.EthAddress(), Ether(10));
  sync_chain.FundAccount(bob_.EthAddress(), Ether(10));
  MessageBus sync_bus;
  BettingProtocol sync_protocol(&sync_chain, &sync_bus, alice_, bob_,
                                offchain_, Ether(1));
  auto sync_report = sync_protocol.Run(Behavior{}, Behavior{});
  ASSERT_TRUE(sync_report.ok());

  sim::Scheduler sched;
  sim::SimTransport transport(&sched, 42);  // default link = identity
  BettingProtocol protocol(&chain_, &bus_, alice_, bob_, offchain_, Ether(1));
  protocol.BindSimulation(&sched, &transport);
  auto report = protocol.Run(Behavior{}, Behavior{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(report->settlement, Settlement::kOptimistic);
  EXPECT_EQ(report->settlement, sync_report->settlement);
  EXPECT_EQ(report->TotalGas(), sync_report->TotalGas());
  EXPECT_EQ(report->TotalOnchainBytes(), sync_report->TotalOnchainBytes());
  EXPECT_EQ(report->bob_won, sync_report->bob_won);
  EXPECT_TRUE(report->correct_payout);
  EXPECT_EQ(report->private_bytes_revealed, 0u);
}

TEST_F(ProtocolSimTest, DisputeSucceedsWithinChallengePeriod) {
  sim::Scheduler sched;
  sim::SimTransport transport(&sched, 42);
  sim::LinkConfig cfg;
  cfg.latency_ms = 1000;  // well under the 60s default challenge period
  transport.SetDefaultLink(cfg);
  BettingProtocol protocol(&chain_, &bus_, alice_, bob_, offchain_, Ether(1));
  protocol.BindSimulation(&sched, &transport);
  Behavior dishonest;
  dishonest.admit_loss = false;
  auto report = protocol.Run(dishonest, dishonest);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->settlement, Settlement::kDisputed);
  EXPECT_TRUE(report->correct_payout);
  // Two dispute transactions, one RTT each on the 1000ms link.
  EXPECT_EQ(report->dispute_ms, 2000u);
  EXPECT_GT(report->private_bytes_revealed, 0u);
}

TEST_F(ProtocolSimTest, DisputeTimesOutWhenLatencyExceedsChallengePeriod) {
  sim::Scheduler sched;
  sim::SimTransport transport(&sched, 42);
  sim::LinkConfig cfg;
  cfg.latency_ms = 5000;
  transport.SetDefaultLink(cfg);
  ProtocolTiming timing;
  timing.challenge_period_ms = 3000;  // < one-way latency: cannot be met
  BettingProtocol protocol(&chain_, &bus_, alice_, bob_, offchain_, Ether(1),
                           timing);
  protocol.BindSimulation(&sched, &transport);
  Behavior dishonest;
  dishonest.admit_loss = false;
  auto report = protocol.Run(dishonest, dishonest);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->settlement, Settlement::kDisputeTimedOut);
  EXPECT_FALSE(report->correct_payout);
  // The reveal never reached the chain.
  EXPECT_EQ(report->private_bytes_revealed, 0u);
}

TEST_F(ProtocolSimTest, LateReassignEscalatesToDispute) {
  // The loser DOES admit the loss, but their link is so slow the admission
  // cannot reach the chain before T3 (reassign is sent at T2+~0, 100s of
  // virtual headroom; the link one-way delay is 150s). The contract's time
  // guard arbitrates: the protocol must fall through to the dispute path
  // and still pay the winner.
  sim::Scheduler sched;
  sim::SimTransport transport(&sched, 42);
  // The link degrades at virtual 150s — after the deposits (due by T1 =
  // 100s) have landed, before reassign is sent (just past T2 = 200s).
  sched.ScheduleAt(150'000, [&] {
    sim::LinkConfig slow;
    slow.latency_ms = 150'000;
    transport.SetLink(LoserAddress().ToHex(), "chain", slow);
  });
  BettingProtocol protocol(&chain_, &bus_, alice_, bob_, offchain_, Ether(1));
  protocol.BindSimulation(&sched, &transport);
  auto report = protocol.Run(Behavior{}, Behavior{});  // everyone honest
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->settlement, Settlement::kDisputed);
  EXPECT_TRUE(report->correct_payout);
  EXPECT_GT(report->private_bytes_revealed, 0u);
}

TEST_F(ProtocolSimTest, RetransmissionRidesOutPartitionWithinWindow) {
  // The chain is unreachable for the first 2s of the challenge period; the
  // winner's retry loop keeps re-sending and wins once the partition heals.
  sim::Scheduler sched;
  sim::SimTransport transport(&sched, 42);
  // T3 is at virtual 300'000ms; isolate the chain across it.
  transport.SchedulePartition(299'000, {"chain"}, 302'000);
  BettingProtocol protocol(&chain_, &bus_, alice_, bob_, offchain_, Ether(1));
  protocol.BindSimulation(&sched, &transport);
  Behavior dishonest;
  dishonest.admit_loss = false;
  auto report = protocol.Run(dishonest, dishonest);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->settlement, Settlement::kDisputed);
  EXPECT_TRUE(report->correct_payout);
  // Resolution waited out the partition: at least 2s after T3.
  EXPECT_GE(report->dispute_ms, 2000u);
  EXPECT_LT(report->dispute_ms, 10'000u);
}

TEST_F(ProtocolSimTest, PartitionOutlastingChallengePeriodTimesOut) {
  sim::Scheduler sched;
  sim::SimTransport transport(&sched, 42);
  ProtocolTiming timing;
  timing.challenge_period_ms = 5000;
  // Partition covers [T3-1s, T3+10s] — the whole 5s challenge window.
  transport.SchedulePartition(299'000, {"chain"}, 310'000);
  BettingProtocol protocol(&chain_, &bus_, alice_, bob_, offchain_, Ether(1),
                           timing);
  protocol.BindSimulation(&sched, &transport);
  Behavior dishonest;
  dishonest.admit_loss = false;
  auto report = protocol.Run(dishonest, dishonest);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->settlement, Settlement::kDisputeTimedOut);
  EXPECT_FALSE(report->correct_payout);
}

TEST_F(ProtocolSimTest, SameSeedRunsProduceIdenticalReports) {
  auto run = [this](uint64_t seed) {
    chain::Blockchain chain;
    chain.FundAccount(alice_.EthAddress(), Ether(10));
    chain.FundAccount(bob_.EthAddress(), Ether(10));
    MessageBus bus;
    sim::Scheduler sched;
    sim::SimTransport transport(&sched, seed);
    sim::LinkConfig cfg;
    cfg.latency_ms = 800;
    cfg.jitter_ms = 900;
    cfg.loss = 0.2;
    transport.SetDefaultLink(cfg);
    BettingProtocol protocol(&chain, &bus, alice_, bob_, offchain_, Ether(1));
    protocol.BindSimulation(&sched, &transport);
    Behavior dishonest;
    dishonest.admit_loss = false;
    auto report = protocol.Run(dishonest, dishonest);
    EXPECT_TRUE(report.ok());
    return *report;
  };
  ProtocolReport a = run(9001), b = run(9001);
  EXPECT_EQ(a.settlement, b.settlement);
  EXPECT_EQ(a.dispute_ms, b.dispute_ms);
  EXPECT_EQ(a.TotalGas(), b.TotalGas());
  EXPECT_EQ(a.TotalOnchainBytes(), b.TotalOnchainBytes());
  EXPECT_EQ(a.private_bytes_revealed, b.private_bytes_revealed);
}

TEST_F(ProtocolSimTest, UnbindRestoresSynchronousBehaviour) {
  sim::Scheduler sched;
  sim::SimTransport transport(&sched, 42);
  BettingProtocol protocol(&chain_, &bus_, alice_, bob_, offchain_, Ether(1));
  protocol.BindSimulation(&sched, &transport);
  protocol.BindSimulation(nullptr, nullptr);
  auto report = protocol.Run(Behavior{}, Behavior{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->settlement, Settlement::kOptimistic);
  // The scheduler never saw a single event.
  EXPECT_EQ(sched.EventsExecuted(), 0u);
}

}  // namespace
}  // namespace onoff::core
