#include "onoff/protocol.h"

#include <gtest/gtest.h>

namespace onoff::core {
namespace {

using contracts::Ether;
using secp256k1::PrivateKey;

class ProtocolTest : public ::testing::Test {
 protected:
  ProtocolTest()
      : alice_(PrivateKey::FromSeed("alice")), bob_(PrivateKey::FromSeed("bob")) {
    chain_.FundAccount(alice_.EthAddress(), Ether(10));
    chain_.FundAccount(bob_.EthAddress(), Ether(10));
    offchain_.secret_alice = U256(0xa11ce);
    offchain_.secret_bob = U256(0xb0b);
    offchain_.reveal_iterations = 20;
  }

  BettingProtocol MakeProtocol() {
    return BettingProtocol(&chain_, &bus_, alice_, bob_, offchain_, Ether(1));
  }

  chain::Blockchain chain_;
  MessageBus bus_;
  PrivateKey alice_;
  PrivateKey bob_;
  contracts::OffchainConfig offchain_;
};

TEST_F(ProtocolTest, HonestRunSettlesOptimistically) {
  auto protocol = MakeProtocol();
  auto report = protocol.Run(Behavior{}, Behavior{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->settlement, Settlement::kOptimistic);
  EXPECT_TRUE(report->correct_payout);
  // Privacy headline: nothing of the off-chain contract touched the chain.
  EXPECT_EQ(report->private_bytes_revealed, 0u);
  // The dispute stage stayed silent.
  const StageReport& s4 =
      report->stages[static_cast<int>(Stage::kDisputeResolve)];
  EXPECT_EQ(s4.gas_used, 0u);
  EXPECT_EQ(s4.transactions, 0);
  // Deploy/sign stage carried the signed copies off-chain.
  const StageReport& s2 = report->stages[static_cast<int>(Stage::kDeploySign)];
  EXPECT_GT(s2.offchain_messages, 0u);
  EXPECT_GT(s2.offchain_bytes, 0u);
}

TEST_F(ProtocolTest, DishonestLoserIsOverridden) {
  auto protocol = MakeProtocol();
  Behavior dishonest;
  dishonest.admit_loss = false;
  // Make BOTH dishonest as losers; only the actual loser matters.
  auto report = protocol.Run(dishonest, dishonest);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->settlement, Settlement::kDisputed);
  EXPECT_TRUE(report->correct_payout);
  // The off-chain contract went public.
  EXPECT_GT(report->private_bytes_revealed, 0u);
  EXPECT_FALSE(report->verified_instance.IsZero());
  const StageReport& s4 =
      report->stages[static_cast<int>(Stage::kDisputeResolve)];
  EXPECT_EQ(s4.transactions, 2);  // deployVerifiedInstance + return
  EXPECT_GT(s4.gas_used, 100'000u);
}

TEST_F(ProtocolTest, RefusingToSignAbortsBeforeMoneyMoves) {
  auto protocol = MakeProtocol();
  Behavior no_sign;
  no_sign.sign_offchain_copy = false;
  U256 alice_before = chain_.GetBalance(alice_.EthAddress());
  auto report = protocol.Run(Behavior{}, no_sign);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->settlement, Settlement::kAbortedUnsigned);
  // Alice paid only the deployment gas; her ether never entered the contract.
  const StageReport& s3 =
      report->stages[static_cast<int>(Stage::kSubmitChallenge)];
  EXPECT_EQ(s3.transactions, 0);
  EXPECT_LT(alice_before - chain_.GetBalance(alice_.EthAddress()), Ether(1));
}

TEST_F(ProtocolTest, MissingDepositRefundsTheOther) {
  auto protocol = MakeProtocol();
  Behavior no_deposit;
  no_deposit.make_deposit = false;
  U256 alice_before = chain_.GetBalance(alice_.EthAddress());
  auto report = protocol.Run(Behavior{}, no_deposit);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->settlement, Settlement::kRefunded);
  EXPECT_TRUE(report->correct_payout);
  // Alice got her deposit back; net loss is only gas.
  U256 net_loss = alice_before - chain_.GetBalance(alice_.EthAddress());
  EXPECT_LT(net_loss, U256(2'000'000));  // gas only (price 1)
}

TEST_F(ProtocolTest, WinnerIsConsistentWithNativeReveal) {
  auto protocol = MakeProtocol();
  auto report = protocol.Run(Behavior{}, Behavior{});
  ASSERT_TRUE(report.ok());
  contracts::OffchainConfig cfg = offchain_;
  cfg.alice = alice_.EthAddress();
  cfg.bob = bob_.EthAddress();
  EXPECT_EQ(report->bob_won, contracts::ComputeWinner(cfg));
}

TEST_F(ProtocolTest, DisputePathCostsMoreGasThanOptimistic) {
  // Two separate chains so the runs do not interact.
  chain::Blockchain chain_a;
  chain::Blockchain chain_b;
  for (auto* c : {&chain_a, &chain_b}) {
    c->FundAccount(alice_.EthAddress(), Ether(10));
    c->FundAccount(bob_.EthAddress(), Ether(10));
  }
  MessageBus bus_a;
  MessageBus bus_b;
  BettingProtocol honest(&chain_a, &bus_a, alice_, bob_, offchain_, Ether(1));
  BettingProtocol contested(&chain_b, &bus_b, alice_, bob_, offchain_, Ether(1));
  auto honest_report = honest.Run(Behavior{}, Behavior{});
  Behavior dishonest;
  dishonest.admit_loss = false;
  auto dispute_report = contested.Run(dishonest, dishonest);
  ASSERT_TRUE(honest_report.ok());
  ASSERT_TRUE(dispute_report.ok());
  EXPECT_GT(dispute_report->TotalGas(), honest_report->TotalGas());
  EXPECT_GT(dispute_report->TotalOnchainBytes(),
            honest_report->TotalOnchainBytes());
}

TEST_F(ProtocolTest, TamperedSignedCopyAborts) {
  // A hostile channel flips a byte in every signed-copy message: both
  // participants must detect it and walk away before depositing.
  bus_.set_tamper_hook([](Message& m) {
    if (!m.payload.empty()) m.payload[m.payload.size() / 2] ^= 0x01;
  });
  auto protocol = MakeProtocol();
  U256 alice_before = chain_.GetBalance(alice_.EthAddress());
  auto report = protocol.Run(Behavior{}, Behavior{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->settlement, Settlement::kAbortedTampered);
  EXPECT_TRUE(report->correct_payout);
  // No deposits happened.
  const StageReport& s3 =
      report->stages[static_cast<int>(Stage::kSubmitChallenge)];
  EXPECT_EQ(s3.transactions, 0);
  EXPECT_LT(alice_before - chain_.GetBalance(alice_.EthAddress()), Ether(1));
}

TEST_F(ProtocolTest, DroppedSignedCopyAborts) {
  bus_.set_drop_hook([](const Message&) { return true; });  // lossy network
  auto protocol = MakeProtocol();
  auto report = protocol.Run(Behavior{}, Behavior{});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->settlement, Settlement::kAbortedTampered);
  EXPECT_TRUE(report->correct_payout);
}

TEST_F(ProtocolTest, SignedCopiesActuallyTraverseTheBus) {
  auto protocol = MakeProtocol();
  auto report = protocol.Run(Behavior{}, Behavior{});
  ASSERT_TRUE(report.ok());
  // Two broadcasts of a serialized copy (bytecode + one signature each).
  EXPECT_EQ(bus_.messages_sent(), 2u);
  EXPECT_GT(bus_.bytes_sent(), 600u);
  // Both inboxes were drained by the verification step.
  EXPECT_EQ(bus_.PendingFor(alice_.EthAddress()), 0u);
  EXPECT_EQ(bus_.PendingFor(bob_.EthAddress()), 0u);
}

TEST_F(ProtocolTest, StageAndSettlementNames) {
  EXPECT_STREQ(StageName(Stage::kSplitGenerate), "split/generate");
  EXPECT_STREQ(StageName(Stage::kDisputeResolve), "dispute/resolve");
  EXPECT_STREQ(SettlementName(Settlement::kOptimistic), "optimistic");
  EXPECT_STREQ(SettlementName(Settlement::kAbortedTampered),
               "aborted-tampered");
  EXPECT_STREQ(SettlementName(Settlement::kDisputed), "disputed");
}

// Sweep: the protocol settles correctly across different secrets (and hence
// both possible winners) and reveal weights.
class ProtocolSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ProtocolSweepTest, AlwaysCorrectPayout) {
  int i = GetParam();
  auto alice = PrivateKey::FromSeed("alice");
  auto bob = PrivateKey::FromSeed("bob");
  chain::Blockchain chain;
  chain.FundAccount(alice.EthAddress(), Ether(10));
  chain.FundAccount(bob.EthAddress(), Ether(10));
  MessageBus bus;
  contracts::OffchainConfig offchain;
  offchain.secret_alice = U256(static_cast<uint64_t>(i) * 7919 + 1);
  offchain.secret_bob = U256(static_cast<uint64_t>(i) * 104729 + 2);
  offchain.reveal_iterations = static_cast<uint64_t>(i % 5) * 10;
  BettingProtocol protocol(&chain, &bus, alice, bob, offchain, Ether(1));
  Behavior loser_behavior;
  loser_behavior.admit_loss = (i % 2 == 0);
  auto report = protocol.Run(loser_behavior, loser_behavior);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->correct_payout);
  EXPECT_EQ(report->settlement, loser_behavior.admit_loss
                                    ? Settlement::kOptimistic
                                    : Settlement::kDisputed);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, ProtocolSweepTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace onoff::core
