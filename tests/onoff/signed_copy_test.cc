#include "onoff/signed_copy.h"

#include <gtest/gtest.h>

namespace onoff::core {
namespace {

using secp256k1::PrivateKey;

class SignedCopyTest : public ::testing::Test {
 protected:
  SignedCopyTest()
      : alice_(PrivateKey::FromSeed("alice")),
        bob_(PrivateKey::FromSeed("bob")),
        mallory_(PrivateKey::FromSeed("mallory")),
        copy_(BytesOf("the off-chain contract deployment bytecode")) {
    // The fixture "bytecode" is an ASCII placeholder, not real EVM code;
    // these tests exercise the signature machinery, not the audit.
    copy_.set_audit_enabled(false);
  }

  PrivateKey alice_;
  PrivateKey bob_;
  PrivateKey mallory_;
  SignedCopy copy_;
};

TEST_F(SignedCopyTest, CompleteCopyVerifies) {
  copy_.AddSignature(alice_);
  copy_.AddSignature(bob_);
  EXPECT_EQ(copy_.signature_count(), 2u);
  EXPECT_TRUE(
      copy_.VerifyComplete({alice_.EthAddress(), bob_.EthAddress()}).ok());
}

TEST_F(SignedCopyTest, MissingSignatureFailsVerification) {
  copy_.AddSignature(alice_);
  auto status = copy_.VerifyComplete({alice_.EthAddress(), bob_.EthAddress()});
  EXPECT_EQ(status.code(), StatusCode::kVerificationFailed);
}

TEST_F(SignedCopyTest, ForeignSignatureCannotImpersonate) {
  copy_.AddSignature(alice_);
  // Mallory signs but attaches the signature under Bob's address.
  auto mallory_sig = secp256k1::Sign(copy_.BytecodeHash(), mallory_);
  ASSERT_TRUE(mallory_sig.ok());
  copy_.AttachSignature(bob_.EthAddress(), *mallory_sig);
  EXPECT_FALSE(
      copy_.VerifyComplete({alice_.EthAddress(), bob_.EthAddress()}).ok());
}

TEST_F(SignedCopyTest, TamperedBytecodeInvalidatesSignatures) {
  copy_.AddSignature(alice_);
  copy_.AddSignature(bob_);
  SignedCopy tampered(BytesOf("the off-chain contract deployment bytecodeX"));
  auto sig_a = copy_.SignatureOf(alice_.EthAddress());
  auto sig_b = copy_.SignatureOf(bob_.EthAddress());
  ASSERT_TRUE(sig_a.ok());
  ASSERT_TRUE(sig_b.ok());
  tampered.AttachSignature(alice_.EthAddress(), *sig_a);
  tampered.AttachSignature(bob_.EthAddress(), *sig_b);
  EXPECT_FALSE(
      tampered.VerifyComplete({alice_.EthAddress(), bob_.EthAddress()}).ok());
}

TEST_F(SignedCopyTest, ReSigningReplacesNotDuplicates) {
  copy_.AddSignature(alice_);
  copy_.AddSignature(alice_);
  EXPECT_EQ(copy_.signature_count(), 1u);
}

TEST_F(SignedCopyTest, SerializationRoundTrip) {
  copy_.AddSignature(alice_);
  copy_.AddSignature(bob_);
  Bytes wire = copy_.Serialize();
  auto parsed = SignedCopy::Deserialize(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->bytecode(), copy_.bytecode());
  EXPECT_EQ(parsed->signature_count(), 2u);
  EXPECT_TRUE(
      parsed->VerifyComplete({alice_.EthAddress(), bob_.EthAddress()}).ok());
}

TEST_F(SignedCopyTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(SignedCopy::Deserialize(BytesOf("junk")).ok());
  EXPECT_FALSE(SignedCopy::Deserialize(Bytes{0xc0}).ok());
}

TEST_F(SignedCopyTest, SignatureOfUnknownSigner) {
  copy_.AddSignature(alice_);
  EXPECT_FALSE(copy_.SignatureOf(bob_.EthAddress()).ok());
}

TEST_F(SignedCopyTest, AuditRefusesToSignBrokenBytecode) {
  // 0x01 is ADD on an empty stack: the analyzer proves the underflow and
  // AddSignature must refuse with a typed error, leaving no signature.
  SignedCopy broken(Bytes{0x01});
  Status status = broken.AddSignature(alice_);
  EXPECT_EQ(status.code(), StatusCode::kAnalysisRejected);
  EXPECT_EQ(broken.signature_count(), 0u);
}

TEST_F(SignedCopyTest, AuditAcceptsTrivialProgram) {
  SignedCopy trivial(Bytes{0x00});  // STOP
  EXPECT_TRUE(trivial.AddSignature(alice_).ok());
  EXPECT_EQ(trivial.signature_count(), 1u);
}

// N >= 4 participants crosses the batch-verification threshold; the
// parallel path must accept complete copies and report the FIRST invalid
// signer in `required` order, exactly like the serial path.
TEST_F(SignedCopyTest, ManyPartyBatchVerification) {
  constexpr int kParties = 8;
  std::vector<PrivateKey> keys;
  std::vector<Address> required;
  for (int i = 0; i < kParties; ++i) {
    keys.push_back(PrivateKey::FromSeed("party-" + std::to_string(i)));
    required.push_back(keys.back().EthAddress());
    copy_.AddSignature(keys.back());
  }
  EXPECT_TRUE(copy_.VerifyComplete(required).ok());

  // Corrupt two signatures; the reported failure must be the earlier one
  // in `required` order regardless of worker scheduling.
  auto sig2 = copy_.SignatureOf(required[2]);
  auto sig5 = copy_.SignatureOf(required[5]);
  ASSERT_TRUE(sig2.ok());
  ASSERT_TRUE(sig5.ok());
  secp256k1::Signature bad2 = *sig2;
  bad2.s += U256(1);
  secp256k1::Signature bad5 = *sig5;
  bad5.s += U256(1);
  copy_.AttachSignature(required[2], bad2);
  copy_.AttachSignature(required[5], bad5);
  for (int round = 0; round < 4; ++round) {  // scheduling-independent
    auto status = copy_.VerifyComplete(required);
    EXPECT_EQ(status.code(), StatusCode::kVerificationFailed);
    EXPECT_NE(status.message().find(required[2].ToHex()), std::string::npos)
        << status.ToString();
  }
}

}  // namespace
}  // namespace onoff::core
