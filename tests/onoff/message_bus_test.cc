#include "onoff/message_bus.h"

#include <gtest/gtest.h>

#include "sim/scheduler.h"
#include "sim/transport.h"

namespace onoff::core {
namespace {

Address Addr(uint8_t tag) {
  std::array<uint8_t, 20> raw{};
  raw[19] = tag;
  return Address(raw);
}

TEST(MessageBusTest, SendReceive) {
  MessageBus bus;
  bus.Send({Addr(1), Addr(2), "topic", BytesOf("hello")});
  EXPECT_EQ(bus.PendingFor(Addr(2)), 1u);
  auto msg = bus.Receive(Addr(2), "topic");
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg->from, Addr(1));
  EXPECT_EQ(msg->payload, BytesOf("hello"));
  EXPECT_EQ(bus.PendingFor(Addr(2)), 0u);
  EXPECT_FALSE(bus.Receive(Addr(2), "topic").ok());
}

TEST(MessageBusTest, TopicsAreIndependent) {
  MessageBus bus;
  bus.Send({Addr(1), Addr(2), "a", BytesOf("A")});
  bus.Send({Addr(1), Addr(2), "b", BytesOf("B")});
  auto b = bus.Receive(Addr(2), "b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->payload, BytesOf("B"));
  auto a = bus.Receive(Addr(2), "a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->payload, BytesOf("A"));
}

TEST(MessageBusTest, FifoPerTopic) {
  MessageBus bus;
  bus.Send({Addr(1), Addr(2), "t", BytesOf("first")});
  bus.Send({Addr(1), Addr(2), "t", BytesOf("second")});
  EXPECT_EQ(bus.Receive(Addr(2), "t")->payload, BytesOf("first"));
  EXPECT_EQ(bus.Receive(Addr(2), "t")->payload, BytesOf("second"));
}

TEST(MessageBusTest, BroadcastSkipsSender) {
  MessageBus bus;
  bus.Broadcast(Addr(1), {Addr(1), Addr(2), Addr(3)}, "t", BytesOf("x"));
  EXPECT_EQ(bus.PendingFor(Addr(1)), 0u);
  EXPECT_EQ(bus.PendingFor(Addr(2)), 1u);
  EXPECT_EQ(bus.PendingFor(Addr(3)), 1u);
  EXPECT_EQ(bus.messages_sent(), 2u);
  EXPECT_EQ(bus.bytes_sent(), 2u);
}

TEST(MessageBusTest, DropHook) {
  MessageBus bus;
  bus.set_drop_hook([](const Message& m) { return m.to == Addr(2); });
  bus.Send({Addr(1), Addr(2), "t", BytesOf("lost")});
  bus.Send({Addr(1), Addr(3), "t", BytesOf("kept")});
  EXPECT_EQ(bus.PendingFor(Addr(2)), 0u);
  EXPECT_EQ(bus.PendingFor(Addr(3)), 1u);
  // Dropped messages still count as sent (sender-side accounting).
  EXPECT_EQ(bus.messages_sent(), 2u);
  EXPECT_EQ(bus.messages_dropped(), 1u);
  EXPECT_EQ(bus.bytes_dropped(), BytesOf("lost").size());
}

TEST(MessageBusTest, TamperHook) {
  MessageBus bus;
  bus.set_tamper_hook([](Message& m) { m.payload = BytesOf("evil"); });
  bus.Send({Addr(1), Addr(2), "t", BytesOf("good")});
  EXPECT_EQ(bus.Receive(Addr(2), "t")->payload, BytesOf("evil"));
  EXPECT_EQ(bus.messages_tampered(), 1u);
  EXPECT_EQ(bus.messages_dropped(), 0u);
}

TEST(MessageBusTest, AccountingStartsAtZero) {
  MessageBus bus;
  EXPECT_EQ(bus.messages_dropped(), 0u);
  EXPECT_EQ(bus.bytes_dropped(), 0u);
  EXPECT_EQ(bus.messages_tampered(), 0u);
}

TEST(MessageBusTest, TransportDefersDelivery) {
  sim::Scheduler sched;
  sim::SimTransport transport(&sched, 1);
  sim::LinkConfig cfg;
  cfg.latency_ms = 30;
  transport.SetDefaultLink(cfg);
  MessageBus bus;
  bus.SetTransport(&transport);
  bus.Send({Addr(1), Addr(2), "t", BytesOf("later")});
  EXPECT_EQ(bus.PendingFor(Addr(2)), 0u);  // still on the wire
  sched.RunAll();
  EXPECT_EQ(sched.NowMs(), 30u);
  EXPECT_EQ(bus.PendingFor(Addr(2)), 1u);
  EXPECT_EQ(bus.Receive(Addr(2), "t")->payload, BytesOf("later"));
}

TEST(MessageBusTest, TransportSendTimeRejectionCountsAsDropped) {
  sim::Scheduler sched;
  sim::SimTransport transport(&sched, 1);
  sim::LinkConfig cfg;
  cfg.loss = 1.0;
  transport.SetDefaultLink(cfg);
  MessageBus bus;
  bus.SetTransport(&transport);
  bus.Send({Addr(1), Addr(2), "t", BytesOf("gone")});
  sched.RunAll();
  EXPECT_EQ(bus.PendingFor(Addr(2)), 0u);
  EXPECT_EQ(bus.messages_sent(), 1u);
  EXPECT_EQ(bus.messages_dropped(), 1u);
  EXPECT_EQ(bus.bytes_dropped(), BytesOf("gone").size());
}

TEST(MessageBusTest, InstantTransportMatchesSynchronousDelivery) {
  MessageBus bus;
  bus.SetTransport(sim::DefaultInstantTransport());
  bus.Send({Addr(1), Addr(2), "t", BytesOf("now")});
  // No scheduler involved: the zero-latency special case lands immediately.
  EXPECT_EQ(bus.PendingFor(Addr(2)), 1u);
}

}  // namespace
}  // namespace onoff::core
