#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <string>

#include "support/bytes.h"

namespace onoff {
namespace {

std::string Sha256Hex(std::string_view input) {
  auto h = Sha256(BytesOf(input));
  return ToHex(BytesView(h.data(), h.size()));
}

TEST(Sha256Test, NistVectors) {
  EXPECT_EQ(Sha256Hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Sha256Hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(Sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, PaddingBoundaries) {
  // 55 bytes: fits with length in one block; 56 bytes: needs a second block.
  EXPECT_EQ(Sha256Hex(std::string(55, 'a')),
            "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
  EXPECT_EQ(Sha256Hex(std::string(56, 'a')),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
  EXPECT_EQ(Sha256Hex(std::string(64, 'a')),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256Test, MillionA) {
  std::string s(1000000, 'a');
  EXPECT_EQ(Sha256Hex(s),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(HmacSha256Test, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  auto mac = HmacSha256(key, BytesOf("Hi There"));
  EXPECT_EQ(ToHex(BytesView(mac.data(), 32)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256Test, Rfc4231Case2) {
  auto mac = HmacSha256(BytesOf("Jefe"), BytesOf("what do ya want for nothing?"));
  EXPECT_EQ(ToHex(BytesView(mac.data(), 32)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256Test, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  auto mac = HmacSha256(key, data);
  EXPECT_EQ(ToHex(BytesView(mac.data(), 32)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256Test, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  Bytes key(131, 0xaa);
  auto mac = HmacSha256(key, BytesOf("Test Using Larger Than Block-Size Key - "
                                     "Hash Key First"));
  EXPECT_EQ(ToHex(BytesView(mac.data(), 32)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

}  // namespace
}  // namespace onoff
