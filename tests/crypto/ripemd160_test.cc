#include "crypto/ripemd160.h"

#include <gtest/gtest.h>

#include <string>

#include "support/bytes.h"

namespace onoff {
namespace {

std::string Ripemd160Hex(std::string_view input) {
  auto h = Ripemd160(BytesOf(input));
  return ToHex(BytesView(h.data(), h.size()));
}

TEST(Ripemd160Test, OriginalPaperVectors) {
  EXPECT_EQ(Ripemd160Hex(""), "9c1185a5c5e9fc54612808977ee8f548b2258d31");
  EXPECT_EQ(Ripemd160Hex("a"), "0bdc9d2d256b3ee9daae347be6f4dc835a467ffe");
  EXPECT_EQ(Ripemd160Hex("abc"), "8eb208f7e05d987a9b044a8e98c6b087f15a0bfc");
  EXPECT_EQ(Ripemd160Hex("message digest"),
            "5d0689ef49d2fae572b881b123a85ffa21595f36");
  EXPECT_EQ(Ripemd160Hex("abcdefghijklmnopqrstuvwxyz"),
            "f71c27109c692c1b56bbdceb5b9d2865b3708dbc");
  EXPECT_EQ(
      Ripemd160Hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
      "b0e20b6e3116640286ed3a87a5713079b21f5189");
}

TEST(Ripemd160Test, MillionA) {
  std::string s(1000000, 'a');
  EXPECT_EQ(Ripemd160Hex(s), "52783243c1697bdbe16d37f97f68f08325dc1528");
}

}  // namespace
}  // namespace onoff
