#include "crypto/secp256k1.h"

#include <gtest/gtest.h>

#include <string>

#include "crypto/keccak.h"
#include "crypto/sha256.h"
#include "support/bytes.h"

namespace onoff::secp256k1 {
namespace {

Hash32 DigestOf(std::string_view msg) { return Keccak256(BytesOf(msg)); }

TEST(Secp256k1Test, CurveParameters) {
  EXPECT_EQ(FieldPrime().ToHexFull(),
            "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
  EXPECT_EQ(GroupOrder().ToHexFull(),
            "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");
  EXPECT_TRUE(IsOnCurve(Generator()));
}

TEST(Secp256k1Test, GeneratorScalarMultiples) {
  // 1*G == G
  EXPECT_EQ(ScalarBaseMul(U256(1)), Generator());
  // 2*G known value.
  AffinePoint two_g = ScalarBaseMul(U256(2));
  EXPECT_EQ(two_g.x.ToHexFull(),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  EXPECT_EQ(two_g.y.ToHexFull(),
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");
  EXPECT_TRUE(IsOnCurve(two_g));
  // G + G == 2*G via the addition law.
  EXPECT_EQ(Add(Generator(), Generator()), two_g);
  // n*G == infinity.
  EXPECT_TRUE(ScalarMul(Generator(), GroupOrder()).infinity);
  // (n-1)*G + G == infinity.
  AffinePoint n_minus_1 = ScalarBaseMul(GroupOrder() - U256(1));
  EXPECT_TRUE(Add(n_minus_1, Generator()).infinity);
  // (n-1)*G == -G (same x, negated y).
  EXPECT_EQ(n_minus_1.x, Generator().x);
  EXPECT_NE(n_minus_1.y, Generator().y);
}

TEST(Secp256k1Test, AdditionLaws) {
  AffinePoint inf{U256(), U256(), true};
  EXPECT_EQ(Add(Generator(), inf), Generator());
  EXPECT_EQ(Add(inf, Generator()), Generator());
  EXPECT_TRUE(Add(inf, inf).infinity);
  // Associativity on a few multiples.
  AffinePoint a = ScalarBaseMul(U256(5));
  AffinePoint b = ScalarBaseMul(U256(11));
  AffinePoint c = ScalarBaseMul(U256(7));
  EXPECT_EQ(Add(Add(a, b), c), Add(a, Add(b, c)));
  EXPECT_EQ(Add(a, b), ScalarBaseMul(U256(16)));
}

TEST(Secp256k1Test, PrivateKeyValidation) {
  EXPECT_FALSE(PrivateKey::FromScalar(U256(0)).ok());
  EXPECT_FALSE(PrivateKey::FromScalar(GroupOrder()).ok());
  EXPECT_FALSE(PrivateKey::FromScalar(GroupOrder() + U256(5)).ok());
  EXPECT_TRUE(PrivateKey::FromScalar(U256(1)).ok());
  EXPECT_TRUE(PrivateKey::FromScalar(GroupOrder() - U256(1)).ok());
}

TEST(Secp256k1Test, Eip155AddressVector) {
  // The EIP-155 example key: address must be
  // 0x9d8a62f656a8d1615c1294fd71e9cfb3e4855a4f.
  auto key = PrivateKey::FromHex(
      "0x4646464646464646464646464646464646464646464646464646464646464646");
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(key->EthAddress().ToHex(),
            "0x9d8a62f656a8d1615c1294fd71e9cfb3e4855a4f");
}

TEST(Secp256k1Test, Rfc6979SatoshiVector) {
  // Community-standard RFC6979 secp256k1 vector: key=1,
  // digest=sha256("Satoshi Nakamoto").
  auto key = PrivateKey::FromScalar(U256(1));
  ASSERT_TRUE(key.ok());
  Hash32 digest = Sha256(BytesOf("Satoshi Nakamoto"));
  auto sig = Sign(digest, *key);
  ASSERT_TRUE(sig.ok());
  EXPECT_EQ(sig->r.ToHexFull(),
            "934b1ea10a4b3c1757e2b0c017d0b6143ce3c9a7e6a4a49860d7a6ab210ee3d8");
  EXPECT_EQ(sig->s.ToHexFull(),
            "2442ce9d2b916064108014783e923ec36b49743e2ffa1c4496f01a512aafd9e5");
}

TEST(Secp256k1Test, SignVerifyRoundTrip) {
  auto key = PrivateKey::FromSeed("alice");
  Hash32 digest = DigestOf("the agreed off-chain contract bytecode");
  auto sig = Sign(digest, key);
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(Verify(digest, *sig, key.PublicKey()));
  // Wrong digest fails.
  EXPECT_FALSE(Verify(DigestOf("tampered"), *sig, key.PublicKey()));
  // Wrong key fails.
  EXPECT_FALSE(Verify(digest, *sig, PrivateKey::FromSeed("bob").PublicKey()));
  // Corrupted r fails.
  Signature bad = *sig;
  bad.r += U256(1);
  EXPECT_FALSE(Verify(digest, bad, key.PublicKey()));
}

TEST(Secp256k1Test, RecoverMatchesSigner) {
  auto key = PrivateKey::FromSeed("bob");
  Hash32 digest = DigestOf("message");
  auto sig = Sign(digest, key);
  ASSERT_TRUE(sig.ok());
  auto recovered = RecoverAddress(digest, sig->v, sig->r, sig->s);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, key.EthAddress());
  // The other recovery id yields a DIFFERENT address (or fails), never the
  // signer's.
  uint8_t other_v = sig->v == 27 ? 28 : 27;
  auto other = RecoverAddress(digest, other_v, sig->r, sig->s);
  if (other.ok()) {
    EXPECT_NE(*other, key.EthAddress());
  }
}

TEST(Secp256k1Test, RecoverRejectsBadInputs) {
  auto key = PrivateKey::FromSeed("carol");
  Hash32 digest = DigestOf("msg");
  auto sig = Sign(digest, key);
  ASSERT_TRUE(sig.ok());
  EXPECT_FALSE(Recover(digest, 26, sig->r, sig->s).ok());
  EXPECT_FALSE(Recover(digest, 29, sig->r, sig->s).ok());
  EXPECT_FALSE(Recover(digest, sig->v, U256(0), sig->s).ok());
  EXPECT_FALSE(Recover(digest, sig->v, sig->r, U256(0)).ok());
  EXPECT_FALSE(Recover(digest, sig->v, GroupOrder(), sig->s).ok());
}

TEST(Secp256k1Test, LowSNormalization) {
  // All produced signatures must have s <= n/2 (Ethereum rule).
  U256 half_n = GroupOrder() >> 1;
  for (int i = 0; i < 8; ++i) {
    auto key = PrivateKey::FromSeed("signer" + std::to_string(i));
    Hash32 digest = DigestOf("msg" + std::to_string(i));
    auto sig = Sign(digest, key);
    ASSERT_TRUE(sig.ok());
    EXPECT_TRUE(sig->s <= half_n);
    EXPECT_TRUE(sig->v == 27 || sig->v == 28);
  }
}

TEST(Secp256k1Test, SignatureSerialization) {
  auto key = PrivateKey::FromSeed("dave");
  auto sig = Sign(DigestOf("x"), key);
  ASSERT_TRUE(sig.ok());
  Bytes raw = sig->Serialize();
  EXPECT_EQ(raw.size(), 65u);
  auto parsed = Signature::Deserialize(raw);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, *sig);
  EXPECT_FALSE(Signature::Deserialize(Bytes(64, 0)).ok());
}

TEST(Secp256k1Test, DeterministicSigning) {
  auto key = PrivateKey::FromSeed("erin");
  Hash32 digest = DigestOf("same message");
  auto s1 = Sign(digest, key);
  auto s2 = Sign(digest, key);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s1, *s2);  // RFC 6979: no randomness
}

TEST(Secp256k1Test, Sec1SerializationRoundTrips) {
  for (int i = 0; i < 8; ++i) {
    auto key = PrivateKey::FromSeed("sec1-" + std::to_string(i));
    AffinePoint pub = key.PublicKey();
    // Uncompressed: 65 bytes, tag 0x04.
    Bytes unc = SerializePoint(pub, /*compressed=*/false);
    ASSERT_EQ(unc.size(), 65u);
    EXPECT_EQ(unc[0], 0x04);
    auto parsed = ParsePoint(unc);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, pub);
    // Compressed: 33 bytes, parity tag, decompresses to the same point.
    Bytes comp = SerializePoint(pub, /*compressed=*/true);
    ASSERT_EQ(comp.size(), 33u);
    EXPECT_TRUE(comp[0] == 0x02 || comp[0] == 0x03);
    auto decompressed = ParsePoint(comp);
    ASSERT_TRUE(decompressed.ok()) << decompressed.status().ToString();
    EXPECT_EQ(*decompressed, pub);
  }
}

TEST(Secp256k1Test, Sec1KnownVector) {
  // The generator's canonical compressed form (well-known constant).
  Bytes comp = SerializePoint(Generator(), /*compressed=*/true);
  EXPECT_EQ(ToHex(comp),
            "0279be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f817"
            "98");
}

TEST(Secp256k1Test, ParsePointRejectsGarbage) {
  EXPECT_FALSE(ParsePoint(Bytes(65, 0x04)).ok());  // not on curve
  EXPECT_FALSE(ParsePoint(Bytes{0x05}).ok());      // bad tag
  EXPECT_FALSE(ParsePoint(Bytes(64, 0x04)).ok());  // bad length
  // A compressed x with no square root on the curve.
  Bytes bad = {0x02};
  Bytes x = (U256(5)).ToBytes();
  Append(bad, x);
  auto parsed = ParsePoint(bad);
  if (parsed.ok()) {
    EXPECT_TRUE(IsOnCurve(*parsed));  // if 5 happens to be valid, fine
  }
}

// Property sweep: sign→recover round-trips over many keys/messages.
class SignRecoverPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SignRecoverPropertyTest, RoundTrip) {
  int i = GetParam();
  auto key = PrivateKey::FromSeed("prop-key-" + std::to_string(i));
  Hash32 digest = DigestOf("prop-msg-" + std::to_string(i * 7919));
  auto sig = Sign(digest, key);
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(Verify(digest, *sig, key.PublicKey()));
  auto addr = RecoverAddress(digest, sig->v, sig->r, sig->s);
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(*addr, key.EthAddress());
}

INSTANTIATE_TEST_SUITE_P(ManyKeys, SignRecoverPropertyTest,
                         ::testing::Range(0, 16));

}  // namespace
}  // namespace onoff::secp256k1
