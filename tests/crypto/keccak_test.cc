#include "crypto/keccak.h"

#include <gtest/gtest.h>

#include <string>

#include "support/bytes.h"

namespace onoff {
namespace {

std::string KeccakHex(std::string_view input) {
  return ToHex(Keccak256(BytesOf(input)));
}

TEST(KeccakTest, KnownAnswerVectors) {
  // Ethereum's keccak256 (original Keccak padding, not SHA3-256).
  EXPECT_EQ(KeccakHex(""),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470");
  EXPECT_EQ(KeccakHex("abc"),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45");
  EXPECT_EQ(KeccakHex("hello"),
            "1c8aff950685c2ed4bc3174f3472287b56d9517b9c948127319a09a7a36deac8");
  EXPECT_EQ(KeccakHex("The quick brown fox jumps over the lazy dog"),
            "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15");
}

TEST(KeccakTest, FunctionSelectorVector) {
  // The canonical ERC-20 selector: first 4 bytes of
  // keccak256("transfer(address,uint256)") == a9059cbb.
  Hash32 h = Keccak256(BytesOf("transfer(address,uint256)"));
  EXPECT_EQ(ToHex(BytesView(h.data(), 4)), "a9059cbb");
}

TEST(KeccakTest, RateBoundaryLengths) {
  // Exercise lengths around the 136-byte rate: 135, 136, 137, 272.
  for (size_t len : {0u, 1u, 135u, 136u, 137u, 271u, 272u, 273u, 1000u}) {
    std::string s(len, 'a');
    Hash32 one_shot = Keccak256(BytesOf(s));
    // Incremental in awkward chunk sizes must agree.
    Keccak256Hasher hasher;
    Bytes data = BytesOf(s);
    size_t pos = 0;
    size_t chunk = 7;
    while (pos < data.size()) {
      size_t take = std::min(chunk, data.size() - pos);
      hasher.Update(BytesView(data.data() + pos, take));
      pos += take;
      chunk = chunk * 2 + 1;
    }
    EXPECT_EQ(hasher.Finalize(), one_shot) << "len=" << len;
  }
}

TEST(KeccakTest, DifferentInputsDiffer) {
  EXPECT_NE(Keccak256(BytesOf("a")), Keccak256(BytesOf("b")));
  EXPECT_NE(Keccak256(BytesOf("")), Keccak256(Bytes{0x00}));
}

TEST(KeccakTest, Keccak256BytesMatchesArray) {
  Hash32 h = Keccak256(BytesOf("xyz"));
  Bytes b = Keccak256Bytes(BytesOf("xyz"));
  EXPECT_EQ(Bytes(h.begin(), h.end()), b);
}

}  // namespace
}  // namespace onoff
