// Differential tests pinning the fast secp256k1 backend (wNAF windows,
// fixed-base comb, addition-chain inverses) bit-for-bit to the reference
// backend, plus community known-answer vectors for RFC 6979 signing.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/keccak.h"
#include "crypto/secp256k1.h"
#include "crypto/sha256.h"
#include "support/bytes.h"

namespace onoff::secp256k1 {
namespace {

Hash32 DigestOf(std::string_view msg) { return Keccak256(BytesOf(msg)); }

// Deterministic xorshift64* stream so failures reproduce exactly.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }
  U256 NextU256() { return U256(Next(), Next(), Next(), Next()); }
  // A uniform-ish field element in [0, p).
  U256 NextFieldElement() { return NextU256() % FieldPrime(); }
  // A valid scalar in [1, n-1].
  U256 NextScalar() {
    U256 k = NextU256() % GroupOrder();
    return k.IsZero() ? U256(1) : k;
  }

 private:
  uint64_t state_;
};

// Scalars that exercise wNAF / comb table corner cases: tiny values, the
// order boundary, single bits (window-aligned and not), and dense patterns.
std::vector<U256> EdgeScalars() {
  std::vector<U256> edges = {
      U256(1),
      U256(2),
      U256(3),
      U256(15),
      U256(16),
      U256(17),
      GroupOrder() - U256(1),
      GroupOrder() - U256(2),
      (GroupOrder() >> 1),
      (GroupOrder() >> 1) + U256(1),
      U256(0xaaaaaaaaaaaaaaaaULL, 0xaaaaaaaaaaaaaaaaULL,
           0xaaaaaaaaaaaaaaaaULL, 0xaaaaaaaaaaaaaaaaULL) % GroupOrder(),
      U256(0x5555555555555555ULL, 0x5555555555555555ULL,
           0x5555555555555555ULL, 0x5555555555555555ULL) % GroupOrder(),
  };
  for (int bit = 0; bit < 256; bit += 31) {  // crosses every window width
    U256 k;
    k.SetBit(bit);
    edges.push_back(k % GroupOrder());
  }
  return edges;
}

TEST(Secp256k1BackendTest, FastIsTheDefault) {
  EXPECT_EQ(GetBackend(), Backend::kFast);
  {
    ScopedBackend ref(Backend::kReference);
    EXPECT_EQ(GetBackend(), Backend::kReference);
  }
  EXPECT_EQ(GetBackend(), Backend::kFast);
}

TEST(Secp256k1BackendTest, FieldKernelsAgreeOnEdgeValues) {
  const U256& p = FieldPrime();
  std::vector<U256> edges = {U256(1), U256(2), U256(3), p - U256(1),
                             p - U256(2), (p >> 1), (p >> 1) + U256(1),
                             U256(0x1000003d1ULL)};  // the reduction constant
  for (const U256& a : edges) {
    EXPECT_EQ(internal::FieldSqr(a), internal::FieldSqrReference(a))
        << a.ToHexFull();
    EXPECT_EQ(internal::FieldInvFast(a), internal::FieldInvReference(a))
        << a.ToHexFull();
    EXPECT_EQ(internal::FieldSqrtFast(a), internal::FieldSqrtReference(a))
        << a.ToHexFull();
  }
  // Squaring zero is zero; inverse/sqrt of zero are degenerate but must
  // still agree between backends.
  EXPECT_EQ(internal::FieldSqr(U256()), U256());
  EXPECT_EQ(internal::FieldSqrtFast(U256()), internal::FieldSqrtReference(U256()));
}

TEST(Secp256k1BackendTest, FieldKernelsAgreeOnRandomValues) {
  Rng rng(0x5ecf1e1d);
  for (int i = 0; i < 1000; ++i) {
    U256 a = rng.NextFieldElement();
    if (a.IsZero()) a = U256(1);
    ASSERT_EQ(internal::FieldSqr(a), internal::FieldSqrReference(a))
        << "case " << i << ": " << a.ToHexFull();
    ASSERT_EQ(internal::FieldSqrtFast(a), internal::FieldSqrtReference(a))
        << "case " << i << ": " << a.ToHexFull();
    // Inversion is the slow reference op; sample it more sparsely.
    if (i % 4 == 0) {
      ASSERT_EQ(internal::FieldInvFast(a), internal::FieldInvReference(a))
          << "case " << i << ": " << a.ToHexFull();
      ASSERT_EQ(internal::FieldMul(a, internal::FieldInvFast(a)), U256(1))
          << "case " << i << ": " << a.ToHexFull();
    }
  }
}

TEST(Secp256k1BackendTest, ScalarBaseMulAgreesOnEdgeScalars) {
  for (const U256& k : EdgeScalars()) {
    AffinePoint fast;
    {
      ScopedBackend b(Backend::kFast);
      fast = ScalarBaseMul(k);
    }
    AffinePoint ref;
    {
      ScopedBackend b(Backend::kReference);
      ref = ScalarBaseMul(k);
    }
    ASSERT_EQ(fast, ref) << "k=" << k.ToHexFull();
    ASSERT_TRUE(IsOnCurve(fast)) << "k=" << k.ToHexFull();
  }
  // n*G and 0*G are the identity in both backends.
  for (Backend backend : {Backend::kFast, Backend::kReference}) {
    ScopedBackend b(backend);
    EXPECT_TRUE(ScalarBaseMul(GroupOrder()).infinity);
    EXPECT_TRUE(ScalarBaseMul(U256()).infinity);
  }
}

TEST(Secp256k1BackendTest, ScalarBaseMulAgreesOnRandomScalars) {
  Rng rng(0xba5eba11);
  for (int i = 0; i < 1000; ++i) {
    U256 k = rng.NextScalar();
    AffinePoint fast;
    {
      ScopedBackend b(Backend::kFast);
      fast = ScalarBaseMul(k);
    }
    AffinePoint ref;
    {
      ScopedBackend b(Backend::kReference);
      ref = ScalarBaseMul(k);
    }
    ASSERT_EQ(fast, ref) << "case " << i << ": k=" << k.ToHexFull();
  }
}

TEST(Secp256k1BackendTest, VariablePointScalarMulAgrees) {
  Rng rng(0xdeadbeef);
  std::vector<U256> edge = EdgeScalars();
  for (int i = 0; i < 250; ++i) {
    AffinePoint p = ScalarBaseMul(rng.NextScalar());
    U256 k = i < int(edge.size()) ? edge[i] : rng.NextScalar();
    if (k.IsZero()) k = U256(1);
    AffinePoint fast;
    {
      ScopedBackend b(Backend::kFast);
      fast = ScalarMul(p, k);
    }
    AffinePoint ref;
    {
      ScopedBackend b(Backend::kReference);
      ref = ScalarMul(p, k);
    }
    ASSERT_EQ(fast, ref) << "case " << i << ": k=" << k.ToHexFull();
  }
}

TEST(Secp256k1BackendTest, SignaturesAreBackendIndependent) {
  for (int i = 0; i < 50; ++i) {
    auto key = PrivateKey::FromSeed("backend-sign-" + std::to_string(i));
    Hash32 digest = DigestOf("backend-msg-" + std::to_string(i));
    auto sign_with = [&](Backend backend) {
      ScopedBackend b(backend);
      return Sign(digest, key);
    };
    auto fast = sign_with(Backend::kFast);
    auto ref = sign_with(Backend::kReference);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(ref.ok());
    ASSERT_EQ(*fast, *ref) << "case " << i;
  }
}

TEST(Secp256k1BackendTest, RecoverAgreesAcrossBackends) {
  Rng rng(0x12345678);
  for (int i = 0; i < 250; ++i) {
    auto key = PrivateKey::FromScalar(rng.NextScalar());
    ASSERT_TRUE(key.ok());
    Hash32 digest = DigestOf("recover-case-" + std::to_string(i));
    auto sig = Sign(digest, *key);
    ASSERT_TRUE(sig.ok());
    auto recover_with = [&](Backend backend) {
      ScopedBackend b(backend);
      return RecoverAddress(digest, sig->v, sig->r, sig->s);
    };
    auto fast = recover_with(Backend::kFast);
    auto ref = recover_with(Backend::kReference);
    ASSERT_TRUE(fast.ok()) << "case " << i;
    ASSERT_TRUE(ref.ok()) << "case " << i;
    ASSERT_EQ(*fast, *ref) << "case " << i;
    ASSERT_EQ(*fast, key->EthAddress()) << "case " << i;
  }
}

TEST(Secp256k1BackendTest, VerifyAgreesAcrossBackendsOnInvalidInputs) {
  auto key = PrivateKey::FromSeed("verify-diff");
  Hash32 digest = DigestOf("verify-msg");
  auto sig = Sign(digest, key);
  ASSERT_TRUE(sig.ok());
  Signature bad_r = *sig;
  bad_r.r += U256(1);
  Signature bad_s = *sig;
  bad_s.s += U256(1);
  for (Backend backend : {Backend::kFast, Backend::kReference}) {
    ScopedBackend b(backend);
    EXPECT_TRUE(Verify(digest, *sig, key.PublicKey()));
    EXPECT_FALSE(Verify(digest, bad_r, key.PublicKey()));
    EXPECT_FALSE(Verify(digest, bad_s, key.PublicKey()));
    EXPECT_FALSE(Verify(DigestOf("other"), *sig, key.PublicKey()));
  }
}

// Community-standard RFC 6979 secp256k1 vectors (sha256 digests), run
// under BOTH backends: the known answers pin correctness, the pairing pins
// backend equality on real signing inputs.
struct Rfc6979Vector {
  const char* key_hex;
  const char* msg;
  const char* r_hex;
  const char* s_hex;
};

TEST(Secp256k1BackendTest, Rfc6979KnownAnswerVectors) {
  const Rfc6979Vector kVectors[] = {
      {"0000000000000000000000000000000000000000000000000000000000000001",
       "All those moments will be lost in time, like tears in rain. Time to "
       "die...",
       "8600dbd41e348fe5c9465ab92d23e3db8b98b873beecd930736488696438cb6b",
       "547fe64427496db33bf66019dacbf0039c04199abb0122918601db38a72cfc21"},
      {"fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364140",
       "Satoshi Nakamoto",
       "fd567d121db66e382991534ada77a6bd3106f0a1098c231e47993447cd6af2d0",
       "6b39cd0eb1bc8603e159ef5c20a5c8ad685a45b06ce9bebed3f153d10d93bed5"},
      {"f8b8af8ce3c7cca5e300d33939540c10d45ce001b8f252bfbc57ba0342904181",
       "Alan Turing",
       "7063ae83e7f62bbb171798131b4a0564b956930092b33b07b395615d9ec7e15c",
       "58dfcc1e00a35e1572f366ffe34ba0fc47db1e7189759b9fb233c5b05ab388ea"},
  };
  for (const auto& vec : kVectors) {
    auto key = PrivateKey::FromHex(vec.key_hex);
    ASSERT_TRUE(key.ok()) << vec.msg;
    Hash32 digest = Sha256(BytesOf(vec.msg));
    for (Backend backend : {Backend::kFast, Backend::kReference}) {
      ScopedBackend b(backend);
      auto sig = Sign(digest, *key);
      ASSERT_TRUE(sig.ok()) << vec.msg;
      EXPECT_EQ(sig->r.ToHexFull(), vec.r_hex) << vec.msg;
      EXPECT_EQ(sig->s.ToHexFull(), vec.s_hex) << vec.msg;
      EXPECT_TRUE(Verify(digest, *sig, key->PublicKey())) << vec.msg;
    }
  }
}


// The GLV split-scalar path must have passed its startup self-checks —
// a fallback to plain wNAF would stay correct but silently forfeit the
// endomorphism speedup this PR claims.
TEST(Secp256k1BackendTest, GlvEndomorphismIsActive) {
  EXPECT_TRUE(internal::GlvEnabled());
}

// The raw-limb scalar inverse (mod n) against the U256 binary GCD it
// mirrors, plus the ring identity a * a^{-1} ≡ 1.
TEST(Secp256k1BackendTest, ScalarInverseAgreesAndInverts) {
  Rng rng(0x5ca1a12d00dULL);
  for (int i = 0; i < 500; ++i) {
    U256 a = rng.NextScalar();
    U256 fast = internal::ScalarInvFast(a);
    U256 reference = internal::ScalarInvReference(a);
    ASSERT_EQ(fast, reference) << "case " << i;
    ASSERT_EQ(U256::MulMod(a, fast, GroupOrder()), U256(1)) << "case " << i;
  }
}

// Field multiplication against the generic U256 modular multiply — an
// oracle that shares no code with either backend's fold reduction.
TEST(Secp256k1BackendTest, FieldMulMatchesGenericModularMultiply) {
  Rng rng(0x0dd5eedf00dULL);
  for (int i = 0; i < 500; ++i) {
    U256 a = rng.NextFieldElement();
    U256 b = rng.NextFieldElement();
    ASSERT_EQ(internal::FieldMul(a, b), U256::MulMod(a, b, FieldPrime()))
        << "case " << i;
    ASSERT_EQ(internal::FieldSqr(a), U256::MulMod(a, a, FieldPrime()))
        << "case " << i;
  }
}

}  // namespace
}  // namespace onoff::secp256k1
