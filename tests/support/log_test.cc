#include "support/log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace onoff::log {
namespace {

// Captures everything a block logs through the test sink.
class SinkCapture {
 public:
  SinkCapture() : file_(std::tmpfile()) { SetSinkForTest(file_); }
  ~SinkCapture() {
    SetSinkForTest(nullptr);
    std::fclose(file_);
  }

  std::string Contents() {
    std::fflush(file_);
    std::string out;
    long size = std::ftell(file_);
    std::rewind(file_);
    out.resize(static_cast<size_t>(size));
    size_t read = std::fread(out.data(), 1, out.size(), file_);
    out.resize(read);
    return out;
  }

 private:
  FILE* file_;
};

class LogTest : public ::testing::Test {
 protected:
  LogTest() : saved_(GetLevel()) {}
  ~LogTest() override { SetLevel(saved_); }
  Level saved_;
};

TEST_F(LogTest, LevelNamesRoundTrip) {
  EXPECT_EQ(LevelFromString("trace"), Level::kTrace);
  EXPECT_EQ(LevelFromString("DEBUG"), Level::kDebug);
  EXPECT_EQ(LevelFromString("Info"), Level::kInfo);
  EXPECT_EQ(LevelFromString("warn"), Level::kWarn);
  EXPECT_EQ(LevelFromString("error"), Level::kError);
  EXPECT_EQ(LevelFromString("off"), Level::kOff);
  EXPECT_EQ(LevelFromString("nonsense", Level::kWarn), Level::kWarn);
  EXPECT_STREQ(LevelName(Level::kInfo), "info");
}

TEST_F(LogTest, ThresholdFiltersLowerLevels) {
  SetLevel(Level::kWarn);
  EXPECT_FALSE(Enabled(Level::kDebug));
  EXPECT_FALSE(Enabled(Level::kInfo));
  EXPECT_TRUE(Enabled(Level::kWarn));
  EXPECT_TRUE(Enabled(Level::kError));

  SinkCapture sink;
  ONOFF_LOG(Level::kInfo, "test", "hidden %d", 1);
  ONOFF_LOG(Level::kError, "test", "shown %d", 2);
  std::string out = sink.Contents();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("shown 2"), std::string::npos);
  EXPECT_NE(out.find("[error] test:"), std::string::npos);
}

TEST_F(LogTest, MacroSkipsArgumentEvaluationWhenFiltered) {
  SetLevel(Level::kError);
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return 0;
  };
  ONOFF_LOG(Level::kDebug, "test", "%d", count());
  EXPECT_EQ(evaluations, 0);
  SinkCapture sink;
  ONOFF_LOG(Level::kError, "test", "%d", count());
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, LevelFromArgsStripsFlag) {
  const char* raw[] = {"prog", "cmd", "--log-level", "debug", "tail"};
  char* argv[5];
  for (int i = 0; i < 5; ++i) argv[i] = const_cast<char*>(raw[i]);
  int argc = 5;
  EXPECT_EQ(LevelFromArgs(&argc, argv), Level::kDebug);
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[0], "prog");
  EXPECT_STREQ(argv[1], "cmd");
  EXPECT_STREQ(argv[2], "tail");

  const char* raw_eq[] = {"prog", "--log-level=warn"};
  char* argv_eq[2];
  for (int i = 0; i < 2; ++i) argv_eq[i] = const_cast<char*>(raw_eq[i]);
  int argc_eq = 2;
  EXPECT_EQ(LevelFromArgs(&argc_eq, argv_eq), Level::kWarn);
  EXPECT_EQ(argc_eq, 1);
}

}  // namespace
}  // namespace onoff::log
