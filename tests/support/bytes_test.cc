#include "support/bytes.h"

#include <gtest/gtest.h>

namespace onoff {
namespace {

TEST(BytesTest, ToHex) {
  EXPECT_EQ(ToHex(Bytes{}), "");
  EXPECT_EQ(ToHex(Bytes{0x00, 0xff, 0x1a}), "00ff1a");
  EXPECT_EQ(ToHex0x(Bytes{0xde, 0xad}), "0xdead");
}

TEST(BytesTest, FromHexAcceptsPrefixAndCase) {
  auto a = FromHex("0xDEADbeef");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, (Bytes{0xde, 0xad, 0xbe, 0xef}));
  auto b = FromHex("00ff");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, (Bytes{0x00, 0xff}));
  auto empty = FromHex("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(BytesTest, FromHexErrors) {
  EXPECT_FALSE(FromHex("abc").ok());   // odd length
  EXPECT_FALSE(FromHex("zz").ok());    // bad digit
  EXPECT_FALSE(FromHex("0x1").ok());   // odd after prefix
}

TEST(BytesTest, ConcatAndAppend) {
  Bytes a{1, 2};
  Append(a, Bytes{3, 4});
  EXPECT_EQ(a, (Bytes{1, 2, 3, 4}));
  Bytes c = Concat({Bytes{1}, Bytes{}, Bytes{2, 3}});
  EXPECT_EQ(c, (Bytes{1, 2, 3}));
}

TEST(BytesTest, ConstantTimeEqual) {
  EXPECT_TRUE(ConstantTimeEqual(Bytes{1, 2, 3}, Bytes{1, 2, 3}));
  EXPECT_FALSE(ConstantTimeEqual(Bytes{1, 2, 3}, Bytes{1, 2, 4}));
  EXPECT_FALSE(ConstantTimeEqual(Bytes{1, 2}, Bytes{1, 2, 3}));
  EXPECT_TRUE(ConstantTimeEqual(Bytes{}, Bytes{}));
}

TEST(BytesTest, BytesOf) {
  EXPECT_EQ(BytesOf("ab"), (Bytes{'a', 'b'}));
  EXPECT_TRUE(BytesOf("").empty());
}

}  // namespace
}  // namespace onoff
