#include "support/u256.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

namespace onoff {
namespace {

U256 RandU256(std::mt19937_64& rng) {
  return U256(rng(), rng(), rng(), rng());
}

TEST(U256Test, ZeroAndBasicConstruction) {
  U256 z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.BitLength(), 0);
  U256 one(1);
  EXPECT_FALSE(one.IsZero());
  EXPECT_EQ(one.BitLength(), 1);
  EXPECT_TRUE(one.FitsUint64());
  EXPECT_EQ(one.low64(), 1u);
}

TEST(U256Test, HexRoundTrip) {
  auto r = U256::FromHex("0xdeadbeef");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->low64(), 0xdeadbeefu);
  EXPECT_EQ(r->ToHex(), "0xdeadbeef");

  auto full = U256::FromHex(
      "f000000000000000000000000000000000000000000000000000000000000001");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->limb(3), 0xf000000000000000ull);
  EXPECT_EQ(full->limb(0), 1ull);
  EXPECT_EQ(full->ToHexFull(),
            "f000000000000000000000000000000000000000000000000000000000000001");
}

TEST(U256Test, HexErrors) {
  EXPECT_FALSE(U256::FromHex("").ok());
  EXPECT_FALSE(U256::FromHex("0x").ok());
  EXPECT_FALSE(U256::FromHex("xyz").ok());
  EXPECT_FALSE(U256::FromHex(std::string(65, 'f')).ok());
  EXPECT_TRUE(U256::FromHex(std::string(64, 'f')).ok());
}

TEST(U256Test, DecimalRoundTrip) {
  auto v = U256::FromDecimal("123456789012345678901234567890");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToDecimal(), "123456789012345678901234567890");
  EXPECT_EQ(U256().ToDecimal(), "0");
  // 2^256-1
  auto max = U256::FromDecimal(
      "115792089237316195423570985008687907853269984665640564039457584007913129"
      "639935");
  ASSERT_TRUE(max.ok());
  EXPECT_EQ(*max, ~U256());
  // 2^256 overflows
  EXPECT_FALSE(U256::FromDecimal(
                   "1157920892373161954235709850086879078532699846656405640394"
                   "57584007913129639936")
                   .ok());
}

TEST(U256Test, BigEndianRoundTrip) {
  Bytes be = {0x01, 0x02, 0x03};
  auto v = U256::FromBigEndian(be);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->low64(), 0x010203u);
  auto arr = v->ToBigEndian();
  EXPECT_EQ(arr[31], 0x03);
  EXPECT_EQ(arr[29], 0x01);
  EXPECT_EQ(arr[0], 0x00);
  EXPECT_EQ(v->ToBigEndianTrimmed(), be);

  Bytes too_long(33, 0xff);
  EXPECT_FALSE(U256::FromBigEndian(too_long).ok());
  EXPECT_EQ(U256::FromBigEndianTruncating(too_long), ~U256());
}

TEST(U256Test, AdditionCarriesAcrossLimbs) {
  U256 a(0, 0, 0, ~0ull);
  U256 b(1);
  U256 sum = a + b;
  EXPECT_EQ(sum.limb(0), 0u);
  EXPECT_EQ(sum.limb(1), 1u);
}

TEST(U256Test, AdditionWrapsAt2Pow256) {
  U256 max = ~U256();
  EXPECT_TRUE((max + U256(1)).IsZero());
  EXPECT_EQ(max + max, max - U256(1));
}

TEST(U256Test, SubtractionBorrows) {
  U256 a(0, 0, 1, 0);
  U256 b(1);
  U256 d = a - b;
  EXPECT_EQ(d.limb(0), ~0ull);
  EXPECT_EQ(d.limb(1), 0u);
  // Underflow wraps.
  EXPECT_EQ(U256() - U256(1), ~U256());
}

TEST(U256Test, MultiplicationKnownValues) {
  EXPECT_EQ(U256(0xffffffffull) * U256(0xffffffffull),
            U256(0xfffffffe00000001ull));
  // (2^128)^2 wraps to zero.
  U256 two128 = U256(1) << 128;
  EXPECT_TRUE((two128 * two128).IsZero());
  // (2^255) * 2 wraps to zero.
  U256 high = U256(1) << 255;
  EXPECT_TRUE((high * U256(2)).IsZero());
}

TEST(U256Test, DivModKnownValues) {
  EXPECT_EQ(U256(100) / U256(7), U256(14));
  EXPECT_EQ(U256(100) % U256(7), U256(2));
  // Division by zero yields zero (EVM semantics).
  EXPECT_TRUE((U256(5) / U256()).IsZero());
  EXPECT_TRUE((U256(5) % U256()).IsZero());
  // Large / small.
  U256 big = (U256(1) << 200) + U256(12345);
  EXPECT_EQ(big / (U256(1) << 200), U256(1));
  EXPECT_EQ(big % (U256(1) << 200), U256(12345));
}

TEST(U256Test, ShiftEdgeCases) {
  U256 one(1);
  EXPECT_TRUE((one << 256).IsZero());
  EXPECT_TRUE((one >> 1).IsZero());
  EXPECT_EQ((one << 255) >> 255, one);
  EXPECT_EQ(one << 64, U256(0, 0, 1, 0));
  EXPECT_EQ(one << 70, U256(0, 0, 64, 0));
}

TEST(U256Test, SignedDivision) {
  U256 minus_ten = -U256(10);
  EXPECT_EQ(minus_ten.SDiv(U256(3)), -U256(3));
  EXPECT_EQ(minus_ten.SMod(U256(3)), -U256(1));
  EXPECT_EQ(minus_ten.SDiv(-U256(2)), U256(5));
  EXPECT_EQ(U256(10).SDiv(-U256(3)), -U256(3));
  EXPECT_TRUE(U256(7).SDiv(U256()).IsZero());
  // EVM edge case: MIN_INT / -1 == MIN_INT (overflow wraps).
  U256 min_int = U256(1) << 255;
  EXPECT_EQ(min_int.SDiv(-U256(1)), min_int);
}

TEST(U256Test, SignedComparison) {
  U256 minus_one = -U256(1);
  EXPECT_TRUE(minus_one.SLess(U256(0)));
  EXPECT_TRUE(minus_one.SLess(U256(1)));
  EXPECT_FALSE(U256(1).SLess(minus_one));
  EXPECT_TRUE((-U256(5)).SLess(-U256(2)));
  EXPECT_FALSE(minus_one < U256(0));  // unsigned view
}

TEST(U256Test, SarAndSignExtend) {
  U256 minus_four = -U256(4);
  EXPECT_EQ(minus_four.Sar(1), -U256(2));
  EXPECT_EQ(minus_four.Sar(300), ~U256());
  EXPECT_EQ(U256(8).Sar(2), U256(2));
  // SIGNEXTEND of 0xff at byte 0 -> -1.
  EXPECT_EQ(U256(0xff).SignExtend(0), ~U256());
  EXPECT_EQ(U256(0x7f).SignExtend(0), U256(0x7f));
  EXPECT_EQ(U256(0x1ff).SignExtend(0), ~U256());        // low byte 0xff
  EXPECT_EQ(U256(0x17f).SignExtend(0), U256(0x7f));     // upper bits cleared
  EXPECT_EQ(U256(0x8000).SignExtend(1), (~U256()) << 15 | U256(0x8000));
}

TEST(U256Test, ExpKnownValues) {
  EXPECT_EQ(U256(2).Exp(U256(10)), U256(1024));
  EXPECT_EQ(U256(0).Exp(U256(0)), U256(1));  // EVM: 0^0 == 1
  EXPECT_EQ(U256(3).Exp(U256(0)), U256(1));
  EXPECT_EQ(U256(10).Exp(U256(2)), U256(100));
  // 2^256 wraps to 0.
  EXPECT_TRUE(U256(2).Exp(U256(256)).IsZero());
}

TEST(U256Test, AddModMulMod) {
  U256 m(1000000007ull);
  EXPECT_EQ(U256::AddMod(U256(999999999ull), U256(999999999ull), m),
            U256(999999991ull));
  EXPECT_EQ(U256::MulMod(U256(123456789ull), U256(987654321ull), m),
            U256(123456789ull * 987654321ull % 1000000007ull));
  // Intermediate overflow handled: (2^256-1)^2 mod (2^256-1) == 0.
  U256 max = ~U256();
  EXPECT_TRUE(U256::MulMod(max, max, max).IsZero());
  EXPECT_EQ(U256::AddMod(max, max, max), U256());
  // Modulus zero yields zero (EVM semantics).
  EXPECT_TRUE(U256::AddMod(U256(1), U256(1), U256()).IsZero());
  EXPECT_TRUE(U256::MulMod(U256(2), U256(2), U256()).IsZero());
}

// ---- Property-style parameterized sweeps ----

class U256PropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(U256PropertyTest, AlgebraicLaws) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    U256 a = RandU256(rng);
    U256 b = RandU256(rng);
    U256 c = RandU256(rng);
    // Commutativity / associativity.
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    // Distributivity.
    EXPECT_EQ(a * (b + c), a * b + a * c);
    // Additive inverse.
    EXPECT_TRUE((a + (-a)).IsZero());
    EXPECT_EQ(a - b, a + (-b));
  }
}

TEST_P(U256PropertyTest, DivModIdentity) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    U256 a = RandU256(rng);
    U256 b = RandU256(rng) >> (rng() % 256);
    if (b.IsZero()) continue;
    auto dm = DivMod(a, b);
    EXPECT_EQ(dm.quotient * b + dm.remainder, a);
    EXPECT_TRUE(dm.remainder < b);
  }
}

TEST_P(U256PropertyTest, ShiftsMatchMulDiv) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    U256 a = RandU256(rng);
    unsigned n = rng() % 255 + 1;
    EXPECT_EQ(a << n, a * (U256(1) << n));
    EXPECT_EQ(a >> n, a / (U256(1) << n));
  }
}

TEST_P(U256PropertyTest, BytesRoundTrip) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    U256 a = RandU256(rng);
    auto be = a.ToBigEndian();
    auto back = U256::FromBigEndian(BytesView(be.data(), be.size()));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, a);
    auto hex = U256::FromHex(a.ToHexFull());
    ASSERT_TRUE(hex.ok());
    EXPECT_EQ(*hex, a);
    auto dec = U256::FromDecimal(a.ToDecimal());
    ASSERT_TRUE(dec.ok());
    EXPECT_EQ(*dec, a);
  }
}

TEST_P(U256PropertyTest, MulModAgainstNaive) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    // Small enough operands that the product fits in 256 bits.
    U256 a(rng(), 0, 0, 0);
    a = a >> 192;
    U256 aa = RandU256(rng) >> 130;
    U256 bb = RandU256(rng) >> 130;
    U256 m = RandU256(rng) >> (rng() % 128);
    if (m.IsZero()) continue;
    EXPECT_EQ(U256::MulMod(aa, bb, m), (aa * bb) % m);
    EXPECT_EQ(U256::AddMod(aa, bb, m), (aa + bb) % m);
  }
}

// Targets the DivMod fast paths: wide numerator over single-limb and
// power-of-two divisors must satisfy the same division identity as the
// general shift-subtract path.
TEST_P(U256PropertyTest, DivModFastPaths) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    U256 a = RandU256(rng);
    // Single-limb divisor (numerator wide, so the schoolbook path runs).
    U256 d(rng() | 1);
    auto dm = DivMod(a, d);
    EXPECT_EQ(dm.quotient * d + dm.remainder, a);
    EXPECT_TRUE(dm.remainder < d);
    // Power-of-two divisor, both below and above 64 bits.
    unsigned k = rng() % 255 + 1;
    U256 p = U256(1) << k;
    auto pm = DivMod(a, p);
    EXPECT_EQ(pm.quotient, a >> k);
    EXPECT_EQ(pm.remainder, a & (p - U256(1)));
    EXPECT_EQ(pm.quotient * p + pm.remainder, a);
  }
  // Divisor == 1 and divisor == numerator edges.
  U256 a = RandU256(rng);
  EXPECT_EQ(a / U256(1), a);
  EXPECT_TRUE((a % U256(1)).IsZero());
  if (!a.IsZero()) {
    EXPECT_EQ(a / a, U256(1));
    EXPECT_TRUE((a % a).IsZero());
  }
}

// Targets the Exp power-of-two fast path and the mulmod single-limb
// reduction against references computed via the general machinery.
TEST_P(U256PropertyTest, ExpAndModFastPaths) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    // 2^k raised to e: must equal repeated squaring (reference below uses
    // only operator*, which is independently checked against shifts).
    unsigned k = rng() % 12 + 1;
    uint64_t e = rng() % 300;
    U256 base = U256(1) << k;
    U256 ref(1);
    for (uint64_t j = 0; j < e; ++j) ref *= base;
    EXPECT_EQ(base.Exp(U256(e)), ref) << "k=" << k << " e=" << e;
    // Base 0/1 shortcuts.
    EXPECT_EQ(U256(0).Exp(U256(e)), e == 0 ? U256(1) : U256());
    EXPECT_EQ(U256(1).Exp(U256(e)), U256(1));
    // Wide exponent on a power-of-two base wraps to zero.
    EXPECT_TRUE(U256(2).Exp(RandU256(rng) | (U256(1) << 200)).IsZero());
    // MulMod with wide operands but single-limb modulus: checked against
    // the identity (a*b - MulMod(a,b,m)) divisible by m via DivMod.
    U256 aa = RandU256(rng);
    U256 bb = RandU256(rng);
    U256 m(rng() | 1);
    U256 r = U256::MulMod(aa, bb, m);
    EXPECT_TRUE(r < m);
    // Verify against byte-identical 512-bit reduction done with AddMod
    // chains: (aa mod m) * (bb mod m) mod m == r.
    EXPECT_EQ(U256::MulMod(aa % m, bb % m, m), r);
    // All-small AddMod/MulMod agree with u64 arithmetic.
    uint64_t x = rng() % 1000000007ull, y = rng() % 1000000007ull;
    EXPECT_EQ(U256::AddMod(U256(x), U256(y), U256(1000000007ull)),
              U256((x + y) % 1000000007ull));
    EXPECT_EQ(
        U256::MulMod(U256(x), U256(y), U256(1000000007ull)),
        U256(static_cast<uint64_t>(static_cast<unsigned __int128>(x) * y %
                                   1000000007ull)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, U256PropertyTest,
                         ::testing::Values(1u, 42u, 20190223u, 0xdeadbeefu));

}  // namespace
}  // namespace onoff
