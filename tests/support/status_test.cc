#include "support/status.h"

#include <gtest/gtest.h>

#include <string>

namespace onoff {
namespace {

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Status CheckBoth(int a, int b) {
  ONOFF_ASSIGN_OR_RETURN(int x, ParsePositive(a));
  ONOFF_ASSIGN_OR_RETURN(int y, ParsePositive(b));
  if (x + y > 100) return Status::OutOfRange("sum too large");
  return Status::OK();
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::VerificationFailed("bad signature");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kVerificationFailed);
  EXPECT_EQ(s.message(), "bad signature");
  EXPECT_EQ(s.ToString(), "VerificationFailed: bad signature");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfGas), "OutOfGas");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kExecutionReverted),
               "ExecutionReverted");
}

TEST(ResultTest, HoldsValue) {
  Result<std::string> r(std::string("hello"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "hello");
  EXPECT_EQ(r->size(), 5u);
  EXPECT_EQ(r.value_or("x"), "hello");
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MacrosPropagate) {
  EXPECT_TRUE(CheckBoth(1, 2).ok());
  EXPECT_EQ(CheckBoth(-1, 2).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(CheckBoth(1, -2).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(CheckBoth(60, 60).code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

}  // namespace
}  // namespace onoff
