#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace onoff {
namespace {

TEST(ThreadPoolTest, SubmitReturnsResultsThroughFutures) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPoolTest, SingleWorkerRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::mutex mu;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([i, &order, &mu] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    }));
  }
  for (auto& f : futures) f.get();
  std::vector<int> expected(50);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto bad = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  auto good = pool.Submit([] { return 42; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_EQ(good.get(), 42);  // one failure doesn't poison the pool
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSingleIteration) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
  std::atomic<int> calls{0};
  pool.ParallelFor(1, [&calls](size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, ParallelForRethrowsAfterRunningAllIterations) {
  ThreadPool pool(4);
  constexpr size_t kN = 256;
  std::vector<std::atomic<int>> hits(kN);
  EXPECT_THROW(pool.ParallelFor(kN,
                                [&hits](size_t i) {
                                  hits[i].fetch_add(1);
                                  if (i % 64 == 3) {
                                    throw std::runtime_error("iteration " +
                                                             std::to_string(i));
                                  }
                                }),
               std::runtime_error);
  // The loop completes every index even when some of them throw.
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForWithUnevenWorkBalances) {
  ThreadPool pool(4);
  constexpr size_t kN = 64;
  std::atomic<size_t> done{0};
  pool.ParallelFor(kN, [&done](size_t i) {
    // A few long iterations mixed with many short ones; dynamic claiming
    // must still finish them all.
    if (i % 16 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), kN);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1);
      });
    }
    // Destructor must wait for all 32, not drop the tail of the queue.
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> sum{0};
    pool.ParallelFor(100, [&sum](size_t i) { sum.fetch_add(int(i)); });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(ThreadPoolTest, SharedPoolIsUsableAndStable) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.worker_count(), 1u);
  std::atomic<int> sum{0};
  a.ParallelFor(10, [&sum](size_t i) { sum.fetch_add(int(i)); });
  EXPECT_EQ(sum.load(), 45);
}

}  // namespace
}  // namespace onoff
