#include "evm/evm.h"

#include <gtest/gtest.h>

#include "easm/assembler.h"
#include "evm/gas.h"
#include "state/world_state.h"

namespace onoff::evm {
namespace {

Address Addr(uint8_t tag) {
  std::array<uint8_t, 20> raw{};
  raw[19] = tag;
  return Address(raw);
}

const Address kSender = Addr(0xaa);
const Address kContract = Addr(0xcc);
constexpr uint64_t kGas = 10'000'000;

class EvmTest : public ::testing::Test {
 protected:
  EvmTest() {
    block_.number = 100;
    block_.timestamp = 1'550'000'000;
    block_.coinbase = Addr(0xee);
    block_.gas_limit = 8'000'000;
    tx_.origin = kSender;
    tx_.gas_price = U256(1);
    world_.AddBalance(kSender, U256(1'000'000'000));
  }

  // Installs `source` (assembly) at kContract and calls it.
  ExecResult Run(const std::string& source, Bytes calldata = {},
                 U256 value = U256(), uint64_t gas = kGas) {
    auto code = easm::Assemble(source);
    EXPECT_TRUE(code.ok()) << code.status().ToString();
    world_.SetCode(kContract, *code);
    Evm evm(&world_, block_, tx_);
    CallMessage msg;
    msg.caller = kSender;
    msg.to = kContract;
    msg.value = value;
    msg.data = std::move(calldata);
    msg.gas = gas;
    return evm.Call(msg);
  }

  // Runs code that leaves one value on the stack, returning it via
  // MSTORE+RETURN appended automatically.
  U256 Eval(const std::string& expr_source) {
    ExecResult res = Run(expr_source + " PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
    EXPECT_TRUE(res.ok()) << OutcomeToString(res.outcome);
    EXPECT_EQ(res.output.size(), 32u);
    return U256::FromBigEndianTruncating(res.output);
  }

  state::WorldState world_;
  BlockContext block_;
  TxContext tx_;
};

TEST_F(EvmTest, ArithmeticOps) {
  EXPECT_EQ(Eval("PUSH1 2 PUSH1 3 ADD"), U256(5));
  EXPECT_EQ(Eval("PUSH1 2 PUSH1 3 MUL"), U256(6));
  EXPECT_EQ(Eval("PUSH1 2 PUSH1 7 SUB"), U256(5));  // 7 - 2
  EXPECT_EQ(Eval("PUSH1 3 PUSH1 7 DIV"), U256(2));
  EXPECT_EQ(Eval("PUSH1 3 PUSH1 7 MOD"), U256(1));
  EXPECT_EQ(Eval("PUSH1 0 PUSH1 7 DIV"), U256(0));  // div by zero
  EXPECT_EQ(Eval("PUSH1 5 PUSH1 3 PUSH1 4 ADDMOD"), U256(2));
  EXPECT_EQ(Eval("PUSH1 5 PUSH1 3 PUSH1 4 MULMOD"), U256(2));
  EXPECT_EQ(Eval("PUSH1 3 PUSH1 2 EXP"), U256(8));
}

TEST_F(EvmTest, ComparisonAndBitwise) {
  EXPECT_EQ(Eval("PUSH1 3 PUSH1 2 LT"), U256(1));   // 2 < 3
  EXPECT_EQ(Eval("PUSH1 2 PUSH1 3 GT"), U256(1));   // 3 > 2
  EXPECT_EQ(Eval("PUSH1 5 PUSH1 5 EQ"), U256(1));
  EXPECT_EQ(Eval("PUSH1 0 ISZERO"), U256(1));
  EXPECT_EQ(Eval("PUSH1 0x0f PUSH1 0x3c AND"), U256(0x0c));
  EXPECT_EQ(Eval("PUSH1 0x0f PUSH1 0x30 OR"), U256(0x3f));
  EXPECT_EQ(Eval("PUSH1 0x0f PUSH1 0x3c XOR"), U256(0x33));
  EXPECT_EQ(Eval("PUSH1 4 PUSH1 1 SHL"), U256(8));  // 4 << 1 (shift on top)
  EXPECT_EQ(Eval("PUSH1 16 PUSH1 2 SHR"), U256(4));
}

TEST_F(EvmTest, SignedOps) {
  // -6 / 3 == -2
  EXPECT_EQ(Eval("PUSH1 3 PUSH1 6 PUSH1 0 SUB SDIV"), -U256(2));
  // -1 < 0 signed
  EXPECT_EQ(Eval("PUSH1 0 PUSH32 "
                 "0xffffffffffffffffffffffffffffffffffffffffffffffffffffffff"
                 "ffffffff SLT"),
            U256(1));
}

TEST_F(EvmTest, MemoryOps) {
  EXPECT_EQ(Eval("PUSH1 0x42 PUSH1 0x20 MSTORE PUSH1 0x20 MLOAD"), U256(0x42));
  // MSTORE8 writes one byte at the given offset (big-endian word read back).
  EXPECT_EQ(Eval("PUSH1 0xab PUSH1 0x1f MSTORE8 PUSH1 0x00 MLOAD"),
            U256(0xab));
  EXPECT_EQ(Eval("PUSH1 0x01 PUSH1 0x00 MSTORE PUSH1 0x00 MLOAD"), U256(1));
}

TEST_F(EvmTest, StorageOps) {
  ExecResult res = Run("PUSH1 0x2a PUSH1 0x07 SSTORE STOP");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(world_.GetStorage(kContract, U256(7)), U256(0x2a));
  EXPECT_EQ(Eval("PUSH1 0x07 SLOAD"), U256(0x2a));
}

TEST_F(EvmTest, SstoreGasAndRefund) {
  // Fresh slot: 20000. Overwrite: 5000. Clear: 5000 + 15000 refund.
  ExecResult set = Run("PUSH1 1 PUSH1 0 SSTORE STOP");
  uint64_t used_set = kGas - set.gas_left;
  ExecResult overwrite = Run("PUSH1 2 PUSH1 0 SSTORE STOP");
  uint64_t used_over = kGas - overwrite.gas_left;
  EXPECT_EQ(used_set - used_over, gas::kSstoreSet - gas::kSstoreReset);
  ExecResult clear = Run("PUSH1 0 PUSH1 0 SSTORE STOP");
  EXPECT_EQ(clear.refund, gas::kSstoreRefund);
}

TEST_F(EvmTest, ControlFlow) {
  // Conditional jump over a "bad" path.
  EXPECT_EQ(Eval(R"(
    PUSH1 1
    PUSH @good JUMPI
    PUSH1 0xff PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN
    good:
    PUSH1 0x2a
  )"),
            U256(0x2a));
}

TEST_F(EvmTest, BadJumpFails) {
  ExecResult res = Run("PUSH1 0x03 JUMP STOP");
  EXPECT_EQ(res.outcome, Outcome::kBadJumpDestination);
  EXPECT_EQ(res.gas_left, 0u);  // exceptional halt consumes everything
}

TEST_F(EvmTest, JumpIntoPushDataFails) {
  // Offset 1 is inside the PUSH1 immediate even though byte is 0x5b.
  auto code = Bytes{0x60, 0x5b, 0x56};  // PUSH1 0x5b; JUMP
  world_.SetCode(kContract, code);
  Evm evm(&world_, block_, tx_);
  CallMessage msg;
  msg.caller = kSender;
  msg.to = kContract;
  msg.gas = kGas;
  // Push 1 then jump there: assemble manually: PUSH1 01 JUMP
  world_.SetCode(kContract, Bytes{0x60, 0x01, 0x56, 0x60, 0x5b});
  ExecResult res = evm.Call(msg);
  EXPECT_EQ(res.outcome, Outcome::kBadJumpDestination);
}

TEST_F(EvmTest, EnvironmentOpcodes) {
  EXPECT_EQ(Eval("CALLER"), kSender.ToWord());
  EXPECT_EQ(Eval("ADDRESS"), kContract.ToWord());
  EXPECT_EQ(Eval("ORIGIN"), kSender.ToWord());
  EXPECT_EQ(Eval("TIMESTAMP"), U256(1'550'000'000));
  EXPECT_EQ(Eval("NUMBER"), U256(100));
  EXPECT_EQ(Eval("GASPRICE"), U256(1));
  EXPECT_EQ(Eval("COINBASE"), Addr(0xee).ToWord());
  EXPECT_EQ(Eval("GASLIMIT"), U256(8'000'000));
}

TEST_F(EvmTest, CallValueAndBalance) {
  ExecResult res = Run(
      "CALLVALUE PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN",
      {}, U256(12345));
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(U256::FromBigEndianTruncating(res.output), U256(12345));
  // Value was transferred.
  EXPECT_EQ(world_.GetBalance(kContract), U256(12345));
}

TEST_F(EvmTest, CalldataOpcodes) {
  Bytes data = {0x11, 0x22, 0x33, 0x44};
  ExecResult res = Run(
      "PUSH1 0x00 CALLDATALOAD PUSH1 0x00 MSTORE "
      "CALLDATASIZE PUSH1 0x20 MSTORE "
      "PUSH1 0x40 PUSH1 0x00 RETURN",
      data);
  ASSERT_TRUE(res.ok());
  // First word: data left-aligned, zero-padded right.
  U256 word = U256::FromBigEndianTruncating(BytesView(res.output.data(), 32));
  EXPECT_EQ(word, U256(0x11223344) << (28 * 8));
  U256 size = U256::FromBigEndianTruncating(BytesView(res.output.data() + 32, 32));
  EXPECT_EQ(size, U256(4));
}

TEST_F(EvmTest, Sha3MatchesKeccak) {
  // keccak256 of 4 bytes 0xdeadbeef stored at memory 0.
  ExecResult res = Run(
      "PUSH4 0xdeadbeef PUSH1 0xe0 SHL PUSH1 0x00 MSTORE "
      "PUSH1 0x04 PUSH1 0x00 SHA3 "
      "PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
  ASSERT_TRUE(res.ok());
  Hash32 expected = Keccak256(Bytes{0xde, 0xad, 0xbe, 0xef});
  EXPECT_EQ(Bytes(res.output), Bytes(expected.begin(), expected.end()));
}

TEST_F(EvmTest, RevertRollsBackStateButKeepsGas) {
  ExecResult res = Run(
      "PUSH1 0x2a PUSH1 0x00 SSTORE "   // storage write
      "PUSH1 0x00 PUSH1 0x00 REVERT");
  EXPECT_EQ(res.outcome, Outcome::kRevert);
  EXPECT_GT(res.gas_left, 0u);
  EXPECT_TRUE(world_.GetStorage(kContract, U256(0)).IsZero());
}

TEST_F(EvmTest, RevertReturnsReason) {
  ExecResult res = Run(
      "PUSH1 0x42 PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 REVERT");
  EXPECT_EQ(res.outcome, Outcome::kRevert);
  ASSERT_EQ(res.output.size(), 32u);
  EXPECT_EQ(U256::FromBigEndianTruncating(res.output), U256(0x42));
}

TEST_F(EvmTest, OutOfGasConsumesEverything) {
  ExecResult res = Run("PUSH1 1 PUSH1 0 SSTORE STOP", {}, U256(), 10'000);
  EXPECT_EQ(res.outcome, Outcome::kOutOfGas);
  EXPECT_EQ(res.gas_left, 0u);
}

TEST_F(EvmTest, StackUnderflowFails) {
  ExecResult res = Run("ADD STOP");
  EXPECT_EQ(res.outcome, Outcome::kStackUnderflow);
}

TEST_F(EvmTest, InvalidOpcodeFails) {
  world_.SetCode(kContract, Bytes{0xfe});
  Evm evm(&world_, block_, tx_);
  CallMessage msg;
  msg.caller = kSender;
  msg.to = kContract;
  msg.gas = kGas;
  EXPECT_EQ(evm.Call(msg).outcome, Outcome::kInvalidInstruction);
  world_.SetCode(kContract, Bytes{0x0c});  // undefined byte
  EXPECT_EQ(evm.Call(msg).outcome, Outcome::kInvalidInstruction);
}

TEST_F(EvmTest, LogsEmitted) {
  ExecResult res = Run(
      "PUSH1 0x42 PUSH1 0x00 MSTORE "
      "PUSH1 0x07 "            // topic
      "PUSH1 0x20 PUSH1 0x00 " // size offset
      "LOG1 STOP");
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.logs.size(), 1u);
  EXPECT_EQ(res.logs[0].address, kContract);
  ASSERT_EQ(res.logs[0].topics.size(), 1u);
  EXPECT_EQ(res.logs[0].topics[0], U256(7));
  EXPECT_EQ(U256::FromBigEndianTruncating(res.logs[0].data), U256(0x42));
}

TEST_F(EvmTest, LogsDiscardedOnRevert) {
  ExecResult res = Run(
      "PUSH1 0x00 PUSH1 0x00 LOG0 PUSH1 0x00 PUSH1 0x00 REVERT");
  EXPECT_EQ(res.outcome, Outcome::kRevert);
  EXPECT_TRUE(res.logs.empty());
}

TEST_F(EvmTest, PlainTransferToEoa) {
  Evm evm(&world_, block_, tx_);
  CallMessage msg;
  msg.caller = kSender;
  msg.to = Addr(0xbb);
  msg.value = U256(777);
  msg.gas = 0;
  ExecResult res = evm.Call(msg);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(world_.GetBalance(Addr(0xbb)), U256(777));
}

TEST_F(EvmTest, InsufficientBalanceFailsCleanly) {
  Evm evm(&world_, block_, tx_);
  CallMessage msg;
  msg.caller = Addr(0x01);  // empty account
  msg.to = Addr(0x02);
  msg.value = U256(1);
  msg.gas = 1000;
  ExecResult res = evm.Call(msg);
  EXPECT_EQ(res.outcome, Outcome::kInsufficientBalance);
  EXPECT_EQ(res.gas_left, 1000u);
}

TEST_F(EvmTest, InnerCallTransfersAndReturns) {
  // Callee at 0xdd: returns CALLVALUE.
  auto callee = easm::Assemble(
      "CALLVALUE PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
  ASSERT_TRUE(callee.ok());
  world_.SetCode(Addr(0xdd), *callee);
  world_.AddBalance(kContract, U256(500));
  // Caller: CALL 0xdd with value 99, copy 32-byte result to mem 0, return it.
  ExecResult res = Run(
      "PUSH1 0x20 PUSH1 0x00 "   // out size, out offset
      "PUSH1 0x00 PUSH1 0x00 "   // in size, in offset
      "PUSH1 0x63 "              // value = 99
      "PUSH1 0xdd "              // to
      "PUSH3 0xfffff "           // gas
      "CALL "
      "PUSH1 0x20 MSTORE "       // store success flag at 0x20
      "PUSH1 0x40 PUSH1 0x00 RETURN");
  ASSERT_TRUE(res.ok()) << OutcomeToString(res.outcome);
  EXPECT_EQ(U256::FromBigEndianTruncating(BytesView(res.output.data(), 32)),
            U256(99));
  EXPECT_EQ(U256::FromBigEndianTruncating(BytesView(res.output.data() + 32, 32)),
            U256(1));  // success
  EXPECT_EQ(world_.GetBalance(Addr(0xdd)), U256(99));
}

TEST_F(EvmTest, InnerCallRevertIsolatesState) {
  // Callee writes storage then reverts.
  auto callee = easm::Assemble(
      "PUSH1 0x01 PUSH1 0x00 SSTORE PUSH1 0x00 PUSH1 0x00 REVERT");
  ASSERT_TRUE(callee.ok());
  world_.SetCode(Addr(0xdd), *callee);
  ExecResult res = Run(
      "PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 "
      "PUSH1 0xdd PUSH3 0xfffff CALL "
      "PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(U256::FromBigEndianTruncating(res.output), U256(0));  // failed
  EXPECT_TRUE(world_.GetStorage(Addr(0xdd), U256(0)).IsZero());
  // Caller continues executing after the failed call.
}

TEST_F(EvmTest, StaticCallBlocksSstore) {
  auto callee = easm::Assemble("PUSH1 0x01 PUSH1 0x00 SSTORE STOP");
  ASSERT_TRUE(callee.ok());
  world_.SetCode(Addr(0xdd), *callee);
  ExecResult res = Run(
      "PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 "
      "PUSH1 0xdd PUSH3 0xfffff STATICCALL "
      "PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(U256::FromBigEndianTruncating(res.output), U256(0));  // blocked
  EXPECT_TRUE(world_.GetStorage(Addr(0xdd), U256(0)).IsZero());
}

TEST_F(EvmTest, DelegateCallRunsInCallerStorage) {
  // Library at 0xdd writes 0x2a to slot 3 of *its caller's* storage.
  auto lib = easm::Assemble("PUSH1 0x2a PUSH1 0x03 SSTORE STOP");
  ASSERT_TRUE(lib.ok());
  world_.SetCode(Addr(0xdd), *lib);
  ExecResult res = Run(
      "PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 "
      "PUSH1 0xdd PUSH3 0xfffff DELEGATECALL STOP");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(world_.GetStorage(kContract, U256(3)), U256(0x2a));
  EXPECT_TRUE(world_.GetStorage(Addr(0xdd), U256(3)).IsZero());
}

TEST_F(EvmTest, CreateDeploysContract) {
  // Init code "602a60005260206000f3" = PUSH1 42, MSTORE at 0, RETURN 32
  // bytes: the created contract's code becomes that 32-byte word.
  // The caller CODECOPYs the init code from behind the `init:` label (+1 to
  // skip the JUMPDEST the label binds) and CREATEs with it.
  ExecResult res = Run(
      "PUSH1 0x0a "        // size of init code
      "PUSH @init PUSH1 0x01 ADD "  // offset (skip label JUMPDEST)
      "PUSH1 0x00 "
      "CODECOPY "
      "PUSH1 0x0a PUSH1 0x00 "
      "PUSH1 0x00 "        // value
      "CREATE "
      "PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN "
      "init: DB 0x602a60005260206000f3");
  ASSERT_TRUE(res.ok()) << OutcomeToString(res.outcome);
  U256 created_word = U256::FromBigEndianTruncating(res.output);
  ASSERT_FALSE(created_word.IsZero());
  Address created = Address::FromWord(created_word);
  const Bytes& deployed = world_.GetCode(created);
  ASSERT_EQ(deployed.size(), 32u);
  EXPECT_EQ(deployed[31], 0x2a);
  // The created account starts at nonce 1 (EIP-161) and the expected address.
  EXPECT_EQ(world_.GetNonce(created), 1u);
  EXPECT_EQ(created, Evm::ContractAddress(kContract, 0));
}

TEST_F(EvmTest, CreateAddressDerivation) {
  Address creator = Addr(0x99);
  Address a0 = Evm::ContractAddress(creator, 0);
  Address a1 = Evm::ContractAddress(creator, 1);
  EXPECT_NE(a0, a1);
  // Known vector: address of first contract from
  // 0x6ac7ea33f8831ea9dcc53393aaa88b25a785dbf0 with nonce 0 is
  // 0xcd234a471b72ba2f1ccf0a70fcaba648a5eecd8d (famous example).
  auto known = Address::FromHex("0x6ac7ea33f8831ea9dcc53393aaa88b25a785dbf0");
  ASSERT_TRUE(known.ok());
  EXPECT_EQ(Evm::ContractAddress(*known, 0).ToHex(),
            "0xcd234a471b72ba2f1ccf0a70fcaba648a5eecd8d");
}

TEST_F(EvmTest, GasAccountingSimpleOps) {
  // PUSH1 (3) + PUSH1 (3) + ADD (3) + POP (2) + STOP (0) = 11
  ExecResult res = Run("PUSH1 1 PUSH1 2 ADD POP STOP");
  EXPECT_EQ(kGas - res.gas_left, 11u);
}

TEST_F(EvmTest, MemoryExpansionGas) {
  // MSTORE at 0: 3 (op) + 3 (1 word) = 6; plus two pushes = 12.
  ExecResult res = Run("PUSH1 1 PUSH1 0 MSTORE STOP");
  EXPECT_EQ(kGas - res.gas_left, 12u);
  // MSTORE at 0x40 expands to 3 words: 3 + 9 = 12; plus pushes = 18.
  res = Run("PUSH1 1 PUSH1 0x40 MSTORE STOP");
  EXPECT_EQ(kGas - res.gas_left, 18u);
}

TEST_F(EvmTest, CallDepthLimit) {
  // Self-recursive contract: CALL itself until depth limit; then succeed.
  ExecResult res = Run(
      "PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 "
      "PUSH1 0xcc "   // self
      "GAS CALL "
      "PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN",
      {}, U256(), 40'000'000);
  // Must terminate (not hang) and succeed at the top level.
  ASSERT_TRUE(res.ok()) << OutcomeToString(res.outcome);
}

TEST_F(EvmTest, SelfdestructTransfersBalance) {
  world_.AddBalance(kContract, U256(4444));
  ExecResult res = Run("PUSH1 0xbb SELFDESTRUCT");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(world_.GetBalance(Addr(0xbb)), U256(4444));
  EXPECT_FALSE(world_.Exists(kContract));
  EXPECT_EQ(res.refund, gas::kSelfdestructRefund);
}

TEST_F(EvmTest, ReturndataOpcodes) {
  auto callee = easm::Assemble(
      "PUSH1 0x2a PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
  ASSERT_TRUE(callee.ok());
  world_.SetCode(Addr(0xdd), *callee);
  ExecResult res = Run(
      "PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 "
      "PUSH1 0xdd PUSH3 0xfffff CALL POP "
      "RETURNDATASIZE PUSH1 0x00 MSTORE "
      "PUSH1 0x20 PUSH1 0x00 PUSH1 0x20 RETURNDATACOPY "  // copy to mem 0x20
      "PUSH1 0x40 PUSH1 0x00 RETURN");
  ASSERT_TRUE(res.ok()) << OutcomeToString(res.outcome);
  EXPECT_EQ(U256::FromBigEndianTruncating(BytesView(res.output.data(), 32)),
            U256(32));
  EXPECT_EQ(U256::FromBigEndianTruncating(BytesView(res.output.data() + 32, 32)),
            U256(0x2a));
}

TEST_F(EvmTest, IntrinsicStateUnchangedOnFailedTopCall) {
  auto code = easm::Assemble("PUSH1 1 PUSH1 0 SSTORE PUSH1 0x00 JUMP");
  ASSERT_TRUE(code.ok());
  world_.SetCode(kContract, *code);
  Hash32 before = world_.StateRoot();
  Evm evm(&world_, block_, tx_);
  CallMessage msg;
  msg.caller = kSender;
  msg.to = kContract;
  msg.gas = kGas;
  ExecResult res = evm.Call(msg);
  EXPECT_EQ(res.outcome, Outcome::kBadJumpDestination);
  EXPECT_EQ(world_.StateRoot(), before);
}

}  // namespace
}  // namespace onoff::evm
