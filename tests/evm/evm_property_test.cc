// Differential property tests: random straight-line stack programs are
// executed both by the EVM interpreter and by a native U256 evaluator; the
// results must agree bit-for-bit. This catches semantic drift in arithmetic
// opcodes, stack handling and PUSH encoding across a large input space.

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

#include "easm/assembler.h"
#include "evm/evm.h"
#include "evm/opcodes.h"
#include "state/world_state.h"

namespace onoff::evm {
namespace {

struct BinOp {
  Opcode op;
  U256 (*eval)(const U256& a, const U256& b);  // a = stack top
};

// Note: for EVM binary ops, the first popped operand (a) is the top of the
// stack, i.e. the most recently pushed value.
const BinOp kOps[] = {
    {Opcode::ADD, [](const U256& a, const U256& b) { return a + b; }},
    {Opcode::MUL, [](const U256& a, const U256& b) { return a * b; }},
    {Opcode::SUB, [](const U256& a, const U256& b) { return a - b; }},
    {Opcode::DIV, [](const U256& a, const U256& b) { return a / b; }},
    {Opcode::SDIV, [](const U256& a, const U256& b) { return a.SDiv(b); }},
    {Opcode::MOD, [](const U256& a, const U256& b) { return a % b; }},
    {Opcode::SMOD, [](const U256& a, const U256& b) { return a.SMod(b); }},
    {Opcode::AND, [](const U256& a, const U256& b) { return a & b; }},
    {Opcode::OR, [](const U256& a, const U256& b) { return a | b; }},
    {Opcode::XOR, [](const U256& a, const U256& b) { return a ^ b; }},
    {Opcode::LT, [](const U256& a, const U256& b) { return U256(a < b); }},
    {Opcode::GT, [](const U256& a, const U256& b) { return U256(a > b); }},
    {Opcode::SLT,
     [](const U256& a, const U256& b) { return U256(a.SLess(b)); }},
    {Opcode::SGT,
     [](const U256& a, const U256& b) { return U256(b.SLess(a)); }},
    {Opcode::EQ, [](const U256& a, const U256& b) { return U256(a == b); }},
};

U256 RandomWord(std::mt19937_64& rng) {
  // Mix magnitudes: small values, boundary values and full-width randoms.
  switch (rng() % 5) {
    case 0:
      return U256(rng() % 16);
    case 1:
      return U256(rng());
    case 2:
      return ~U256() - U256(rng() % 4);  // near 2^256
    case 3:
      return U256(1) << (rng() % 256);   // single bit
    default:
      return U256(rng(), rng(), rng(), rng());
  }
}

class EvmDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EvmDifferentialTest, RandomProgramsMatchNativeEvaluation) {
  std::mt19937_64 rng(GetParam());
  state::WorldState world;
  Address contract = Address::FromWord(U256(0xcc));
  Address sender = Address::FromWord(U256(0xaa));

  for (int trial = 0; trial < 60; ++trial) {
    // Build a program: push N constants, fold with N-1 random binary ops.
    int n = 2 + static_cast<int>(rng() % 6);
    std::vector<U256> constants;
    easm::CodeBuilder builder;
    std::vector<U256> native_stack;
    for (int i = 0; i < n; ++i) {
      U256 c = RandomWord(rng);
      constants.push_back(c);
      builder.Push(c);
      native_stack.push_back(c);
    }
    for (int i = 0; i < n - 1; ++i) {
      const BinOp& op = kOps[rng() % (sizeof(kOps) / sizeof(kOps[0]))];
      builder.Op(op.op);
      U256 a = native_stack.back();
      native_stack.pop_back();
      U256 b = native_stack.back();
      native_stack.pop_back();
      native_stack.push_back(op.eval(a, b));
    }
    // RETURN the single remaining word.
    builder.Push(uint64_t{0});
    builder.Op(Opcode::MSTORE);
    builder.Push(uint64_t{32});
    builder.Push(uint64_t{0});
    builder.Op(Opcode::RETURN);
    auto code = builder.Build();
    ASSERT_TRUE(code.ok());

    world.SetCode(contract, *code);
    Evm evm(&world, BlockContext{}, TxContext{sender, U256(1)});
    CallMessage msg;
    msg.caller = sender;
    msg.to = contract;
    msg.gas = 10'000'000;
    ExecResult res = evm.Call(msg);
    ASSERT_TRUE(res.ok()) << OutcomeToString(res.outcome)
                          << " trial=" << trial;
    ASSERT_EQ(res.output.size(), 32u);
    EXPECT_EQ(U256::FromBigEndianTruncating(res.output), native_stack.back())
        << "trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvmDifferentialTest,
                         ::testing::Values(1u, 7u, 1902u, 6359u, 0xfeedu));

// EXP and shifts need careful operand order; test them separately with a
// dedicated generator.
class EvmShiftExpTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EvmShiftExpTest, ShiftAndExpMatchNative) {
  std::mt19937_64 rng(GetParam());
  state::WorldState world;
  Address contract = Address::FromWord(U256(0xcc));
  Address sender = Address::FromWord(U256(0xaa));

  for (int trial = 0; trial < 40; ++trial) {
    U256 value = RandomWord(rng);
    uint64_t amount = rng() % 300;  // may exceed 255 on purpose
    int which = static_cast<int>(rng() % 4);

    easm::CodeBuilder builder;
    U256 expected;
    switch (which) {
      case 0:  // SHL: pops shift, then value
        builder.Push(value).Push(amount).Op(Opcode::SHL);
        expected = amount >= 256 ? U256()
                                 : value << static_cast<unsigned>(amount);
        break;
      case 1:  // SHR
        builder.Push(value).Push(amount).Op(Opcode::SHR);
        expected = amount >= 256 ? U256()
                                 : value >> static_cast<unsigned>(amount);
        break;
      case 2:  // SAR
        builder.Push(value).Push(amount).Op(Opcode::SAR);
        expected = value.Sar(static_cast<unsigned>(amount > 256 ? 256 : amount));
        break;
      default: {  // EXP: pops base, then exponent
        U256 exponent(rng() % 40);
        builder.Push(exponent).Push(value).Op(Opcode::EXP);
        expected = value.Exp(exponent);
        break;
      }
    }
    builder.Push(uint64_t{0});
    builder.Op(Opcode::MSTORE);
    builder.Push(uint64_t{32});
    builder.Push(uint64_t{0});
    builder.Op(Opcode::RETURN);
    auto code = builder.Build();
    ASSERT_TRUE(code.ok());
    world.SetCode(contract, *code);
    Evm evm(&world, BlockContext{}, TxContext{sender, U256(1)});
    CallMessage msg;
    msg.caller = sender;
    msg.to = contract;
    msg.gas = 10'000'000;
    ExecResult res = evm.Call(msg);
    ASSERT_TRUE(res.ok()) << OutcomeToString(res.outcome);
    EXPECT_EQ(U256::FromBigEndianTruncating(res.output), expected)
        << "trial=" << trial << " which=" << which;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvmShiftExpTest,
                         ::testing::Values(3u, 99u, 2026u));

// Storage round-trips through random keys/values, including overwrites and
// zero-clears, must match a native map model.
class EvmStoragePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EvmStoragePropertyTest, StorageMatchesMapModel) {
  std::mt19937_64 rng(GetParam());
  state::WorldState world;
  Address contract = Address::FromWord(U256(0xcc));
  Address sender = Address::FromWord(U256(0xaa));

  easm::CodeBuilder builder;
  std::vector<std::pair<U256, U256>> writes;
  for (int i = 0; i < 40; ++i) {
    U256 key(rng() % 8);  // few keys -> lots of overwrites
    U256 value = (rng() % 4 == 0) ? U256() : RandomWord(rng);
    writes.emplace_back(key, value);
    builder.Push(value);
    builder.Push(key);
    builder.Op(Opcode::SSTORE);
  }
  builder.Op(Opcode::STOP);
  auto code = builder.Build();
  ASSERT_TRUE(code.ok());
  world.SetCode(contract, *code);
  Evm evm(&world, BlockContext{}, TxContext{sender, U256(1)});
  CallMessage msg;
  msg.caller = sender;
  msg.to = contract;
  msg.gas = 50'000'000;
  ASSERT_TRUE(evm.Call(msg).ok());

  std::map<std::string, U256> expected;
  for (const auto& [k, v] : writes) expected[k.ToHexFull()] = v;
  for (const auto& [khex, v] : expected) {
    auto k = U256::FromHex(khex);
    ASSERT_TRUE(k.ok());
    EXPECT_EQ(world.GetStorage(contract, *k), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvmStoragePropertyTest,
                         ::testing::Values(11u, 22u, 33u));

// Robustness: arbitrary bytecode must terminate cleanly (bounded by gas)
// and failed executions must leave the world state untouched.
class EvmFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EvmFuzzTest, RandomBytecodeNeverCrashesOrLeaks) {
  std::mt19937_64 rng(GetParam());
  state::WorldState world;
  Address contract = Address::FromWord(U256(0xcc));
  Address sender = Address::FromWord(U256(0xaa));
  world.AddBalance(sender, U256(1'000'000));
  world.AddBalance(contract, U256(555));
  Hash32 baseline = world.StateRoot();

  for (int trial = 0; trial < 200; ++trial) {
    Bytes code(rng() % 48, 0);
    for (auto& b : code) b = static_cast<uint8_t>(rng());
    world.SetCode(contract, code);
    Hash32 before = world.StateRoot();
    Evm evm(&world, BlockContext{}, TxContext{sender, U256(1)});
    CallMessage msg;
    msg.caller = sender;
    msg.to = contract;
    msg.gas = 100'000;
    ExecResult res = evm.Call(msg);
    if (!res.ok()) {
      // Failure (revert, OOG, bad jump, ...) must be side-effect free.
      EXPECT_EQ(world.StateRoot(), before) << "trial " << trial;
    }
    // Gas accounting is conserved: never more left than given.
    EXPECT_LE(res.gas_left, 100'000u);
  }
  // The baseline accounts themselves never get corrupted by fuzzing.
  world.SetCode(contract, {});
  EXPECT_EQ(world.GetBalance(sender), U256(1'000'000));
  (void)baseline;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvmFuzzTest,
                         ::testing::Values(123u, 456u, 789u, 1011u));

}  // namespace
}  // namespace onoff::evm
