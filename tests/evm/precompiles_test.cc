#include "evm/precompiles.h"

#include <gtest/gtest.h>

#include "crypto/keccak.h"
#include "crypto/secp256k1.h"
#include "crypto/sha256.h"
#include "evm/gas.h"
#include "support/u256.h"

namespace onoff::evm {
namespace {

Address PrecompileAddr(uint8_t n) {
  std::array<uint8_t, 20> raw{};
  raw[19] = n;
  return Address(raw);
}

TEST(PrecompilesTest, AddressDetection) {
  EXPECT_TRUE(IsPrecompile(PrecompileAddr(1)));
  EXPECT_TRUE(IsPrecompile(PrecompileAddr(4)));
  EXPECT_FALSE(IsPrecompile(PrecompileAddr(0)));
  EXPECT_FALSE(IsPrecompile(PrecompileAddr(5)));
  auto other = Address::FromHex("0x0100000000000000000000000000000000000001");
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(IsPrecompile(*other));
}

TEST(PrecompilesTest, EcrecoverRoundTrip) {
  auto key = secp256k1::PrivateKey::FromSeed("precompile-signer");
  Hash32 digest = Keccak256(BytesOf("some signed payload"));
  auto sig = secp256k1::Sign(digest, key);
  ASSERT_TRUE(sig.ok());

  // ecrecover input: digest || v (32 bytes) || r || s.
  Bytes input(digest.begin(), digest.end());
  Bytes v_word = U256(sig->v).ToBytes();
  Append(input, v_word);
  Bytes r = sig->r.ToBytes();
  Append(input, r);
  Bytes s = sig->s.ToBytes();
  Append(input, s);

  auto res = RunPrecompile(PrecompileAddr(1), input, 10'000);
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(res->success);
  EXPECT_EQ(res->gas_cost, gas::kEcrecover);
  ASSERT_EQ(res->output.size(), 32u);
  EXPECT_EQ(Address::FromWord(U256::FromBigEndianTruncating(res->output)),
            key.EthAddress());
}

TEST(PrecompilesTest, EcrecoverBadSignatureReturnsEmpty) {
  Bytes input(128, 0x01);  // garbage
  auto res = RunPrecompile(PrecompileAddr(1), input, 10'000);
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(res->success);        // never an exceptional halt
  EXPECT_TRUE(res->output.empty()); // but no address
}

TEST(PrecompilesTest, EcrecoverShortInputIsZeroPadded) {
  auto res = RunPrecompile(PrecompileAddr(1), Bytes{0x01, 0x02}, 10'000);
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(res->success);
  EXPECT_TRUE(res->output.empty());  // v = 0 is invalid
}

TEST(PrecompilesTest, EcrecoverOutOfGas) {
  auto res = RunPrecompile(PrecompileAddr(1), Bytes(128, 0), 2999);
  ASSERT_TRUE(res.has_value());
  EXPECT_FALSE(res->success);
}

TEST(PrecompilesTest, Sha256Matches) {
  Bytes input = BytesOf("abc");
  auto res = RunPrecompile(PrecompileAddr(2), input, 10'000);
  ASSERT_TRUE(res.has_value());
  ASSERT_TRUE(res->success);
  auto expected = Sha256(input);
  EXPECT_EQ(res->output, Bytes(expected.begin(), expected.end()));
  EXPECT_EQ(res->gas_cost, gas::kSha256Base + gas::kSha256Word);
}

TEST(PrecompilesTest, Ripemd160LeftPadded) {
  auto res = RunPrecompile(PrecompileAddr(3), BytesOf("abc"), 10'000);
  ASSERT_TRUE(res.has_value());
  ASSERT_TRUE(res->success);
  ASSERT_EQ(res->output.size(), 32u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(res->output[i], 0);
  EXPECT_EQ(ToHex(BytesView(res->output.data() + 12, 20)),
            "8eb208f7e05d987a9b044a8e98c6b087f15a0bfc");
}

TEST(PrecompilesTest, IdentityCopiesInput) {
  Bytes input = {1, 2, 3, 4, 5};
  auto res = RunPrecompile(PrecompileAddr(4), input, 10'000);
  ASSERT_TRUE(res.has_value());
  ASSERT_TRUE(res->success);
  EXPECT_EQ(res->output, input);
  EXPECT_EQ(res->gas_cost, gas::kIdentityBase + gas::kIdentityWord);
}

TEST(PrecompilesTest, NonPrecompileReturnsNullopt) {
  EXPECT_FALSE(RunPrecompile(PrecompileAddr(9), Bytes{}, 1000).has_value());
}

}  // namespace
}  // namespace onoff::evm
