// Unit tests for the code-analysis cache: decode structure (blocks, hoisted
// gas, stack deltas, jump resolution), superinstruction fusion, cache
// hit/miss behavior, and — the TSan target — many threads concurrently
// resolving and executing the same contract through the shared cache.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "crypto/keccak.h"
#include "evm/analysis_cache.h"
#include "evm/evm.h"
#include "evm/gas.h"
#include "evm/opcodes.h"
#include "state/world_state.h"

namespace onoff::evm {
namespace {

Hash32 CodeHash(const Bytes& code) { return Keccak256(code); }

const CodeCell* FindCell(const CodeAnalysis& an, Handler h) {
  for (const CodeCell& c : an.cells) {
    if (c.op == static_cast<uint8_t>(h)) return &c;
  }
  return nullptr;
}

size_t CountCells(const CodeAnalysis& an, Handler h) {
  size_t n = 0;
  for (const CodeCell& c : an.cells) {
    if (c.op == static_cast<uint8_t>(h)) ++n;
  }
  return n;
}

TEST(AnalysisTest, JumpdestBitmapSkipsPushImmediates) {
  // PUSH2 0x5b5b JUMPDEST — only the real JUMPDEST is valid.
  Bytes code{0x61, 0x5b, 0x5b, 0x5b};
  auto jd = AnalyzeJumpdests(code);
  ASSERT_EQ(jd.size(), 4u);
  EXPECT_FALSE(jd[1]);
  EXPECT_FALSE(jd[2]);
  EXPECT_TRUE(jd[3]);
}

TEST(AnalysisTest, SingleBlockStaticGasIsHoisted) {
  // PUSH1 1 PUSH1 2 ADD POP STOP: all static costs fold into one
  // BEGIN_BLOCK charge (fusion off so each op gets a cell).
  Bytes code{0x60, 0x01, 0x60, 0x02, 0x01, 0x50, 0x00};
  CodeAnalysis an = Analyze(code, /*fuse=*/false);
  ASSERT_FALSE(an.blocks.empty());
  EXPECT_EQ(an.blocks[0].base_gas,
            gas::kVeryLow * 3 + gas::kBase);  // 2 pushes + ADD + POP
  EXPECT_EQ(an.blocks[0].stack_req, 0);
  // Peak height: two pushes live at once.
  EXPECT_EQ(an.blocks[0].stack_max, 2);
  // Cells: BEGIN_BLOCK PUSH PUSH ADD POP STOP (+ trailing IMPLICIT_STOP).
  ASSERT_EQ(an.cells.size(), 7u);
  EXPECT_EQ(an.cells[0].op, static_cast<uint8_t>(Handler::BEGIN_BLOCK));
  EXPECT_EQ(an.cells.back().op, static_cast<uint8_t>(Handler::IMPLICIT_STOP));
}

TEST(AnalysisTest, CheckpointSplitsGasIntoChargeCells) {
  // PUSH1 0 MLOAD POP STOP: MLOAD is a checkpoint, so only the PUSH's cost
  // is hoisted into the block and the tail (POP) lands in a CHARGE cell.
  Bytes code{0x60, 0x00, 0x51, 0x50, 0x00};
  CodeAnalysis an = Analyze(code, /*fuse=*/false);
  ASSERT_FALSE(an.blocks.empty());
  EXPECT_EQ(an.blocks[0].base_gas, gas::kVeryLow);  // PUSH only
  const CodeCell* charge = FindCell(an, Handler::CHARGE);
  ASSERT_NE(charge, nullptr);
  EXPECT_EQ(charge->imm, gas::kBase);  // the POP after the checkpoint
}

TEST(AnalysisTest, JumpTargetsResolveToBlockCells) {
  // PUSH1 5 JUMP INVALID JUMPDEST STOP  (JUMPDEST at pc 4... recompute)
  // code: 0:PUSH1 4  2:JUMP  3:INVALID  4:JUMPDEST  5:STOP
  Bytes code{0x60, 0x04, 0x56, 0xfe, 0x5b, 0x00};
  CodeAnalysis an = Analyze(code, /*fuse=*/false);
  ASSERT_EQ(an.jump_cell.size(), code.size());
  ASSERT_GE(an.jump_cell[4], 0);
  const CodeCell& target = an.cells[an.jump_cell[4]];
  EXPECT_EQ(target.op, static_cast<uint8_t>(Handler::BEGIN_BLOCK));
  EXPECT_LT(an.jump_cell[1], 0);  // inside a PUSH immediate
  EXPECT_LT(an.jump_cell[5], 0);  // STOP is no jumpdest
}

TEST(AnalysisTest, FusionProducesSuperinstructions) {
  // PUSH+JUMP / PUSH+JUMPI / DUP+MLOAD / PUSH+binop / PUSH+PUSH+binop.
  {
    Bytes code{0x60, 0x03, 0x56, 0x5b, 0x00};  // PUSH1 3 JUMP JUMPDEST STOP
    CodeAnalysis an = Analyze(code, true);
    EXPECT_EQ(CountCells(an, Handler::PUSH_JUMP), 1u);
    EXPECT_EQ(CountCells(an, Handler::JUMP), 0u);
    const CodeCell* pj = FindCell(an, Handler::PUSH_JUMP);
    ASSERT_NE(pj, nullptr);
    EXPECT_EQ(static_cast<int32_t>(pj->imm), an.jump_cell[3]);
  }
  {
    Bytes code{0x60, 0x07, 0x56, 0x00};  // invalid constant target
    CodeAnalysis an = Analyze(code, true);
    EXPECT_EQ(CountCells(an, Handler::PUSH_JUMP_BAD), 1u);
  }
  {
    // DUP1 MLOAD (preceded by a push so the block is well-formed)
    Bytes code{0x60, 0x00, 0x80, 0x51, 0x00};
    CodeAnalysis an = Analyze(code, true);
    EXPECT_EQ(CountCells(an, Handler::DUP_MLOAD), 1u);
    EXPECT_EQ(CountCells(an, Handler::MLOAD), 0u);
  }
  {
    // PUSH1 2 PUSH1 3 ADD → constant-folded to a single PUSH of 5.
    Bytes code{0x60, 0x02, 0x60, 0x03, 0x01, 0x00};
    CodeAnalysis an = Analyze(code, true);
    EXPECT_EQ(CountCells(an, Handler::PUSH), 1u);
    EXPECT_EQ(CountCells(an, Handler::PUSH_BINOP), 0u);
    const CodeCell* push = FindCell(an, Handler::PUSH);
    ASSERT_NE(push, nullptr);
    // EvalBinop(ADD, second push, first push) = 3 + 2.
    EXPECT_EQ(an.pool[push->imm], U256(5));
  }
  {
    // CALLDATASIZE PUSH1 1 ADD → PUSH+binop (no second constant).
    Bytes code{0x36, 0x60, 0x01, 0x01, 0x00};
    CodeAnalysis an = Analyze(code, true);
    EXPECT_EQ(CountCells(an, Handler::PUSH_BINOP), 1u);
    const CodeCell* pb = FindCell(an, Handler::PUSH_BINOP);
    ASSERT_NE(pb, nullptr);
    EXPECT_EQ(pb->arg, static_cast<uint8_t>(Handler::ADD));
  }
  // Without fusion none of the superinstructions appear.
  Bytes code{0x60, 0x03, 0x56, 0x5b, 0x00};
  CodeAnalysis an = Analyze(code, false);
  EXPECT_EQ(CountCells(an, Handler::PUSH_JUMP), 0u);
  EXPECT_EQ(CountCells(an, Handler::JUMP), 1u);
}

TEST(AnalysisTest, UndefinedOpcodeKeepsCounterByte) {
  // 0x21 is undefined; its cell is INVALID but the ops list must keep the
  // original byte so batched metrics attribute it correctly.
  Bytes code{0x60, 0x01, 0x21};
  CodeAnalysis an = Analyze(code, true);
  EXPECT_EQ(CountCells(an, Handler::INVALID), 1u);
  bool found = false;
  for (uint8_t b : an.ops) found |= (b == 0x21);
  EXPECT_TRUE(found);
}

TEST(AnalysisCacheTest, HitsAndMissesAndFuseKeying) {
  CodeAnalysisCache& cache = CodeAnalysisCache::Global();
  cache.Clear();
  Bytes code{0x60, 0x01, 0x60, 0x02, 0x01, 0x00};
  Hash32 h = CodeHash(code);

  auto a1 = cache.Get(h, code, true);
  auto a2 = cache.Get(h, code, true);
  EXPECT_EQ(a1.get(), a2.get());  // second call is a hit

  // Same code, different fuse flag → distinct entry.
  auto a3 = cache.Get(h, code, false);
  EXPECT_NE(a1.get(), a3.get());
  EXPECT_EQ(cache.size(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

// TSan target: concurrent Get() on the same hash from many threads while
// executing the contract through the threaded interpreter.
TEST(AnalysisCacheTest, ConcurrentResolutionAndExecution) {
  CodeAnalysisCache::Global().Clear();
  // The fusion-loop program from the differential test: jumps, fused
  // back-edges, memory traffic.
  Bytes code{0x60, 0x05, 0x60, 0x03, 0x01, 0x60, 0x00, 0x52, 0x60, 0x20,
             0x5b, 0x60, 0x01, 0x90, 0x03, 0x80, 0x60, 0x00, 0x51, 0x50,
             0x80, 0x51, 0x50, 0x80, 0x60, 0x0a, 0x57, 0x60, 0x1e, 0x56,
             0x5b, 0x00};
  const int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 25; ++i) {
        state::WorldState world;
        Address contract = Address::FromWord(U256(0xc0de));
        Address sender = Address::FromWord(U256(0xaa));
        world.CreateAccount(sender);
        world.AddBalance(sender, U256(1'000'000));
        world.SetCode(contract, code);
        world.ClearJournal();
        Evm evm(&world, BlockContext{}, TxContext{sender, U256(1)});
        evm.set_dispatch_mode(i % 2 == 0 ? DispatchMode::kThreaded
                                         : DispatchMode::kThreadedNoFuse);
        CallMessage msg;
        msg.caller = sender;
        msg.to = contract;
        msg.gas = 100'000;
        ExecResult res = evm.Call(msg);
        if (!res.ok()) ++failures[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;
  // Both fuse variants were resolved exactly once each.
  EXPECT_EQ(CodeAnalysisCache::Global().size(), 2u);
}

}  // namespace
}  // namespace onoff::evm
