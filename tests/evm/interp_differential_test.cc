// Differential fuzzing of the interpreter dispatch loops: every program —
// randomized byte soup, structured random programs, the static-analysis
// negative corpus, and checkpoint-heavy hand-written cases — must produce
// byte-identical results under the reference switch loop and both threaded
// modes: outcome, gas_left, return data, logs, refund, post-state root, and
// the per-opcode metrics counters.

#include <gtest/gtest.h>

#include <array>
#include <random>
#include <vector>

#include "evm/analysis_cache.h"
#include "evm/evm.h"
#include "evm/interp.h"
#include "evm/opcodes.h"
#include "state/world_state.h"

namespace onoff::evm {
namespace {

constexpr uint64_t kContractWord = 0xc0de;
constexpr uint64_t kCalleeWord = 0xca11;
constexpr uint64_t kSenderWord = 0xaa;

// A small callee for CALL/STATICCALL/DELEGATECALL coverage: stores
// calldata[0..32] at slot 1 and returns 32 bytes of memory.
Bytes CalleeCode() {
  return Bytes{
      0x60, 0x00, 0x35,        // PUSH1 0 CALLDATALOAD
      0x60, 0x01, 0x55,        // PUSH1 1 SSTORE
      0x60, 0x2a, 0x60, 0x00,  // PUSH1 42 PUSH1 0
      0x52,                    // MSTORE
      0x60, 0x20, 0x60, 0x00,  // PUSH1 32 PUSH1 0
      0xf3,                    // RETURN
  };
}

struct Execution {
  ExecResult result;
  Hash32 root{};
  // Per-opcode counter deltas over the execution (zeros when metrics are
  // disabled, in which case the comparison is trivially true).
  std::array<uint64_t, 256> opcode_deltas{};
};

std::array<uint64_t, 256> SnapshotCounters() {
  std::array<uint64_t, 256> snap{};
  const std::array<obs::Counter*, 256>* table = OpcodeCounters();
  if (table != nullptr) {
    for (int i = 0; i < 256; ++i) snap[i] = (*table)[i]->Value();
  }
  return snap;
}

// Executes `code` with the given dispatch mode on a freshly built world.
Execution RunOnce(DispatchMode mode, const Bytes& code, const Bytes& calldata,
                  uint64_t gas) {
  state::WorldState world;
  Address contract = Address::FromWord(U256(kContractWord));
  Address callee = Address::FromWord(U256(kCalleeWord));
  Address sender = Address::FromWord(U256(kSenderWord));

  world.CreateAccount(sender);
  world.AddBalance(sender, U256(1'000'000'000));
  world.SetCode(contract, code);
  world.AddBalance(contract, U256(777));
  world.SetCode(callee, CalleeCode());
  // Pre-seed storage so SSTORE hits both the set and reset cost tiers.
  world.SetStorage(contract, U256(0), U256(99));
  world.SetStorage(contract, U256(2), U256(123456));
  world.ClearJournal();

  Evm evm(&world, BlockContext{}, TxContext{sender, U256(1)});
  evm.set_dispatch_mode(mode);

  CallMessage msg;
  msg.caller = sender;
  msg.to = contract;
  msg.value = U256(5);
  msg.data = calldata;
  msg.gas = gas;

  Execution exec;
  auto before = SnapshotCounters();
  exec.result = evm.Call(msg);
  auto after = SnapshotCounters();
  for (int i = 0; i < 256; ++i) exec.opcode_deltas[i] = after[i] - before[i];
  exec.root = world.StateRoot();
  return exec;
}

void ExpectIdentical(const Execution& ref, const Execution& got,
                     DispatchMode mode, const std::string& label) {
  SCOPED_TRACE(label + " mode=" + DispatchModeToString(mode));
  EXPECT_EQ(ref.result.outcome, got.result.outcome)
      << OutcomeToString(ref.result.outcome) << " vs "
      << OutcomeToString(got.result.outcome);
  EXPECT_EQ(ref.result.gas_left, got.result.gas_left);
  EXPECT_EQ(ref.result.output, got.result.output);
  EXPECT_EQ(ref.result.refund, got.result.refund);
  ASSERT_EQ(ref.result.logs.size(), got.result.logs.size());
  for (size_t i = 0; i < ref.result.logs.size(); ++i) {
    EXPECT_EQ(ref.result.logs[i].address, got.result.logs[i].address);
    EXPECT_EQ(ref.result.logs[i].topics, got.result.logs[i].topics);
    EXPECT_EQ(ref.result.logs[i].data, got.result.logs[i].data);
  }
  EXPECT_EQ(ref.root, got.root);
  for (int op = 0; op < 256; ++op) {
    EXPECT_EQ(ref.opcode_deltas[op], got.opcode_deltas[op])
        << "opcode 0x" << std::hex << op << " ("
        << GetOpcodeInfo(static_cast<uint8_t>(op)).name << ")";
  }
}

void CheckAllModes(const Bytes& code, const Bytes& calldata, uint64_t gas,
                   const std::string& label) {
  Execution ref = RunOnce(DispatchMode::kSwitch, code, calldata, gas);
  for (DispatchMode mode :
       {DispatchMode::kThreadedNoFuse, DispatchMode::kThreaded}) {
    Execution got = RunOnce(mode, code, calldata, gas);
    ExpectIdentical(ref, got, mode, label);
  }
}

// ---------------------------------------------------------------------------
// Randomized programs
// ---------------------------------------------------------------------------

TEST(InterpDifferentialTest, PureRandomBytecode) {
  std::mt19937_64 rng(0xD1FF);
  const uint64_t gas_levels[] = {30, 200, 5'000, 400'000};
  for (int trial = 0; trial < 300; ++trial) {
    size_t len = rng() % 160;
    Bytes code(len);
    for (auto& b : code) b = static_cast<uint8_t>(rng());
    uint64_t gas = gas_levels[trial % 4];
    CheckAllModes(code, Bytes{}, gas,
                  "pure-random trial=" + std::to_string(trial));
  }
}

TEST(InterpDifferentialTest, StructuredRandomPrograms) {
  std::mt19937_64 rng(0xBEEF);
  // A weighted pool of plausible opcodes (plus PUSH/DUP/SWAP/LOG families
  // emitted explicitly below). Invalid stack states and bad jumps are
  // intentionally reachable: halting behavior must match too.
  const uint8_t pool[] = {
      0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a,  // arith
      0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17, 0x18, 0x19,  // cmp/bit
      0x1a, 0x1b, 0x1c, 0x1d,                                      // shifts
      0x20,                                                        // SHA3
      0x30, 0x31, 0x32, 0x33, 0x34, 0x35, 0x36, 0x38, 0x3a, 0x3d,  // env
      0x41, 0x42, 0x43, 0x44, 0x45,                                // block
      0x50, 0x51, 0x52, 0x53, 0x54, 0x55, 0x58, 0x59, 0x5a,        // mem/sto
      0x56, 0x57, 0x5b,                                            // jumps
      0x00, 0xf3, 0xfd,                                            // halts
  };
  for (int trial = 0; trial < 200; ++trial) {
    Bytes code;
    std::vector<uint32_t> jumpdest_pcs;
    size_t target_len = 20 + rng() % 120;
    while (code.size() < target_len) {
      switch (rng() % 10) {
        case 0:
        case 1:
        case 2: {  // PUSHn with random immediate (may be truncated at end)
          int n = 1 + static_cast<int>(rng() % 8);
          code.push_back(static_cast<uint8_t>(0x5f + n));
          for (int i = 0; i < n; ++i) {
            // Mostly small bytes so pushed values act as offsets/counters.
            code.push_back(static_cast<uint8_t>(rng() % 64));
          }
          break;
        }
        case 3: {  // DUP / SWAP
          code.push_back(static_cast<uint8_t>(
              (rng() % 2 ? 0x80 : 0x90) + rng() % 4));
          break;
        }
        case 4: {  // LOGn
          code.push_back(static_cast<uint8_t>(0xa0 + rng() % 3));
          break;
        }
        case 5: {  // JUMPDEST marker, remembered as a fusion target
          jumpdest_pcs.push_back(static_cast<uint32_t>(code.size()));
          code.push_back(0x5b);
          break;
        }
        case 6: {  // PUSH2 <known jumpdest> JUMP/JUMPI — mostly valid jumps
          if (!jumpdest_pcs.empty()) {
            uint32_t dest = jumpdest_pcs[rng() % jumpdest_pcs.size()];
            code.push_back(0x61);  // PUSH2
            code.push_back(static_cast<uint8_t>(dest >> 8));
            code.push_back(static_cast<uint8_t>(dest & 0xff));
            code.push_back(rng() % 2 ? 0x56 : 0x57);
          }
          break;
        }
        default: {
          code.push_back(pool[rng() % sizeof(pool)]);
          break;
        }
      }
    }
    Bytes calldata(rng() % 40);
    for (auto& b : calldata) b = static_cast<uint8_t>(rng());
    // Modest gas keeps accidental loops bounded and exercises mid-block
    // out-of-gas in the bargain.
    uint64_t gas = 500 + rng() % 60'000;
    CheckAllModes(code, calldata, gas,
                  "structured trial=" + std::to_string(trial));
  }
}

// ---------------------------------------------------------------------------
// The static-analysis negative corpus (known-hostile control flow)
// ---------------------------------------------------------------------------

TEST(InterpDifferentialTest, AnalysisNegativeCorpus) {
  struct Program {
    const char* name;
    Bytes code;
  };
  const Program programs[] = {
      // PUSH1 4 JUMP — target is inside the PUSH immediate of 0x60 0x5b.
      {"jump-into-push", Bytes{0x60, 0x04, 0x56, 0x60, 0x5b, 0x00}},
      // PUSH1 1 ADD ADD STOP — second ADD underflows.
      {"stack-underflow", Bytes{0x60, 0x01, 0x01, 0x01, 0x00}},
      // PUSH20 cut off by end of code.
      {"truncated-push", Bytes{0x73, 0xde, 0xad}},
      // PUSH1 0 CALLDATALOAD JUMP STOP — data-dependent jump target.
      {"unresolved-jump", Bytes{0x60, 0x00, 0x35, 0x56, 0x00}},
      // JUMPDEST-only and empty programs.
      {"jumpdest-only", Bytes{0x5b, 0x5b, 0x5b}},
      {"empty", Bytes{}},
      // Trailing JUMPI: the fall-through exit of the last block.
      {"trailing-jumpi", Bytes{0x60, 0x00, 0x60, 0x00, 0x57}},
  };
  for (const Program& p : programs) {
    for (uint64_t gas : {0ull, 3ull, 10ull, 100'000ull}) {
      CheckAllModes(p.code, Bytes{0x00, 0x07}, gas,
                    std::string(p.name) + " gas=" + std::to_string(gas));
    }
  }
}

// ---------------------------------------------------------------------------
// Checkpoint-heavy and fusion-heavy hand-written programs
// ---------------------------------------------------------------------------

TEST(InterpDifferentialTest, CheckpointOpsAndCalls) {
  // SSTORE a fresh slot (set tier), overwrite slot 0 (reset tier), clear
  // slot 2 (refund), SLOAD, LOG1, SHA3, then CALL the callee and RETURN its
  // answer — every dynamic-gas checkpoint in one program.
  Bytes code = {
      0x60, 0x07, 0x60, 0x05, 0x55,              // SSTORE slot5 = 7 (set)
      0x60, 0x01, 0x60, 0x00, 0x55,              // SSTORE slot0 = 1 (reset)
      0x60, 0x00, 0x60, 0x02, 0x55,              // SSTORE slot2 = 0 (refund)
      0x60, 0x00, 0x54, 0x50,                    // SLOAD slot0, POP
      0x60, 0x11, 0x60, 0x00, 0x52,              // MSTORE mem0 = 0x11
      0x60, 0x2a, 0x60, 0x20, 0x60, 0x00, 0xa1,  // LOG1 topic=42 mem[0..32)
      0x60, 0x20, 0x60, 0x00, 0x20, 0x50,        // SHA3 mem[0..32), POP
      0x58, 0x50, 0x5a, 0x50, 0x59, 0x50,        // PC GAS MSIZE (each POPped)
      // CALL(gas=50000, to=0xca11, value=1, in=0..32, out=0..32)
      0x60, 0x20, 0x60, 0x00, 0x60, 0x20, 0x60, 0x00,
      0x60, 0x01, 0x61, 0xca, 0x11, 0x61, 0xc3, 0x50, 0xf1,
      0x50,                                      // POP call status
      0x60, 0x20, 0x60, 0x00, 0xf3,              // RETURN mem[0..32)
  };
  for (uint64_t gas : {100ull, 5'000ull, 21'000ull, 60'000ull, 500'000ull}) {
    CheckAllModes(code, Bytes{}, gas, "checkpoints gas=" + std::to_string(gas));
  }
}

TEST(InterpDifferentialTest, FusionPatternsAndLoop) {
  // A counting loop built from exactly the fusable shapes: PUSH+PUSH+binop
  // (folded), PUSH+binop, DUP+MLOAD, PUSH+JUMPI back-edge, PUSH+JUMP.
  Bytes code = {
      0x60, 0x05, 0x60, 0x03, 0x01,  // PUSH 5 PUSH 3 ADD  (constant-folded)
      0x60, 0x00, 0x52,              // MSTORE mem0 = 8
      0x60, 0x20,                    // PUSH 32 = loop counter
      0x5b,                          // JUMPDEST (pc 10)
      0x60, 0x01, 0x90, 0x03,       // PUSH1 1 SWAP1 SUB  (counter -= 1)
      0x80,                          // DUP1
      0x60, 0x00, 0x51, 0x50,        // PUSH1 0 MLOAD POP (DUP-free MLOAD)
      0x80, 0x51, 0x50,              // DUP1 MLOAD POP    (DUP+MLOAD fusion)
      0x80,                          // DUP1
      0x60, 0x0a, 0x57,              // PUSH1 10 JUMPI    (PUSH+JUMPI fusion)
      0x60, 0x1e, 0x56,              // PUSH1 30 JUMP     (PUSH+JUMP fusion)
      0x5b,                          // JUMPDEST (pc 30)
      0x00,                          // STOP
  };
  // Gas ladder crosses the loop's per-iteration cost so some runs die
  // mid-loop (CHARGE/BEGIN_BLOCK fallback paths) and some finish.
  for (uint64_t gas = 0; gas < 2'000; gas += 37) {
    CheckAllModes(code, Bytes{}, gas, "fusion-loop gas=" + std::to_string(gas));
  }
  CheckAllModes(code, Bytes{}, 1'000'000, "fusion-loop full");
}

TEST(InterpDifferentialTest, BadJumpFusionVariants) {
  // PUSH+JUMP to an invalid destination (always faults) and PUSH+JUMPI to
  // an invalid destination with both a taken and a non-taken condition
  // (faults only when taken).
  CheckAllModes(Bytes{0x60, 0x03, 0x56, 0x00}, Bytes{}, 100'000,
                "push-jump-bad");
  CheckAllModes(Bytes{0x60, 0x01, 0x60, 0x03, 0x57, 0x00}, Bytes{}, 100'000,
                "push-jumpi-bad-taken");
  CheckAllModes(Bytes{0x60, 0x00, 0x60, 0x03, 0x57, 0x00}, Bytes{}, 100'000,
                "push-jumpi-bad-skipped");
}

TEST(InterpDifferentialTest, CreateAndSelfdestruct) {
  // CREATE with init code assembled in memory (init: PUSH1 0 PUSH1 0
  // RETURN → deploys empty code), then SELFDESTRUCT to the sender.
  Bytes code = {
      // MSTORE8 the 5-byte init code 0x600060 00f3 at mem[0..5)
      0x60, 0x60, 0x60, 0x00, 0x53,  // mem[0] = 0x60
      0x60, 0x00, 0x60, 0x01, 0x53,  // mem[1] = 0x00
      0x60, 0x60, 0x60, 0x02, 0x53,  // mem[2] = 0x60
      0x60, 0x00, 0x60, 0x03, 0x53,  // mem[3] = 0x00
      0x60, 0xf3, 0x60, 0x04, 0x53,  // mem[4] = 0xf3
      0x60, 0x05, 0x60, 0x00, 0x60, 0x02, 0xf0,  // CREATE value=2 mem[0..5)
      0x50,                                      // POP created address
      0x60, 0xaa, 0xff,                          // SELFDESTRUCT -> 0xaa
  };
  for (uint64_t gas : {1'000ull, 33'000ull, 500'000ull}) {
    CheckAllModes(code, Bytes{}, gas, "create gas=" + std::to_string(gas));
  }
}

TEST(InterpDifferentialTest, ReturndatacopyPastEnd) {
  // STATICCALL the callee then RETURNDATACOPY one byte past the returned
  // 32 bytes — the EIP-211 exceptional halt, inside a threaded checkpoint.
  Bytes code = {
      0x60, 0x00, 0x60, 0x00, 0x60, 0x00, 0x60, 0x00,
      0x61, 0xca, 0x11, 0x61, 0xc3, 0x50, 0xfa, 0x50,  // STATICCALL, POP
      0x60, 0x21, 0x60, 0x00, 0x60, 0x00, 0x3e,        // RETURNDATACOPY 33b
      0x00,
  };
  CheckAllModes(code, Bytes{}, 200'000, "returndatacopy-past-end");
}

// The init-code path (override code, uncached analysis) must agree too:
// run a contract creation under each mode.
TEST(InterpDifferentialTest, CreateTransactionPath) {
  // Init code: SSTORE(0, 7), return runtime code {STOP}.
  Bytes init = {
      0x60, 0x07, 0x60, 0x00, 0x55,  // SSTORE
      0x60, 0x00, 0x60, 0x00, 0x53,  // MSTORE8 mem[0] = 0x00 (STOP)
      0x60, 0x01, 0x60, 0x00, 0xf3,  // RETURN mem[0..1)
  };
  Execution ref;
  bool first = true;
  for (DispatchMode mode : {DispatchMode::kSwitch,
                            DispatchMode::kThreadedNoFuse,
                            DispatchMode::kThreaded}) {
    state::WorldState world;
    Address sender = Address::FromWord(U256(kSenderWord));
    world.CreateAccount(sender);
    world.AddBalance(sender, U256(1'000'000));
    world.ClearJournal();
    Evm evm(&world, BlockContext{}, TxContext{sender, U256(1)});
    evm.set_dispatch_mode(mode);
    Execution got;
    got.result = evm.Create(sender, U256(9), init, 200'000);
    got.root = world.StateRoot();
    if (first) {
      ref = got;
      first = false;
    } else {
      SCOPED_TRACE(DispatchModeToString(mode));
      EXPECT_EQ(ref.result.outcome, got.result.outcome);
      EXPECT_EQ(ref.result.gas_left, got.result.gas_left);
      EXPECT_EQ(ref.result.created, got.result.created);
      EXPECT_EQ(ref.root, got.root);
    }
  }
}

}  // namespace
}  // namespace onoff::evm
