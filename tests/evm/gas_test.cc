// Gas-schedule conformance tests: exact charges for each opcode tier and the
// dynamic cost formulas (EXP bytes, SHA3 words, copies, logs, memory
// quadratics, call surcharges). Getting these right is what anchors the
// Table II reproduction to the paper's Kovan numbers.

#include <gtest/gtest.h>

#include "easm/assembler.h"
#include "evm/evm.h"
#include "evm/gas.h"
#include "state/world_state.h"

namespace onoff::evm {
namespace {

const Address kContract = Address::FromWord(U256(0xcc));
const Address kSender = Address::FromWord(U256(0xaa));
constexpr uint64_t kGas = 30'000'000;

class GasTest : public ::testing::Test {
 protected:
  GasTest() { world_.AddBalance(kSender, U256(1'000'000'000)); }

  // Gas consumed by running `source` at kContract.
  uint64_t Used(const std::string& source, Bytes data = {}) {
    auto code = easm::Assemble(source);
    EXPECT_TRUE(code.ok()) << code.status().ToString();
    world_.SetCode(kContract, *code);
    Evm evm(&world_, block_, TxContext{kSender, U256(1)});
    CallMessage msg;
    msg.caller = kSender;
    msg.to = kContract;
    msg.data = std::move(data);
    msg.gas = kGas;
    ExecResult res = evm.Call(msg);
    EXPECT_TRUE(res.ok()) << OutcomeToString(res.outcome) << " in " << source;
    return kGas - res.gas_left;
  }

  state::WorldState world_;
  BlockContext block_;
};

TEST_F(GasTest, TierVeryLowOps) {
  // 2 pushes (3 each) + op + STOP(0).
  for (const char* op : {"ADD", "SUB", "LT", "GT", "SLT", "SGT", "EQ", "AND",
                         "OR", "XOR", "BYTE", "SHL", "SHR", "SAR"}) {
    EXPECT_EQ(Used(std::string("PUSH1 1 PUSH1 2 ") + op + " POP STOP"),
              3 + 3 + gas::kVeryLow + gas::kBase)
        << op;
  }
  EXPECT_EQ(Used("PUSH1 1 ISZERO POP STOP"), 3 + gas::kVeryLow + gas::kBase);
  EXPECT_EQ(Used("PUSH1 1 NOT POP STOP"), 3 + gas::kVeryLow + gas::kBase);
}

TEST_F(GasTest, TierLowOps) {
  for (const char* op : {"MUL", "DIV", "SDIV", "MOD", "SMOD", "SIGNEXTEND"}) {
    EXPECT_EQ(Used(std::string("PUSH1 1 PUSH1 2 ") + op + " POP STOP"),
              3 + 3 + gas::kLow + gas::kBase)
        << op;
  }
}

TEST_F(GasTest, TierMidAndHigh) {
  EXPECT_EQ(Used("PUSH1 1 PUSH1 2 PUSH1 3 ADDMOD POP STOP"),
            9 + gas::kMid + gas::kBase);
  EXPECT_EQ(Used("PUSH1 1 PUSH1 2 PUSH1 3 MULMOD POP STOP"),
            9 + gas::kMid + gas::kBase);
  // JUMP: push dest (3) + JUMP (8) + JUMPDEST (1) + STOP.
  EXPECT_EQ(Used("PUSH @d JUMP d: STOP"), 3 + gas::kMid + gas::kJumpdest);
  // JUMPI taken: pushes (6) + JUMPI (10) + JUMPDEST (1).
  EXPECT_EQ(Used("PUSH1 1 PUSH @d JUMPI d: STOP"),
            6 + gas::kHigh + gas::kJumpdest);
}

TEST_F(GasTest, TierBaseOps) {
  for (const char* op :
       {"ADDRESS", "ORIGIN", "CALLER", "CALLVALUE", "CALLDATASIZE",
        "CODESIZE", "GASPRICE", "COINBASE", "TIMESTAMP", "NUMBER",
        "DIFFICULTY", "GASLIMIT", "RETURNDATASIZE", "PC", "MSIZE", "GAS"}) {
    EXPECT_EQ(Used(std::string(op) + " POP STOP"), gas::kBase + gas::kBase)
        << op;
  }
}

TEST_F(GasTest, ExpScalesWithExponentBytes) {
  // exponent 0: 10. One byte: 10+50. Two bytes: 10+100. 32 bytes: 10+1600.
  uint64_t base = 3 + 3 + gas::kBase;  // pushes + POP
  EXPECT_EQ(Used("PUSH1 0 PUSH1 2 EXP POP STOP"), base + gas::kExp);
  EXPECT_EQ(Used("PUSH1 0xff PUSH1 2 EXP POP STOP"),
            base + gas::kExp + gas::kExpByte);
  EXPECT_EQ(Used("PUSH2 0x0100 PUSH1 2 EXP POP STOP"),
            base + gas::kExp + 2 * gas::kExpByte);  // PUSH2 costs the same 3
  uint64_t used32 = Used("PUSH32 0x" + std::string(64, 'f') +
                         " PUSH1 2 EXP POP STOP");
  EXPECT_EQ(used32, base + gas::kExp + 32 * gas::kExpByte);
}

TEST_F(GasTest, Sha3ScalesWithWords) {
  // SHA3 of n bytes: 30 + 6*ceil(n/32) (+ memory expansion).
  uint64_t one_word =
      Used("PUSH1 0x20 PUSH1 0x00 SHA3 POP STOP");  // expands 1 word
  EXPECT_EQ(one_word, 6 + gas::kSha3 + gas::kSha3Word + gas::kMemory +
                          gas::kBase);
  uint64_t two_words = Used("PUSH1 0x40 PUSH1 0x00 SHA3 POP STOP");
  EXPECT_EQ(two_words, 6 + gas::kSha3 + 2 * gas::kSha3Word + 2 * gas::kMemory +
                           gas::kBase);
}

TEST_F(GasTest, SloadAndBalanceCosts) {
  EXPECT_EQ(Used("PUSH1 0 SLOAD POP STOP"), 3 + gas::kSload + gas::kBase);
  EXPECT_EQ(Used("PUSH1 0 BALANCE POP STOP"), 3 + gas::kBalance + gas::kBase);
  EXPECT_EQ(Used("PUSH1 0 EXTCODESIZE POP STOP"),
            3 + gas::kExtCode + gas::kBase);
}

TEST_F(GasTest, CalldatacopyChargesPerWord) {
  // Copy 64 bytes: veryLow 3 + copy 3*2 + memory 3*2.
  Bytes data(64, 0xab);
  EXPECT_EQ(Used("PUSH1 0x40 PUSH1 0x00 PUSH1 0x00 CALLDATACOPY STOP", data),
            9 + gas::kVeryLow + 2 * gas::kCopy + 2 * gas::kMemory);
}

TEST_F(GasTest, LogCosts) {
  // LOG1 with 32 bytes of data: 375 + 375 + 8*32, plus pushes and memory.
  uint64_t used = Used(
      "PUSH1 0x01 "              // topic
      "PUSH1 0x20 PUSH1 0x00 "   // size offset
      "LOG1 STOP");
  EXPECT_EQ(used, 9 + gas::kLog + gas::kLogTopic + 32 * gas::kLogData +
                      gas::kMemory);
}

TEST_F(GasTest, MemoryQuadraticTerm) {
  // Expanding to 1024 words costs 3*1024 + 1024^2/512 = 3072 + 2048.
  uint64_t used = Used("PUSH1 0x01 PUSH2 0x7fe0 MSTORE STOP");  // word 1024
  EXPECT_EQ(used, 6 + gas::kVeryLow + gas::MemoryCost(1024));
}

TEST_F(GasTest, CallSurcharges) {
  // Plain CALL to an empty (nonexistent) account with no value: only 700.
  uint64_t no_value = Used(
      "PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 "
      "PUSH1 0xdd PUSH1 0x00 CALL POP STOP");
  EXPECT_EQ(no_value, 21 + gas::kCall + gas::kBase);
  // With value to a nonexistent account: +9000 +25000, minus the 2300
  // stipend refund that comes back unused.
  world_.AddBalance(kContract, U256(1'000'000));
  uint64_t with_value = Used(
      "PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x07 "
      "PUSH1 0xde PUSH1 0x00 CALL POP STOP");
  EXPECT_EQ(with_value, 21 + gas::kCall + gas::kCallValue +
                            gas::kCallNewAccount + gas::kBase -
                            gas::kCallStipend);
}

TEST_F(GasTest, SstoreThreeCases) {
  // Covered in evm_test for the values; assert the exact formula here.
  uint64_t set = Used("PUSH1 5 PUSH1 9 SSTORE STOP");
  EXPECT_EQ(set, 6 + gas::kSstoreSet);
  uint64_t reset = Used("PUSH1 6 PUSH1 9 SSTORE STOP");
  EXPECT_EQ(reset, 6 + gas::kSstoreReset);
  uint64_t clear = Used("PUSH1 0 PUSH1 9 SSTORE STOP");
  EXPECT_EQ(clear, 6 + gas::kSstoreReset);  // refund handled at tx level
}

}  // namespace
}  // namespace onoff::evm
