#include "contracts/betting.h"

#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "crypto/secp256k1.h"

namespace onoff::contracts {
namespace {

using chain::Blockchain;
using secp256k1::PrivateKey;

class BettingContractTest : public ::testing::Test {
 protected:
  BettingContractTest()
      : alice_(PrivateKey::FromSeed("alice")),
        bob_(PrivateKey::FromSeed("bob")),
        carol_(PrivateKey::FromSeed("carol")) {
    chain_.FundAccount(alice_.EthAddress(), Ether(10));
    chain_.FundAccount(bob_.EthAddress(), Ether(10));
    chain_.FundAccount(carol_.EthAddress(), Ether(10));

    uint64_t now = chain_.Now();
    config_.alice = alice_.EthAddress();
    config_.bob = bob_.EthAddress();
    config_.deposit_amount = Ether(1);
    config_.t1 = now + 100;
    config_.t2 = now + 200;
    config_.t3 = now + 300;

    offchain_.alice = alice_.EthAddress();
    offchain_.bob = bob_.EthAddress();
    offchain_.secret_alice = U256(0xa11ce);
    offchain_.secret_bob = U256(0xb0b);
    offchain_.reveal_iterations = 10;
  }

  // Deploys the on-chain contract from Alice; returns its address.
  Address Deploy() {
    auto init = BuildOnChainInit(config_);
    EXPECT_TRUE(init.ok()) << init.status().ToString();
    auto receipt = chain_.Execute(alice_, std::nullopt, U256(), *init, 3'000'000);
    EXPECT_TRUE(receipt.ok());
    EXPECT_TRUE(receipt->success) << std::string(receipt->output.begin(),
                                                 receipt->output.end());
    return receipt->contract_address;
  }

  chain::Receipt Call(const PrivateKey& from, const Address& to, Bytes data,
                      const U256& value = U256(), uint64_t gas = 2'000'000) {
    auto receipt = chain_.Execute(from, to, value, std::move(data), gas);
    EXPECT_TRUE(receipt.ok()) << receipt.status().ToString();
    return *receipt;
  }

  void DepositBoth(const Address& contract) {
    EXPECT_TRUE(Call(alice_, contract, DepositCalldata(), Ether(1)).success);
    EXPECT_TRUE(Call(bob_, contract, DepositCalldata(), Ether(1)).success);
  }

  // The signed copy: both participants sign keccak256(offchain init code).
  struct SignedCopy {
    Bytes bytecode;
    secp256k1::Signature sig_alice;
    secp256k1::Signature sig_bob;
  };
  SignedCopy MakeSignedCopy() {
    auto init = BuildOffChainInit(offchain_);
    EXPECT_TRUE(init.ok());
    Hash32 digest = Keccak256(*init);
    auto sa = secp256k1::Sign(digest, alice_);
    auto sb = secp256k1::Sign(digest, bob_);
    EXPECT_TRUE(sa.ok());
    EXPECT_TRUE(sb.ok());
    return {*init, *sa, *sb};
  }

  Bytes DisputeCalldata(const SignedCopy& copy) {
    return DeployVerifiedInstanceCalldata(
        copy.bytecode, copy.sig_alice.v, copy.sig_alice.r, copy.sig_alice.s,
        copy.sig_bob.v, copy.sig_bob.r, copy.sig_bob.s);
  }

  Blockchain chain_;
  PrivateKey alice_;
  PrivateKey bob_;
  PrivateKey carol_;
  BettingConfig config_;
  OffchainConfig offchain_;
};

TEST_F(BettingContractTest, DepositsRecordBalances) {
  Address contract = Deploy();
  DepositBoth(contract);
  EXPECT_EQ(chain_.GetStorage(contract, U256(betting_slots::kBalanceAlice)),
            Ether(1));
  EXPECT_EQ(chain_.GetStorage(contract, U256(betting_slots::kBalanceBob)),
            Ether(1));
  EXPECT_EQ(chain_.GetBalance(contract), Ether(2));
}

TEST_F(BettingContractTest, DepositRejectsWrongAmount) {
  Address contract = Deploy();
  EXPECT_FALSE(Call(alice_, contract, DepositCalldata(), Ether(2)).success);
  EXPECT_FALSE(Call(alice_, contract, DepositCalldata(), U256(1)).success);
  EXPECT_EQ(chain_.GetBalance(contract), U256(0));
}

TEST_F(BettingContractTest, DepositRejectsNonParticipant) {
  Address contract = Deploy();
  EXPECT_FALSE(Call(carol_, contract, DepositCalldata(), Ether(1)).success);
}

TEST_F(BettingContractTest, DepositRejectsDouble) {
  Address contract = Deploy();
  EXPECT_TRUE(Call(alice_, contract, DepositCalldata(), Ether(1)).success);
  EXPECT_FALSE(Call(alice_, contract, DepositCalldata(), Ether(1)).success);
}

TEST_F(BettingContractTest, DepositRejectsAfterT1) {
  Address contract = Deploy();
  chain_.AdvanceTimeTo(config_.t1);
  EXPECT_FALSE(Call(alice_, contract, DepositCalldata(), Ether(1)).success);
}

TEST_F(BettingContractTest, UnknownSelectorReverts) {
  Address contract = Deploy();
  EXPECT_FALSE(Call(alice_, contract, BytesOf("garbage!")).success);
  // Plain ether send (no calldata) also reverts.
  EXPECT_FALSE(Call(alice_, contract, {}, Ether(1)).success);
}

TEST_F(BettingContractTest, RefundRoundOneReturnsDeposit) {
  Address contract = Deploy();
  EXPECT_TRUE(Call(alice_, contract, DepositCalldata(), Ether(1)).success);
  U256 before = chain_.GetBalance(alice_.EthAddress());
  auto receipt = Call(alice_, contract, RefundRoundOneCalldata());
  EXPECT_TRUE(receipt.success);
  EXPECT_EQ(chain_.GetBalance(alice_.EthAddress()),
            before + Ether(1) - U256(receipt.gas_used));
  EXPECT_TRUE(
      chain_.GetStorage(contract, U256(betting_slots::kBalanceAlice)).IsZero());
  // A second refund attempt fails (balance is zero).
  EXPECT_FALSE(Call(alice_, contract, RefundRoundOneCalldata()).success);
}

TEST_F(BettingContractTest, RefundRoundTwoRequiresAmountNotMet) {
  Address contract = Deploy();
  DepositBoth(contract);
  chain_.AdvanceTimeTo(config_.t1);
  // Both deposited: refundRoundTwo must fail.
  EXPECT_FALSE(Call(alice_, contract, RefundRoundTwoCalldata()).success);
}

TEST_F(BettingContractTest, RefundRoundTwoWorksWhenOnlyOneDeposited) {
  Address contract = Deploy();
  EXPECT_TRUE(Call(alice_, contract, DepositCalldata(), Ether(1)).success);
  // Before T1 refundRoundTwo is out of its window.
  EXPECT_FALSE(Call(alice_, contract, RefundRoundTwoCalldata()).success);
  chain_.AdvanceTimeTo(config_.t1);
  auto receipt = Call(alice_, contract, RefundRoundTwoCalldata());
  EXPECT_TRUE(receipt.success);
  EXPECT_TRUE(
      chain_.GetStorage(contract, U256(betting_slots::kBalanceAlice)).IsZero());
  // After T2 the window closes.
  chain_.AdvanceTimeTo(config_.t2);
  EXPECT_FALSE(Call(bob_, contract, RefundRoundTwoCalldata()).success);
}

TEST_F(BettingContractTest, ReassignPaysCounterparty) {
  Address contract = Deploy();
  DepositBoth(contract);
  chain_.AdvanceTimeTo(config_.t2);
  U256 bob_before = chain_.GetBalance(bob_.EthAddress());
  // Alice (the loser) admits defeat: Bob receives both deposits.
  auto receipt = Call(alice_, contract, ReassignCalldata());
  EXPECT_TRUE(receipt.success);
  EXPECT_EQ(chain_.GetBalance(bob_.EthAddress()), bob_before + Ether(2));
  EXPECT_EQ(chain_.GetBalance(contract), U256(0));
  EXPECT_EQ(chain_.GetStorage(contract, U256(betting_slots::kResolved)),
            U256(1));
  // Resolution is final: reassign cannot run twice.
  EXPECT_FALSE(Call(bob_, contract, ReassignCalldata()).success);
}

TEST_F(BettingContractTest, ReassignOutsideWindowFails) {
  Address contract = Deploy();
  DepositBoth(contract);
  EXPECT_FALSE(Call(alice_, contract, ReassignCalldata()).success);  // < T2
  chain_.AdvanceTimeTo(config_.t3);
  EXPECT_FALSE(Call(alice_, contract, ReassignCalldata()).success);  // >= T3
}

TEST_F(BettingContractTest, ReassignRequiresBothDeposits) {
  Address contract = Deploy();
  EXPECT_TRUE(Call(alice_, contract, DepositCalldata(), Ether(1)).success);
  chain_.AdvanceTimeTo(config_.t2);
  EXPECT_FALSE(Call(alice_, contract, ReassignCalldata()).success);
}

TEST_F(BettingContractTest, DisputePathEnforcesTrueResult) {
  Address contract = Deploy();
  DepositBoth(contract);
  // The loser refuses to call reassign(); T3 passes.
  chain_.AdvanceTimeTo(config_.t3);

  SignedCopy copy = MakeSignedCopy();
  auto deploy_receipt = Call(bob_, contract, DisputeCalldata(copy), U256(),
                             5'000'000);
  ASSERT_TRUE(deploy_receipt.success)
      << std::string(deploy_receipt.output.begin(),
                     deploy_receipt.output.end());
  // deployedAddr recorded and the verified instance carries the off-chain
  // runtime code.
  U256 deployed_word =
      chain_.GetStorage(contract, U256(betting_slots::kDeployedAddr));
  ASSERT_FALSE(deployed_word.IsZero());
  Address instance = Address::FromWord(deployed_word);
  auto runtime = BuildOffChainRuntime(offchain_);
  ASSERT_TRUE(runtime.ok());
  EXPECT_EQ(chain_.GetCode(instance), *runtime);

  // Anyone certified can now trigger the resolution.
  bool bob_wins = ComputeWinner(offchain_);
  U256 alice_before = chain_.GetBalance(alice_.EthAddress());
  U256 bob_before = chain_.GetBalance(bob_.EthAddress());
  auto resolve_receipt =
      Call(bob_, instance, ReturnDisputeResolutionCalldata(contract));
  ASSERT_TRUE(resolve_receipt.success)
      << std::string(resolve_receipt.output.begin(),
                     resolve_receipt.output.end());
  EXPECT_EQ(chain_.GetStorage(contract, U256(betting_slots::kResolved)),
            U256(1));
  EXPECT_EQ(chain_.GetBalance(contract), U256(0));
  if (bob_wins) {
    EXPECT_EQ(chain_.GetBalance(bob_.EthAddress()),
              bob_before + Ether(2) - U256(resolve_receipt.gas_used));
  } else {
    EXPECT_EQ(chain_.GetBalance(alice_.EthAddress()), alice_before + Ether(2));
  }
  // Resolution cannot be replayed.
  EXPECT_FALSE(
      Call(bob_, instance, ReturnDisputeResolutionCalldata(contract)).success);
}

TEST_F(BettingContractTest, DisputeRejectsTamperedBytecode) {
  Address contract = Deploy();
  DepositBoth(contract);
  chain_.AdvanceTimeTo(config_.t3);
  SignedCopy copy = MakeSignedCopy();
  // A dishonest participant rewrites the off-chain logic but keeps the old
  // signatures: integrity verification must fail.
  OffchainConfig forged = offchain_;
  forged.secret_alice = U256(0xbad);
  auto forged_init = BuildOffChainInit(forged);
  ASSERT_TRUE(forged_init.ok());
  copy.bytecode = *forged_init;
  EXPECT_FALSE(Call(bob_, contract, DisputeCalldata(copy), U256(), 5'000'000)
                   .success);
  EXPECT_TRUE(chain_.GetStorage(contract, U256(betting_slots::kDeployedAddr))
                  .IsZero());
}

TEST_F(BettingContractTest, DisputeRejectsMissingOrForeignSignature) {
  Address contract = Deploy();
  DepositBoth(contract);
  chain_.AdvanceTimeTo(config_.t3);
  SignedCopy copy = MakeSignedCopy();
  // Carol signs instead of Bob: the second recover yields carol's address.
  Hash32 digest = Keccak256(copy.bytecode);
  auto carol_sig = secp256k1::Sign(digest, carol_);
  ASSERT_TRUE(carol_sig.ok());
  copy.sig_bob = *carol_sig;
  EXPECT_FALSE(Call(bob_, contract, DisputeCalldata(copy), U256(), 5'000'000)
                   .success);
}

TEST_F(BettingContractTest, DisputeRejectsBeforeT3) {
  Address contract = Deploy();
  DepositBoth(contract);
  chain_.AdvanceTimeTo(config_.t2);
  SignedCopy copy = MakeSignedCopy();
  EXPECT_FALSE(Call(bob_, contract, DisputeCalldata(copy), U256(), 5'000'000)
                   .success);
}

TEST_F(BettingContractTest, DisputeRejectsNonParticipantCaller) {
  Address contract = Deploy();
  DepositBoth(contract);
  chain_.AdvanceTimeTo(config_.t3);
  SignedCopy copy = MakeSignedCopy();
  EXPECT_FALSE(Call(carol_, contract, DisputeCalldata(copy), U256(), 5'000'000)
                   .success);
}

TEST_F(BettingContractTest, EnforceRejectsDirectCalls) {
  Address contract = Deploy();
  DepositBoth(contract);
  chain_.AdvanceTimeTo(config_.t3);
  // Nobody can call enforceDisputeResolution directly — not even
  // participants — before a verified instance exists...
  EXPECT_FALSE(
      Call(bob_, contract, EnforceDisputeResolutionCalldata(true)).success);
  // ...and not after one exists either (msg.sender is an EOA, not the
  // instance).
  SignedCopy copy = MakeSignedCopy();
  ASSERT_TRUE(
      Call(bob_, contract, DisputeCalldata(copy), U256(), 5'000'000).success);
  EXPECT_FALSE(
      Call(bob_, contract, EnforceDisputeResolutionCalldata(true)).success);
}

TEST_F(BettingContractTest, VerifiedInstanceRejectsNonParticipant) {
  Address contract = Deploy();
  DepositBoth(contract);
  chain_.AdvanceTimeTo(config_.t3);
  SignedCopy copy = MakeSignedCopy();
  ASSERT_TRUE(
      Call(bob_, contract, DisputeCalldata(copy), U256(), 5'000'000).success);
  Address instance = Address::FromWord(
      chain_.GetStorage(contract, U256(betting_slots::kDeployedAddr)));
  EXPECT_FALSE(
      Call(carol_, instance, ReturnDisputeResolutionCalldata(contract)).success);
}

TEST_F(BettingContractTest, GetWinnerMatchesNativeReveal) {
  // Deploy the off-chain contract directly (as participants do locally) and
  // compare getWinner() with the native computation across parameter sweeps.
  for (uint64_t iters : {0ull, 1ull, 7ull, 50ull}) {
    for (uint64_t secret : {1ull, 2ull, 0xdeadull}) {
      OffchainConfig cfg = offchain_;
      cfg.reveal_iterations = iters;
      cfg.secret_bob = U256(secret);
      auto init = BuildOffChainInit(cfg);
      ASSERT_TRUE(init.ok());
      auto receipt = chain_.Execute(alice_, std::nullopt, U256(), *init,
                                    3'000'000);
      ASSERT_TRUE(receipt.ok());
      ASSERT_TRUE(receipt->success);
      auto res = chain_.CallReadOnly(alice_.EthAddress(),
                                     receipt->contract_address,
                                     GetWinnerCalldata());
      ASSERT_TRUE(res.ok());
      ASSERT_EQ(res.output.size(), 32u);
      bool onchain_winner =
          !U256::FromBigEndianTruncating(res.output).IsZero();
      EXPECT_EQ(onchain_winner, ComputeWinner(cfg))
          << "iters=" << iters << " secret=" << secret;
    }
  }
}

// ---- Security-deposit extension (paper SIV: penalize the dishonest) ----

class BettingPenaltyTest : public BettingContractTest {
 protected:
  BettingPenaltyTest() {
    config_.security_deposit = Ether(1) / U256(2);  // 0.5 ether
  }

  void DepositBothWithStake(const Address& contract) {
    EXPECT_TRUE(
        Call(alice_, contract, DepositCalldata(), config_.TotalStake()).success);
    EXPECT_TRUE(
        Call(bob_, contract, DepositCalldata(), config_.TotalStake()).success);
  }
};

TEST_F(BettingPenaltyTest, DepositRequiresFullStake) {
  Address contract = Deploy();
  // The bare bet amount is no longer enough.
  EXPECT_FALSE(Call(alice_, contract, DepositCalldata(), Ether(1)).success);
  EXPECT_TRUE(
      Call(alice_, contract, DepositCalldata(), config_.TotalStake()).success);
}

TEST_F(BettingPenaltyTest, HonestPathReturnsSecurities) {
  Address contract = Deploy();
  DepositBothWithStake(contract);
  chain_.AdvanceTimeTo(config_.t2);
  U256 alice_before = chain_.GetBalance(alice_.EthAddress());
  U256 bob_before = chain_.GetBalance(bob_.EthAddress());
  // Alice admits the loss: Bob gets 2 bets + his security, Alice gets her
  // security back.
  auto receipt = Call(alice_, contract, ReassignCalldata());
  ASSERT_TRUE(receipt.success);
  EXPECT_EQ(chain_.GetBalance(bob_.EthAddress()),
            bob_before + Ether(2) + config_.security_deposit);
  EXPECT_EQ(chain_.GetBalance(alice_.EthAddress()),
            alice_before + config_.security_deposit - U256(receipt.gas_used));
  EXPECT_EQ(chain_.GetBalance(contract), U256(0));
}

TEST_F(BettingPenaltyTest, DisputeForfeitsLosersSecurityToChallenger) {
  Address contract = Deploy();
  DepositBothWithStake(contract);
  chain_.AdvanceTimeTo(config_.t3);  // the loser went silent
  SignedCopy copy = MakeSignedCopy();
  bool bob_wins = ComputeWinner(offchain_);
  // The winner challenges (pays the dispute gas).
  const auto& winner = bob_wins ? bob_ : alice_;
  U256 winner_before = chain_.GetBalance(winner.EthAddress());
  auto deploy_r = Call(winner, contract, DisputeCalldata(copy), U256(),
                       5'000'000);
  ASSERT_TRUE(deploy_r.success);
  // Challenger is recorded on-chain.
  EXPECT_EQ(Address::FromWord(chain_.GetStorage(
                contract, U256(betting_slots::kChallenger))),
            winner.EthAddress());
  Address instance = Address::FromWord(
      chain_.GetStorage(contract, U256(betting_slots::kDeployedAddr)));
  auto resolve_r =
      Call(winner, instance, ReturnDisputeResolutionCalldata(contract));
  ASSERT_TRUE(resolve_r.success);
  // Winner-as-challenger collects: the pot (2 bets), their own security,
  // AND the loser's forfeited security as gas compensation.
  U256 gas_spent(deploy_r.gas_used + resolve_r.gas_used);
  EXPECT_EQ(chain_.GetBalance(winner.EthAddress()) + gas_spent,
            winner_before + Ether(2) + config_.security_deposit * U256(2));
  EXPECT_EQ(chain_.GetBalance(contract), U256(0));
  // The dishonest loser ends with nothing back.
}

TEST_F(BettingPenaltyTest, RefundReturnsFullStake) {
  Address contract = Deploy();
  EXPECT_TRUE(
      Call(alice_, contract, DepositCalldata(), config_.TotalStake()).success);
  U256 before = chain_.GetBalance(alice_.EthAddress());
  auto receipt = Call(alice_, contract, RefundRoundOneCalldata());
  ASSERT_TRUE(receipt.success);
  EXPECT_EQ(chain_.GetBalance(alice_.EthAddress()),
            before + config_.TotalStake() - U256(receipt.gas_used));
}

TEST_F(BettingContractTest, TimeWindowBoundariesAreExact) {
  Address contract = Deploy();
  // Deposit window is [T0, T1): depositing at exactly T1-1 works...
  chain_.AdvanceTimeTo(config_.t1 - 1);
  EXPECT_TRUE(Call(alice_, contract, DepositCalldata(), Ether(1)).success);
  // ...and at exactly T1 it does not.
  chain_.AdvanceTimeTo(config_.t1);
  EXPECT_FALSE(Call(bob_, contract, DepositCalldata(), Ether(1)).success);
  // refundRoundTwo opens at exactly T1 (amount not met: only Alice paid).
  EXPECT_TRUE(Call(alice_, contract, RefundRoundTwoCalldata()).success);
}

TEST_F(BettingContractTest, ReassignWindowBoundaries) {
  Address contract = Deploy();
  DepositBoth(contract);
  // reassign opens at exactly T2.
  chain_.AdvanceTimeTo(config_.t2 - 1);
  EXPECT_FALSE(Call(alice_, contract, ReassignCalldata()).success);
  chain_.AdvanceTimeTo(config_.t2);
  EXPECT_TRUE(Call(alice_, contract, ReassignCalldata()).success);
}

TEST_F(BettingContractTest, DisputeWindowOpensAtExactlyT3) {
  Address contract = Deploy();
  DepositBoth(contract);
  SignedCopy copy = MakeSignedCopy();
  chain_.AdvanceTimeTo(config_.t3 - 1);
  EXPECT_FALSE(
      Call(bob_, contract, DisputeCalldata(copy), U256(), 5'000'000).success);
  chain_.AdvanceTimeTo(config_.t3);
  EXPECT_TRUE(
      Call(bob_, contract, DisputeCalldata(copy), U256(), 5'000'000).success);
}

TEST_F(BettingContractTest, SecondVerifiedInstanceBlocked) {
  Address contract = Deploy();
  DepositBoth(contract);
  chain_.AdvanceTimeTo(config_.t3);
  SignedCopy copy = MakeSignedCopy();
  ASSERT_TRUE(
      Call(bob_, contract, DisputeCalldata(copy), U256(), 5'000'000).success);
  // Even a perfectly valid second submission is rejected: only one
  // verified instance may ever exist per contract.
  EXPECT_FALSE(
      Call(alice_, contract, DisputeCalldata(copy), U256(), 5'000'000).success);
}

TEST_F(BettingContractTest, DeterministicCompilation) {
  // Same config -> bit-identical bytecode (the "same compiler" requirement).
  auto a = BuildOffChainInit(offchain_);
  auto b = BuildOffChainInit(offchain_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  // Different secrets -> different bytecode (the private data lives in it).
  OffchainConfig other = offchain_;
  other.secret_bob = U256(999);
  auto c = BuildOffChainInit(other);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(*a, *c);
}

}  // namespace
}  // namespace onoff::contracts
