// Regression gate: every contract bundled with the repo must pass the
// static analyzer clean, with the paper's light/private classification
// declared as policy. A codegen change that introduces an unbounded light
// function, a stack-height bug, or a private state leak fails here before
// it can reach the CLI or the protocol driver.

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "abi/abi.h"
#include "analysis/analyzer.h"
#include "contracts/betting.h"
#include "contracts/synthetic.h"
#include "crypto/secp256k1.h"

namespace onoff::contracts {
namespace {

using analysis::AnalysisOptions;
using analysis::AnalyzeDeployment;
using analysis::DeploymentReport;

uint32_t SelectorWord(std::string_view signature) {
  abi::Selector sel = abi::SelectorOf(signature);
  return (uint32_t{sel[0]} << 24) | (uint32_t{sel[1]} << 16) |
         (uint32_t{sel[2]} << 8) | uint32_t{sel[3]};
}

AnalysisOptions Policy(const std::vector<std::string>& light,
                       const std::vector<std::string>& priv) {
  AnalysisOptions options;
  for (const std::string& sig : light) {
    options.light_selectors.push_back(SelectorWord(sig));
    options.function_names[SelectorWord(sig)] = sig;
  }
  for (const std::string& sig : priv) {
    options.private_selectors.push_back(SelectorWord(sig));
    options.function_names[SelectorWord(sig)] = sig;
  }
  return options;
}

void ExpectClean(const Result<Bytes>& init, const AnalysisOptions& options,
                 const char* what) {
  ASSERT_TRUE(init.ok()) << what << ": " << init.status().ToString();
  DeploymentReport report = AnalyzeDeployment(*init, options);
  EXPECT_TRUE(report.recognized_deployer) << what;
  EXPECT_FALSE(report.HasErrors())
      << what << ": "
      << analysis::FormatDiagnostic(report.AllDiagnostics().front());
}

BettingConfig TestBettingConfig() {
  BettingConfig config;
  config.alice = secp256k1::PrivateKey::FromSeed("alice").EthAddress();
  config.bob = secp256k1::PrivateKey::FromSeed("bob").EthAddress();
  config.deposit_amount = Ether(1);
  config.t1 = 1100;
  config.t2 = 1200;
  config.t3 = 1300;
  return config;
}

TEST(CodegenLintTest, BettingOnChainPassesWithLightPolicy) {
  // Every entry point except the CREATE-ing dispute weapon is declared
  // light: the analyzer must prove them bounded under the block gas limit.
  ExpectClean(BuildOnChainInit(TestBettingConfig()),
              Policy({"deposit()", "refundRoundOne()", "refundRoundTwo()",
                      "reassign()", "enforceDisputeResolution(bool)"},
                     {}),
              "betting on-chain");
}

TEST(CodegenLintTest, BettingOnChainWithSecurityDepositPasses) {
  BettingConfig config = TestBettingConfig();
  config.security_deposit = Ether(1) / U256(2);
  ExpectClean(BuildOnChainInit(config),
              Policy({"deposit()", "refundRoundOne()", "refundRoundTwo()",
                      "reassign()", "enforceDisputeResolution(bool)"},
                     {}),
              "betting on-chain with security deposit");
}

TEST(CodegenLintTest, BettingOffChainPassesWithPrivatePolicy) {
  OffchainConfig config;
  config.alice = secp256k1::PrivateKey::FromSeed("alice").EthAddress();
  config.bob = secp256k1::PrivateKey::FromSeed("bob").EthAddress();
  config.secret_alice = U256(0xa11ce);
  config.secret_bob = U256(0xb0b);
  config.reveal_iterations = 25;
  // getWinner() sees the private secrets and must not be able to leak
  // them; returnDisputeResolution() is the sanctioned CALL path and stays
  // unclassified.
  ExpectClean(BuildOffChainInit(config), Policy({}, {"getWinner()"}),
              "betting off-chain");
}

TEST(CodegenLintTest, SyntheticContractsPass) {
  for (int n : {1, 4}) {
    SyntheticConfig config;
    config.num_light = n;
    config.num_heavy = n;
    config.heavy_iterations = 10;
    ExpectClean(BuildWholeInit(config), {}, "synthetic whole");
    ExpectClean(BuildHybridOnChainInit(config), {}, "synthetic hybrid-on");
    ExpectClean(BuildHybridOffChainInit(config), {}, "synthetic hybrid-off");
  }
}

}  // namespace
}  // namespace onoff::contracts
