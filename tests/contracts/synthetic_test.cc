#include "contracts/synthetic.h"

#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "contracts/betting.h"  // Ether()
#include "crypto/secp256k1.h"

namespace onoff::contracts {
namespace {

using chain::Blockchain;
using secp256k1::PrivateKey;

class SyntheticContractTest : public ::testing::Test {
 protected:
  SyntheticContractTest() : user_(PrivateKey::FromSeed("user")) {
    chain_.FundAccount(user_.EthAddress(), Ether(100));
    cfg_.num_light = 2;
    cfg_.num_heavy = 2;
    cfg_.heavy_iterations = 25;
  }

  Address Deploy(const Bytes& init) {
    auto receipt = chain_.Execute(user_, std::nullopt, U256(), init, 6'000'000);
    EXPECT_TRUE(receipt.ok());
    EXPECT_TRUE(receipt->success);
    return receipt->contract_address;
  }

  Blockchain chain_;
  PrivateKey user_;
  SyntheticConfig cfg_;
};

TEST_F(SyntheticContractTest, WholeContractExecutesAllFunctions) {
  auto init = BuildWholeInit(cfg_);
  ASSERT_TRUE(init.ok());
  Address contract = Deploy(*init);

  for (int i = 0; i < cfg_.num_light; ++i) {
    auto r = chain_.Execute(user_, contract, U256(), LightCalldata(i), 200'000);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->success);
    EXPECT_EQ(chain_.GetStorage(
                  contract, U256(synthetic_slots::kLightBase + uint64_t(i))),
              U256(uint64_t(i) + 1));
  }
  for (int i = 0; i < cfg_.num_heavy; ++i) {
    auto r = chain_.Execute(user_, contract, U256(), HeavyCalldata(i), 2'000'000);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->success);
    EXPECT_EQ(chain_.GetStorage(
                  contract, U256(synthetic_slots::kHeavyBase + uint64_t(i))),
              NativeHeavyResult(i, cfg_.heavy_iterations));
  }
}

TEST_F(SyntheticContractTest, HeavyGasScalesWithIterations) {
  SyntheticConfig small = cfg_;
  small.heavy_iterations = 10;
  SyntheticConfig big = cfg_;
  big.heavy_iterations = 1000;
  auto init_small = BuildWholeInit(small);
  auto init_big = BuildWholeInit(big);
  ASSERT_TRUE(init_small.ok());
  ASSERT_TRUE(init_big.ok());
  Address c_small = Deploy(*init_small);
  Address c_big = Deploy(*init_big);
  auto r_small =
      chain_.Execute(user_, c_small, U256(), HeavyCalldata(0), 6'000'000);
  auto r_big = chain_.Execute(user_, c_big, U256(), HeavyCalldata(0), 6'000'000);
  ASSERT_TRUE(r_small.ok());
  ASSERT_TRUE(r_big.ok());
  ASSERT_TRUE(r_small->success);
  ASSERT_TRUE(r_big->success);
  // ~56 gas per iteration (keccak + loop overhead); expect near-linear growth.
  EXPECT_GT(r_big->gas_used, r_small->gas_used + 40 * 990);
}

TEST_F(SyntheticContractTest, HybridReachesSameFinalState) {
  auto whole_init = BuildWholeInit(cfg_);
  auto onchain_init = BuildHybridOnChainInit(cfg_);
  auto offchain_init = BuildHybridOffChainInit(cfg_);
  ASSERT_TRUE(whole_init.ok());
  ASSERT_TRUE(onchain_init.ok());
  ASSERT_TRUE(offchain_init.ok());

  // All-on-chain execution.
  Address whole = Deploy(*whole_init);
  for (int i = 0; i < cfg_.num_light; ++i) {
    ASSERT_TRUE(chain_.Execute(user_, whole, U256(), LightCalldata(i), 200'000)
                    ->success);
  }
  for (int i = 0; i < cfg_.num_heavy; ++i) {
    ASSERT_TRUE(
        chain_.Execute(user_, whole, U256(), HeavyCalldata(i), 2'000'000)
            ->success);
  }

  // Hybrid: heavy functions run off-chain (locally deployed scratch chain),
  // results submitted on-chain.
  Address hybrid = Deploy(*onchain_init);
  Blockchain local;  // the participants' local EVM
  local.FundAccount(user_.EthAddress(), Ether(10));
  auto local_deploy =
      local.Execute(user_, std::nullopt, U256(), *offchain_init, 6'000'000);
  ASSERT_TRUE(local_deploy.ok());
  ASSERT_TRUE(local_deploy->success);
  Address local_contract = local_deploy->contract_address;

  for (int i = 0; i < cfg_.num_light; ++i) {
    ASSERT_TRUE(chain_.Execute(user_, hybrid, U256(), LightCalldata(i), 200'000)
                    ->success);
  }
  for (int i = 0; i < cfg_.num_heavy; ++i) {
    auto local_res = local.CallReadOnly(user_.EthAddress(), local_contract,
                                        HeavyCalldata(i));
    ASSERT_TRUE(local_res.ok());
    U256 result = U256::FromBigEndianTruncating(local_res.output);
    EXPECT_EQ(result, NativeHeavyResult(i, cfg_.heavy_iterations));
    ASSERT_TRUE(chain_
                    .Execute(user_, hybrid, U256(),
                             SubmitResultCalldata(i, result), 200'000)
                    ->success);
  }

  // Final storage matches between the two models.
  for (int i = 0; i < cfg_.num_light; ++i) {
    U256 slot(synthetic_slots::kLightBase + uint64_t(i));
    EXPECT_EQ(chain_.GetStorage(whole, slot), chain_.GetStorage(hybrid, slot));
  }
  for (int i = 0; i < cfg_.num_heavy; ++i) {
    U256 slot(synthetic_slots::kHeavyBase + uint64_t(i));
    EXPECT_EQ(chain_.GetStorage(whole, slot), chain_.GetStorage(hybrid, slot));
  }
}

TEST_F(SyntheticContractTest, HybridOnChainIsCheaperForHeavyWork) {
  SyntheticConfig cfg = cfg_;
  cfg.heavy_iterations = 2000;
  auto whole_init = BuildWholeInit(cfg);
  auto onchain_init = BuildHybridOnChainInit(cfg);
  ASSERT_TRUE(whole_init.ok());
  ASSERT_TRUE(onchain_init.ok());
  Address whole = Deploy(*whole_init);
  Address hybrid = Deploy(*onchain_init);

  auto heavy_receipt =
      chain_.Execute(user_, whole, U256(), HeavyCalldata(0), 6'000'000);
  ASSERT_TRUE(heavy_receipt.ok());
  ASSERT_TRUE(heavy_receipt->success);
  auto submit_receipt = chain_.Execute(
      user_, hybrid, U256(),
      SubmitResultCalldata(0, NativeHeavyResult(0, cfg.heavy_iterations)),
      6'000'000);
  ASSERT_TRUE(submit_receipt.ok());
  ASSERT_TRUE(submit_receipt->success);
  // The hybrid model replaces the heavy on-chain execution with a cheap
  // submit; the gap grows with heavy_iterations.
  EXPECT_LT(submit_receipt->gas_used * 2, heavy_receipt->gas_used);
}

}  // namespace
}  // namespace onoff::contracts
