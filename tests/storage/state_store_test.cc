#include "storage/state_store.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "state/world_state.h"
#include "support/address.h"
#include "support/u256.h"
#include "trie/trie.h"

namespace onoff::state {
namespace {

Address Addr(uint8_t tag) {
  std::array<uint8_t, Address::kSize> raw{};
  raw[19] = tag;
  raw[0] = 0xAA;
  return Address(raw);
}

TEST(StateStoreTest, EmptyStateRootMatchesRebuild) {
  WorldState ws;
  EXPECT_EQ(ws.StateRoot(), ws.RebuildStateRoot());
  EXPECT_EQ(ws.StateRoot(), trie::Trie::EmptyRoot());
}

TEST(StateStoreTest, IncrementalMatchesRebuildAfterBasicMutations) {
  WorldState ws;
  ws.SetBalance(Addr(1), U256(1000));
  ws.SetNonce(Addr(1), 7);
  ws.SetCode(Addr(2), BytesOf("\x60\x00\x60\x00"));
  ws.SetStorage(Addr(2), U256(1), U256(42));
  ws.SetStorage(Addr(2), U256(2), U256(43));
  EXPECT_EQ(ws.StateRoot(), ws.RebuildStateRoot());

  // Incremental follow-up: only one slot changes.
  ws.SetStorage(Addr(2), U256(1), U256(99));
  EXPECT_EQ(ws.StateRoot(), ws.RebuildStateRoot());

  // Zero write deletes the slot from the trie.
  ws.SetStorage(Addr(2), U256(2), U256(0));
  EXPECT_EQ(ws.StateRoot(), ws.RebuildStateRoot());
}

TEST(StateStoreTest, DeleteAndRecreateAccount) {
  WorldState ws;
  ws.SetCode(Addr(5), BytesOf("code"));
  for (int i = 1; i <= 10; ++i) {
    ws.SetStorage(Addr(5), U256(static_cast<uint64_t>(i)), U256(100 + i));
  }
  EXPECT_EQ(ws.StateRoot(), ws.RebuildStateRoot());

  // SELFDESTRUCT: the account and its whole storage trie vanish.
  ws.DeleteAccount(Addr(5));
  EXPECT_EQ(ws.StateRoot(), ws.RebuildStateRoot());

  // Recreation starts from empty storage; the store must not resurrect the
  // old trie.
  ws.SetBalance(Addr(5), U256(5));
  ws.SetStorage(Addr(5), U256(1), U256(1));
  EXPECT_EQ(ws.StateRoot(), ws.RebuildStateRoot());
}

TEST(StateStoreTest, RevertMarksDirtyAndRootsAgree) {
  WorldState ws;
  ws.SetBalance(Addr(1), U256(100));
  ws.SetStorage(Addr(1), U256(1), U256(11));
  Hash32 committed = ws.StateRoot();
  ws.ClearJournal();

  auto snap = ws.TakeSnapshot();
  ws.SetBalance(Addr(1), U256(999));
  ws.SetStorage(Addr(1), U256(1), U256(22));
  ws.SetStorage(Addr(1), U256(2), U256(33));
  ws.CreateAccount(Addr(9));
  ws.SetNonce(Addr(9), 3);
  // Commit mid-transaction, then revert past that commit — the store must
  // re-fold everything the revert touched.
  EXPECT_EQ(ws.StateRoot(), ws.RebuildStateRoot());
  ws.RevertToSnapshot(snap);
  EXPECT_EQ(ws.StateRoot(), committed);
  EXPECT_EQ(ws.StateRoot(), ws.RebuildStateRoot());
}

TEST(StateStoreTest, RevertOfDeleteRestoresStorage) {
  WorldState ws;
  ws.SetCode(Addr(3), BytesOf("contract"));
  ws.SetStorage(Addr(3), U256(7), U256(77));
  ws.SetStorage(Addr(3), U256(8), U256(88));
  Hash32 before = ws.StateRoot();
  ws.ClearJournal();

  auto snap = ws.TakeSnapshot();
  ws.DeleteAccount(Addr(3));
  EXPECT_EQ(ws.StateRoot(), ws.RebuildStateRoot());
  ws.RevertToSnapshot(snap);
  EXPECT_EQ(ws.StateRoot(), before);
  EXPECT_EQ(ws.GetStorage(Addr(3), U256(7)), U256(77));
}

TEST(StateStoreTest, CloneSharesCommittedTriesAndDiverges) {
  WorldState ws;
  for (int i = 0; i < 50; ++i) {
    ws.SetBalance(Addr(static_cast<uint8_t>(i)), U256(1000 + i));
  }
  Hash32 root = ws.StateRoot();

  WorldState clone = ws.Clone();
  // The clone commits instantly: nothing is dirty, the root is memoized.
  EXPECT_EQ(clone.StateRoot(), root);

  // Divergence is tracked independently on each side.
  ws.SetBalance(Addr(1), U256(1));
  clone.SetBalance(Addr(2), U256(2));
  EXPECT_EQ(ws.StateRoot(), ws.RebuildStateRoot());
  EXPECT_EQ(clone.StateRoot(), clone.RebuildStateRoot());
  EXPECT_NE(ws.StateRoot(), clone.StateRoot());
}

TEST(StateStoreTest, SnapshotRootSurvivesLaterMutation) {
  WorldState ws;
  ws.SetBalance(Addr(1), U256(500));
  ws.SetStorage(Addr(1), U256(1), U256(10));
  storage::StateSnapshot snap = ws.TakeStateSnapshot();
  Hash32 historical = snap.root;
  EXPECT_EQ(historical, ws.StateRoot());

  // The live state moves on; the snapshot's tries are frozen.
  for (int i = 0; i < 20; ++i) {
    ws.SetStorage(Addr(1), U256(static_cast<uint64_t>(i)), U256(1000 + i));
    ws.SetBalance(Addr(static_cast<uint8_t>(i + 2)), U256(i));
  }
  EXPECT_NE(ws.StateRoot(), historical);
  EXPECT_EQ(snap.account_trie.RootHash(), historical);

  // Proofs taken from the snapshot verify against the historical root.
  std::vector<Bytes> proof = snap.ProveAccount(Addr(1));
  Result<std::optional<WorldState::AccountInfo>> info =
      WorldState::VerifyAccountProof(historical, Addr(1), proof);
  ASSERT_TRUE(info.ok()) << info.status().message();
  ASSERT_TRUE(info->has_value());
  EXPECT_EQ((*info)->balance, U256(500));

  std::vector<Bytes> sproof = snap.ProveStorage(Addr(1), U256(1));
  Result<U256> v =
      WorldState::VerifyStorageProof((*info)->storage_root, U256(1), sproof);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, U256(10));
}

TEST(StateStoreTest, LiveProofsMatchVerifiers) {
  WorldState ws;
  ws.SetNonce(Addr(4), 9);
  ws.SetBalance(Addr(4), U256(1234));
  ws.SetCode(Addr(4), BytesOf("runtime"));
  ws.SetStorage(Addr(4), U256(5), U256(55));
  Hash32 root = ws.StateRoot();

  WorldState::Proof proof = ws.ProveStorage(Addr(4), U256(5));
  Result<std::optional<WorldState::AccountInfo>> info =
      WorldState::VerifyAccountProof(root, Addr(4), proof.account_proof);
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(info->has_value());
  EXPECT_EQ((*info)->nonce, 9u);
  EXPECT_EQ((*info)->balance, U256(1234));
  Result<U256> v = WorldState::VerifyStorageProof((*info)->storage_root,
                                                  U256(5), proof.storage_proof);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, U256(55));

  // Absent account: the proof shows non-existence.
  WorldState::Proof absent = ws.ProveAccount(Addr(200));
  Result<std::optional<WorldState::AccountInfo>> none =
      WorldState::VerifyAccountProof(root, Addr(200), absent.account_proof);
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());
}

TEST(StateStoreTest, RandomizedDifferentialWithReverts) {
  // Drive WorldState through a random op mix — creates, balance/nonce/code
  // writes, storage writes and zero-writes, deletes, snapshot/revert — and
  // assert the incremental root equals the from-scratch rebuild at every
  // commit point.
  std::mt19937_64 rng(0xD1FF);
  WorldState ws;
  for (int round = 0; round < 60; ++round) {
    auto snap = ws.TakeSnapshot();
    int ops = 1 + static_cast<int>(rng() % 8);
    for (int i = 0; i < ops; ++i) {
      Address a = Addr(static_cast<uint8_t>(rng() % 16));
      switch (rng() % 6) {
        case 0:
          ws.SetBalance(a, U256(rng() % 10000));
          break;
        case 1:
          ws.SetNonce(a, rng() % 100);
          break;
        case 2:
          ws.SetCode(a, BytesOf("code" + std::to_string(rng() % 4)));
          break;
        case 3:
          ws.SetStorage(a, U256(rng() % 8), U256(rng() % 5));  // 0 deletes
          break;
        case 4:
          ws.DeleteAccount(a);
          break;
        case 5:
          ws.AddBalance(a, U256(rng() % 50));
          break;
      }
    }
    if (rng() % 3 == 0) {
      // Sometimes commit before reverting, so the revert has to undo
      // already-committed trie content.
      if (rng() % 2 == 0) ws.StateRoot();
      ws.RevertToSnapshot(snap);
    } else {
      ws.ClearJournal();
    }
    ASSERT_EQ(ws.StateRoot(), ws.RebuildStateRoot())
        << "diverged at round " << round;
  }
}

TEST(StateStoreTest, CommitIsMemoizedWhenClean) {
  WorldState ws;
  ws.SetBalance(Addr(1), U256(1));
  Hash32 r1 = ws.StateRoot();
  // No mutation in between: the memoized root comes back.
  EXPECT_EQ(ws.StateRoot(), r1);
  ws.SetBalance(Addr(1), U256(2));
  EXPECT_NE(ws.StateRoot(), r1);
}

}  // namespace
}  // namespace onoff::state
