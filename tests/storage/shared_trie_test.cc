#include "storage/shared_trie.h"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "support/bytes.h"
#include "trie/trie.h"

namespace onoff::storage {
namespace {

std::string RootHex(const Hash32& h) {
  return ToHex(BytesView(h.data(), h.size()));
}

TEST(SharedTrieTest, EmptyRootMatchesEthereum) {
  SharedTrie t;
  EXPECT_TRUE(t.IsEmpty());
  EXPECT_EQ(t.RootHash(), trie::Trie::EmptyRoot());
  EXPECT_EQ(RootHex(t.RootHash()),
            "56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421");
}

TEST(SharedTrieTest, KnownVectorsMatchSeedTrie) {
  // The canonical MPT documentation example, plus the seed trie on the same
  // content — roots must be byte-identical.
  SharedTrie shared;
  trie::Trie seed;
  for (const char* kv : {"doe/reindeer", "dog/puppy", "dogglesworth/cat"}) {
    std::string s(kv);
    size_t slash = s.find('/');
    Bytes k = BytesOf(s.substr(0, slash));
    Bytes v = BytesOf(s.substr(slash + 1));
    shared.Put(k, v);
    seed.Put(k, v);
  }
  EXPECT_EQ(RootHex(shared.RootHash()),
            "8aad789dff2f538bca5d8ea56e8abe10f4c7ba3a5dea95fea4cd6e7c3a1168d3");
  EXPECT_EQ(shared.RootHash(), seed.RootHash());
}

TEST(SharedTrieTest, DifferentialAgainstSeedTrie) {
  // Random inserts, overwrites and deletes; after every mutation the shared
  // trie's root must equal a seed trie holding the same content.
  std::mt19937_64 rng(0xC0FFEE);
  SharedTrie shared;
  trie::Trie seed;
  std::map<std::string, std::string> model;

  auto random_key = [&rng]() {
    // Short keys collide prefixes aggressively — exercises extension/branch
    // splitting and re-merging.
    size_t len = 1 + rng() % 6;
    std::string k;
    for (size_t i = 0; i < len; ++i) k.push_back('a' + rng() % 4);
    return k;
  };

  for (int step = 0; step < 800; ++step) {
    std::string k = random_key();
    if (rng() % 4 == 0 && !model.empty()) {
      auto it = model.begin();
      std::advance(it, rng() % model.size());
      k = it->first;
      shared.Delete(BytesOf(k));
      seed.Delete(BytesOf(k));
      model.erase(k);
    } else {
      std::string v = "value-" + std::to_string(rng() % 1000);
      shared.Put(BytesOf(k), BytesOf(v));
      seed.Put(BytesOf(k), BytesOf(v));
      model[k] = v;
    }
    ASSERT_EQ(shared.RootHash(), seed.RootHash()) << "diverged at step " << step;
  }
  // Content agrees with the model too.
  for (const auto& [k, v] : model) {
    Result<Bytes> got = shared.Get(BytesOf(k));
    ASSERT_TRUE(got.ok()) << k;
    EXPECT_EQ(*got, BytesOf(v));
  }
}

TEST(SharedTrieTest, CopyIsIndependentSnapshot) {
  SharedTrie a;
  a.Put(BytesOf("doe"), BytesOf("reindeer"));
  a.Put(BytesOf("dog"), BytesOf("puppy"));
  Hash32 root_before = a.RootHash();

  SharedTrie b = a;  // O(1): shares all nodes
  EXPECT_EQ(a.root().get(), b.root().get());

  a.Put(BytesOf("dog"), BytesOf("hound"));
  EXPECT_NE(a.RootHash(), root_before);
  // The snapshot is untouched — same root, same content.
  EXPECT_EQ(b.RootHash(), root_before);
  EXPECT_EQ(*b.Get(BytesOf("dog")), BytesOf("puppy"));

  // Reverting the value restores the exact root (content-addressed).
  a.Put(BytesOf("dog"), BytesOf("puppy"));
  EXPECT_EQ(a.RootHash(), root_before);
}

TEST(SharedTrieTest, StructuralSharingAfterMutation) {
  // Two tries differing in one key share the untouched subtrees: mutating
  // one key must not clone the whole trie.
  SharedTrie a;
  for (int i = 0; i < 200; ++i) {
    a.Put(BytesOf("key-" + std::to_string(i)), BytesOf("v" + std::to_string(i)));
  }
  size_t nodes_before = a.CountNodes();
  SharedTrie b = a;
  b.Put(BytesOf("key-7"), BytesOf("changed"));
  // Only the spine from the root to one leaf was copied; reachable node
  // count is unchanged (same shape), and far fewer than 2x nodes exist in
  // total across both tries.
  EXPECT_EQ(b.CountNodes(), nodes_before);
  EXPECT_NE(a.root().get(), b.root().get());
}

TEST(SharedTrieTest, NoOpWritePreservesIdentity) {
  SharedTrie t;
  t.Put(BytesOf("alpha"), BytesOf("1"));
  t.Put(BytesOf("beta"), BytesOf("2"));
  const void* root_before = t.root().get();
  t.Put(BytesOf("alpha"), BytesOf("1"));  // same value: no-op
  EXPECT_EQ(t.root().get(), root_before);
  t.Delete(BytesOf("missing"));  // absent key: no-op
  EXPECT_EQ(t.root().get(), root_before);
}

TEST(SharedTrieTest, EmptyValueDeletes) {
  SharedTrie t;
  t.Put(BytesOf("k"), BytesOf("v"));
  t.Put(BytesOf("k"), BytesView());
  EXPECT_TRUE(t.IsEmpty());
}

TEST(SharedTrieTest, ProofsVerifyAgainstSeedVerifier) {
  SharedTrie t;
  std::vector<std::string> keys;
  for (int i = 0; i < 50; ++i) {
    std::string k = "account-" + std::to_string(i);
    keys.push_back(k);
    t.Put(BytesOf(k), BytesOf("balance-" + std::to_string(i * 7)));
  }
  Hash32 root = t.RootHash();
  for (const std::string& k : keys) {
    std::vector<Bytes> proof = t.Prove(BytesOf(k));
    Result<std::optional<Bytes>> res =
        trie::Trie::VerifyProof(root, BytesOf(k), proof);
    ASSERT_TRUE(res.ok()) << k << ": " << res.status().message();
    ASSERT_TRUE(res->has_value()) << k;
    EXPECT_EQ(**res, BytesOf("balance-" + std::to_string(
                                 std::stoi(k.substr(8)) * 7)));
  }
  // Absence proof.
  std::vector<Bytes> absent = t.Prove(BytesOf("account-999"));
  Result<std::optional<Bytes>> res =
      trie::Trie::VerifyProof(root, BytesOf("account-999"), absent);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->has_value());
}

TEST(SharedTrieTest, SecureTrieMatchesSeedSecureTrie) {
  SecureSharedTrie shared;
  trie::SecureTrie seed;
  for (int i = 0; i < 64; ++i) {
    Bytes k = BytesOf("slot" + std::to_string(i));
    Bytes v = BytesOf(std::string(1 + i % 40, 'x'));
    shared.Put(k, v);
    seed.Put(k, v);
  }
  EXPECT_EQ(shared.RootHash(), seed.RootHash());
  shared.Delete(BytesOf("slot3"));
  seed.Delete(BytesOf("slot3"));
  EXPECT_EQ(shared.RootHash(), seed.RootHash());
}

TEST(SharedTrieTest, ConcurrentHashingOfSharedSnapshots) {
  // Snapshots share nodes whose encodings are memoized lazily; hashing the
  // same nodes from many threads must be race-free (TSan-checked in CI).
  SharedTrie base;
  for (int i = 0; i < 300; ++i) {
    base.Put(BytesOf("key-" + std::to_string(i)),
             BytesOf("value-" + std::to_string(i)));
  }
  // Note: RootHash has NOT been called yet — encodings are all cold.
  std::vector<SharedTrie> copies(8, base);
  Hash32 expect;
  std::vector<std::thread> threads;
  std::vector<Hash32> roots(copies.size());
  for (size_t i = 0; i < copies.size(); ++i) {
    threads.emplace_back([&, i] { roots[i] = copies[i].RootHash(); });
  }
  for (std::thread& th : threads) th.join();
  expect = base.RootHash();
  for (const Hash32& r : roots) EXPECT_EQ(r, expect);
}

TEST(SharedTrieTest, PersistWalkEmitsEachNodeOnceAndStopsAtKnown) {
  SharedTrie t;
  for (int i = 0; i < 120; ++i) {
    t.Put(BytesOf("key-" + std::to_string(i)), BytesOf(std::string(40, 'a')));
  }
  std::map<std::string, Bytes> store;
  size_t emitted = 0;
  auto known = [&store](const Hash32& h) {
    return store.count(std::string(h.begin(), h.end())) > 0;
  };
  auto emit = [&](const Hash32& h, const Bytes& enc,
                  const std::vector<Hash32>& refs) {
    // Children before parents: every hashed reference must already be
    // present when the referencing node arrives.
    for (const Hash32& r : refs) {
      EXPECT_TRUE(store.count(std::string(r.begin(), r.end())) > 0);
    }
    EXPECT_EQ(Keccak256(enc), h);
    store[std::string(h.begin(), h.end())] = enc;
    ++emitted;
  };
  t.PersistNodes(known, emit);
  EXPECT_GT(emitted, 0u);
  // Second walk with everything known: nothing re-emitted.
  size_t before = emitted;
  t.PersistNodes(known, emit);
  EXPECT_EQ(emitted, before);
  // One more key: only the new spine is emitted, not the whole trie.
  t.Put(BytesOf("key-new"), BytesOf(std::string(40, 'b')));
  t.PersistNodes(known, emit);
  EXPECT_GT(emitted, before);
  EXPECT_LT(emitted - before, 12u);
}

}  // namespace
}  // namespace onoff::storage
