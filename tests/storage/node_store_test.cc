#include "storage/node_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "chain/blockchain.h"
#include "state/world_state.h"
#include "support/address.h"
#include "support/u256.h"
#include "trie/trie.h"

namespace onoff::storage {
namespace {

using state::WorldState;

Address Addr(uint8_t tag) {
  std::array<uint8_t, Address::kSize> raw{};
  raw[19] = tag;
  return Address(raw);
}

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

TEST(NodeStoreTest, InMemoryPutGetAndRefcounts) {
  NodeStore store;
  ASSERT_TRUE(store.Open().ok());

  Bytes child_enc = BytesOf(std::string(40, 'c'));
  Hash32 child = Keccak256(child_enc);
  Bytes parent_enc = BytesOf(std::string(40, 'p'));
  Hash32 parent = Keccak256(parent_enc);

  ASSERT_TRUE(store.Put(child, child_enc, {}).ok());
  ASSERT_TRUE(store.Put(parent, parent_enc, {child}).ok());
  EXPECT_TRUE(store.Contains(child));
  EXPECT_TRUE(store.Contains(parent));
  EXPECT_EQ(store.live_nodes(), 2u);

  Result<Bytes> got = store.Get(child);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, child_enc);

  // Retain the parent as a root, then prune past it: both records die
  // (the child via the cascading deref).
  ASSERT_TRUE(store.RetainRoot(parent, 3).ok());
  EXPECT_EQ(store.retained_roots(), 1u);
  size_t freed = store.PruneBelow(4);
  EXPECT_EQ(freed, 2u);
  EXPECT_FALSE(store.Contains(parent));
  EXPECT_FALSE(store.Contains(child));
  EXPECT_EQ(store.live_nodes(), 0u);
}

TEST(NodeStoreTest, SharedSubtreeSurvivesPartialPrune) {
  NodeStore store;
  ASSERT_TRUE(store.Open().ok());

  Bytes shared_enc = BytesOf(std::string(40, 's'));
  Hash32 shared = Keccak256(shared_enc);
  Bytes r1_enc = BytesOf(std::string(40, '1'));
  Hash32 r1 = Keccak256(r1_enc);
  Bytes r2_enc = BytesOf(std::string(40, '2'));
  Hash32 r2 = Keccak256(r2_enc);

  // Two block roots both reference the shared subtree.
  ASSERT_TRUE(store.Put(shared, shared_enc, {}).ok());
  ASSERT_TRUE(store.Put(r1, r1_enc, {shared}).ok());
  ASSERT_TRUE(store.Put(r2, r2_enc, {shared}).ok());
  ASSERT_TRUE(store.RetainRoot(r1, 1).ok());
  ASSERT_TRUE(store.RetainRoot(r2, 2).ok());

  // Pruning block 1 kills r1 but the shared node lives on under r2.
  store.PruneBelow(2);
  EXPECT_FALSE(store.Contains(r1));
  EXPECT_TRUE(store.Contains(shared));
  EXPECT_TRUE(store.Contains(r2));

  store.PruneBelow(3);
  EXPECT_FALSE(store.Contains(shared));
  EXPECT_EQ(store.live_nodes(), 0u);
}

TEST(NodeStoreTest, PersistedStateSupportsHistoricalLookups) {
  NodeStore store;
  ASSERT_TRUE(store.Open().ok());

  WorldState ws;
  ws.SetBalance(Addr(1), U256(111));
  ws.SetStorage(Addr(1), U256(1), U256(7));
  Hash32 root_a = ws.StateRoot();
  ASSERT_TRUE(ws.PersistCommitted(store, 1).ok());

  ws.SetBalance(Addr(1), U256(222));
  ws.SetBalance(Addr(2), U256(333));
  Hash32 root_b = ws.StateRoot();
  ASSERT_TRUE(ws.PersistCommitted(store, 2).ok());
  ASSERT_NE(root_a, root_b);

  // Both historical states answer reads from stored nodes alone.
  Result<std::optional<Bytes>> old_acct =
      store.LookupSecure(root_a, Addr(1).view());
  ASSERT_TRUE(old_acct.ok()) << old_acct.status().message();
  ASSERT_TRUE(old_acct->has_value());
  Result<std::optional<Bytes>> new_acct =
      store.LookupSecure(root_b, Addr(1).view());
  ASSERT_TRUE(new_acct.ok());
  ASSERT_TRUE(new_acct->has_value());
  EXPECT_NE(**old_acct, **new_acct);

  // Addr(2) exists only under root_b.
  Result<std::optional<Bytes>> absent =
      store.LookupSecure(root_a, Addr(2).view());
  ASSERT_TRUE(absent.ok());
  EXPECT_FALSE(absent->has_value());

  // Prune the old block: root_a's exclusive nodes die, root_b's survive.
  store.PruneBelow(2);
  EXPECT_FALSE(store.LookupSecure(root_a, Addr(1).view()).ok());
  Result<std::optional<Bytes>> still =
      store.LookupSecure(root_b, Addr(2).view());
  ASSERT_TRUE(still.ok());
  EXPECT_TRUE(still->has_value());
}

TEST(NodeStoreTest, ReopenReplaysLog) {
  std::string path = TempPath("node_store_reopen.log");
  Hash32 root;
  size_t live = 0;
  {
    NodeStore store(path);
    ASSERT_TRUE(store.Open().ok());
    WorldState ws;
    for (int i = 0; i < 30; ++i) {
      ws.SetBalance(Addr(static_cast<uint8_t>(i)), U256(1000 + i));
      ws.SetStorage(Addr(static_cast<uint8_t>(i)), U256(1), U256(i));
    }
    root = ws.StateRoot();
    ASSERT_TRUE(ws.PersistCommitted(store, 1).ok());
    live = store.live_nodes();
    EXPECT_GT(live, 0u);
    EXPECT_GT(store.file_bytes(), 0u);
  }
  // A fresh process: replaying the log restores the index and refcounts.
  NodeStore reopened(path);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.live_nodes(), live);
  EXPECT_EQ(reopened.retained_roots(), 1u);
  Result<std::optional<Bytes>> acct =
      reopened.LookupSecure(root, Addr(5).view());
  ASSERT_TRUE(acct.ok());
  EXPECT_TRUE(acct->has_value());
  std::remove(path.c_str());
}

TEST(NodeStoreTest, CompactDropsDeadBytesAndStaysReadable) {
  std::string path = TempPath("node_store_compact.log");
  NodeStore store(path);
  ASSERT_TRUE(store.Open().ok());

  WorldState ws;
  ws.SetBalance(Addr(1), U256(1));
  Hash32 roots[6];
  for (int h = 1; h <= 5; ++h) {
    ws.SetBalance(Addr(1), U256(static_cast<uint64_t>(h * 100)));
    ws.SetStorage(Addr(1), U256(static_cast<uint64_t>(h)), U256(1));
    roots[h] = ws.StateRoot();
    ASSERT_TRUE(ws.PersistCommitted(store, static_cast<uint64_t>(h)).ok());
  }
  store.PruneBelow(5);  // keep only the newest state
  uint64_t before = store.file_bytes();
  size_t live = store.live_nodes();
  ASSERT_TRUE(store.Compact().ok());
  EXPECT_LT(store.file_bytes(), before);
  EXPECT_EQ(store.live_nodes(), live);

  // The compacted log still replays to the same live set.
  NodeStore reopened(path);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.live_nodes(), live);
  Result<std::optional<Bytes>> acct =
      reopened.LookupSecure(roots[5], Addr(1).view());
  ASSERT_TRUE(acct.ok());
  EXPECT_TRUE(acct->has_value());
  std::remove(path.c_str());
}

TEST(NodeStoreTest, BlockchainPersistsAndPrunesPerBlock) {
  chain::ChainConfig config;
  config.persist_state = true;  // empty path: in-memory node store
  config.state_history_blocks = 3;
  chain::Blockchain bc(config);
  ASSERT_NE(bc.node_store(), nullptr);

  std::vector<Hash32> roots;
  for (int i = 0; i < 8; ++i) {
    bc.FundAccount(Addr(static_cast<uint8_t>(i + 1)), U256(1000));
    roots.push_back(bc.MineBlock().header.state_root);
  }
  // Only the last `state_history_blocks` roots stay retained.
  EXPECT_LE(bc.node_store()->retained_roots(), 3u);
  EXPECT_GT(bc.node_store()->pruned_total(), 0u);

  // The newest block's state is readable from the store; a pruned one is
  // not (its exclusive nodes are gone).
  Result<std::optional<Bytes>> newest =
      bc.node_store()->LookupSecure(roots.back(), Addr(8).view());
  ASSERT_TRUE(newest.ok());
  EXPECT_TRUE(newest->has_value());
}

}  // namespace
}  // namespace onoff::storage
