#include "storage/node_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "chain/blockchain.h"
#include "rlp/rlp.h"
#include "state/world_state.h"
#include "support/address.h"
#include "support/u256.h"
#include "trie/trie.h"

namespace onoff::storage {
namespace {

using state::WorldState;

Address Addr(uint8_t tag) {
  std::array<uint8_t, Address::kSize> raw{};
  raw[19] = tag;
  return Address(raw);
}

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

TEST(NodeStoreTest, InMemoryPutGetAndRefcounts) {
  NodeStore store;
  ASSERT_TRUE(store.Open().ok());

  Bytes child_enc = BytesOf(std::string(40, 'c'));
  Hash32 child = Keccak256(child_enc);
  Bytes parent_enc = BytesOf(std::string(40, 'p'));
  Hash32 parent = Keccak256(parent_enc);

  ASSERT_TRUE(store.Put(child, child_enc, {}).ok());
  ASSERT_TRUE(store.Put(parent, parent_enc, {child}).ok());
  EXPECT_TRUE(store.Contains(child));
  EXPECT_TRUE(store.Contains(parent));
  EXPECT_EQ(store.live_nodes(), 2u);

  Result<Bytes> got = store.Get(child);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, child_enc);

  // Retain the parent as a root, then prune past it: both records die
  // (the child via the cascading deref).
  ASSERT_TRUE(store.RetainRoot(parent, 3).ok());
  EXPECT_EQ(store.retained_roots(), 1u);
  size_t freed = store.PruneBelow(4);
  EXPECT_EQ(freed, 2u);
  EXPECT_FALSE(store.Contains(parent));
  EXPECT_FALSE(store.Contains(child));
  EXPECT_EQ(store.live_nodes(), 0u);
}

TEST(NodeStoreTest, SharedSubtreeSurvivesPartialPrune) {
  NodeStore store;
  ASSERT_TRUE(store.Open().ok());

  Bytes shared_enc = BytesOf(std::string(40, 's'));
  Hash32 shared = Keccak256(shared_enc);
  Bytes r1_enc = BytesOf(std::string(40, '1'));
  Hash32 r1 = Keccak256(r1_enc);
  Bytes r2_enc = BytesOf(std::string(40, '2'));
  Hash32 r2 = Keccak256(r2_enc);

  // Two block roots both reference the shared subtree.
  ASSERT_TRUE(store.Put(shared, shared_enc, {}).ok());
  ASSERT_TRUE(store.Put(r1, r1_enc, {shared}).ok());
  ASSERT_TRUE(store.Put(r2, r2_enc, {shared}).ok());
  ASSERT_TRUE(store.RetainRoot(r1, 1).ok());
  ASSERT_TRUE(store.RetainRoot(r2, 2).ok());

  // Pruning block 1 kills r1 but the shared node lives on under r2.
  store.PruneBelow(2);
  EXPECT_FALSE(store.Contains(r1));
  EXPECT_TRUE(store.Contains(shared));
  EXPECT_TRUE(store.Contains(r2));

  store.PruneBelow(3);
  EXPECT_FALSE(store.Contains(shared));
  EXPECT_EQ(store.live_nodes(), 0u);
}

TEST(NodeStoreTest, PersistedStateSupportsHistoricalLookups) {
  NodeStore store;
  ASSERT_TRUE(store.Open().ok());

  WorldState ws;
  ws.SetBalance(Addr(1), U256(111));
  ws.SetStorage(Addr(1), U256(1), U256(7));
  Hash32 root_a = ws.StateRoot();
  ASSERT_TRUE(ws.PersistCommitted(store, 1).ok());

  ws.SetBalance(Addr(1), U256(222));
  ws.SetBalance(Addr(2), U256(333));
  Hash32 root_b = ws.StateRoot();
  ASSERT_TRUE(ws.PersistCommitted(store, 2).ok());
  ASSERT_NE(root_a, root_b);

  // Both historical states answer reads from stored nodes alone.
  Result<std::optional<Bytes>> old_acct =
      store.LookupSecure(root_a, Addr(1).view());
  ASSERT_TRUE(old_acct.ok()) << old_acct.status().message();
  ASSERT_TRUE(old_acct->has_value());
  Result<std::optional<Bytes>> new_acct =
      store.LookupSecure(root_b, Addr(1).view());
  ASSERT_TRUE(new_acct.ok());
  ASSERT_TRUE(new_acct->has_value());
  EXPECT_NE(**old_acct, **new_acct);

  // Addr(2) exists only under root_b.
  Result<std::optional<Bytes>> absent =
      store.LookupSecure(root_a, Addr(2).view());
  ASSERT_TRUE(absent.ok());
  EXPECT_FALSE(absent->has_value());

  // Prune the old block: root_a's exclusive nodes die, root_b's survive.
  store.PruneBelow(2);
  EXPECT_FALSE(store.LookupSecure(root_a, Addr(1).view()).ok());
  Result<std::optional<Bytes>> still =
      store.LookupSecure(root_b, Addr(2).view());
  ASSERT_TRUE(still.ok());
  EXPECT_TRUE(still->has_value());
}

TEST(NodeStoreTest, LookupSecureThroughEmbeddedNodes) {
  // Regression (mirrors TrieProofTest.ProvesKeysThroughEmbeddedNodes):
  // descending into a node embedded in its parent's record (encoding < 32
  // bytes) used to reassign the walker's item through an alias into its own
  // list — returning freed memory instead of the value.
  NodeStore store;
  ASSERT_TRUE(store.Open().ok());

  // For each key, hand-build the stored trie: a hashed extension covering
  // the first 63 hashed nibbles whose child is an EMBEDDED branch holding
  // an EMBEDDED leaf at the key's final nibble. Iterate until every final
  // nibble 0..15 has been exercised — the aliasing UB only fires for low
  // branch indices, where the element-wise vector copy overwrites the
  // embedded child before reading past it.
  uint32_t seen_nibbles = 0;
  for (int i = 0; i < 400 && seen_nibbles != 0xffff; ++i) {
    Bytes key = BytesOf("game-channel-" + std::to_string(i));
    Hash32 hashed = Keccak256(key);
    std::vector<uint8_t> nibbles =
        trie::BytesToNibbles(BytesView(hashed.data(), hashed.size()));
    ASSERT_EQ(nibbles.size(), 64u);
    seen_nibbles |= 1u << nibbles.back();

    Bytes value = BytesOf("bet-" + std::to_string(i));
    rlp::Item leaf = rlp::Item::List(
        {rlp::Item::String(trie::HexPrefixEncode({}, /*is_leaf=*/true)),
         rlp::Item::String(value)});
    ASSERT_LT(rlp::Encode(leaf).size(), 32u);

    std::vector<rlp::Item> kids(17, rlp::Item::String(Bytes{}));
    kids[nibbles.back()] = leaf;
    rlp::Item branch = rlp::Item::List(std::move(kids));
    ASSERT_LT(rlp::Encode(branch).size(), 32u);

    std::vector<uint8_t> ext_path(nibbles.begin(), nibbles.end() - 1);
    rlp::Item ext = rlp::Item::List(
        {rlp::Item::String(trie::HexPrefixEncode(ext_path, /*is_leaf=*/false)),
         branch});
    Bytes root_enc = rlp::Encode(ext);
    ASSERT_GE(root_enc.size(), 32u);
    Hash32 root = Keccak256(root_enc);
    ASSERT_TRUE(store.Put(root, root_enc, {}).ok());

    Result<std::optional<Bytes>> got = store.LookupSecure(root, key);
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().message();
    ASSERT_TRUE(got->has_value()) << i;
    EXPECT_EQ(**got, value) << i;

    // A key that diverges inside the extension path is absent.
    Bytes other = BytesOf("other-channel-" + std::to_string(i));
    Result<std::optional<Bytes>> absent = store.LookupSecure(root, other);
    ASSERT_TRUE(absent.ok()) << absent.status().message();
    EXPECT_FALSE(absent->has_value());
  }
  EXPECT_EQ(seen_nibbles, 0xffffu);
}

TEST(NodeStoreTest, ReopenReplaysLog) {
  std::string path = TempPath("node_store_reopen.log");
  Hash32 root;
  size_t live = 0;
  {
    NodeStore store(path);
    ASSERT_TRUE(store.Open().ok());
    WorldState ws;
    for (int i = 0; i < 30; ++i) {
      ws.SetBalance(Addr(static_cast<uint8_t>(i)), U256(1000 + i));
      ws.SetStorage(Addr(static_cast<uint8_t>(i)), U256(1), U256(i));
    }
    root = ws.StateRoot();
    ASSERT_TRUE(ws.PersistCommitted(store, 1).ok());
    live = store.live_nodes();
    EXPECT_GT(live, 0u);
    EXPECT_GT(store.file_bytes(), 0u);
  }
  // A fresh process: replaying the log restores the index and refcounts.
  NodeStore reopened(path);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.live_nodes(), live);
  EXPECT_EQ(reopened.retained_roots(), 1u);
  Result<std::optional<Bytes>> acct =
      reopened.LookupSecure(root, Addr(5).view());
  ASSERT_TRUE(acct.ok());
  EXPECT_TRUE(acct->has_value());
  std::remove(path.c_str());
}

TEST(NodeStoreTest, TornLogTailIsTruncatedAndRecovered) {
  std::string path = TempPath("node_store_torn.log");
  Hash32 root_a;
  uint64_t durable_bytes = 0;
  size_t live_a = 0;
  {
    NodeStore store(path);
    ASSERT_TRUE(store.Open().ok());
    WorldState ws;
    ws.SetBalance(Addr(1), U256(111));
    ws.SetStorage(Addr(1), U256(1), U256(7));
    root_a = ws.StateRoot();
    ASSERT_TRUE(ws.PersistCommitted(store, 1).ok());
    ASSERT_TRUE(store.Flush().ok());
    durable_bytes = store.file_bytes();
    live_a = store.live_nodes();

    // A second block lands after the last flush...
    ws.SetBalance(Addr(2), U256(222));
    (void)ws.StateRoot();
    ASSERT_TRUE(ws.PersistCommitted(store, 2).ok());
    ASSERT_TRUE(store.Flush().ok());
  }
  // ...and the crash tears it mid-record.
  std::filesystem::resize_file(path, durable_bytes + 3);

  // Open() recovers the block-1 prefix instead of refusing the log.
  NodeStore recovered(path);
  ASSERT_TRUE(recovered.Open().ok());
  EXPECT_EQ(recovered.live_nodes(), live_a);
  EXPECT_EQ(recovered.retained_roots(), 1u);
  EXPECT_EQ(recovered.file_bytes(), durable_bytes);
  Result<std::optional<Bytes>> acct =
      recovered.LookupSecure(root_a, Addr(1).view());
  ASSERT_TRUE(acct.ok()) << acct.status().message();
  EXPECT_TRUE(acct->has_value());

  // The recovered store appends at a record boundary: new writes replay.
  WorldState ws2;
  ws2.SetBalance(Addr(9), U256(999));
  Hash32 root_c = ws2.StateRoot();
  ASSERT_TRUE(ws2.PersistCommitted(recovered, 3).ok());
  ASSERT_TRUE(recovered.Flush().ok());
  size_t live_after = recovered.live_nodes();

  NodeStore reopened(path);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.live_nodes(), live_after);
  Result<std::optional<Bytes>> later =
      reopened.LookupSecure(root_c, Addr(9).view());
  ASSERT_TRUE(later.ok());
  EXPECT_TRUE(later->has_value());
  std::remove(path.c_str());
}

TEST(NodeStoreTest, PerBlockFlushMakesMinedBlocksDurable) {
  std::string path = TempPath("node_store_flush.log");
  chain::ChainConfig config;
  config.persist_state = true;
  config.state_db_path = path;
  chain::Blockchain bc(config);
  ASSERT_NE(bc.node_store(), nullptr);

  bc.FundAccount(Addr(1), U256(1000));
  Hash32 root = bc.MineBlock().header.state_root;

  // Without closing the chain (simulating a crash: no destructor flush),
  // the mined block is already fully on disk and replayable.
  NodeStore replayed(path);
  ASSERT_TRUE(replayed.Open().ok());
  Result<std::optional<Bytes>> acct = replayed.LookupSecure(root, Addr(1).view());
  ASSERT_TRUE(acct.ok()) << acct.status().message();
  EXPECT_TRUE(acct->has_value());
  std::remove(path.c_str());
}

TEST(NodeStoreTest, CompactDropsDeadBytesAndStaysReadable) {
  std::string path = TempPath("node_store_compact.log");
  NodeStore store(path);
  ASSERT_TRUE(store.Open().ok());

  WorldState ws;
  ws.SetBalance(Addr(1), U256(1));
  Hash32 roots[6];
  for (int h = 1; h <= 5; ++h) {
    ws.SetBalance(Addr(1), U256(static_cast<uint64_t>(h * 100)));
    ws.SetStorage(Addr(1), U256(static_cast<uint64_t>(h)), U256(1));
    roots[h] = ws.StateRoot();
    ASSERT_TRUE(ws.PersistCommitted(store, static_cast<uint64_t>(h)).ok());
  }
  store.PruneBelow(5);  // keep only the newest state
  uint64_t before = store.file_bytes();
  size_t live = store.live_nodes();
  ASSERT_TRUE(store.Compact().ok());
  EXPECT_LT(store.file_bytes(), before);
  EXPECT_EQ(store.live_nodes(), live);

  // The compacted log still replays to the same live set.
  NodeStore reopened(path);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.live_nodes(), live);
  Result<std::optional<Bytes>> acct =
      reopened.LookupSecure(roots[5], Addr(1).view());
  ASSERT_TRUE(acct.ok());
  EXPECT_TRUE(acct->has_value());
  std::remove(path.c_str());
}

TEST(NodeStoreTest, BlockchainPersistsAndPrunesPerBlock) {
  chain::ChainConfig config;
  config.persist_state = true;  // empty path: in-memory node store
  config.state_history_blocks = 3;
  chain::Blockchain bc(config);
  ASSERT_NE(bc.node_store(), nullptr);

  std::vector<Hash32> roots;
  for (int i = 0; i < 8; ++i) {
    bc.FundAccount(Addr(static_cast<uint8_t>(i + 1)), U256(1000));
    roots.push_back(bc.MineBlock().header.state_root);
  }
  // Only the last `state_history_blocks` roots stay retained.
  EXPECT_LE(bc.node_store()->retained_roots(), 3u);
  EXPECT_GT(bc.node_store()->pruned_total(), 0u);

  // The newest block's state is readable from the store; a pruned one is
  // not (its exclusive nodes are gone).
  Result<std::optional<Bytes>> newest =
      bc.node_store()->LookupSecure(roots.back(), Addr(8).view());
  ASSERT_TRUE(newest.ok());
  EXPECT_TRUE(newest->has_value());
}

}  // namespace
}  // namespace onoff::storage
