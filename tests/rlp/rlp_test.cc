#include "rlp/rlp.h"

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "support/bytes.h"

namespace onoff::rlp {
namespace {

std::string EncodeHex(const Item& item) { return ToHex(Encode(item)); }

// Vectors from the Ethereum RLP specification.
TEST(RlpEncodeTest, SpecVectors) {
  // "dog" -> [0x83, 'd', 'o', 'g']
  EXPECT_EQ(EncodeHex(Item::String("dog")), "83646f67");
  // ["cat", "dog"] -> 0xc8 0x83 cat 0x83 dog
  EXPECT_EQ(EncodeHex(Item::List({Item::String("cat"), Item::String("dog")})),
            "c88363617483646f67");
  // empty string -> 0x80
  EXPECT_EQ(EncodeHex(Item::String("")), "80");
  // empty list -> 0xc0
  EXPECT_EQ(EncodeHex(Item::List({})), "c0");
  // integer 0 -> 0x80 (empty scalar)
  EXPECT_EQ(EncodeHex(Item::Scalar(uint64_t{0})), "80");
  // 0x0f -> 0x0f
  EXPECT_EQ(EncodeHex(Item::Scalar(uint64_t{15})), "0f");
  // 1024 -> 0x82 0x04 0x00
  EXPECT_EQ(EncodeHex(Item::Scalar(uint64_t{1024})), "820400");
  // set theoretical representation of three: [ [], [[]], [ [], [[]] ] ]
  Item empty = Item::List({});
  Item one = Item::List({Item::List({})});
  Item three = Item::List({empty, one, Item::List({Item::List({}), one})});
  EXPECT_EQ(EncodeHex(three), "c7c0c1c0c3c0c1c0");
  // "Lorem ipsum dolor sit amet, consectetur adipisicing elit":
  // length 56 -> long form 0xb8 0x38 ...
  EXPECT_EQ(
      EncodeHex(Item::String(
          "Lorem ipsum dolor sit amet, consectetur adipisicing elit")),
      "b8384c6f72656d20697073756d20646f6c6f722073697420616d65742c20636f6e7365"
      "637465747572206164697069736963696e6720656c6974");
}

TEST(RlpEncodeTest, SingleByteBoundary) {
  EXPECT_EQ(EncodeHex(Item::String(Bytes{0x00})), "00");
  EXPECT_EQ(EncodeHex(Item::String(Bytes{0x7f})), "7f");
  EXPECT_EQ(EncodeHex(Item::String(Bytes{0x80})), "8180");
}

TEST(RlpEncodeTest, LongList) {
  // 56-byte list payload switches to the long form (0xf8).
  std::vector<Item> items;
  for (int i = 0; i < 14; ++i) items.push_back(Item::String("abc"));
  Bytes enc = Encode(Item::List(items));
  EXPECT_EQ(enc[0], 0xf8);
  EXPECT_EQ(enc[1], 14 * 4);
}

TEST(RlpDecodeTest, RoundTripsSpecVectors) {
  std::vector<Item> cases = {
      Item::String("dog"),
      Item::String(""),
      Item::List({}),
      Item::List({Item::String("cat"), Item::String("dog")}),
      Item::Scalar(uint64_t{1024}),
      Item::String(std::string(1000, 'x')),
      Item::List({Item::List({Item::String("deep")}), Item::String("flat")}),
  };
  for (const Item& item : cases) {
    auto decoded = Decode(Encode(item));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, item);
  }
}

TEST(RlpDecodeTest, RejectsMalformed) {
  EXPECT_FALSE(Decode(Bytes{}).ok());                    // empty
  EXPECT_FALSE(Decode(Bytes{0x83, 'd', 'o'}).ok());      // truncated string
  EXPECT_FALSE(Decode(Bytes{0x81, 0x05}).ok());          // non-canonical byte
  EXPECT_FALSE(Decode(Bytes{0xb8, 0x01, 0x00}).ok());    // non-canonical len
  EXPECT_FALSE(Decode(Bytes{0xc2, 0x80}).ok());          // short list payload
  EXPECT_FALSE(Decode(Bytes{0x80, 0x00}).ok());          // trailing bytes
  EXPECT_FALSE(Decode(Bytes{0xb9}).ok());                // missing length
  EXPECT_FALSE(Decode(Bytes{0xb8, 0x38}).ok());          // truncated long str
}

TEST(RlpDecodeTest, ScalarValidation) {
  auto ok = Decode(Bytes{0x82, 0x04, 0x00});
  ASSERT_TRUE(ok.ok());
  auto v = ok->AsUint64();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 1024u);

  // Leading-zero scalar is rejected by AsScalar.
  Item padded = Item::String(Bytes{0x00, 0x01});
  EXPECT_FALSE(padded.AsScalar().ok());
  // Lists are not scalars.
  EXPECT_FALSE(Item::List({}).AsScalar().ok());
  // 33-byte strings exceed U256.
  EXPECT_FALSE(Item::String(Bytes(33, 0x01)).AsScalar().ok());
}

TEST(RlpScalarTest, U256RoundTrip) {
  U256 big = (U256(1) << 200) + U256(99);
  Bytes enc = Encode(Item::Scalar(big));
  auto dec = Decode(enc);
  ASSERT_TRUE(dec.ok());
  auto v = dec->AsScalar();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, big);
}

// Robustness: decoding arbitrary bytes must never crash or hang; it either
// round-trips or returns a clean error.
class RlpFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RlpFuzzTest, RandomBytesNeverCrash) {
  std::mt19937_64 rng(GetParam());
  for (int trial = 0; trial < 500; ++trial) {
    Bytes data(rng() % 64, 0);
    for (auto& b : data) b = static_cast<uint8_t>(rng());
    auto decoded = Decode(data);
    if (decoded.ok()) {
      // Whatever decoded must re-encode to the identical bytes (canonical).
      EXPECT_EQ(Encode(*decoded), data);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RlpFuzzTest, ::testing::Values(5u, 77u, 901u));

}  // namespace
}  // namespace onoff::rlp
