// Ablation B (on-chain half): measured gas of the n-party
// deployVerifiedInstance transaction, using contracts generated for n
// participants (n ecrecover checks + n (v,r,s) calldata triples).

#include <cstdio>
#include <string>

#include "chain/blockchain.h"
#include "contracts/betting.h"  // Ether()
#include "evm/opcodes.h"
#include "obs/export.h"
#include "onoff/split_contract.h"

using namespace onoff;
using contracts::ContractWriter;
using core::FunctionDef;
using core::SignedCopy;
using core::SplitConfig;
using secp256k1::PrivateKey;

namespace {

std::vector<FunctionDef> Functions() {
  std::vector<FunctionDef> fns;
  fns.push_back({"act()", false, [](ContractWriter& w) {
                   w.PushU(U256(1));
                   w.SStore(U256(1));
                 }});
  fns.push_back({"decide()", true, [](ContractWriter& w) {
                   w.PushU(U256(0x1234));
                   w.PushU(U256(0));
                   w.b().Op(evm::Opcode::MSTORE);
                   w.PushU(U256(0x20));
                   w.PushU(U256(0));
                   w.b().Op(evm::Opcode::SHA3);
                 }});
  return fns;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = obs::JsonPathFromArgsOrExit(
      &argc, argv, "BENCH_ablation_nparty_onchain.json");
  std::printf("=== Ablation B (measured): n-party dispute gas ===\n\n");
  std::printf("%-6s %16s %20s %22s\n", "n", "calldata bytes",
              "deployVI gas", "delta vs prev row");
  obs::Json rows = obs::Json::Array();
  uint64_t prev = 0;
  for (int n : {2, 3, 4, 6, 8, 12, 16}) {
    chain::Blockchain chain;
    std::vector<PrivateKey> keys;
    SplitConfig config;
    for (int i = 0; i < n; ++i) {
      keys.push_back(PrivateKey::FromSeed("party" + std::to_string(i)));
      chain.FundAccount(keys.back().EthAddress(), contracts::Ether(10));
      config.participants.push_back(keys.back().EthAddress());
    }
    auto split = core::SplitContract(config, Functions());
    if (!split.ok()) return 1;
    auto deploy = chain.Execute(keys[0], std::nullopt, U256(),
                                split->onchain_init, 8'000'000);
    SignedCopy copy(split->offchain_init);
    for (const auto& key : keys) copy.AddSignature(key);
    auto calldata = core::DeployVerifiedInstanceCalldata(copy, config);
    if (!calldata.ok()) return 1;
    size_t bytes = calldata->size();
    auto receipt = chain.Execute(keys[1], deploy->contract_address, U256(),
                                 *std::move(calldata), 8'000'000);
    if (!receipt.ok() || !receipt->success) {
      std::fprintf(stderr, "n=%d dispute failed\n", n);
      return 1;
    }
    char delta[32] = "-";
    if (prev != 0) {
      std::snprintf(delta, sizeof(delta), "%llu",
                    static_cast<unsigned long long>(
                        (receipt->gas_used - prev)));
    }
    std::printf("%-6d %16zu %20llu %22s\n", n, bytes,
                static_cast<unsigned long long>(receipt->gas_used), delta);
    rows.Push(obs::Json::Object()
                  .Set("participants", obs::Json::Int(n))
                  .Set("calldata_bytes", obs::Json::Uint(bytes))
                  .Set("deploy_verified_instance_gas",
                       obs::Json::Uint(receipt->gas_used)));
    prev = receipt->gas_used;
  }
  std::printf(
      "\nShape check: each additional participant adds ~7.3k gas — one\n"
      "ecrecover (3000), ~96 bytes of (v,r,s) calldata (~4k at 68/byte) and\n"
      "staging overhead — i.e. linear growth on a ~130k base, so small\n"
      "interested groups remain practical.\n");

  if (!json_path.empty()) {
    obs::Json results = obs::Json::Object();
    results.Set("rows", std::move(rows));
    Status st = obs::WriteBenchJson(json_path, "ablation_nparty_onchain",
                                    std::move(results));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
