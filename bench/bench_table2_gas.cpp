// Table II reproduction: gas cost of the dispute-resolution extra functions.
//
//   paper (Kovan, Solidity 0.4.24):
//     deployVerifiedInstance()   225082 + cost of reveal()
//     returnDisputeResolution()  37745
//
// We measure the same two transactions on the simulated chain, sweeping the
// weight of reveal() (keccak-chain iterations) to expose the "+ reveal()"
// structure: the deploy cost is an affine function of the off-chain
// contract's size, and returnDisputeResolution grows linearly with reveal()
// because the miners re-execute it.

#include <cstdio>

#include "chain/blockchain.h"
#include "contracts/betting.h"
#include "crypto/secp256k1.h"
#include "obs/export.h"

using namespace onoff;
using contracts::BettingConfig;
using contracts::Ether;
using contracts::OffchainConfig;
using secp256k1::PrivateKey;

namespace {

struct Measurement {
  uint64_t deploy_verified_instance_gas;
  uint64_t return_dispute_resolution_gas;
  size_t offchain_bytecode_bytes;
};

Measurement MeasureDispute(uint64_t reveal_iterations) {
  auto alice = PrivateKey::FromSeed("alice");
  auto bob = PrivateKey::FromSeed("bob");
  chain::Blockchain chain;
  chain.FundAccount(alice.EthAddress(), Ether(10));
  chain.FundAccount(bob.EthAddress(), Ether(10));

  uint64_t now = chain.Now();
  BettingConfig betting;
  betting.alice = alice.EthAddress();
  betting.bob = bob.EthAddress();
  betting.deposit_amount = Ether(1);
  betting.t1 = now + 100;
  betting.t2 = now + 200;
  betting.t3 = now + 300;

  OffchainConfig offchain;
  offchain.alice = alice.EthAddress();
  offchain.bob = bob.EthAddress();
  offchain.secret_alice = U256(0xa11ce);
  offchain.secret_bob = U256(0xb0b);
  offchain.reveal_iterations = reveal_iterations;

  auto onchain_init = contracts::BuildOnChainInit(betting);
  auto offchain_init = contracts::BuildOffChainInit(offchain);

  auto deploy = chain.Execute(alice, std::nullopt, U256(), *onchain_init,
                              4'000'000);
  Address onchain = deploy->contract_address;
  chain.Execute(alice, onchain, Ether(1), contracts::DepositCalldata(),
                300'000);
  chain.Execute(bob, onchain, Ether(1), contracts::DepositCalldata(), 300'000);
  chain.AdvanceTimeTo(betting.t3);  // the loser went silent

  Hash32 digest = Keccak256(*offchain_init);
  auto sig_a = secp256k1::Sign(digest, alice);
  auto sig_b = secp256k1::Sign(digest, bob);
  Bytes calldata = contracts::DeployVerifiedInstanceCalldata(
      *offchain_init, sig_a->v, sig_a->r, sig_a->s, sig_b->v, sig_b->r,
      sig_b->s);
  auto deploy_vi = chain.Execute(bob, onchain, U256(), std::move(calldata),
                                 7'000'000);
  Address instance = Address::FromWord(chain.GetStorage(
      onchain, U256(contracts::betting_slots::kDeployedAddr)));
  auto resolve =
      chain.Execute(bob, instance,
                    U256(), contracts::ReturnDisputeResolutionCalldata(onchain),
                    7'000'000);
  if (!deploy_vi->success || !resolve->success) {
    std::fprintf(stderr, "dispute path failed at iterations=%llu\n",
                 static_cast<unsigned long long>(reveal_iterations));
    std::exit(1);
  }
  return {deploy_vi->gas_used, resolve->gas_used, offchain_init->size()};
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path =
      obs::JsonPathFromArgsOrExit(&argc, argv, "BENCH_table2_gas.json");
  std::printf("=== Table II: gas cost of the dispute extra functions ===\n\n");
  std::printf("Paper reports (Kovan, Solidity 0.4.24):\n");
  std::printf("  deployVerifiedInstance()   225082 + reveal()\n");
  std::printf("  returnDisputeResolution()  37745\n\n");

  std::printf("%-12s %16s %22s %26s\n", "reveal iters", "bytecode bytes",
              "deployVerifiedInstance", "returnDisputeResolution");
  obs::Json rows = obs::Json::Array();
  Measurement base{};
  for (uint64_t iters : {0ull, 10ull, 100ull, 1000ull, 5000ull, 20000ull}) {
    Measurement m = MeasureDispute(iters);
    if (iters == 0) base = m;
    std::printf("%-12llu %16zu %22llu %26llu\n",
                static_cast<unsigned long long>(iters),
                m.offchain_bytecode_bytes,
                static_cast<unsigned long long>(
                    m.deploy_verified_instance_gas),
                static_cast<unsigned long long>(
                    m.return_dispute_resolution_gas));
    rows.Push(obs::Json::Object()
                  .Set("reveal_iterations", obs::Json::Uint(iters))
                  .Set("offchain_bytecode_bytes",
                       obs::Json::Uint(m.offchain_bytecode_bytes))
                  .Set("deploy_verified_instance_gas",
                       obs::Json::Uint(m.deploy_verified_instance_gas))
                  .Set("return_dispute_resolution_gas",
                       obs::Json::Uint(m.return_dispute_resolution_gas)));
  }

  Measurement heavy = MeasureDispute(20000);
  std::printf("\nShape checks vs. the paper:\n");
  std::printf(
      "  deployVerifiedInstance is ~constant in reveal() weight: %llu -> "
      "%llu gas (delta %lld)\n",
      static_cast<unsigned long long>(base.deploy_verified_instance_gas),
      static_cast<unsigned long long>(heavy.deploy_verified_instance_gas),
      static_cast<long long>(heavy.deploy_verified_instance_gas) -
          static_cast<long long>(base.deploy_verified_instance_gas));
  std::printf(
      "  returnDisputeResolution re-executes reveal(): %llu -> %llu gas\n",
      static_cast<unsigned long long>(base.return_dispute_resolution_gas),
      static_cast<unsigned long long>(heavy.return_dispute_resolution_gas));
  std::printf(
      "  paper's fixed deploy cost 225082 vs ours %llu for a %zu-byte "
      "off-chain contract\n",
      static_cast<unsigned long long>(base.deploy_verified_instance_gas),
      base.offchain_bytecode_bytes);
  std::printf(
      "  paper's enforce cost 37745 vs ours %llu (light reveal)\n",
      static_cast<unsigned long long>(base.return_dispute_resolution_gas));
  std::printf(
      "\nNote: the paper measured a Solidity 0.4.24 contract; our codegen\n"
      "emits leaner bytecode, so absolute numbers sit below the paper's\n"
      "while the structure (txbase + calldata + 2x ecrecover + CREATE +\n"
      "200/byte code deposit, and enforce ~ tens of k) matches.\n");

  if (!json_path.empty()) {
    obs::Json results = obs::Json::Object();
    results
        .Set("paper_reference",
             obs::Json::Object()
                 .Set("deploy_verified_instance_gas", obs::Json::Uint(225082))
                 .Set("return_dispute_resolution_gas", obs::Json::Uint(37745)))
        .Set("rows", std::move(rows));
    Status st = obs::WriteBenchJson(json_path, "table2_gas",
                                    std::move(results));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
