// Optimistic parallel execution: block-mining throughput of the serial
// executor vs the speculation-wave executor at several worker counts, on a
// conflict-free workload (every sender calls its own compute-loop contract)
// and a fully conflicting one (every sender increments the same storage
// slot, so every speculation but the first re-executes).
//
// Every parallel run re-derives the serial run's final state root and
// reports `roots_match`; speedup scales with hardware threads, so the
// `hardware_threads` field qualifies the numbers.
//
// Writes BENCH_parallel_exec.json (onoffchain-bench-v1) via --json <path>.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "chain/blockchain.h"
#include "contracts/betting.h"
#include "easm/assembler.h"
#include "obs/export.h"

using namespace onoff;

namespace {

// A compute loop (256 iterations of ADD/DUP/GT/JUMPI) ending in an SSTORE —
// enough EVM work per transaction that execution, not packing, dominates.
Bytes BuildLoopContract() {
  auto runtime = easm::Assemble(R"(
    PUSH1 0x00
    loop: JUMPDEST
    PUSH1 0x01 ADD
    DUP1 PUSH2 0x0100 GT
    PUSH @loop JUMPI
    PUSH1 0x00 SSTORE
    STOP
  )");
  if (!runtime.ok()) std::exit(1);
  auto hex_len = [&] {
    char buf[8];
    std::snprintf(buf, sizeof buf, "%04zx", runtime->size());
    return std::string(buf);
  };
  std::string init_src = "PUSH2 0x" + hex_len();
  init_src += "\nPUSH @runtime PUSH1 0x01 ADD\nPUSH1 0x00\nCODECOPY\n";
  init_src += "PUSH2 0x" + hex_len();
  init_src += " PUSH1 0x00 RETURN\nruntime: DB 0x" + ToHex(*runtime) + "\n";
  auto init = easm::Assemble(init_src);
  if (!init.ok()) std::exit(1);
  return *init;
}

struct Mode {
  const char* name;
  chain::ExecMode exec_mode;
  size_t workers;  // 0 = shared pool (hardware-sized)
};

struct RunResult {
  double wall_ms = 0;
  double tx_per_s = 0;
  Hash32 state_root{};
};

// Mines `blocks` blocks of one call per sender and times only the mining.
RunResult RunWorkload(const Mode& mode, const Bytes& init, size_t senders,
                      uint64_t blocks, bool conflicting) {
  chain::ChainConfig config;
  config.exec_mode = mode.exec_mode;
  config.exec_workers = mode.workers;
  config.max_txs_per_block = senders;
  chain::Blockchain chain(config);

  std::vector<secp256k1::PrivateKey> keys;
  std::vector<Address> contracts;
  std::vector<uint64_t> nonces(senders, 0);
  for (size_t i = 0; i < senders; ++i) {
    keys.push_back(
        secp256k1::PrivateKey::FromSeed("bench-" + std::to_string(i)));
    chain.FundAccount(keys.back().EthAddress(), contracts::Ether(1000));
  }
  for (size_t i = 0; i < senders; ++i) {
    auto deploy =
        chain.Execute(keys[i], std::nullopt, U256(), init, 500'000);
    if (!deploy.ok() || !deploy->success) std::exit(1);
    contracts.push_back(deploy->contract_address);
    nonces[i] = 1;
  }

  auto run_blocks = [&](uint64_t count) {
    for (uint64_t b = 0; b < count; ++b) {
      for (size_t i = 0; i < senders; ++i) {
        chain::Transaction tx;
        tx.nonce = nonces[i]++;
        tx.gas_price = U256(1);
        tx.gas_limit = 100'000;
        tx.to = conflicting ? contracts[0] : contracts[i];
        tx.value = U256();
        tx.Sign(keys[i]);
        auto hash = chain.SubmitTransaction(tx);
        if (!hash.ok()) std::exit(1);
      }
      if (chain.MineBlock().transactions.size() != senders) std::exit(1);
    }
  };
  run_blocks(blocks / 4 + 1);  // warmup

  auto start = std::chrono::steady_clock::now();
  run_blocks(blocks);
  auto end = std::chrono::steady_clock::now();

  RunResult r;
  r.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  double txs = static_cast<double>(blocks * senders);
  r.tx_per_s = r.wall_ms > 0 ? 1000.0 * txs / r.wall_ms : 0.0;
  r.state_root = chain.state().StateRoot();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path =
      obs::JsonPathFromArgsOrExit(&argc, argv, "BENCH_parallel_exec.json");
  uint64_t blocks = 20;
  size_t senders = 16;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--blocks") == 0) {
      blocks = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--senders") == 0) {
      senders = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }

  unsigned hw = std::thread::hardware_concurrency();
  const Mode modes[] = {
      {"serial", chain::ExecMode::kSerial, 0},
      {"parallel_2", chain::ExecMode::kParallel, 2},
      {"parallel_4", chain::ExecMode::kParallel, 4},
      {"parallel_hw", chain::ExecMode::kParallel, 0},
  };

  Bytes init = BuildLoopContract();
  std::printf(
      "=== Parallel execution: %llu blocks x %zu loop-contract txs "
      "(%u hardware threads) ===\n\n",
      static_cast<unsigned long long>(blocks), senders, hw);

  obs::Json results = obs::Json::Array();
  for (bool conflicting : {false, true}) {
    const char* workload = conflicting ? "conflicting" : "disjoint";
    std::printf("--- workload: %s ---\n", workload);
    std::printf("%-12s %8s %12s %12s %9s %6s\n", "mode", "workers",
                "wall (ms)", "tx/s", "speedup", "roots");
    double serial_tx_per_s = 0;
    Hash32 serial_root{};
    for (const Mode& mode : modes) {
      RunResult r = RunWorkload(mode, init, senders, blocks, conflicting);
      bool is_serial = mode.exec_mode == chain::ExecMode::kSerial;
      if (is_serial) {
        serial_tx_per_s = r.tx_per_s;
        serial_root = r.state_root;
      }
      double speedup =
          serial_tx_per_s > 0 ? r.tx_per_s / serial_tx_per_s : 1.0;
      bool roots_match = r.state_root == serial_root;
      std::printf("%-12s %8zu %12.1f %12.0f %8.2fx %6s\n", mode.name,
                  mode.workers, r.wall_ms, r.tx_per_s, speedup,
                  roots_match ? "ok" : "DIFF");
      results.Push(
          obs::Json::Object()
              .Set("workload", obs::Json::Str(workload))
              .Set("mode", obs::Json::Str(mode.name))
              .Set("workers", obs::Json::Num(static_cast<double>(
                                  mode.workers == 0 ? hw : mode.workers)))
              .Set("blocks", obs::Json::Num(static_cast<double>(blocks)))
              .Set("txs_per_block",
                   obs::Json::Num(static_cast<double>(senders)))
              .Set("wall_ms", obs::Json::Num(r.wall_ms))
              .Set("tx_per_s", obs::Json::Num(r.tx_per_s))
              .Set("speedup_vs_serial", obs::Json::Num(speedup))
              .Set("roots_match", obs::Json::Bool(roots_match))
              .Set("hardware_threads",
                   obs::Json::Num(static_cast<double>(hw))));
      if (!roots_match) {
        std::fprintf(stderr, "state root diverged in mode %s\n", mode.name);
        return 1;
      }
    }
    std::printf("\n");
  }

  if (!json_path.empty()) {
    Status st = obs::WriteBenchJson(json_path, "parallel_exec",
                                    std::move(results));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
