// Observability overhead: block-mining throughput of the parallel executor
// with the invariant auditor, flight recorder and time-series sampler off
// (baseline), each enabled alone, and all three together.
//
// The workload is the disjoint parallel-execution shape from
// bench_parallel_exec (every sender calls its own compute-loop contract),
// which exercises every instrumented boundary per block: pool admit, block
// start/commit audit, flight-recorder events, and a sampler tick.
//
// Gating is structural, not timed: every mode must reproduce the baseline
// state root and record zero invariant violations. The overhead percentages
// are reported for the JSON/EXPERIMENTS tables but never asserted, so noisy
// CI runners cannot flake this bench.
//
// Writes BENCH_obs_pipeline.json (onoffchain-bench-v1) via --json <path>.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "chain/blockchain.h"
#include "contracts/betting.h"
#include "easm/assembler.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"

using namespace onoff;

namespace {

// Same compute loop as bench_parallel_exec: 256 ADD/DUP/GT/JUMPI iterations
// ending in an SSTORE, so execution dominates per-tx bookkeeping.
Bytes BuildLoopContract() {
  auto runtime = easm::Assemble(R"(
    PUSH1 0x00
    loop: JUMPDEST
    PUSH1 0x01 ADD
    DUP1 PUSH2 0x0100 GT
    PUSH @loop JUMPI
    PUSH1 0x00 SSTORE
    STOP
  )");
  if (!runtime.ok()) std::exit(1);
  auto hex_len = [&] {
    char buf[8];
    std::snprintf(buf, sizeof buf, "%04zx", runtime->size());
    return std::string(buf);
  };
  std::string init_src = "PUSH2 0x" + hex_len();
  init_src += "\nPUSH @runtime PUSH1 0x01 ADD\nPUSH1 0x00\nCODECOPY\n";
  init_src += "PUSH2 0x" + hex_len();
  init_src += " PUSH1 0x00 RETURN\nruntime: DB 0x" + ToHex(*runtime) + "\n";
  auto init = easm::Assemble(init_src);
  if (!init.ok()) std::exit(1);
  return *init;
}

struct Mode {
  const char* name;
  const char* audit_invariants;  // "" = auditor off
  size_t flight_recorder_events;
  uint64_t timeseries_interval_ms;
};

struct RunResult {
  double wall_ms = 0;
  double tx_per_s = 0;
  Hash32 state_root{};
  uint64_t violations = 0;
  uint64_t flight_events = 0;
  size_t timeseries_samples = 0;
};

// Mines `blocks` blocks of one call per sender and times only the mining.
RunResult RunWorkload(const Mode& mode, const Bytes& init, size_t senders,
                      uint64_t blocks) {
  chain::ChainConfig config;
  config.exec_mode = chain::ExecMode::kParallel;
  config.max_txs_per_block = senders;
  config.audit_invariants = mode.audit_invariants;
  config.flight_recorder_events = mode.flight_recorder_events;
  config.timeseries_interval_ms = mode.timeseries_interval_ms;
  chain::Blockchain chain(config);

  std::vector<secp256k1::PrivateKey> keys;
  std::vector<Address> contracts;
  std::vector<uint64_t> nonces(senders, 0);
  for (size_t i = 0; i < senders; ++i) {
    keys.push_back(
        secp256k1::PrivateKey::FromSeed("bench-" + std::to_string(i)));
    chain.FundAccount(keys.back().EthAddress(), contracts::Ether(1000));
  }
  for (size_t i = 0; i < senders; ++i) {
    auto deploy = chain.Execute(keys[i], std::nullopt, U256(), init, 500'000);
    if (!deploy.ok() || !deploy->success) std::exit(1);
    contracts.push_back(deploy->contract_address);
    nonces[i] = 1;
  }

  auto run_blocks = [&](uint64_t count) {
    for (uint64_t b = 0; b < count; ++b) {
      for (size_t i = 0; i < senders; ++i) {
        chain::Transaction tx;
        tx.nonce = nonces[i]++;
        tx.gas_price = U256(1);
        tx.gas_limit = 100'000;
        tx.to = contracts[i];
        tx.value = U256();
        tx.Sign(keys[i]);
        auto hash = chain.SubmitTransaction(tx);
        if (!hash.ok()) std::exit(1);
      }
      if (chain.MineBlock().transactions.size() != senders) std::exit(1);
    }
  };
  run_blocks(blocks / 4 + 1);  // warmup

  auto start = std::chrono::steady_clock::now();
  run_blocks(blocks);
  auto end = std::chrono::steady_clock::now();

  RunResult r;
  r.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  double txs = static_cast<double>(blocks * senders);
  r.tx_per_s = r.wall_ms > 0 ? 1000.0 * txs / r.wall_ms : 0.0;
  r.state_root = chain.state().StateRoot();
  if (chain.auditor() != nullptr) r.violations = chain.auditor()->violations();
  if (obs::FlightRecorder* rec = obs::FlightRecorder::Global()) {
    r.flight_events = rec->events_recorded();
  }
  if (chain.timeseries() != nullptr) {
    r.timeseries_samples = chain.timeseries()->samples();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path =
      obs::JsonPathFromArgsOrExit(&argc, argv, "BENCH_obs_pipeline.json");
  uint64_t blocks = 16;
  size_t senders = 16;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--blocks") == 0) {
      blocks = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--senders") == 0) {
      senders = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }

  // The sampler interval is 0 everywhere except the sampler modes; 1ms makes
  // it fire on essentially every block so the bench measures its worst case.
  const Mode modes[] = {
      {"baseline", "", 0, 0},
      {"auditor", "all", 0, 0},
      {"recorder", "", 4096, 0},
      {"sampler", "", 0, 1},
      {"all", "all", 4096, 1},
  };

  Bytes init = BuildLoopContract();
  std::printf(
      "=== Observability overhead: %" PRIu64
      " parallel blocks x %zu loop-contract txs ===\n\n",
      blocks, senders);
  std::printf("%-10s %12s %12s %10s %7s %6s\n", "mode", "wall (ms)", "tx/s",
              "overhead", "events", "roots");

  obs::Json results = obs::Json::Array();
  double baseline_tx_per_s = 0;
  Hash32 baseline_root{};
  bool ok = true;
  for (const Mode& mode : modes) {
    RunResult r = RunWorkload(mode, init, senders, blocks);
    bool is_baseline = std::strcmp(mode.name, "baseline") == 0;
    if (is_baseline) {
      baseline_tx_per_s = r.tx_per_s;
      baseline_root = r.state_root;
    }
    // Overhead relative to the uninstrumented run; negative values are run
    // noise and read as ~0.
    double overhead_pct =
        baseline_tx_per_s > 0 && r.tx_per_s > 0
            ? (baseline_tx_per_s / r.tx_per_s - 1.0) * 100.0
            : 0.0;
    bool roots_match = r.state_root == baseline_root;
    std::printf("%-10s %12.1f %12.0f %9.2f%% %7" PRIu64 " %6s\n", mode.name,
                r.wall_ms, r.tx_per_s, overhead_pct, r.flight_events,
                roots_match ? "ok" : "DIFF");
    results.Push(
        obs::Json::Object()
            .Set("mode", obs::Json::Str(mode.name))
            .Set("blocks", obs::Json::Uint(blocks))
            .Set("txs_per_block", obs::Json::Uint(senders))
            .Set("wall_ms", obs::Json::Num(r.wall_ms))
            .Set("tx_per_s", obs::Json::Num(r.tx_per_s))
            .Set("overhead_pct", obs::Json::Num(overhead_pct))
            .Set("audit_violations", obs::Json::Uint(r.violations))
            .Set("flight_events", obs::Json::Uint(r.flight_events))
            .Set("timeseries_samples",
                 obs::Json::Uint(r.timeseries_samples))
            .Set("roots_match", obs::Json::Bool(roots_match)));
    if (!roots_match) {
      std::fprintf(stderr, "state root diverged in mode %s\n", mode.name);
      ok = false;
    }
    if (r.violations != 0) {
      std::fprintf(stderr, "mode %s reported %" PRIu64 " violations\n",
                   mode.name, r.violations);
      ok = false;
    }
  }
  std::printf(
      "\nAll modes must reproduce the baseline state root with zero\n"
      "violations; overhead is informational (target: 'all' within ~5%%\n"
      "on a quiet machine) and never asserted.\n");

  if (!json_path.empty()) {
    Status st =
        obs::WriteBenchJson(json_path, "obs_pipeline", std::move(results));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return ok ? 0 : 1;
}
