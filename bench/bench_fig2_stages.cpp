// Fig. 2 reproduction: the four-stage enforcement mechanism
// (split/generate -> deploy/sign -> submit/challenge -> dispute/resolve).
//
// Runs the betting protocol under every behaviour profile the mechanism is
// designed around and prints the per-stage cost table: miner gas, on-chain
// bytes, transaction count and off-chain message traffic. The dispute
// stages are only exercised when a dishonest participant forces them —
// exactly the conditional flow the figure illustrates.

#include <cstdio>

#include "obs/export.h"
#include "onoff/protocol.h"

using namespace onoff;
using core::Behavior;
using core::BettingProtocol;
using core::MessageBus;
using core::ProtocolReport;
using core::Stage;

namespace {

ProtocolReport Run(Behavior alice_behavior, Behavior bob_behavior) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  auto bob = secp256k1::PrivateKey::FromSeed("bob");
  chain::Blockchain chain;
  chain.FundAccount(alice.EthAddress(), contracts::Ether(10));
  chain.FundAccount(bob.EthAddress(), contracts::Ether(10));
  MessageBus bus;
  contracts::OffchainConfig offchain;
  offchain.secret_alice = U256(0xa11ce);
  offchain.secret_bob = U256(0xb0b);
  offchain.reveal_iterations = 200;
  BettingProtocol protocol(&chain, &bus, alice, bob, offchain,
                           contracts::Ether(1));
  auto report = protocol.Run(alice_behavior, bob_behavior);
  if (!report.ok()) {
    std::fprintf(stderr, "protocol failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  return *report;
}

obs::Json ScenarioJson(const char* title, const ProtocolReport& report) {
  obs::Json stages = obs::Json::Array();
  for (int i = 0; i < core::kNumStages; ++i) {
    const auto& s = report.stages[i];
    stages.Push(obs::Json::Object()
                    .Set("stage", obs::Json::Str(
                                      core::StageName(static_cast<Stage>(i))))
                    .Set("gas_used", obs::Json::Uint(s.gas_used))
                    .Set("onchain_bytes", obs::Json::Uint(s.onchain_bytes))
                    .Set("transactions",
                         obs::Json::Int(s.transactions))
                    .Set("offchain_messages",
                         obs::Json::Uint(s.offchain_messages))
                    .Set("offchain_bytes",
                         obs::Json::Uint(s.offchain_bytes)));
  }
  return obs::Json::Object()
      .Set("scenario", obs::Json::Str(title))
      .Set("settlement",
           obs::Json::Str(core::SettlementName(report.settlement)))
      .Set("correct_payout", obs::Json::Bool(report.correct_payout))
      .Set("private_bytes_revealed",
           obs::Json::Uint(report.private_bytes_revealed))
      .Set("total_gas", obs::Json::Uint(report.TotalGas()))
      .Set("total_onchain_bytes", obs::Json::Uint(report.TotalOnchainBytes()))
      .Set("stages", std::move(stages));
}

void PrintScenario(const char* title, const ProtocolReport& report) {
  std::printf("\n--- %s ---\n", title);
  std::printf("settlement: %s | correct payout: %s | private bytes revealed: "
              "%zu\n",
              core::SettlementName(report.settlement),
              report.correct_payout ? "yes" : "NO",
              report.private_bytes_revealed);
  std::printf("%-18s %12s %10s %6s %9s %10s\n", "stage", "miner gas",
              "on-bytes", "txs", "off-msgs", "off-bytes");
  for (int i = 0; i < core::kNumStages; ++i) {
    const auto& s = report.stages[i];
    std::printf("%-18s %12llu %10zu %6d %9zu %10zu\n",
                core::StageName(static_cast<Stage>(i)),
                static_cast<unsigned long long>(s.gas_used), s.onchain_bytes,
                s.transactions, s.offchain_messages, s.offchain_bytes);
  }
  std::printf("%-18s %12llu %10zu\n", "TOTAL",
              static_cast<unsigned long long>(report.TotalGas()),
              report.TotalOnchainBytes());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path =
      obs::JsonPathFromArgsOrExit(&argc, argv, "BENCH_fig2_stages.json");
  std::printf("=== Fig. 2: the four-stage on/off-chain mechanism ===\n");

  obs::Json scenarios = obs::Json::Array();
  auto scenario = [&scenarios](const char* title, const ProtocolReport& r) {
    PrintScenario(title, r);
    scenarios.Push(ScenarioJson(title, r));
  };

  Behavior honest;
  scenario("all honest (optimistic settlement)", Run(honest, honest));

  Behavior silent_loser;
  silent_loser.admit_loss = false;
  scenario("dishonest loser goes silent (dispute/resolve executes)",
           Run(silent_loser, silent_loser));

  Behavior no_deposit;
  no_deposit.make_deposit = false;
  scenario("a participant never deposits (refund round)",
           Run(honest, no_deposit));

  Behavior no_sign;
  no_sign.sign_offchain_copy = false;
  scenario("a participant refuses to sign (abort before deposits)",
           Run(honest, no_sign));

  std::printf(
      "\nShape check: stages 1-3 cost the same in every scenario; the\n"
      "dispute/resolve stage only consumes gas when dishonesty forces it,\n"
      "and aborts/refunds leave participants whole minus gas — the\n"
      "incentive structure of Fig. 2.\n");

  if (!json_path.empty()) {
    obs::Json results = obs::Json::Object();
    results.Set("scenarios", std::move(scenarios));
    Status st = obs::WriteBenchJson(json_path, "fig2_stages",
                                    std::move(results));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
