// Fig. 1 reproduction: all-on-chain vs hybrid-on/off-chain execution model.
//
// The figure contrasts the two models on a contract with light functions
// (f1, f3, f5 / c1, c3, c5) and heavy functions (f2, f4 / c2, c4, c6): under
// the hybrid model miners only execute the light functions plus cheap result
// submissions, while participants run the heavy ones privately.
//
// We generate synthetic contracts with n light + m heavy functions, run the
// same workload under both models, and report miner gas, transaction counts
// and bytes that reached the chain — swept over (a) the per-function heavy
// cost and (b) the number of heavy functions.

#include <cstdio>

#include "chain/blockchain.h"
#include "contracts/betting.h"  // Ether()
#include "contracts/synthetic.h"
#include "crypto/secp256k1.h"
#include "obs/export.h"

using namespace onoff;
using contracts::Ether;
using contracts::SyntheticConfig;
using secp256k1::PrivateKey;

namespace {

struct ModelCost {
  uint64_t miner_gas = 0;   // gas actually executed by miners
  int transactions = 0;
  size_t onchain_bytes = 0;  // calldata + deployed code
};

// Runs every function once under the all-on-chain model.
ModelCost RunWhole(const SyntheticConfig& cfg) {
  auto user = PrivateKey::FromSeed("user");
  chain::Blockchain chain;
  chain.FundAccount(user.EthAddress(), Ether(1000));
  ModelCost cost;

  auto init = contracts::BuildWholeInit(cfg);
  auto deploy = chain.Execute(user, std::nullopt, U256(), *init, 8'000'000);
  cost.miner_gas += deploy->gas_used;
  cost.transactions += 1;
  cost.onchain_bytes +=
      init->size() + chain.GetCode(deploy->contract_address).size();
  Address contract = deploy->contract_address;

  for (int i = 0; i < cfg.num_light; ++i) {
    Bytes data = contracts::LightCalldata(i);
    cost.onchain_bytes += data.size();
    auto r = chain.Execute(user, contract, U256(), std::move(data), 8'000'000);
    cost.miner_gas += r->gas_used;
    cost.transactions += 1;
  }
  for (int i = 0; i < cfg.num_heavy; ++i) {
    Bytes data = contracts::HeavyCalldata(i);
    cost.onchain_bytes += data.size();
    auto r = chain.Execute(user, contract, U256(), std::move(data), 8'000'000);
    if (!r->success) {
      std::fprintf(stderr, "heavy function ran out of block gas\n");
      std::exit(1);
    }
    cost.miner_gas += r->gas_used;
    cost.transactions += 1;
  }
  return cost;
}

// Runs the same workload under the hybrid model: heavy functions execute on
// the participant's local EVM; only submitResult() transactions go on-chain.
ModelCost RunHybrid(const SyntheticConfig& cfg) {
  auto user = PrivateKey::FromSeed("user");
  chain::Blockchain chain;
  chain.FundAccount(user.EthAddress(), Ether(1000));
  ModelCost cost;

  auto init = contracts::BuildHybridOnChainInit(cfg);
  auto deploy = chain.Execute(user, std::nullopt, U256(), *init, 8'000'000);
  cost.miner_gas += deploy->gas_used;
  cost.transactions += 1;
  cost.onchain_bytes +=
      init->size() + chain.GetCode(deploy->contract_address).size();
  Address contract = deploy->contract_address;

  for (int i = 0; i < cfg.num_light; ++i) {
    Bytes data = contracts::LightCalldata(i);
    cost.onchain_bytes += data.size();
    auto r = chain.Execute(user, contract, U256(), std::move(data), 8'000'000);
    cost.miner_gas += r->gas_used;
    cost.transactions += 1;
  }

  // Off-chain: a private local chain that miners never see.
  chain::Blockchain local;
  local.FundAccount(user.EthAddress(), Ether(10));
  auto offchain_init = contracts::BuildHybridOffChainInit(cfg);
  auto local_deploy =
      local.Execute(user, std::nullopt, U256(), *offchain_init, 8'000'000);
  for (int i = 0; i < cfg.num_heavy; ++i) {
    auto res = local.CallReadOnly(user.EthAddress(),
                                  local_deploy->contract_address,
                                  contracts::HeavyCalldata(i));
    U256 result = U256::FromBigEndianTruncating(res.output);
    Bytes data = contracts::SubmitResultCalldata(i, result);
    cost.onchain_bytes += data.size();
    auto r = chain.Execute(user, contract, U256(), std::move(data), 8'000'000);
    cost.miner_gas += r->gas_used;
    cost.transactions += 1;
  }
  return cost;
}

void PrintRow(const char* label, const ModelCost& whole,
              const ModelCost& hybrid) {
  double ratio = static_cast<double>(whole.miner_gas) /
                 static_cast<double>(hybrid.miner_gas);
  std::printf("%-22s %12llu %12llu %7.2fx %8d/%-8d %9zu/%-9zu\n", label,
              static_cast<unsigned long long>(whole.miner_gas),
              static_cast<unsigned long long>(hybrid.miner_gas), ratio,
              whole.transactions, hybrid.transactions, whole.onchain_bytes,
              hybrid.onchain_bytes);
}

obs::Json ModelJson(const ModelCost& cost) {
  return obs::Json::Object()
      .Set("miner_gas", obs::Json::Uint(cost.miner_gas))
      .Set("transactions", obs::Json::Int(cost.transactions))
      .Set("onchain_bytes", obs::Json::Uint(cost.onchain_bytes));
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path =
      obs::JsonPathFromArgsOrExit(&argc, argv, "BENCH_fig1_models.json");
  std::printf(
      "=== Fig. 1: all-on-chain vs hybrid-on/off-chain execution model ===\n\n");
  std::printf("Workload: deploy + call every function once.\n\n");

  std::printf("--- sweep A: heavy cost per function (3 light + 3 heavy) ---\n");
  std::printf("%-22s %12s %12s %8s %17s %19s\n", "heavy keccak iters",
              "whole gas", "hybrid gas", "ratio", "txs (w/h)", "bytes (w/h)");
  obs::Json sweep_a = obs::Json::Array();
  for (uint64_t iters : {10ull, 100ull, 1000ull, 10000ull, 50000ull}) {
    SyntheticConfig cfg;
    cfg.num_light = 3;
    cfg.num_heavy = 3;
    cfg.heavy_iterations = iters;
    char label[32];
    std::snprintf(label, sizeof(label), "%llu",
                  static_cast<unsigned long long>(iters));
    ModelCost whole = RunWhole(cfg);
    ModelCost hybrid = RunHybrid(cfg);
    PrintRow(label, whole, hybrid);
    sweep_a.Push(obs::Json::Object()
                     .Set("heavy_iterations", obs::Json::Uint(iters))
                     .Set("whole", ModelJson(whole))
                     .Set("hybrid", ModelJson(hybrid)));
  }

  std::printf("\n--- sweep B: number of heavy functions (3 light, 5000 "
              "iters each) ---\n");
  std::printf("%-22s %12s %12s %8s %17s %19s\n", "# heavy functions",
              "whole gas", "hybrid gas", "ratio", "txs (w/h)", "bytes (w/h)");
  obs::Json sweep_b = obs::Json::Array();
  for (int heavy : {1, 2, 4, 8}) {
    SyntheticConfig cfg;
    cfg.num_light = 3;
    cfg.num_heavy = heavy;
    cfg.heavy_iterations = 5000;
    char label[32];
    std::snprintf(label, sizeof(label), "%d", heavy);
    ModelCost whole = RunWhole(cfg);
    ModelCost hybrid = RunHybrid(cfg);
    PrintRow(label, whole, hybrid);
    sweep_b.Push(obs::Json::Object()
                     .Set("num_heavy", obs::Json::Int(heavy))
                     .Set("whole", ModelJson(whole))
                     .Set("hybrid", ModelJson(hybrid)));
  }

  std::printf(
      "\nShape check: hybrid miner gas is flat in the heavy cost (miners\n"
      "never execute f2/f4...), so the whole/hybrid ratio grows with the\n"
      "weight and count of heavy functions — the Fig. 1 story.\n");

  if (!json_path.empty()) {
    obs::Json results = obs::Json::Object();
    results.Set("sweep_heavy_cost", std::move(sweep_a))
        .Set("sweep_heavy_count", std::move(sweep_b));
    Status st = obs::WriteBenchJson(json_path, "fig1_models",
                                    std::move(results));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
