// Substrate microbenchmarks (google-benchmark): the primitives every
// protocol run leans on — keccak, SHA-256, secp256k1 sign/verify/recover,
// RLP, trie roots, EVM interpretation and end-to-end chain transactions.

#include <benchmark/benchmark.h>

#include <string>

#include "chain/blockchain.h"
#include "obs/export.h"
#include "contracts/betting.h"
#include "crypto/keccak.h"
#include "crypto/secp256k1.h"
#include "crypto/sha256.h"
#include "easm/assembler.h"
#include "onoff/signed_copy.h"
#include "evm/evm.h"
#include "rlp/rlp.h"
#include "state/world_state.h"
#include "trie/trie.h"

namespace onoff {
namespace {

void BM_Keccak256(benchmark::State& state) {
  Bytes data(state.range(0), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Keccak256(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Keccak256)->Arg(32)->Arg(1024)->Arg(65536);

void BM_Sha256(benchmark::State& state) {
  Bytes data(state.range(0), 0xcd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(32)->Arg(1024)->Arg(65536);

void BM_EcdsaSign(benchmark::State& state) {
  auto key = secp256k1::PrivateKey::FromSeed("bench");
  Hash32 digest = Keccak256(BytesOf("payload"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(secp256k1::Sign(digest, key));
  }
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  auto key = secp256k1::PrivateKey::FromSeed("bench");
  Hash32 digest = Keccak256(BytesOf("payload"));
  auto sig = secp256k1::Sign(digest, key);
  auto pub = key.PublicKey();
  for (auto _ : state) {
    benchmark::DoNotOptimize(secp256k1::Verify(digest, *sig, pub));
  }
}
BENCHMARK(BM_EcdsaVerify);

void BM_EcdsaRecover(benchmark::State& state) {
  auto key = secp256k1::PrivateKey::FromSeed("bench");
  Hash32 digest = Keccak256(BytesOf("payload"));
  auto sig = secp256k1::Sign(digest, key);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        secp256k1::RecoverAddress(digest, sig->v, sig->r, sig->s));
  }
}
BENCHMARK(BM_EcdsaRecover);

void BM_RlpEncodeTx(benchmark::State& state) {
  chain::Transaction tx;
  tx.nonce = 42;
  tx.gas_price = U256(20);
  tx.gas_limit = 100'000;
  tx.to = Address();
  tx.data = Bytes(200, 0x60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tx.Encode());
  }
}
BENCHMARK(BM_RlpEncodeTx);

void BM_TrieRoot(benchmark::State& state) {
  for (auto _ : state) {
    trie::SecureTrie trie;
    for (int i = 0; i < state.range(0); ++i) {
      Bytes key = U256(static_cast<uint64_t>(i)).ToBytes();
      trie.Put(key, BytesOf("value" + std::to_string(i)));
    }
    benchmark::DoNotOptimize(trie.RootHash());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrieRoot)->Arg(16)->Arg(128)->Arg(1024);

void BM_EvmKeccakLoop(benchmark::State& state) {
  // Interpreter throughput on the reveal()-style keccak chain.
  state::WorldState world;
  Address contract = Address::FromWord(U256(0xcc));
  auto code = easm::Assemble(R"(
    PUSH1 0x00 PUSH1 0x00 MSTORE
    PUSH2 0x03e8          ; n = 1000
    loop:
    DUP1 ISZERO PUSH @end JUMPI
    PUSH1 1 SWAP1 SUB
    PUSH1 0x20 PUSH1 0x00 SHA3
    PUSH1 0x00 MSTORE
    PUSH @loop JUMP
    end:
    STOP
  )");
  world.SetCode(contract, *code);
  evm::BlockContext block;
  evm::TxContext tx;
  for (auto _ : state) {
    evm::Evm evm(&world, block, tx);
    evm::CallMessage msg;
    msg.caller = Address::FromWord(U256(0xaa));
    msg.to = contract;
    msg.gas = 10'000'000;
    auto res = evm.Call(msg);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations() * 1000);  // keccaks
}
BENCHMARK(BM_EvmKeccakLoop);

void BM_ChainTransfer(benchmark::State& state) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  auto bob = secp256k1::PrivateKey::FromSeed("bob");
  chain::Blockchain chain;
  chain.FundAccount(alice.EthAddress(), contracts::Ether(1000000));
  for (auto _ : state) {
    auto receipt =
        chain.Execute(alice, bob.EthAddress(), U256(1), {}, 21'000);
    benchmark::DoNotOptimize(receipt);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChainTransfer);

void BM_SignedCopyRoundTrip(benchmark::State& state) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  auto bob = secp256k1::PrivateKey::FromSeed("bob");
  Bytes bytecode(600, 0xab);
  for (auto _ : state) {
    core::SignedCopy copy(bytecode);
    // Filler bytes, not real bytecode: keep the audit out of the timing.
    copy.set_audit_enabled(false);
    copy.AddSignature(alice);
    copy.AddSignature(bob);
    auto st =
        copy.VerifyComplete({alice.EthAddress(), bob.EthAddress()});
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_SignedCopyRoundTrip);

}  // namespace
}  // namespace onoff

int main(int argc, char** argv) {
  // Strip our --json/--metrics-json flag before google-benchmark parses the
  // remaining arguments (it rejects flags it does not recognise).
  std::string json_path =
      onoff::obs::JsonPathFromArgsOrExit(&argc, argv, "BENCH_substrate.json");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (!json_path.empty()) {
    onoff::obs::Json results = onoff::obs::Json::Object();
    results.Set("note",
                onoff::obs::Json::Str(
                    "timing series are printed by google-benchmark; rerun "
                    "with --benchmark_format=json for raw timings"));
    onoff::Status st = onoff::obs::WriteBenchJson(json_path, "substrate",
                                                  std::move(results));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
