// Simulated-network experiment: dispute-resolution success rate as a
// function of the challenge period under latency, loss and partitions.
//
// The paper's dispute path assumes the winner's deployVerifiedInstance and
// returnDisputeResolution transactions always reach the chain "in time".
// This bench makes that liveness assumption a measured quantity: a
// dishonest loser goes silent, the winner must win the race between the
// network and the challenge period. Every run is driven by the
// deterministic simulator (src/sim/), so identical --sim-seed values
// reproduce identical tables and identical JSON, byte for byte (run with
// ONOFF_METRICS=0 so the JSON carries no host-stamped metrics section).
//
// Flags: --sim-seed N, --trials N, --json PATH, and optionally
// --sim-latency-ms N / --sim-loss P to pin a single sweep point.

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "chain/blockchain.h"
#include "contracts/betting.h"
#include "obs/export.h"
#include "onoff/protocol.h"
#include "sim/flags.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/transport.h"

using namespace onoff;
using core::Behavior;
using core::BettingProtocol;
using core::MessageBus;
using core::Settlement;

namespace {

// Derives a unique deterministic seed per (cell, trial) from the base seed.
uint64_t TrialSeed(uint64_t base, uint64_t challenge_ms, uint64_t latency_ms,
                   uint64_t loss_permille, uint64_t trial) {
  uint64_t state = base;
  (void)sim::SplitMix64(&state);
  state ^= challenge_ms * 0x9e3779b97f4a7c15ULL;
  (void)sim::SplitMix64(&state);
  state ^= latency_ms * 0xbf58476d1ce4e5b9ULL;
  (void)sim::SplitMix64(&state);
  state ^= loss_permille * 0x94d049bb133111ebULL;
  (void)sim::SplitMix64(&state);
  state ^= trial;
  return sim::SplitMix64(&state);
}

struct TrialOutcome {
  bool resolved = false;  // settlement == kDisputed with the correct payout
  uint64_t dispute_ms = 0;
  uint64_t dropped = 0;  // transport drops, all causes
  uint64_t violations = 0;  // invariant violations (any nonzero is a bug)
};

// Invariant violations across every trial in the process; the JSON carries
// this as a structural gate (it must be 0 on a healthy build).
uint64_t g_audit_violations = 0;

// One protocol run with a dishonest loser: the winner must push the two
// dispute transactions through the configured network inside the challenge
// period. Latency/loss apply to the participant->chain links only (the
// off-chain bus stays clean, so every run reaches the dispute stage).
TrialOutcome RunDisputeTrial(uint64_t seed, uint64_t latency_ms,
                             uint64_t jitter_ms, double loss,
                             uint64_t challenge_ms,
                             uint64_t partition_start_ms = 0,
                             uint64_t partition_heal_ms = 0) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  auto bob = secp256k1::PrivateKey::FromSeed("bob");
  // The adversarial-soak posture: every trial runs fully audited, with the
  // flight recorder armed and the registry sampled on the virtual clock.
  // All three are deterministic (and the sampler is a no-op under
  // ONOFF_METRICS=0, keeping the exported JSON byte-stable per seed).
  chain::ChainConfig chain_config;
  chain_config.audit_invariants = "all";
  chain_config.flight_recorder_events = 1024;
  chain_config.timeseries_interval_ms = 250;
  chain::Blockchain chain(chain_config);
  chain.FundAccount(alice.EthAddress(), contracts::Ether(10));
  chain.FundAccount(bob.EthAddress(), contracts::Ether(10));
  MessageBus bus;
  contracts::OffchainConfig offchain;
  offchain.secret_alice = U256(0xa11ce);
  offchain.secret_bob = U256(0xb0b);
  offchain.reveal_iterations = 20;

  sim::Scheduler sched;
  sim::SimTransport transport(&sched, seed);
  sim::LinkConfig cfg;
  cfg.latency_ms = latency_ms;
  cfg.jitter_ms = jitter_ms;
  cfg.loss = loss;
  transport.SetLink(alice.EthAddress().ToHex(), "chain", cfg);
  transport.SetLink(bob.EthAddress().ToHex(), "chain", cfg);
  if (partition_heal_ms > partition_start_ms) {
    transport.SchedulePartition(partition_start_ms, {"chain"},
                                partition_heal_ms);
  }

  core::ProtocolTiming timing;
  timing.challenge_period_ms = challenge_ms;
  BettingProtocol protocol(&chain, &bus, alice, bob, offchain,
                           contracts::Ether(1), timing);
  protocol.BindSimulation(&sched, &transport);
  Behavior dishonest;
  dishonest.admit_loss = false;
  auto report = protocol.Run(dishonest, dishonest);
  TrialOutcome out;
  out.dropped = transport.stats().dropped_total();
  out.violations = chain.auditor() != nullptr ? chain.auditor()->violations()
                                              : 0;
  g_audit_violations += out.violations;
  if (!report.ok()) return out;  // counted as unresolved
  out.resolved =
      report->settlement == Settlement::kDisputed && report->correct_payout;
  out.dispute_ms = report->dispute_ms;
  return out;
}

struct Cell {
  uint64_t challenge_ms;
  uint64_t latency_ms;
  uint64_t jitter_ms;
  double loss;
  uint64_t trials;
  uint64_t resolved = 0;
  uint64_t dropped = 0;
  double mean_dispute_ms = 0;

  double success_rate() const {
    return trials > 0 ? static_cast<double>(resolved) / trials : 0;
  }
};

Cell RunCell(uint64_t base_seed, uint64_t challenge_ms, uint64_t latency_ms,
             double loss, uint64_t trials) {
  Cell cell;
  cell.challenge_ms = challenge_ms;
  cell.latency_ms = latency_ms;
  cell.jitter_ms = latency_ms / 4;
  cell.loss = loss;
  cell.trials = trials;
  uint64_t dispute_ms_sum = 0;
  for (uint64_t t = 0; t < trials; ++t) {
    uint64_t seed = TrialSeed(base_seed, challenge_ms, latency_ms,
                              static_cast<uint64_t>(loss * 1000), t);
    TrialOutcome out = RunDisputeTrial(seed, latency_ms, cell.jitter_ms, loss,
                                       challenge_ms);
    cell.dropped += out.dropped;
    if (out.resolved) {
      ++cell.resolved;
      dispute_ms_sum += out.dispute_ms;
    }
  }
  cell.mean_dispute_ms =
      cell.resolved > 0 ? static_cast<double>(dispute_ms_sum) / cell.resolved
                        : 0;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path =
      obs::JsonPathFromArgsOrExit(&argc, argv, "BENCH_sim_dispute_latency.json");
  // Pin a single sweep point when given explicitly (sentinel defaults).
  uint64_t only_latency = sim::U64FlagFromArgs(&argc, argv, "sim-latency-ms", 0);
  double only_loss = sim::DoubleFlagFromArgs(&argc, argv, "sim-loss", -1.0);
  sim::SimFlags flags = sim::SimFlagsFromArgs(&argc, argv);

  std::vector<uint64_t> challenges = {250, 1000, 4000, 8000};
  std::vector<uint64_t> latencies = {10, 125, 500, 2000, 4000};
  std::vector<double> losses = {0.0, 0.1, 0.3};
  if (only_latency > 0) latencies = {only_latency};
  if (only_loss >= 0) losses = {only_loss};

  std::printf(
      "=== Simulated network: dispute success vs challenge period ===\n"
      "seed=%" PRIu64 " trials=%" PRIu64
      " per cell; jitter = latency/4; a dishonest loser goes silent and the\n"
      "winner races the challenge period with retransmission every %ums.\n",
      flags.seed, flags.trials, 250u);

  obs::Json rows = obs::Json::Array();
  for (double loss : losses) {
    std::printf("\n-- loss %.0f%% --\n", loss * 100);
    std::printf("%-16s", "latency (ms)");
    for (uint64_t c : challenges) {
      std::printf("  cp=%-6" PRIu64, c);
    }
    std::printf("  %s\n", "mean resolve ms (cp=max)");
    for (uint64_t latency : latencies) {
      std::printf("%-16" PRIu64, latency);
      double last_mean = 0;
      for (uint64_t challenge : challenges) {
        Cell cell = RunCell(flags.seed, challenge, latency, loss, flags.trials);
        std::printf("  %-9.2f", cell.success_rate());
        last_mean = cell.mean_dispute_ms;
        rows.Push(obs::Json::Object()
                      .Set("challenge_period_ms", obs::Json::Uint(challenge))
                      .Set("latency_ms", obs::Json::Uint(latency))
                      .Set("jitter_ms", obs::Json::Uint(cell.jitter_ms))
                      .Set("loss", obs::Json::Num(loss))
                      .Set("trials", obs::Json::Uint(cell.trials))
                      .Set("resolved", obs::Json::Uint(cell.resolved))
                      .Set("success_rate", obs::Json::Num(cell.success_rate()))
                      .Set("mean_dispute_ms",
                           obs::Json::Num(cell.mean_dispute_ms))
                      .Set("transport_drops", obs::Json::Uint(cell.dropped)));
      }
      std::printf("  %.0f\n", last_mean);
    }
  }

  // Partition sweep: the chain is unreachable from T3-1s until `past_t3`
  // ms after T3; the challenge period is 8s. Deterministic (no loss/jitter):
  // resolution succeeds iff the heal leaves enough window for two RTTs.
  std::printf(
      "\n-- partition across T3 (cp=8000ms, latency=50ms, loss=0) --\n");
  std::printf("%-24s %-10s %s\n", "partition past T3 (ms)", "resolved",
              "dispute ms");
  obs::Json partition_rows = obs::Json::Array();
  for (uint64_t past_t3 : {0ull, 2000ull, 4000ull, 6000ull, 7900ull,
                           12000ull}) {
    // T3 sits at virtual 300'000ms (t3_offset 300s).
    TrialOutcome out =
        RunDisputeTrial(flags.seed, 50, 0, 0.0, /*challenge_ms=*/8000,
                        /*partition_start_ms=*/299'000,
                        /*partition_heal_ms=*/300'000 + past_t3);
    std::printf("%-24" PRIu64 " %-10s %" PRIu64 "\n", past_t3,
                out.resolved ? "yes" : "no", out.dispute_ms);
    partition_rows.Push(
        obs::Json::Object()
            .Set("partition_past_t3_ms", obs::Json::Uint(past_t3))
            .Set("resolved", obs::Json::Uint(out.resolved ? 1 : 0))
            .Set("dispute_ms", obs::Json::Uint(out.dispute_ms)));
  }

  std::printf(
      "\nSuccess degrades as the one-way delay (latency + jitter, plus\n"
      "retransmission over loss) approaches half the challenge period —\n"
      "two transactions must land — and collapses to 0 when a partition\n"
      "outlives the window. The paper's liveness assumption holds only\n"
      "where this table reads 1.00.\n");

  std::printf("audit: %" PRIu64 " invariant violations across all trials\n",
              g_audit_violations);

  if (!json_path.empty()) {
    obs::Json results = obs::Json::Object();
    results.Set("seed", obs::Json::Uint(flags.seed))
        .Set("trials", obs::Json::Uint(flags.trials))
        .Set("audit_violations", obs::Json::Uint(g_audit_violations))
        .Set("rows", std::move(rows))
        .Set("partition_sweep", std::move(partition_rows));
    Status st = obs::WriteBenchJson(json_path, "sim_dispute_latency",
                                    std::move(results));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
