// Ablation B: scaling the signed-copy machinery with the number of
// participants n ("executed by only the interested participants" — the
// paper's 2-party example generalizes to small groups).
//
// Measures, as n grows:
//   * native signing cost (each participant signs keccak256(bytecode) once),
//   * native verification cost (each participant verifies all n signatures
//     before depositing),
//   * the serialized signed-copy size exchanged over the Whisper-like bus,
//   * the projected on-chain verification gas for deployVerifiedInstance
//     (n ecrecover calls + n*(v,r,s) calldata words), anchored to the
//     measured 2-party dispute transaction.

#include <chrono>
#include <cstdio>

#include "evm/gas.h"
#include "obs/export.h"
#include "onoff/signed_copy.h"

using namespace onoff;
using core::SignedCopy;
using secp256k1::PrivateKey;

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path =
      obs::JsonPathFromArgsOrExit(&argc, argv, "BENCH_ablation_nparty.json");
  std::printf("=== Ablation B: n-party signed copies ===\n\n");

  // A realistic off-chain contract size (the betting example's init code is
  // ~550 bytes; round up for headroom).
  Bytes bytecode(600, 0xab);

  obs::Json rows = obs::Json::Array();
  std::printf("%-6s %12s %14s %14s %18s\n", "n", "sign (ms)", "verify (ms)",
              "copy bytes", "est. deploy gas");
  for (int n : {2, 3, 4, 8, 16, 32}) {
    std::vector<PrivateKey> keys;
    std::vector<Address> addrs;
    for (int i = 0; i < n; ++i) {
      keys.push_back(PrivateKey::FromSeed("party" + std::to_string(i)));
      addrs.push_back(keys.back().EthAddress());
    }

    SignedCopy copy(bytecode);
    // The filler bytes are not real bytecode; this bench times signing, not
    // the pre-signing audit.
    copy.set_audit_enabled(false);
    auto t0 = std::chrono::steady_clock::now();
    for (const auto& key : keys) copy.AddSignature(key);
    double sign_ms = MsSince(t0);

    t0 = std::chrono::steady_clock::now();
    Status st = copy.VerifyComplete(addrs);
    double verify_ms = MsSince(t0);
    if (!st.ok()) return 1;

    size_t wire = copy.Serialize().size();

    // On-chain cost model anchored in the 2-party measurement:
    //   txbase + calldata(bytecode + n * 3 words) + n * (ecrecover 3000 +
    //   ~120 staging) + CREATE + 200/byte deposit.
    uint64_t calldata_gas =
        evm::gas::kTxDataNonZero * (bytecode.size() + 64 * n) / 2 +
        evm::gas::kTxDataZero * (bytecode.size() + 64 * n) / 2;
    uint64_t est = evm::gas::kTx + calldata_gas +
                   static_cast<uint64_t>(n) * (evm::gas::kEcrecover + 120) +
                   evm::gas::kCreate +
                   evm::gas::kCodeDeposit * bytecode.size();

    std::printf("%-6d %12.3f %14.3f %14zu %18llu\n", n, sign_ms, verify_ms,
                wire, static_cast<unsigned long long>(est));
    rows.Push(obs::Json::Object()
                  .Set("participants", obs::Json::Int(n))
                  .Set("sign_ms", obs::Json::Num(sign_ms))
                  .Set("verify_ms", obs::Json::Num(verify_ms))
                  .Set("signed_copy_bytes", obs::Json::Uint(wire))
                  .Set("estimated_deploy_gas", obs::Json::Uint(est)));
  }

  std::printf(
      "\nShape check: signing is O(n) with ~constant per-party cost;\n"
      "verification is O(n) per party (O(n^2) across the group); the\n"
      "on-chain dispute cost grows only by ~3.1k gas per extra participant\n"
      "(one ecrecover + one (v,r,s) triple), so small groups stay cheap —\n"
      "consistent with the paper's 'small group of interested participants'\n"
      "framing.\n");

  if (!json_path.empty()) {
    obs::Json results = obs::Json::Object();
    results.Set("bytecode_bytes", obs::Json::Uint(bytecode.size()))
        .Set("rows", std::move(rows));
    Status st = obs::WriteBenchJson(json_path, "ablation_nparty",
                                    std::move(results));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
