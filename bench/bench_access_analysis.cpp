// Static access analysis as a scheduler (DESIGN §12): what the dataflow
// pass costs per contract, how much of a betting-style block it can prove
// conflict-free before the speculation wave, and what that proof is worth
// in block-mining throughput.
//
// Three sections:
//   analysis_cost      - cold AnalyzeProgram time and warm summary-cache
//                        lookup per contract (the paper contracts plus a
//                        synthetic multi-selector contract);
//   betting_static     - a block mix of reassign() calls on distinct
//                        betting instances (statically disjoint) and
//                        deposit() calls (⊤, optimistic fallback): fraction
//                        of commits proven clear statically, containment
//                        violations (must be 0);
//   static_scheduling  - serial vs parallel with exec_static_scheduling
//                        off/on, on a disjoint per-sender workload.
//
// Every row re-derives the serial state root and reports `roots_match`.
// Writes BENCH_access_analysis.json (onoffchain-bench-v1) via --json <path>.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "analysis/access_summary.h"
#include "analysis/analyzer.h"
#include "chain/blockchain.h"
#include "contracts/betting.h"
#include "crypto/keccak.h"
#include "easm/assembler.h"
#include "obs/export.h"

using namespace onoff;

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Wraps `runtime` in init code that returns it verbatim.
Bytes InitFor(const Bytes& runtime) {
  auto hex_len = [&] {
    char buf[8];
    std::snprintf(buf, sizeof buf, "%04zx", runtime.size());
    return std::string(buf);
  };
  std::string src = "PUSH2 0x" + hex_len();
  src += "\nPUSH @runtime PUSH1 0x01 ADD\nPUSH1 0x00\nCODECOPY\n";
  src += "PUSH2 0x" + hex_len();
  src += " PUSH1 0x00 RETURN\nruntime: DB 0x" + ToHex(runtime) + "\n";
  auto init = easm::Assemble(src);
  if (!init.ok()) std::exit(1);
  return *init;
}

// A synthetic contract with `n` selectors, each doing a read-modify-write
// of its own storage slot — the shape the static scheduler is built for.
Bytes PerSelectorSlotContract(size_t n) {
  std::string src = "PUSH1 0x00 CALLDATALOAD PUSH1 0xe0 SHR\n";
  for (size_t i = 0; i < n; ++i) {
    char sel[16];
    std::snprintf(sel, sizeof sel, "0x4000%04zx", i);
    src += "DUP1 PUSH4 " + std::string(sel) + " EQ PUSH @f" +
           std::to_string(i) + " JUMPI\n";
  }
  src += "PUSH1 0x00 PUSH1 0x00 REVERT\n";
  for (size_t i = 0; i < n; ++i) {
    char slot[8];
    std::snprintf(slot, sizeof slot, "0x%02zx", 0x50 + i);
    src += "f" + std::to_string(i) + ":\nPOP PUSH1 " + std::string(slot) +
           " SLOAD PUSH1 0x01 ADD PUSH1 " + std::string(slot) +
           " SSTORE STOP\n";
  }
  auto code = easm::Assemble(src);
  if (!code.ok()) std::exit(1);
  return *code;
}

Bytes SelectorCalldata(uint32_t selector) {
  Bytes data;
  data.push_back(static_cast<uint8_t>(selector >> 24));
  data.push_back(static_cast<uint8_t>(selector >> 16));
  data.push_back(static_cast<uint8_t>(selector >> 8));
  data.push_back(static_cast<uint8_t>(selector));
  return data;
}

chain::Transaction MakeTx(const secp256k1::PrivateKey& key, uint64_t nonce,
                          std::optional<Address> to, const U256& value,
                          Bytes data, uint64_t gas_limit) {
  chain::Transaction tx;
  tx.nonce = nonce;
  tx.gas_price = U256(1);
  tx.gas_limit = gas_limit;
  tx.to = to;
  tx.value = value;
  tx.data = std::move(data);
  tx.Sign(key);
  return tx;
}

// ---- Section 1: analysis cost per contract -------------------------------

void BenchAnalysisCost(obs::Json& results) {
  contracts::BettingConfig bcfg;
  bcfg.alice = secp256k1::PrivateKey::FromSeed("alice").EthAddress();
  bcfg.bob = secp256k1::PrivateKey::FromSeed("bob").EthAddress();
  bcfg.deposit_amount = contracts::Ether(1);
  contracts::OffchainConfig ocfg;
  ocfg.alice = bcfg.alice;
  ocfg.bob = bcfg.bob;
  ocfg.secret_alice = U256(0xa11ce);
  ocfg.secret_bob = U256(0xb0b);
  ocfg.reveal_iterations = 20;

  auto onchain = contracts::BuildOnChainRuntime(bcfg);
  auto offchain = contracts::BuildOffChainRuntime(ocfg);
  if (!onchain.ok() || !offchain.ok()) std::exit(1);

  struct Subject {
    const char* name;
    Bytes code;
  };
  const Subject subjects[] = {
      {"betting_onchain", *onchain},
      {"betting_offchain", *offchain},
      {"synthetic_8sel", PerSelectorSlotContract(8)},
  };

  std::printf("--- analysis cost per contract ---\n");
  std::printf("%-18s %10s %14s %14s\n", "contract", "bytes", "cold (us)",
              "cached (us)");
  constexpr int kIters = 200;
  for (const Subject& s : subjects) {
    Hash32 hash = Keccak256(s.code);
    // Cold: full dataflow analysis, cache cleared every round.
    double t0 = NowMs();
    for (int i = 0; i < kIters; ++i) {
      analysis::AccessSummaryCache::Global().Clear();
      auto access = analysis::AccessSummaryCache::Global().Get(hash, s.code);
      if (access == nullptr) std::exit(1);
    }
    double cold_us = (NowMs() - t0) * 1000.0 / kIters;
    // Warm: the per-code-hash lookup every executor worker pays.
    t0 = NowMs();
    for (int i = 0; i < kIters; ++i) {
      auto access = analysis::AccessSummaryCache::Global().Get(hash, s.code);
      if (access == nullptr) std::exit(1);
    }
    double warm_us = (NowMs() - t0) * 1000.0 / kIters;
    std::printf("%-18s %10zu %14.1f %14.2f\n", s.name, s.code.size(), cold_us,
                warm_us);
    results.Push(obs::Json::Object()
                     .Set("section", obs::Json::Str("analysis_cost"))
                     .Set("contract", obs::Json::Str(s.name))
                     .Set("code_bytes",
                          obs::Json::Num(static_cast<double>(s.code.size())))
                     .Set("analysis_us", obs::Json::Num(cold_us))
                     .Set("cache_hit_us", obs::Json::Num(warm_us))
                     .Set("roots_match", obs::Json::Bool(true)));
  }
  std::printf("\n");
}

// ---- Section 2: static disjointness on the betting workload --------------

void BenchBettingWorkload(obs::Json& results, uint64_t blocks) {
  // Per block: 8 plain transfers (payment traffic, statically provable),
  // 4 reassign() and 2 deposit() calls on distinct betting instances. The
  // betting functions carry CALL effects (payout transfers), so their
  // summaries are ⊤ and they ride the optimistic path; the transfers in
  // front of them are the statically disjoint share.
  constexpr size_t kInstances = 8;
  constexpr size_t kTransfers = 8;
  constexpr size_t kReassigns = 4;
  constexpr size_t kDeposits = 2;
  constexpr size_t kBlockTxs = kTransfers + kReassigns + kDeposits;
  chain::ChainConfig serial_cfg;
  serial_cfg.max_txs_per_block = kBlockTxs;
  chain::ChainConfig par_cfg;
  par_cfg.exec_mode = chain::ExecMode::kParallel;
  par_cfg.exec_workers = 4;
  par_cfg.check_static_containment = true;
  par_cfg.max_txs_per_block = kBlockTxs;
  chain::Blockchain serial(serial_cfg);
  chain::Blockchain parallel(par_cfg);

  std::vector<secp256k1::PrivateKey> keys;
  std::vector<uint64_t> nonces(kInstances + kTransfers, 0);
  for (size_t i = 0; i < kInstances + kTransfers; ++i) {
    keys.push_back(
        secp256k1::PrivateKey::FromSeed("bet-" + std::to_string(i)));
    for (auto* c : {&serial, &parallel}) {
      c->FundAccount(keys.back().EthAddress(), contracts::Ether(1000));
    }
  }

  // One betting instance per sender pair; deposits stay open (huge t1).
  std::vector<Address> instances;
  for (size_t i = 0; i < kInstances; ++i) {
    contracts::BettingConfig cfg;
    cfg.alice = keys[i].EthAddress();
    cfg.bob = keys[(i + 1) % kInstances].EthAddress();
    cfg.deposit_amount = contracts::Ether(1);
    cfg.t1 = 1u << 30;
    auto init = contracts::BuildOnChainInit(cfg);
    if (!init.ok()) std::exit(1);
    chain::Transaction deploy =
        MakeTx(keys[i], nonces[i]++, std::nullopt, U256(), *init, 2'000'000);
    for (auto* c : {&serial, &parallel}) {
      if (!c->SubmitTransaction(deploy).ok()) std::exit(1);
      c->MineBlock();
    }
    auto receipt = parallel.GetReceipt(deploy.Hash());
    if (!receipt.ok() || !receipt->success) std::exit(1);
    instances.push_back(receipt->contract_address);
  }

  chain::ParallelExecStats before = parallel.parallel_stats();
  uint64_t total_txs = 0;
  for (uint64_t b = 0; b < blocks; ++b) {
    std::vector<chain::Transaction> txs;
    // Statically provable head: disjoint payments. Unknown hints poison
    // the scheduling prefix, so the ⊤ betting calls go last.
    for (size_t i = 0; i < kTransfers; ++i) {
      size_t k = kInstances + i;
      auto recipient = secp256k1::PrivateKey::FromSeed(
          "pay-" + std::to_string(b) + "-" + std::to_string(i));
      txs.push_back(MakeTx(keys[k], nonces[k]++, recipient.EthAddress(),
                           U256(1000), {}, 21'000));
    }
    // ⊤ tail: reassign()/deposit() summaries carry CALL effects.
    for (size_t i = 0; i < kReassigns; ++i) {
      size_t k = (b + i) % kInstances;
      txs.push_back(MakeTx(keys[k], nonces[k]++, instances[k], U256(),
                           contracts::ReassignCalldata(), 200'000));
    }
    for (size_t i = 0; i < kDeposits; ++i) {
      size_t k = (b + kReassigns + i) % kInstances;
      txs.push_back(MakeTx(keys[k], nonces[k]++, instances[k],
                           contracts::Ether(1),
                           contracts::DepositCalldata(), 300'000));
    }
    for (const chain::Transaction& tx : txs) {
      for (auto* c : {&serial, &parallel}) {
        if (!c->SubmitTransaction(tx).ok()) std::exit(1);
      }
    }
    serial.MineBlock();
    parallel.MineBlock();
    total_txs += txs.size();
  }

  const chain::ParallelExecStats& after = parallel.parallel_stats();
  uint64_t committed = after.committed - before.committed;
  uint64_t clear = after.static_clear - before.static_clear;
  uint64_t violations = after.hint_violations - before.hint_violations;
  double pct = committed > 0 ? 100.0 * static_cast<double>(clear) /
                                   static_cast<double>(committed)
                             : 0.0;
  bool roots_match =
      serial.state().StateRoot() == parallel.state().StateRoot();

  std::printf("--- betting workload: static disjointness ---\n");
  std::printf(
      "%llu txs over %llu blocks: %llu committed, %llu statically clear "
      "(%.1f%%), %llu containment violations, roots %s\n\n",
      static_cast<unsigned long long>(total_txs),
      static_cast<unsigned long long>(blocks),
      static_cast<unsigned long long>(committed),
      static_cast<unsigned long long>(clear), pct,
      static_cast<unsigned long long>(violations),
      roots_match ? "ok" : "DIFF");
  results.Push(
      obs::Json::Object()
          .Set("section", obs::Json::Str("betting_static"))
          .Set("blocks", obs::Json::Num(static_cast<double>(blocks)))
          .Set("transfers_per_block",
               obs::Json::Num(static_cast<double>(kTransfers)))
          .Set("betting_calls_per_block",
               obs::Json::Num(static_cast<double>(kReassigns + kDeposits)))
          .Set("txs", obs::Json::Num(static_cast<double>(total_txs)))
          .Set("committed", obs::Json::Num(static_cast<double>(committed)))
          .Set("static_clear", obs::Json::Num(static_cast<double>(clear)))
          .Set("static_clear_pct", obs::Json::Num(pct))
          .Set("hint_violations",
               obs::Json::Num(static_cast<double>(violations)))
          .Set("roots_match", obs::Json::Bool(roots_match)));
  if (!roots_match || violations != 0) std::exit(1);
}

// ---- Section 3: throughput with static scheduling off/on -----------------

struct SchedMode {
  const char* name;
  chain::ExecMode exec_mode;
  bool static_scheduling;
};

double RunDisjointWorkload(const SchedMode& mode, uint64_t blocks,
                           size_t senders, Hash32* root_out) {
  chain::ChainConfig config;
  config.exec_mode = mode.exec_mode;
  config.exec_workers = 4;
  config.exec_static_scheduling = mode.static_scheduling;
  config.max_txs_per_block = senders;
  chain::Blockchain chain(config);

  std::vector<secp256k1::PrivateKey> keys;
  std::vector<uint64_t> nonces(senders, 0);
  for (size_t i = 0; i < senders; ++i) {
    keys.push_back(
        secp256k1::PrivateKey::FromSeed("sched-" + std::to_string(i)));
    chain.FundAccount(keys.back().EthAddress(), contracts::Ether(1000));
  }
  Bytes init = InitFor(PerSelectorSlotContract(senders));
  auto deploy = chain.Execute(keys[0], std::nullopt, U256(), init, 2'000'000);
  if (!deploy.ok() || !deploy->success) std::exit(1);
  Address contract = deploy->contract_address;
  nonces[0] = 1;

  auto run_blocks = [&](uint64_t count) {
    for (uint64_t b = 0; b < count; ++b) {
      for (size_t i = 0; i < senders; ++i) {
        chain::Transaction tx = MakeTx(
            keys[i], nonces[i]++, contract, U256(),
            SelectorCalldata(0x40000000u + static_cast<uint32_t>(i)),
            100'000);
        if (!chain.SubmitTransaction(tx).ok()) std::exit(1);
      }
      if (chain.MineBlock().transactions.size() != senders) std::exit(1);
    }
  };
  run_blocks(blocks / 4 + 1);  // warmup
  double t0 = NowMs();
  run_blocks(blocks);
  double wall_ms = NowMs() - t0;
  *root_out = chain.state().StateRoot();
  return wall_ms;
}

void BenchStaticScheduling(obs::Json& results, uint64_t blocks) {
  constexpr size_t kSenders = 16;
  const SchedMode modes[] = {
      {"serial", chain::ExecMode::kSerial, false},
      {"parallel_static_off", chain::ExecMode::kParallel, false},
      {"parallel_static_on", chain::ExecMode::kParallel, true},
  };
  std::printf("--- disjoint workload: static scheduling off/on ---\n");
  std::printf("%-20s %12s %12s %9s %6s\n", "mode", "wall (ms)", "tx/s",
              "speedup", "roots");
  double serial_tx_per_s = 0;
  Hash32 serial_root{};
  for (const SchedMode& mode : modes) {
    Hash32 root{};
    double wall_ms = RunDisjointWorkload(mode, blocks, kSenders, &root);
    double txs = static_cast<double>(blocks * kSenders);
    double tx_per_s = wall_ms > 0 ? 1000.0 * txs / wall_ms : 0.0;
    bool is_serial = mode.exec_mode == chain::ExecMode::kSerial;
    if (is_serial) {
      serial_tx_per_s = tx_per_s;
      serial_root = root;
    }
    double speedup = serial_tx_per_s > 0 ? tx_per_s / serial_tx_per_s : 1.0;
    bool roots_match = root == serial_root;
    std::printf("%-20s %12.1f %12.0f %8.2fx %6s\n", mode.name, wall_ms,
                tx_per_s, speedup, roots_match ? "ok" : "DIFF");
    results.Push(
        obs::Json::Object()
            .Set("section", obs::Json::Str("static_scheduling"))
            .Set("mode", obs::Json::Str(mode.name))
            .Set("blocks", obs::Json::Num(static_cast<double>(blocks)))
            .Set("txs_per_block",
                 obs::Json::Num(static_cast<double>(kSenders)))
            .Set("wall_ms", obs::Json::Num(wall_ms))
            .Set("tx_per_s", obs::Json::Num(tx_per_s))
            .Set("speedup_vs_serial", obs::Json::Num(speedup))
            .Set("roots_match", obs::Json::Bool(roots_match)));
    if (!roots_match) std::exit(1);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path =
      obs::JsonPathFromArgsOrExit(&argc, argv, "BENCH_access_analysis.json");
  uint64_t blocks = 20;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--blocks") == 0) {
      blocks = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }

  std::printf("=== Static access analysis & pre-scheduling (%u threads) ===\n\n",
              std::thread::hardware_concurrency());
  obs::Json results = obs::Json::Array();
  BenchAnalysisCost(results);
  BenchBettingWorkload(results, blocks);
  BenchStaticScheduling(results, blocks);

  if (!json_path.empty()) {
    Status st = obs::WriteBenchJson(json_path, "access_analysis",
                                    std::move(results));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
