// Interpreter dispatch benchmark: the same workloads under the reference
// switch loop, threaded dispatch without fusion, and threaded dispatch with
// superinstructions (the default).
//
//   dense:    direct Evm::Call of an arithmetic loop contract — the
//             dispatch-bound worst case where per-instruction overhead
//             dominates (no storage, no memory growth, no sub-calls).
//   protocol: the full Table II dispute flow (deploy, deposits,
//             deployVerifiedInstance with signature checks, dispute
//             re-execution) — the paper's actual transaction mix, where
//             keccak/storage/sig work dilutes dispatch overhead.
//
// Every row records gas and the post-state root; any divergence from the
// switch reference is a correctness failure (exit 1), so the reported
// speedups are over verified-identical executions.
//
// Writes BENCH_evm_interp.json (onoffchain-bench-v1) via --json <path>.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chain/blockchain.h"
#include "contracts/betting.h"
#include "crypto/secp256k1.h"
#include "easm/assembler.h"
#include "evm/evm.h"
#include "obs/export.h"
#include "state/world_state.h"

using namespace onoff;

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// ---------------------------------------------------------------------------
// Dense workload
// ---------------------------------------------------------------------------

// An accumulator loop: ~18 cheap ops per iteration, no checkpoints inside
// the loop body except the fused JUMPI back-edge. Returns the accumulator,
// so the output hash pins the whole computation.
Bytes DenseLoopRuntime(uint64_t iterations) {
  char iters_hex[16];
  std::snprintf(iters_hex, sizeof iters_hex, "%04llx",
                static_cast<unsigned long long>(iterations));
  std::string src = std::string("PUSH1 0x00\nPUSH2 0x") + iters_hex + R"(
    loop: JUMPDEST
    DUP1 DUP1 MUL
    DUP3 ADD
    SWAP2 POP
    DUP1 PUSH1 0x0f SHR POP
    PUSH1 0x01 SWAP1 SUB
    DUP1 PUSH @loop JUMPI
    POP
    PUSH1 0x00 MSTORE
    PUSH1 0x20 PUSH1 0x00 RETURN
  )";
  auto code = easm::Assemble(src);
  if (!code.ok()) {
    std::fprintf(stderr, "dense contract assembly failed\n");
    std::exit(1);
  }
  return *code;
}

struct DenseResult {
  double wall_ms = 0;
  double mgas_per_s = 0;
  uint64_t gas_used = 0;
  Bytes output;
  Hash32 root{};
};

DenseResult RunDense(evm::DispatchMode mode, const Bytes& runtime,
                     uint64_t calls) {
  state::WorldState world;
  Address contract = Address::FromWord(U256(0xd15a));
  Address sender = Address::FromWord(U256(0xaa));
  world.CreateAccount(sender);
  world.AddBalance(sender, U256(1'000'000'000));
  world.SetCode(contract, runtime);
  world.ClearJournal();

  evm::Evm vm(&world, evm::BlockContext{}, evm::TxContext{sender, U256(1)});
  vm.set_dispatch_mode(mode);
  evm::CallMessage msg;
  msg.caller = sender;
  msg.to = contract;
  msg.gas = 2'000'000;

  DenseResult r;
  auto one_call = [&] {
    evm::ExecResult res = vm.Call(msg);
    if (!res.ok()) {
      std::fprintf(stderr, "dense call failed: %s\n",
                   evm::OutcomeToString(res.outcome));
      std::exit(1);
    }
    r.gas_used = msg.gas - res.gas_left;
    r.output = res.output;
  };
  for (uint64_t i = 0; i < calls / 8 + 1; ++i) one_call();  // warmup

  auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < calls; ++i) one_call();
  r.wall_ms = MsSince(start);
  r.mgas_per_s = r.wall_ms > 0 ? static_cast<double>(r.gas_used * calls) /
                                     (r.wall_ms * 1000.0)
                               : 0.0;
  r.root = world.StateRoot();
  return r;
}

// ---------------------------------------------------------------------------
// Protocol workload (the Table II dispute flow)
// ---------------------------------------------------------------------------

struct ProtocolResult {
  double wall_ms = 0;
  uint64_t total_gas = 0;
  Hash32 root{};
};

ProtocolResult RunProtocolOnce(const std::string& dispatch) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  auto bob = secp256k1::PrivateKey::FromSeed("bob");

  chain::ChainConfig config;
  config.evm_dispatch = dispatch;
  chain::Blockchain chain(config);
  chain.FundAccount(alice.EthAddress(), contracts::Ether(10));
  chain.FundAccount(bob.EthAddress(), contracts::Ether(10));

  uint64_t now = chain.Now();
  contracts::BettingConfig betting;
  betting.alice = alice.EthAddress();
  betting.bob = bob.EthAddress();
  betting.deposit_amount = contracts::Ether(1);
  betting.t1 = now + 100;
  betting.t2 = now + 200;
  betting.t3 = now + 300;

  contracts::OffchainConfig offchain;
  offchain.alice = alice.EthAddress();
  offchain.bob = bob.EthAddress();
  offchain.secret_alice = U256(0xa11ce);
  offchain.secret_bob = U256(0xb0b);
  offchain.reveal_iterations = 2000;

  auto onchain_init = contracts::BuildOnChainInit(betting);
  auto offchain_init = contracts::BuildOffChainInit(offchain);

  ProtocolResult r;
  uint64_t gas = 0;
  auto start = std::chrono::steady_clock::now();

  auto deploy = chain.Execute(alice, std::nullopt, U256(), *onchain_init,
                              4'000'000);
  if (!deploy.ok() || !deploy->success) std::exit(1);
  gas += deploy->gas_used;
  Address onchain = deploy->contract_address;

  auto dep_a = chain.Execute(alice, onchain, contracts::Ether(1),
                             contracts::DepositCalldata(), 300'000);
  auto dep_b = chain.Execute(bob, onchain, contracts::Ether(1),
                             contracts::DepositCalldata(), 300'000);
  if (!dep_a.ok() || !dep_b.ok()) std::exit(1);
  gas += dep_a->gas_used + dep_b->gas_used;
  chain.AdvanceTimeTo(betting.t3);

  Hash32 digest = Keccak256(*offchain_init);
  auto sig_a = secp256k1::Sign(digest, alice);
  auto sig_b = secp256k1::Sign(digest, bob);
  Bytes calldata = contracts::DeployVerifiedInstanceCalldata(
      *offchain_init, sig_a->v, sig_a->r, sig_a->s, sig_b->v, sig_b->r,
      sig_b->s);
  auto deploy_vi =
      chain.Execute(bob, onchain, U256(), std::move(calldata), 7'000'000);
  if (!deploy_vi.ok() || !deploy_vi->success) std::exit(1);
  gas += deploy_vi->gas_used;

  Address instance = Address::FromWord(chain.GetStorage(
      onchain, U256(contracts::betting_slots::kDeployedAddr)));
  auto resolve = chain.Execute(
      bob, instance, U256(),
      contracts::ReturnDisputeResolutionCalldata(onchain), 7'000'000);
  if (!resolve.ok() || !resolve->success) std::exit(1);
  gas += resolve->gas_used;

  r.wall_ms = MsSince(start);
  r.total_gas = gas;
  r.root = chain.blocks().back().header.state_root;
  return r;
}

ProtocolResult RunProtocol(const std::string& dispatch, int reps) {
  ProtocolResult best;
  for (int i = 0; i < reps; ++i) {
    ProtocolResult r = RunProtocolOnce(dispatch);
    if (i == 0 || r.wall_ms < best.wall_ms) {
      double wall = r.wall_ms;
      best = r;
      best.wall_ms = wall;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path =
      obs::JsonPathFromArgsOrExit(&argc, argv, "BENCH_evm_interp.json");
  uint64_t dense_calls = 60;
  uint64_t dense_iters = 0x2000;
  int protocol_reps = 3;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--calls") == 0) {
      dense_calls = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      protocol_reps = static_cast<int>(std::strtol(argv[i + 1], nullptr, 10));
    }
  }

  struct ModeRow {
    const char* name;
    evm::DispatchMode mode;
  };
  const ModeRow modes[] = {
      {"switch", evm::DispatchMode::kSwitch},
      {"threaded-nofuse", evm::DispatchMode::kThreadedNoFuse},
      {"threaded", evm::DispatchMode::kThreaded},
  };

  obs::Json rows = obs::Json::Array();
  bool all_roots_match = true;

  // ---- dense ----
  Bytes runtime = DenseLoopRuntime(dense_iters);
  std::printf("=== EVM interpreter dispatch: dense loop, %llu calls/mode ===\n\n",
              static_cast<unsigned long long>(dense_calls));
  std::printf("%-18s %12s %12s %12s %10s %8s\n", "mode", "wall (ms)",
              "Mgas/s", "gas/call", "speedup", "roots");

  DenseResult dense_ref;
  for (const ModeRow& m : modes) {
    DenseResult r = RunDense(m.mode, runtime, dense_calls);
    if (m.mode == evm::DispatchMode::kSwitch) dense_ref = r;
    bool match = r.gas_used == dense_ref.gas_used &&
                 r.output == dense_ref.output && r.root == dense_ref.root;
    all_roots_match = all_roots_match && match;
    double speedup = r.wall_ms > 0 ? dense_ref.wall_ms / r.wall_ms : 0.0;
    std::printf("%-18s %12.1f %12.1f %12llu %9.2fx %8s\n", m.name, r.wall_ms,
                r.mgas_per_s, static_cast<unsigned long long>(r.gas_used),
                speedup, match ? "ok" : "DIFF");
    rows.Push(obs::Json::Object()
                  .Set("workload", obs::Json::Str("dense"))
                  .Set("mode", obs::Json::Str(m.name))
                  .Set("calls", obs::Json::Uint(dense_calls))
                  .Set("wall_ms", obs::Json::Num(r.wall_ms))
                  .Set("mgas_per_s", obs::Json::Num(r.mgas_per_s))
                  .Set("gas_per_call", obs::Json::Uint(r.gas_used))
                  .Set("speedup_vs_switch", obs::Json::Num(speedup))
                  .Set("roots_match", obs::Json::Bool(match)));
  }

  // ---- protocol ----
  std::printf(
      "\n=== Table II dispute flow (reveal_iterations=2000), best of %d ===\n\n",
      protocol_reps);
  std::printf("%-18s %12s %14s %10s %8s\n", "mode", "wall (ms)", "total gas",
              "speedup", "roots");
  ProtocolResult proto_ref;
  for (const ModeRow& m : modes) {
    ProtocolResult r = RunProtocol(m.name, protocol_reps);
    if (m.mode == evm::DispatchMode::kSwitch) proto_ref = r;
    bool match = r.total_gas == proto_ref.total_gas && r.root == proto_ref.root;
    all_roots_match = all_roots_match && match;
    double speedup = r.wall_ms > 0 ? proto_ref.wall_ms / r.wall_ms : 0.0;
    std::printf("%-18s %12.1f %14llu %9.2fx %8s\n", m.name, r.wall_ms,
                static_cast<unsigned long long>(r.total_gas), speedup,
                match ? "ok" : "DIFF");
    rows.Push(obs::Json::Object()
                  .Set("workload", obs::Json::Str("protocol"))
                  .Set("mode", obs::Json::Str(m.name))
                  .Set("wall_ms", obs::Json::Num(r.wall_ms))
                  .Set("total_gas", obs::Json::Uint(r.total_gas))
                  .Set("speedup_vs_switch", obs::Json::Num(speedup))
                  .Set("roots_match", obs::Json::Bool(match)));
  }

  if (!json_path.empty()) {
    Status st = obs::WriteBenchJson(json_path, "evm_interp", std::move(rows));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  if (!all_roots_match) {
    std::fprintf(stderr,
                 "FAIL: dispatch modes diverged (gas/output/state root)\n");
    return 1;
  }
  return 0;
}
