// Ablation C: privacy — bytes of contract content exposed on the public
// chain under each execution model, swept over the size of the private
// logic. Quantifies the claim that "sensitive information involved in the
// off-chain contract can be hidden from the public".

#include <cstdio>

#include "chain/blockchain.h"
#include "contracts/betting.h"
#include "obs/export.h"
#include "onoff/protocol.h"

using namespace onoff;
using core::Behavior;
using core::BettingProtocol;
using core::MessageBus;

namespace {

struct Exposure {
  size_t offchain_code_public;  // off-chain contract bytes that went public
  size_t total_public_bytes;    // all calldata + code on the chain
};

Exposure RunHybrid(uint64_t reveal_iterations, bool dispute) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  auto bob = secp256k1::PrivateKey::FromSeed("bob");
  chain::Blockchain chain;
  chain.FundAccount(alice.EthAddress(), contracts::Ether(10));
  chain.FundAccount(bob.EthAddress(), contracts::Ether(10));
  MessageBus bus;
  contracts::OffchainConfig offchain;
  offchain.secret_alice = U256(0xa11ce);
  offchain.secret_bob = U256(0xb0b);
  offchain.reveal_iterations = reveal_iterations;
  BettingProtocol protocol(&chain, &bus, alice, bob, offchain,
                           contracts::Ether(1));
  Behavior behavior;
  behavior.admit_loss = !dispute;
  auto report = protocol.Run(behavior, behavior);
  if (!report.ok()) std::exit(1);
  return Exposure{report->private_bytes_revealed,
                  report->TotalOnchainBytes()};
}

Exposure RunAllOnChain(uint64_t reveal_iterations) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  chain::Blockchain chain;
  chain.FundAccount(alice.EthAddress(), contracts::Ether(10));
  contracts::OffchainConfig offchain;
  offchain.alice = alice.EthAddress();
  offchain.bob = secp256k1::PrivateKey::FromSeed("bob").EthAddress();
  offchain.secret_alice = U256(0xa11ce);
  offchain.secret_bob = U256(0xb0b);
  offchain.reveal_iterations = reveal_iterations;
  auto init = contracts::BuildOffChainInit(offchain);
  auto deploy = chain.Execute(alice, std::nullopt, U256(), *init, 8'000'000);
  size_t code = chain.GetCode(deploy->contract_address).size();
  // The whole private logic is published: init calldata + runtime code.
  return Exposure{init->size() + code, init->size() + code};
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path =
      obs::JsonPathFromArgsOrExit(&argc, argv, "BENCH_privacy_bytes.json");
  std::printf("=== Ablation C: private bytes exposed on-chain ===\n\n");
  std::printf("%-14s %22s %22s %22s\n", "reveal iters",
              "all-on-chain (bytes)", "hybrid optimistic", "hybrid disputed");
  obs::Json rows = obs::Json::Array();
  for (uint64_t iters : {0ull, 100ull, 1000ull, 10000ull}) {
    Exposure aoc = RunAllOnChain(iters);
    Exposure opt = RunHybrid(iters, false);
    Exposure dis = RunHybrid(iters, true);
    std::printf("%-14llu %22zu %22zu %22zu\n",
                static_cast<unsigned long long>(iters),
                aoc.offchain_code_public, opt.offchain_code_public,
                dis.offchain_code_public);
    rows.Push(
        obs::Json::Object()
            .Set("reveal_iterations", obs::Json::Uint(iters))
            .Set("all_on_chain_bytes", obs::Json::Uint(aoc.offchain_code_public))
            .Set("hybrid_optimistic_bytes",
                 obs::Json::Uint(opt.offchain_code_public))
            .Set("hybrid_disputed_bytes",
                 obs::Json::Uint(dis.offchain_code_public))
            .Set("hybrid_total_public_bytes",
                 obs::Json::Uint(dis.total_public_bytes)));
  }
  std::printf(
      "\nShape check: the optimistic hybrid path exposes 0 bytes of the\n"
      "private contract regardless of its size; all-on-chain always\n"
      "exposes everything; a dispute exposes the signed bytecode once.\n"
      "(The private logic's byte size is constant in reveal iterations here\n"
      "because the loop bound is one immediate; the exposure difference\n"
      "between columns is the structural result.)\n");

  if (!json_path.empty()) {
    obs::Json results = obs::Json::Object();
    results.Set("rows", std::move(rows));
    Status st = obs::WriteBenchJson(json_path, "privacy_bytes",
                                    std::move(results));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
