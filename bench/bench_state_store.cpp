// The incremental authenticated state store vs the from-scratch trie
// rebuild it replaced: state-root time as total accounts scale, as the
// per-block write set scales, plus the cost of copy-on-write Clone() and
// snapshots. Every row cross-checks the incremental root against the
// rebuilt root (`roots_match`), so the speedups are over a verified-equal
// commitment.
//
// Writes BENCH_state_store.json (onoffchain-bench-v1) via --json <path>.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/export.h"
#include "state/world_state.h"
#include "storage/node_store.h"
#include "support/address.h"
#include "support/u256.h"

using namespace onoff;

namespace {

// Real addresses are keccak outputs, uniform from byte 0 (which is what
// std::hash<Address> keys on) — so spread the index over the leading bytes.
Address AddrOf(uint64_t i) {
  std::array<uint8_t, Address::kSize> raw{};
  uint64_t x = (i + 1) * 0x9E3779B97F4A7C15ull;  // splitmix-style spread
  for (int b = 0; b < 8; ++b) {
    raw[b] = static_cast<uint8_t>(x >> (8 * b));
  }
  raw[19] = 0x5A;
  return Address(raw);
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// N accounts, each with a balance, nonce, and two storage slots.
state::WorldState BuildState(uint64_t accounts) {
  state::WorldState ws;
  for (uint64_t i = 0; i < accounts; ++i) {
    Address a = AddrOf(i);
    ws.SetBalance(a, U256(1'000'000 + i));
    ws.SetNonce(a, i % 7);
    ws.SetStorage(a, U256(1), U256(i));
    ws.SetStorage(a, U256(2), U256(i * 2 + 1));
    if (i % 4096 == 0) ws.ClearJournal();
  }
  ws.ClearJournal();
  return ws;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path =
      obs::JsonPathFromArgsOrExit(&argc, argv, "BENCH_state_store.json");
  std::vector<uint64_t> account_counts = {1'000, 10'000, 100'000};
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--accounts") == 0) {
      // One explicit size instead of the default sweep (e.g. 1000000 for
      // the EXPERIMENTS.md scaling row).
      account_counts = {std::strtoull(argv[i + 1], nullptr, 10)};
    }
  }

  obs::Json results = obs::Json::Array();

  std::printf("=== State-root scaling: incremental store vs rebuild ===\n\n");
  std::printf("%10s %12s %14s %12s %10s %10s %6s\n", "accounts",
              "rebuild (ms)", "1-acct incr", "speedup", "clone (ms)",
              "snap (ms)", "roots");

  for (uint64_t accounts : account_counts) {
    state::WorldState ws = BuildState(accounts);

    // Baseline: the seed's from-scratch trie build, timed on the settled
    // state (this is what every block used to pay).
    auto t0 = std::chrono::steady_clock::now();
    Hash32 rebuilt = ws.RebuildStateRoot();
    double rebuild_ms = MsSince(t0);

    // First incremental commit folds every account once (block 0).
    t0 = std::chrono::steady_clock::now();
    Hash32 initial = ws.StateRoot();
    double initial_commit_ms = MsSince(t0);
    if (initial != rebuilt) {
      std::fprintf(stderr, "initial root mismatch at %llu accounts\n",
                   static_cast<unsigned long long>(accounts));
      return 1;
    }

    // The headline number: one touched account in a sea of N.
    ws.SetBalance(AddrOf(accounts / 2), U256(42));
    t0 = std::chrono::steady_clock::now();
    Hash32 incremental = ws.StateRoot();
    double incremental_ms = MsSince(t0);
    bool roots_match = incremental == ws.RebuildStateRoot();
    double speedup = incremental_ms > 0 ? rebuild_ms / incremental_ms : 0;

    // Copy-on-write costs.
    t0 = std::chrono::steady_clock::now();
    state::WorldState clone = ws.Clone();
    double clone_ms = MsSince(t0);
    bool clone_root_ok = clone.StateRoot() == incremental;

    t0 = std::chrono::steady_clock::now();
    storage::StateSnapshot snap = ws.TakeStateSnapshot();
    double snapshot_ms = MsSince(t0);
    bool snap_root_ok = snap.root == incremental;
    roots_match = roots_match && clone_root_ok && snap_root_ok;

    std::printf("%10llu %12.1f %11.3fms %11.1fx %10.2f %10.3f %6s\n",
                static_cast<unsigned long long>(accounts), rebuild_ms,
                incremental_ms, speedup, clone_ms, snapshot_ms,
                roots_match ? "ok" : "DIFF");

    results.Push(
        obs::Json::Object()
            .Set("scenario", obs::Json::Str("scaling"))
            .Set("accounts", obs::Json::Num(static_cast<double>(accounts)))
            .Set("touched_accounts", obs::Json::Num(1))
            .Set("rebuild_ms", obs::Json::Num(rebuild_ms))
            .Set("initial_commit_ms", obs::Json::Num(initial_commit_ms))
            .Set("incremental_ms", obs::Json::Num(incremental_ms))
            .Set("speedup_vs_rebuild", obs::Json::Num(speedup))
            .Set("clone_ms", obs::Json::Num(clone_ms))
            .Set("snapshot_ms", obs::Json::Num(snapshot_ms))
            .Set("roots_match", obs::Json::Bool(roots_match)));
    if (!roots_match) {
      std::fprintf(stderr, "root mismatch at %llu accounts\n",
                   static_cast<unsigned long long>(accounts));
      return 1;
    }
  }

  // Write-set scaling: commit time vs number of touched accounts at a
  // fixed state size (block cost should track the write set, not N).
  uint64_t base = account_counts.back();
  state::WorldState ws = BuildState(base);
  ws.StateRoot();
  std::printf("\n=== Write-set scaling at %llu accounts ===\n\n",
              static_cast<unsigned long long>(base));
  std::printf("%10s %16s %6s\n", "touched", "commit (ms)", "roots");
  for (uint64_t touched : {1ULL << 0, 1ULL << 4, 1ULL << 8, 1ULL << 12}) {
    if (touched > base) break;
    for (uint64_t i = 0; i < touched; ++i) {
      Address a = AddrOf((i * 977) % base);
      ws.SetBalance(a, U256(i + 7));
      ws.SetStorage(a, U256(1), U256(i + 9));
    }
    ws.ClearJournal();
    auto t0 = std::chrono::steady_clock::now();
    ws.StateRoot();
    double commit_ms = MsSince(t0);
    bool roots_match = ws.StateRoot() == ws.RebuildStateRoot();
    std::printf("%10llu %16.3f %6s\n",
                static_cast<unsigned long long>(touched), commit_ms,
                roots_match ? "ok" : "DIFF");
    results.Push(
        obs::Json::Object()
            .Set("scenario", obs::Json::Str("write_set"))
            .Set("accounts", obs::Json::Num(static_cast<double>(base)))
            .Set("touched_accounts",
                 obs::Json::Num(static_cast<double>(touched)))
            .Set("incremental_ms", obs::Json::Num(commit_ms))
            .Set("roots_match", obs::Json::Bool(roots_match)));
    if (!roots_match) return 1;
  }

  // Persistence: append one block's nodes to an in-memory node store after
  // touching a small write set (the per-block persist cost).
  {
    storage::NodeStore store;
    if (!store.Open().ok()) return 1;
    ws.StateRoot();
    if (!ws.PersistCommitted(store, 1).ok()) return 1;
    size_t base_nodes = store.live_nodes();
    for (uint64_t i = 0; i < 64; ++i) {
      ws.SetBalance(AddrOf(i * 31 % base), U256(i));
    }
    ws.ClearJournal();
    ws.StateRoot();
    auto t0 = std::chrono::steady_clock::now();
    if (!ws.PersistCommitted(store, 2).ok()) return 1;
    double persist_ms = MsSince(t0);
    size_t delta_nodes = store.live_nodes() - base_nodes;
    std::printf("\npersist delta: %zu nodes in %.3f ms (%zu total)\n",
                delta_nodes, persist_ms, store.live_nodes());
    results.Push(obs::Json::Object()
                     .Set("scenario", obs::Json::Str("persist_block"))
                     .Set("accounts",
                          obs::Json::Num(static_cast<double>(base)))
                     .Set("touched_accounts", obs::Json::Num(64))
                     .Set("incremental_ms", obs::Json::Num(persist_ms))
                     .Set("delta_nodes",
                          obs::Json::Num(static_cast<double>(delta_nodes)))
                     .Set("roots_match", obs::Json::Bool(true)));
  }

  if (!json_path.empty()) {
    Status st =
        obs::WriteBenchJson(json_path, "state_store", std::move(results));
    if (!st.ok()) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
