// Ablation A: expected miner cost of the hybrid model as a function of the
// dispute probability p, against the all-on-chain baseline.
//
// The hybrid model bets on optimism: per settled contract it costs
//   C_hybrid(p) = C_optimistic + p * C_dispute_extra
// while the all-on-chain model always pays for executing reveal() publicly.
// This bench measures C_optimistic, C_dispute_extra and C_all_on_chain for
// several reveal() weights and reports the break-even dispute rate p* —
// where the crossover falls is the design's operating envelope.

#include <cstdio>

#include "chain/blockchain.h"
#include "contracts/betting.h"
#include "obs/export.h"
#include "onoff/protocol.h"

using namespace onoff;
using core::Behavior;
using core::BettingProtocol;
using core::MessageBus;

namespace {

struct Costs {
  uint64_t optimistic;
  uint64_t disputed;
  uint64_t all_on_chain;
};

uint64_t RunProtocolGas(uint64_t reveal_iterations, bool dispute) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  auto bob = secp256k1::PrivateKey::FromSeed("bob");
  chain::Blockchain chain;
  chain.FundAccount(alice.EthAddress(), contracts::Ether(10));
  chain.FundAccount(bob.EthAddress(), contracts::Ether(10));
  MessageBus bus;
  contracts::OffchainConfig offchain;
  offchain.secret_alice = U256(0xa11ce);
  offchain.secret_bob = U256(0xb0b);
  offchain.reveal_iterations = reveal_iterations;
  BettingProtocol protocol(&chain, &bus, alice, bob, offchain,
                           contracts::Ether(1));
  Behavior behavior;
  behavior.admit_loss = !dispute;
  auto report = protocol.Run(behavior, behavior);
  if (!report.ok()) std::exit(1);
  return report->TotalGas();
}

// All-on-chain baseline: the whole contract (escrow + reveal) is public; the
// settlement transaction makes miners execute reveal(). Approximated as the
// optimistic hybrid cost plus one public execution of reveal() — measured by
// deploying the off-chain part publicly and calling getWinner().
uint64_t AllOnChainGas(uint64_t reveal_iterations) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  chain::Blockchain chain;
  chain.FundAccount(alice.EthAddress(), contracts::Ether(10));
  contracts::OffchainConfig offchain;
  offchain.alice = alice.EthAddress();
  offchain.bob = secp256k1::PrivateKey::FromSeed("bob").EthAddress();
  offchain.secret_alice = U256(0xa11ce);
  offchain.secret_bob = U256(0xb0b);
  offchain.reveal_iterations = reveal_iterations;
  auto init = contracts::BuildOffChainInit(offchain);
  auto deploy = chain.Execute(alice, std::nullopt, U256(), *init, 8'000'000);
  auto call = chain.Execute(alice, deploy->contract_address, U256(),
                            contracts::GetWinnerCalldata(), 8'000'000);
  if (!call->success) std::exit(1);
  uint64_t base = RunProtocolGas(0, /*dispute=*/false);
  // Escrow machinery (base) + public reveal deployment & execution, minus
  // the double-counted trivial reveal in `base` (negligible).
  return base + deploy->gas_used + call->gas_used;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path =
      obs::JsonPathFromArgsOrExit(&argc, argv, "BENCH_ablation_dispute_rate.json");
  std::printf(
      "=== Ablation A: expected gas vs dispute probability ===\n\n");
  std::printf("%-14s %13s %13s %13s %14s\n", "reveal iters", "optimistic",
              "disputed", "all-on-chain", "break-even p*");
  obs::Json rows = obs::Json::Array();
  for (uint64_t iters : {100ull, 1000ull, 5000ull, 20000ull, 50000ull}) {
    Costs c;
    c.optimistic = RunProtocolGas(iters, false);
    c.disputed = RunProtocolGas(iters, true);
    c.all_on_chain = AllOnChainGas(iters);
    double extra = static_cast<double>(c.disputed - c.optimistic);
    double margin = static_cast<double>(c.all_on_chain) -
                    static_cast<double>(c.optimistic);
    double p_star = extra > 0 ? margin / extra : 999;
    std::printf("%-14llu %13llu %13llu %13llu %14.3f\n",
                static_cast<unsigned long long>(iters),
                static_cast<unsigned long long>(c.optimistic),
                static_cast<unsigned long long>(c.disputed),
                static_cast<unsigned long long>(c.all_on_chain),
                p_star);
    rows.Push(obs::Json::Object()
                  .Set("reveal_iterations", obs::Json::Uint(iters))
                  .Set("optimistic_gas", obs::Json::Uint(c.optimistic))
                  .Set("disputed_gas", obs::Json::Uint(c.disputed))
                  .Set("all_on_chain_gas", obs::Json::Uint(c.all_on_chain))
                  .Set("break_even_dispute_rate", obs::Json::Num(p_star)));
  }
  std::printf(
      "\nExpected hybrid cost: E[gas](p) = optimistic + p * (disputed -\n"
      "optimistic). The hybrid model beats all-on-chain whenever the\n"
      "dispute rate stays below p*; p* > 1 means the hybrid wins even if\n"
      "EVERY contract is disputed (the dispute path itself is cheaper than\n"
      "always executing reveal() publicly once deployment is counted).\n");

  std::printf("\n%-14s %13s\n", "dispute p", "E[gas] (20000-iter reveal)");
  uint64_t opt = RunProtocolGas(20000, false);
  uint64_t dis = RunProtocolGas(20000, true);
  obs::Json expected_rows = obs::Json::Array();
  for (double p : {0.0, 0.05, 0.1, 0.25, 0.5, 1.0}) {
    double expected = opt + p * static_cast<double>(dis - opt);
    std::printf("%-14.2f %13.0f\n", p, expected);
    expected_rows.Push(obs::Json::Object()
                           .Set("dispute_rate", obs::Json::Num(p))
                           .Set("expected_gas", obs::Json::Num(expected)));
  }

  if (!json_path.empty()) {
    obs::Json results = obs::Json::Object();
    results.Set("rows", std::move(rows))
        .Set("expected_gas_20000_iter_reveal", std::move(expected_rows));
    Status st = obs::WriteBenchJson(json_path, "ablation_dispute_rate",
                                    std::move(results));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
