// Static-analyzer throughput over the bundled contracts: how fast the
// pre-signing audit runs, in bytes and basic blocks per second. The audit
// sits on the signing path of every off-chain contract exchange, so its
// cost must stay negligible next to the ECDSA work it gates.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "contracts/betting.h"
#include "contracts/synthetic.h"
#include "crypto/secp256k1.h"
#include "obs/export.h"
#include "obs/metrics.h"

using namespace onoff;

namespace {

struct Subject {
  std::string name;
  Bytes init_code;
};

std::vector<Subject> BundledContracts() {
  contracts::BettingConfig betting;
  betting.alice = secp256k1::PrivateKey::FromSeed("alice").EthAddress();
  betting.bob = secp256k1::PrivateKey::FromSeed("bob").EthAddress();
  betting.deposit_amount = contracts::Ether(1);
  betting.t1 = 1100;
  betting.t2 = 1200;
  betting.t3 = 1300;

  contracts::OffchainConfig offchain;
  offchain.alice = betting.alice;
  offchain.bob = betting.bob;
  offchain.secret_alice = U256(0xa11ce);
  offchain.secret_bob = U256(0xb0b);
  offchain.reveal_iterations = 100;

  contracts::SyntheticConfig synthetic;
  synthetic.num_light = 8;
  synthetic.num_heavy = 8;

  std::vector<Subject> subjects;
  subjects.push_back({"betting-onchain", *contracts::BuildOnChainInit(betting)});
  subjects.push_back(
      {"betting-offchain", *contracts::BuildOffChainInit(offchain)});
  subjects.push_back(
      {"synthetic-whole", *contracts::BuildWholeInit(synthetic)});
  subjects.push_back(
      {"synthetic-hybrid-on", *contracts::BuildHybridOnChainInit(synthetic)});
  subjects.push_back(
      {"synthetic-hybrid-off", *contracts::BuildHybridOffChainInit(synthetic)});
  return subjects;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path =
      obs::JsonPathFromArgsOrExit(&argc, argv, "BENCH_analysis.json");
  constexpr int kRepetitions = 200;

  std::printf("=== Static analyzer throughput (pre-signing audit) ===\n\n");
  std::printf("%-22s %8s %8s %10s %12s %12s\n", "contract", "bytes", "blocks",
              "us/audit", "MB/s", "blocks/s");

  obs::Json rows = obs::Json::Array();
  for (const Subject& subject : BundledContracts()) {
    // One un-timed run for the shape numbers (and to fault in any lazily
    // initialized tables).
    analysis::DeploymentReport shape =
        analysis::AnalyzeDeployment(subject.init_code);
    if (shape.HasErrors()) {
      std::fprintf(stderr, "%s: bundled contract failed its own audit\n",
                   subject.name.c_str());
      return 1;
    }
    size_t blocks = shape.init.cfg.blocks.size();
    if (shape.runtime.has_value()) blocks += shape.runtime->cfg.blocks.size();

    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kRepetitions; ++i) {
      analysis::DeploymentReport report =
          analysis::AnalyzeDeployment(subject.init_code);
      if (report.HasErrors()) return 1;
    }
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    double us_per_audit = seconds * 1e6 / kRepetitions;
    double mb_per_s = static_cast<double>(subject.init_code.size()) *
                      kRepetitions / seconds / 1e6;
    double blocks_per_s = static_cast<double>(blocks) * kRepetitions / seconds;

    std::printf("%-22s %8zu %8zu %10.1f %12.1f %12.0f\n",
                subject.name.c_str(), subject.init_code.size(), blocks,
                us_per_audit, mb_per_s, blocks_per_s);
    rows.Push(obs::Json::Object()
                  .Set("contract", obs::Json::Str(subject.name))
                  .Set("bytes", obs::Json::Uint(subject.init_code.size()))
                  .Set("blocks", obs::Json::Uint(blocks))
                  .Set("us_per_audit", obs::Json::Num(us_per_audit))
                  .Set("mb_per_s", obs::Json::Num(mb_per_s))
                  .Set("blocks_per_s", obs::Json::Num(blocks_per_s)));
  }

  std::printf(
      "\nShape check: every bundled contract audits in well under a\n"
      "millisecond — the pre-signing audit is free next to the two ECDSA\n"
      "signatures it protects. The analysis_* counters in the JSON metrics\n"
      "dump record programs/blocks/edges/bytes analyzed and rejections.\n");

  if (!json_path.empty()) {
    obs::Json results = obs::Json::Object();
    results.Set("repetitions", obs::Json::Uint(kRepetitions));
    results.Set("rows", std::move(rows));
    Status st = obs::WriteBenchJson(json_path, "analysis", std::move(results));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
