// Signature hot-path microbenchmarks: sign / verify / recover ops/sec under
// the fast and reference secp256k1 backends, the field kernels behind them,
// and end-to-end chain verification with serial vs parallel sender
// pre-recovery. Emits BENCH_crypto.json (onoffchain-bench-v1 schema).
//
//   bench_crypto [--iters N] [--blocks B] [--txs T] [--json PATH]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "chain/validator.h"
#include "crypto/secp256k1.h"
#include "obs/export.h"
#include "support/thread_pool.h"

using namespace onoff;

namespace {

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct OpResult {
  double fast_us_per_op = 0;
  double ref_us_per_op = 0;

  double FastOpsPerSec() const { return 1e6 / fast_us_per_op; }
  double RefOpsPerSec() const { return 1e6 / ref_us_per_op; }
  double Speedup() const { return ref_us_per_op / fast_us_per_op; }
};

// Times `op(i)` for `iters` iterations under each backend; the reference
// backend runs at most `ref_iters` iterations (it is orders of magnitude
// slower).
template <typename Op>
OpResult TimeBackends(int iters, int ref_iters, const Op& op) {
  OpResult out;
  {
    secp256k1::ScopedBackend b(secp256k1::Backend::kFast);
    op(0);  // warm tables outside the timed region
    double start = NowUs();
    for (int i = 0; i < iters; ++i) op(i);
    out.fast_us_per_op = (NowUs() - start) / iters;
  }
  {
    secp256k1::ScopedBackend b(secp256k1::Backend::kReference);
    double start = NowUs();
    for (int i = 0; i < ref_iters; ++i) op(i);
    out.ref_us_per_op = (NowUs() - start) / ref_iters;
  }
  return out;
}

void PrintOp(const char* name, const OpResult& r) {
  std::printf("%-22s %10.1f %12.0f %10.1f %12.0f %8.1fx\n", name,
              r.fast_us_per_op, r.FastOpsPerSec(), r.ref_us_per_op,
              r.RefOpsPerSec(), r.Speedup());
}

obs::Json OpJson(const OpResult& r) {
  return obs::Json::Object()
      .Set("fast_us_per_op", obs::Json::Num(r.fast_us_per_op))
      .Set("fast_ops_per_sec", obs::Json::Num(r.FastOpsPerSec()))
      .Set("reference_us_per_op", obs::Json::Num(r.ref_us_per_op))
      .Set("reference_ops_per_sec", obs::Json::Num(r.RefOpsPerSec()))
      .Set("speedup", obs::Json::Num(r.Speedup()));
}

// A chain of `blocks` blocks with `txs_per_block` transfers each, with every
// transaction's sender memo stripped (round-tripping through the wire format
// yields cold transactions, like a block downloaded from a peer).
struct VerifyFixture {
  std::vector<chain::Block> blocks;
  chain::GenesisAlloc alloc;
  chain::ChainConfig config;
  size_t tx_count = 0;
};

VerifyFixture BuildChain(int blocks, int txs_per_block) {
  VerifyFixture fx;
  auto alice = secp256k1::PrivateKey::FromSeed("bench-alice");
  auto bob = secp256k1::PrivateKey::FromSeed("bench-bob");
  U256 funding = U256(10).Exp(U256(18));
  fx.alloc = {{alice.EthAddress(), funding}, {bob.EthAddress(), funding}};
  chain::Blockchain chain;
  for (const auto& [addr, amount] : fx.alloc) chain.FundAccount(addr, amount);
  fx.config = chain.config();
  uint64_t alice_nonce = 0;
  uint64_t bob_nonce = 0;
  for (int b = 0; b < blocks; ++b) {
    for (int t = 0; t < txs_per_block; ++t) {
      bool from_alice = t % 2 == 0;
      chain::Transaction tx;
      tx.nonce = from_alice ? alice_nonce++ : bob_nonce++;
      tx.gas_price = U256(1);
      tx.gas_limit = 21'000;
      tx.to = (from_alice ? bob : alice).EthAddress();
      tx.value = U256(1);
      tx.Sign(from_alice ? alice : bob);
      auto hash = chain.SubmitTransaction(tx);
      if (!hash.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     hash.status().ToString().c_str());
        std::exit(1);
      }
      ++fx.tx_count;
    }
    chain.MineBlock();
  }
  fx.blocks = chain.blocks();
  return fx;
}

// Copies the fixture's blocks with every sender memo cold (decode resets
// the mutable cache), so each verification run pays for all recoveries.
std::vector<chain::Block> ColdBlocks(const VerifyFixture& fx) {
  std::vector<chain::Block> cold = fx.blocks;
  for (chain::Block& block : cold) {
    for (chain::Transaction& tx : block.transactions) {
      auto decoded = chain::Transaction::Decode(tx.Encode());
      if (!decoded.ok()) {
        std::fprintf(stderr, "decode failed: %s\n",
                     decoded.status().ToString().c_str());
        std::exit(1);
      }
      tx = *decoded;
    }
  }
  return cold;
}

double TimeVerify(const VerifyFixture& fx, bool parallel, int rounds,
                  bool* all_ok) {
  chain::VerifyOptions options{.parallel_sender_recovery = parallel};
  double best = 0;
  for (int r = 0; r < rounds; ++r) {
    std::vector<chain::Block> cold = ColdBlocks(fx);
    double start = NowUs();
    Status st = chain::VerifyChain(cold, fx.alloc, fx.config, options);
    double elapsed = NowUs() - start;
    if (!st.ok()) *all_ok = false;
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path =
      obs::JsonPathFromArgsOrExit(&argc, argv, "BENCH_crypto.json");
  int iters = 400;
  int blocks = 8;
  int txs_per_block = 16;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0) iters = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--blocks") == 0) blocks = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--txs") == 0) {
      txs_per_block = std::atoi(argv[i + 1]);
    }
  }
  if (iters < 1) iters = 1;
  int ref_iters = iters / 8 > 0 ? iters / 8 : 1;

  std::printf("=== secp256k1 hot path: fast vs reference backend ===\n");
  std::printf("iters: fast=%d reference=%d\n\n", iters, ref_iters);
  std::printf("%-22s %10s %12s %10s %12s %8s\n", "op", "fast us", "fast op/s",
              "ref us", "ref op/s", "speedup");

  auto key = secp256k1::PrivateKey::FromSeed("bench-signer");
  std::vector<Hash32> digests;
  std::vector<secp256k1::Signature> sigs;
  for (int i = 0; i < iters; ++i) {
    digests.push_back(Keccak256(BytesOf("bench-msg-" + std::to_string(i))));
    auto sig = secp256k1::Sign(digests.back(), key);
    if (!sig.ok()) {
      std::fprintf(stderr, "sign failed\n");
      return 1;
    }
    sigs.push_back(*sig);
  }
  secp256k1::AffinePoint pub = key.PublicKey();

  OpResult sign = TimeBackends(iters, ref_iters, [&](int i) {
    (void)secp256k1::Sign(digests[i % iters], key);
  });
  PrintOp("sign", sign);

  OpResult verify = TimeBackends(iters, ref_iters, [&](int i) {
    (void)secp256k1::Verify(digests[i % iters], sigs[i % iters], pub);
  });
  PrintOp("verify", verify);

  OpResult recover = TimeBackends(iters, ref_iters, [&](int i) {
    const auto& sig = sigs[i % iters];
    (void)secp256k1::RecoverAddress(digests[i % iters], sig.v, sig.r, sig.s);
  });
  PrintOp("recover", recover);

  // Field kernels (both backends callable directly; many more iterations —
  // these are nanosecond-scale).
  U256 elem = U256(0x1234567890abcdefULL, 0xfedcba0987654321ULL,
                   0x0f1e2d3c4b5a6978ULL, 0x8796a5b4c3d2e1f0ULL) %
              secp256k1::FieldPrime();
  int field_iters = iters * 250;
  OpResult field_sqr;
  {
    double start = NowUs();
    U256 acc = elem;
    for (int i = 0; i < field_iters; ++i) acc = secp256k1::internal::FieldSqr(acc);
    field_sqr.fast_us_per_op = (NowUs() - start) / field_iters;
    start = NowUs();
    for (int i = 0; i < field_iters; ++i) {
      acc = secp256k1::internal::FieldSqrReference(acc);
    }
    field_sqr.ref_us_per_op = (NowUs() - start) / field_iters;
    if (acc.IsZero()) std::printf("(unreachable)\n");  // keep acc live
  }
  PrintOp("field sqr", field_sqr);

  int inv_iters = iters * 4;
  OpResult field_inv;
  {
    double start = NowUs();
    for (int i = 0; i < inv_iters; ++i) {
      elem = secp256k1::internal::FieldInvFast(elem + U256(i));
    }
    field_inv.fast_us_per_op = (NowUs() - start) / inv_iters;
    start = NowUs();
    for (int i = 0; i < inv_iters; ++i) {
      elem = secp256k1::internal::FieldInvReference(elem + U256(i));
    }
    field_inv.ref_us_per_op = (NowUs() - start) / inv_iters;
  }
  PrintOp("field inv", field_inv);

  // End-to-end: verify a freshly built chain, serial vs parallel sender
  // pre-recovery (fast backend, as a node would run it).
  VerifyFixture fx = BuildChain(blocks, txs_per_block);
  bool verify_ok = true;
  double serial_us = TimeVerify(fx, /*parallel=*/false, /*rounds=*/3,
                                &verify_ok);
  double parallel_us = TimeVerify(fx, /*parallel=*/true, /*rounds=*/3,
                                  &verify_ok);
  std::printf("\n=== chain verification (%d blocks x %d txs, %zu workers) "
              "===\n",
              blocks, txs_per_block, ThreadPool::Shared().worker_count());
  std::printf("serial:   %10.0f us (%.1f tx/s)\n", serial_us,
              fx.tx_count * 1e6 / serial_us);
  std::printf("parallel: %10.0f us (%.1f tx/s)  speedup %.2fx\n", parallel_us,
              fx.tx_count * 1e6 / parallel_us, serial_us / parallel_us);
  std::printf("statuses ok: %s\n", verify_ok ? "yes" : "NO");

  obs::Json results =
      obs::Json::Object()
          .Set("iters", obs::Json::Int(iters))
          .Set("reference_iters", obs::Json::Int(ref_iters))
          .Set("sign", OpJson(sign))
          .Set("verify", OpJson(verify))
          .Set("recover", OpJson(recover))
          .Set("field_sqr", OpJson(field_sqr))
          .Set("field_inv", OpJson(field_inv))
          .Set("verify_chain",
               obs::Json::Object()
                   .Set("blocks", obs::Json::Int(blocks))
                   .Set("txs_per_block", obs::Json::Int(txs_per_block))
                   .Set("tx_count", obs::Json::Uint(fx.tx_count))
                   .Set("workers",
                        obs::Json::Uint(ThreadPool::Shared().worker_count()))
                   .Set("serial_us", obs::Json::Num(serial_us))
                   .Set("parallel_us", obs::Json::Num(parallel_us))
                   .Set("speedup", obs::Json::Num(serial_us / parallel_us))
                   .Set("statuses_ok", obs::Json::Bool(verify_ok)));
  if (!json_path.empty()) {
    Status st = obs::WriteBenchJson(json_path, "crypto", std::move(results));
    if (!st.ok()) {
      std::fprintf(stderr, "json write failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return verify_ok ? 0 : 1;
}
