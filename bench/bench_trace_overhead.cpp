// Tracing overhead: transaction throughput with tracing disabled, sampled
// (1-in-64), full span tracing, and full per-opcode structLog collection.
// The "off" row is the baseline the others are normalized against; with no
// tracer installed every instrumented call site costs one null-pointer test,
// so the disabled row doubles as the "is tracing really free when off?"
// regression check.
//
// Writes BENCH_trace_overhead.json (onoffchain-bench-v1) via --json <path>.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chain/blockchain.h"
#include "contracts/betting.h"
#include "easm/assembler.h"
#include "obs/export.h"
#include "trace/structlog.h"
#include "trace/trace.h"

using namespace onoff;

namespace {

// A compute loop (256 iterations of ADD/DUP/GT/JUMPI) ending in an SSTORE:
// enough opcodes per transaction that per-step hooks dominate, like a real
// contract call rather than a bare transfer.
Bytes BuildLoopContract() {
  auto runtime = easm::Assemble(R"(
    PUSH1 0x00
    loop: JUMPDEST
    PUSH1 0x01 ADD
    DUP1 PUSH2 0x0100 GT
    PUSH @loop JUMPI
    PUSH1 0x00 SSTORE
    STOP
  )");
  if (!runtime.ok()) std::exit(1);
  std::string init_src = "PUSH2 0x" + [&] {
    char buf[8];
    std::snprintf(buf, sizeof buf, "%04zx", runtime->size());
    return std::string(buf);
  }();
  init_src += "\nPUSH @runtime PUSH1 0x01 ADD\nPUSH1 0x00\nCODECOPY\n";
  init_src += "PUSH2 0x" + [&] {
    char buf[8];
    std::snprintf(buf, sizeof buf, "%04zx", runtime->size());
    return std::string(buf);
  }();
  init_src += " PUSH1 0x00 RETURN\nruntime: DB 0x" + ToHex(*runtime) + "\n";
  auto init = easm::Assemble(init_src);
  if (!init.ok()) std::exit(1);
  return *init;
}

struct Mode {
  const char* name;
  bool install_tracer;
  uint64_t sample_every;
  bool structlog;
};

struct Measurement {
  double wall_ms = 0;
  double tx_per_s = 0;
};

Measurement RunMode(const Mode& mode, const Bytes& init, uint64_t txs) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  chain::Blockchain chain;
  chain.FundAccount(alice.EthAddress(), contracts::Ether(1000));

  trace::TracerConfig config;
  config.sample_every = mode.sample_every;
  trace::Tracer tracer(config);
  trace::Tracer* previous = nullptr;
  if (mode.install_tracer) previous = trace::Tracer::InstallGlobal(&tracer);
  trace::StructLogConfig slog_config;
  slog_config.stack_top_k = 8;
  trace::StructLogTracer structlog(slog_config);
  if (mode.structlog) chain.set_step_tracer(&structlog);

  auto deploy = chain.Execute(alice, std::nullopt, U256(), init, 500'000);
  if (!deploy.ok() || !deploy->success) std::exit(1);
  Address contract = deploy->contract_address;

  auto run_txs = [&](uint64_t count) {
    for (uint64_t i = 0; i < count; ++i) {
      trace::TraceContext ctx;
      if (mode.install_tracer) ctx = tracer.StartTrace();
      trace::ScopedSpan span(mode.install_tracer ? &tracer : nullptr, ctx,
                             "bench.tx", "bench");
      trace::ScopedContext ambient(span.context());
      auto receipt = chain.Execute(alice, contract, U256(), {}, 100'000);
      if (!receipt.ok() || !receipt->success) std::exit(1);
      // Per-transaction structLog, like debug_traceTransaction: keep the
      // collection cost, drop the records.
      if (mode.structlog) structlog.Clear();
    }
  };
  run_txs(txs / 10 + 1);  // warmup

  auto start = std::chrono::steady_clock::now();
  run_txs(txs);
  auto end = std::chrono::steady_clock::now();

  if (mode.install_tracer) trace::Tracer::InstallGlobal(previous);
  Measurement m;
  m.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  m.tx_per_s = m.wall_ms > 0 ? 1000.0 * static_cast<double>(txs) / m.wall_ms
                             : 0.0;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path =
      obs::JsonPathFromArgsOrExit(&argc, argv, "BENCH_trace_overhead.json");
  uint64_t txs = 300;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--txs") == 0) {
      txs = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }

  const Mode modes[] = {
      {"off", false, 1, false},
      {"sampled_1_in_64", true, 64, false},
      {"full_spans", true, 1, false},
      {"full_structlog", true, 1, true},
  };

  Bytes init = BuildLoopContract();
  std::printf("=== Tracing overhead: %llu loop-contract txs per mode ===\n\n",
              static_cast<unsigned long long>(txs));
  std::printf("%-18s %12s %12s %10s\n", "mode", "wall (ms)", "tx/s",
              "vs off");

  obs::Json results = obs::Json::Array();
  double off_tx_per_s = 0;
  for (const Mode& mode : modes) {
    Measurement m = RunMode(mode, init, txs);
    if (std::strcmp(mode.name, "off") == 0) off_tx_per_s = m.tx_per_s;
    double relative = off_tx_per_s > 0 ? m.tx_per_s / off_tx_per_s : 1.0;
    std::printf("%-18s %12.1f %12.0f %9.2fx\n", mode.name, m.wall_ms,
                m.tx_per_s, relative);
    results.Push(obs::Json::Object()
                     .Set("mode", obs::Json::Str(mode.name))
                     .Set("txs", obs::Json::Num(static_cast<double>(txs)))
                     .Set("wall_ms", obs::Json::Num(m.wall_ms))
                     .Set("tx_per_s", obs::Json::Num(m.tx_per_s))
                     .Set("throughput_vs_off", obs::Json::Num(relative)));
  }

  if (!json_path.empty()) {
    Status st = obs::WriteBenchJson(json_path, "trace_overhead",
                                    std::move(results));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
