// Contract code generation toolkit: a deterministic "compiler" from a small
// set of EVM idioms (selector dispatch, require-guards, storage access,
// ether transfer, inter-contract calls) to runtime bytecode, plus the
// standard deployer wrapper that turns runtime code into init code.
//
// The paper requires all participants to compile the off-chain contract to
// the *same bytecode* ("all the participants should use the same version of
// compiler"); this generator is deterministic by construction.

#ifndef ONOFFCHAIN_CONTRACTS_CODEGEN_H_
#define ONOFFCHAIN_CONTRACTS_CODEGEN_H_

#include <string_view>
#include <vector>

#include "abi/abi.h"
#include "easm/assembler.h"
#include "evm/opcodes.h"
#include "support/address.h"
#include "support/bytes.h"
#include "support/status.h"
#include "support/u256.h"

namespace onoff::contracts {

// Wraps runtime bytecode in the standard constructor-less deployer: init
// code that CODECOPYs the runtime and RETURNs it.
Bytes WrapDeployer(const Bytes& runtime);

// Builder for runtime bytecode with function dispatch.
//
// Usage:
//   ContractWriter w;
//   auto f = w.Declare("deposit()");
//   w.FinishDispatch();            // after all Declare() calls
//   w.BeginFunction(f);
//   ... body using helpers / w.b() ...
//   w.EndFunctionStop();
//   Bytes runtime = w.BuildRuntime();
class ContractWriter {
 public:
  using Label = easm::CodeBuilder::Label;

  ContractWriter();

  // Declares an externally callable function by ABI signature; must be
  // called before FinishDispatch. Returns the label to bind with
  // BeginFunction.
  Label Declare(std::string_view signature);
  // Emits the fallback (revert on unknown selector); call exactly once after
  // all Declare()s.
  void FinishDispatch();

  // Binds a declared function's entry point.
  void BeginFunction(Label label);
  // Terminates a function body with STOP.
  void EndFunctionStop();
  // Terminates a function body returning the word on top of the stack.
  void EndFunctionReturnWord();

  // ---- Expression helpers (values go to the EVM stack) ----
  void PushU(const U256& v);
  void PushAddress(const Address& a);
  void PushCaller();
  void PushCallValue();
  void PushTimestamp();
  // Loads argument word `index` (0-based, after the selector).
  void PushArg(int index);
  void SLoad(const U256& slot);
  // Stores stack top to `slot`.
  void SStore(const U256& slot);
  // Stores stack top to the slot whose number is *below it* on the stack
  // (stack: ... slot value -> ...).
  void SStoreDynamic();

  // ---- Statement helpers ----
  // Pops a condition; reverts if zero.
  void Require();
  // Reverts unconditionally.
  void Revert();
  // Pops a condition; reverts if NON-zero (require-not).
  void RequireNot();

  // require(msg.sender == a || msg.sender == b)
  void RequireCallerIsEither(const Address& a, const Address& b);
  // require(msg.sender is one of `addrs`); addrs must be non-empty.
  void RequireCallerIsOneOf(const std::vector<Address>& addrs);
  // require(timestamp < t)
  void RequireBefore(uint64_t t);
  // require(timestamp >= t)
  void RequireAtOrAfter(uint64_t t);

  // Pops amount, then recipient address; sends ether via CALL with the
  // 2300-gas stipend (Solidity `transfer`) and requires success.
  // Stack: ... to amount -> ...
  void TransferEther();

  // Pushes 1 if caller == `a`, else 0.
  void CallerIs(const Address& a);

  // ---- Raw access ----
  easm::CodeBuilder& b() { return builder_; }
  Label NewLabel() { return builder_.NewLabel(); }
  void Bind(Label l) { builder_.Bind(l); }

  Result<Bytes> BuildRuntime() const { return builder_.Build(); }

 private:
  easm::CodeBuilder builder_;
  std::vector<std::pair<abi::Selector, Label>> functions_;
  bool dispatch_finished_ = false;
};

// ---- Shared fragments for the dispute machinery ----

// Memory layout used by the verification/creation fragments below.
namespace dispute_mem {
inline constexpr uint64_t kEcInput = 0x00;   // hash | v | r | s
inline constexpr uint64_t kEcOutput = 0x80;  // recovered address
inline constexpr uint64_t kBytecodeAt = 0x100;
}  // namespace dispute_mem

// Stages the dynamic `bytes` argument 0 at dispute_mem::kBytecodeAt, stores
// keccak256(bytes) at dispute_mem::kEcInput, and leaves [len] on the stack.
void EmitStageBytesArg0(ContractWriter& w);

// Runs the ecrecover precompile over the hash already stored at
// dispute_mem::kEcInput with (v, r, s) in calldata args [arg_base ..
// arg_base+2], and requires the recovered address to equal `expected`.
// Stack-neutral.
void EmitEcrecoverRequire(ContractWriter& w, int arg_base,
                          const Address& expected);

// CREATEs a contract from the staged bytecode; expects [len] on the stack,
// leaves [addr], and requires the creation to succeed.
void EmitCreateFromStagedBytes(ContractWriter& w);

}  // namespace onoff::contracts

#endif  // ONOFFCHAIN_CONTRACTS_CODEGEN_H_
