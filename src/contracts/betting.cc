#include "contracts/betting.h"

#include "contracts/codegen.h"
#include "crypto/keccak.h"
#include "evm/opcodes.h"

namespace onoff::contracts {

using evm::Opcode;

namespace {

constexpr std::string_view kDepositSig = "deposit()";
constexpr std::string_view kRefundOneSig = "refundRoundOne()";
constexpr std::string_view kRefundTwoSig = "refundRoundTwo()";
constexpr std::string_view kReassignSig = "reassign()";
constexpr std::string_view kDeploySig =
    "deployVerifiedInstance(bytes,uint8,bytes32,bytes32,uint8,bytes32,bytes32)";
constexpr std::string_view kEnforceSig = "enforceDisputeResolution(bool)";
constexpr std::string_view kReturnSig = "returnDisputeResolution(address)";
constexpr std::string_view kGetWinnerSig = "getWinner()";

// Pushes `1` if caller is `a`, `0` if caller is someone else; the caller-
// index convention maps alice->slot kBalanceAlice, bob->kBalanceBob.
void EmitCallerSlot(ContractWriter& w, const BettingConfig& cfg) {
  // slot = (caller == alice) ? 0 : 1
  w.CallerIs(cfg.alice);
  w.b().Op(Opcode::ISZERO);
}

// require(balances both equal the full stake: deposit + security).
void EmitRequireAmountMet(ContractWriter& w, const BettingConfig& cfg) {
  w.SLoad(U256(betting_slots::kBalanceAlice));
  w.PushU(cfg.TotalStake());
  w.b().Op(Opcode::EQ);
  w.SLoad(U256(betting_slots::kBalanceBob));
  w.PushU(cfg.TotalStake());
  w.b().Op(Opcode::EQ);
  w.b().Op(Opcode::AND);
  w.Require();
}

// Refund the caller's own balance (shared by both refund rounds):
// slot = callerSlot; bal = sload(slot); require bal > 0; sstore(slot, 0);
// caller.transfer(bal).
void EmitRefundCaller(ContractWriter& w, const BettingConfig& cfg) {
  EmitCallerSlot(w, cfg);           // [slot]
  w.b().Op(Opcode::DUP1);
  w.b().Op(Opcode::SLOAD);          // [slot, bal]
  w.b().Op(Opcode::DUP1);
  w.Require();                      // require bal != 0
  w.b().Op(Opcode::DUP2);           // [slot, bal, slot]
  w.PushU(U256(0));                 // [slot, bal, slot, 0]
  w.SStoreDynamic();                // [slot, bal]
  w.PushCaller();                   // [slot, bal, caller]
  w.b().Op(Opcode::SWAP1);          // [slot, caller, bal]
  w.TransferEther();                // [slot]
  w.b().Op(Opcode::POP);
}

// Emits the reveal() computation; leaves the winner bit (1 = bob) on the
// stack. Uses memory [0x00, 0x40) as scratch.
void EmitReveal(ContractWriter& w, const OffchainConfig& cfg) {
  w.PushU(cfg.secret_alice);
  w.PushU(U256(0x00));
  w.b().Op(Opcode::MSTORE);
  w.PushU(cfg.secret_bob);
  w.PushU(U256(0x20));
  w.b().Op(Opcode::MSTORE);
  w.PushU(U256(0x40));
  w.PushU(U256(0x00));
  w.b().Op(Opcode::SHA3);                 // [h]
  w.PushU(U256(cfg.reveal_iterations));   // [h, n]
  auto loop = w.NewLabel();
  auto end = w.NewLabel();
  w.Bind(loop);
  w.b().Op(Opcode::DUP1);
  w.b().Op(Opcode::ISZERO);
  w.b().PushLabel(end);
  w.b().Op(Opcode::JUMPI);
  // n -= 1
  w.PushU(U256(1));
  w.b().Op(Opcode::SWAP1);
  w.b().Op(Opcode::SUB);                  // [h, n-1]
  w.b().Op(Opcode::SWAP1);                // [n-1, h]
  w.PushU(U256(0x00));
  w.b().Op(Opcode::MSTORE);               // [n-1]
  w.PushU(U256(0x20));
  w.PushU(U256(0x00));
  w.b().Op(Opcode::SHA3);                 // [n-1, h']
  w.b().Op(Opcode::SWAP1);                // [h', n-1]
  w.b().PushLabel(loop);
  w.b().Op(Opcode::JUMP);
  w.Bind(end);
  w.b().Op(Opcode::POP);                  // [h]
  w.PushU(U256(1));
  w.b().Op(Opcode::AND);                  // [winner]
}

}  // namespace

U256 Ether(uint64_t n) { return U256(n) * U256(10).Exp(U256(18)); }

Result<Bytes> BuildOnChainRuntime(const BettingConfig& cfg) {
  ContractWriter w;
  auto f_deposit = w.Declare(kDepositSig);
  auto f_refund1 = w.Declare(kRefundOneSig);
  auto f_refund2 = w.Declare(kRefundTwoSig);
  auto f_reassign = w.Declare(kReassignSig);
  auto f_deploy = w.Declare(kDeploySig);
  auto f_enforce = w.Declare(kEnforceSig);
  w.FinishDispatch();

  // ---- deposit() payable, beforeT1, certifiedparticipantOnly ----
  w.BeginFunction(f_deposit);
  w.RequireBefore(cfg.t1);
  w.RequireCallerIsEither(cfg.alice, cfg.bob);
  // require(msg.value == deposit_amount + security_deposit)
  w.PushCallValue();
  w.PushU(cfg.TotalStake());
  w.b().Op(Opcode::EQ);
  w.Require();
  // require(balance[caller] == 0), then balance[caller] = msg.value.
  EmitCallerSlot(w, cfg);            // [slot]
  w.b().Op(Opcode::DUP1);
  w.b().Op(Opcode::SLOAD);
  w.b().Op(Opcode::ISZERO);
  w.Require();                       // [slot]
  w.PushCallValue();                 // [slot, value]
  w.SStoreDynamic();
  w.EndFunctionStop();

  // ---- refundRoundOne() beforeT1 ----
  w.BeginFunction(f_refund1);
  w.RequireBefore(cfg.t1);
  w.RequireCallerIsEither(cfg.alice, cfg.bob);
  EmitRefundCaller(w, cfg);
  w.EndFunctionStop();

  // ---- refundRoundTwo() T1..T2, amountNotMet ----
  w.BeginFunction(f_refund2);
  w.RequireAtOrAfter(cfg.t1);
  w.RequireBefore(cfg.t2);
  w.RequireCallerIsEither(cfg.alice, cfg.bob);
  // require(!(balA == stake && balB == stake))
  w.SLoad(U256(betting_slots::kBalanceAlice));
  w.PushU(cfg.TotalStake());
  w.b().Op(Opcode::EQ);
  w.SLoad(U256(betting_slots::kBalanceBob));
  w.PushU(cfg.TotalStake());
  w.b().Op(Opcode::EQ);
  w.b().Op(Opcode::AND);
  w.RequireNot();
  EmitRefundCaller(w, cfg);
  w.EndFunctionStop();

  // ---- reassign() T2..T3: the caller admits losing; counterparty gets all.
  w.BeginFunction(f_reassign);
  w.RequireAtOrAfter(cfg.t2);
  w.RequireBefore(cfg.t3);
  w.RequireCallerIsEither(cfg.alice, cfg.bob);
  EmitRequireAmountMet(w, cfg);
  // require(!resolved); resolved = 1.
  w.SLoad(U256(betting_slots::kResolved));
  w.RequireNot();
  w.PushU(U256(1));
  w.SStore(U256(betting_slots::kResolved));
  // Zero both balances.
  w.PushU(U256(0));
  w.SStore(U256(betting_slots::kBalanceAlice));
  w.PushU(U256(0));
  w.SStore(U256(betting_slots::kBalanceBob));
  // recipient = (caller == alice) ? bob : alice.
  {
    auto is_alice = w.NewLabel();
    auto done = w.NewLabel();
    w.CallerIs(cfg.alice);
    w.b().PushLabel(is_alice);
    w.b().Op(Opcode::JUMPI);
    w.PushAddress(cfg.alice);  // caller is bob -> alice gets the pot
    w.b().PushLabel(done);
    w.b().Op(Opcode::JUMP);
    w.Bind(is_alice);
    w.PushAddress(cfg.bob);
    w.Bind(done);
  }
  // The counterparty (winner) receives both bet deposits plus their own
  // security; the caller (loser admitted honestly) gets their security back.
  w.PushU(cfg.deposit_amount * U256(2) + cfg.security_deposit);  // [to, amt]
  w.TransferEther();
  if (!cfg.security_deposit.IsZero()) {
    w.PushCaller();
    w.PushU(cfg.security_deposit);
    w.TransferEther();
  }
  w.EndFunctionStop();

  // ---- deployVerifiedInstance(bytes,uint8,bytes32,bytes32,uint8,bytes32,
  //      bytes32) afterT3, certifiedparticipantOnly, amountMet (Alg. 5) ----
  w.BeginFunction(f_deploy);
  w.RequireAtOrAfter(cfg.t3);
  w.RequireCallerIsEither(cfg.alice, cfg.bob);
  EmitRequireAmountMet(w, cfg);
  w.SLoad(U256(betting_slots::kResolved));
  w.RequireNot();
  // Only one verified instance may ever be created.
  w.SLoad(U256(betting_slots::kDeployedAddr));
  w.RequireNot();
  // Stage the candidate bytecode and verify both signatures
  // (Alg. 5: a == participant[0], b == participant[1]).
  EmitStageBytesArg0(w);
  EmitEcrecoverRequire(w, /*arg_base=*/1, cfg.alice);
  EmitEcrecoverRequire(w, /*arg_base=*/4, cfg.bob);
  // create(0, bytecode, len)  (Alg. 5 assembly).
  EmitCreateFromStagedBytes(w);
  w.SStore(U256(betting_slots::kDeployedAddr));
  // Remember who paid for the dispute (compensated from the loser's
  // security deposit when enforcement lands).
  w.PushCaller();
  w.SStore(U256(betting_slots::kChallenger));
  w.EndFunctionStop();

  // ---- enforceDisputeResolution(bool) deployedAddrOnly (Alg. 6) ----
  w.BeginFunction(f_enforce);
  // require(deployedAddr != 0 && msg.sender == deployedAddr)
  w.SLoad(U256(betting_slots::kDeployedAddr));
  w.b().Op(Opcode::DUP1);
  w.Require();
  w.PushCaller();
  w.b().Op(Opcode::EQ);
  w.Require();
  w.SLoad(U256(betting_slots::kResolved));
  w.RequireNot();
  w.PushU(U256(1));
  w.SStore(U256(betting_slots::kResolved));
  // total = balA + balB (sum BEFORE zeroing; fixes the Alg. 6 ordering bug).
  w.SLoad(U256(betting_slots::kBalanceAlice));
  w.SLoad(U256(betting_slots::kBalanceBob));
  w.b().Op(Opcode::ADD);             // [total]
  w.PushU(U256(0));
  w.SStore(U256(betting_slots::kBalanceAlice));
  w.PushU(U256(0));
  w.SStore(U256(betting_slots::kBalanceBob));
  // recipient = winner ? bob : alice.
  {
    auto bob_wins = w.NewLabel();
    auto send = w.NewLabel();
    w.PushArg(0);
    w.b().PushLabel(bob_wins);
    w.b().Op(Opcode::JUMPI);
    w.PushAddress(cfg.alice);
    w.b().PushLabel(send);
    w.b().Op(Opcode::JUMP);
    w.Bind(bob_wins);
    w.PushAddress(cfg.bob);
    w.Bind(send);                    // [total, to]
    w.b().Op(Opcode::SWAP1);         // [to, total]
  }
  if (!cfg.security_deposit.IsZero()) {
    // The winner receives the pot minus the loser's forfeited security:
    // amount = total - security. Stack: [to, total].
    w.PushU(cfg.security_deposit);   // [to, total, sec]
    w.b().Op(Opcode::SWAP1);         // [to, sec, total]
    w.b().Op(Opcode::SUB);           // [to, total - sec]
  }
  w.TransferEther();
  if (!cfg.security_deposit.IsZero()) {
    // The forfeited security compensates whoever paid for the dispute
    // (paper §IV: the honest participant funding dispute resolution is
    // compensated by the dishonest one).
    w.SLoad(U256(betting_slots::kChallenger));  // [challenger]
    w.PushU(cfg.security_deposit);              // [to, amount]
    w.TransferEther();
  }
  w.EndFunctionStop();

  return w.BuildRuntime();
}

Result<Bytes> BuildOnChainInit(const BettingConfig& cfg) {
  ONOFF_ASSIGN_OR_RETURN(Bytes runtime, BuildOnChainRuntime(cfg));
  return WrapDeployer(runtime);
}

Result<Bytes> BuildOffChainRuntime(const OffchainConfig& cfg) {
  ContractWriter w;
  auto f_return = w.Declare(kReturnSig);
  auto f_get = w.Declare(kGetWinnerSig);
  w.FinishDispatch();

  // ---- returnDisputeResolution(address) certifiedparticipantOnly (Alg. 3):
  // C_on.enforceDisputeResolution(reveal()) ----
  w.BeginFunction(f_return);
  w.RequireCallerIsEither(cfg.alice, cfg.bob);
  EmitReveal(w, cfg);                // [winner]
  // calldata = selector ++ winner at memory 0x40.
  abi::Selector sel = abi::SelectorOf(kEnforceSig);
  U256 sel_word = U256::FromBigEndianTruncating(BytesView(sel.data(), 4))
                  << 224;
  w.PushU(sel_word);
  w.PushU(U256(0x40));
  w.b().Op(Opcode::MSTORE);
  w.PushU(U256(0x44));
  w.b().Op(Opcode::MSTORE);          // mem[0x44] = winner; []
  w.PushU(U256(0));                  // out size
  w.PushU(U256(0));                  // out offset
  w.PushU(U256(0x24));               // in size (4 + 32)
  w.PushU(U256(0x40));               // in offset
  w.PushU(U256(0));                  // value
  w.PushArg(0);                      // to = the on-chain contract
  w.b().Op(Opcode::GAS);             // forward all gas
  w.b().Op(Opcode::CALL);
  w.Require();
  w.EndFunctionStop();

  // ---- getWinner() view: lets participants execute reveal() locally ----
  w.BeginFunction(f_get);
  EmitReveal(w, cfg);
  w.EndFunctionReturnWord();

  return w.BuildRuntime();
}

Result<Bytes> BuildOffChainInit(const OffchainConfig& cfg) {
  ONOFF_ASSIGN_OR_RETURN(Bytes runtime, BuildOffChainRuntime(cfg));
  return WrapDeployer(runtime);
}

bool ComputeWinner(const OffchainConfig& cfg) {
  Bytes seed = cfg.secret_alice.ToBytes();
  Bytes secret_b = cfg.secret_bob.ToBytes();
  Append(seed, secret_b);
  Hash32 h = Keccak256(seed);
  for (uint64_t i = 0; i < cfg.reveal_iterations; ++i) {
    h = Keccak256(BytesView(h.data(), h.size()));
  }
  return (h[31] & 1) != 0;
}

Bytes DepositCalldata() { return abi::EncodeCall(kDepositSig, {}); }
Bytes RefundRoundOneCalldata() { return abi::EncodeCall(kRefundOneSig, {}); }
Bytes RefundRoundTwoCalldata() { return abi::EncodeCall(kRefundTwoSig, {}); }
Bytes ReassignCalldata() { return abi::EncodeCall(kReassignSig, {}); }

Bytes DeployVerifiedInstanceCalldata(const Bytes& offchain_bytecode,
                                     uint8_t va, const U256& ra, const U256& sa,
                                     uint8_t vb, const U256& rb,
                                     const U256& sb) {
  return abi::EncodeCall(
      kDeploySig,
      {abi::Value::DynBytes(offchain_bytecode), abi::Value::Uint(va),
       abi::Value::Bytes32(ra), abi::Value::Bytes32(sa), abi::Value::Uint(vb),
       abi::Value::Bytes32(rb), abi::Value::Bytes32(sb)});
}

Bytes EnforceDisputeResolutionCalldata(bool winner) {
  return abi::EncodeCall(kEnforceSig, {abi::Value::Bool(winner)});
}

Bytes ReturnDisputeResolutionCalldata(const Address& onchain_addr) {
  return abi::EncodeCall(kReturnSig, {abi::Value::Addr(onchain_addr)});
}

Bytes GetWinnerCalldata() { return abi::EncodeCall(kGetWinnerSig, {}); }

}  // namespace onoff::contracts
