// Synthetic contracts for the model-comparison experiments (Fig. 1): a
// "whole contract" with n light/public functions and m heavy/private
// functions, plus its hybrid split — an on-chain part (light functions and a
// submitResult() entry point) and an off-chain part (heavy functions that
// RETURN their results for local execution by participants).
//
// Light function i:  sstore(100+i, i+1)                (a typical state write)
// Heavy function i:  h = keccak-chain(seed=i, k iters); sstore(200+i, h)
// Hybrid submitResult(i, v): sstore(200+i, v) — so the hybrid chain reaches
// the same final storage as the all-on-chain model when participants submit
// the true off-chain results.

#ifndef ONOFFCHAIN_CONTRACTS_SYNTHETIC_H_
#define ONOFFCHAIN_CONTRACTS_SYNTHETIC_H_

#include <cstdint>

#include "support/bytes.h"
#include "support/status.h"
#include "support/u256.h"

namespace onoff::contracts {

struct SyntheticConfig {
  int num_light = 3;
  int num_heavy = 3;
  // keccak iterations per heavy function — the paper's "high-cost
  // computation" knob.
  uint64_t heavy_iterations = 100;
};

namespace synthetic_slots {
inline constexpr uint64_t kLightBase = 100;
inline constexpr uint64_t kHeavyBase = 200;
}  // namespace synthetic_slots

// All-on-chain model: every function deployed and executed by miners.
Result<Bytes> BuildWholeRuntime(const SyntheticConfig& config);
Result<Bytes> BuildWholeInit(const SyntheticConfig& config);

// Hybrid model, on-chain part: light functions + submitResult(uint256,uint256).
Result<Bytes> BuildHybridOnChainRuntime(const SyntheticConfig& config);
Result<Bytes> BuildHybridOnChainInit(const SyntheticConfig& config);

// Hybrid model, off-chain part: heavy functions returning their results.
Result<Bytes> BuildHybridOffChainRuntime(const SyntheticConfig& config);
Result<Bytes> BuildHybridOffChainInit(const SyntheticConfig& config);

// Calldata for the individual functions.
Bytes LightCalldata(int i);
Bytes HeavyCalldata(int i);
Bytes SubmitResultCalldata(int i, const U256& value);

// The heavy computation executed natively (reference result).
U256 NativeHeavyResult(int i, uint64_t iterations);

}  // namespace onoff::contracts

#endif  // ONOFFCHAIN_CONTRACTS_SYNTHETIC_H_
