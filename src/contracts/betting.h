// The paper's example contracts (Section IV, Algorithms 2-6), compiled to
// EVM bytecode by the deterministic codegen toolkit:
//
//  * the ON-CHAIN betting contract: deposit(), refundRoundOne(),
//    refundRoundTwo(), reassign() (light/public functions) padded with the
//    extra functions deployVerifiedInstance(...) and
//    enforceDisputeResolution(bool);
//  * the OFF-CHAIN contract: the heavy/private reveal() logic (private
//    betting secrets + an adjustable amount of computation) padded with the
//    extra function returnDisputeResolution(address), plus a
//    getWinner() view used by participants executing it locally.
//
// Participant addresses, time windows and the deposit amount are compiled in
// as immediates (the equivalent of Solidity constructor arguments fixed at
// compile time), which keeps the signed off-chain bytecode self-contained.
//
// Note: Algorithm 6 in the paper zeroes accountBalance[...] *before* summing
// them for the transfer, which would always transfer 0. We implement the
// evidently intended order (sum, zero, transfer) and document the deviation.

#ifndef ONOFFCHAIN_CONTRACTS_BETTING_H_
#define ONOFFCHAIN_CONTRACTS_BETTING_H_

#include <cstdint>

#include "abi/abi.h"
#include "support/address.h"
#include "support/bytes.h"
#include "support/status.h"
#include "support/u256.h"

namespace onoff::contracts {

// 10^18 wei.
U256 Ether(uint64_t n);

// Parameters of the on-chain betting contract (Table I).
struct BettingConfig {
  Address alice;              // participant[0]
  Address bob;                // participant[1]
  U256 deposit_amount;        // 1 ether in the paper
  // The paper's §IV extension: an additional security deposit per
  // participant. Each deposit() must carry deposit_amount +
  // security_deposit. On the honest path both securities are returned; on
  // the dispute path the dishonest loser's security compensates whoever
  // paid for deployVerifiedInstance (the challenger).
  U256 security_deposit;      // zero = the paper's base Table I rules
  uint64_t t1 = 0;            // deposit deadline
  uint64_t t2 = 0;            // refund-round-two deadline / result available
  uint64_t t3 = 0;            // reassign deadline; disputes open after this

  // Total wei each participant locks up.
  U256 TotalStake() const { return deposit_amount + security_deposit; }
};

// Storage layout of the on-chain contract.
namespace betting_slots {
inline constexpr uint64_t kBalanceAlice = 0;
inline constexpr uint64_t kBalanceBob = 1;
inline constexpr uint64_t kDeployedAddr = 2;
inline constexpr uint64_t kResolved = 3;
// Who called deployVerifiedInstance (paid for the dispute); receives the
// dishonest party's security deposit as compensation.
inline constexpr uint64_t kChallenger = 4;
}  // namespace betting_slots

// Parameters of the off-chain contract. The secrets are the private betting
// inputs that never appear on-chain unless a dispute forces them out;
// `reveal_iterations` scales the computational weight of reveal() (the
// "heavy" knob swept by the Table II benchmark).
struct OffchainConfig {
  Address alice;
  Address bob;
  U256 secret_alice;
  U256 secret_bob;
  uint64_t reveal_iterations = 0;
};

// On-chain contract: runtime bytecode, and init code for deployment.
Result<Bytes> BuildOnChainRuntime(const BettingConfig& config);
Result<Bytes> BuildOnChainInit(const BettingConfig& config);

// Off-chain contract. The *init* bytecode is what every participant signs
// and what deployVerifiedInstance() feeds to CREATE.
Result<Bytes> BuildOffChainRuntime(const OffchainConfig& config);
Result<Bytes> BuildOffChainInit(const OffchainConfig& config);

// The reveal() computation executed natively — what honest participants run
// locally to agree on the result without touching the chain. True = bob won.
bool ComputeWinner(const OffchainConfig& config);

// ---- Calldata builders for every function ----
Bytes DepositCalldata();
Bytes RefundRoundOneCalldata();
Bytes RefundRoundTwoCalldata();
Bytes ReassignCalldata();
// bytecode + both participants' (v,r,s) over keccak256(bytecode).
Bytes DeployVerifiedInstanceCalldata(const Bytes& offchain_bytecode,
                                     uint8_t va, const U256& ra, const U256& sa,
                                     uint8_t vb, const U256& rb, const U256& sb);
Bytes EnforceDisputeResolutionCalldata(bool winner);
Bytes ReturnDisputeResolutionCalldata(const Address& onchain_addr);
Bytes GetWinnerCalldata();

}  // namespace onoff::contracts

#endif  // ONOFFCHAIN_CONTRACTS_BETTING_H_
