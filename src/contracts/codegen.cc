#include "contracts/codegen.h"

#include <cassert>

namespace onoff::contracts {

using evm::Opcode;

Bytes WrapDeployer(const Bytes& runtime) {
  // PUSH2 len PUSH2 off PUSH1 0 CODECOPY PUSH2 len PUSH1 0 RETURN <runtime>
  // All widths fixed so the prologue size (15 bytes) is known up front.
  constexpr size_t kPrologue = 15;
  assert(runtime.size() <= 0xffff);
  easm::CodeBuilder b;
  b.PushN(2, U256(runtime.size()));
  b.PushN(2, U256(kPrologue));
  b.PushN(1, U256(0));
  b.Op(Opcode::CODECOPY);
  b.PushN(2, U256(runtime.size()));
  b.PushN(1, U256(0));
  b.Op(Opcode::RETURN);
  b.Raw(runtime);
  auto out = b.Build();
  assert(out.ok());
  return *out;
}

ContractWriter::ContractWriter() {
  // Load the 4-byte selector: calldataload(0) >> 224.
  builder_.Push(uint64_t{0});
  builder_.Op(Opcode::CALLDATALOAD);
  builder_.Push(uint64_t{224});
  builder_.Op(Opcode::SHR);
}

ContractWriter::Label ContractWriter::Declare(std::string_view signature) {
  assert(!dispatch_finished_);
  abi::Selector sel = abi::SelectorOf(signature);
  Label label = builder_.NewLabel();
  U256 sel_value = U256::FromBigEndianTruncating(BytesView(sel.data(), 4));
  builder_.Op(Opcode::DUP1);
  builder_.PushN(4, sel_value);
  builder_.Op(Opcode::EQ);
  builder_.PushLabel(label);
  builder_.Op(Opcode::JUMPI);
  functions_.emplace_back(sel, label);
  return label;
}

void ContractWriter::FinishDispatch() {
  assert(!dispatch_finished_);
  dispatch_finished_ = true;
  Revert();
}

void ContractWriter::BeginFunction(Label label) {
  assert(dispatch_finished_);
  builder_.Bind(label);
  builder_.Op(Opcode::POP);  // drop the selector left by the dispatcher
}

void ContractWriter::EndFunctionStop() { builder_.Op(Opcode::STOP); }

void ContractWriter::EndFunctionReturnWord() {
  // Stack: ... value
  builder_.Push(uint64_t{0});
  builder_.Op(Opcode::MSTORE);
  builder_.Push(uint64_t{32});
  builder_.Push(uint64_t{0});
  builder_.Op(Opcode::RETURN);
}

void ContractWriter::PushU(const U256& v) { builder_.Push(v); }

void ContractWriter::PushAddress(const Address& a) {
  builder_.PushN(20, a.ToWord());
}

void ContractWriter::PushCaller() { builder_.Op(Opcode::CALLER); }
void ContractWriter::PushCallValue() { builder_.Op(Opcode::CALLVALUE); }
void ContractWriter::PushTimestamp() { builder_.Op(Opcode::TIMESTAMP); }

void ContractWriter::PushArg(int index) {
  builder_.Push(uint64_t{4} + 32 * static_cast<uint64_t>(index));
  builder_.Op(Opcode::CALLDATALOAD);
}

void ContractWriter::SLoad(const U256& slot) {
  builder_.Push(slot);
  builder_.Op(Opcode::SLOAD);
}

void ContractWriter::SStore(const U256& slot) {
  // Stack: ... value. SSTORE pops the key from the top, so pushing the slot
  // last leaves exactly [value, slot] as required.
  builder_.Push(slot);
  builder_.Op(Opcode::SSTORE);
}

void ContractWriter::SStoreDynamic() {
  // Stack: ... slot value; SSTORE pops key first.
  builder_.Op(Opcode::SWAP1);
  builder_.Op(Opcode::SSTORE);
}

void ContractWriter::Require() {
  Label ok = builder_.NewLabel();
  builder_.PushLabel(ok);
  builder_.Op(Opcode::JUMPI);
  Revert();
  builder_.Bind(ok);
}

void ContractWriter::RequireNot() {
  builder_.Op(Opcode::ISZERO);
  Require();
}

void ContractWriter::Revert() {
  builder_.Push(uint64_t{0});
  builder_.Push(uint64_t{0});
  builder_.Op(Opcode::REVERT);
}

void ContractWriter::CallerIs(const Address& a) {
  PushCaller();
  PushAddress(a);
  builder_.Op(Opcode::EQ);
}

void ContractWriter::RequireCallerIsEither(const Address& a,
                                           const Address& b) {
  CallerIs(a);
  CallerIs(b);
  builder_.Op(Opcode::OR);
  Require();
}

void ContractWriter::RequireCallerIsOneOf(const std::vector<Address>& addrs) {
  assert(!addrs.empty());
  CallerIs(addrs[0]);
  for (size_t i = 1; i < addrs.size(); ++i) {
    CallerIs(addrs[i]);
    builder_.Op(Opcode::OR);
  }
  Require();
}

void ContractWriter::RequireBefore(uint64_t t) {
  PushTimestamp();
  PushU(U256(t));
  builder_.Op(Opcode::GT);  // t > timestamp
  Require();
}

void ContractWriter::RequireAtOrAfter(uint64_t t) {
  PushTimestamp();
  PushU(U256(t));
  builder_.Op(Opcode::GT);  // t > timestamp means too early
  RequireNot();
}

void ContractWriter::TransferEther() {
  // Stack in: ... to amount  (amount on top).
  // Emits CALL(gas=0 (+2300 stipend), to, value=amount, in=0/0, out=0/0) and
  // requires success. Operands are staged through the scratch words at
  // memory 0x00/0x20 to keep the stack choreography trivial.
  builder_.Push(uint64_t{0x00});
  builder_.Op(Opcode::MSTORE);  // mem[0x00] = amount; stack: ... to
  builder_.Push(uint64_t{0x20});
  builder_.Op(Opcode::MSTORE);  // mem[0x20] = to; stack: ...
  builder_.Push(uint64_t{0});   // out_size
  builder_.Push(uint64_t{0});   // out_off
  builder_.Push(uint64_t{0});   // in_size
  builder_.Push(uint64_t{0});   // in_off
  builder_.Push(uint64_t{0x00});
  builder_.Op(Opcode::MLOAD);   // value
  builder_.Push(uint64_t{0x20});
  builder_.Op(Opcode::MLOAD);   // to
  builder_.Push(uint64_t{0});   // gas (stipend covers an EOA receive)
  builder_.Op(Opcode::CALL);
  Require();
}

void EmitStageBytesArg0(ContractWriter& w) {
  w.PushArg(0);                        // relative offset of `bytes`
  w.PushU(U256(4));
  w.b().Op(Opcode::ADD);               // [abs] (position of the length word)
  w.b().Op(Opcode::DUP1);
  w.b().Op(Opcode::CALLDATALOAD);      // [abs, len]
  w.b().Op(Opcode::DUP1);              // [abs, len, len]
  w.b().Op(Opcode::SWAP2);             // [len, len, abs]
  w.PushU(U256(32));
  w.b().Op(Opcode::ADD);               // [len, len, data_off]
  w.PushU(U256(dispute_mem::kBytecodeAt));
  w.b().Op(Opcode::CALLDATACOPY);      // [len]
  w.b().Op(Opcode::DUP1);              // [len, len]
  w.PushU(U256(dispute_mem::kBytecodeAt));
  w.b().Op(Opcode::SHA3);              // [len, hash]
  w.PushU(U256(dispute_mem::kEcInput));
  w.b().Op(Opcode::MSTORE);            // [len]
}

void EmitEcrecoverRequire(ContractWriter& w, int arg_base,
                          const Address& expected) {
  // Clear the output word so a failed recover cannot alias a stale value.
  w.PushU(U256(0));
  w.PushU(U256(dispute_mem::kEcOutput));
  w.b().Op(Opcode::MSTORE);
  w.PushArg(arg_base);      // v
  w.PushU(U256(dispute_mem::kEcInput + 0x20));
  w.b().Op(Opcode::MSTORE);
  w.PushArg(arg_base + 1);  // r
  w.PushU(U256(dispute_mem::kEcInput + 0x40));
  w.b().Op(Opcode::MSTORE);
  w.PushArg(arg_base + 2);  // s
  w.PushU(U256(dispute_mem::kEcInput + 0x60));
  w.b().Op(Opcode::MSTORE);
  // CALL(gas=0xffff, to=1 (ecrecover), value=0, in=[0x00,0x80), out 0x20).
  w.PushU(U256(0x20));
  w.PushU(U256(dispute_mem::kEcOutput));
  w.PushU(U256(0x80));
  w.PushU(U256(dispute_mem::kEcInput));
  w.PushU(U256(0));
  w.PushU(U256(1));
  w.PushU(U256(0xffff));
  w.b().Op(Opcode::CALL);
  w.b().Op(Opcode::POP);
  w.PushU(U256(dispute_mem::kEcOutput));
  w.b().Op(Opcode::MLOAD);
  w.PushAddress(expected);
  w.b().Op(Opcode::EQ);
  w.Require();
}

void EmitCreateFromStagedBytes(ContractWriter& w) {
  // Stack in: [len]; create(0, staged bytecode, len).
  w.PushU(U256(dispute_mem::kBytecodeAt));
  w.PushU(U256(0));
  w.b().Op(Opcode::CREATE);            // [addr]
  w.b().Op(Opcode::DUP1);
  w.Require();
}

}  // namespace onoff::contracts
