#include "contracts/synthetic.h"

#include <string>

#include "abi/abi.h"
#include "contracts/codegen.h"
#include "crypto/keccak.h"
#include "evm/opcodes.h"

namespace onoff::contracts {

using evm::Opcode;

namespace {

std::string LightSig(int i) { return "light" + std::to_string(i) + "()"; }
std::string HeavySig(int i) { return "heavy" + std::to_string(i) + "()"; }
constexpr std::string_view kSubmitSig = "submitResult(uint256,uint256)";

// Emits the keccak chain seeded with `seed`; leaves the result word on the
// stack. Scratch: memory [0x00, 0x20).
void EmitHashChain(ContractWriter& w, uint64_t seed, uint64_t iterations) {
  w.PushU(U256(seed));
  w.PushU(U256(0x00));
  w.b().Op(Opcode::MSTORE);
  w.PushU(U256(0x20));
  w.PushU(U256(0x00));
  w.b().Op(Opcode::SHA3);          // [h]
  w.PushU(U256(iterations));       // [h, n]
  auto loop = w.NewLabel();
  auto end = w.NewLabel();
  w.Bind(loop);
  w.b().Op(Opcode::DUP1);
  w.b().Op(Opcode::ISZERO);
  w.b().PushLabel(end);
  w.b().Op(Opcode::JUMPI);
  w.PushU(U256(1));
  w.b().Op(Opcode::SWAP1);
  w.b().Op(Opcode::SUB);           // [h, n-1]
  w.b().Op(Opcode::SWAP1);         // [n-1, h]
  w.PushU(U256(0x00));
  w.b().Op(Opcode::MSTORE);        // [n-1]
  w.PushU(U256(0x20));
  w.PushU(U256(0x00));
  w.b().Op(Opcode::SHA3);          // [n-1, h']
  w.b().Op(Opcode::SWAP1);         // [h', n-1]
  w.b().PushLabel(loop);
  w.b().Op(Opcode::JUMP);
  w.Bind(end);
  w.b().Op(Opcode::POP);           // [h]
}

void EmitLightBody(ContractWriter& w, int i) {
  w.PushU(U256(static_cast<uint64_t>(i) + 1));
  w.SStore(U256(synthetic_slots::kLightBase + static_cast<uint64_t>(i)));
  w.EndFunctionStop();
}

}  // namespace

Result<Bytes> BuildWholeRuntime(const SyntheticConfig& cfg) {
  ContractWriter w;
  std::vector<ContractWriter::Label> light_labels;
  std::vector<ContractWriter::Label> heavy_labels;
  for (int i = 0; i < cfg.num_light; ++i) {
    light_labels.push_back(w.Declare(LightSig(i)));
  }
  for (int i = 0; i < cfg.num_heavy; ++i) {
    heavy_labels.push_back(w.Declare(HeavySig(i)));
  }
  w.FinishDispatch();
  for (int i = 0; i < cfg.num_light; ++i) {
    w.BeginFunction(light_labels[i]);
    EmitLightBody(w, i);
  }
  for (int i = 0; i < cfg.num_heavy; ++i) {
    w.BeginFunction(heavy_labels[i]);
    EmitHashChain(w, static_cast<uint64_t>(i), cfg.heavy_iterations);
    w.SStore(U256(synthetic_slots::kHeavyBase + static_cast<uint64_t>(i)));
    w.EndFunctionStop();
  }
  return w.BuildRuntime();
}

Result<Bytes> BuildWholeInit(const SyntheticConfig& cfg) {
  ONOFF_ASSIGN_OR_RETURN(Bytes runtime, BuildWholeRuntime(cfg));
  return WrapDeployer(runtime);
}

Result<Bytes> BuildHybridOnChainRuntime(const SyntheticConfig& cfg) {
  ContractWriter w;
  std::vector<ContractWriter::Label> light_labels;
  for (int i = 0; i < cfg.num_light; ++i) {
    light_labels.push_back(w.Declare(LightSig(i)));
  }
  auto submit = w.Declare(kSubmitSig);
  w.FinishDispatch();
  for (int i = 0; i < cfg.num_light; ++i) {
    w.BeginFunction(light_labels[i]);
    EmitLightBody(w, i);
  }
  // submitResult(uint256 index, uint256 value): sstore(kHeavyBase+index, value)
  w.BeginFunction(submit);
  w.PushArg(0);                               // index
  w.PushU(U256(synthetic_slots::kHeavyBase));
  w.b().Op(Opcode::ADD);                      // [slot]
  w.PushArg(1);                               // [slot, value]
  w.SStoreDynamic();
  w.EndFunctionStop();
  return w.BuildRuntime();
}

Result<Bytes> BuildHybridOnChainInit(const SyntheticConfig& cfg) {
  ONOFF_ASSIGN_OR_RETURN(Bytes runtime, BuildHybridOnChainRuntime(cfg));
  return WrapDeployer(runtime);
}

Result<Bytes> BuildHybridOffChainRuntime(const SyntheticConfig& cfg) {
  ContractWriter w;
  std::vector<ContractWriter::Label> heavy_labels;
  for (int i = 0; i < cfg.num_heavy; ++i) {
    heavy_labels.push_back(w.Declare(HeavySig(i)));
  }
  w.FinishDispatch();
  for (int i = 0; i < cfg.num_heavy; ++i) {
    w.BeginFunction(heavy_labels[i]);
    EmitHashChain(w, static_cast<uint64_t>(i), cfg.heavy_iterations);
    w.EndFunctionReturnWord();
  }
  return w.BuildRuntime();
}

Result<Bytes> BuildHybridOffChainInit(const SyntheticConfig& cfg) {
  ONOFF_ASSIGN_OR_RETURN(Bytes runtime, BuildHybridOffChainRuntime(cfg));
  return WrapDeployer(runtime);
}

Bytes LightCalldata(int i) { return abi::EncodeCall(LightSig(i), {}); }
Bytes HeavyCalldata(int i) { return abi::EncodeCall(HeavySig(i), {}); }

Bytes SubmitResultCalldata(int i, const U256& value) {
  return abi::EncodeCall(
      kSubmitSig,
      {abi::Value::Uint(static_cast<uint64_t>(i)), abi::Value::Uint(value)});
}

U256 NativeHeavyResult(int i, uint64_t iterations) {
  Hash32 h = Keccak256(U256(static_cast<uint64_t>(i)).ToBytes());
  for (uint64_t k = 0; k < iterations; ++k) {
    h = Keccak256(BytesView(h.data(), h.size()));
  }
  return U256::FromBigEndianTruncating(BytesView(h.data(), h.size()));
}

}  // namespace onoff::contracts
