#include "trie/trie.h"

#include <cassert>

#include "rlp/rlp.h"

namespace onoff::trie {

namespace internal {

struct Node {
  enum class Type { kLeaf, kExtension, kBranch };

  Type type;
  // Nibble path for leaf/extension nodes.
  std::vector<uint8_t> path;
  // Leaf value, or the value slot of a branch.
  Bytes value;
  // Extension child.
  std::unique_ptr<Node> child;
  // Branch children.
  std::array<std::unique_ptr<Node>, 16> children;

  static std::unique_ptr<Node> Leaf(std::vector<uint8_t> path, Bytes value) {
    auto n = std::make_unique<Node>();
    n->type = Type::kLeaf;
    n->path = std::move(path);
    n->value = std::move(value);
    return n;
  }
  static std::unique_ptr<Node> Extension(std::vector<uint8_t> path,
                                         std::unique_ptr<Node> child) {
    auto n = std::make_unique<Node>();
    n->type = Type::kExtension;
    n->path = std::move(path);
    n->child = std::move(child);
    return n;
  }
  static std::unique_ptr<Node> Branch() {
    auto n = std::make_unique<Node>();
    n->type = Type::kBranch;
    return n;
  }
};

}  // namespace internal

namespace {

using internal::Node;
using NodePtr = std::unique_ptr<Node>;
using Nibbles = std::vector<uint8_t>;

Nibbles Sub(const Nibbles& n, size_t from) {
  return Nibbles(n.begin() + from, n.end());
}

size_t CommonPrefix(const Nibbles& a, const Nibbles& b) {
  size_t i = 0;
  while (i < a.size() && i < b.size() && a[i] == b[i]) ++i;
  return i;
}

// ---- Insert ----

NodePtr InsertNode(NodePtr node, const Nibbles& key, Bytes value) {
  if (node == nullptr) {
    return Node::Leaf(key, std::move(value));
  }
  switch (node->type) {
    case Node::Type::kLeaf: {
      size_t cp = CommonPrefix(node->path, key);
      if (cp == node->path.size() && cp == key.size()) {
        node->value = std::move(value);
        return node;
      }
      // Split into a branch (optionally under an extension for the shared
      // prefix).
      NodePtr branch = Node::Branch();
      if (cp == node->path.size()) {
        branch->value = std::move(node->value);
      } else {
        uint8_t idx = node->path[cp];
        branch->children[idx] =
            Node::Leaf(Sub(node->path, cp + 1), std::move(node->value));
      }
      if (cp == key.size()) {
        branch->value = std::move(value);
      } else {
        uint8_t idx = key[cp];
        branch->children[idx] = Node::Leaf(Sub(key, cp + 1), std::move(value));
      }
      if (cp > 0) {
        Nibbles prefix(key.begin(), key.begin() + cp);
        return Node::Extension(std::move(prefix), std::move(branch));
      }
      return branch;
    }
    case Node::Type::kExtension: {
      size_t cp = CommonPrefix(node->path, key);
      if (cp == node->path.size()) {
        node->child = InsertNode(std::move(node->child), Sub(key, cp),
                                 std::move(value));
        return node;
      }
      // The extension splits.
      NodePtr branch = Node::Branch();
      uint8_t ext_idx = node->path[cp];
      Nibbles ext_rest = Sub(node->path, cp + 1);
      if (ext_rest.empty()) {
        branch->children[ext_idx] = std::move(node->child);
      } else {
        branch->children[ext_idx] =
            Node::Extension(std::move(ext_rest), std::move(node->child));
      }
      if (cp == key.size()) {
        branch->value = std::move(value);
      } else {
        branch->children[key[cp]] =
            Node::Leaf(Sub(key, cp + 1), std::move(value));
      }
      if (cp > 0) {
        Nibbles prefix(key.begin(), key.begin() + cp);
        return Node::Extension(std::move(prefix), std::move(branch));
      }
      return branch;
    }
    case Node::Type::kBranch: {
      if (key.empty()) {
        node->value = std::move(value);
        return node;
      }
      uint8_t idx = key[0];
      node->children[idx] = InsertNode(std::move(node->children[idx]),
                                       Sub(key, 1), std::move(value));
      return node;
    }
  }
  return node;  // unreachable
}

// ---- Delete ----

// Re-collapses an extension whose child may have degenerated.
NodePtr NormalizeExtension(NodePtr node) {
  assert(node->type == Node::Type::kExtension);
  Node* child = node->child.get();
  if (child == nullptr) return nullptr;
  switch (child->type) {
    case Node::Type::kLeaf: {
      Nibbles merged = node->path;
      merged.insert(merged.end(), child->path.begin(), child->path.end());
      return Node::Leaf(std::move(merged), std::move(child->value));
    }
    case Node::Type::kExtension: {
      Nibbles merged = node->path;
      merged.insert(merged.end(), child->path.begin(), child->path.end());
      return Node::Extension(std::move(merged), std::move(child->child));
    }
    case Node::Type::kBranch:
      return node;
  }
  return node;
}

// Collapses a branch left with a single child and no value, or only a value.
NodePtr NormalizeBranch(NodePtr node) {
  assert(node->type == Node::Type::kBranch);
  int live = -1;
  int count = 0;
  for (int i = 0; i < 16; ++i) {
    if (node->children[i] != nullptr) {
      live = i;
      ++count;
    }
  }
  bool has_value = !node->value.empty();
  if (count == 0 && !has_value) return nullptr;
  if (count == 0 && has_value) {
    return Node::Leaf(Nibbles{}, std::move(node->value));
  }
  if (count == 1 && !has_value) {
    NodePtr child = std::move(node->children[live]);
    Nibbles merged{static_cast<uint8_t>(live)};
    switch (child->type) {
      case Node::Type::kLeaf:
        merged.insert(merged.end(), child->path.begin(), child->path.end());
        return Node::Leaf(std::move(merged), std::move(child->value));
      case Node::Type::kExtension:
        merged.insert(merged.end(), child->path.begin(), child->path.end());
        return Node::Extension(std::move(merged), std::move(child->child));
      case Node::Type::kBranch:
        return Node::Extension(std::move(merged), std::move(child));
    }
  }
  return node;
}

NodePtr DeleteNode(NodePtr node, const Nibbles& key) {
  if (node == nullptr) return nullptr;
  switch (node->type) {
    case Node::Type::kLeaf:
      if (node->path == key) return nullptr;
      return node;
    case Node::Type::kExtension: {
      size_t cp = CommonPrefix(node->path, key);
      if (cp != node->path.size()) return node;  // key not present
      node->child = DeleteNode(std::move(node->child), Sub(key, cp));
      if (node->child == nullptr) return nullptr;
      return NormalizeExtension(std::move(node));
    }
    case Node::Type::kBranch: {
      if (key.empty()) {
        node->value.clear();
      } else {
        uint8_t idx = key[0];
        node->children[idx] =
            DeleteNode(std::move(node->children[idx]), Sub(key, 1));
      }
      return NormalizeBranch(std::move(node));
    }
  }
  return node;  // unreachable
}

// ---- Lookup ----

const Node* Find(const Node* node, const Nibbles& key, size_t pos) {
  if (node == nullptr) return nullptr;
  switch (node->type) {
    case Node::Type::kLeaf: {
      Nibbles rest(key.begin() + pos, key.end());
      return node->path == rest ? node : nullptr;
    }
    case Node::Type::kExtension: {
      if (key.size() - pos < node->path.size()) return nullptr;
      for (size_t i = 0; i < node->path.size(); ++i) {
        if (key[pos + i] != node->path[i]) return nullptr;
      }
      return Find(node->child.get(), key, pos + node->path.size());
    }
    case Node::Type::kBranch: {
      if (pos == key.size()) {
        return node->value.empty() ? nullptr : node;
      }
      return Find(node->children[key[pos]].get(), key, pos + 1);
    }
  }
  return nullptr;  // unreachable
}

// ---- Hashing ----

Bytes EncodeNode(const Node* node);

// A node reference inside a parent: raw encoding if < 32 bytes, else the
// 32-byte keccak wrapped as an RLP string.
Bytes RefNode(const Node* node) {
  Bytes enc = EncodeNode(node);
  if (enc.size() < 32) return enc;  // embedded structurally
  Hash32 h = Keccak256(enc);
  return rlp::EncodeString(BytesView(h.data(), h.size()));
}

Bytes EncodeNode(const Node* node) {
  switch (node->type) {
    case Node::Type::kLeaf: {
      std::vector<Bytes> fields;
      fields.push_back(rlp::EncodeString(HexPrefixEncode(node->path, true)));
      fields.push_back(rlp::EncodeString(node->value));
      return rlp::EncodeList(fields);
    }
    case Node::Type::kExtension: {
      std::vector<Bytes> fields;
      fields.push_back(rlp::EncodeString(HexPrefixEncode(node->path, false)));
      fields.push_back(RefNode(node->child.get()));
      return rlp::EncodeList(fields);
    }
    case Node::Type::kBranch: {
      std::vector<Bytes> fields;
      for (int i = 0; i < 16; ++i) {
        if (node->children[i] == nullptr) {
          fields.push_back(rlp::EncodeString(Bytes{}));
        } else {
          fields.push_back(RefNode(node->children[i].get()));
        }
      }
      fields.push_back(rlp::EncodeString(node->value));
      return rlp::EncodeList(fields);
    }
  }
  return {};  // unreachable
}

}  // namespace

Bytes HexPrefixEncode(const std::vector<uint8_t>& nibbles, bool is_leaf) {
  uint8_t flag = is_leaf ? 2 : 0;
  Bytes out;
  if (nibbles.size() % 2 == 0) {
    out.push_back(static_cast<uint8_t>(flag << 4));
    for (size_t i = 0; i < nibbles.size(); i += 2) {
      out.push_back(static_cast<uint8_t>((nibbles[i] << 4) | nibbles[i + 1]));
    }
  } else {
    out.push_back(static_cast<uint8_t>(((flag | 1) << 4) | nibbles[0]));
    for (size_t i = 1; i < nibbles.size(); i += 2) {
      out.push_back(static_cast<uint8_t>((nibbles[i] << 4) | nibbles[i + 1]));
    }
  }
  return out;
}

Result<HexPrefixPath> HexPrefixDecode(BytesView encoded) {
  if (encoded.empty()) {
    return Status::InvalidArgument("empty hex-prefix path");
  }
  HexPrefixPath out;
  uint8_t flag = encoded[0] >> 4;
  if (flag > 3) return Status::InvalidArgument("bad hex-prefix flag");
  out.is_leaf = (flag & 2) != 0;
  bool odd = (flag & 1) != 0;
  if (odd) out.nibbles.push_back(encoded[0] & 0xf);
  for (size_t i = 1; i < encoded.size(); ++i) {
    out.nibbles.push_back(encoded[i] >> 4);
    out.nibbles.push_back(encoded[i] & 0xf);
  }
  return out;
}

std::vector<uint8_t> BytesToNibbles(BytesView key) {
  std::vector<uint8_t> out;
  out.reserve(key.size() * 2);
  for (uint8_t b : key) {
    out.push_back(b >> 4);
    out.push_back(b & 0xf);
  }
  return out;
}

std::vector<Bytes> Trie::Prove(BytesView key) const {
  std::vector<Bytes> proof;
  Nibbles nibbles = BytesToNibbles(key);
  const Node* node = root_.get();
  size_t pos = 0;
  bool is_root = true;
  while (node != nullptr) {
    Bytes enc = EncodeNode(node);
    // Hashed nodes (and always the root) are standalone proof elements;
    // embedded nodes travel inside their parent's encoding.
    if (is_root || enc.size() >= 32) proof.push_back(std::move(enc));
    is_root = false;
    switch (node->type) {
      case Node::Type::kLeaf:
        return proof;
      case Node::Type::kExtension: {
        if (nibbles.size() - pos < node->path.size()) return proof;
        for (size_t i = 0; i < node->path.size(); ++i) {
          if (nibbles[pos + i] != node->path[i]) return proof;
        }
        pos += node->path.size();
        node = node->child.get();
        break;
      }
      case Node::Type::kBranch: {
        if (pos == nibbles.size()) return proof;
        node = node->children[nibbles[pos]].get();
        ++pos;
        break;
      }
    }
  }
  return proof;
}

Result<std::optional<Bytes>> Trie::VerifyProof(const Hash32& root,
                                               BytesView key,
                                               const std::vector<Bytes>& proof) {
  Nibbles nibbles = BytesToNibbles(key);
  if (proof.empty()) {
    // Only valid as an exclusion proof for the empty trie.
    if (root == EmptyRoot()) return std::optional<Bytes>(std::nullopt);
    return Status::VerificationFailed("empty proof for non-empty root");
  }

  size_t idx = 0;
  Hash32 expected = root;
  // Decode the next standalone proof node, checking its hash.
  auto next_node = [&]() -> Result<rlp::Item> {
    if (idx >= proof.size()) {
      return Status::VerificationFailed("proof truncated");
    }
    const Bytes& enc = proof[idx++];
    if (Keccak256(enc) != expected) {
      return Status::VerificationFailed("proof node hash mismatch");
    }
    return rlp::Decode(enc);
  };

  ONOFF_ASSIGN_OR_RETURN(rlp::Item item, next_node());
  size_t pos = 0;
  for (;;) {
    if (!item.IsList()) {
      return Status::VerificationFailed("proof node is not a list");
    }
    const std::vector<rlp::Item>& fields = item.list();
    const rlp::Item* next_ref = nullptr;
    if (fields.size() == 2) {
      if (!fields[0].IsString()) {
        return Status::VerificationFailed("malformed short node path");
      }
      ONOFF_ASSIGN_OR_RETURN(HexPrefixPath hp,
                             HexPrefixDecode(fields[0].string()));
      Nibbles rest(nibbles.begin() + pos, nibbles.end());
      if (hp.is_leaf) {
        if (!fields[1].IsString()) {
          return Status::VerificationFailed("malformed leaf value");
        }
        if (hp.nibbles == rest) return std::optional<Bytes>(fields[1].string());
        return std::optional<Bytes>(std::nullopt);  // absence proven
      }
      // Extension.
      if (rest.size() < hp.nibbles.size() ||
          !std::equal(hp.nibbles.begin(), hp.nibbles.end(), rest.begin())) {
        return std::optional<Bytes>(std::nullopt);
      }
      pos += hp.nibbles.size();
      next_ref = &fields[1];
    } else if (fields.size() == 17) {
      if (pos == nibbles.size()) {
        if (!fields[16].IsString()) {
          return Status::VerificationFailed("malformed branch value");
        }
        if (fields[16].string().empty()) {
          return std::optional<Bytes>(std::nullopt);
        }
        return std::optional<Bytes>(fields[16].string());
      }
      next_ref = &fields[nibbles[pos]];
      ++pos;
      if (next_ref->IsString() && next_ref->string().empty()) {
        return std::optional<Bytes>(std::nullopt);  // dead end: absent
      }
    } else {
      return Status::VerificationFailed("proof node has bad arity");
    }

    // Resolve the child reference: a 32-byte hash points at the next proof
    // element; a nested list is an embedded node.
    if (next_ref->IsList()) {
      // next_ref aliases item's own list — detach it before the assignment
      // destroys its storage.
      rlp::Item embedded = *next_ref;
      item = std::move(embedded);
    } else if (next_ref->IsString() && next_ref->string().size() == 32) {
      std::copy(next_ref->string().begin(), next_ref->string().end(),
                expected.begin());
      ONOFF_ASSIGN_OR_RETURN(item, next_node());
    } else {
      return Status::VerificationFailed("malformed child reference");
    }
  }
}

Trie::Trie() = default;
Trie::~Trie() = default;
Trie::Trie(Trie&&) noexcept = default;
Trie& Trie::operator=(Trie&&) noexcept = default;

void Trie::Put(BytesView key, BytesView value) {
  Nibbles nibbles = BytesToNibbles(key);
  if (value.empty()) {
    root_ = DeleteNode(std::move(root_), nibbles);
    return;
  }
  root_ = InsertNode(std::move(root_), nibbles,
                     Bytes(value.begin(), value.end()));
}

void Trie::Delete(BytesView key) {
  root_ = DeleteNode(std::move(root_), BytesToNibbles(key));
}

Result<Bytes> Trie::Get(BytesView key) const {
  Nibbles nibbles = BytesToNibbles(key);
  const Node* n = Find(root_.get(), nibbles, 0);
  if (n == nullptr) return Status::NotFound("key not in trie");
  return n->value;
}

Hash32 Trie::RootHash() const {
  if (root_ == nullptr) return EmptyRoot();
  return Keccak256(EncodeNode(root_.get()));
}

Hash32 Trie::EmptyRoot() {
  static const Hash32 kEmpty = Keccak256(rlp::EncodeString(Bytes{}));
  return kEmpty;
}

}  // namespace onoff::trie
