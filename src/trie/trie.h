// Merkle Patricia Trie — Ethereum's authenticated key/value structure.
//
// `Trie` implements the raw hexary trie over nibble paths with the standard
// node kinds (leaf / extension / branch), hex-prefix path encoding, and the
// embed-if-shorter-than-32-bytes node reference rule, so root hashes match
// Ethereum exactly. `SecureTrie` hashes keys with keccak256 first, which is
// what the world state and per-account storage tries use.

#ifndef ONOFFCHAIN_TRIE_TRIE_H_
#define ONOFFCHAIN_TRIE_TRIE_H_

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "crypto/keccak.h"
#include "support/bytes.h"
#include "support/status.h"

namespace onoff::trie {

namespace internal {
struct Node;
}  // namespace internal

class Trie {
 public:
  Trie();
  ~Trie();
  Trie(Trie&&) noexcept;
  Trie& operator=(Trie&&) noexcept;
  Trie(const Trie&) = delete;
  Trie& operator=(const Trie&) = delete;

  // Inserts or overwrites; an empty value deletes the key (Ethereum rule).
  void Put(BytesView key, BytesView value);
  // Removes the key if present.
  void Delete(BytesView key);
  // Returns the stored value, or NotFound.
  Result<Bytes> Get(BytesView key) const;
  bool Contains(BytesView key) const { return Get(key).ok(); }

  // Keccak commitment to the whole content. Order-independent: any insert
  // sequence producing the same map yields the same root.
  Hash32 RootHash() const;

  // keccak256(rlp("")) — the root of an empty trie.
  static Hash32 EmptyRoot();

  bool IsEmpty() const { return root_ == nullptr; }

  // Merkle proof: the RLP encodings of the hashed nodes along the lookup
  // path, root node first. Works for absent keys too (an exclusion proof is
  // the path to the divergence point). Empty tries yield an empty proof.
  std::vector<Bytes> Prove(BytesView key) const;

  // Verifies `proof` against `root` for `key`. Returns the proven value,
  // nullopt when the proof demonstrates absence, or an error when the proof
  // is inconsistent with the root (tampered/truncated/misordered).
  static Result<std::optional<Bytes>> VerifyProof(
      const Hash32& root, BytesView key, const std::vector<Bytes>& proof);

 private:
  std::unique_ptr<internal::Node> root_;
};

// Trie keyed by keccak256(key): used for state and storage tries.
class SecureTrie {
 public:
  void Put(BytesView key, BytesView value) {
    Hash32 h = Keccak256(key);
    inner_.Put(BytesView(h.data(), h.size()), value);
  }
  void Delete(BytesView key) {
    Hash32 h = Keccak256(key);
    inner_.Delete(BytesView(h.data(), h.size()));
  }
  Result<Bytes> Get(BytesView key) const {
    Hash32 h = Keccak256(key);
    return inner_.Get(BytesView(h.data(), h.size()));
  }
  Hash32 RootHash() const { return inner_.RootHash(); }
  bool IsEmpty() const { return inner_.IsEmpty(); }

  // Merkle proof over the keccak-hashed key space.
  std::vector<Bytes> Prove(BytesView key) const {
    Hash32 h = Keccak256(key);
    return inner_.Prove(BytesView(h.data(), h.size()));
  }
  static Result<std::optional<Bytes>> VerifyProof(
      const Hash32& root, BytesView key, const std::vector<Bytes>& proof) {
    Hash32 h = Keccak256(key);
    return Trie::VerifyProof(root, BytesView(h.data(), h.size()), proof);
  }

 private:
  Trie inner_;
};

// Hex-prefix encoding of a nibble path (exposed for tests).
Bytes HexPrefixEncode(const std::vector<uint8_t>& nibbles, bool is_leaf);
// Inverse: decodes a hex-prefix path into nibbles and the leaf flag.
struct HexPrefixPath {
  std::vector<uint8_t> nibbles;
  bool is_leaf = false;
};
Result<HexPrefixPath> HexPrefixDecode(BytesView encoded);
std::vector<uint8_t> BytesToNibbles(BytesView key);

}  // namespace onoff::trie

#endif  // ONOFFCHAIN_TRIE_TRIE_H_
