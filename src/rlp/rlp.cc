#include "rlp/rlp.h"

namespace onoff::rlp {

namespace {

// Big-endian minimal encoding of a length.
Bytes LengthBytes(size_t len) {
  Bytes out;
  while (len > 0) {
    out.insert(out.begin(), static_cast<uint8_t>(len & 0xff));
    len >>= 8;
  }
  return out;
}

void EncodeLength(size_t len, uint8_t short_base, uint8_t long_base,
                  Bytes& out) {
  if (len <= 55) {
    out.push_back(static_cast<uint8_t>(short_base + len));
  } else {
    Bytes lb = LengthBytes(len);
    out.push_back(static_cast<uint8_t>(long_base + lb.size()));
    Append(out, lb);
  }
}

struct Cursor {
  BytesView data;
  size_t pos = 0;

  bool AtEnd() const { return pos >= data.size(); }
  size_t Remaining() const { return data.size() - pos; }
};

Result<Item> DecodeItem(Cursor& cur);

Result<size_t> ReadLongLength(Cursor& cur, size_t num_bytes) {
  if (num_bytes == 0 || num_bytes > 8) {
    return Status::InvalidArgument("RLP: bad long-length size");
  }
  if (cur.Remaining() < num_bytes) {
    return Status::InvalidArgument("RLP: truncated long length");
  }
  if (cur.data[cur.pos] == 0) {
    return Status::InvalidArgument("RLP: long length has leading zero");
  }
  size_t len = 0;
  for (size_t i = 0; i < num_bytes; ++i) {
    len = (len << 8) | cur.data[cur.pos + i];
  }
  cur.pos += num_bytes;
  if (len <= 55) {
    return Status::InvalidArgument("RLP: non-canonical long length");
  }
  return len;
}

Result<Item> DecodeItem(Cursor& cur) {
  if (cur.AtEnd()) return Status::InvalidArgument("RLP: empty input");
  uint8_t prefix = cur.data[cur.pos++];

  if (prefix <= 0x7f) {
    // Single byte, itself.
    return Item::String(Bytes{prefix});
  }
  if (prefix <= 0xb7) {
    size_t len = prefix - 0x80;
    if (cur.Remaining() < len) {
      return Status::InvalidArgument("RLP: truncated string");
    }
    Bytes s(cur.data.begin() + cur.pos, cur.data.begin() + cur.pos + len);
    cur.pos += len;
    if (len == 1 && s[0] <= 0x7f) {
      return Status::InvalidArgument("RLP: non-canonical single byte");
    }
    return Item::String(std::move(s));
  }
  if (prefix <= 0xbf) {
    ONOFF_ASSIGN_OR_RETURN(size_t len, ReadLongLength(cur, prefix - 0xb7));
    if (cur.Remaining() < len) {
      return Status::InvalidArgument("RLP: truncated long string");
    }
    Bytes s(cur.data.begin() + cur.pos, cur.data.begin() + cur.pos + len);
    cur.pos += len;
    return Item::String(std::move(s));
  }
  // List.
  size_t payload_len;
  if (prefix <= 0xf7) {
    payload_len = prefix - 0xc0;
  } else {
    ONOFF_ASSIGN_OR_RETURN(payload_len, ReadLongLength(cur, prefix - 0xf7));
  }
  if (cur.Remaining() < payload_len) {
    return Status::InvalidArgument("RLP: truncated list");
  }
  size_t end = cur.pos + payload_len;
  std::vector<Item> items;
  while (cur.pos < end) {
    Cursor sub{cur.data.subspan(0, end), cur.pos};
    ONOFF_ASSIGN_OR_RETURN(Item child, DecodeItem(sub));
    cur.pos = sub.pos;
    items.push_back(std::move(child));
  }
  if (cur.pos != end) {
    return Status::InvalidArgument("RLP: list payload overrun");
  }
  return Item::List(std::move(items));
}

}  // namespace

Result<U256> Item::AsScalar() const {
  if (!IsString()) return Status::InvalidArgument("RLP: scalar must be string");
  if (string_.size() > 32) {
    return Status::InvalidArgument("RLP: scalar exceeds 32 bytes");
  }
  if (!string_.empty() && string_[0] == 0) {
    return Status::InvalidArgument("RLP: scalar has leading zero");
  }
  return U256::FromBigEndianTruncating(string_);
}

Result<uint64_t> Item::AsUint64() const {
  ONOFF_ASSIGN_OR_RETURN(U256 v, AsScalar());
  if (!v.FitsUint64()) return Status::OutOfRange("RLP: scalar exceeds uint64");
  return v.low64();
}

Bytes Encode(const Item& item) {
  if (item.IsString()) {
    const Bytes& s = item.string();
    if (s.size() == 1 && s[0] <= 0x7f) return s;
    Bytes out;
    EncodeLength(s.size(), 0x80, 0xb7, out);
    Append(out, s);
    return out;
  }
  Bytes payload;
  for (const Item& child : item.list()) {
    Append(payload, Encode(child));
  }
  Bytes out;
  EncodeLength(payload.size(), 0xc0, 0xf7, out);
  Append(out, payload);
  return out;
}

Bytes EncodeString(BytesView data) { return Encode(Item::String(data)); }

Bytes EncodeList(const std::vector<Bytes>& encoded_children) {
  Bytes payload;
  for (const Bytes& child : encoded_children) Append(payload, child);
  Bytes out;
  EncodeLength(payload.size(), 0xc0, 0xf7, out);
  Append(out, payload);
  return out;
}

Result<Item> Decode(BytesView data) {
  Cursor cur{data, 0};
  ONOFF_ASSIGN_OR_RETURN(Item item, DecodeItem(cur));
  if (!cur.AtEnd()) {
    return Status::InvalidArgument("RLP: trailing bytes after item");
  }
  return item;
}

}  // namespace onoff::rlp
