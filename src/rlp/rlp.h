// Recursive Length Prefix (RLP) encoding — Ethereum's canonical
// serialization for transactions, blocks, trie nodes and account records.

#ifndef ONOFFCHAIN_RLP_RLP_H_
#define ONOFFCHAIN_RLP_RLP_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "support/bytes.h"
#include "support/status.h"
#include "support/u256.h"

namespace onoff::rlp {

// An RLP item is either a byte string or a list of items.
class Item {
 public:
  enum class Kind { kString, kList };

  // Byte-string item.
  static Item String(Bytes data) {
    Item it(Kind::kString);
    it.string_ = std::move(data);
    return it;
  }
  static Item String(BytesView data) {
    return String(Bytes(data.begin(), data.end()));
  }
  static Item String(std::string_view s) { return String(BytesOf(s)); }
  // Big-endian minimal integer (Ethereum "scalar" convention: 0 -> empty).
  static Item Scalar(const U256& v) { return String(v.ToBigEndianTrimmed()); }
  static Item Scalar(uint64_t v) { return Scalar(U256(v)); }
  // List item.
  static Item List(std::vector<Item> items) {
    Item it(Kind::kList);
    it.list_ = std::move(items);
    return it;
  }

  Kind kind() const { return kind_; }
  bool IsString() const { return kind_ == Kind::kString; }
  bool IsList() const { return kind_ == Kind::kList; }

  const Bytes& string() const { return string_; }
  const std::vector<Item>& list() const { return list_; }

  // Interprets a string item as a big-endian scalar (must be <= 32 bytes,
  // no leading zero byte per Ethereum's canonical scalar rule).
  Result<U256> AsScalar() const;
  Result<uint64_t> AsUint64() const;

  bool operator==(const Item& o) const {
    if (kind_ != o.kind_) return false;
    return kind_ == Kind::kString ? string_ == o.string_ : list_ == o.list_;
  }

 private:
  explicit Item(Kind kind) : kind_(kind) {}

  Kind kind_;
  Bytes string_;
  std::vector<Item> list_;
};

// Serializes an item.
Bytes Encode(const Item& item);

// Convenience encoders.
Bytes EncodeString(BytesView data);
Bytes EncodeList(const std::vector<Bytes>& encoded_children);

// Parses exactly one item consuming the whole input.
Result<Item> Decode(BytesView data);

}  // namespace onoff::rlp

#endif  // ONOFFCHAIN_RLP_RLP_H_
