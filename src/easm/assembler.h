// A small EVM assembler and disassembler.
//
// Text form: one or more whitespace-separated tokens; `;` starts a comment.
//   PUSH1 0x60        explicit-width push with immediate
//   PUSH 1000         auto-width push (smallest PUSHn that fits)
//   dest:             label definition
//   PUSH @dest        label reference (assembled as PUSH2 <offset>)
//   JUMPDEST ADD ...  plain opcodes
//   DB 0xdeadbeef     raw data bytes
//
// `CodeBuilder` is the programmatic equivalent used by the contract code
// generator: append opcodes/pushes, bind labels, then Build() patches label
// references.

#ifndef ONOFFCHAIN_EASM_ASSEMBLER_H_
#define ONOFFCHAIN_EASM_ASSEMBLER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "evm/opcodes.h"
#include "support/bytes.h"
#include "support/status.h"
#include "support/u256.h"

namespace onoff::easm {

// Maps bytecode offsets back to the assembly source that produced them, so
// downstream diagnostics (the static analyzer, the `lint` CLI) can report
// "pc 0x0012 (line 7, label 'loop')" instead of a bare byte offset.
struct SourceMap {
  struct Entry {
    uint32_t pc;
    int line;
  };
  // One entry per emitted instruction, sorted by pc.
  std::vector<Entry> entries;
  // JUMPDEST offset -> label name.
  std::map<uint32_t, std::string> labels;

  // Source line of the instruction covering `pc`, or -1 if unmapped.
  int LineAt(uint32_t pc) const;
  // Label bound at exactly `pc`, or nullptr.
  const std::string* LabelAt(uint32_t pc) const;
};

// Assembles text into bytecode.
Result<Bytes> Assemble(std::string_view source);

// Assemble() that additionally fills `map` (ignored when null). Jumps to
// labels that are never defined are rejected here with the label's name and
// the line of the first reference, instead of surfacing as an anonymous
// build failure.
Result<Bytes> AssembleWithMap(std::string_view source, SourceMap* map);

// Renders bytecode as one instruction per line ("0x0000: PUSH1 0x60").
std::string Disassemble(BytesView code);

// Programmatic bytecode builder with label patching.
class CodeBuilder {
 public:
  using Label = size_t;

  CodeBuilder() = default;

  // Appends a plain opcode.
  CodeBuilder& Op(evm::Opcode op);
  // Appends the smallest PUSHn holding `value`.
  CodeBuilder& Push(const U256& value);
  CodeBuilder& Push(uint64_t value) { return Push(U256(value)); }
  // Appends a PUSHn with an explicit width (1..32 bytes).
  CodeBuilder& PushN(int width, const U256& value);
  // Appends PUSH2 <label offset>, patched at Build time.
  CodeBuilder& PushLabel(Label label);
  // Appends raw bytes verbatim.
  CodeBuilder& Raw(BytesView data);

  // Creates a fresh unbound label.
  Label NewLabel();
  // Binds `label` to the current offset and emits JUMPDEST.
  CodeBuilder& Bind(Label label);
  // Whether `label` has been bound yet.
  bool IsBound(Label label) const { return label_offsets_[label] >= 0; }

  // Current code offset.
  size_t size() const { return code_.size(); }

  // Patches label references and returns the bytecode. Fails if any
  // referenced label was never bound.
  Result<Bytes> Build() const;

 private:
  struct Fixup {
    size_t code_offset;  // where the 2-byte immediate lives
    Label label;
  };

  Bytes code_;
  std::vector<ssize_t> label_offsets_;  // -1 = unbound
  std::vector<Fixup> fixups_;
};

}  // namespace onoff::easm

#endif  // ONOFFCHAIN_EASM_ASSEMBLER_H_
