#include "easm/assembler.h"

#include <cctype>
#include <map>
#include <sstream>

namespace onoff::easm {

namespace {

// Width in bytes of the minimal push for `v` (at least 1).
int MinPushWidth(const U256& v) {
  int bits = v.BitLength();
  int bytes = (bits + 7) / 8;
  return bytes == 0 ? 1 : bytes;
}

void AppendPush(Bytes& out, int width, const U256& value) {
  out.push_back(static_cast<uint8_t>(0x5f + width));
  auto be = value.ToBigEndian();
  out.insert(out.end(), be.end() - width, be.end());
}

struct Token {
  std::string text;
  int line;
};

std::vector<Token> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  while (i < source.size()) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == ';') {  // comment to end of line
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    while (i < source.size() &&
           !std::isspace(static_cast<unsigned char>(source[i])) &&
           source[i] != ';') {
      ++i;
    }
    tokens.push_back({std::string(source.substr(start, i - start)), line});
  }
  return tokens;
}

Result<U256> ParseLiteral(const std::string& text, int line) {
  Result<U256> v = (text.size() > 2 && text[0] == '0' &&
                    (text[1] == 'x' || text[1] == 'X'))
                       ? U256::FromHex(text)
                       : U256::FromDecimal(text);
  if (!v.ok()) {
    return Status::InvalidArgument("line " + std::to_string(line) +
                                   ": bad literal '" + text + "'");
  }
  return v;
}

}  // namespace

int SourceMap::LineAt(uint32_t pc) const {
  // entries are sorted by pc: the covering instruction is the last one whose
  // pc is <= the queried offset (PUSH immediates map to the PUSH itself).
  int line = -1;
  for (const Entry& e : entries) {
    if (e.pc > pc) break;
    line = e.line;
  }
  return line;
}

const std::string* SourceMap::LabelAt(uint32_t pc) const {
  auto it = labels.find(pc);
  return it == labels.end() ? nullptr : &it->second;
}

Result<Bytes> Assemble(std::string_view source) {
  return AssembleWithMap(source, nullptr);
}

Result<Bytes> AssembleWithMap(std::string_view source, SourceMap* map) {
  std::vector<Token> tokens = Tokenize(source);
  CodeBuilder builder;
  std::map<std::string, CodeBuilder::Label> labels;
  // Line of the first `PUSH @name` reference, for undefined-label errors.
  std::map<std::string, int> first_reference_line;

  auto label_of = [&](const std::string& name) {
    auto it = labels.find(name);
    if (it != labels.end()) return it->second;
    CodeBuilder::Label l = builder.NewLabel();
    labels.emplace(name, l);
    return l;
  };

  auto map_instruction = [&](int line) {
    if (map != nullptr) {
      map->entries.push_back({static_cast<uint32_t>(builder.size()), line});
    }
  };

  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    const std::string& t = tok.text;
    if (t.back() == ':') {
      std::string name = t.substr(0, t.size() - 1);
      if (map != nullptr) {
        map->labels.emplace(static_cast<uint32_t>(builder.size()), name);
      }
      map_instruction(tok.line);  // the emitted JUMPDEST
      builder.Bind(label_of(name));
      continue;
    }
    if (t[0] == '@') {
      return Status::InvalidArgument(
          "line " + std::to_string(tok.line) +
          ": label reference must follow PUSH: '" + t + "'");
    }
    if (t == "DB") {
      if (i + 1 >= tokens.size()) {
        return Status::InvalidArgument("DB needs a hex operand");
      }
      map_instruction(tok.line);
      ONOFF_ASSIGN_OR_RETURN(Bytes raw, FromHex(tokens[++i].text));
      builder.Raw(raw);
      continue;
    }
    if (t == "PUSH" || (t.size() > 4 && t.substr(0, 4) == "PUSH" &&
                        std::isdigit(static_cast<unsigned char>(t[4])))) {
      if (i + 1 >= tokens.size()) {
        return Status::InvalidArgument("line " + std::to_string(tok.line) +
                                       ": PUSH needs an operand");
      }
      const std::string& operand = tokens[++i].text;
      map_instruction(tok.line);
      if (operand[0] == '@') {
        std::string name = operand.substr(1);
        first_reference_line.emplace(name, tok.line);
        builder.PushLabel(label_of(name));
        continue;
      }
      ONOFF_ASSIGN_OR_RETURN(U256 value, ParseLiteral(operand, tok.line));
      if (t == "PUSH") {
        builder.Push(value);
      } else {
        int width = std::stoi(t.substr(4));
        if (width < 1 || width > 32 || MinPushWidth(value) > width) {
          return Status::InvalidArgument("line " + std::to_string(tok.line) +
                                         ": literal does not fit " + t);
        }
        builder.PushN(width, value);
      }
      continue;
    }
    auto op = evm::OpcodeFromName(t);
    if (!op.has_value()) {
      return Status::InvalidArgument("line " + std::to_string(tok.line) +
                                     ": unknown mnemonic '" + t + "'");
    }
    if (evm::IsPush(*op)) {
      return Status::InvalidArgument("line " + std::to_string(tok.line) +
                                     ": " + t + " needs an operand");
    }
    map_instruction(tok.line);
    builder.Op(static_cast<evm::Opcode>(*op));
  }
  // Reject references to labels that were never defined, by name, before
  // Build() would fail anonymously (or worse, leave a jump to offset 0).
  for (const auto& [name, label] : labels) {
    if (!builder.IsBound(label)) {
      auto ref = first_reference_line.find(name);
      int line = ref == first_reference_line.end() ? 0 : ref->second;
      return Status::InvalidArgument("line " + std::to_string(line) +
                                     ": jump to undefined label '" + name +
                                     "'");
    }
  }
  return builder.Build();
}

std::string Disassemble(BytesView code) {
  std::ostringstream out;
  char offset_buf[32];
  for (size_t i = 0; i < code.size(); ++i) {
    uint8_t op = code[i];
    const evm::OpcodeInfo& info = evm::GetOpcodeInfo(op);
    std::snprintf(offset_buf, sizeof(offset_buf), "0x%04zx: ", i);
    out << offset_buf;
    if (!info.defined) {
      std::snprintf(offset_buf, sizeof(offset_buf), "0x%02x", op);
      out << "UNDEFINED " << offset_buf << "\n";
      continue;
    }
    out << info.name;
    if (evm::IsPush(op)) {
      int n = evm::PushSize(op);
      Bytes imm;
      for (int j = 0; j < n; ++j) {
        imm.push_back(i + 1 + j < code.size() ? code[i + 1 + j] : 0);
      }
      out << " 0x" << ToHex(imm);
      i += n;
    }
    out << "\n";
  }
  return out.str();
}

CodeBuilder& CodeBuilder::Op(evm::Opcode op) {
  code_.push_back(static_cast<uint8_t>(op));
  return *this;
}

CodeBuilder& CodeBuilder::Push(const U256& value) {
  AppendPush(code_, MinPushWidth(value), value);
  return *this;
}

CodeBuilder& CodeBuilder::PushN(int width, const U256& value) {
  AppendPush(code_, width, value);
  return *this;
}

CodeBuilder& CodeBuilder::PushLabel(Label label) {
  code_.push_back(0x61);  // PUSH2
  fixups_.push_back({code_.size(), label});
  code_.push_back(0);
  code_.push_back(0);
  return *this;
}

CodeBuilder& CodeBuilder::Raw(BytesView data) {
  Append(code_, data);
  return *this;
}

CodeBuilder::Label CodeBuilder::NewLabel() {
  label_offsets_.push_back(-1);
  return label_offsets_.size() - 1;
}

CodeBuilder& CodeBuilder::Bind(Label label) {
  label_offsets_[label] = static_cast<ssize_t>(code_.size());
  code_.push_back(static_cast<uint8_t>(evm::Opcode::JUMPDEST));
  return *this;
}

Result<Bytes> CodeBuilder::Build() const {
  Bytes out = code_;
  for (const Fixup& fix : fixups_) {
    ssize_t target = label_offsets_[fix.label];
    if (target < 0) {
      return Status::FailedPrecondition("unbound label in bytecode");
    }
    if (target > 0xffff) {
      return Status::OutOfRange("label offset exceeds PUSH2 range");
    }
    out[fix.code_offset] = static_cast<uint8_t>(target >> 8);
    out[fix.code_offset + 1] = static_cast<uint8_t>(target & 0xff);
  }
  return out;
}

}  // namespace onoff::easm
