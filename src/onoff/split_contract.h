// The paper's split/generate stage as a reusable API (§II.B, §III).
//
// A whole contract is described as a list of functions, each tagged
// light/public or heavy/private. `SplitContract` generates the two
// contracts:
//
//  * ON-CHAIN: all light functions verbatim, padded with
//      - submitResult(uint256)        (optimistic submit, participantOnly)
//      - finalizeResult()             (after the challenge period)
//      - deployVerifiedInstance(bytes,uint8,bytes32,bytes32,uint8,bytes32,
//                               bytes32)  (challenge: verify the signed copy
//                                          and CREATE the verified instance)
//      - enforceResult(uint256)       (deployedAddrOnly; overrides any
//                                      unfinalized proposal)
//  * OFF-CHAIN: all heavy functions (returning their result words), padded
//      with returnDisputeResolution(address) which recomputes the designated
//      resolver function and pushes its result into enforceResult().
//
// The result lifecycle on-chain:
//   submitResult(r) -> [challenge period] -> finalizeResult()       (honest)
//   submitResult(r') -> deployVerifiedInstance(signed copy)
//                    -> returnDisputeResolution() -> enforceResult(r) (dispute)

#ifndef ONOFFCHAIN_ONOFF_SPLIT_CONTRACT_H_
#define ONOFFCHAIN_ONOFF_SPLIT_CONTRACT_H_

#include <functional>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "contracts/codegen.h"
#include "onoff/signed_copy.h"
#include "support/address.h"
#include "support/bytes.h"
#include "support/status.h"
#include "support/u256.h"

namespace onoff::core {

// One function of the whole contract.
struct FunctionDef {
  std::string signature;
  // The classification of §II.B: heavy/private functions go off-chain.
  bool heavy = false;
  // Emits the body. Light bodies leave the stack empty; heavy bodies leave
  // their result word on the stack (the splitter terminates them with STOP /
  // RETURN respectively).
  std::function<void(contracts::ContractWriter&)> body;
};

struct SplitConfig {
  // All interested participants (>= 2). The generated
  // deployVerifiedInstance() verifies one ECDSA signature per participant,
  // in this order; its ABI signature therefore depends on the party count:
  //   deployVerifiedInstance(bytes[,uint8,bytes32,bytes32]*n)
  std::vector<Address> participants;
  // Seconds a submitted result can be challenged before finalizeResult().
  uint64_t challenge_period_seconds = 60;
  // Which heavy function's result resolves the contract (the paper's
  // reveal()); index into the heavy-function subsequence.
  int resolver_index = 0;
};

// The n-party deployVerifiedInstance ABI signature for `n` participants.
std::string DeploySignatureFor(size_t n);

// Reserved storage slots in the generated on-chain contract.
namespace split_slots {
inline constexpr uint64_t kDeployedAddr = 0xF0;
inline constexpr uint64_t kFinalResult = 0xF1;
inline constexpr uint64_t kResultReady = 0xF2;
inline constexpr uint64_t kProposedResult = 0xF3;
inline constexpr uint64_t kProposedAt = 0xF4;
}  // namespace split_slots

struct SplitContracts {
  Bytes onchain_runtime;
  Bytes onchain_init;
  Bytes offchain_runtime;
  Bytes offchain_init;
  std::vector<std::string> onchain_signatures;   // incl. padded extras
  std::vector<std::string> offchain_signatures;  // incl. padded extra
  // Analyzer policies matching the declared split: every on-chain function
  // except deployVerifiedInstance (which CREATEs) is declared light; every
  // heavy function except returnDisputeResolution (which CALLs the on-chain
  // side) is declared private. Feed these to SignedCopy::set_audit_options
  // so the pre-signing audit re-verifies the same classification.
  analysis::AnalysisOptions onchain_audit;
  analysis::AnalysisOptions offchain_audit;
};

// Splits `functions` per their tags, generates both contracts, and
// machine-verifies the classification with the static analyzer: the light
// entry points must have bounded worst-case gas under the block limit, and
// no declared-private function may reach a state-leaking effect. A
// violation returns kAnalysisRejected.
Result<SplitContracts> SplitContract(const SplitConfig& config,
                                     const std::vector<FunctionDef>& functions);

// Builds the whole (unsplit) contract — the all-on-chain baseline: light
// bodies end with STOP, heavy bodies store their result word to
// split_slots::kFinalResult and set kResultReady.
Result<Bytes> BuildWholeContract(const std::vector<FunctionDef>& functions);

// ---- Calldata for the padded extra functions ----
Bytes SubmitResultCalldata(const U256& result);
Bytes FinalizeResultCalldata();
// Orders the signatures (participant_a first) out of the signed copy.
Result<Bytes> DeployVerifiedInstanceCalldata(const SignedCopy& copy,
                                             const SplitConfig& config);
Bytes ReturnDisputeResolutionCalldata(const Address& onchain_addr);
Bytes EnforceResultCalldata(const U256& result);

}  // namespace onoff::core

#endif  // ONOFFCHAIN_ONOFF_SPLIT_CONTRACT_H_
