// A Whisper-like off-chain message channel between participants.
//
// The paper uses Ethereum Whisper only to exchange signed copies of the
// off-chain contract; any broadcast channel works. This in-process bus adds
// adversarial hooks (drop / tamper) so tests and benches can exercise the
// protocol's behaviour under a faulty or hostile network.

#ifndef ONOFFCHAIN_ONOFF_MESSAGE_BUS_H_
#define ONOFFCHAIN_ONOFF_MESSAGE_BUS_H_

#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/address.h"
#include "support/bytes.h"
#include "support/status.h"

namespace onoff::core {

struct Message {
  Address from;
  Address to;
  std::string topic;
  Bytes payload;
};

class MessageBus {
 public:
  // Delivers to the recipient's inbox (or drops/tampers per the hooks).
  void Send(Message message);
  // Broadcast helper: one copy per recipient.
  void Broadcast(const Address& from, const std::vector<Address>& recipients,
                 const std::string& topic, const Bytes& payload);

  // Pops the oldest message for `addr` with `topic` (NotFound when empty).
  Result<Message> Receive(const Address& addr, const std::string& topic);
  size_t PendingFor(const Address& addr) const;

  // ---- Adversarial hooks ----
  // Called per message; return true to drop it.
  using DropFn = std::function<bool(const Message&)>;
  // Called per message; may mutate the payload in flight.
  using TamperFn = std::function<void(Message&)>;
  void set_drop_hook(DropFn fn) { drop_ = std::move(fn); }
  void set_tamper_hook(TamperFn fn) { tamper_ = std::move(fn); }

  // ---- Accounting (for the privacy/overhead benches) ----
  size_t messages_sent() const { return messages_sent_; }
  size_t bytes_sent() const { return bytes_sent_; }

 private:
  std::unordered_map<Address, std::deque<Message>> inboxes_;
  DropFn drop_;
  TamperFn tamper_;
  size_t messages_sent_ = 0;
  size_t bytes_sent_ = 0;
};

}  // namespace onoff::core

#endif  // ONOFFCHAIN_ONOFF_MESSAGE_BUS_H_
