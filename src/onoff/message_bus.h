// A Whisper-like off-chain message channel between participants.
//
// The paper uses Ethereum Whisper only to exchange signed copies of the
// off-chain contract; any broadcast channel works. This in-process bus adds
// adversarial hooks (drop / tamper) so tests and benches can exercise the
// protocol's behaviour under a faulty or hostile network, and optionally
// routes every message through a sim::Transport so delivery follows the
// simulated network's virtual clock (latency, loss, partitions). Without a
// transport, delivery is synchronous — the zero-latency special case.

#ifndef ONOFFCHAIN_ONOFF_MESSAGE_BUS_H_
#define ONOFFCHAIN_ONOFF_MESSAGE_BUS_H_

#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/transport.h"
#include "support/address.h"
#include "support/bytes.h"
#include "support/status.h"

namespace onoff::core {

struct Message {
  Address from;
  Address to;
  std::string topic;
  Bytes payload;
};

class MessageBus {
 public:
  // Routes deliveries through `transport` (endpoints are participant
  // address hex strings, Address::ToHex()). nullptr restores synchronous
  // delivery.
  void SetTransport(sim::Transport* transport) { transport_ = transport; }

  // Delivers to the recipient's inbox (or drops/tampers per the hooks and
  // the transport's fault models). With a deferred transport the message
  // lands when the scheduler runs its delivery event.
  void Send(Message message);
  // Broadcast helper: one copy per recipient.
  void Broadcast(const Address& from, const std::vector<Address>& recipients,
                 const std::string& topic, const Bytes& payload);

  // Pops the oldest message for `addr` with `topic` (NotFound when empty).
  Result<Message> Receive(const Address& addr, const std::string& topic);
  size_t PendingFor(const Address& addr) const;

  // ---- Adversarial hooks ----
  // Called per message at send time; return true to drop it.
  using DropFn = std::function<bool(const Message&)>;
  // Called per message at delivery time; may mutate the payload in flight.
  using TamperFn = std::function<void(Message&)>;
  void set_drop_hook(DropFn fn) { drop_ = std::move(fn); }
  void set_tamper_hook(TamperFn fn) { tamper_ = std::move(fn); }

  // ---- Accounting (for the privacy/overhead benches) ----
  // Offered load vs delivered load: sent counts everything offered to the
  // bus; dropped counts messages lost to the drop hook or rejected by the
  // transport at send time (messages lost in flight to a crashed receiver
  // are only visible in the transport's own stats); tampered counts
  // messages the tamper hook touched.
  size_t messages_sent() const { return messages_sent_; }
  size_t bytes_sent() const { return bytes_sent_; }
  size_t messages_dropped() const { return messages_dropped_; }
  size_t bytes_dropped() const { return bytes_dropped_; }
  size_t messages_tampered() const { return messages_tampered_; }

 private:
  // Applies the tamper hook and lands `message` in the recipient's inbox.
  void DeliverNow(Message message);
  void CountDrop(size_t payload_bytes);

  std::unordered_map<Address, std::deque<Message>> inboxes_;
  sim::Transport* transport_ = nullptr;
  DropFn drop_;
  TamperFn tamper_;
  size_t messages_sent_ = 0;
  size_t bytes_sent_ = 0;
  size_t messages_dropped_ = 0;
  size_t bytes_dropped_ = 0;
  size_t messages_tampered_ = 0;
};

}  // namespace onoff::core

#endif  // ONOFFCHAIN_ONOFF_MESSAGE_BUS_H_
