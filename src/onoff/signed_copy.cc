#include "onoff/signed_copy.h"

#include "obs/metrics.h"
#include "rlp/rlp.h"
#include "support/thread_pool.h"

namespace onoff::core {

Status SignedCopy::AddSignature(const secp256k1::PrivateKey& key) {
  if (audit_enabled_) {
    ONOFF_RETURN_NOT_OK(analysis::AuditForSigning(bytecode_, audit_options_));
  }
  ONOFF_ASSIGN_OR_RETURN(secp256k1::Signature sig,
                         secp256k1::Sign(BytecodeHash(), key));
  AttachSignature(key.EthAddress(), sig);
  return Status::OK();
}

analysis::DeploymentReport SignedCopy::Audit() const {
  return analysis::AnalyzeDeployment(bytecode_, audit_options_);
}

void SignedCopy::AttachSignature(const Address& signer,
                                 const secp256k1::Signature& signature) {
  for (Entry& e : signatures_) {
    if (e.signer == signer) {
      e.signature = signature;
      return;
    }
  }
  signatures_.push_back(Entry{signer, signature});
}

Result<secp256k1::Signature> SignedCopy::SignatureOf(
    const Address& signer) const {
  for (const Entry& e : signatures_) {
    if (e.signer == signer) return e.signature;
  }
  return Status::NotFound("no signature from " + signer.ToHex());
}

Status SignedCopy::VerifyComplete(const std::vector<Address>& required) const {
  Hash32 digest = BytecodeHash();
  // Presence check first (cheap, and missing signatures fail in `required`
  // order before any ECDSA work).
  std::vector<secp256k1::Signature> sigs;
  sigs.reserve(required.size());
  for (const Address& addr : required) {
    auto sig = SignatureOf(addr);
    if (!sig.ok()) {
      return Status::VerificationFailed("missing signature from " +
                                        addr.ToHex());
    }
    sigs.push_back(*sig);
  }
  // Recover every signer; parallel once the participant set is large
  // enough to pay for the fan-out (the paper's N-party verified-deployment
  // path). Per-index results keep the reported failure deterministic: the
  // first bad address in `required` order, regardless of scheduling.
  std::vector<uint8_t> valid(required.size(), 0);
  auto check = [&](size_t i) {
    auto recovered = secp256k1::RecoverAddress(digest, sigs[i].v, sigs[i].r,
                                               sigs[i].s);
    valid[i] = recovered.ok() && *recovered == required[i] ? 1 : 0;
  };
  constexpr size_t kParallelThreshold = 4;
  if (required.size() >= kParallelThreshold) {
    ThreadPool::Shared().ParallelFor(required.size(), check);
    static obs::Counter* batch_verified =
        obs::GetCounterOrNull("crypto.batch_verified_sigs");
    if (batch_verified != nullptr) batch_verified->Inc(required.size());
  } else {
    for (size_t i = 0; i < required.size(); ++i) check(i);
  }
  for (size_t i = 0; i < required.size(); ++i) {
    if (!valid[i]) {
      return Status::VerificationFailed("invalid signature from " +
                                        required[i].ToHex());
    }
  }
  return Status::OK();
}

Bytes SignedCopy::Serialize() const {
  std::vector<rlp::Item> sig_items;
  for (const Entry& e : signatures_) {
    std::vector<rlp::Item> pair;
    pair.push_back(rlp::Item::String(e.signer.view()));
    pair.push_back(rlp::Item::String(e.signature.Serialize()));
    sig_items.push_back(rlp::Item::List(std::move(pair)));
  }
  std::vector<rlp::Item> top;
  top.push_back(rlp::Item::String(bytecode_));
  top.push_back(rlp::Item::List(std::move(sig_items)));
  return rlp::Encode(rlp::Item::List(std::move(top)));
}

Result<SignedCopy> SignedCopy::Deserialize(BytesView data) {
  ONOFF_ASSIGN_OR_RETURN(rlp::Item item, rlp::Decode(data));
  if (!item.IsList() || item.list().size() != 2 || !item.list()[0].IsString() ||
      !item.list()[1].IsList()) {
    return Status::InvalidArgument("malformed signed copy");
  }
  SignedCopy copy(item.list()[0].string());
  for (const rlp::Item& pair : item.list()[1].list()) {
    if (!pair.IsList() || pair.list().size() != 2 ||
        !pair.list()[0].IsString() || !pair.list()[1].IsString()) {
      return Status::InvalidArgument("malformed signature entry");
    }
    ONOFF_ASSIGN_OR_RETURN(Address signer,
                           Address::FromBytes(pair.list()[0].string()));
    ONOFF_ASSIGN_OR_RETURN(
        secp256k1::Signature sig,
        secp256k1::Signature::Deserialize(pair.list()[1].string()));
    copy.AttachSignature(signer, sig);
  }
  return copy;
}

}  // namespace onoff::core
