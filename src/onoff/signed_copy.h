// The signed copy of the off-chain contract (paper §III, deploy/sign stage):
// the contract's deployment bytecode together with every participant's ECDSA
// signature over keccak256(bytecode). A participant must hold a fully signed
// copy before interacting with the on-chain contract, because it is their
// only weapon in a dispute.

#ifndef ONOFFCHAIN_ONOFF_SIGNED_COPY_H_
#define ONOFFCHAIN_ONOFF_SIGNED_COPY_H_

#include <vector>

#include "crypto/keccak.h"
#include "crypto/secp256k1.h"
#include "support/address.h"
#include "support/bytes.h"
#include "support/status.h"

namespace onoff::core {

class SignedCopy {
 public:
  SignedCopy() = default;
  explicit SignedCopy(Bytes bytecode) : bytecode_(std::move(bytecode)) {}

  const Bytes& bytecode() const { return bytecode_; }
  Hash32 BytecodeHash() const { return Keccak256(bytecode_); }

  // Adds this participant's signature (the JavaScript `ecsign` step of
  // Algorithm 4, done natively).
  void AddSignature(const secp256k1::PrivateKey& key);
  // Attaches an externally produced signature.
  void AttachSignature(const Address& signer,
                       const secp256k1::Signature& signature);

  // Returns the signature by `signer`, or NotFound.
  Result<secp256k1::Signature> SignatureOf(const Address& signer) const;
  size_t signature_count() const { return signatures_.size(); }

  // Verifies that every address in `required` has a valid signature over the
  // bytecode hash (the integrity check honest participants run before
  // touching the on-chain contract).
  Status VerifyComplete(const std::vector<Address>& required) const;

  // Wire format: RLP([bytecode, [[signer, sig65], ...]]).
  Bytes Serialize() const;
  static Result<SignedCopy> Deserialize(BytesView data);

 private:
  struct Entry {
    Address signer;
    secp256k1::Signature signature;
  };

  Bytes bytecode_;
  std::vector<Entry> signatures_;
};

}  // namespace onoff::core

#endif  // ONOFFCHAIN_ONOFF_SIGNED_COPY_H_
