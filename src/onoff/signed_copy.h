// The signed copy of the off-chain contract (paper §III, deploy/sign stage):
// the contract's deployment bytecode together with every participant's ECDSA
// signature over keccak256(bytecode). A participant must hold a fully signed
// copy before interacting with the on-chain contract, because it is their
// only weapon in a dispute.

#ifndef ONOFFCHAIN_ONOFF_SIGNED_COPY_H_
#define ONOFFCHAIN_ONOFF_SIGNED_COPY_H_

#include <vector>

#include "analysis/analyzer.h"
#include "crypto/keccak.h"
#include "crypto/secp256k1.h"
#include "support/address.h"
#include "support/bytes.h"
#include "support/status.h"

namespace onoff::core {

class SignedCopy {
 public:
  SignedCopy() = default;
  explicit SignedCopy(Bytes bytecode) : bytecode_(std::move(bytecode)) {}

  const Bytes& bytecode() const { return bytecode_; }
  Hash32 BytecodeHash() const { return Keccak256(bytecode_); }

  // Adds this participant's signature (the JavaScript `ecsign` step of
  // Algorithm 4, done natively). A signature is this participant's binding
  // endorsement of the bytecode, so the static analyzer audits it first and
  // the signature is refused (kAnalysisRejected) on any finding. Tests that
  // sign placeholder bytes opt out via set_audit_enabled(false).
  Status AddSignature(const secp256k1::PrivateKey& key);
  // Attaches an externally produced signature.
  void AttachSignature(const Address& signer,
                       const secp256k1::Signature& signature);

  // Returns the signature by `signer`, or NotFound.
  Result<secp256k1::Signature> SignatureOf(const Address& signer) const;
  size_t signature_count() const { return signatures_.size(); }

  // Verifies that every address in `required` has a valid signature over the
  // bytecode hash (the integrity check honest participants run before
  // touching the on-chain contract).
  Status VerifyComplete(const std::vector<Address>& required) const;

  // Wire format: RLP([bytecode, [[signer, sig65], ...]]).
  Bytes Serialize() const;
  static Result<SignedCopy> Deserialize(BytesView data);

  // The full pre-signing audit report under this copy's audit options:
  // per-selector gas bounds, storage access summaries and privacy-taint
  // diagnostics (ANA12–ANA18). AddSignature refuses on any error in this
  // report; callers can run it standalone to show a participant what they
  // are endorsing before they sign.
  analysis::DeploymentReport Audit() const;

  // Pre-signing audit controls. The audit is on by default; the options
  // carry the declared light/private selector sets for this contract.
  void set_audit_enabled(bool enabled) { audit_enabled_ = enabled; }
  bool audit_enabled() const { return audit_enabled_; }
  void set_audit_options(analysis::AnalysisOptions options) {
    audit_options_ = std::move(options);
  }
  const analysis::AnalysisOptions& audit_options() const {
    return audit_options_;
  }

 private:
  struct Entry {
    Address signer;
    secp256k1::Signature signature;
  };

  Bytes bytecode_;
  std::vector<Entry> signatures_;
  bool audit_enabled_ = true;
  analysis::AnalysisOptions audit_options_;
};

}  // namespace onoff::core

#endif  // ONOFFCHAIN_ONOFF_SIGNED_COPY_H_
