#include "onoff/split_contract.h"

#include "abi/abi.h"
#include "evm/opcodes.h"

namespace onoff::core {

using contracts::ContractWriter;
using evm::Opcode;

namespace {

constexpr std::string_view kSubmitSig = "submitResult(uint256)";
constexpr std::string_view kFinalizeSig = "finalizeResult()";
constexpr std::string_view kEnforceSig = "enforceResult(uint256)";
constexpr std::string_view kReturnSig = "returnDisputeResolution(address)";

std::vector<const FunctionDef*> Select(const std::vector<FunctionDef>& fns,
                                       bool heavy) {
  std::vector<const FunctionDef*> out;
  for (const FunctionDef& f : fns) {
    if (f.heavy == heavy) out.push_back(&f);
  }
  return out;
}

uint32_t SelectorWord(std::string_view signature) {
  abi::Selector sel = abi::SelectorOf(signature);
  return (uint32_t{sel[0]} << 24) | (uint32_t{sel[1]} << 16) |
         (uint32_t{sel[2]} << 8) | uint32_t{sel[3]};
}

}  // namespace

std::string DeploySignatureFor(size_t n) {
  std::string sig = "deployVerifiedInstance(bytes";
  for (size_t i = 0; i < n; ++i) sig += ",uint8,bytes32,bytes32";
  sig += ")";
  return sig;
}

Result<SplitContracts> SplitContract(
    const SplitConfig& cfg, const std::vector<FunctionDef>& functions) {
  auto light = Select(functions, false);
  auto heavy = Select(functions, true);
  if (cfg.participants.size() < 2) {
    return Status::InvalidArgument("need at least two participants");
  }
  if (heavy.empty()) {
    return Status::InvalidArgument(
        "splitting requires at least one heavy/private function");
  }
  if (cfg.resolver_index < 0 ||
      cfg.resolver_index >= static_cast<int>(heavy.size())) {
    return Status::InvalidArgument("resolver_index out of range");
  }
  const std::string deploy_sig = DeploySignatureFor(cfg.participants.size());

  SplitContracts out;

  // ---------- On-chain contract ----------
  {
    ContractWriter w;
    std::vector<ContractWriter::Label> light_labels;
    for (const FunctionDef* f : light) {
      light_labels.push_back(w.Declare(f->signature));
      out.onchain_signatures.push_back(f->signature);
    }
    auto f_submit = w.Declare(kSubmitSig);
    auto f_finalize = w.Declare(kFinalizeSig);
    auto f_deploy = w.Declare(deploy_sig);
    auto f_enforce = w.Declare(kEnforceSig);
    out.onchain_signatures.insert(
        out.onchain_signatures.end(),
        {std::string(kSubmitSig), std::string(kFinalizeSig), deploy_sig,
         std::string(kEnforceSig)});
    w.FinishDispatch();

    for (size_t i = 0; i < light.size(); ++i) {
      w.BeginFunction(light_labels[i]);
      light[i]->body(w);
      w.EndFunctionStop();
    }

    // submitResult(uint256): participantOnly; only while no result is final
    // and nothing is pending.
    w.BeginFunction(f_submit);
    w.RequireCallerIsOneOf(cfg.participants);
    w.SLoad(U256(split_slots::kResultReady));
    w.RequireNot();
    w.SLoad(U256(split_slots::kProposedAt));
    w.RequireNot();
    w.PushArg(0);
    w.SStore(U256(split_slots::kProposedResult));
    w.PushTimestamp();
    w.SStore(U256(split_slots::kProposedAt));
    w.EndFunctionStop();

    // finalizeResult(): anyone; after the challenge period elapses.
    w.BeginFunction(f_finalize);
    w.SLoad(U256(split_slots::kResultReady));
    w.RequireNot();
    w.SLoad(U256(split_slots::kProposedAt));
    w.b().Op(Opcode::DUP1);
    w.Require();  // a proposal must exist
    // require(timestamp >= proposedAt + challenge_period)
    w.PushU(U256(cfg.challenge_period_seconds));
    w.b().Op(Opcode::ADD);           // [deadline]
    w.PushTimestamp();               // [deadline, now]
    w.b().Op(Opcode::LT);            // now < deadline ? (LT pops now, deadline)
    w.RequireNot();
    w.SLoad(U256(split_slots::kProposedResult));
    w.SStore(U256(split_slots::kFinalResult));
    w.PushU(U256(1));
    w.SStore(U256(split_slots::kResultReady));
    w.EndFunctionStop();

    // deployVerifiedInstance(...): the challenge weapon.
    w.BeginFunction(f_deploy);
    w.RequireCallerIsOneOf(cfg.participants);
    w.SLoad(U256(split_slots::kResultReady));
    w.RequireNot();
    w.SLoad(U256(split_slots::kDeployedAddr));
    w.RequireNot();
    contracts::EmitStageBytesArg0(w);
    for (size_t i = 0; i < cfg.participants.size(); ++i) {
      contracts::EmitEcrecoverRequire(w, 1 + 3 * static_cast<int>(i),
                                      cfg.participants[i]);
    }
    contracts::EmitCreateFromStagedBytes(w);
    w.SStore(U256(split_slots::kDeployedAddr));
    w.EndFunctionStop();

    // enforceResult(uint256): only the verified instance; overrides any
    // unfinalized proposal and finalizes immediately.
    w.BeginFunction(f_enforce);
    w.SLoad(U256(split_slots::kDeployedAddr));
    w.b().Op(Opcode::DUP1);
    w.Require();
    w.PushCaller();
    w.b().Op(Opcode::EQ);
    w.Require();
    w.SLoad(U256(split_slots::kResultReady));
    w.RequireNot();
    w.PushArg(0);
    w.SStore(U256(split_slots::kFinalResult));
    w.PushU(U256(1));
    w.SStore(U256(split_slots::kResultReady));
    w.EndFunctionStop();

    ONOFF_ASSIGN_OR_RETURN(out.onchain_runtime, w.BuildRuntime());
    out.onchain_init = contracts::WrapDeployer(out.onchain_runtime);
  }

  // ---------- Off-chain contract ----------
  {
    ContractWriter w;
    std::vector<ContractWriter::Label> heavy_labels;
    for (const FunctionDef* f : heavy) {
      heavy_labels.push_back(w.Declare(f->signature));
      out.offchain_signatures.push_back(f->signature);
    }
    auto f_return = w.Declare(kReturnSig);
    out.offchain_signatures.push_back(std::string(kReturnSig));
    w.FinishDispatch();

    for (size_t i = 0; i < heavy.size(); ++i) {
      w.BeginFunction(heavy_labels[i]);
      heavy[i]->body(w);
      w.EndFunctionReturnWord();
    }

    // returnDisputeResolution(address): recompute the resolver's result and
    // push it into the on-chain contract.
    w.BeginFunction(f_return);
    w.RequireCallerIsOneOf(cfg.participants);
    heavy[cfg.resolver_index]->body(w);  // [result]
    abi::Selector sel = abi::SelectorOf(kEnforceSig);
    U256 sel_word = U256::FromBigEndianTruncating(BytesView(sel.data(), 4))
                    << 224;
    // Stage calldata at 0x40 (the resolver may have used [0x00, 0x40)).
    w.PushU(sel_word);
    w.PushU(U256(0x40));
    w.b().Op(Opcode::MSTORE);
    w.PushU(U256(0x44));
    w.b().Op(Opcode::MSTORE);        // mem[0x44] = result
    w.PushU(U256(0));                // out size
    w.PushU(U256(0));                // out offset
    w.PushU(U256(0x24));             // in size
    w.PushU(U256(0x40));             // in offset
    w.PushU(U256(0));                // value
    w.PushArg(0);                    // to
    w.b().Op(Opcode::GAS);
    w.b().Op(Opcode::CALL);
    w.Require();
    w.EndFunctionStop();

    ONOFF_ASSIGN_OR_RETURN(out.offchain_runtime, w.BuildRuntime());
    out.offchain_init = contracts::WrapDeployer(out.offchain_runtime);
  }

  // ---------- Machine-checked classification ----------
  // The generator's promise is exactly what the analyzer can verify: every
  // light entry point fits under the block gas limit, and no heavy/private
  // body can leak into public state.
  {
    analysis::AnalysisOptions& on = out.onchain_audit;
    for (const FunctionDef* f : light) {
      on.light_selectors.push_back(SelectorWord(f->signature));
    }
    // deployVerifiedInstance is exempt: CREATE of the verified instance is
    // legitimately unbounded from the analyzer's point of view.
    on.light_selectors.push_back(SelectorWord(kSubmitSig));
    on.light_selectors.push_back(SelectorWord(kFinalizeSig));
    on.light_selectors.push_back(SelectorWord(kEnforceSig));
    for (const std::string& sig : out.onchain_signatures) {
      on.function_names[SelectorWord(sig)] = sig;
    }
    analysis::AnalysisReport report =
        analysis::AnalyzeProgram(out.onchain_runtime, on);
    if (report.HasErrors()) {
      return Status::AnalysisRejected(
          "generated on-chain contract failed verification: " +
          report.FirstError());
    }

    analysis::AnalysisOptions& off = out.offchain_audit;
    for (const FunctionDef* f : heavy) {
      off.private_selectors.push_back(SelectorWord(f->signature));
    }
    // returnDisputeResolution deliberately CALLs the on-chain contract; it
    // is the one sanctioned state-touching path and stays unclassified.
    for (const std::string& sig : out.offchain_signatures) {
      off.function_names[SelectorWord(sig)] = sig;
    }
    report = analysis::AnalyzeProgram(out.offchain_runtime, off);
    if (report.HasErrors()) {
      return Status::AnalysisRejected(
          "generated off-chain contract failed verification: " +
          report.FirstError());
    }
  }

  return out;
}

Result<Bytes> BuildWholeContract(const std::vector<FunctionDef>& functions) {
  ContractWriter w;
  std::vector<ContractWriter::Label> labels;
  for (const FunctionDef& f : functions) {
    labels.push_back(w.Declare(f.signature));
  }
  w.FinishDispatch();
  for (size_t i = 0; i < functions.size(); ++i) {
    w.BeginFunction(labels[i]);
    functions[i].body(w);
    if (functions[i].heavy) {
      // The heavy result is the contract's result: store and finalize.
      w.SStore(U256(split_slots::kFinalResult));
      w.PushU(U256(1));
      w.SStore(U256(split_slots::kResultReady));
    }
    w.EndFunctionStop();
  }
  ONOFF_ASSIGN_OR_RETURN(Bytes runtime, w.BuildRuntime());
  return contracts::WrapDeployer(runtime);
}

Bytes SubmitResultCalldata(const U256& result) {
  return abi::EncodeCall(kSubmitSig, {abi::Value::Uint(result)});
}

Bytes FinalizeResultCalldata() { return abi::EncodeCall(kFinalizeSig, {}); }

Result<Bytes> DeployVerifiedInstanceCalldata(const SignedCopy& copy,
                                             const SplitConfig& config) {
  std::vector<abi::Value> args;
  args.push_back(abi::Value::DynBytes(copy.bytecode()));
  for (const Address& participant : config.participants) {
    ONOFF_ASSIGN_OR_RETURN(secp256k1::Signature sig,
                           copy.SignatureOf(participant));
    args.push_back(abi::Value::Uint(sig.v));
    args.push_back(abi::Value::Bytes32(sig.r));
    args.push_back(abi::Value::Bytes32(sig.s));
  }
  return abi::EncodeCall(DeploySignatureFor(config.participants.size()), args);
}

Bytes ReturnDisputeResolutionCalldata(const Address& onchain_addr) {
  return abi::EncodeCall(kReturnSig, {abi::Value::Addr(onchain_addr)});
}

Bytes EnforceResultCalldata(const U256& result) {
  return abi::EncodeCall(kEnforceSig, {abi::Value::Uint(result)});
}

}  // namespace onoff::core
