#include "onoff/protocol.h"

#include <chrono>
#include <memory>
#include <optional>
#include <utility>

#include "obs/clock.h"
#include "obs/flight_recorder.h"
#include "trace/trace.h"

namespace onoff::core {

namespace {

constexpr char kSignedCopyTopic[] = "signed-copy";
// The transport endpoint name for the chain itself (the PoA producer a
// participant submits transactions to).
constexpr char kChainEndpoint[] = "chain";
// Approximate RLP transaction envelope overhead on the wire (nonce, gas
// fields, signature) added to the calldata size.
constexpr size_t kTxEnvelopeBytes = 110;

std::string StageKey(Stage stage, const char* field) {
  return "stage." + std::to_string(static_cast<int>(stage)) + "." + field;
}

// A transaction in flight through the simulated network.
struct PendingCall {
  bool done = false;
  // Set when the driver gives up at a deadline: a straggler delivery event
  // still queued in the scheduler must not execute the transaction.
  bool cancelled = false;
  std::optional<Result<chain::Receipt>> result;
};

bool IsDeadlineMiss(const Status& status) {
  return status.code() == StatusCode::kFailedPrecondition;
}

// Observes each stage's wall time into the process-global registry as the
// driver moves past it (or unwinds through an early settlement), and — when
// the run is traced — mirrors each stage as a span whose context becomes the
// ambient parent for the stage's transactions and messages.
class StageSpans {
 public:
  StageSpans() = default;
  StageSpans(const StageSpans&) = delete;
  StageSpans& operator=(const StageSpans&) = delete;
  ~StageSpans() { Close(); }

  void Enter(Stage stage) {
    Close();
    active_ = true;
    stage_ = stage;
    start_ = std::chrono::steady_clock::now();
    if (trace::Tracer* tracer = trace::Tracer::Global()) {
      span_.emplace(tracer, trace::CurrentContext(),
                    std::string("stage.") + StageName(stage), "protocol");
      ambient_.emplace(span_->context());
    }
  }

 private:
  void Close() {
    if (!active_) return;
    active_ = false;
    // LIFO: pop the ambient context before ending the span it points at.
    ambient_.reset();
    span_.reset();
    obs::Histogram* h = obs::GetHistogramOrNull(
        std::string("protocol.stage_us.") + StageName(stage_),
        obs::DefaultTimeBucketsUs());
    if (h != nullptr) {
      h->Observe(std::chrono::duration<double, std::micro>(
                     std::chrono::steady_clock::now() - start_)
                     .count());
    }
  }

  bool active_ = false;
  Stage stage_ = Stage::kSplitGenerate;
  std::chrono::steady_clock::time_point start_;
  std::optional<trace::ScopedSpan> span_;
  std::optional<trace::ScopedContext> ambient_;
};

}  // namespace

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kSplitGenerate:
      return "split/generate";
    case Stage::kDeploySign:
      return "deploy/sign";
    case Stage::kSubmitChallenge:
      return "submit/challenge";
    case Stage::kDisputeResolve:
      return "dispute/resolve";
  }
  return "unknown";
}

const char* SettlementName(Settlement settlement) {
  switch (settlement) {
    case Settlement::kAbortedUnsigned:
      return "aborted-unsigned";
    case Settlement::kAbortedTampered:
      return "aborted-tampered";
    case Settlement::kRefunded:
      return "refunded";
    case Settlement::kOptimistic:
      return "optimistic";
    case Settlement::kDisputed:
      return "disputed";
    case Settlement::kDisputeTimedOut:
      return "dispute-timed-out";
  }
  return "unknown";
}

BettingProtocol::BettingProtocol(chain::Blockchain* chain, MessageBus* bus,
                                 secp256k1::PrivateKey alice,
                                 secp256k1::PrivateKey bob,
                                 contracts::OffchainConfig offchain_template,
                                 U256 deposit_amount, ProtocolTiming timing)
    : chain_(chain),
      bus_(bus),
      alice_(std::move(alice)),
      bob_(std::move(bob)),
      offchain_(std::move(offchain_template)),
      deposit_amount_(deposit_amount),
      timing_(timing) {
  offchain_.alice = alice_.EthAddress();
  offchain_.bob = bob_.EthAddress();
}

void BettingProtocol::BindSimulation(sim::Scheduler* scheduler,
                                     sim::Transport* transport) {
  // Both or neither: a scheduler without a transport (or vice versa) has no
  // meaningful semantics.
  sched_ = transport != nullptr ? scheduler : nullptr;
  transport_ = scheduler != nullptr ? transport : nullptr;
  // Off-chain messages ride the same simulated network as transactions.
  bus_->SetTransport(transport_);
  // When tracing is on, spans are stamped from the virtual clock so trace
  // timestamps line up with the simulated network delays (and two runs with
  // the same seed export byte-identical traces).
  if (trace::Tracer* tracer = trace::Tracer::Global()) {
    if (sched_ != nullptr) {
      tracer->SetClock([sched = sched_] { return sched->NowMs() * 1000; });
    } else {
      tracer->SetClock(nullptr);
    }
  }
  // The shared observability clock follows the same binding, so ScopedTimer
  // latencies, flight-recorder timestamps and time-series sample times all
  // read simulated time — never a mix of wall and virtual.
  if (sched_ != nullptr) {
    obs::Clock::Install([sched = sched_] { return sched->NowMs() * 1000; });
  } else {
    obs::Clock::Install(nullptr);
  }
}

BettingProtocol::~BettingProtocol() {
  if (sched_ != nullptr) obs::Clock::Install(nullptr);
}

obs::Counter* BettingProtocol::StageCounter(Stage stage, const char* field) {
  return stage_registry_.GetCounter(StageKey(stage, field));
}

uint64_t BettingProtocol::VirtualMs(uint64_t unix_ts) const {
  uint64_t offset_s = unix_ts > run_start_ts_ ? unix_ts - run_start_ts_ : 0;
  return base_virtual_ms_ + offset_s * 1000;
}

void BettingProtocol::AdvanceChainTo(uint64_t unix_ts) {
  if (sched_ != nullptr) sched_->RunUntil(VirtualMs(unix_ts));
  chain_->AdvanceTimeTo(unix_ts);
}

Result<chain::Receipt> BettingProtocol::ExecuteViaSim(
    const secp256k1::PrivateKey& from, std::optional<Address> to,
    const U256& value, Bytes data, uint64_t gas_limit, uint64_t deadline_ms) {
  auto call = std::make_shared<PendingCall>();
  const size_t wire_bytes = data.size() + kTxEnvelopeBytes;
  const std::string sender = from.EthAddress().ToHex();
  // Retransmit until delivered or the deadline passes: the sender cannot
  // observe in-flight losses, so it re-sends on a timer. The first delivery
  // that lands executes the transaction; `done` de-duplicates later copies
  // (the pool would reject the duplicate nonce anyway). The retry events
  // hold only a weak reference so abandoning the call frees everything.
  auto attempt = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_attempt = attempt;
  // The submitter's ambient trace context, captured now because both the
  // retry timer and the delivery callback run from the scheduler with an
  // empty thread-local stack. Re-pushed around Execute so the chain links
  // the mined transaction back to this protocol run.
  trace::Tracer* tracer = trace::Tracer::Global();
  trace::TraceContext submit_ctx =
      tracer != nullptr ? trace::CurrentContext() : trace::TraceContext{};
  auto attempts = std::make_shared<int>(0);
  *attempt = [this, call, weak_attempt, sender, from, to, value,
              data = std::move(data), gas_limit, wire_bytes, deadline_ms,
              tracer, submit_ctx, attempts] {
    if (call->done || call->cancelled) return;
    if (++*attempts > 1 && tracer != nullptr) {
      tracer->Event(submit_ctx, "tx.retransmit", "protocol",
                    {{"attempt", std::to_string(*attempts)},
                     {"from", sender}});
    }
    transport_->Deliver(
        sender, kChainEndpoint, wire_bytes,
        [this, call, from, to, value, data, gas_limit, submit_ctx] {
          if (call->done || call->cancelled) return;
          trace::ScopedContext ambient(submit_ctx);
          // Block timestamps follow the virtual clock: the chain's time is
          // pulled up to the delivery instant before the transaction mines.
          chain_->AdvanceTimeTo(run_start_ts_ +
                                (sched_->NowMs() - base_virtual_ms_) / 1000);
          call->result = chain_->Execute(from, to, value, data, gas_limit);
          call->done = true;
        });
    uint64_t next = sched_->NowMs() + timing_.tx_retry_ms;
    if (next < deadline_ms) {
      sched_->ScheduleAt(next, [weak_attempt] {
        if (auto fn = weak_attempt.lock()) (*fn)();
      });
    }
  };
  (*attempt)();
  sched_->RunUntil(deadline_ms, [call] { return call->done; });
  if (!call->done) {
    call->cancelled = true;
    if (tracer != nullptr) {
      tracer->Event(submit_ctx, "tx.deadline_miss", "protocol",
                    {{"deadline_ms", std::to_string(deadline_ms)},
                     {"from", sender}});
    }
    return Status::FailedPrecondition(
        "transaction from " + sender + " missed its deadline (virtual t=" +
        std::to_string(deadline_ms) + "ms)");
  }
  return *call->result;
}

Result<chain::Receipt> BettingProtocol::Transact(
    const secp256k1::PrivateKey& from, std::optional<Address> to,
    const U256& value, Bytes data, uint64_t gas_limit, Stage stage,
    uint64_t deadline_ms) {
  size_t data_size = data.size();
  Result<chain::Receipt> receipt =
      sched_ == nullptr
          ? chain_->Execute(from, to, value, std::move(data), gas_limit)
          : ExecuteViaSim(from, to, value, std::move(data), gas_limit,
                          deadline_ms);
  if (!receipt.ok()) return receipt;
  StageCounter(stage, "gas_used")->Inc(receipt->gas_used);
  StageCounter(stage, "onchain_bytes")->Inc(data_size);
  StageCounter(stage, "transactions")->Inc();
  return receipt;
}

Result<ProtocolReport> BettingProtocol::Run(const Behavior& alice_behavior,
                                            const Behavior& bob_behavior) {
  stage_registry_.Reset();
  // Root of the causal trace: everything this run touches — off-chain
  // messages, network hops, pool admission, block inclusion, EVM frames —
  // inherits this context and shares one trace id.
  trace::Tracer* tracer = trace::Tracer::Global();
  trace::TraceContext root_ctx;
  if (tracer != nullptr) root_ctx = tracer->StartTrace();
  trace::ScopedSpan run_span(tracer, root_ctx, "protocol.run", "protocol");
  trace::ScopedContext ambient(run_span.context());
  ONOFF_ASSIGN_OR_RETURN(ProtocolReport report,
                         RunImpl(alice_behavior, bob_behavior));
  if (tracer != nullptr) {
    tracer->Event(run_span.context(), "protocol.settled", "protocol",
                  {{"settlement", SettlementName(report.settlement)}});
  }
  // Materialise the StageReport view from the per-run ledger. Every path —
  // aborts, refunds, optimistic, disputed — funnels through here, so the
  // view is complete regardless of where RunImpl settled.
  for (int i = 0; i < kNumStages; ++i) {
    Stage stage = static_cast<Stage>(i);
    StageReport& s = report.stages[i];
    s.gas_used = stage_registry_.CounterValue(StageKey(stage, "gas_used"));
    s.onchain_bytes = static_cast<size_t>(
        stage_registry_.CounterValue(StageKey(stage, "onchain_bytes")));
    s.offchain_messages = static_cast<size_t>(
        stage_registry_.CounterValue(StageKey(stage, "offchain_messages")));
    s.offchain_bytes = static_cast<size_t>(
        stage_registry_.CounterValue(StageKey(stage, "offchain_bytes")));
    s.transactions = static_cast<int>(
        stage_registry_.CounterValue(StageKey(stage, "transactions")));
  }
  run_span.AddArg("settlement", SettlementName(report.settlement));
  run_span.AddArg("gas_used", std::to_string(report.TotalGas()));
  // Settlement boundary: hand the terminal facts to the chain's invariant
  // auditor (double-settlement / payout / dispute-window checks) and stamp
  // the flight recorder.
  if (chain::ChainAuditor* auditor = chain_->auditor()) {
    chain::SettlementAudit audit;
    audit.game = report.onchain_contract;
    audit.settlement = SettlementName(report.settlement);
    audit.resolved =
        report.settlement == Settlement::kOptimistic ||
        (report.settlement == Settlement::kDisputed &&
         !report.verified_instance.IsZero());
    audit.correct_payout = report.correct_payout;
    audit.trace_id = run_span.context().trace_id;
    if (sched_ != nullptr) {
      audit.t3_ms = VirtualMs(run_start_ts_ + timing_.t3_offset);
      audit.settled_ms = sched_->NowMs();
      audit.challenge_period_ms = timing_.challenge_period_ms;
    }
    auditor->OnSettlement(audit);
  }
  obs::FlightRecord(obs::FlightKind::kSettlement,
                    run_span.context().trace_id, report.TotalGas(), 0,
                    SettlementName(report.settlement));
  // Mirror run totals into the global registry (no-ops when disabled).
  if (obs::Registry* g = obs::Registry::Global()) {
    g->GetCounter("protocol.runs")->Inc();
    g->GetCounter(std::string("protocol.settlement.") +
                  SettlementName(report.settlement))
        ->Inc();
    g->GetCounter("protocol.gas_used")->Inc(report.TotalGas());
    g->GetCounter("protocol.onchain_bytes")->Inc(report.TotalOnchainBytes());
    g->GetCounter("protocol.private_bytes_revealed")
        ->Inc(report.private_bytes_revealed);
  }
  return report;
}

Result<ProtocolReport> BettingProtocol::RunImpl(const Behavior& alice_behavior,
                                                const Behavior& bob_behavior) {
  ProtocolReport report;
  StageSpans spans;
  uint64_t now = chain_->Now();
  run_start_ts_ = now;
  base_virtual_ms_ = sched_ != nullptr ? sched_->NowMs() : 0;

  contracts::BettingConfig betting;
  betting.alice = alice_.EthAddress();
  betting.bob = bob_.EthAddress();
  betting.deposit_amount = deposit_amount_;
  betting.t1 = now + timing_.t1_offset;
  betting.t2 = now + timing_.t2_offset;
  betting.t3 = now + timing_.t3_offset;

  // ---- Stage 1: split/generate ----
  spans.Enter(Stage::kSplitGenerate);
  ONOFF_ASSIGN_OR_RETURN(Bytes onchain_init,
                         contracts::BuildOnChainInit(betting));
  ONOFF_ASSIGN_OR_RETURN(Bytes offchain_init,
                         contracts::BuildOffChainInit(offchain_));
  // Generation is purely local: no gas, no messages.

  // ---- Stage 2: deploy/sign ----
  spans.Enter(Stage::kDeploySign);
  // Rule 1: Alice deploys the on-chain contract before T0.
  ONOFF_ASSIGN_OR_RETURN(chain::Receipt deploy_receipt,
                         Transact(alice_, std::nullopt, U256(), onchain_init,
                                  4'000'000, Stage::kDeploySign,
                                  VirtualMs(betting.t1)));
  if (!deploy_receipt.success || deploy_receipt.contract_address.IsZero()) {
    return Status::Internal("on-chain contract deployment failed");
  }
  Address onchain = deploy_receipt.contract_address;
  report.onchain_contract = onchain;
  StageCounter(Stage::kDeploySign, "onchain_bytes")
      ->Inc(chain_->GetCode(onchain).size());

  // Both participants must hold a fully signed copy before any deposit.
  // Each signs their own locally generated copy and broadcasts it over the
  // Whisper-like bus; each then RECEIVES the counterparty's message and
  // verifies (a) the bytecode matches their own deterministic compilation
  // and (b) the attached signature is genuine. Any drop, tamper or refusal
  // aborts the game before money moves (incentive safety).
  size_t msgs_before = bus_->messages_sent();
  size_t bytes_before = bus_->bytes_sent();
  std::vector<Address> participants = {alice_.EthAddress(), bob_.EthAddress()};
  bool signing_ok = true;
  if (alice_behavior.sign_offchain_copy) {
    SignedCopy mine(offchain_init);
    // An audit rejection means an honest participant refuses to endorse the
    // bytecode — the game aborts unsigned, exactly like an explicit refusal.
    if (mine.AddSignature(alice_).ok()) {
      bus_->Broadcast(alice_.EthAddress(), participants, kSignedCopyTopic,
                      mine.Serialize());
    } else {
      signing_ok = false;
    }
  } else {
    signing_ok = false;
  }
  if (bob_behavior.sign_offchain_copy) {
    SignedCopy mine(offchain_init);
    if (mine.AddSignature(bob_).ok()) {
      bus_->Broadcast(bob_.EthAddress(), participants, kSignedCopyTopic,
                      mine.Serialize());
    } else {
      signing_ok = false;
    }
  } else {
    signing_ok = false;
  }
  StageCounter(Stage::kDeploySign, "offchain_messages")
      ->Inc(bus_->messages_sent() - msgs_before);
  StageCounter(Stage::kDeploySign, "offchain_bytes")
      ->Inc(bus_->bytes_sent() - bytes_before);

  if (!signing_ok) {
    report.settlement = Settlement::kAbortedUnsigned;
    report.correct_payout = true;  // nobody lost anything
    return report;
  }

  // Sim-bound: wait for the signed copies to cross the wire (or for T1 to
  // pass — a dropped copy aborts the game below, before any money moves).
  if (sched_ != nullptr) {
    sched_->RunUntil(VirtualMs(betting.t1), [this] {
      return bus_->PendingFor(alice_.EthAddress()) > 0 &&
             bus_->PendingFor(bob_.EthAddress()) > 0;
    });
  }

  // Receive + verify the counterparty's signature; assemble the full copy.
  SignedCopy copy(offchain_init);
  auto ingest = [&](const secp256k1::PrivateKey& me,
                    const Address& from) -> bool {
    auto msg = bus_->Receive(me.EthAddress(), kSignedCopyTopic);
    if (!msg.ok()) return false;  // dropped in flight
    auto received = SignedCopy::Deserialize(msg->payload);
    if (!received.ok()) return false;  // mangled in flight
    // The counterparty must have signed EXACTLY my compilation output
    // ("all the participants should use the same version of compiler").
    if (received->bytecode() != offchain_init) return false;
    if (!received->VerifyComplete({from}).ok()) return false;
    auto sig = received->SignatureOf(from);
    copy.AttachSignature(from, *sig);
    return true;
  };
  bool alice_ok = ingest(alice_, bob_.EthAddress());
  bool bob_ok = ingest(bob_, alice_.EthAddress());
  // Own signatures are attached locally (audited above; re-audit is a no-op
  // failure-wise but keeps every signing path behind the same gate).
  bool own_ok =
      copy.AddSignature(alice_).ok() && copy.AddSignature(bob_).ok();
  if (!alice_ok || !bob_ok || !own_ok ||
      !copy.VerifyComplete(participants).ok()) {
    report.settlement = Settlement::kAbortedTampered;
    report.correct_payout = true;  // aborted before any deposit
    return report;
  }

  // ---- Stage 3: submit/challenge (deposits + off-chain execution) ----
  spans.Enter(Stage::kSubmitChallenge);
  bool alice_deposited = false;
  bool bob_deposited = false;
  // A deposit that misses the T1 window on the simulated network is simply
  // a missing deposit (the refund rules below apply); every other failure
  // is a real error.
  auto deposit = [&](const secp256k1::PrivateKey& who,
                     bool* deposited) -> Status {
    Result<chain::Receipt> r =
        Transact(who, onchain, deposit_amount_, contracts::DepositCalldata(),
                 300'000, Stage::kSubmitChallenge, VirtualMs(betting.t1));
    if (r.ok()) {
      *deposited = r->success;
      return Status::OK();
    }
    if (sched_ != nullptr && IsDeadlineMiss(r.status())) return Status::OK();
    return r.status();
  };
  if (alice_behavior.make_deposit) {
    ONOFF_RETURN_NOT_OK(deposit(alice_, &alice_deposited));
  }
  if (bob_behavior.make_deposit) {
    ONOFF_RETURN_NOT_OK(deposit(bob_, &bob_deposited));
  }

  if (!alice_deposited || !bob_deposited) {
    // Rule 2/3: whoever deposited takes a refund (round one before T1 or
    // round two between T1 and T2).
    AdvanceChainTo(betting.t1);
    if (alice_deposited) {
      ONOFF_RETURN_NOT_OK(Transact(alice_, onchain, U256(),
                                   contracts::RefundRoundTwoCalldata(),
                                   300'000, Stage::kSubmitChallenge,
                                   VirtualMs(betting.t2))
                              .status());
    }
    if (bob_deposited) {
      ONOFF_RETURN_NOT_OK(Transact(bob_, onchain, U256(),
                                   contracts::RefundRoundTwoCalldata(),
                                   300'000, Stage::kSubmitChallenge,
                                   VirtualMs(betting.t2))
                              .status());
    }
    report.settlement = Settlement::kRefunded;
    report.correct_payout = true;
    return report;
  }

  // Rule 4: after T2 both participants execute the off-chain contract
  // locally (each on their own private EVM) and reach unanimous agreement.
  AdvanceChainTo(betting.t2);
  auto run_locally = [&](const secp256k1::PrivateKey& who) -> Result<bool> {
    chain::Blockchain local;  // private local chain, never published
    local.FundAccount(who.EthAddress(), contracts::Ether(1));
    ONOFF_ASSIGN_OR_RETURN(
        chain::Receipt r,
        local.Execute(who, std::nullopt, U256(), copy.bytecode(), 4'000'000));
    if (!r.success) return Status::Internal("local off-chain deploy failed");
    auto res = local.CallReadOnly(who.EthAddress(), r.contract_address,
                                  contracts::GetWinnerCalldata());
    if (!res.ok()) return Status::Internal("local off-chain execution failed");
    return !U256::FromBigEndianTruncating(res.output).IsZero();
  };
  ONOFF_ASSIGN_OR_RETURN(bool alice_view, run_locally(alice_));
  ONOFF_ASSIGN_OR_RETURN(bool bob_view, run_locally(bob_));
  if (alice_view != bob_view) {
    return Status::Internal("honest local executions diverged");
  }
  report.bob_won = bob_view;

  const secp256k1::PrivateKey& loser = report.bob_won ? alice_ : bob_;
  const secp256k1::PrivateKey& winner = report.bob_won ? bob_ : alice_;
  const Behavior& loser_behavior =
      report.bob_won ? alice_behavior : bob_behavior;
  const Behavior& winner_behavior =
      report.bob_won ? bob_behavior : alice_behavior;

  U256 winner_before = chain_->GetBalance(winner.EthAddress());

  bool reassigned = false;
  if (loser_behavior.admit_loss) {
    // Optimistic path: the loser calls reassign() before T3.
    Result<chain::Receipt> r =
        Transact(loser, onchain, U256(), contracts::ReassignCalldata(),
                 300'000, Stage::kSubmitChallenge, VirtualMs(betting.t3));
    if (r.ok() && r->success) {
      reassigned = true;
    } else if (sched_ == nullptr) {
      if (!r.ok()) return r.status();
      return Status::Internal("reassign unexpectedly failed");
    }
    // Sim-bound and not reassigned: the admission was dropped or delivered
    // after T3 (the contract's time guard reverted it) — the protocol now
    // plays out exactly as if the loser had gone silent.
  }
  if (reassigned) {
    report.settlement = Settlement::kOptimistic;
    report.private_bytes_revealed = 0;
    U256 winner_after = chain_->GetBalance(winner.EthAddress());
    report.correct_payout =
        winner_after == winner_before + deposit_amount_ * U256(2);
    return report;
  }

  // ---- Stage 4: dispute/resolve ----
  spans.Enter(Stage::kDisputeResolve);
  AdvanceChainTo(betting.t3);
  uint64_t dispute_open_ms = sched_ != nullptr ? sched_->NowMs() : 0;
  // The challenge period: the winner's window to reach the chain.
  uint64_t dispute_deadline_ms =
      VirtualMs(betting.t3) + timing_.challenge_period_ms;
  if (!winner_behavior.pursue_dispute) {
    // Nobody enforces: the pot stays locked. (Modelled for completeness.)
    report.settlement = Settlement::kDisputed;
    report.correct_payout = false;
    return report;
  }
  // Rule 5: the winner reveals the signed copy on-chain.
  ONOFF_ASSIGN_OR_RETURN(secp256k1::Signature sig_a,
                         copy.SignatureOf(alice_.EthAddress()));
  ONOFF_ASSIGN_OR_RETURN(secp256k1::Signature sig_b,
                         copy.SignatureOf(bob_.EthAddress()));
  Bytes dispute_calldata = contracts::DeployVerifiedInstanceCalldata(
      copy.bytecode(), sig_a.v, sig_a.r, sig_a.s, sig_b.v, sig_b.r, sig_b.s);
  report.private_bytes_revealed = dispute_calldata.size();
  Result<chain::Receipt> deploy_r =
      Transact(winner, onchain, U256(), std::move(dispute_calldata),
               6'000'000, Stage::kDisputeResolve, dispute_deadline_ms);
  if (!deploy_r.ok() || !deploy_r->success) {
    if (sched_ != nullptr && !deploy_r.ok() &&
        IsDeadlineMiss(deploy_r.status())) {
      // The reveal never reached the chain: nothing became public.
      report.private_bytes_revealed = 0;
      report.settlement = Settlement::kDisputeTimedOut;
      report.correct_payout = false;
      return report;
    }
    if (!deploy_r.ok()) return deploy_r.status();
    return Status::Internal("deployVerifiedInstance failed");
  }
  Address instance = Address::FromWord(chain_->GetStorage(
      onchain, U256(contracts::betting_slots::kDeployedAddr)));
  report.verified_instance = instance;
  StageCounter(Stage::kDisputeResolve, "onchain_bytes")
      ->Inc(chain_->GetCode(instance).size());

  Result<chain::Receipt> resolve_r =
      Transact(winner, instance, U256(),
               contracts::ReturnDisputeResolutionCalldata(onchain), 6'000'000,
               Stage::kDisputeResolve, dispute_deadline_ms);
  if (!resolve_r.ok() || !resolve_r->success) {
    if (sched_ != nullptr && !resolve_r.ok() &&
        IsDeadlineMiss(resolve_r.status())) {
      // The instance is deployed (bytecode revealed) but the resolution
      // never landed inside the window: the pot stays locked.
      report.settlement = Settlement::kDisputeTimedOut;
      report.correct_payout = false;
      return report;
    }
    if (!resolve_r.ok()) return resolve_r.status();
    return Status::Internal("returnDisputeResolution failed");
  }

  report.settlement = Settlement::kDisputed;
  if (sched_ != nullptr) report.dispute_ms = sched_->NowMs() - dispute_open_ms;
  U256 winner_after = chain_->GetBalance(winner.EthAddress());
  U256 spent(deploy_r->gas_used + resolve_r->gas_used);
  report.correct_payout =
      winner_after + spent == winner_before + deposit_amount_ * U256(2);
  return report;
}

}  // namespace onoff::core
