// The four-stage hybrid-on/off-chain protocol driver for the paper's betting
// example (Table I / Fig. 2):
//
//   1. split/generate   — produce the on-chain and off-chain contracts
//   2. deploy/sign      — deploy on-chain; exchange signed copies off-chain
//   3. submit/challenge — deposits, local off-chain execution, optimistic
//                         settlement via reassign()
//   4. dispute/resolve  — deployVerifiedInstance + returnDisputeResolution
//                         when a dishonest loser goes silent
//
// Each participant is an agent with a wallet and a behaviour profile;
// dishonest behaviours (refusing to sign, refusing to deposit, refusing to
// admit a loss) force the protocol down the corresponding paths. The driver
// records per-stage gas, on-chain bytes and off-chain message traffic — the
// quantities the evaluation section reports — in a private obs::Registry it
// owns; the public StageReport array is a view materialised from registry
// reads when Run() returns, so the reported numbers are deterministic even
// when process-global metrics are disabled.

#ifndef ONOFFCHAIN_ONOFF_PROTOCOL_H_
#define ONOFFCHAIN_ONOFF_PROTOCOL_H_

#include <array>
#include <optional>
#include <string>

#include "chain/blockchain.h"
#include "contracts/betting.h"
#include "crypto/secp256k1.h"
#include "obs/metrics.h"
#include "onoff/message_bus.h"
#include "onoff/signed_copy.h"
#include "sim/scheduler.h"
#include "sim/transport.h"
#include "support/status.h"

namespace onoff::core {

enum class Stage {
  kSplitGenerate = 0,
  kDeploySign = 1,
  kSubmitChallenge = 2,
  kDisputeResolve = 3,
};
inline constexpr int kNumStages = 4;

const char* StageName(Stage stage);

// How one participant behaves during the protocol.
struct Behavior {
  bool sign_offchain_copy = true;
  bool make_deposit = true;
  // Loser honesty: call reassign() before T3 when losing.
  bool admit_loss = true;
  // Winner diligence: pursue the dispute path when wronged.
  bool pursue_dispute = true;
};

struct StageReport {
  uint64_t gas_used = 0;        // miner gas consumed during this stage
  size_t onchain_bytes = 0;     // calldata + deployed code pushed on-chain
  size_t offchain_messages = 0;
  size_t offchain_bytes = 0;
  int transactions = 0;
};

// How the run ended.
enum class Settlement {
  kAbortedUnsigned,   // a participant refused to sign: no on-chain activity
  kAbortedTampered,   // a received signed copy failed verification (bad
                      // channel or forgery): aborted before deposits
  kRefunded,          // deposits returned via refundRoundOne/Two
  kOptimistic,        // loser called reassign(); off-chain content stayed private
  kDisputed,          // winner forced resolution via the verified instance
  kDisputeTimedOut,   // sim-bound runs only: the winner's dispute
                      // transactions did not reach the chain within the
                      // challenge period (latency/loss/partition) — the pot
                      // stays locked, the paper's liveness assumption broken
};

const char* SettlementName(Settlement settlement);

struct ProtocolReport {
  Settlement settlement = Settlement::kAbortedUnsigned;
  bool bob_won = false;
  // True iff the pot ended up with the rightful winner.
  bool correct_payout = false;
  std::array<StageReport, kNumStages> stages;
  // Bytes of the off-chain contract that became public on-chain (0 on the
  // optimistic path — the privacy headline).
  size_t private_bytes_revealed = 0;
  Address onchain_contract;
  Address verified_instance;
  // Sim-bound runs only: virtual ms from the T3 deadline until dispute
  // resolution completed (0 when no dispute ran or the run was unbound).
  uint64_t dispute_ms = 0;

  uint64_t TotalGas() const {
    uint64_t total = 0;
    for (const auto& s : stages) total += s.gas_used;
    return total;
  }
  size_t TotalOnchainBytes() const {
    size_t total = 0;
    for (const auto& s : stages) total += s.onchain_bytes;
    return total;
  }
};

// Timing offsets (seconds from "now" at Run()) for T1/T2/T3 of Table I.
struct ProtocolTiming {
  uint64_t t1_offset = 100;
  uint64_t t2_offset = 200;
  uint64_t t3_offset = 300;
  // Sim-bound runs only. The challenge period: how long (virtual ms) past
  // T3 the winner's dispute transactions may take to reach the chain before
  // the run is declared lost (kDisputeTimedOut). The paper assumes this
  // window always suffices; the simulator makes it a measured quantity.
  uint64_t challenge_period_ms = 60'000;
  // Retransmission interval for unacknowledged transactions (the sender
  // cannot see in-flight losses, so it re-sends until its deadline).
  uint64_t tx_retry_ms = 250;
};

class BettingProtocol {
 public:
  BettingProtocol(chain::Blockchain* chain, MessageBus* bus,
                  secp256k1::PrivateKey alice, secp256k1::PrivateKey bob,
                  contracts::OffchainConfig offchain_template,
                  U256 deposit_amount, ProtocolTiming timing = {});
  // Restores the wall obs::Clock when this protocol installed a virtual one.
  ~BettingProtocol();

  // Binds the run to simulated time: participant→chain transactions travel
  // through `transport` (endpoints: the participant's address hex → the
  // reserved name "chain"), T1..T3 become deadlines on the virtual clock,
  // and block timestamps follow it. A transaction that cannot reach the
  // chain inside its rule's window plays out exactly as if the sender had
  // gone silent: a late reassign() escalates to the dispute path, a late
  // dispute settles kDisputeTimedOut. Pass nullptrs to restore the
  // synchronous behaviour. The scheduler's clock zero is mapped to the
  // chain's Now() when Run() starts.
  void BindSimulation(sim::Scheduler* scheduler, sim::Transport* transport);

  // Executes the whole lifecycle under the given behaviours.
  Result<ProtocolReport> Run(const Behavior& alice_behavior,
                             const Behavior& bob_behavior);

 private:
  // The protocol lifecycle; stage stats accumulate in stage_registry_ and
  // are folded into the report by Run().
  Result<ProtocolReport> RunImpl(const Behavior& alice_behavior,
                                 const Behavior& bob_behavior);

  // Sends a transaction (nullopt `to` = contract creation) and accumulates
  // its stats under `stage` in stage_registry_. Unbound, `deadline_ms` is
  // ignored; sim-bound, the transaction travels through the transport with
  // retransmission until the absolute virtual-time deadline, and missing it
  // returns StatusCode::kFailedPrecondition.
  Result<chain::Receipt> Transact(const secp256k1::PrivateKey& from,
                                  std::optional<Address> to,
                                  const U256& value, Bytes data,
                                  uint64_t gas_limit, Stage stage,
                                  uint64_t deadline_ms = 0);

  // Sim-bound transaction submission (see Transact).
  Result<chain::Receipt> ExecuteViaSim(const secp256k1::PrivateKey& from,
                                       std::optional<Address> to,
                                       const U256& value, Bytes data,
                                       uint64_t gas_limit,
                                       uint64_t deadline_ms);

  // Maps a chain timestamp (unix seconds) to absolute virtual ms.
  uint64_t VirtualMs(uint64_t unix_ts) const;
  // Waits out the virtual clock to `unix_ts` (delivering whatever is in
  // flight) and advances the chain clock to match.
  void AdvanceChainTo(uint64_t unix_ts);

  // The per-stage instrument "stage.<index>.<field>" in stage_registry_.
  obs::Counter* StageCounter(Stage stage, const char* field);

  chain::Blockchain* chain_;
  MessageBus* bus_;
  secp256k1::PrivateKey alice_;
  secp256k1::PrivateKey bob_;
  contracts::OffchainConfig offchain_;
  U256 deposit_amount_;
  ProtocolTiming timing_;
  // Per-run stage ledger. Always on (independent of ONOFF_METRICS) so the
  // StageReport view stays exact; reset at the top of every Run().
  obs::Registry stage_registry_;
  // Simulation binding (nullptr = synchronous).
  sim::Scheduler* sched_ = nullptr;
  sim::Transport* transport_ = nullptr;
  // Mapping between chain unix seconds and the virtual clock, fixed at the
  // top of RunImpl so one protocol instance can run on a reused scheduler.
  uint64_t run_start_ts_ = 0;
  uint64_t base_virtual_ms_ = 0;
};

}  // namespace onoff::core

#endif  // ONOFFCHAIN_ONOFF_PROTOCOL_H_
