#include "onoff/message_bus.h"

#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "trace/trace.h"

namespace onoff::core {

void MessageBus::CountDrop(size_t payload_bytes) {
  ++messages_dropped_;
  bytes_dropped_ += payload_bytes;
  static obs::Counter* dropped = obs::GetCounterOrNull("bus.messages_dropped");
  static obs::Counter* dropped_bytes =
      obs::GetCounterOrNull("bus.bytes_dropped");
  if (dropped != nullptr) dropped->Inc();
  if (dropped_bytes != nullptr) dropped_bytes->Inc(payload_bytes);
  obs::FlightRecord(obs::FlightKind::kBusDrop, trace::CurrentContext().trace_id,
                    payload_bytes, 0, "send-time drop");
}

void MessageBus::DeliverNow(Message message) {
  if (tamper_) {
    tamper_(message);
    ++messages_tampered_;
    static obs::Counter* tampered =
        obs::GetCounterOrNull("bus.messages_tampered");
    if (tampered != nullptr) tampered->Inc();
  }
  static obs::Counter* delivered =
      obs::GetCounterOrNull("bus.messages_delivered");
  if (delivered != nullptr) delivered->Inc();
  obs::FlightRecord(obs::FlightKind::kBusDeliver,
                    trace::CurrentContext().trace_id, message.payload.size(), 0,
                    message.topic);
  inboxes_[message.to].push_back(std::move(message));
}

void MessageBus::Send(Message message) {
  ++messages_sent_;
  bytes_sent_ += message.payload.size();
  static obs::Counter* sent = obs::GetCounterOrNull("bus.messages_sent");
  static obs::Counter* sent_bytes = obs::GetCounterOrNull("bus.bytes_sent");
  if (sent != nullptr) sent->Inc();
  if (sent_bytes != nullptr) sent_bytes->Inc(message.payload.size());

  // The sender's ambient trace context, captured here because a deferred
  // transport runs the delivery closure with an empty thread-local stack.
  trace::Tracer* tracer = trace::Tracer::Global();
  trace::TraceContext ctx =
      tracer != nullptr ? trace::CurrentContext() : trace::TraceContext{};

  if (drop_ && drop_(message)) {
    CountDrop(message.payload.size());
    if (tracer != nullptr) {
      tracer->Event(ctx, "bus.drop", "net",
                    {{"reason", "drop_hook"}, {"topic", message.topic}});
    }
    return;
  }
  if (transport_ == nullptr) {
    if (tracer != nullptr) {
      tracer->Event(ctx, "bus.deliver", "net", {{"topic", message.topic}});
    }
    DeliverNow(std::move(message));
    return;
  }
  std::string from = message.from.ToHex();
  std::string to = message.to.ToHex();
  size_t bytes = message.payload.size();
  // The in-flight span: opened at send, closed when the scheduler runs the
  // delivery event — its duration is the simulated network latency.
  trace::TraceContext flight;
  if (tracer != nullptr) {
    flight = tracer->BeginSpan(ctx, "bus.flight", "net",
                               {{"topic", message.topic}, {"to", to}});
  }
  bool scheduled = transport_->Deliver(
      from, to, bytes,
      [this, tracer, flight, message = std::move(message)]() mutable {
        DeliverNow(std::move(message));
        if (tracer != nullptr) tracer->EndSpan(flight);
      });
  if (!scheduled) {
    // Rejected at send time (loss, partition, crashed endpoint). In-flight
    // losses are invisible to the sender by design; the transport's own
    // stats account for those.
    CountDrop(bytes);
    if (tracer != nullptr) {
      tracer->EndSpan(flight, {{"dropped", "transport_reject"}});
    }
  }
}

void MessageBus::Broadcast(const Address& from,
                           const std::vector<Address>& recipients,
                           const std::string& topic, const Bytes& payload) {
  for (const Address& to : recipients) {
    if (to == from) continue;
    Send(Message{from, to, topic, payload});
  }
}

Result<Message> MessageBus::Receive(const Address& addr,
                                    const std::string& topic) {
  auto it = inboxes_.find(addr);
  if (it == inboxes_.end()) return Status::NotFound("inbox empty");
  for (auto msg_it = it->second.begin(); msg_it != it->second.end(); ++msg_it) {
    if (msg_it->topic == topic) {
      Message out = std::move(*msg_it);
      it->second.erase(msg_it);
      return out;
    }
  }
  return Status::NotFound("no message with topic '" + topic + "'");
}

size_t MessageBus::PendingFor(const Address& addr) const {
  auto it = inboxes_.find(addr);
  return it == inboxes_.end() ? 0 : it->second.size();
}

}  // namespace onoff::core
