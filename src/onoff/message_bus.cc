#include "onoff/message_bus.h"

namespace onoff::core {

void MessageBus::Send(Message message) {
  ++messages_sent_;
  bytes_sent_ += message.payload.size();
  if (drop_ && drop_(message)) return;
  if (tamper_) tamper_(message);
  inboxes_[message.to].push_back(std::move(message));
}

void MessageBus::Broadcast(const Address& from,
                           const std::vector<Address>& recipients,
                           const std::string& topic, const Bytes& payload) {
  for (const Address& to : recipients) {
    if (to == from) continue;
    Send(Message{from, to, topic, payload});
  }
}

Result<Message> MessageBus::Receive(const Address& addr,
                                    const std::string& topic) {
  auto it = inboxes_.find(addr);
  if (it == inboxes_.end()) return Status::NotFound("inbox empty");
  for (auto msg_it = it->second.begin(); msg_it != it->second.end(); ++msg_it) {
    if (msg_it->topic == topic) {
      Message out = std::move(*msg_it);
      it->second.erase(msg_it);
      return out;
    }
  }
  return Status::NotFound("no message with topic '" + topic + "'");
}

size_t MessageBus::PendingFor(const Address& addr) const {
  auto it = inboxes_.find(addr);
  return it == inboxes_.end() ? 0 : it->second.size();
}

}  // namespace onoff::core
