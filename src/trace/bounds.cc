#include "trace/bounds.h"

#include <cstdio>

#include "obs/metrics.h"

namespace onoff::trace {

namespace {

std::string SelectorHex(uint32_t selector) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", selector);
  return std::string(buf);
}

}  // namespace

std::string GasBoundsChecker::Violation::ToString() const {
  return "gas bound violated: " + function + " observed " +
         std::to_string(observed_gas) + " > bound " +
         std::to_string(bound_gas);
}

GasBoundsChecker::GasBoundsChecker(analysis::AnalysisOptions options)
    : options_(std::move(options)) {}

const analysis::AnalysisReport& GasBoundsChecker::ReportFor(
    const Bytes& code) {
  Hash32 key = Keccak256(code);
  auto it = call_cache_.find(key);
  if (it == call_cache_.end()) {
    it = call_cache_.emplace(key, analysis::AnalyzeProgram(code, options_))
             .first;
  }
  return it->second;
}

const analysis::DeploymentReport& GasBoundsChecker::DeployReportFor(
    const Bytes& init_code) {
  Hash32 key = Keccak256(init_code);
  auto it = deploy_cache_.find(key);
  if (it == deploy_cache_.end()) {
    it = deploy_cache_
             .emplace(key, analysis::AnalyzeDeployment(init_code, options_))
             .first;
  }
  return it->second;
}

std::optional<GasBoundsChecker::Violation> GasBoundsChecker::Record(
    std::optional<Violation> violation) {
  static obs::Counter* checks = obs::GetCounterOrNull("trace.bounds_checks");
  static obs::Counter* violations =
      obs::GetCounterOrNull("trace.bounds_violations");
  if (checks != nullptr) checks->Inc();
  ++checks_;
  if (violation.has_value()) {
    if (violations != nullptr) violations->Inc();
    ++violations_;
  }
  return violation;
}

std::optional<GasBoundsChecker::Violation> GasBoundsChecker::CheckCall(
    const Bytes& code, const Bytes& calldata, uint64_t observed_gas) {
  std::lock_guard<std::mutex> lock(mu_);
  const analysis::AnalysisReport& report = ReportFor(code);

  // Resolve the dispatched function from the calldata selector; fall back to
  // the whole-program bound when there is no dispatch match.
  const analysis::FunctionReport* fn = nullptr;
  if (calldata.size() >= 4 && !report.functions.empty()) {
    uint32_t selector = (static_cast<uint32_t>(calldata[0]) << 24) |
                        (static_cast<uint32_t>(calldata[1]) << 16) |
                        (static_cast<uint32_t>(calldata[2]) << 8) |
                        static_cast<uint32_t>(calldata[3]);
    for (const analysis::FunctionReport& f : report.functions) {
      if (f.selector == selector) {
        fn = &f;
        break;
      }
    }
  }

  const analysis::GasBound& bound =
      fn != nullptr ? fn->gas_bound : report.program_bound;
  if (bound.Covers(observed_gas)) return Record(std::nullopt);

  Violation v;
  v.selector = fn != nullptr ? fn->selector : 0;
  v.function = fn != nullptr
                   ? (fn->name.empty() ? SelectorHex(fn->selector) : fn->name)
                   : "(program)";
  v.observed_gas = observed_gas;
  v.bound_gas = bound.gas;
  return Record(v);
}

std::optional<GasBoundsChecker::Violation> GasBoundsChecker::CheckCreate(
    const Bytes& init_code, uint64_t observed_gas) {
  std::lock_guard<std::mutex> lock(mu_);
  const analysis::DeploymentReport& report = DeployReportFor(init_code);
  analysis::GasBound bound = report.DeployGasBound();
  if (bound.Covers(observed_gas)) return Record(std::nullopt);

  Violation v;
  v.function = "(deploy)";
  v.observed_gas = observed_gas;
  v.bound_gas = bound.gas;
  return Record(v);
}

uint64_t GasBoundsChecker::checks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checks_;
}

uint64_t GasBoundsChecker::violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_;
}

}  // namespace onoff::trace
