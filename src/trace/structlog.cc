#include "trace/structlog.h"

#include <algorithm>

#include "evm/evm.h"

namespace onoff::trace {

StructLogTracer::StructLogTracer(StructLogConfig config) : config_(config) {}

void StructLogTracer::PatchLastAtDepth(int depth, uint64_t gas_now) {
  if (depth < 0 || static_cast<size_t>(depth) >= last_record_at_depth_.size()) {
    return;
  }
  int64_t idx = last_record_at_depth_[depth];
  if (idx < 0) return;
  StructLogRecord& rec = records_[static_cast<size_t>(idx)];
  rec.gas_cost = rec.gas >= gas_now ? rec.gas - gas_now : 0;
}

void StructLogTracer::OnFrameEnter(const evm::FrameContext& frame) {
  CallFrame cf;
  cf.kind = frame.kind;
  cf.depth = frame.depth;
  cf.self = frame.self;
  cf.code_address = frame.code_address;
  cf.caller = frame.caller;
  cf.value = frame.value;
  cf.gas = frame.gas;
  cf.input_size = frame.input_size;
  cf.parent = open_frames_.empty() ? -1 : open_frames_.back();
  int index = static_cast<int>(frames_.size());
  if (cf.parent >= 0) frames_[cf.parent].children.push_back(index);
  frames_.push_back(std::move(cf));
  open_frames_.push_back(index);
  // A new frame at depth d must not patch across frames: forget any pending
  // record at that depth (its cost was settled by the previous frame's exit).
  if (static_cast<size_t>(frame.depth) >= last_record_at_depth_.size()) {
    last_record_at_depth_.resize(frame.depth + 1, -1);
  }
  last_record_at_depth_[frame.depth] = -1;
}

void StructLogTracer::OnFrameExit(const evm::FrameContext& frame,
                                  const evm::ExecResult& result,
                                  uint64_t gas_used) {
  // Settle the frame's final step: its cost is whatever the frame consumed
  // between that step and the exit.
  PatchLastAtDepth(frame.depth, result.gas_left);
  if (static_cast<size_t>(frame.depth) < last_record_at_depth_.size()) {
    last_record_at_depth_[frame.depth] = -1;
  }
  if (open_frames_.empty()) return;  // unbalanced exit; ignore defensively
  int index = open_frames_.back();
  open_frames_.pop_back();
  CallFrame& cf = frames_[index];
  cf.gas_used = gas_used;
  cf.outcome = evm::OutcomeToString(result.outcome);
  cf.output_size = result.output.size();
  uint64_t child_gas = 0;
  for (int child : cf.children) child_gas += frames_[child].gas_used;
  cf.gas_self = gas_used >= child_gas ? gas_used - child_gas : 0;
}

void StructLogTracer::OnStep(const evm::StepContext& step) {
  ++steps_seen_;
  if (!config_.collect_steps) return;
  // The previous instruction at this depth ran to completion: its cost is
  // the frame gas delta to this step.
  PatchLastAtDepth(step.depth, step.gas);
  if (records_.size() >= config_.max_records) {
    ++records_dropped_;
    if (static_cast<size_t>(step.depth) < last_record_at_depth_.size()) {
      last_record_at_depth_[step.depth] = -1;
    }
    return;
  }
  StructLogRecord rec;
  rec.pc = step.pc;
  rec.op = step.op_name;
  rec.gas = step.gas;
  rec.depth = step.depth;
  rec.memory_size = step.memory_size;
  if (config_.stack_top_k > 0 && step.stack != nullptr) {
    size_t n = std::min(config_.stack_top_k, step.stack_size);
    rec.stack_top.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      rec.stack_top.push_back(step.stack[step.stack_size - 1 - i]);
    }
  }
  if (static_cast<size_t>(step.depth) >= last_record_at_depth_.size()) {
    last_record_at_depth_.resize(step.depth + 1, -1);
  }
  last_record_at_depth_[step.depth] =
      static_cast<int64_t>(records_.size());
  records_.push_back(std::move(rec));
}

uint64_t StructLogTracer::TotalGasUsed() const {
  uint64_t total = 0;
  for (const CallFrame& cf : frames_) {
    if (cf.parent == -1) total += cf.gas_used;
  }
  return total;
}

void StructLogTracer::Clear() {
  records_.clear();
  frames_.clear();
  open_frames_.clear();
  last_record_at_depth_.clear();
  steps_seen_ = 0;
  records_dropped_ = 0;
}

obs::Json StructLogTracer::ToJson() const {
  obs::Json logs = obs::Json::Array();
  for (const StructLogRecord& rec : records_) {
    obs::Json stack = obs::Json::Array();
    for (const U256& v : rec.stack_top) stack.Push(obs::Json::Str(v.ToHex()));
    obs::Json obj = obs::Json::Object();
    obj.Set("pc", obs::Json::Uint(rec.pc))
        .Set("op", obs::Json::Str(rec.op))
        .Set("gas", obs::Json::Uint(rec.gas))
        .Set("gasCost", obs::Json::Uint(rec.gas_cost))
        .Set("depth", obs::Json::Int(rec.depth))
        .Set("memSize", obs::Json::Uint(rec.memory_size))
        .Set("stack", std::move(stack));
    logs.Push(std::move(obj));
  }
  obs::Json frames = obs::Json::Array();
  for (const CallFrame& cf : frames_) {
    obs::Json children = obs::Json::Array();
    for (int child : cf.children) children.Push(obs::Json::Int(child));
    obs::Json obj = obs::Json::Object();
    obj.Set("kind", obs::Json::Str(cf.kind))
        .Set("depth", obs::Json::Int(cf.depth))
        .Set("self", obs::Json::Str(cf.self.ToHex()))
        .Set("code_address", obs::Json::Str(cf.code_address.ToHex()))
        .Set("caller", obs::Json::Str(cf.caller.ToHex()))
        .Set("value", obs::Json::Str(cf.value.ToHex()))
        .Set("gas", obs::Json::Uint(cf.gas))
        .Set("gas_used", obs::Json::Uint(cf.gas_used))
        .Set("gas_self", obs::Json::Uint(cf.gas_self))
        .Set("outcome", obs::Json::Str(cf.outcome))
        .Set("input_size", obs::Json::Uint(cf.input_size))
        .Set("output_size", obs::Json::Uint(cf.output_size))
        .Set("parent", obs::Json::Int(cf.parent))
        .Set("children", std::move(children));
    frames.Push(std::move(obj));
  }
  obs::Json doc = obs::Json::Object();
  doc.Set("schema", obs::Json::Str("onoffchain-structlog-v1"))
      .Set("structLogs", std::move(logs))
      .Set("frames", std::move(frames));
  return doc;
}

}  // namespace onoff::trace
