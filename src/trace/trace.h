// The span tracer: causal, per-trace observability for the on/off-chain
// pipeline. A TraceContext (trace id + parent span id) is minted when a
// protocol run or a signed transaction starts and is propagated through the
// MessageBus, the simulated transport, the tx pool, block packing and EVM
// execution; every hop records a Span into a fixed-capacity ring buffer.
//
// Clocking: spans are stamped from an injected clock (the sim virtual clock
// when a simulation is bound — making exports byte-deterministic) and from a
// monotonic wall clock otherwise. The clock is a plain std::function so this
// library does not depend on src/sim/ (sim links trace, not vice versa).
//
// Sampling + cost: StartTrace applies deterministic 1-in-N sampling; an
// unsampled trace yields an invalid context (trace_id == 0) which turns every
// downstream Begin/End/Event call into a cheap early-out. With no tracer
// installed the instrumented call sites pay one null-pointer test.
//
// Export: ToJson emits the `onoffchain-trace-v1` schema, ToChromeTrace emits
// Chrome trace-event (catapult) JSON loadable in chrome://tracing or
// ui.perfetto.dev. Both are byte-deterministic given deterministic
// timestamps: spans sort by (trace_id, start_us, span_id) and args by key.

#ifndef ONOFFCHAIN_TRACE_TRACE_H_
#define ONOFFCHAIN_TRACE_TRACE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "crypto/keccak.h"
#include "obs/json.h"

namespace onoff::trace {

// The propagated handle: which trace an operation belongs to and which span
// is its causal parent. trace_id == 0 means "not traced" (either tracing is
// off or this trace was sampled out) and makes every tracer call a no-op.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
};

// Span arguments: small string key/value annotations (tx hash, settlement
// kind, drop reason, ...). Sorted by key at export time.
using Args = std::vector<std::pair<std::string, std::string>>;

// One completed (or instant) span.
struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  std::string name;      // "protocol.run", "bus.flight", "evm.call", ...
  std::string category;  // "protocol" | "net" | "chain" | "evm"
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
  bool instant = false;  // point event, dur_us == 0
  Args args;
};

struct TracerConfig {
  // Completed spans kept in memory; the oldest are overwritten beyond this.
  size_t ring_capacity = 16384;
  // Deterministic 1-in-N sampling for StartTrace. 1 traces everything; 0 is
  // treated as 1.
  uint64_t sample_every = 1;
  // Bounded tx-hash -> context side table (FIFO eviction).
  size_t tx_annotation_capacity = 4096;
};

class Tracer {
 public:
  explicit Tracer(TracerConfig config = {});

  // The process-global tracer used by instrumented call sites. nullptr until
  // InstallGlobal; call sites must null-test (one branch when tracing off).
  static Tracer* Global();
  // Installs `tracer` (not owned; pass nullptr to detach). Returns the
  // previous global so tests can restore it.
  static Tracer* InstallGlobal(Tracer* tracer);

  // Injects the timestamp source (microseconds). The sim binds its virtual
  // clock here; an empty function restores the monotonic wall clock.
  void SetClock(std::function<uint64_t()> now_us);
  uint64_t NowUs() const;

  // Mints a new trace id (or an invalid context when sampled out). The
  // returned context has span_id == 0: it is the parent for the root span.
  TraceContext StartTrace();

  // Opens a span under `parent`. Returns the context to propagate to
  // children; the caller must EndSpan it. No-op (returns invalid) when
  // `parent` is invalid.
  TraceContext BeginSpan(const TraceContext& parent, const std::string& name,
                         const std::string& category, Args args = {});
  // Closes a span previously returned by BeginSpan, appending `args` to the
  // ones given at open.
  void EndSpan(const TraceContext& ctx, Args args = {});

  // Records an instant event under `ctx` (zero duration).
  void Event(const TraceContext& ctx, const std::string& name,
             const std::string& category, Args args = {});

  // Associates a transaction hash with the context that submitted it, so the
  // pool / block packer / EVM driver can rejoin the trace without the
  // Transaction wire format carrying trace ids (consensus encoding is
  // untouched). The table is bounded; oldest entries evict first.
  void AnnotateTx(const Hash32& tx_hash, const TraceContext& ctx);
  // The context annotated for `tx_hash`, or an invalid context.
  TraceContext ContextForTx(const Hash32& tx_hash) const;

  // Completed spans in stable (trace_id, start_us, span_id) order, args
  // sorted by key. Open spans are not included.
  std::vector<Span> Snapshot() const;

  // { "schema": "onoffchain-trace-v1", "spans": [...], "counters": {...} }
  obs::Json ToJson() const;
  // Chrome trace-event JSON: one complete event ("ph":"X") per span, one
  // instant event ("ph":"i") per event; pid 1, tid = trace id.
  obs::Json ToChromeTrace() const;

  // Drops all completed spans, open spans and tx annotations. Counters and
  // id allocators keep running (ids stay unique per tracer).
  void Clear();

  uint64_t traces_started() const;
  uint64_t traces_sampled_out() const;
  uint64_t spans_completed() const;
  uint64_t spans_dropped() const;
  const TracerConfig& config() const { return config_; }

 private:
  void Complete(Span span);  // mu_ held

  TracerConfig config_;

  mutable std::mutex mu_;
  std::function<uint64_t()> clock_;              // guarded by mu_
  std::vector<Span> ring_;                       // guarded by mu_
  size_t ring_next_ = 0;                         // guarded by mu_
  std::unordered_map<uint64_t, Span> open_;      // guarded by mu_
  std::map<Hash32, TraceContext> tx_contexts_;   // guarded by mu_
  std::deque<Hash32> tx_order_;                  // guarded by mu_
  uint64_t next_trace_id_ = 1;                   // guarded by mu_
  uint64_t next_span_id_ = 1;                    // guarded by mu_
  uint64_t traces_started_ = 0;                  // guarded by mu_
  uint64_t traces_sampled_out_ = 0;              // guarded by mu_
  uint64_t spans_completed_ = 0;                 // guarded by mu_
  uint64_t spans_dropped_ = 0;                   // guarded by mu_
};

// RAII span: opens in the constructor, closes in the destructor. A null
// tracer or invalid parent makes it a no-op.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const TraceContext& parent,
             const std::string& name, const std::string& category,
             Args args = {});
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // The span's own context (invalid when no-op) — pass to children.
  const TraceContext& context() const { return ctx_; }
  // Attaches an argument delivered with EndSpan.
  void AddArg(std::string key, std::string value);

 private:
  Tracer* tracer_;
  TraceContext ctx_;
  Args end_args_;
};

// The ambient per-thread context: lets layers that cannot thread a
// TraceContext through their signatures (Blockchain::SubmitTransaction under
// the protocol driver, for example) pick up the caller's context.
// Scheduler-deferred closures run with an empty stack — capture the context
// by value at schedule time and re-push it inside the closure.
TraceContext CurrentContext();

class ScopedContext {
 public:
  explicit ScopedContext(const TraceContext& ctx);
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;
};

}  // namespace onoff::trace

#endif  // ONOFFCHAIN_TRACE_TRACE_H_
