#include "trace/span_hook.h"

#include <cstring>
#include <string>

#include "evm/evm.h"

namespace onoff::trace {

namespace {

bool IsCreateKind(const char* kind) {
  return std::strncmp(kind, "CREATE", 6) == 0;
}

}  // namespace

void FrameSpanHook::OnFrameEnter(const evm::FrameContext& frame) {
  if (inner_ != nullptr) inner_->OnFrameEnter(frame);
  if (tracer_ == nullptr || !root_.valid()) return;
  const TraceContext& parent = stack_.empty() ? root_ : stack_.back();
  Args args;
  args.emplace_back("kind", frame.kind);
  args.emplace_back("self", frame.self.ToHex());
  args.emplace_back("gas", std::to_string(frame.gas));
  stack_.push_back(tracer_->BeginSpan(
      parent, IsCreateKind(frame.kind) ? "evm.create" : "evm.call", "evm",
      std::move(args)));
}

void FrameSpanHook::OnFrameExit(const evm::FrameContext& frame,
                                const evm::ExecResult& result,
                                uint64_t gas_used) {
  if (inner_ != nullptr) inner_->OnFrameExit(frame, result, gas_used);
  if (tracer_ == nullptr || !root_.valid() || stack_.empty()) return;
  TraceContext ctx = stack_.back();
  stack_.pop_back();
  Args args;
  args.emplace_back("outcome", evm::OutcomeToString(result.outcome));
  args.emplace_back("gas_used", std::to_string(gas_used));
  tracer_->EndSpan(ctx, std::move(args));
}

void FrameSpanHook::OnStep(const evm::StepContext& step) {
  if (inner_ != nullptr) inner_->OnStep(step);
}

}  // namespace onoff::trace
