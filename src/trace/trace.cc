#include "trace/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace onoff::trace {

namespace {

std::atomic<Tracer*> g_tracer{nullptr};

uint64_t WallClockUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::vector<TraceContext>& TlsContextStack() {
  thread_local std::vector<TraceContext> stack;
  return stack;
}

// Stable exporter ordering.
bool SpanBefore(const Span& a, const Span& b) {
  if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
  if (a.start_us != b.start_us) return a.start_us < b.start_us;
  return a.span_id < b.span_id;
}

void SortArgs(Args* args) {
  std::sort(args->begin(), args->end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

obs::Json ArgsToJson(const Args& args) {
  obs::Json obj = obs::Json::Object();
  for (const auto& [key, value] : args) obj.Set(key, obs::Json::Str(value));
  return obj;
}

}  // namespace

Tracer::Tracer(TracerConfig config) : config_(config) {
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
  if (config_.sample_every == 0) config_.sample_every = 1;
  if (config_.tx_annotation_capacity == 0) config_.tx_annotation_capacity = 1;
  ring_.reserve(std::min<size_t>(config_.ring_capacity, 1024));
}

Tracer* Tracer::Global() {
  return g_tracer.load(std::memory_order_acquire);
}

Tracer* Tracer::InstallGlobal(Tracer* tracer) {
  return g_tracer.exchange(tracer, std::memory_order_acq_rel);
}

void Tracer::SetClock(std::function<uint64_t()> now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = std::move(now_us);
}

uint64_t Tracer::NowUs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_ ? clock_() : WallClockUs();
}

TraceContext Tracer::StartTrace() {
  static obs::Counter* started = obs::GetCounterOrNull("trace.traces_started");
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t ordinal = traces_started_++;
  if (config_.sample_every > 1 && ordinal % config_.sample_every != 0) {
    ++traces_sampled_out_;
    return TraceContext{};
  }
  if (started != nullptr) started->Inc();
  TraceContext ctx;
  ctx.trace_id = next_trace_id_++;
  ctx.span_id = 0;
  return ctx;
}

TraceContext Tracer::BeginSpan(const TraceContext& parent,
                               const std::string& name,
                               const std::string& category, Args args) {
  if (!parent.valid()) return TraceContext{};
  std::lock_guard<std::mutex> lock(mu_);
  Span span;
  span.trace_id = parent.trace_id;
  span.span_id = next_span_id_++;
  span.parent_span_id = parent.span_id;
  span.name = name;
  span.category = category;
  span.start_us = clock_ ? clock_() : WallClockUs();
  span.args = std::move(args);
  TraceContext ctx;
  ctx.trace_id = span.trace_id;
  ctx.span_id = span.span_id;
  obs::FlightRecord(obs::FlightKind::kSpanBegin, ctx.trace_id, ctx.span_id, 0,
                    span.name);
  open_.emplace(span.span_id, std::move(span));
  return ctx;
}

void Tracer::EndSpan(const TraceContext& ctx, Args args) {
  if (!ctx.valid()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_.find(ctx.span_id);
  if (it == open_.end()) return;
  Span span = std::move(it->second);
  open_.erase(it);
  uint64_t now = clock_ ? clock_() : WallClockUs();
  span.dur_us = now >= span.start_us ? now - span.start_us : 0;
  for (auto& arg : args) span.args.push_back(std::move(arg));
  obs::FlightRecord(obs::FlightKind::kSpanEnd, span.trace_id, span.span_id,
                    span.dur_us, span.name);
  Complete(std::move(span));
}

void Tracer::Event(const TraceContext& ctx, const std::string& name,
                   const std::string& category, Args args) {
  if (!ctx.valid()) return;
  std::lock_guard<std::mutex> lock(mu_);
  Span span;
  span.trace_id = ctx.trace_id;
  span.span_id = next_span_id_++;
  span.parent_span_id = ctx.span_id;
  span.name = name;
  span.category = category;
  span.start_us = clock_ ? clock_() : WallClockUs();
  span.instant = true;
  span.args = std::move(args);
  obs::FlightRecord(obs::FlightKind::kTraceEvent, span.trace_id, span.span_id,
                    0, span.name);
  Complete(std::move(span));
}

void Tracer::AnnotateTx(const Hash32& tx_hash, const TraceContext& ctx) {
  if (!ctx.valid()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = tx_contexts_.insert_or_assign(tx_hash, ctx);
  (void)it;
  if (inserted) {
    tx_order_.push_back(tx_hash);
    while (tx_order_.size() > config_.tx_annotation_capacity) {
      tx_contexts_.erase(tx_order_.front());
      tx_order_.pop_front();
    }
  }
}

TraceContext Tracer::ContextForTx(const Hash32& tx_hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tx_contexts_.find(tx_hash);
  return it != tx_contexts_.end() ? it->second : TraceContext{};
}

void Tracer::Complete(Span span) {
  static obs::Counter* completed =
      obs::GetCounterOrNull("trace.spans_completed");
  static obs::Counter* dropped = obs::GetCounterOrNull("trace.spans_dropped");
  if (completed != nullptr) completed->Inc();
  ++spans_completed_;
  if (ring_.size() < config_.ring_capacity) {
    ring_.push_back(std::move(span));
    return;
  }
  // Ring full: overwrite the oldest completed span.
  ring_[ring_next_] = std::move(span);
  ring_next_ = (ring_next_ + 1) % config_.ring_capacity;
  ++spans_dropped_;
  if (dropped != nullptr) dropped->Inc();
}

std::vector<Span> Tracer::Snapshot() const {
  std::vector<Span> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(ring_.size());
    // Oldest-first: when the ring has wrapped, ring_next_ points at the
    // oldest surviving span.
    size_t n = ring_.size();
    size_t first = n == config_.ring_capacity ? ring_next_ : 0;
    for (size_t i = 0; i < n; ++i) out.push_back(ring_[(first + i) % n]);
  }
  std::stable_sort(out.begin(), out.end(), SpanBefore);
  for (Span& span : out) SortArgs(&span.args);
  return out;
}

obs::Json Tracer::ToJson() const {
  std::vector<Span> spans = Snapshot();
  obs::Json span_array = obs::Json::Array();
  for (const Span& span : spans) {
    obs::Json obj = obs::Json::Object();
    obj.Set("trace_id", obs::Json::Uint(span.trace_id))
        .Set("span_id", obs::Json::Uint(span.span_id))
        .Set("parent_span_id", obs::Json::Uint(span.parent_span_id))
        .Set("name", obs::Json::Str(span.name))
        .Set("category", obs::Json::Str(span.category))
        .Set("start_us", obs::Json::Uint(span.start_us))
        .Set("dur_us", obs::Json::Uint(span.dur_us))
        .Set("instant", obs::Json::Bool(span.instant))
        .Set("args", ArgsToJson(span.args));
    span_array.Push(std::move(obj));
  }
  obs::Json counters = obs::Json::Object();
  {
    std::lock_guard<std::mutex> lock(mu_);
    counters.Set("traces_started", obs::Json::Uint(traces_started_))
        .Set("traces_sampled_out", obs::Json::Uint(traces_sampled_out_))
        .Set("spans_completed", obs::Json::Uint(spans_completed_))
        .Set("spans_dropped", obs::Json::Uint(spans_dropped_))
        .Set("open_spans", obs::Json::Uint(open_.size()));
  }
  obs::Json doc = obs::Json::Object();
  doc.Set("schema", obs::Json::Str("onoffchain-trace-v1"))
      .Set("spans", std::move(span_array))
      .Set("counters", std::move(counters));
  return doc;
}

obs::Json Tracer::ToChromeTrace() const {
  std::vector<Span> spans = Snapshot();
  obs::Json events = obs::Json::Array();
  for (const Span& span : spans) {
    obs::Json args = obs::Json::Object();
    args.Set("span_id", obs::Json::Uint(span.span_id))
        .Set("parent_span_id", obs::Json::Uint(span.parent_span_id));
    for (const auto& [key, value] : span.args) {
      args.Set(key, obs::Json::Str(value));
    }
    obs::Json ev = obs::Json::Object();
    ev.Set("name", obs::Json::Str(span.name))
        .Set("cat", obs::Json::Str(span.category))
        .Set("ph", obs::Json::Str(span.instant ? "i" : "X"))
        .Set("ts", obs::Json::Uint(span.start_us))
        .Set("pid", obs::Json::Uint(1))
        .Set("tid", obs::Json::Uint(span.trace_id));
    if (span.instant) {
      ev.Set("s", obs::Json::Str("t"));  // thread-scoped instant
    } else {
      ev.Set("dur", obs::Json::Uint(span.dur_us));
    }
    ev.Set("args", std::move(args));
    events.Push(std::move(ev));
  }
  obs::Json doc = obs::Json::Object();
  doc.Set("traceEvents", std::move(events))
      .Set("displayTimeUnit", obs::Json::Str("ms"));
  return doc;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  ring_next_ = 0;
  open_.clear();
  tx_contexts_.clear();
  tx_order_.clear();
}

uint64_t Tracer::traces_started() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_started_;
}
uint64_t Tracer::traces_sampled_out() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_sampled_out_;
}
uint64_t Tracer::spans_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_completed_;
}
uint64_t Tracer::spans_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_dropped_;
}

ScopedSpan::ScopedSpan(Tracer* tracer, const TraceContext& parent,
                       const std::string& name, const std::string& category,
                       Args args)
    : tracer_(tracer) {
  if (tracer_ != nullptr && parent.valid()) {
    ctx_ = tracer_->BeginSpan(parent, name, category, std::move(args));
  }
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ != nullptr && ctx_.valid()) {
    tracer_->EndSpan(ctx_, std::move(end_args_));
  }
}

void ScopedSpan::AddArg(std::string key, std::string value) {
  if (!ctx_.valid()) return;
  end_args_.emplace_back(std::move(key), std::move(value));
}

TraceContext CurrentContext() {
  auto& stack = TlsContextStack();
  return stack.empty() ? TraceContext{} : stack.back();
}

ScopedContext::ScopedContext(const TraceContext& ctx) {
  TlsContextStack().push_back(ctx);
}

ScopedContext::~ScopedContext() { TlsContextStack().pop_back(); }

}  // namespace onoff::trace
