// FrameSpanHook: an evm::TraceHook that mirrors the EVM call-frame tree
// into the span tracer, so one trace links MessageBus delivery → tx-pool
// admission → block inclusion → EVM call frames. Optionally chains to an
// inner hook (e.g. a StructLogTracer) since an Evm carries a single hook
// pointer.

#ifndef ONOFFCHAIN_TRACE_SPAN_HOOK_H_
#define ONOFFCHAIN_TRACE_SPAN_HOOK_H_

#include <vector>

#include "evm/trace_hook.h"
#include "trace/trace.h"

namespace onoff::trace {

class FrameSpanHook : public evm::TraceHook {
 public:
  // Frames become spans under `root` in `tracer`. A null tracer or invalid
  // root degrades to pure forwarding.
  FrameSpanHook(Tracer* tracer, const TraceContext& root,
                evm::TraceHook* inner = nullptr)
      : tracer_(tracer), root_(root), inner_(inner) {}

  void OnFrameEnter(const evm::FrameContext& frame) override;
  void OnFrameExit(const evm::FrameContext& frame,
                   const evm::ExecResult& result, uint64_t gas_used) override;
  void OnStep(const evm::StepContext& step) override;

 private:
  Tracer* tracer_;
  TraceContext root_;
  evm::TraceHook* inner_;
  std::vector<TraceContext> stack_;  // open frame spans, innermost last
};

}  // namespace onoff::trace

#endif  // ONOFFCHAIN_TRACE_SPAN_HOOK_H_
