// The EVM execution tracer: an evm::TraceHook that records structLog-style
// step records (pc, opcode, gas, gasCost, depth, stack top-k) and a
// call-frame tree with per-frame gas attribution — the shape of Ethereum's
// debug_traceTransaction, which is the tool dispute debugging leans on.
//
// gasCost semantics: the delta of the *frame's own* gas counter across the
// instruction. For CALL/CREATE-family opcodes this therefore includes the
// net consumption of the entire child frame (geth's default structLog does
// the same). Because the interpreter reports steps before execution, the
// cost of a step is patched retroactively: when the next step at the same
// depth arrives, or — for a frame's final step — when the frame exits.
//
// Not thread-safe: attach one StructLogTracer to one Evm at a time (EVM
// execution is single-threaded per transaction).

#ifndef ONOFFCHAIN_TRACE_STRUCTLOG_H_
#define ONOFFCHAIN_TRACE_STRUCTLOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "evm/trace_hook.h"
#include "obs/json.h"
#include "support/address.h"
#include "support/u256.h"

namespace onoff::trace {

// One executed instruction.
struct StructLogRecord {
  uint64_t pc = 0;
  std::string op;
  uint64_t gas = 0;       // before the instruction
  uint64_t gas_cost = 0;  // frame gas delta across the instruction
  int depth = 0;
  size_t memory_size = 0;
  std::vector<U256> stack_top;  // top of stack first, at most config.stack_top_k
};

// One call frame, linked into a tree by indices.
struct CallFrame {
  std::string kind;  // CALL/STATICCALL/DELEGATECALL/CALLCODE/CREATE/CREATE2/
                     // TRANSFER/PRECOMPILE
  int depth = 0;
  Address self;
  Address code_address;
  Address caller;
  U256 value;
  uint64_t gas = 0;       // gas handed to the frame
  uint64_t gas_used = 0;  // total consumption, children included
  uint64_t gas_self = 0;  // gas_used minus the children's gas_used
  std::string outcome;    // OutcomeToString of the frame result
  size_t input_size = 0;
  size_t output_size = 0;
  int parent = -1;              // index into frames(), -1 for roots
  std::vector<int> children;    // indices into frames()
};

struct StructLogConfig {
  // Stack slots captured per step (top first). 0 disables stack capture.
  size_t stack_top_k = 8;
  // Hard cap on retained step records; further steps are counted, not kept.
  size_t max_records = 1u << 20;
  // When false only the call-frame tree is built (cheaper).
  bool collect_steps = true;
};

class StructLogTracer : public evm::TraceHook {
 public:
  explicit StructLogTracer(StructLogConfig config = {});

  void OnFrameEnter(const evm::FrameContext& frame) override;
  void OnFrameExit(const evm::FrameContext& frame,
                   const evm::ExecResult& result, uint64_t gas_used) override;
  void OnStep(const evm::StepContext& step) override;

  const std::vector<StructLogRecord>& records() const { return records_; }
  const std::vector<CallFrame>& frames() const { return frames_; }
  uint64_t steps_seen() const { return steps_seen_; }
  uint64_t records_dropped() const { return records_dropped_; }

  // Total gas used by root frames (a finished trace's end-to-end cost).
  uint64_t TotalGasUsed() const;

  void Clear();

  // { "schema": "onoffchain-structlog-v1",
  //   "structLogs": [ {pc, op, gas, gasCost, depth, memSize, stack:[..]} ],
  //   "frames":     [ {kind, depth, self, ..., gas_used, children:[..]} ] }
  obs::Json ToJson() const;

 private:
  void PatchLastAtDepth(int depth, uint64_t gas_now);

  StructLogConfig config_;
  std::vector<StructLogRecord> records_;
  std::vector<CallFrame> frames_;
  std::vector<int> open_frames_;           // stack of indices into frames_
  std::vector<int64_t> last_record_at_depth_;  // -1 = none pending
  uint64_t steps_seen_ = 0;
  uint64_t records_dropped_ = 0;
};

}  // namespace onoff::trace

#endif  // ONOFFCHAIN_TRACE_STRUCTLOG_H_
