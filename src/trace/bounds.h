// The bounds-check mode of the tracer: compares *observed* execution gas
// (from receipts / the structLog tracer) against the PR 4 static analyzer's
// worst-case bounds and flags violations. A violation means either the
// analyzer's bound is unsound or the execution escaped the analyzed
// envelope — both are bugs worth an alarm, which is exactly what the
// paper's pre-signing audit story needs to stay trustworthy.
//
// Analysis reports are cached by code hash, so checking every transaction
// of a protocol run analyzes each distinct contract once.

#ifndef ONOFFCHAIN_TRACE_BOUNDS_H_
#define ONOFFCHAIN_TRACE_BOUNDS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "analysis/analyzer.h"
#include "crypto/keccak.h"
#include "support/bytes.h"

namespace onoff::trace {

class GasBoundsChecker {
 public:
  explicit GasBoundsChecker(analysis::AnalysisOptions options = {});

  struct Violation {
    uint32_t selector = 0;       // 0 when no selector dispatch applied
    std::string function;        // function name, hex selector or "(program)"
    uint64_t observed_gas = 0;
    uint64_t bound_gas = 0;      // the (bounded) static bound that was beaten
    std::string ToString() const;
  };

  // Checks a message call into `code` with `calldata` that consumed
  // `observed_gas`. Returns a Violation iff the static bound for the
  // dispatched function (or the whole program when no selector matches) is
  // bounded and observed_gas exceeds it. Unbounded (⊤) bounds never violate.
  std::optional<Violation> CheckCall(const Bytes& code, const Bytes& calldata,
                                     uint64_t observed_gas);

  // Checks a contract creation: observed deployment gas against the
  // analyzer's DeployGasBound for `init_code`.
  std::optional<Violation> CheckCreate(const Bytes& init_code,
                                       uint64_t observed_gas);

  uint64_t checks() const;
  uint64_t violations() const;

 private:
  const analysis::AnalysisReport& ReportFor(const Bytes& code);
  const analysis::DeploymentReport& DeployReportFor(const Bytes& init_code);
  std::optional<Violation> Record(std::optional<Violation> violation);

  analysis::AnalysisOptions options_;

  mutable std::mutex mu_;
  std::map<Hash32, analysis::AnalysisReport> call_cache_;       // by code hash
  std::map<Hash32, analysis::DeploymentReport> deploy_cache_;   // by code hash
  uint64_t checks_ = 0;
  uint64_t violations_ = 0;
};

}  // namespace onoff::trace

#endif  // ONOFFCHAIN_TRACE_BOUNDS_H_
