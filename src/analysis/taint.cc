#include "analysis/taint.h"

#include <algorithm>
#include <sstream>

#include "evm/analysis_cache.h"
#include "evm/opcodes.h"

namespace onoff::analysis {

void ValueSet::Insert(const U256& v) {
  if (top) return;
  auto it = std::lower_bound(values.begin(), values.end(), v);
  if (it != values.end() && *it == v) return;
  if (values.size() >= kMaxValues) {
    top = true;
    values.clear();
    return;
  }
  values.insert(it, v);
}

void ValueSet::Join(const ValueSet& other) {
  if (top) return;
  if (other.top) {
    top = true;
    values.clear();
    return;
  }
  for (const U256& v : other.values) {
    Insert(v);
    if (top) return;
  }
}

std::string ValueSet::ToString() const {
  if (top) return "⊤";
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i != 0) os << ",";
    os << "0x" << values[i].ToHex();
  }
  os << "}";
  return os.str();
}

ValueSet EvalBinary(uint8_t opcode_byte, const ValueSet& a,
                    const ValueSet& b) {
  if (a.top || b.top || !evm::IsFusableBinop(opcode_byte)) {
    return ValueSet::Top();
  }
  evm::Handler h = evm::BinopHandler(opcode_byte);
  ValueSet out{false, {}};
  for (const U256& va : a.values) {
    for (const U256& vb : b.values) {
      out.Insert(evm::EvalBinop(h, va, vb));
      if (out.top) return out;
    }
  }
  return out;
}

ValueSet EvalUnary(uint8_t opcode_byte, const ValueSet& a) {
  if (a.top) return ValueSet::Top();
  ValueSet out{false, {}};
  for (const U256& v : a.values) {
    switch (static_cast<evm::Opcode>(opcode_byte)) {
      case evm::Opcode::ISZERO:
        out.Insert(v.IsZero() ? U256(1) : U256(0));
        break;
      case evm::Opcode::NOT:
        out.Insert(~v);
        break;
      default:
        return ValueSet::Top();
    }
    if (out.top) return out;
  }
  return out;
}

const char* TaintName(Taint t) {
  switch (t) {
    case Taint::kClean:
      return "clean";
    case Taint::kSelectorWord:
      return "selector-word";
    case Taint::kPrivate:
      return "private";
  }
  return "?";
}

void TaintEnv::Join(const TaintEnv& other) {
  memory = memory || other.memory;
  storage_any = storage_any || other.storage_any;
  control = control || other.control;
  storage.insert(other.storage.begin(), other.storage.end());
}

bool TaintEnv::SlotTainted(const ValueSet& key) const {
  if (storage_any) return true;
  if (storage.empty()) return false;
  if (key.top) return true;  // may alias any tainted slot
  for (const U256& slot : key.values) {
    if (storage.count(slot) != 0) return true;
  }
  return false;
}

}  // namespace onoff::analysis
