// Diagnostic codes and formatting for the bytecode static analyzer.
//
// Every finding carries a stable machine-readable code (ANA01..ANA12), the
// byte offset it anchors to, and a human-readable message. Formatting
// optionally consults an easm::SourceMap so CLI output can point at the
// assembly line that produced the offending bytes.

#ifndef ONOFFCHAIN_ANALYSIS_DIAGNOSTIC_H_
#define ONOFFCHAIN_ANALYSIS_DIAGNOSTIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "easm/assembler.h"

namespace onoff::analysis {

enum class DiagCode {
  kTruncatedPush,        // ANA01: PUSH immediate runs past the end of code
  kUndefinedOpcode,      // ANA02: reachable undefined instruction byte
  kStackUnderflow,       // ANA03: pops more items than the stack can hold
  kStackOverflow,        // ANA04: provably exceeds the 1024-item limit
  kStackHeightMismatch,  // ANA05: join point with inconsistent stack heights
  kUnresolvedJump,       // ANA06: jump target not statically constant
  kBadJumpTarget,        // ANA07: constant jump to a non-JUMPDEST byte
  kUnreachableCode,      // ANA08 (warning): bytes no path can reach
  kImplicitStop,         // ANA09 (warning): execution can run off code end
  kUnboundedGas,         // ANA10: light function with a ⊤ gas bound
  kGasAboveBlockLimit,   // ANA11: light function bound >= block gas limit
  kPrivateStateLeak,     // ANA12: private function reaches a state effect
  kUnresolvedStorageKey,  // ANA13 (warning): policy fn with a ⊤ slot set
  kTaintedStore,          // ANA14: private input flows into SSTORE
  kTaintedLog,            // ANA15: private input flows into LOG data/topics
  kTaintedCall,           // ANA16: private input in CALL/CREATE args
  kTaintedReturn,         // ANA17: private input flows into RETURN data
  kTaintedBranchEffect,   // ANA18 (warning): effect under a private branch
};

// Stable identifier ("ANA03") and short name ("stack-underflow").
const char* DiagCodeId(DiagCode code);
const char* DiagCodeName(DiagCode code);

// Unreachable code and an implicit trailing STOP are legal EVM (the
// interpreter treats running off the end as STOP); everything else is a
// reason to refuse the program.
bool IsError(DiagCode code);

struct Diagnostic {
  DiagCode code;
  uint32_t pc = 0;  // byte offset into the analyzed code segment
  std::string message;
  // Selector of the function the finding is attributed to, when the
  // dataflow pass can pin it down (kNoSelector otherwise). A plain field
  // rather than std::optional keeps aggregate init of the older
  // three-field form working everywhere.
  static constexpr int64_t kNoSelector = -1;
  int64_t selector = kNoSelector;

  bool HasSelector() const { return selector >= 0; }
};

// "error ANA03 (stack-underflow) at pc 0x0012: ..." with ", line N" and
// ", label 'x'" appended when `map` resolves the offset.
std::string FormatDiagnostic(const Diagnostic& diag,
                             const easm::SourceMap* map = nullptr);

// True if any diagnostic in `diags` is an error.
bool HasError(const std::vector<Diagnostic>& diags);

}  // namespace onoff::analysis

#endif  // ONOFFCHAIN_ANALYSIS_DIAGNOSTIC_H_
