#pragma once

// Per-selector storage access summaries (DESIGN §12). The dataflow engine
// produces, for every dispatchable selector and for the program as a
// whole, an over-approximation of the storage slots the code may read or
// write plus its externally-visible effects. The parallel executor turns
// these into static access hints: transactions whose summarized footprints
// are pairwise disjoint commit without dynamic conflict checks.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "analysis/taint.h"
#include "crypto/keccak.h"
#include "support/bytes.h"

namespace onoff::analysis {

// {slots} | ⊤. Unlike ValueSet this is unbounded below ⊤: summaries are
// computed once per code hash and cached, so precision wins over the few
// extra words. ⊤ means "any slot" (an unresolved SLOAD/SSTORE key).
struct SlotSet {
  bool top = false;
  std::set<U256> slots;

  void Add(const ValueSet& keys) {
    if (top) return;
    if (keys.top) {
      top = true;
      slots.clear();
      return;
    }
    slots.insert(keys.values.begin(), keys.values.end());
  }
  void Join(const SlotSet& other) {
    if (top) return;
    if (other.top) {
      top = true;
      slots.clear();
      return;
    }
    slots.insert(other.slots.begin(), other.slots.end());
  }
  bool empty() const { return !top && slots.empty(); }
  bool Disjoint(const SlotSet& other) const;

  std::string ToString() const;
};

// What one selector (or the whole program) may do to world state.
struct AccessSummary {
  SlotSet reads;
  SlotSet writes;
  // Union of effect:: bits over every reachable block (incl. dispatch).
  uint32_t effects = 0;
  // BALANCE / EXTCODESIZE / EXTCODECOPY: reads of *other* accounts' state
  // that the slot sets cannot express.
  bool external_reads = false;

  void Join(const AccessSummary& other) {
    reads.Join(other.reads);
    writes.Join(other.writes);
    effects |= other.effects;
    external_reads = external_reads || other.external_reads;
  }

  // True when the summary is precise enough to pre-schedule: every storage
  // key resolved to constants, and no opcode that reaches beyond the
  // executing contract's own storage (calls, creates, selfdestruct,
  // external reads). Such a frame's dynamic accesses are provably
  // contained in {self} × (reads ∪ writes).
  bool StaticallySchedulable() const;

  std::string ToString() const;
};

struct SelectorAccess {
  uint32_t selector = 0;
  std::string name;  // from AnalysisOptions::function_names, may be empty
  AccessSummary access;
};

// Whole-contract result: the program-wide summary (sound for any entry,
// any calldata) plus per-selector refinements when dispatch was recovered.
struct ProgramAccess {
  AccessSummary program;
  std::vector<SelectorAccess> selectors;

  const AccessSummary* ForSelector(uint32_t selector) const {
    for (const SelectorAccess& s : selectors) {
      if (s.selector == selector) return &s.access;
    }
    return nullptr;
  }
};

// Process-wide summary cache keyed by code hash, mirroring
// evm::CodeAnalysisCache so the executor pays the dataflow cost once per
// contract, not once per transaction. Codes whose analysis reports errors
// yield a ⊤ summary (never schedulable, always the optimistic path).
class AccessSummaryCache {
 public:
  static AccessSummaryCache& Global();

  // `code` is only inspected on a miss.
  std::shared_ptr<const ProgramAccess> Get(const Hash32& code_hash,
                                           BytesView code);

  void Clear();

 private:
  static constexpr size_t kMaxEntries = 4096;

  std::mutex mu_;
  std::map<Hash32, std::shared_ptr<const ProgramAccess>> entries_;
};

}  // namespace onoff::analysis
