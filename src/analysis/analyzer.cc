#include "analysis/analyzer.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <set>
#include <utility>

#include "analysis/dataflow.h"
#include "evm/gas.h"
#include "obs/metrics.h"

namespace onoff::analysis {

namespace gas = evm::gas;
using evm::GetOpcodeInfo;
using evm::Opcode;
using evm::OpcodeInfo;

namespace {

// ---- Abstract domain ----------------------------------------------------

// One stack slot: a known 256-bit constant, or ⊤.
struct AbstractValue {
  bool known = false;
  U256 value;

  static AbstractValue Top() { return AbstractValue{}; }
  static AbstractValue Constant(const U256& v) {
    return AbstractValue{true, v};
  }
};

using AbstractStack = std::vector<AbstractValue>;

// Slot at depth `i` from the top (0 = top of stack).
const AbstractValue& At(const AbstractStack& stack, size_t i) {
  return stack[stack.size() - 1 - i];
}

// ---- Worst-case per-instruction gas -------------------------------------

// Anything addressing beyond 4 GiB of memory out-of-gasses on every real
// block (and the interpreter rejects it outright), so a constant that large
// makes the bound ⊤.
constexpr uint64_t kAbsurdBytes = uint64_t{1} << 32;

// Worst-case byte count of a dynamic operand: the constant if known, the
// configured envelope otherwise; nullopt = absurdly large (treat as ⊤).
std::optional<uint64_t> WorstBytes(const AbstractValue& v, uint64_t maxd) {
  if (!v.known) return maxd;
  if (!v.value.FitsUint64() || v.value.low64() > kAbsurdBytes) {
    return std::nullopt;
  }
  return v.value.low64();
}

// Upper bound on the memory-expansion charge of touching [off, off+size):
// the TOTAL expansion cost from empty memory to the touched end, which
// dominates the interpreter's incremental charge from any prior size.
GasBound MemCost(const AbstractValue& off, const AbstractValue& size,
                 uint64_t maxd) {
  std::optional<uint64_t> sz = WorstBytes(size, maxd);
  if (!sz.has_value()) return GasBound::Unbounded();
  if (*sz == 0) return GasBound{};
  std::optional<uint64_t> of = WorstBytes(off, maxd);
  if (!of.has_value()) return GasBound::Unbounded();
  return GasBound{true, gas::MemoryCost(gas::ToWords(*of + *sz))};
}

// Words covered by a worst-case byte count.
GasBound PerWordCost(uint64_t per_word, std::optional<uint64_t> bytes) {
  if (!bytes.has_value()) return GasBound::Unbounded();
  return GasBound{true, per_word * gas::ToWords(*bytes)};
}

// An upper bound on what the interpreter charges for `ins`, given the
// abstract stack BEFORE the instruction executes. Callers have already
// verified the stack holds at least stack_in items.
GasBound InstrWorstGas(const Instruction& ins, const AbstractStack& stack,
                       const AnalysisOptions& opt) {
  uint8_t op = ins.opcode;
  uint64_t maxd = opt.max_dynamic_bytes;
  if (evm::IsPush(op) || evm::IsDup(op) || evm::IsSwap(op)) {
    return GasBound{true, gas::kVeryLow};
  }
  if (evm::IsLog(op)) {
    uint64_t topics = static_cast<uint64_t>(evm::LogTopics(op));
    GasBound cost{true, gas::kLog + topics * gas::kLogTopic};
    std::optional<uint64_t> bytes = WorstBytes(At(stack, 1), maxd);
    if (!bytes.has_value()) return GasBound::Unbounded();
    cost = cost + GasBound{true, gas::kLogData * *bytes};
    return cost + MemCost(At(stack, 0), At(stack, 1), maxd);
  }
  switch (static_cast<Opcode>(op)) {
    case Opcode::STOP:
      return GasBound{true, 0};
    case Opcode::ADD:
    case Opcode::SUB:
    case Opcode::LT:
    case Opcode::GT:
    case Opcode::SLT:
    case Opcode::SGT:
    case Opcode::EQ:
    case Opcode::ISZERO:
    case Opcode::AND:
    case Opcode::OR:
    case Opcode::XOR:
    case Opcode::NOT:
    case Opcode::BYTE:
    case Opcode::SHL:
    case Opcode::SHR:
    case Opcode::SAR:
    case Opcode::CALLDATALOAD:
      return GasBound{true, gas::kVeryLow};
    case Opcode::MUL:
    case Opcode::DIV:
    case Opcode::SDIV:
    case Opcode::MOD:
    case Opcode::SMOD:
    case Opcode::SIGNEXTEND:
      return GasBound{true, gas::kLow};
    case Opcode::ADDMOD:
    case Opcode::MULMOD:
      return GasBound{true, gas::kMid};
    case Opcode::EXP: {
      const AbstractValue& exponent = At(stack, 1);
      uint64_t bytes = 32;
      if (exponent.known) {
        bytes = static_cast<uint64_t>((exponent.value.BitLength() + 7) / 8);
      }
      return GasBound{true, gas::kExp + gas::kExpByte * bytes};
    }
    case Opcode::SHA3: {
      GasBound words = PerWordCost(gas::kSha3Word, WorstBytes(At(stack, 1), maxd));
      return GasBound{true, gas::kSha3} + words +
             MemCost(At(stack, 0), At(stack, 1), maxd);
    }
    case Opcode::ADDRESS:
    case Opcode::ORIGIN:
    case Opcode::CALLER:
    case Opcode::CALLVALUE:
    case Opcode::CALLDATASIZE:
    case Opcode::CODESIZE:
    case Opcode::GASPRICE:
    case Opcode::RETURNDATASIZE:
    case Opcode::COINBASE:
    case Opcode::TIMESTAMP:
    case Opcode::NUMBER:
    case Opcode::DIFFICULTY:
    case Opcode::GASLIMIT:
    case Opcode::POP:
    case Opcode::PC:
    case Opcode::MSIZE:
    case Opcode::GAS:
      return GasBound{true, gas::kBase};
    case Opcode::BALANCE:
      return GasBound{true, gas::kBalance};
    case Opcode::EXTCODESIZE:
      return GasBound{true, gas::kExtCode};
    case Opcode::BLOCKHASH:
      return GasBound{true, gas::kBlockhash};
    case Opcode::CALLDATACOPY:
    case Opcode::CODECOPY:
    case Opcode::RETURNDATACOPY:
      return GasBound{true, gas::kVeryLow} +
             PerWordCost(gas::kCopy, WorstBytes(At(stack, 2), maxd)) +
             MemCost(At(stack, 0), At(stack, 2), maxd);
    case Opcode::EXTCODECOPY:
      return GasBound{true, gas::kExtCode} +
             PerWordCost(gas::kCopy, WorstBytes(At(stack, 3), maxd)) +
             MemCost(At(stack, 1), At(stack, 3), maxd);
    case Opcode::MLOAD:
    case Opcode::MSTORE:
      return GasBound{true, gas::kVeryLow} +
             MemCost(At(stack, 0), AbstractValue::Constant(U256(32)), maxd);
    case Opcode::MSTORE8:
      return GasBound{true, gas::kVeryLow} +
             MemCost(At(stack, 0), AbstractValue::Constant(U256(1)), maxd);
    case Opcode::SLOAD:
      return GasBound{true, gas::kSload};
    case Opcode::SSTORE:
      // Worst case: writing a non-zero value into an empty slot.
      return GasBound{true, gas::kSstoreSet};
    case Opcode::JUMP:
      return GasBound{true, gas::kMid};
    case Opcode::JUMPI:
      return GasBound{true, gas::kHigh};
    case Opcode::JUMPDEST:
      return GasBound{true, gas::kJumpdest};
    case Opcode::RETURN:
    case Opcode::REVERT:
      return MemCost(At(stack, 0), At(stack, 1), maxd);
    case Opcode::SELFDESTRUCT:
      return GasBound{true, gas::kSelfdestruct + gas::kCallNewAccount};
    case Opcode::CREATE:
    case Opcode::CREATE2:
      // Forwards all but one 64th of the remaining gas.
      return GasBound::Unbounded();
    case Opcode::CALL:
    case Opcode::CALLCODE:
    case Opcode::DELEGATECALL:
    case Opcode::STATICCALL: {
      bool has_value = op == static_cast<uint8_t>(Opcode::CALL) ||
                       op == static_cast<uint8_t>(Opcode::CALLCODE);
      GasBound cost{true, gas::kCall};
      size_t in_off_depth = has_value ? 3 : 2;
      if (has_value) {
        const AbstractValue& value = At(stack, 2);
        if (!value.known || !value.value.IsZero()) {
          cost = cost + GasBound{true, gas::kCallValue};
          if (op == static_cast<uint8_t>(Opcode::CALL)) {
            cost = cost + GasBound{true, gas::kCallNewAccount};
          }
        }
      }
      cost = cost + MemCost(At(stack, in_off_depth), At(stack, in_off_depth + 1),
                            maxd);
      cost = cost + MemCost(At(stack, in_off_depth + 2),
                            At(stack, in_off_depth + 3), maxd);
      // The callee can burn everything forwarded; a non-constant gas operand
      // means "all but one 64th" is reachable, which is unbounded statically.
      const AbstractValue& gas_req = At(stack, 0);
      if (!gas_req.known || !gas_req.value.FitsUint64()) {
        return GasBound::Unbounded();
      }
      return cost + GasBound{true, gas_req.value.low64()};
    }
    default:
      return GasBound{true, 0};
  }
}

// ---- Block transfer function --------------------------------------------

struct BlockResult {
  AbstractStack exit;
  std::vector<uint32_t> successors;
  GasBound cost;
  std::vector<Diagnostic> diags;
  bool aborted = false;  // an error ended the block early
};

std::string PcHex(uint32_t pc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%04x", pc);
  return buf;
}

// Executes `block` over the abstract state `in`, producing the exit state,
// the resolved successors, the block's worst-case gas, and any diagnostics.
// Deterministic for a given in-state, so the analyzer calls it both during
// the fixpoint (discarding diagnostics) and in the reporting pass.
BlockResult ExecBlock(BytesView code, const BasicBlock& block,
                      const AbstractStack& in,
                      const std::vector<bool>& jumpdests,
                      const AnalysisOptions& opt) {
  BlockResult r;
  r.cost = GasBound{true, 0};
  AbstractStack stack = in;
  std::optional<uint32_t> jump_target;

  for (const Instruction& ins : block.instructions) {
    const OpcodeInfo& info = GetOpcodeInfo(ins.opcode);
    if (!info.defined) {
      r.diags.push_back({DiagCode::kUndefinedOpcode, ins.pc,
                         "reachable undefined opcode " +
                             InstructionToString(ins)});
      r.aborted = true;
      break;
    }
    if (ins.truncated) {
      r.diags.push_back(
          {DiagCode::kTruncatedPush, ins.pc,
           InstructionToString(ins) + " immediate runs past the end of code (" +
               std::to_string(ins.pc + 1 + ins.immediate_size -
                              static_cast<uint32_t>(code.size())) +
               " byte(s) missing)"});
      r.aborted = true;
      break;
    }
    if (stack.size() < info.stack_in) {
      r.diags.push_back(
          {DiagCode::kStackUnderflow, ins.pc,
           std::string(info.name) + " pops " +
               std::to_string(info.stack_in) + " item(s) but the stack holds " +
               std::to_string(stack.size())});
      r.aborted = true;
      break;
    }
    if (stack.size() - info.stack_in + info.stack_out > gas::kMaxStack) {
      r.diags.push_back({DiagCode::kStackOverflow, ins.pc,
                         std::string(info.name) + " would grow the stack past " +
                             std::to_string(gas::kMaxStack) + " items"});
      r.aborted = true;
      break;
    }
    r.cost = r.cost + InstrWorstGas(ins, stack, opt);

    uint8_t op = ins.opcode;
    if (op == static_cast<uint8_t>(Opcode::JUMP) ||
        op == static_cast<uint8_t>(Opcode::JUMPI)) {
      const AbstractValue& target = At(stack, 0);
      if (!target.known) {
        r.diags.push_back({DiagCode::kUnresolvedJump, ins.pc,
                           std::string(info.name) +
                               " target is not a statically known constant"});
        r.aborted = true;
        break;
      }
      if (!target.value.FitsUint64() || target.value.low64() >= code.size()) {
        r.diags.push_back({DiagCode::kBadJumpTarget, ins.pc,
                           std::string(info.name) + " target " +
                               target.value.ToHex() + " is outside the code"});
        r.aborted = true;
        break;
      }
      uint32_t t = static_cast<uint32_t>(target.value.low64());
      if (!jumpdests[t]) {
        bool inside_push =
            code[t] == static_cast<uint8_t>(Opcode::JUMPDEST);
        r.diags.push_back(
            {DiagCode::kBadJumpTarget, ins.pc,
             std::string(info.name) + " target " + PcHex(t) +
                 (inside_push
                      ? " is a JUMPDEST byte inside a PUSH immediate"
                      : " is " +
                            std::string(GetOpcodeInfo(code[t]).name) +
                            ", not a JUMPDEST")});
        r.aborted = true;
        break;
      }
      jump_target = t;
    }

    // Stack update.
    if (evm::IsPush(op)) {
      stack.push_back(AbstractValue::Constant(ins.immediate));
    } else if (evm::IsDup(op)) {
      stack.push_back(At(stack, evm::DupDepth(op) - 1));
    } else if (evm::IsSwap(op)) {
      size_t top = stack.size() - 1;
      std::swap(stack[top], stack[top - evm::SwapDepth(op)]);
    } else {
      stack.resize(stack.size() - info.stack_in);
      for (int i = 0; i < info.stack_out; ++i) {
        stack.push_back(AbstractValue::Top());
      }
    }
  }

  r.exit = std::move(stack);
  if (r.aborted || block.instructions.empty()) return r;

  const Instruction& last = block.instructions.back();
  const OpcodeInfo& last_info = GetOpcodeInfo(last.opcode);
  if (last.opcode == static_cast<uint8_t>(Opcode::JUMP)) {
    r.successors.push_back(*jump_target);
  } else if (last.opcode == static_cast<uint8_t>(Opcode::JUMPI)) {
    r.successors.push_back(*jump_target);
    if (block.end_pc < code.size()) {
      r.successors.push_back(block.end_pc);
    } else {
      r.diags.push_back({DiagCode::kImplicitStop, last.pc,
                         "JUMPI fallthrough runs off the end of code "
                         "(implicit STOP)"});
    }
  } else if (!last_info.terminator) {
    if (block.end_pc < code.size()) {
      r.successors.push_back(block.end_pc);
    } else {
      r.diags.push_back({DiagCode::kImplicitStop, last.pc,
                         "execution runs off the end of code after " +
                             InstructionToString(last) + " (implicit STOP)"});
    }
  }
  return r;
}

// ---- Path analysis over the block graph ---------------------------------

struct PathInfo {
  GasBound bound;  // longest path from the entry; ⊤ if a cycle is reachable
  bool has_loop = false;
  uint32_t effects = 0;
};

PathInfo AnalyzePaths(uint32_t entry,
                      const std::map<uint32_t, BasicBlock>& blocks,
                      const std::map<uint32_t, GasBound>& cost) {
  PathInfo info;
  if (blocks.find(entry) == blocks.end()) {
    info.bound = GasBound::Unbounded();
    return info;
  }
  enum Color { kWhite = 0, kGray, kBlack };
  std::map<uint32_t, Color> color;
  std::map<uint32_t, GasBound> longest;
  struct Frame {
    uint32_t pc;
    size_t next = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({entry, 0});
  color[entry] = kGray;
  info.effects |= blocks.at(entry).effects;
  while (!stack.empty()) {
    Frame& f = stack.back();
    const BasicBlock& b = blocks.at(f.pc);
    if (f.next < b.successors.size()) {
      uint32_t succ = b.successors[f.next++];
      if (blocks.find(succ) == blocks.end()) continue;  // defensive
      Color c = color[succ];
      if (c == kGray) {
        info.has_loop = true;  // back edge
        continue;
      }
      if (c == kBlack) continue;
      color[succ] = kGray;
      info.effects |= blocks.at(succ).effects;
      stack.push_back({succ, 0});
      continue;
    }
    // All successors finished: the longest path through f.pc is its own
    // cost plus the best successor. (Only meaningful when acyclic; a loop
    // forces the bound to ⊤ below regardless.)
    GasBound best{};
    for (uint32_t succ : b.successors) {
      auto it = longest.find(succ);
      if (it != longest.end()) best = GasBound::Max(best, it->second);
    }
    auto cit = cost.find(f.pc);
    longest[f.pc] = (cit != cost.end() ? cit->second : GasBound{}) + best;
    color[f.pc] = kBlack;
    stack.pop_back();
  }
  info.bound = info.has_loop ? GasBound::Unbounded() : longest.at(entry);
  return info;
}

// ---- Selector-dispatch recovery -----------------------------------------

struct DispatchEntry {
  uint32_t selector = 0;
  uint32_t entry_pc = 0;
  GasBound prefix;  // worst-case dispatch cost up to and including the JUMPI
};

// Recognizes the deterministic dispatcher our codegen emits: a chain of
// fallthrough blocks each ending in [DUP1, PUSH4 sel, EQ, PUSH2 target,
// JUMPI]. Generic bytecode simply yields no functions.
std::vector<DispatchEntry> RecoverDispatch(
    const std::map<uint32_t, BasicBlock>& blocks,
    const std::map<uint32_t, GasBound>& cost) {
  std::vector<DispatchEntry> out;
  GasBound prefix{};
  uint32_t pc = 0;
  std::set<uint32_t> seen;
  while (blocks.find(pc) != blocks.end() && seen.insert(pc).second) {
    const BasicBlock& b = blocks.at(pc);
    size_t n = b.instructions.size();
    if (n < 5) break;
    const Instruction& jumpi = b.instructions[n - 1];
    const Instruction& push_target = b.instructions[n - 2];
    const Instruction& eq = b.instructions[n - 3];
    const Instruction& push_sel = b.instructions[n - 4];
    const Instruction& dup = b.instructions[n - 5];
    if (jumpi.opcode != static_cast<uint8_t>(Opcode::JUMPI) ||
        push_target.immediate_size != 2 ||
        eq.opcode != static_cast<uint8_t>(Opcode::EQ) ||
        push_sel.immediate_size != 4 ||
        dup.opcode != static_cast<uint8_t>(Opcode::DUP1)) {
      break;
    }
    auto cit = cost.find(pc);
    prefix = prefix + (cit != cost.end() ? cit->second : GasBound{});
    DispatchEntry e;
    e.selector = static_cast<uint32_t>(push_sel.immediate.low64());
    e.entry_pc = static_cast<uint32_t>(push_target.immediate.low64());
    e.prefix = prefix;
    out.push_back(e);
    pc = b.end_pc;  // the cascade continues on the no-match fallthrough
  }
  return out;
}

std::string SelectorName(uint32_t selector,
                         const std::map<uint32_t, std::string>& names) {
  auto it = names.find(selector);
  if (it != names.end()) return it->second;
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", selector);
  return buf;
}

void BumpCounters(const AnalysisReport& report) {
  static obs::Counter* programs = obs::GetCounterOrNull("analysis.programs");
  static obs::Counter* blocks = obs::GetCounterOrNull("analysis.blocks");
  static obs::Counter* edges = obs::GetCounterOrNull("analysis.edges");
  static obs::Counter* bytes = obs::GetCounterOrNull("analysis.bytes");
  if (programs != nullptr) programs->Inc();
  if (blocks != nullptr) blocks->Inc(report.cfg.blocks.size());
  if (edges != nullptr) edges->Inc(report.cfg.EdgeCount());
  if (bytes != nullptr) bytes->Inc(report.code_size);
}

}  // namespace

std::string GasBound::ToString() const {
  return bounded ? std::to_string(gas) : "unbounded";
}

std::string AnalysisReport::FirstError(const easm::SourceMap* map) const {
  for (const Diagnostic& d : diagnostics) {
    if (IsError(d.code)) return FormatDiagnostic(d, map);
  }
  return "";
}

AnalysisReport AnalyzeProgram(BytesView code, const AnalysisOptions& options) {
  AnalysisReport report;
  report.code_size = code.size();
  if (code.empty()) {
    BumpCounters(report);
    return report;  // empty code halts immediately: clean, zero gas
  }

  // One decode per process: jumpdests, blocks and PUSH immediates come out
  // of the interpreter's code-analysis cache, keyed by code hash.
  DecodedCode decoded(code);
  const std::vector<bool>& jumpdests = decoded.jumpdests();
  std::map<uint32_t, BasicBlock>& blocks = report.cfg.blocks;
  std::map<uint32_t, AbstractStack> in_states;
  std::map<uint32_t, Diagnostic> merge_errors;  // keyed by join pc

  // Worklist fixpoint over (block, entry state). Entry states only move up
  // the lattice (constant -> ⊤ per slot, heights fixed), so this
  // terminates in O(blocks * max-height) block executions.
  std::deque<uint32_t> worklist;
  in_states.emplace(0u, AbstractStack{});
  worklist.push_back(0);
  while (!worklist.empty()) {
    uint32_t pc = worklist.front();
    worklist.pop_front();
    auto bit = blocks.find(pc);
    if (bit == blocks.end()) {
      bit = blocks.emplace(pc, decoded.Block(pc)).first;
    }
    BlockResult r = ExecBlock(code, bit->second, in_states.at(pc), jumpdests,
                              options);
    bit->second.successors = r.successors;
    for (uint32_t succ : r.successors) {
      auto [sit, inserted] = in_states.emplace(succ, r.exit);
      if (inserted) {
        worklist.push_back(succ);
        continue;
      }
      AbstractStack& have = sit->second;
      if (have.size() != r.exit.size()) {
        merge_errors.emplace(
            succ, Diagnostic{DiagCode::kStackHeightMismatch, succ,
                             "incoming stack heights disagree at " +
                                 PcHex(succ) + " (" +
                                 std::to_string(have.size()) + " vs " +
                                 std::to_string(r.exit.size()) + ")"});
        continue;
      }
      bool changed = false;
      for (size_t i = 0; i < have.size(); ++i) {
        if (have[i].known &&
            (!r.exit[i].known || !(have[i].value == r.exit[i].value))) {
          have[i] = AbstractValue::Top();
          changed = true;
        }
      }
      if (changed) worklist.push_back(succ);
    }
  }

  // Reporting pass: re-run every reachable block once over its fixpoint
  // entry state. ⊤ entries only widen operands, so the costs collected here
  // dominate every concrete execution.
  std::map<uint32_t, GasBound> block_cost;
  for (auto& [pc, block] : blocks) {
    BlockResult r = ExecBlock(code, block, in_states.at(pc), jumpdests,
                              options);
    block.successors = r.successors;
    block_cost[pc] = r.cost;
    for (Diagnostic& d : r.diags) report.diagnostics.push_back(std::move(d));
  }
  for (auto& [pc, diag] : merge_errors) {
    report.diagnostics.push_back(diag);
  }

  // Unreachable-code scan: bytes covered by no reachable block.
  {
    std::vector<bool> covered(code.size(), false);
    for (const auto& [pc, block] : blocks) {
      for (uint32_t i = block.start_pc; i < block.end_pc; ++i) covered[i] = true;
    }
    for (size_t pc = 0; pc < code.size();) {
      if (covered[pc]) {
        ++pc;
        continue;
      }
      size_t end = pc;
      while (end < code.size() && !covered[end]) ++end;
      report.diagnostics.push_back(
          {DiagCode::kUnreachableCode, static_cast<uint32_t>(pc),
           std::to_string(end - pc) + " byte(s) unreachable from entry"});
      pc = end;
    }
  }

  // Whole-program bound and effects.
  PathInfo program = AnalyzePaths(0, blocks, block_cost);
  report.program_bound = program.bound;
  report.effects = program.effects;

  // Per-function reports from the recovered dispatcher.
  for (const DispatchEntry& d : RecoverDispatch(blocks, block_cost)) {
    PathInfo paths = AnalyzePaths(d.entry_pc, blocks, block_cost);
    FunctionReport fr;
    fr.selector = d.selector;
    fr.name = SelectorName(d.selector, options.function_names);
    fr.entry_pc = d.entry_pc;
    fr.gas_bound = d.prefix + paths.bound;
    fr.effects = paths.effects;
    fr.has_loop = paths.has_loop;
    report.functions.push_back(std::move(fr));
  }

  // The dataflow pass (dataflow.cc) only runs on structurally sound code:
  // every reachable jump resolved, stack heights consistent.
  bool structurally_sound = !report.HasErrors();

  // Policy checks: machine-verify the declared light/heavy split. The
  // privacy half (ANA12–ANA18) now flows through the dataflow summaries.
  for (const FunctionReport& fr : report.functions) {
    bool light = std::find(options.light_selectors.begin(),
                           options.light_selectors.end(),
                           fr.selector) != options.light_selectors.end();
    bool priv = std::find(options.private_selectors.begin(),
                          options.private_selectors.end(),
                          fr.selector) != options.private_selectors.end();
    if (light && !fr.gas_bound.bounded) {
      report.diagnostics.push_back(
          {DiagCode::kUnboundedGas, fr.entry_pc,
           "light function " + fr.name +
               " has an unbounded worst-case gas cost" +
               (fr.has_loop ? " (reachable loop)" : "")});
    } else if (light && fr.gas_bound.gas >= options.block_gas_limit) {
      report.diagnostics.push_back(
          {DiagCode::kGasAboveBlockLimit, fr.entry_pc,
           "light function " + fr.name + " worst-case gas " +
               fr.gas_bound.ToString() + " >= block gas limit " +
               std::to_string(options.block_gas_limit)});
    }
    if (!structurally_sound && priv &&
        (fr.effects & effect::kStateLeakMask) != 0) {
      // Fallback when the dataflow pass cannot run: the PR 4 effect-mask
      // check still rejects the privacy violation.
      report.diagnostics.push_back(
          {DiagCode::kPrivateStateLeak, fr.entry_pc,
           "declared-private function " + fr.name +
               " can reach state effects: " +
               EffectsToString(fr.effects & effect::kStateLeakMask)});
    }
  }

  if (structurally_sound) {
    DataflowResult df = AnalyzeDataflow(code, report, options);
    report.program_access = std::move(df.program);
    for (size_t i = 0;
         i < report.functions.size() && i < df.per_function.size(); ++i) {
      report.functions[i].access = std::move(df.per_function[i]);
    }
    for (Diagnostic& d : df.diagnostics) {
      report.diagnostics.push_back(std::move(d));
    }
  } else {
    report.program_access.reads.top = true;
    report.program_access.writes.top = true;
    report.program_access.effects = report.effects;
    report.program_access.external_reads = true;
    for (FunctionReport& fr : report.functions) {
      fr.access = report.program_access;
    }
  }

  BumpCounters(report);
  return report;
}

GasBound DeploymentReport::DeployGasBound() const {
  if (!recognized_deployer || !runtime.has_value()) {
    // Unknown returned-code size: the code-deposit charge is unbounded.
    return GasBound::Unbounded();
  }
  return init.program_bound +
         GasBound{true, gas::kCodeDeposit *
                            static_cast<uint64_t>(runtime->code_size)};
}

bool DeploymentReport::HasErrors() const {
  return init.HasErrors() || (runtime.has_value() && runtime->HasErrors());
}

std::vector<Diagnostic> DeploymentReport::AllDiagnostics() const {
  std::vector<Diagnostic> out = init.diagnostics;
  if (runtime.has_value()) {
    for (Diagnostic d : runtime->diagnostics) {
      d.pc += static_cast<uint32_t>(runtime_offset);
      out.push_back(std::move(d));
    }
  }
  return out;
}

DeploymentReport AnalyzeDeployment(BytesView init_code,
                                   const AnalysisOptions& options) {
  DeploymentReport out;
  // The standard WrapDeployer prologue (15 bytes):
  //   PUSH2 len PUSH2 15 PUSH1 0 CODECOPY PUSH2 len PUSH1 0 RETURN
  constexpr size_t kPrologue = 15;
  bool match =
      init_code.size() >= kPrologue && init_code[0] == 0x61 &&
      init_code[3] == 0x61 && init_code[6] == 0x60 && init_code[7] == 0x00 &&
      init_code[8] == static_cast<uint8_t>(Opcode::CODECOPY) &&
      init_code[9] == 0x61 && init_code[12] == 0x60 &&
      init_code[13] == 0x00 &&
      init_code[14] == static_cast<uint8_t>(Opcode::RETURN);
  if (match) {
    uint32_t len = (uint32_t{init_code[1]} << 8) | init_code[2];
    uint32_t off = (uint32_t{init_code[4]} << 8) | init_code[5];
    uint32_t ret_len = (uint32_t{init_code[9 + 1]} << 8) | init_code[11];
    match = off == kPrologue && len == ret_len &&
            kPrologue + len == init_code.size();
  }
  if (match) {
    out.recognized_deployer = true;
    out.runtime_offset = kPrologue;
    // The prologue carries no dispatcher: drop the function policies so they
    // only apply to the runtime.
    AnalysisOptions prologue_options = options;
    prologue_options.light_selectors.clear();
    prologue_options.private_selectors.clear();
    out.init = AnalyzeProgram(init_code.first(kPrologue), prologue_options);
    out.runtime = AnalyzeProgram(init_code.subspan(kPrologue), options);
  } else {
    out.init = AnalyzeProgram(init_code, options);
  }
  return out;
}

Status AuditForSigning(BytesView init_code, const AnalysisOptions& options) {
  DeploymentReport report = AnalyzeDeployment(init_code, options);
  if (!report.HasErrors()) return Status::OK();
  static obs::Counter* rejected = obs::GetCounterOrNull("analysis.rejected");
  if (rejected != nullptr) rejected->Inc();
  std::vector<Diagnostic> all = report.AllDiagnostics();
  size_t errors = 0;
  const Diagnostic* first = nullptr;
  for (const Diagnostic& d : all) {
    if (!IsError(d.code)) continue;
    ++errors;
    if (first == nullptr) first = &d;
  }
  return Status::AnalysisRejected(
      "bytecode failed the pre-signing audit (" + std::to_string(errors) +
      " error(s)); first: " + FormatDiagnostic(*first));
}

}  // namespace onoff::analysis
