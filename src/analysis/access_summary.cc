#include "analysis/access_summary.h"

#include <sstream>
#include <utility>

#include "analysis/analyzer.h"
#include "analysis/cfg.h"
#include "obs/metrics.h"

namespace onoff::analysis {

bool SlotSet::Disjoint(const SlotSet& other) const {
  if (top || other.top) return false;
  const SlotSet& small = slots.size() <= other.slots.size() ? *this : other;
  const SlotSet& big = &small == this ? other : *this;
  for (const U256& s : small.slots) {
    if (big.slots.count(s) != 0) return false;
  }
  return true;
}

std::string SlotSet::ToString() const {
  if (top) return "⊤";
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const U256& s : slots) {
    if (!first) os << ",";
    first = false;
    os << s.ToHex();
  }
  os << "}";
  return os.str();
}

bool AccessSummary::StaticallySchedulable() const {
  constexpr uint32_t kEscapes = effect::kCall | effect::kDelegateCall |
                                effect::kStaticCall | effect::kCreate |
                                effect::kSelfdestruct;
  return !reads.top && !writes.top && (effects & kEscapes) == 0 &&
         !external_reads;
}

std::string AccessSummary::ToString() const {
  std::ostringstream os;
  os << "reads=" << reads.ToString() << " writes=" << writes.ToString()
     << " effects=[" << EffectsToString(effects) << "]";
  if (external_reads) os << " external-reads";
  return os.str();
}

AccessSummaryCache& AccessSummaryCache::Global() {
  static AccessSummaryCache cache;
  return cache;
}

namespace {

std::shared_ptr<const ProgramAccess> BuildProgramAccess(BytesView code) {
  auto out = std::make_shared<ProgramAccess>();
  AnalysisReport report = AnalyzeProgram(code, AnalysisOptions{});
  if (report.HasErrors()) {
    // Broken or hostile code: pin the summary at ⊤ so every consumer falls
    // back to the dynamic path.
    out->program.reads.top = true;
    out->program.writes.top = true;
    out->program.effects = ~0u;
    return out;
  }
  out->program = report.program_access;
  out->selectors.reserve(report.functions.size());
  for (const FunctionReport& fr : report.functions) {
    out->selectors.push_back(SelectorAccess{fr.selector, fr.name, fr.access});
  }
  return out;
}

}  // namespace

std::shared_ptr<const ProgramAccess> AccessSummaryCache::Get(
    const Hash32& code_hash, BytesView code) {
  static obs::Counter* hits =
      obs::GetCounterOrNull("analysis.summary_cache.hits");
  static obs::Counter* misses =
      obs::GetCounterOrNull("analysis.summary_cache.misses");
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(code_hash);
    if (it != entries_.end()) {
      if (hits != nullptr) hits->Inc();
      return it->second;
    }
  }
  if (misses != nullptr) misses->Inc();
  // Build outside the lock: analysis can be milliseconds on big contracts
  // and the cache serves every executor worker.
  std::shared_ptr<const ProgramAccess> built = BuildProgramAccess(code);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.emplace(code_hash, built);
  if (inserted && entries_.size() > kMaxEntries) entries_.clear();
  return it->second;
}

void AccessSummaryCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace onoff::analysis
