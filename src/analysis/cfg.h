// Basic-block control-flow graph over EVM bytecode.
//
// Blocks are discovered on demand from jump targets (not by linear sweep),
// so data bytes and PUSH immediates never masquerade as instructions. A
// block starts at pc 0, at a JUMPDEST, or at the fallthrough of a JUMPI, and
// ends at a terminator opcode (STOP/JUMP/RETURN/REVERT/INVALID/
// SELFDESTRUCT), at a JUMPI, just before the next JUMPDEST, or at the end of
// code.

#ifndef ONOFFCHAIN_ANALYSIS_CFG_H_
#define ONOFFCHAIN_ANALYSIS_CFG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "evm/analysis_cache.h"
#include "evm/opcodes.h"
#include "support/bytes.h"
#include "support/u256.h"

namespace onoff::analysis {

// State effects an instruction can have, as per-block bit flags.
namespace effect {
inline constexpr uint32_t kSstore = 1u << 0;
inline constexpr uint32_t kSload = 1u << 1;
inline constexpr uint32_t kLog = 1u << 2;
inline constexpr uint32_t kCall = 1u << 3;        // CALL / CALLCODE
inline constexpr uint32_t kDelegateCall = 1u << 4;
inline constexpr uint32_t kStaticCall = 1u << 5;
inline constexpr uint32_t kCreate = 1u << 6;      // CREATE / CREATE2
inline constexpr uint32_t kSelfdestruct = 1u << 7;

// Effects that can mutate chain state or push data out of the contract —
// the ones a declared-private function must never reach. STATICCALL is
// excluded: it cannot write state.
inline constexpr uint32_t kStateLeakMask =
    kSstore | kLog | kCall | kDelegateCall | kCreate | kSelfdestruct;
}  // namespace effect

// "SSTORE|LOG|CALL" — for reports and diagnostics ("none" when 0).
std::string EffectsToString(uint32_t effects);

struct Instruction {
  uint32_t pc = 0;
  uint8_t opcode = 0;
  uint8_t immediate_size = 0;  // PUSHn only
  bool truncated = false;      // PUSH immediate runs past end of code
  U256 immediate;              // zero-extended when truncated
};

struct BasicBlock {
  uint32_t start_pc = 0;
  uint32_t end_pc = 0;  // exclusive (first byte after the block)
  std::vector<Instruction> instructions;
  uint32_t effects = 0;  // union of effect:: flags over the instructions
  // Resolved successor block start pcs; filled by the analyzer once jump
  // targets are known.
  std::vector<uint32_t> successors;
};

struct ControlFlowGraph {
  // Reachable blocks keyed by start pc.
  std::map<uint32_t, BasicBlock> blocks;

  size_t EdgeCount() const;
};

// Marks every JUMPDEST byte that is a real instruction (not inside a PUSH
// immediate) — the same rule the interpreter enforces on JUMP/JUMPI.
std::vector<bool> ComputeJumpdests(BytesView code);

// Decodes one instruction at `pc` (pc must be < code.size()).
Instruction DecodeInstruction(BytesView code, uint32_t pc);

// Decodes the basic block starting at `start`.
BasicBlock DecodeBlock(BytesView code, uint32_t start);

// Decoded view of a contract backed by the process-wide
// evm::CodeAnalysisCache: the jumpdest bitmap and PUSH immediates come
// from the interpreter's cached cell stream (keyed by code hash), so a
// contract is decoded once per process no matter how many subsystems —
// interpreter, analyzer, deploy lint, signing audit, summary cache —
// look at it.
//
// Alignment is sound: the cache's linear sweep and the analyzer's
// on-demand block discovery agree at every pc the analyzer can visit,
// because analysis starts at pc 0 and only continues at fallthroughs of
// decoded instructions and at valid JUMPDESTs — which are never inside a
// PUSH immediate (AnalyzeJumpdests). Any pc the sweep classified as
// immediate data simply misses the cell map and decodes from raw bytes.
class DecodedCode {
 public:
  explicit DecodedCode(BytesView code);

  BytesView code() const { return code_; }
  const Hash32& code_hash() const { return hash_; }
  const std::vector<bool>& jumpdests() const;

  // Decodes one instruction at `pc` (< code.size()), pulling PUSH
  // immediates from the cached constant pool when available.
  Instruction At(uint32_t pc) const;

  // Decodes the basic block starting at `start` (same shape as
  // DecodeBlock, immediates via At).
  BasicBlock Block(uint32_t start) const;

 private:
  BytesView code_;
  Hash32 hash_{};
  std::shared_ptr<const evm::CodeAnalysis> analysis_;
  // pc -> constant-pool index for real PUSH cells; -1 elsewhere.
  std::vector<int32_t> push_pool_;
  mutable std::vector<bool> own_jumpdests_;  // fallback when uncached
};

// "PUSH2 0x01a4" — for diagnostics.
std::string InstructionToString(const Instruction& ins);

}  // namespace onoff::analysis

#endif  // ONOFFCHAIN_ANALYSIS_CFG_H_
