#include "analysis/cfg.h"

#include <cstdio>

#include "crypto/keccak.h"
#include "evm/analysis_cache.h"

namespace onoff::analysis {

using evm::GetOpcodeInfo;
using evm::Opcode;
using evm::OpcodeInfo;

size_t ControlFlowGraph::EdgeCount() const {
  size_t edges = 0;
  for (const auto& [pc, block] : blocks) edges += block.successors.size();
  return edges;
}

std::vector<bool> ComputeJumpdests(BytesView code) {
  // Single source of truth with the interpreter's jumpdest validation.
  return evm::AnalyzeJumpdests(code);
}

Instruction DecodeInstruction(BytesView code, uint32_t pc) {
  Instruction ins;
  ins.pc = pc;
  ins.opcode = code[pc];
  if (evm::IsPush(ins.opcode)) {
    int n = evm::PushSize(ins.opcode);
    ins.immediate_size = static_cast<uint8_t>(n);
    ins.truncated = pc + 1 + n > code.size();
    U256 v;
    for (int i = 0; i < n; ++i) {
      uint8_t b = pc + 1 + i < code.size() ? code[pc + 1 + i] : 0;
      v = (v << 8) | U256(b);
    }
    ins.immediate = v;
  }
  return ins;
}

namespace {

uint32_t EffectOf(uint8_t op) {
  if (evm::IsLog(op)) return effect::kLog;
  switch (static_cast<Opcode>(op)) {
    case Opcode::SSTORE:
      return effect::kSstore;
    case Opcode::SLOAD:
      return effect::kSload;
    case Opcode::CALL:
    case Opcode::CALLCODE:
      return effect::kCall;
    case Opcode::DELEGATECALL:
      return effect::kDelegateCall;
    case Opcode::STATICCALL:
      return effect::kStaticCall;
    case Opcode::CREATE:
    case Opcode::CREATE2:
      return effect::kCreate;
    case Opcode::SELFDESTRUCT:
      return effect::kSelfdestruct;
    default:
      return 0;
  }
}

// The block-decoding loop, parameterized over the per-pc instruction
// source so DecodeBlock (raw bytes) and DecodedCode::Block (cached cell
// stream) stay byte-identical.
template <typename DecodeAt>
BasicBlock DecodeBlockWith(BytesView code, uint32_t start, DecodeAt at) {
  BasicBlock block;
  block.start_pc = start;
  uint32_t pc = start;
  while (pc < code.size()) {
    Instruction ins = at(pc);
    const OpcodeInfo& info = GetOpcodeInfo(ins.opcode);
    block.instructions.push_back(ins);
    block.effects |= EffectOf(ins.opcode);
    uint32_t next = pc + 1 + ins.immediate_size;
    // Undefined bytes and truncated PUSHes end the block: the analyzer
    // reports them and never follows past.
    if (!info.defined || ins.truncated || info.terminator ||
        ins.opcode == static_cast<uint8_t>(Opcode::JUMPI)) {
      pc = next;
      break;
    }
    // A JUMPDEST starts a new block (it may be a jump target).
    if (next < code.size() &&
        code[next] == static_cast<uint8_t>(Opcode::JUMPDEST)) {
      pc = next;
      break;
    }
    pc = next;
  }
  block.end_pc = pc < code.size() ? pc : static_cast<uint32_t>(code.size());
  return block;
}

}  // namespace

BasicBlock DecodeBlock(BytesView code, uint32_t start) {
  return DecodeBlockWith(code, start, [&](uint32_t pc) {
    return DecodeInstruction(code, pc);
  });
}

DecodedCode::DecodedCode(BytesView code) : code_(code) {
  if (code.empty()) return;
  hash_ = Keccak256(code);
  analysis_ = evm::CodeAnalysisCache::Global().Get(hash_, code, /*fuse=*/false);
  if (analysis_ == nullptr || analysis_->switch_only) {
    analysis_.reset();
    return;
  }
  push_pool_.assign(code.size(), -1);
  for (const evm::CodeCell& cell : analysis_->cells) {
    if (cell.op == static_cast<uint8_t>(evm::Handler::PUSH) &&
        cell.pc < code.size()) {
      push_pool_[cell.pc] = static_cast<int32_t>(cell.imm);
    }
  }
}

const std::vector<bool>& DecodedCode::jumpdests() const {
  if (analysis_ != nullptr) return analysis_->jumpdests;
  if (own_jumpdests_.size() != code_.size()) {
    own_jumpdests_ = ComputeJumpdests(code_);
  }
  return own_jumpdests_;
}

Instruction DecodedCode::At(uint32_t pc) const {
  uint8_t op = code_[pc];
  if (analysis_ == nullptr || !evm::IsPush(op) || push_pool_[pc] < 0) {
    return DecodeInstruction(code_, pc);
  }
  Instruction ins;
  ins.pc = pc;
  ins.opcode = op;
  int n = evm::PushSize(op);
  ins.immediate_size = static_cast<uint8_t>(n);
  ins.truncated = pc + 1 + static_cast<size_t>(n) > code_.size();
  // The decoder pools immediates zero-extended exactly like
  // DecodeInstruction (asserted by the dataflow equivalence fuzz).
  ins.immediate = analysis_->pool[static_cast<size_t>(push_pool_[pc])];
  return ins;
}

BasicBlock DecodedCode::Block(uint32_t start) const {
  return DecodeBlockWith(code_, start, [&](uint32_t pc) { return At(pc); });
}

std::string EffectsToString(uint32_t effects) {
  std::string out;
  auto add = [&](uint32_t flag, const char* name) {
    if ((effects & flag) != 0) {
      if (!out.empty()) out += "|";
      out += name;
    }
  };
  add(effect::kSstore, "SSTORE");
  add(effect::kLog, "LOG");
  add(effect::kCall, "CALL");
  add(effect::kDelegateCall, "DELEGATECALL");
  add(effect::kCreate, "CREATE");
  add(effect::kSelfdestruct, "SELFDESTRUCT");
  add(effect::kStaticCall, "STATICCALL");
  add(effect::kSload, "SLOAD");
  return out.empty() ? "none" : out;
}

std::string InstructionToString(const Instruction& ins) {
  const OpcodeInfo& info = GetOpcodeInfo(ins.opcode);
  if (!info.defined) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%02x", ins.opcode);
    return std::string("UNDEFINED ") + buf;
  }
  std::string out(info.name);
  if (ins.immediate_size > 0) {
    out += " 0x";
    out += ins.immediate.ToHex();
  }
  return out;
}

}  // namespace onoff::analysis
