#include "analysis/cfg.h"

#include <cstdio>

#include "evm/analysis_cache.h"

namespace onoff::analysis {

using evm::GetOpcodeInfo;
using evm::Opcode;
using evm::OpcodeInfo;

size_t ControlFlowGraph::EdgeCount() const {
  size_t edges = 0;
  for (const auto& [pc, block] : blocks) edges += block.successors.size();
  return edges;
}

std::vector<bool> ComputeJumpdests(BytesView code) {
  // Single source of truth with the interpreter's jumpdest validation.
  return evm::AnalyzeJumpdests(code);
}

Instruction DecodeInstruction(BytesView code, uint32_t pc) {
  Instruction ins;
  ins.pc = pc;
  ins.opcode = code[pc];
  if (evm::IsPush(ins.opcode)) {
    int n = evm::PushSize(ins.opcode);
    ins.immediate_size = static_cast<uint8_t>(n);
    ins.truncated = pc + 1 + n > code.size();
    U256 v;
    for (int i = 0; i < n; ++i) {
      uint8_t b = pc + 1 + i < code.size() ? code[pc + 1 + i] : 0;
      v = (v << 8) | U256(b);
    }
    ins.immediate = v;
  }
  return ins;
}

namespace {

uint32_t EffectOf(uint8_t op) {
  if (evm::IsLog(op)) return effect::kLog;
  switch (static_cast<Opcode>(op)) {
    case Opcode::SSTORE:
      return effect::kSstore;
    case Opcode::SLOAD:
      return effect::kSload;
    case Opcode::CALL:
    case Opcode::CALLCODE:
      return effect::kCall;
    case Opcode::DELEGATECALL:
      return effect::kDelegateCall;
    case Opcode::STATICCALL:
      return effect::kStaticCall;
    case Opcode::CREATE:
    case Opcode::CREATE2:
      return effect::kCreate;
    case Opcode::SELFDESTRUCT:
      return effect::kSelfdestruct;
    default:
      return 0;
  }
}

}  // namespace

BasicBlock DecodeBlock(BytesView code, uint32_t start) {
  BasicBlock block;
  block.start_pc = start;
  uint32_t pc = start;
  while (pc < code.size()) {
    Instruction ins = DecodeInstruction(code, pc);
    const OpcodeInfo& info = GetOpcodeInfo(ins.opcode);
    block.instructions.push_back(ins);
    block.effects |= EffectOf(ins.opcode);
    uint32_t next = pc + 1 + ins.immediate_size;
    // Undefined bytes and truncated PUSHes end the block: the analyzer
    // reports them and never follows past.
    if (!info.defined || ins.truncated || info.terminator ||
        ins.opcode == static_cast<uint8_t>(Opcode::JUMPI)) {
      pc = next;
      break;
    }
    // A JUMPDEST starts a new block (it may be a jump target).
    if (next < code.size() &&
        code[next] == static_cast<uint8_t>(Opcode::JUMPDEST)) {
      pc = next;
      break;
    }
    pc = next;
  }
  block.end_pc = pc < code.size() ? pc : static_cast<uint32_t>(code.size());
  return block;
}

std::string InstructionToString(const Instruction& ins) {
  const OpcodeInfo& info = GetOpcodeInfo(ins.opcode);
  if (!info.defined) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%02x", ins.opcode);
    return std::string("UNDEFINED ") + buf;
  }
  std::string out(info.name);
  if (ins.immediate_size > 0) {
    out += " 0x";
    out += ins.immediate.ToHex();
  }
  return out;
}

}  // namespace onoff::analysis
