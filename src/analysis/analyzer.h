// The pre-signing / pre-deployment bytecode static analyzer (paper §III:
// participants sign the hash of off-chain bytecode — this is the "audit
// before you sign" step that makes that signature meaningful).
//
// The analyzer runs an abstract interpretation over the basic-block CFG.
// The abstract domain per stack slot is constant-or-⊤; stack heights are
// exact (a join of different heights is a hard error, which is stricter
// than the EVM but true of all code our generator emits and of solc
// output). From the fixpoint it derives:
//
//   * stack safety: no path underflows, no path can exceed 1024 items;
//   * jump safety: every executed JUMP/JUMPI target is a statically known
//     constant pointing at a real JUMPDEST (not into a PUSH immediate);
//   * per-function worst-case gas upper bounds: the longest path through
//     the function's block DAG using worst-case per-instruction costs, with
//     an explicit ⊤ (unbounded) when a loop or an all-but-one-64th
//     forwarding CALL/CREATE is reachable — checked against the block gas
//     limit to machine-verify the paper's light/heavy classification;
//   * state-effect classification: which functions can reach SSTORE / LOG /
//     CALL / CREATE / SELFDESTRUCT, used to prove that declared-private
//     (off-chain) functions cannot leak private inputs into public state.
//
// Soundness caveat (documented, asserted in tests): dynamically sized
// memory/calldata operands are assumed to be at most
// AnalysisOptions::max_dynamic_bytes; the gas bounds are upper bounds for
// every execution whose dynamic operands stay within that envelope.

#ifndef ONOFFCHAIN_ANALYSIS_ANALYZER_H_
#define ONOFFCHAIN_ANALYSIS_ANALYZER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/access_summary.h"
#include "analysis/cfg.h"
#include "analysis/diagnostic.h"
#include "support/bytes.h"
#include "support/status.h"

namespace onoff::analysis {

// A gas upper bound: a number of gas units, or ⊤ (statically unbounded).
struct GasBound {
  bool bounded = true;
  uint64_t gas = 0;

  static GasBound Unbounded() { return GasBound{false, 0}; }

  GasBound operator+(const GasBound& other) const {
    if (!bounded || !other.bounded) return Unbounded();
    return GasBound{true, gas + other.gas};
  }
  // Join = max (the bound must cover both alternatives).
  static GasBound Max(const GasBound& a, const GasBound& b) {
    if (!a.bounded || !b.bounded) return Unbounded();
    return GasBound{true, a.gas > b.gas ? a.gas : b.gas};
  }
  // True when this bound covers `measured` gas.
  bool Covers(uint64_t measured) const {
    return !bounded || measured <= gas;
  }
  std::string ToString() const;  // "12345" or "unbounded"
};

struct FunctionReport {
  uint32_t selector = 0;
  std::string name;  // from AnalysisOptions::function_names, else hex
  uint32_t entry_pc = 0;
  // Worst-case gas from call entry (selector dispatch included) to halt.
  GasBound gas_bound;
  uint32_t effects = 0;  // union of effect:: flags over reachable blocks
  bool has_loop = false;
  // Storage access summary from the dataflow pass (DESIGN §12): slots this
  // selector may read/write, dispatch prefix included. ⊤ sets when the
  // first pass found errors or a key did not resolve.
  AccessSummary access;
};

struct AnalysisOptions {
  // Envelope for dynamically sized memory/calldata operands (see header
  // comment). 128 KiB comfortably covers every contract in this repo.
  uint64_t max_dynamic_bytes = 128 * 1024;
  // The chain's block gas limit; light functions must bound below it.
  uint64_t block_gas_limit = 8'000'000;
  // Selectors of functions declared light/public: a ⊤ or above-limit gas
  // bound is an error (kUnboundedGas / kGasAboveBlockLimit).
  std::vector<uint32_t> light_selectors;
  // Selectors of functions declared heavy/private: reaching any state
  // effect in effect::kStateLeakMask is an error (kPrivateStateLeak).
  std::vector<uint32_t> private_selectors;
  // Selector -> name, for readable reports.
  std::map<uint32_t, std::string> function_names;
};

struct AnalysisReport {
  ControlFlowGraph cfg;
  std::vector<Diagnostic> diagnostics;
  // Functions recovered from the standard selector-dispatch prologue (empty
  // for non-dispatch programs).
  std::vector<FunctionReport> functions;
  // Worst-case gas from pc 0 to halt (⊤ if any reachable loop/CALL/CREATE).
  GasBound program_bound;
  uint32_t effects = 0;  // union over all reachable blocks
  size_t code_size = 0;
  // Whole-program access summary: sound for any entry point and calldata.
  AccessSummary program_access;

  bool HasErrors() const { return HasError(diagnostics); }
  // First error formatted (empty when clean).
  std::string FirstError(const easm::SourceMap* map = nullptr) const;
};

// Analyzes runtime bytecode.
AnalysisReport AnalyzeProgram(BytesView code,
                              const AnalysisOptions& options = {});

// Deployment (init-code) analysis. When the init code matches the standard
// WrapDeployer prologue (PUSH2 len PUSH2 off PUSH1 0 CODECOPY ... RETURN),
// the embedded runtime is extracted and analyzed as its own program;
// otherwise the whole init code is analyzed as one program and `runtime` is
// empty.
struct DeploymentReport {
  AnalysisReport init;  // the prologue (or the whole init code)
  std::optional<AnalysisReport> runtime;
  size_t runtime_offset = 0;  // byte offset of the runtime inside init code
  bool recognized_deployer = false;

  // Worst-case gas for executing the init code as a creation, including
  // the per-byte code-deposit charge for the returned runtime.
  GasBound DeployGasBound() const;
  bool HasErrors() const;
  // All diagnostics, runtime pcs rebased onto the init code.
  std::vector<Diagnostic> AllDiagnostics() const;
};

DeploymentReport AnalyzeDeployment(BytesView init_code,
                                   const AnalysisOptions& options = {});

// The mandatory pre-signing audit: OK iff `init_code` analyzes without
// errors; otherwise kAnalysisRejected carrying the first finding.
Status AuditForSigning(BytesView init_code,
                       const AnalysisOptions& options = {});

}  // namespace onoff::analysis

#endif  // ONOFFCHAIN_ANALYSIS_ANALYZER_H_
