#pragma once

// The storage-access / privacy-taint dataflow engine (DESIGN §12).
//
// Runs after the stack-safety fixpoint over the same CFG and computes, per
// dispatchable selector and for the program as a whole:
//
//  * an access summary — which storage slots the code may read/write
//    (value-set propagation on SLOAD/SSTORE keys), which effect:: bits it
//    can reach, and whether it reads other accounts' state;
//  * taint flows from private inputs (calldata) to public sinks (SSTORE,
//    LOG, CALL args/value/target, CREATE, SELFDESTRUCT, RETURN), reported
//    as ANA13–ANA18 against the declared light/private policy.
//
// The engine is a separate fixpoint because its domain (value sets × taint
// × memory/storage taint environment) is strictly richer than the
// stack-safety domain, and because it must only run on code the first pass
// proved well-formed: every reachable jump resolved, stack heights
// consistent. On code with errors the caller skips the dataflow pass and
// consumers see a ⊤ summary.

#include <vector>

#include "analysis/access_summary.h"
#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "support/bytes.h"

namespace onoff::analysis {

struct DataflowResult {
  // Sound for any entry and any calldata (join over all reachable blocks).
  AccessSummary program;
  // Summaries per recovered selector, aligned with report.functions.
  std::vector<AccessSummary> per_function;
  // ANA12–ANA18 policy diagnostics (light/private enforcement now flows
  // through the summaries rather than the PR 4 opcode ban list).
  std::vector<Diagnostic> diagnostics;
};

// `report` must come from AnalyzeProgram's fixpoint over `code` with
// successors resolved; the engine walks report.cfg and report.functions.
DataflowResult AnalyzeDataflow(BytesView code, const AnalysisReport& report,
                               const AnalysisOptions& options);

}  // namespace onoff::analysis
