#pragma once

// Abstract domains for the storage-access / privacy-taint dataflow engine
// (DESIGN §12). Two lattices:
//
//  * ValueSet — a bounded set of concrete 256-bit constants, or ⊤. This is
//    the value-set/constant-propagation domain used to resolve storage keys
//    (SLOAD/SSTORE operands) and shift amounts. Join is set union with
//    widening to ⊤ past kMaxValues, so the lattice has finite height and
//    the fixpoint terminates. Binary operators are evaluated pointwise
//    over the cartesian product via the interpreter's own EvalBinop, which
//    keeps the folding semantics byte-identical to execution.
//
//  * Taint — a three-point chain kClean < kSelectorWord < kPrivate.
//    CALLDATALOAD(0) yields kSelectorWord: the first calldata word holds
//    the 4 public selector bytes followed by 28 bytes of (possibly
//    private) argument data. The dispatch idiom `SHR 224` strips the
//    argument bytes and demotes it to kClean; any other use escalates to
//    kPrivate. Everything loaded from calldata past the selector is
//    kPrivate outright.

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "support/u256.h"

namespace onoff::analysis {

// ----------------------------------------------------------------- ValueSet

// ⊤ | {c_1..c_k} with k <= kMaxValues. Small inline vector keeps the hot
// join path allocation-light; values are kept sorted and deduplicated.
struct ValueSet {
  static constexpr size_t kMaxValues = 4;

  bool top = true;
  std::vector<U256> values;  // sorted, unique; empty+!top = bottom (unused)

  static ValueSet Top() { return ValueSet{}; }
  static ValueSet Of(const U256& v) { return ValueSet{false, {v}}; }

  bool IsConstant() const { return !top && values.size() == 1; }
  const U256& Constant() const { return values.front(); }

  // Set union with widening to ⊤ past kMaxValues.
  void Join(const ValueSet& other);
  void Insert(const U256& v);

  bool operator==(const ValueSet& o) const {
    return top == o.top && values == o.values;
  }

  std::string ToString() const;
};

// Evaluate a fusable binary opcode over two value sets (cartesian product,
// widened to ⊤ past ValueSet::kMaxValues). `a` is the first-popped (top of
// stack) operand, matching the interpreter's binding. Returns ⊤ for
// non-fusable opcodes.
ValueSet EvalBinary(uint8_t opcode_byte, const ValueSet& a, const ValueSet& b);

// ISZERO / NOT over a value set.
ValueSet EvalUnary(uint8_t opcode_byte, const ValueSet& a);

// -------------------------------------------------------------------- Taint

enum class Taint : uint8_t {
  kClean = 0,
  // The first calldata word: public selector bytes + private arg prefix.
  kSelectorWord = 1,
  kPrivate = 2,
};

inline Taint JoinTaint(Taint a, Taint b) { return a < b ? b : a; }

// A selector word keeps its special status only through stack shuffling
// and the `SHR >=224` dispatch idiom; any other data flow mixes the 28
// argument bytes in, so it degrades to fully private.
inline Taint Escalate(Taint t) {
  return t == Taint::kSelectorWord ? Taint::kPrivate : t;
}

const char* TaintName(Taint t);

// A tracked stack slot: what values it may hold, and whether they derive
// from private inputs.
struct TaintedValue {
  ValueSet values;
  Taint taint = Taint::kClean;

  bool operator==(const TaintedValue& o) const {
    return values == o.values && taint == o.taint;
  }
};

// Flow-sensitive non-stack taint state. Monotone by construction: facts are
// only ever added (no strong updates), so joins are unions and the
// fixpoint is a sound over-approximation on loops.
struct TaintEnv {
  // Any byte of EVM memory may derive from private input (single-bit
  // memory abstraction; CALLDATACOPY and stores of tainted words set it).
  bool memory = false;
  // Storage slots holding private-derived values. `storage_any` covers
  // writes through unresolved (⊤) keys.
  bool storage_any = false;
  std::set<U256> storage;
  // Set on blocks only reachable through a branch on private data
  // (implicit flows). Never cleared once set on a path.
  bool control = false;

  void Join(const TaintEnv& other);
  bool SlotTainted(const ValueSet& key) const;

  bool operator==(const TaintEnv& o) const {
    return memory == o.memory && storage_any == o.storage_any &&
           storage == o.storage && control == o.control;
  }
};

}  // namespace onoff::analysis
