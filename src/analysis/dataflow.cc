#include "analysis/dataflow.h"

#include <algorithm>
#include <deque>
#include <set>
#include <utility>

#include "evm/analysis_cache.h"
#include "evm/opcodes.h"

namespace onoff::analysis {

using evm::GetOpcodeInfo;
using evm::Opcode;
using evm::OpcodeInfo;

namespace {

// ---- Flow state ---------------------------------------------------------

struct FlowState {
  std::vector<TaintedValue> stack;
  TaintEnv env;
};

// Joins `src` into `dst`; true when anything moved up the lattice. The
// stack-safety pass already rejected height mismatches (ANA05), so a
// disagreement here just stops propagation along that edge.
bool JoinInto(FlowState& dst, const FlowState& src) {
  if (dst.stack.size() != src.stack.size()) return false;
  bool changed = false;
  for (size_t i = 0; i < dst.stack.size(); ++i) {
    TaintedValue& d = dst.stack[i];
    const TaintedValue& s = src.stack[i];
    ValueSet joined = d.values;
    joined.Join(s.values);
    if (!(joined == d.values)) {
      d.values = std::move(joined);
      changed = true;
    }
    Taint t = JoinTaint(d.taint, s.taint);
    if (t != d.taint) {
      d.taint = t;
      changed = true;
    }
  }
  TaintEnv joined_env = dst.env;
  joined_env.Join(src.env);
  if (!(joined_env == dst.env)) {
    dst.env = std::move(joined_env);
    changed = true;
  }
  return changed;
}

// ---- Per-block transfer -------------------------------------------------

struct TaintEvent {
  DiagCode code;
  uint32_t pc = 0;
  std::string detail;
};

struct BlockFacts {
  SlotSet reads;
  SlotSet writes;
  bool external_reads = false;
  std::vector<TaintEvent> events;
};

bool IsPrivateData(const TaintedValue& v) {
  return Escalate(v.taint) == Taint::kPrivate;
}

// Abstractly executes `block` over `st`. With `facts` set, records storage
// slot sets and taint-sink events (the reporting mode); without it, only
// the state transformation runs (the fixpoint mode). Returns false when
// the walk aborts (the stack-safety pass has already diagnosed the cause).
bool Transfer(const BasicBlock& block, FlowState& st, BlockFacts* facts) {
  bool taint_successors = false;
  for (const Instruction& ins : block.instructions) {
    const OpcodeInfo& info = GetOpcodeInfo(ins.opcode);
    if (!info.defined || ins.truncated) return false;
    if (st.stack.size() < info.stack_in) return false;
    uint8_t op = ins.opcode;
    auto at = [&](size_t i) -> const TaintedValue& {
      return st.stack[st.stack.size() - 1 - i];
    };
    auto popn = [&](size_t n) { st.stack.resize(st.stack.size() - n); };
    auto push = [&](TaintedValue v) { st.stack.push_back(std::move(v)); };
    // Join-of-escalated-operand-taints: the sound default for any opcode
    // without a more precise rule below.
    auto operand_taint = [&]() {
      Taint t = Taint::kClean;
      for (size_t i = 0; i < info.stack_in; ++i) {
        t = JoinTaint(t, Escalate(at(i).taint));
      }
      return t;
    };
    auto event = [&](DiagCode code, std::string detail) {
      if (facts != nullptr) {
        facts->events.push_back({code, ins.pc, std::move(detail)});
      }
    };
    // An on-chain-visible effect whose operands are clean still correlates
    // with private data when the path to it branched on private data.
    auto effect_event = [&](bool tainted, DiagCode code,
                            const std::string& what) {
      if (tainted) {
        event(code, what + " derives from private input");
      } else if (st.env.control) {
        event(DiagCode::kTaintedBranchEffect,
              what + " executes under a branch on private data");
      }
    };

    if (evm::IsPush(op)) {
      push({ValueSet::Of(ins.immediate), Taint::kClean});
      continue;
    }
    if (evm::IsDup(op)) {
      push(at(evm::DupDepth(op) - 1));
      continue;
    }
    if (evm::IsSwap(op)) {
      size_t top = st.stack.size() - 1;
      std::swap(st.stack[top], st.stack[top - evm::SwapDepth(op)]);
      continue;
    }
    if (evm::IsLog(op)) {
      bool tainted = st.env.memory;
      for (int t = 0; t < evm::LogTopics(op); ++t) {
        tainted = tainted || IsPrivateData(at(2 + t));
      }
      effect_event(tainted, DiagCode::kTaintedLog, "LOG data/topics");
      popn(info.stack_in);
      continue;
    }

    switch (static_cast<Opcode>(op)) {
      case Opcode::CALLDATALOAD: {
        // Word 0 is the 4 public selector bytes + 28 argument bytes; any
        // other offset (or a computed one) is private argument data.
        bool word0 = at(0).values.IsConstant() && at(0).values.Constant().IsZero();
        popn(1);
        push({ValueSet::Top(),
              word0 ? Taint::kSelectorWord : Taint::kPrivate});
        continue;
      }
      case Opcode::SHR: {
        const TaintedValue& shift = at(0);
        const TaintedValue& value = at(1);
        // The dispatch idiom: `PUSH 224 SHR` over the first calldata word
        // discards every argument byte, leaving the public selector.
        bool strips_args = value.taint == Taint::kSelectorWord &&
                           !shift.values.top &&
                           std::all_of(shift.values.values.begin(),
                                       shift.values.values.end(),
                                       [](const U256& s) {
                                         return U256(224) <= s;
                                       });
        ValueSet rv = EvalBinary(op, shift.values, value.values);
        Taint t = strips_args ? Escalate(shift.taint) : operand_taint();
        popn(2);
        push({std::move(rv), t});
        continue;
      }
      case Opcode::ISZERO:
      case Opcode::NOT: {
        ValueSet rv = EvalUnary(op, at(0).values);
        Taint t = operand_taint();
        popn(1);
        push({std::move(rv), t});
        continue;
      }
      case Opcode::SHA3: {
        popn(2);
        push({ValueSet::Top(),
              st.env.memory ? Taint::kPrivate : Taint::kClean});
        continue;
      }
      case Opcode::MLOAD: {
        popn(1);
        push({ValueSet::Top(),
              st.env.memory ? Taint::kPrivate : Taint::kClean});
        continue;
      }
      case Opcode::MSTORE:
      case Opcode::MSTORE8: {
        if (IsPrivateData(at(1))) st.env.memory = true;
        popn(2);
        continue;
      }
      case Opcode::CALLDATACOPY: {
        // Copies argument bytes wholesale; the single-bit memory
        // abstraction taints all of memory.
        st.env.memory = true;
        popn(3);
        continue;
      }
      case Opcode::SLOAD: {
        const TaintedValue& key = at(0);
        if (facts != nullptr) facts->reads.Add(key.values);
        bool tainted = IsPrivateData(key) || st.env.SlotTainted(key.values);
        popn(1);
        push({ValueSet::Top(), tainted ? Taint::kPrivate : Taint::kClean});
        continue;
      }
      case Opcode::SSTORE: {
        const TaintedValue& key = at(0);
        const TaintedValue& value = at(1);
        bool tainted = IsPrivateData(key) || IsPrivateData(value);
        if (facts != nullptr) facts->writes.Add(key.values);
        effect_event(tainted, DiagCode::kTaintedStore, "SSTORE value/key");
        if (tainted || st.env.control) {
          // The slot now holds (or its choice encodes) private data.
          if (key.values.top || IsPrivateData(key)) {
            st.env.storage_any = true;
          } else {
            for (const U256& slot : key.values.values) {
              st.env.storage.insert(slot);
            }
          }
        }
        popn(2);
        continue;
      }
      case Opcode::BALANCE:
      case Opcode::EXTCODESIZE: {
        if (facts != nullptr) facts->external_reads = true;
        Taint t = operand_taint();
        popn(1);
        push({ValueSet::Top(), t});
        continue;
      }
      case Opcode::EXTCODECOPY: {
        if (facts != nullptr) facts->external_reads = true;
        popn(4);
        continue;
      }
      case Opcode::CALL:
      case Opcode::CALLCODE: {
        bool tainted = IsPrivateData(at(1)) || IsPrivateData(at(2)) ||
                       st.env.memory;
        effect_event(tainted, DiagCode::kTaintedCall,
                     std::string(info.name) + " target/value/args");
        popn(info.stack_in);
        push({ValueSet::Top(), Taint::kClean});
        continue;
      }
      case Opcode::DELEGATECALL: {
        bool tainted = IsPrivateData(at(1)) || st.env.memory;
        effect_event(tainted, DiagCode::kTaintedCall, "DELEGATECALL target/args");
        popn(info.stack_in);
        push({ValueSet::Top(), Taint::kClean});
        continue;
      }
      case Opcode::STATICCALL:
        // Read-only; consistent with effect::kStateLeakMask it is not a
        // public sink. (Its local return data stays off-chain.)
        break;
      case Opcode::CREATE:
      case Opcode::CREATE2: {
        bool tainted = IsPrivateData(at(0)) || st.env.memory;
        effect_event(tainted, DiagCode::kTaintedCall,
                     std::string(info.name) + " value/init-code");
        popn(info.stack_in);
        push({ValueSet::Top(), Taint::kClean});
        continue;
      }
      case Opcode::SELFDESTRUCT: {
        effect_event(IsPrivateData(at(0)), DiagCode::kTaintedCall,
                     "SELFDESTRUCT beneficiary");
        popn(1);
        continue;
      }
      case Opcode::RETURN: {
        // RETURN is the paper's sanctioned way to hand a result to the
        // *off-chain* caller; it becomes a public sink only when the
        // returned bytes may carry private data verbatim.
        effect_event(st.env.memory, DiagCode::kTaintedReturn, "RETURN data");
        popn(2);
        continue;
      }
      case Opcode::JUMPI: {
        if (IsPrivateData(at(1))) taint_successors = true;
        popn(2);
        continue;
      }
      case Opcode::JUMP: {
        if (IsPrivateData(at(0))) taint_successors = true;
        popn(1);
        continue;
      }
      default:
        break;
    }

    if (evm::IsFusableBinop(op)) {
      ValueSet rv = EvalBinary(op, at(0).values, at(1).values);
      Taint t = operand_taint();
      popn(2);
      push({std::move(rv), t});
      continue;
    }

    // Generic fallback: ⊤ values, operand-joined taint. Zero-operand
    // environment reads (CALLER, CALLVALUE, TIMESTAMP, ...) come out
    // clean; REVERT data never reaches the chain.
    Taint t = operand_taint();
    popn(info.stack_in);
    for (int i = 0; i < info.stack_out; ++i) push({ValueSet::Top(), t});
  }
  if (taint_successors) st.env.control = true;
  return true;
}

// ---- Graph helpers ------------------------------------------------------

std::vector<uint32_t> Reachable(uint32_t entry,
                                const std::map<uint32_t, BasicBlock>& blocks) {
  std::vector<uint32_t> out;
  if (blocks.find(entry) == blocks.end()) return out;
  std::set<uint32_t> seen{entry};
  std::deque<uint32_t> wl{entry};
  while (!wl.empty()) {
    uint32_t pc = wl.front();
    wl.pop_front();
    out.push_back(pc);
    for (uint32_t succ : blocks.at(pc).successors) {
      if (blocks.find(succ) != blocks.end() && seen.insert(succ).second) {
        wl.push_back(succ);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// The dispatch cascade: blocks from pc 0 following only the JUMPI no-match
// fallthrough. Every selector executes this prefix, so its facts join into
// every per-selector summary.
std::vector<uint32_t> CascadePcs(const std::map<uint32_t, BasicBlock>& blocks) {
  std::vector<uint32_t> out;
  std::set<uint32_t> seen;
  uint32_t pc = 0;
  while (blocks.find(pc) != blocks.end() && seen.insert(pc).second) {
    out.push_back(pc);
    const BasicBlock& b = blocks.at(pc);
    if (b.instructions.empty() ||
        b.instructions.back().opcode != static_cast<uint8_t>(Opcode::JUMPI) ||
        b.successors.size() != 2) {
      break;
    }
    pc = b.successors[1];
  }
  return out;
}

AccessSummary Summarize(const std::vector<uint32_t>& pcs,
                        const std::map<uint32_t, BasicBlock>& blocks,
                        const std::map<uint32_t, BlockFacts>& facts) {
  AccessSummary s;
  for (uint32_t pc : pcs) {
    s.effects |= blocks.at(pc).effects;
    auto it = facts.find(pc);
    if (it == facts.end()) continue;
    s.reads.Join(it->second.reads);
    s.writes.Join(it->second.writes);
    s.external_reads = s.external_reads || it->second.external_reads;
  }
  return s;
}

AccessSummary TopSummary() {
  AccessSummary s;
  s.reads.top = true;
  s.writes.top = true;
  s.effects = ~0u;
  s.external_reads = true;
  return s;
}

bool Contains(const std::vector<uint32_t>& xs, uint32_t x) {
  return std::find(xs.begin(), xs.end(), x) != xs.end();
}

}  // namespace

DataflowResult AnalyzeDataflow(BytesView code, const AnalysisReport& report,
                               const AnalysisOptions& options) {
  DataflowResult out;
  const std::map<uint32_t, BasicBlock>& blocks = report.cfg.blocks;
  if (code.empty() || blocks.empty()) {
    out.per_function.assign(report.functions.size(), AccessSummary{});
    return out;
  }

  // Fixpoint. Entry states only move up a finite-height lattice (value
  // sets widen to ⊤ past kMaxValues, taints along a 3-chain, the env only
  // accumulates), so this terminates; the step cap is a defensive bound.
  std::map<uint32_t, FlowState> in_states;
  in_states.emplace(0u, FlowState{});
  std::deque<uint32_t> worklist{0u};
  size_t steps = 0;
  const size_t max_steps = (blocks.size() + 1) * 512;
  bool converged = true;
  while (!worklist.empty()) {
    if (++steps > max_steps) {
      converged = false;
      break;
    }
    uint32_t pc = worklist.front();
    worklist.pop_front();
    auto bit = blocks.find(pc);
    if (bit == blocks.end()) continue;
    FlowState st = in_states.at(pc);
    if (!Transfer(bit->second, st, nullptr)) continue;
    for (uint32_t succ : bit->second.successors) {
      auto [sit, inserted] = in_states.emplace(succ, st);
      if (inserted) {
        worklist.push_back(succ);
      } else if (JoinInto(sit->second, st)) {
        worklist.push_back(succ);
      }
    }
  }
  if (!converged) {
    out.program = TopSummary();
    out.per_function.assign(report.functions.size(), TopSummary());
    return out;
  }

  // Reporting pass: re-run each block over its fixpoint in-state, now
  // collecting slot sets and taint-sink events.
  std::map<uint32_t, BlockFacts> facts;
  for (const auto& [pc, block] : blocks) {
    auto iit = in_states.find(pc);
    if (iit == in_states.end()) continue;
    FlowState st = iit->second;
    BlockFacts f;
    Transfer(block, st, &f);
    facts.emplace(pc, std::move(f));
  }

  out.program = Summarize(Reachable(0, blocks), blocks, facts);

  std::vector<uint32_t> cascade = CascadePcs(blocks);
  AccessSummary cascade_summary = Summarize(cascade, blocks, facts);

  std::vector<std::vector<uint32_t>> reach_per_fn;
  reach_per_fn.reserve(report.functions.size());
  for (const FunctionReport& fr : report.functions) {
    std::vector<uint32_t> pcs = Reachable(fr.entry_pc, blocks);
    AccessSummary s;
    if (pcs.empty()) {
      s = TopSummary();  // entry outside the CFG: refuse to claim anything
    } else {
      s = Summarize(pcs, blocks, facts);
      s.Join(cascade_summary);
    }
    reach_per_fn.push_back(std::move(pcs));
    out.per_function.push_back(std::move(s));
  }

  // Policy diagnostics. Taint sinks (ANA14–ANA18) come before the
  // summary-level ANA12/ANA13 so the most actionable finding — the exact
  // leaking instruction — is the first error a rejection reports.
  std::set<std::pair<int, uint32_t>> emitted;
  for (size_t i = 0; i < report.functions.size(); ++i) {
    const FunctionReport& fr = report.functions[i];
    const AccessSummary& s = out.per_function[i];
    bool light = Contains(options.light_selectors, fr.selector);
    bool priv = Contains(options.private_selectors, fr.selector);
    if (priv) {
      for (uint32_t pc : reach_per_fn[i]) {
        auto fit = facts.find(pc);
        if (fit == facts.end()) continue;
        for (const TaintEvent& e : fit->second.events) {
          if (!emitted.insert({static_cast<int>(e.code), e.pc}).second) {
            continue;
          }
          out.diagnostics.push_back(
              {e.code, e.pc,
               "in declared-private function " + fr.name + ": " + e.detail,
               static_cast<int64_t>(fr.selector)});
        }
      }
    }
    if ((light || priv) && (s.reads.top || s.writes.top)) {
      out.diagnostics.push_back(
          {DiagCode::kUnresolvedStorageKey, fr.entry_pc,
           "function " + fr.name +
               " has an unresolved storage access set (reads=" +
               s.reads.ToString() + ", writes=" + s.writes.ToString() + ")",
           static_cast<int64_t>(fr.selector)});
    }
    if (priv && (s.effects & effect::kStateLeakMask) != 0) {
      out.diagnostics.push_back(
          {DiagCode::kPrivateStateLeak, fr.entry_pc,
           "declared-private function " + fr.name +
               " can reach state effects: " +
               EffectsToString(s.effects & effect::kStateLeakMask),
           static_cast<int64_t>(fr.selector)});
    }
  }
  return out;
}

}  // namespace onoff::analysis
