#include "analysis/diagnostic.h"

#include <cstdio>

namespace onoff::analysis {

const char* DiagCodeId(DiagCode code) {
  switch (code) {
    case DiagCode::kTruncatedPush:
      return "ANA01";
    case DiagCode::kUndefinedOpcode:
      return "ANA02";
    case DiagCode::kStackUnderflow:
      return "ANA03";
    case DiagCode::kStackOverflow:
      return "ANA04";
    case DiagCode::kStackHeightMismatch:
      return "ANA05";
    case DiagCode::kUnresolvedJump:
      return "ANA06";
    case DiagCode::kBadJumpTarget:
      return "ANA07";
    case DiagCode::kUnreachableCode:
      return "ANA08";
    case DiagCode::kImplicitStop:
      return "ANA09";
    case DiagCode::kUnboundedGas:
      return "ANA10";
    case DiagCode::kGasAboveBlockLimit:
      return "ANA11";
    case DiagCode::kPrivateStateLeak:
      return "ANA12";
    case DiagCode::kUnresolvedStorageKey:
      return "ANA13";
    case DiagCode::kTaintedStore:
      return "ANA14";
    case DiagCode::kTaintedLog:
      return "ANA15";
    case DiagCode::kTaintedCall:
      return "ANA16";
    case DiagCode::kTaintedReturn:
      return "ANA17";
    case DiagCode::kTaintedBranchEffect:
      return "ANA18";
  }
  return "ANA??";
}

const char* DiagCodeName(DiagCode code) {
  switch (code) {
    case DiagCode::kTruncatedPush:
      return "truncated-push";
    case DiagCode::kUndefinedOpcode:
      return "undefined-opcode";
    case DiagCode::kStackUnderflow:
      return "stack-underflow";
    case DiagCode::kStackOverflow:
      return "stack-overflow";
    case DiagCode::kStackHeightMismatch:
      return "stack-height-mismatch";
    case DiagCode::kUnresolvedJump:
      return "unresolved-jump";
    case DiagCode::kBadJumpTarget:
      return "bad-jump-target";
    case DiagCode::kUnreachableCode:
      return "unreachable-code";
    case DiagCode::kImplicitStop:
      return "implicit-stop";
    case DiagCode::kUnboundedGas:
      return "unbounded-gas";
    case DiagCode::kGasAboveBlockLimit:
      return "gas-above-block-limit";
    case DiagCode::kPrivateStateLeak:
      return "private-state-leak";
    case DiagCode::kUnresolvedStorageKey:
      return "unresolved-storage-key";
    case DiagCode::kTaintedStore:
      return "tainted-store";
    case DiagCode::kTaintedLog:
      return "tainted-log";
    case DiagCode::kTaintedCall:
      return "tainted-call";
    case DiagCode::kTaintedReturn:
      return "tainted-return";
    case DiagCode::kTaintedBranchEffect:
      return "tainted-branch-effect";
  }
  return "unknown";
}

bool IsError(DiagCode code) {
  return code != DiagCode::kUnreachableCode && code != DiagCode::kImplicitStop &&
         code != DiagCode::kUnresolvedStorageKey &&
         code != DiagCode::kTaintedBranchEffect;
}

std::string FormatDiagnostic(const Diagnostic& diag,
                             const easm::SourceMap* map) {
  char pc_buf[16];
  std::snprintf(pc_buf, sizeof(pc_buf), "0x%04x", diag.pc);
  std::string out = IsError(diag.code) ? "error " : "warning ";
  out += DiagCodeId(diag.code);
  out += " (";
  out += DiagCodeName(diag.code);
  out += ") at pc ";
  out += pc_buf;
  if (map != nullptr) {
    int line = map->LineAt(diag.pc);
    if (line >= 0) {
      out += ", line ";
      out += std::to_string(line);
    }
    if (const std::string* label = map->LabelAt(diag.pc)) {
      out += ", label '";
      out += *label;
      out += "'";
    }
  }
  out += ": ";
  out += diag.message;
  return out;
}

bool HasError(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    if (IsError(d.code)) return true;
  }
  return false;
}

}  // namespace onoff::analysis
