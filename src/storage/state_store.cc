#include "storage/state_store.h"

#include "obs/metrics.h"
#include "rlp/rlp.h"
#include "trie/trie.h"

namespace onoff::storage {

Bytes EncodeAccountRlp(const AccountData& account, const Hash32& storage_root) {
  std::vector<rlp::Item> fields;
  fields.push_back(rlp::Item::Scalar(account.nonce));
  fields.push_back(rlp::Item::Scalar(account.balance));
  fields.push_back(rlp::Item::String(
      BytesView(storage_root.data(), storage_root.size())));
  fields.push_back(rlp::Item::String(
      BytesView(account.code_hash.data(), account.code_hash.size())));
  return rlp::Encode(rlp::Item::List(std::move(fields)));
}

void StateStore::MarkAccountDirty(const Address& addr) {
  dirty_accounts_.insert(addr);
  root_valid_ = false;
}

void StateStore::MarkSlotDirty(const Address& addr, const U256& key) {
  dirty_accounts_.insert(addr);
  root_valid_ = false;
  PerAccount& pa = per_account_[addr];
  pa.root_valid = false;
  // Under a pending reset the whole trie is rebuilt anyway.
  if (!pa.reset) pa.dirty_slots.insert(key);
}

void StateStore::MarkAccountReset(const Address& addr) {
  dirty_accounts_.insert(addr);
  root_valid_ = false;
  PerAccount& pa = per_account_[addr];
  pa.reset = true;
  pa.root_valid = false;
  pa.dirty_slots.clear();
}

void StateStore::CommitAccount(const Address& addr,
                               const AccountLookup& lookup) {
  std::optional<AccountData> data = lookup(addr);
  if (!data.has_value()) {
    account_trie_.Delete(addr.view());
    per_account_.erase(addr);
    return;
  }

  static obs::Counter* slots_committed =
      obs::GetCounterOrNull("storage.slots_committed");
  PerAccount& pa = per_account_[addr];
  if (pa.reset) {
    // Deleted-and-recreated (or restored) account: rebuild its storage trie
    // from the flat map.
    pa.storage_trie = SecureSharedTrie();
    if (data->storage != nullptr) {
      for (const auto& [key, value] : *data->storage) {
        if (value.IsZero()) continue;
        Bytes key_bytes = key.ToBytes();
        pa.storage_trie.Put(key_bytes,
                            rlp::Encode(rlp::Item::Scalar(value)));
        if (slots_committed != nullptr) slots_committed->Inc();
      }
    }
    pa.reset = false;
    pa.root_valid = false;
  } else if (!pa.dirty_slots.empty()) {
    for (const U256& key : pa.dirty_slots) {
      Bytes key_bytes = key.ToBytes();
      const U256* value = nullptr;
      if (data->storage != nullptr) {
        auto it = data->storage->find(key);
        if (it != data->storage->end() && !it->second.IsZero()) {
          value = &it->second;
        }
      }
      if (value != nullptr) {
        pa.storage_trie.Put(key_bytes,
                            rlp::Encode(rlp::Item::Scalar(*value)));
      } else {
        pa.storage_trie.Delete(key_bytes);
      }
      if (slots_committed != nullptr) slots_committed->Inc();
    }
    pa.root_valid = false;
  }
  pa.dirty_slots.clear();
  if (!pa.root_valid) {
    pa.storage_root = pa.storage_trie.RootHash();
    pa.root_valid = true;
  }
  account_trie_.Put(addr.view(), EncodeAccountRlp(*data, pa.storage_root));
}

Hash32 StateStore::CommitRoot(const AccountLookup& lookup) {
  if (root_valid_) return committed_root_;  // nothing dirty: memoized

  static obs::Histogram* commit_us = obs::GetHistogramOrNull(
      "storage.commit_us", obs::DefaultTimeBucketsUs());
  obs::ScopedTimer span(commit_us);
  static obs::Counter* accounts_committed =
      obs::GetCounterOrNull("storage.accounts_committed");
  if (accounts_committed != nullptr) {
    accounts_committed->Inc(dirty_accounts_.size());
  }

  // Iteration order does not matter: the trie is canonical in its content.
  for (const Address& addr : dirty_accounts_) {
    CommitAccount(addr, lookup);
    pending_persist_.insert(addr);
  }
  dirty_accounts_.clear();
  committed_root_ = account_trie_.RootHash();
  root_valid_ = true;
  return committed_root_;
}

std::vector<Bytes> StateStore::ProveStorage(const Address& addr,
                                            const U256& key) const {
  auto it = per_account_.find(addr);
  if (it == per_account_.end()) return {};
  Bytes key_bytes = key.ToBytes();
  return it->second.storage_trie.Prove(key_bytes);
}

StateSnapshot StateStore::Snapshot() const {
  static obs::Counter* snapshots =
      obs::GetCounterOrNull("storage.snapshots_taken");
  if (snapshots != nullptr) snapshots->Inc();
  StateSnapshot snap;
  snap.root = committed_root_;
  snap.account_trie = account_trie_;  // O(1): shares all nodes
  snap.storage_tries.reserve(per_account_.size());
  for (const auto& [addr, pa] : per_account_) {
    snap.storage_tries.emplace(addr, pa.storage_trie);
  }
  return snap;
}

Hash32 StateStore::StorageRoot(const Address& addr) const {
  auto it = per_account_.find(addr);
  if (it == per_account_.end() || !it->second.root_valid) {
    return trie::Trie::EmptyRoot();
  }
  return it->second.storage_root;
}

namespace {

// The storage root referenced inside an account leaf — the cross-trie edge
// the node-store refcounts follow.
std::vector<Hash32> AccountLeafRefs(BytesView leaf_value) {
  Result<rlp::Item> item = rlp::Decode(leaf_value);
  if (!item.ok() || !item->IsList() || item->list().size() != 4 ||
      !item->list()[2].IsString()) {
    return {};
  }
  const Bytes& sr = item->list()[2].string();
  if (sr.size() != 32) return {};
  Hash32 root;
  std::copy(sr.begin(), sr.end(), root.begin());
  if (root == trie::Trie::EmptyRoot()) return {};  // no node to reference
  return {root};
}

}  // namespace

Status StateStore::Persist(NodeStore& store, uint64_t height) {
  if (!root_valid_) {
    return Status::FailedPrecondition("CommitRoot before Persist");
  }
  Status status = Status::OK();
  auto known = [&store](const Hash32& h) { return store.Contains(h); };
  auto emit = [&store, &status](const Hash32& h, const Bytes& enc,
                                const std::vector<Hash32>& refs) {
    if (status.ok()) status = store.Put(h, enc, refs);
  };
  // Storage tries first so the account leaves' refs resolve in order.
  for (const Address& addr : pending_persist_) {
    auto it = per_account_.find(addr);
    if (it == per_account_.end()) continue;  // deleted since commit
    it->second.storage_trie.PersistNodes(known, emit);
    ONOFF_RETURN_NOT_OK(status);
  }
  account_trie_.PersistNodes(known, emit, AccountLeafRefs);
  ONOFF_RETURN_NOT_OK(status);
  if (committed_root_ != trie::Trie::EmptyRoot()) {
    ONOFF_RETURN_NOT_OK(store.RetainRoot(committed_root_, height));
  }
  pending_persist_.clear();
  return Status::OK();
}

}  // namespace onoff::storage
