// Optional persistent backend for the authenticated state store: an
// append-only, content-addressed node log with reference-counted pruning.
//
// Every hashed trie node is stored once, keyed by its keccak reference.
// Record-level references (a node's hashed children plus the storage roots
// carried inside account leaves) drive refcounts; retaining a block's state
// root pins everything reachable from it. Pruning states older than the
// dispute/challenge window dereferences their roots and cascades: a node
// dies exactly when no retained root can reach it any more, so structurally
// shared subtrees survive as long as any live block needs them.
//
// The on-disk format is a replayable log — node records ('N'), root
// retentions ('R'), prune marks ('P') — so Open() rebuilds the exact
// in-memory index and refcounts. Dead records stay in the file until
// Compact() rewrites it with the live set. With an empty path the store is
// purely in-memory (tests, benches).
//
// Durability: appends are buffered; callers make a block durable with
// Flush() (fflush + fsync) after persisting it. A crash between flushes can
// tear the log's tail — Open() recovers by replaying the longest valid
// prefix and truncating the torn bytes, so the store never becomes
// unopenable from a crash.
//
// Not thread-safe: one writer (the block-commit path) at a time.

#ifndef ONOFFCHAIN_STORAGE_NODE_STORE_H_
#define ONOFFCHAIN_STORAGE_NODE_STORE_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/keccak.h"
#include "support/bytes.h"
#include "support/status.h"

namespace onoff::storage {

struct Hash32Hasher {
  size_t operator()(const Hash32& h) const {
    size_t v = 0;
    for (size_t i = 0; i < sizeof(size_t); ++i) {
      v = (v << 8) | h[i];
    }
    return v;
  }
};

class NodeStore {
 public:
  // Empty path = in-memory only (no log, Open() is a no-op).
  explicit NodeStore(std::string path = "") : path_(std::move(path)) {}
  NodeStore(const NodeStore&) = delete;
  NodeStore& operator=(const NodeStore&) = delete;
  ~NodeStore();

  // Replays an existing log (creates the file on first write otherwise).
  // A torn tail (crash mid-append) is truncated and the valid prefix kept.
  Status Open();

  // Pushes buffered appends to disk (fflush + fsync). Call once per block
  // after Put/RetainRoot/PruneBelow so a crash cannot lose committed
  // blocks. No-op for in-memory stores.
  Status Flush();

  // True when `hash` is live in the store. Dead (pruned) records read as
  // absent so a persistence walk re-emits nodes that come back.
  bool Contains(const Hash32& hash) const;

  // Stores a node and increments the refcount of every reference it
  // carries. Re-putting a live hash is a no-op (content-addressed).
  Status Put(const Hash32& hash, BytesView encoding,
             const std::vector<Hash32>& refs);

  Result<Bytes> Get(const Hash32& hash) const;

  // Pins `root` (and transitively everything it references) as the state
  // root of block `height`.
  Status RetainRoot(const Hash32& root, uint64_t height);

  // Releases every retained root with height < `cutoff_height` and
  // cascades refcounts; returns the number of node records freed.
  size_t PruneBelow(uint64_t cutoff_height);

  // Historical read: walks stored nodes from `root` for keccak256(key)
  // (secure-trie keyspace). Returns the value, or nullopt when the key is
  // provably absent under that root.
  Result<std::optional<Bytes>> LookupSecure(const Hash32& root,
                                            BytesView key) const;

  // Rewrites the log with only live records (drops dead bytes).
  Status Compact();

  size_t live_nodes() const { return nodes_.size(); }
  size_t retained_roots() const { return retained_.size(); }
  uint64_t pruned_total() const { return pruned_total_; }
  // Bytes appended to the log so far (0 for in-memory stores).
  uint64_t file_bytes() const { return file_bytes_; }
  const std::string& path() const { return path_; }

 private:
  struct Record {
    Bytes enc;
    std::vector<Hash32> refs;
    uint64_t refcount = 0;
  };

  // Open() body: replay + append-handle creation. On failure the caller
  // clears the partial state so the store stays unopened and consistent.
  Status OpenImpl();
  Status AppendNode(const Hash32& hash, const Record& rec);
  Status AppendRetain(const Hash32& root, uint64_t height);
  Status AppendPrune(uint64_t cutoff_height);
  Status Append(const Bytes& payload);
  // Core ops, shared between the public API (journal=true) and log replay
  // (journal=false).
  Status PutImpl(const Hash32& hash, BytesView encoding,
                 const std::vector<Hash32>& refs, bool journal);
  Status RetainImpl(const Hash32& root, uint64_t height, bool journal);
  size_t PruneImpl(uint64_t cutoff_height, bool journal);
  void Deref(const Hash32& hash, size_t* freed);

  std::string path_;
  bool opened_ = false;
  std::FILE* out_ = nullptr;  // append handle (file-backed only)
  std::unordered_map<Hash32, Record, Hash32Hasher> nodes_;
  // References observed before their target record arrived (log replay and
  // compacted logs are order-independent this way).
  std::unordered_map<Hash32, uint64_t, Hash32Hasher> pending_refs_;
  // height -> retained state roots, ascending (pruning order).
  std::multimap<uint64_t, Hash32> retained_;
  uint64_t pruned_total_ = 0;
  uint64_t file_bytes_ = 0;
};

}  // namespace onoff::storage

#endif  // ONOFFCHAIN_STORAGE_NODE_STORE_H_
