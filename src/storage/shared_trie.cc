#include "storage/shared_trie.h"

#include <atomic>
#include <cassert>
#include <mutex>

#include "obs/metrics.h"
#include "rlp/rlp.h"

namespace onoff::storage {

namespace internal {

// Immutable after construction (mutated only while being built inside one
// Insert/Delete call, before anyone else can see it). The memoized encoding
// is write-once behind a once_flag so concurrent hashers of a shared
// snapshot are safe.
struct SharedNode {
  enum class Type : uint8_t { kLeaf, kExtension, kBranch };

  Type type = Type::kLeaf;
  std::vector<uint8_t> path;  // leaf/extension
  Bytes value;                // leaf value, or the value slot of a branch
  NodeRef child;              // extension
  std::array<NodeRef, 16> children;  // branch

  mutable std::once_flag enc_once;
  mutable std::atomic<bool> enc_ready{false};
  mutable Bytes enc;  // memoized RLP encoding
};

}  // namespace internal

namespace {

using internal::SharedNode;
using Type = SharedNode::Type;
using Nibbles = std::vector<uint8_t>;

Nibbles Sub(const Nibbles& n, size_t from) {
  return Nibbles(n.begin() + from, n.end());
}

size_t CommonPrefix(const Nibbles& a, const Nibbles& b) {
  size_t i = 0;
  while (i < a.size() && i < b.size() && a[i] == b[i]) ++i;
  return i;
}

NodeRef MakeLeaf(Nibbles path, Bytes value) {
  auto n = std::make_shared<SharedNode>();
  n->type = Type::kLeaf;
  n->path = std::move(path);
  n->value = std::move(value);
  return n;
}

NodeRef MakeExtension(Nibbles path, NodeRef child) {
  auto n = std::make_shared<SharedNode>();
  n->type = Type::kExtension;
  n->path = std::move(path);
  n->child = std::move(child);
  return n;
}

std::shared_ptr<SharedNode> MakeBranch() {
  auto n = std::make_shared<SharedNode>();
  n->type = Type::kBranch;
  return n;
}

// A mutable copy of a branch for path-copying: shares all children refs.
std::shared_ptr<SharedNode> CopyBranch(const SharedNode& src) {
  auto n = MakeBranch();
  n->value = src.value;
  n->children = src.children;
  return n;
}

// ---- Hashing (memoized per node) ----

Bytes EncodeNode(const SharedNode* node);

const Bytes& EncodedMemo(const SharedNode* node) {
  if (node->enc_ready.load(std::memory_order_acquire)) {
    static obs::Counter* hits =
        obs::GetCounterOrNull("storage.trie_node_cache_hits");
    if (hits != nullptr) hits->Inc();
    return node->enc;
  }
  std::call_once(node->enc_once, [node] {
    node->enc = EncodeNode(node);
    node->enc_ready.store(true, std::memory_order_release);
    static obs::Counter* computed =
        obs::GetCounterOrNull("storage.trie_nodes_hashed");
    if (computed != nullptr) computed->Inc();
  });
  return node->enc;
}

// Node reference inside a parent: raw encoding if < 32 bytes, else the
// keccak wrapped as an RLP string (same rule as trie::Trie).
Bytes RefNode(const SharedNode* node) {
  const Bytes& enc = EncodedMemo(node);
  if (enc.size() < 32) return enc;  // embedded structurally
  Hash32 h = Keccak256(enc);
  return rlp::EncodeString(BytesView(h.data(), h.size()));
}

Bytes EncodeNode(const SharedNode* node) {
  switch (node->type) {
    case Type::kLeaf: {
      std::vector<Bytes> fields;
      fields.push_back(
          rlp::EncodeString(trie::HexPrefixEncode(node->path, true)));
      fields.push_back(rlp::EncodeString(node->value));
      return rlp::EncodeList(fields);
    }
    case Type::kExtension: {
      std::vector<Bytes> fields;
      fields.push_back(
          rlp::EncodeString(trie::HexPrefixEncode(node->path, false)));
      fields.push_back(RefNode(node->child.get()));
      return rlp::EncodeList(fields);
    }
    case Type::kBranch: {
      std::vector<Bytes> fields;
      for (int i = 0; i < 16; ++i) {
        if (node->children[i] == nullptr) {
          fields.push_back(rlp::EncodeString(Bytes{}));
        } else {
          fields.push_back(RefNode(node->children[i].get()));
        }
      }
      fields.push_back(rlp::EncodeString(node->value));
      return rlp::EncodeList(fields);
    }
  }
  return {};  // unreachable
}

// ---- Insert (path-copying) ----

bool SameValue(const Bytes& a, BytesView b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

// Returns the original reference unchanged when the write is a no-op, so
// untouched spines keep their memoized encodings.
NodeRef Insert(const NodeRef& node, const Nibbles& key, BytesView value) {
  if (node == nullptr) {
    return MakeLeaf(key, Bytes(value.begin(), value.end()));
  }
  switch (node->type) {
    case Type::kLeaf: {
      size_t cp = CommonPrefix(node->path, key);
      if (cp == node->path.size() && cp == key.size()) {
        if (SameValue(node->value, value)) return node;
        return MakeLeaf(key, Bytes(value.begin(), value.end()));
      }
      // Split into a branch (optionally under an extension for the shared
      // prefix).
      auto branch = MakeBranch();
      if (cp == node->path.size()) {
        branch->value = node->value;
      } else {
        uint8_t idx = node->path[cp];
        branch->children[idx] = MakeLeaf(Sub(node->path, cp + 1), node->value);
      }
      if (cp == key.size()) {
        branch->value = Bytes(value.begin(), value.end());
      } else {
        uint8_t idx = key[cp];
        branch->children[idx] =
            MakeLeaf(Sub(key, cp + 1), Bytes(value.begin(), value.end()));
      }
      if (cp > 0) {
        return MakeExtension(Nibbles(key.begin(), key.begin() + cp),
                             std::move(branch));
      }
      return branch;
    }
    case Type::kExtension: {
      size_t cp = CommonPrefix(node->path, key);
      if (cp == node->path.size()) {
        NodeRef updated = Insert(node->child, Sub(key, cp), value);
        if (updated == node->child) return node;
        return MakeExtension(node->path, std::move(updated));
      }
      // The extension splits; the old child subtree is shared as-is.
      auto branch = MakeBranch();
      uint8_t ext_idx = node->path[cp];
      Nibbles ext_rest = Sub(node->path, cp + 1);
      if (ext_rest.empty()) {
        branch->children[ext_idx] = node->child;
      } else {
        branch->children[ext_idx] =
            MakeExtension(std::move(ext_rest), node->child);
      }
      if (cp == key.size()) {
        branch->value = Bytes(value.begin(), value.end());
      } else {
        branch->children[key[cp]] =
            MakeLeaf(Sub(key, cp + 1), Bytes(value.begin(), value.end()));
      }
      if (cp > 0) {
        return MakeExtension(Nibbles(key.begin(), key.begin() + cp),
                             std::move(branch));
      }
      return branch;
    }
    case Type::kBranch: {
      if (key.empty()) {
        if (SameValue(node->value, value)) return node;
        auto copy = CopyBranch(*node);
        copy->value = Bytes(value.begin(), value.end());
        return copy;
      }
      uint8_t idx = key[0];
      NodeRef updated = Insert(node->children[idx], Sub(key, 1), value);
      if (updated == node->children[idx]) return node;
      auto copy = CopyBranch(*node);
      copy->children[idx] = std::move(updated);
      return copy;
    }
  }
  return node;  // unreachable
}

// ---- Delete (path-copying) ----

// Re-collapses an extension over a possibly degenerated child. `path` and
// `child` describe the candidate extension (not yet constructed).
NodeRef NormalizeExtension(const Nibbles& path, NodeRef child) {
  switch (child->type) {
    case Type::kLeaf: {
      Nibbles merged = path;
      merged.insert(merged.end(), child->path.begin(), child->path.end());
      return MakeLeaf(std::move(merged), child->value);
    }
    case Type::kExtension: {
      Nibbles merged = path;
      merged.insert(merged.end(), child->path.begin(), child->path.end());
      return MakeExtension(std::move(merged), child->child);
    }
    case Type::kBranch:
      return MakeExtension(path, std::move(child));
  }
  return nullptr;  // unreachable
}

// Collapses a fresh branch copy left with a single child and no value, or
// only a value.
NodeRef NormalizeBranch(std::shared_ptr<SharedNode> node) {
  int live = -1;
  int count = 0;
  for (int i = 0; i < 16; ++i) {
    if (node->children[i] != nullptr) {
      live = i;
      ++count;
    }
  }
  bool has_value = !node->value.empty();
  if (count == 0 && !has_value) return nullptr;
  if (count == 0 && has_value) return MakeLeaf(Nibbles{}, node->value);
  if (count == 1 && !has_value) {
    NodeRef child = node->children[live];
    Nibbles merged{static_cast<uint8_t>(live)};
    return NormalizeExtension(merged, std::move(child));
  }
  return node;
}

NodeRef Remove(const NodeRef& node, const Nibbles& key) {
  if (node == nullptr) return nullptr;
  switch (node->type) {
    case Type::kLeaf:
      if (node->path == key) return nullptr;
      return node;  // key not present: unchanged
    case Type::kExtension: {
      size_t cp = CommonPrefix(node->path, key);
      if (cp != node->path.size()) return node;  // key not present
      NodeRef updated = Remove(node->child, Sub(key, cp));
      if (updated == node->child) return node;
      if (updated == nullptr) return nullptr;
      return NormalizeExtension(node->path, std::move(updated));
    }
    case Type::kBranch: {
      if (key.empty()) {
        if (node->value.empty()) return node;  // nothing to delete
        auto copy = CopyBranch(*node);
        copy->value.clear();
        return NormalizeBranch(std::move(copy));
      }
      uint8_t idx = key[0];
      NodeRef updated = Remove(node->children[idx], Sub(key, 1));
      if (updated == node->children[idx]) return node;
      auto copy = CopyBranch(*node);
      copy->children[idx] = std::move(updated);
      return NormalizeBranch(std::move(copy));
    }
  }
  return node;  // unreachable
}

// ---- Lookup ----

const SharedNode* Find(const SharedNode* node, const Nibbles& key,
                       size_t pos) {
  if (node == nullptr) return nullptr;
  switch (node->type) {
    case Type::kLeaf: {
      Nibbles rest(key.begin() + pos, key.end());
      return node->path == rest ? node : nullptr;
    }
    case Type::kExtension: {
      if (key.size() - pos < node->path.size()) return nullptr;
      for (size_t i = 0; i < node->path.size(); ++i) {
        if (key[pos + i] != node->path[i]) return nullptr;
      }
      return Find(node->child.get(), key, pos + node->path.size());
    }
    case Type::kBranch: {
      if (pos == key.size()) {
        return node->value.empty() ? nullptr : node;
      }
      return Find(node->children[key[pos]].get(), key, pos + 1);
    }
  }
  return nullptr;  // unreachable
}

// ---- Persistence walk ----

// Hash references physically contained in this node's record: hashed child
// refs (embedded descendants' included — an embedded node rides inside this
// record and can itself only reference further embedded nodes or nothing,
// since a hash ref alone is 33 encoded bytes) plus leaf-value extras.
void CollectRecordRefs(const SharedNode* node, const LeafRefs& leaf_refs,
                       std::vector<Hash32>* out) {
  switch (node->type) {
    case Type::kLeaf:
      if (leaf_refs != nullptr) {
        for (Hash32& h : leaf_refs(node->value)) out->push_back(h);
      }
      return;
    case Type::kExtension: {
      const Bytes& enc = EncodedMemo(node->child.get());
      if (enc.size() >= 32) {
        out->push_back(Keccak256(enc));
      } else {
        CollectRecordRefs(node->child.get(), leaf_refs, out);
      }
      return;
    }
    case Type::kBranch: {
      for (const NodeRef& child : node->children) {
        if (child == nullptr) continue;
        const Bytes& enc = EncodedMemo(child.get());
        if (enc.size() >= 32) {
          out->push_back(Keccak256(enc));
        } else {
          CollectRecordRefs(child.get(), leaf_refs, out);
        }
      }
      if (!node->value.empty() && leaf_refs != nullptr) {
        for (Hash32& h : leaf_refs(node->value)) out->push_back(h);
      }
      return;
    }
  }
}

void ForEachHashedChild(const SharedNode* node,
                        const std::function<void(const NodeRef&)>& fn) {
  auto visit = [&fn](const NodeRef& child) {
    if (child != nullptr && EncodedMemo(child.get()).size() >= 32) fn(child);
  };
  if (node->type == Type::kExtension) visit(node->child);
  if (node->type == Type::kBranch) {
    for (const NodeRef& child : node->children) visit(child);
  }
}

void PersistWalk(const NodeRef& node, const PersistKnown& known,
                 const PersistEmit& emit, const LeafRefs& leaf_refs,
                 bool is_root) {
  const Bytes& enc = EncodedMemo(node.get());
  // Embedded nodes travel inside their parent's record; only the root is
  // stored standalone regardless of size (it is referenced by hash).
  if (!is_root && enc.size() < 32) return;
  Hash32 h = Keccak256(enc);
  if (known(h)) return;  // subtree already stored (and its refs counted)
  ForEachHashedChild(node.get(), [&](const NodeRef& child) {
    PersistWalk(child, known, emit, leaf_refs, false);
  });
  std::vector<Hash32> refs;
  CollectRecordRefs(node.get(), leaf_refs, &refs);
  emit(h, enc, refs);
}

size_t Count(const SharedNode* node) {
  if (node == nullptr) return 0;
  size_t n = 1;
  if (node->type == Type::kExtension) n += Count(node->child.get());
  if (node->type == Type::kBranch) {
    for (const NodeRef& child : node->children) n += Count(child.get());
  }
  return n;
}

}  // namespace

void SharedTrie::Put(BytesView key, BytesView value) {
  Nibbles nibbles = trie::BytesToNibbles(key);
  if (value.empty()) {
    root_ = Remove(root_, nibbles);
    return;
  }
  root_ = Insert(root_, nibbles, value);
}

void SharedTrie::Delete(BytesView key) {
  root_ = Remove(root_, trie::BytesToNibbles(key));
}

Result<Bytes> SharedTrie::Get(BytesView key) const {
  Nibbles nibbles = trie::BytesToNibbles(key);
  const SharedNode* n = Find(root_.get(), nibbles, 0);
  if (n == nullptr) return Status::NotFound("key not in trie");
  return n->value;
}

Hash32 SharedTrie::RootHash() const {
  if (root_ == nullptr) return trie::Trie::EmptyRoot();
  return Keccak256(EncodedMemo(root_.get()));
}

std::vector<Bytes> SharedTrie::Prove(BytesView key) const {
  std::vector<Bytes> proof;
  Nibbles nibbles = trie::BytesToNibbles(key);
  const SharedNode* node = root_.get();
  size_t pos = 0;
  bool is_root = true;
  while (node != nullptr) {
    const Bytes& enc = EncodedMemo(node);
    if (is_root || enc.size() >= 32) proof.push_back(enc);
    is_root = false;
    switch (node->type) {
      case Type::kLeaf:
        return proof;
      case Type::kExtension: {
        if (nibbles.size() - pos < node->path.size()) return proof;
        for (size_t i = 0; i < node->path.size(); ++i) {
          if (nibbles[pos + i] != node->path[i]) return proof;
        }
        pos += node->path.size();
        node = node->child.get();
        break;
      }
      case Type::kBranch: {
        if (pos == nibbles.size()) return proof;
        node = node->children[nibbles[pos]].get();
        ++pos;
        break;
      }
    }
  }
  return proof;
}

void SharedTrie::PersistNodes(const PersistKnown& known,
                              const PersistEmit& emit,
                              const LeafRefs& leaf_refs) const {
  if (root_ == nullptr) return;
  PersistWalk(root_, known, emit, leaf_refs, /*is_root=*/true);
}

size_t SharedTrie::CountNodes() const { return Count(root_.get()); }

}  // namespace onoff::storage
