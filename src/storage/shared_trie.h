// Copy-on-write Merkle Patricia Trie with structurally shared, immutable
// interior nodes — the commitment layer of the incremental state store.
//
// Unlike `trie::Trie` (unique ownership, full re-encode on every RootHash),
// `SharedTrie` holds `shared_ptr<const Node>` references. Mutation is
// path-copying: Put/Delete rebuild only the spine from the root to the
// touched leaf and share every untouched subtree with the previous version.
// Each immutable node memoizes its RLP encoding (and therefore its keccak
// reference) the first time it is hashed, so recomputing the root after k
// changed keys re-hashes O(k · depth) nodes instead of the whole trie.
//
// Copying a SharedTrie is O(1) and yields an independent snapshot: the copy
// and the original share all nodes until one of them writes. This is what
// makes per-block state snapshots and `WorldState::Clone()` cheap.
//
// Root hashes are byte-identical to `trie::Trie` for the same content (same
// node kinds, hex-prefix paths, embed-if-shorter-than-32-bytes rule), which
// the differential tests assert.

#ifndef ONOFFCHAIN_STORAGE_SHARED_TRIE_H_
#define ONOFFCHAIN_STORAGE_SHARED_TRIE_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "crypto/keccak.h"
#include "support/bytes.h"
#include "support/status.h"
#include "trie/trie.h"

namespace onoff::storage {

namespace internal {
struct SharedNode;
}  // namespace internal

using NodeRef = std::shared_ptr<const internal::SharedNode>;

// Called for every hashed (standalone) node during a persistence walk:
// (node hash, RLP encoding, hashes this record references). References are
// the node's hashed children plus any extra references reported by
// `LeafRefs` for leaf values physically contained in this record (embedded
// descendants included) — the node-store refcounts prune exactly on these.
using PersistEmit = std::function<void(
    const Hash32&, const Bytes&, const std::vector<Hash32>&)>;
// Returns true when the store already holds this node; the walk then skips
// the whole subtree (a node's references were counted when it was first
// stored).
using PersistKnown = std::function<bool(const Hash32&)>;
// Extra hash references carried inside a leaf value (the account RLP's
// storage root); may be null.
using LeafRefs = std::function<std::vector<Hash32>(BytesView leaf_value)>;

class SharedTrie {
 public:
  SharedTrie() = default;
  // Copies share all nodes (O(1) snapshot).
  SharedTrie(const SharedTrie&) = default;
  SharedTrie& operator=(const SharedTrie&) = default;
  SharedTrie(SharedTrie&&) noexcept = default;
  SharedTrie& operator=(SharedTrie&&) noexcept = default;

  // Inserts or overwrites; an empty value deletes the key (Ethereum rule).
  // Writing the value a key already holds is a no-op that preserves every
  // existing node (and its memoized hash).
  void Put(BytesView key, BytesView value);
  void Delete(BytesView key);
  Result<Bytes> Get(BytesView key) const;
  bool Contains(BytesView key) const { return Get(key).ok(); }

  // Keccak commitment; only nodes without a memoized encoding are hashed.
  Hash32 RootHash() const;
  bool IsEmpty() const { return root_ == nullptr; }

  // Merkle proof with the same shape as trie::Trie::Prove; verify with
  // trie::Trie::VerifyProof.
  std::vector<Bytes> Prove(BytesView key) const;

  // Walks the trie emitting every hashed node the store does not know yet
  // (children before parents). The root is always emitted when unknown,
  // even if its encoding is shorter than 32 bytes, because account records
  // reference storage roots by hash unconditionally.
  void PersistNodes(const PersistKnown& known, const PersistEmit& emit,
                    const LeafRefs& leaf_refs = nullptr) const;

  // The root reference — identity comparisons let tests assert structural
  // sharing (same pointer == same subtree, byte-for-byte).
  const NodeRef& root() const { return root_; }

  // Number of reachable nodes (test/bench introspection; O(n)).
  size_t CountNodes() const;

 private:
  NodeRef root_;
};

// SharedTrie keyed by keccak256(key) — state and storage tries.
class SecureSharedTrie {
 public:
  void Put(BytesView key, BytesView value) {
    Hash32 h = Keccak256(key);
    inner_.Put(BytesView(h.data(), h.size()), value);
  }
  void Delete(BytesView key) {
    Hash32 h = Keccak256(key);
    inner_.Delete(BytesView(h.data(), h.size()));
  }
  Result<Bytes> Get(BytesView key) const {
    Hash32 h = Keccak256(key);
    return inner_.Get(BytesView(h.data(), h.size()));
  }
  Hash32 RootHash() const { return inner_.RootHash(); }
  bool IsEmpty() const { return inner_.IsEmpty(); }
  std::vector<Bytes> Prove(BytesView key) const {
    Hash32 h = Keccak256(key);
    return inner_.Prove(BytesView(h.data(), h.size()));
  }
  void PersistNodes(const PersistKnown& known, const PersistEmit& emit,
                    const LeafRefs& leaf_refs = nullptr) const {
    inner_.PersistNodes(known, emit, leaf_refs);
  }
  const SharedTrie& raw() const { return inner_; }
  size_t CountNodes() const { return inner_.CountNodes(); }

 private:
  SharedTrie inner_;
};

}  // namespace onoff::storage

#endif  // ONOFFCHAIN_STORAGE_SHARED_TRIE_H_
