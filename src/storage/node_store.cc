#include "storage/node_store.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "obs/metrics.h"
#include "support/log.h"
#include "rlp/rlp.h"
#include "trie/trie.h"

namespace onoff::storage {

namespace {

constexpr char kMagic[] = "ONOFFNS1";
constexpr size_t kMagicLen = 8;

void PutU32(Bytes* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xff);
}
void PutU64(Bytes* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

class LogReader {
 public:
  LogReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  bool ReadByte(uint8_t* v) {
    if (pos_ + 1 > size_) return false;
    *v = data_[pos_++];
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > size_) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= uint32_t(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > size_) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= uint64_t(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return true;
  }
  bool ReadHash(Hash32* h) {
    if (pos_ + 32 > size_) return false;
    std::copy(data_ + pos_, data_ + pos_ + 32, h->begin());
    pos_ += 32;
    return true;
  }
  bool ReadBytes(size_t n, Bytes* out) {
    if (pos_ + n > size_) return false;
    out->assign(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return true;
  }
  bool AtEnd() const { return pos_ == size_; }
  size_t pos() const { return pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

NodeStore::~NodeStore() {
  if (out_ != nullptr) {
    std::fflush(out_);
    std::fclose(out_);
  }
}

Status NodeStore::Open() {
  if (opened_) return Status::OK();
  if (path_.empty()) {
    opened_ = true;
    return Status::OK();
  }
  Status st = OpenImpl();
  if (!st.ok()) {
    // Drop any partially replayed state so this store never serves (or a
    // retried Open() never double-counts) a half-rebuilt index.
    nodes_.clear();
    pending_refs_.clear();
    retained_.clear();
    file_bytes_ = 0;
    if (out_ != nullptr) {
      std::fclose(out_);
      out_ = nullptr;
    }
    return st;
  }
  opened_ = true;
  return Status::OK();
}

Status NodeStore::OpenImpl() {
  // Replay an existing log, if any. A crash can tear the tail (appends are
  // only flushed per block), so recover the longest valid prefix instead of
  // refusing to open.
  bool torn = false;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in.good()) {
      Bytes data((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
      if (data.size() < kMagicLen) {
        // Crash while writing the very first bytes: start over.
        torn = !data.empty();
      } else if (!std::equal(data.begin(), data.begin() + kMagicLen, kMagic)) {
        // A full-size header that is not ours is foreign data, not a torn
        // write — refuse rather than clobber it.
        return Status::InvalidArgument("node store log has bad magic: " +
                                       path_);
      } else {
        LogReader reader(data.data() + kMagicLen, data.size() - kMagicLen);
        size_t replayed = 0;  // offset past the last fully applied record
        while (!reader.AtEnd() && !torn) {
          uint8_t op = 0;
          if (!reader.ReadByte(&op)) {
            torn = true;
            break;
          }
          if (op == 'N') {
            uint32_t enc_len = 0;
            uint32_t ref_count = 0;
            Hash32 hash;
            Bytes enc;
            if (!reader.ReadU32(&enc_len) || !reader.ReadU32(&ref_count) ||
                !reader.ReadHash(&hash) || !reader.ReadBytes(enc_len, &enc)) {
              torn = true;
              break;
            }
            std::vector<Hash32> refs(ref_count);
            bool refs_ok = true;
            for (uint32_t i = 0; i < ref_count; ++i) {
              if (!reader.ReadHash(&refs[i])) {
                refs_ok = false;
                break;
              }
            }
            if (!refs_ok) {
              torn = true;
              break;
            }
            ONOFF_RETURN_NOT_OK(PutImpl(hash, enc, refs, /*journal=*/false));
          } else if (op == 'R') {
            uint64_t height = 0;
            Hash32 root;
            if (!reader.ReadU64(&height) || !reader.ReadHash(&root)) {
              torn = true;
              break;
            }
            ONOFF_RETURN_NOT_OK(RetainImpl(root, height, /*journal=*/false));
          } else if (op == 'P') {
            uint64_t cutoff = 0;
            if (!reader.ReadU64(&cutoff)) {
              torn = true;
              break;
            }
            PruneImpl(cutoff, /*journal=*/false);
          } else {
            // Garbage op byte: everything from here on is torn-write debris.
            torn = true;
            break;
          }
          replayed = reader.pos();
        }
        file_bytes_ = kMagicLen + replayed;
      }
    }
  }
  if (torn) {
    ONOFF_LOG(log::Level::kWarn, "storage",
              "node store log %s has a torn tail; recovered %llu bytes",
              path_.c_str(), static_cast<unsigned long long>(file_bytes_));
    std::error_code ec;
    std::filesystem::resize_file(path_, file_bytes_, ec);
    if (ec) {
      return Status::Internal("cannot truncate torn node store log: " + path_);
    }
  }

  out_ = std::fopen(path_.c_str(), "ab");
  if (out_ == nullptr) {
    return Status::Internal("cannot open node store log: " + path_);
  }
  if (file_bytes_ == 0) {
    if (std::fwrite(kMagic, 1, kMagicLen, out_) != kMagicLen) {
      return Status::Internal("cannot write node store header: " + path_);
    }
    file_bytes_ = kMagicLen;
  }
  return Status::OK();
}

Status NodeStore::Flush() {
  if (out_ == nullptr) return Status::OK();
  if (std::fflush(out_) != 0) {
    return Status::Internal("node store log flush failed: " + path_);
  }
#if defined(__unix__) || defined(__APPLE__)
  if (::fsync(fileno(out_)) != 0) {
    return Status::Internal("node store log fsync failed: " + path_);
  }
#endif
  return Status::OK();
}

bool NodeStore::Contains(const Hash32& hash) const {
  return nodes_.find(hash) != nodes_.end();
}

Result<Bytes> NodeStore::Get(const Hash32& hash) const {
  auto it = nodes_.find(hash);
  if (it == nodes_.end()) return Status::NotFound("node not in store");
  return it->second.enc;
}

Status NodeStore::Append(const Bytes& payload) {
  if (out_ == nullptr) return Status::OK();  // in-memory store
  if (std::fwrite(payload.data(), 1, payload.size(), out_) != payload.size()) {
    return Status::Internal("node store log write failed: " + path_);
  }
  file_bytes_ += payload.size();
  return Status::OK();
}

Status NodeStore::AppendNode(const Hash32& hash, const Record& rec) {
  Bytes payload;
  payload.push_back('N');
  PutU32(&payload, static_cast<uint32_t>(rec.enc.size()));
  PutU32(&payload, static_cast<uint32_t>(rec.refs.size()));
  payload.insert(payload.end(), hash.begin(), hash.end());
  payload.insert(payload.end(), rec.enc.begin(), rec.enc.end());
  for (const Hash32& ref : rec.refs) {
    payload.insert(payload.end(), ref.begin(), ref.end());
  }
  return Append(payload);
}

Status NodeStore::AppendRetain(const Hash32& root, uint64_t height) {
  Bytes payload;
  payload.push_back('R');
  PutU64(&payload, height);
  payload.insert(payload.end(), root.begin(), root.end());
  return Append(payload);
}

Status NodeStore::AppendPrune(uint64_t cutoff_height) {
  Bytes payload;
  payload.push_back('P');
  PutU64(&payload, cutoff_height);
  return Append(payload);
}

Status NodeStore::PutImpl(const Hash32& hash, BytesView encoding,
                          const std::vector<Hash32>& refs, bool journal) {
  if (Contains(hash)) return Status::OK();  // content-addressed: no-op
  Record rec;
  rec.enc.assign(encoding.begin(), encoding.end());
  rec.refs = refs;
  // Journal first: a failed append must leave the in-memory store (and in
  // particular the refcounts below) untouched so a retry starts clean.
  if (journal) ONOFF_RETURN_NOT_OK(AppendNode(hash, rec));
  // References counted before this record arrived (replay order freedom).
  auto pending = pending_refs_.find(hash);
  if (pending != pending_refs_.end()) {
    rec.refcount = pending->second;
    pending_refs_.erase(pending);
  }
  for (const Hash32& ref : refs) {
    auto it = nodes_.find(ref);
    if (it != nodes_.end()) {
      ++it->second.refcount;
    } else {
      ++pending_refs_[ref];
    }
  }
  nodes_.emplace(hash, std::move(rec));
  static obs::Counter* persisted =
      obs::GetCounterOrNull("storage.nodes_persisted");
  if (persisted != nullptr) persisted->Inc();
  return Status::OK();
}

Status NodeStore::Put(const Hash32& hash, BytesView encoding,
                      const std::vector<Hash32>& refs) {
  return PutImpl(hash, encoding, refs, /*journal=*/true);
}

Status NodeStore::RetainImpl(const Hash32& root, uint64_t height,
                             bool journal) {
  // Journal first so a failed append leaves the store unchanged.
  if (journal) ONOFF_RETURN_NOT_OK(AppendRetain(root, height));
  auto it = nodes_.find(root);
  if (it != nodes_.end()) {
    ++it->second.refcount;
  } else {
    ++pending_refs_[root];
  }
  retained_.emplace(height, root);
  return Status::OK();
}

Status NodeStore::RetainRoot(const Hash32& root, uint64_t height) {
  return RetainImpl(root, height, /*journal=*/true);
}

void NodeStore::Deref(const Hash32& hash, size_t* freed) {
  auto it = nodes_.find(hash);
  if (it == nodes_.end()) {
    auto pending = pending_refs_.find(hash);
    if (pending != pending_refs_.end() && --pending->second == 0) {
      pending_refs_.erase(pending);
    }
    return;
  }
  if (it->second.refcount > 0) --it->second.refcount;
  if (it->second.refcount > 0) return;
  std::vector<Hash32> refs = std::move(it->second.refs);
  nodes_.erase(it);
  ++*freed;
  for (const Hash32& ref : refs) Deref(ref, freed);
}

size_t NodeStore::PruneImpl(uint64_t cutoff_height, bool journal) {
  size_t freed = 0;
  bool released = false;
  while (!retained_.empty() && retained_.begin()->first < cutoff_height) {
    Hash32 root = retained_.begin()->second;
    retained_.erase(retained_.begin());
    Deref(root, &freed);
    released = true;
  }
  if (released && journal) {
    Status st = AppendPrune(cutoff_height);
    (void)st;  // a failed prune mark leaves extra live data, never corruption
  }
  pruned_total_ += freed;
  if (freed > 0) {
    static obs::Counter* pruned = obs::GetCounterOrNull("storage.nodes_pruned");
    if (pruned != nullptr) pruned->Inc(freed);
  }
  return freed;
}

size_t NodeStore::PruneBelow(uint64_t cutoff_height) {
  return PruneImpl(cutoff_height, /*journal=*/true);
}

Result<std::optional<Bytes>> NodeStore::LookupSecure(const Hash32& root,
                                                     BytesView key) const {
  if (root == trie::Trie::EmptyRoot()) return std::optional<Bytes>(std::nullopt);
  Hash32 hashed = Keccak256(key);
  std::vector<uint8_t> nibbles =
      trie::BytesToNibbles(BytesView(hashed.data(), hashed.size()));

  ONOFF_ASSIGN_OR_RETURN(Bytes enc, Get(root));
  ONOFF_ASSIGN_OR_RETURN(rlp::Item item, rlp::Decode(enc));
  size_t pos = 0;
  for (;;) {
    if (!item.IsList()) {
      return Status::VerificationFailed("stored node is not a list");
    }
    const std::vector<rlp::Item>& fields = item.list();
    const rlp::Item* next_ref = nullptr;
    if (fields.size() == 2) {
      if (!fields[0].IsString()) {
        return Status::VerificationFailed("malformed short node path");
      }
      ONOFF_ASSIGN_OR_RETURN(trie::HexPrefixPath hp,
                             trie::HexPrefixDecode(fields[0].string()));
      std::vector<uint8_t> rest(nibbles.begin() + pos, nibbles.end());
      if (hp.is_leaf) {
        if (!fields[1].IsString()) {
          return Status::VerificationFailed("malformed leaf value");
        }
        if (hp.nibbles == rest) return std::optional<Bytes>(fields[1].string());
        return std::optional<Bytes>(std::nullopt);
      }
      if (rest.size() < hp.nibbles.size() ||
          !std::equal(hp.nibbles.begin(), hp.nibbles.end(), rest.begin())) {
        return std::optional<Bytes>(std::nullopt);
      }
      pos += hp.nibbles.size();
      next_ref = &fields[1];
    } else if (fields.size() == 17) {
      if (pos == nibbles.size()) {
        if (!fields[16].IsString()) {
          return Status::VerificationFailed("malformed branch value");
        }
        if (fields[16].string().empty()) {
          return std::optional<Bytes>(std::nullopt);
        }
        return std::optional<Bytes>(fields[16].string());
      }
      next_ref = &fields[nibbles[pos]];
      ++pos;
      if (next_ref->IsString() && next_ref->string().empty()) {
        return std::optional<Bytes>(std::nullopt);
      }
    } else {
      return Status::VerificationFailed("stored node has bad arity");
    }

    if (next_ref->IsList()) {
      // Embedded node. next_ref aliases item's own list — detach it before
      // the assignment destroys its storage (same fix as Trie::VerifyProof).
      rlp::Item embedded = *next_ref;
      item = std::move(embedded);
    } else if (next_ref->IsString() && next_ref->string().size() == 32) {
      Hash32 child;
      std::copy(next_ref->string().begin(), next_ref->string().end(),
                child.begin());
      ONOFF_ASSIGN_OR_RETURN(Bytes child_enc, Get(child));
      ONOFF_ASSIGN_OR_RETURN(item, rlp::Decode(child_enc));
    } else {
      return Status::VerificationFailed("malformed child reference");
    }
  }
}

Status NodeStore::Compact() {
  if (path_.empty()) return Status::OK();
  std::string tmp = path_ + ".compact";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) return Status::Internal("cannot write " + tmp);
    out.write(kMagic, kMagicLen);
    uint64_t bytes = kMagicLen;
    for (const auto& [hash, rec] : nodes_) {
      Bytes payload;
      payload.push_back('N');
      PutU32(&payload, static_cast<uint32_t>(rec.enc.size()));
      PutU32(&payload, static_cast<uint32_t>(rec.refs.size()));
      payload.insert(payload.end(), hash.begin(), hash.end());
      payload.insert(payload.end(), rec.enc.begin(), rec.enc.end());
      for (const Hash32& ref : rec.refs) {
        payload.insert(payload.end(), ref.begin(), ref.end());
      }
      out.write(reinterpret_cast<const char*>(payload.data()),
                static_cast<std::streamsize>(payload.size()));
      bytes += payload.size();
    }
    for (const auto& [height, root] : retained_) {
      Bytes payload;
      payload.push_back('R');
      PutU64(&payload, height);
      payload.insert(payload.end(), root.begin(), root.end());
      out.write(reinterpret_cast<const char*>(payload.data()),
                static_cast<std::streamsize>(payload.size()));
      bytes += payload.size();
    }
    if (!out.good()) return Status::Internal("compaction write failed");
    file_bytes_ = bytes;
  }
  if (out_ != nullptr) {
    std::fclose(out_);
    out_ = nullptr;
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    return Status::Internal("compaction rename failed");
  }
  out_ = std::fopen(path_.c_str(), "ab");
  if (out_ == nullptr) {
    return Status::Internal("cannot reopen node store log: " + path_);
  }
  return Flush();
}

}  // namespace onoff::storage
