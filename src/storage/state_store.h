// The incremental authenticated state store: the commitment engine behind
// WorldState (DESIGN.md §10).
//
// Reads never touch this layer — the flat hash maps inside WorldState stay
// the source of truth. The store only turns the flat state into Merkle
// commitments, incrementally: mutators mark accounts/slots dirty, and one
// CommitRoot() per block re-encodes exactly the dirty accounts, replays
// exactly the dirty slots into the per-account storage tries (whose roots
// are memoized), and re-hashes only the changed trie paths. Untouched
// accounts cost nothing, so block-commit time scales with the number of
// *touched* accounts, not with total state size.
//
// Committed tries are copy-on-write (storage/shared_trie.h): copying the
// store — and therefore WorldState::Clone() — shares every trie node, and
// Snapshot() captures a historical root whose proofs stay valid while the
// live state moves on. An optional NodeStore persists each block's new
// nodes and prunes states older than the dispute window.
//
// Not thread-safe: CommitRoot (and everything that triggers it) mutates
// the dirty sets and memoized roots — one committer per store at a time.

#ifndef ONOFFCHAIN_STORAGE_STATE_STORE_H_
#define ONOFFCHAIN_STORAGE_STATE_STORE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/keccak.h"
#include "storage/node_store.h"
#include "storage/shared_trie.h"
#include "support/address.h"
#include "support/bytes.h"
#include "support/status.h"
#include "support/u256.h"

namespace onoff::storage {

// What CommitRoot needs to know about one account; `storage` points at the
// flat slot map (not copied).
struct AccountData {
  uint64_t nonce = 0;
  U256 balance;
  Hash32 code_hash{};
  const std::unordered_map<U256, U256>* storage = nullptr;
};

// RLP([nonce, balance, storageRoot, codeHash]) — Ethereum's account record.
Bytes EncodeAccountRlp(const AccountData& account, const Hash32& storage_root);

// An immutable view of one committed state: the root plus the shared tries
// that produced it. Cheap to take (structural sharing) and independent of
// later mutation — proofs verify against `root` forever.
struct StateSnapshot {
  Hash32 root{};
  SecureSharedTrie account_trie;
  std::unordered_map<Address, SecureSharedTrie> storage_tries;

  std::vector<Bytes> ProveAccount(const Address& addr) const {
    return account_trie.Prove(addr.view());
  }
  std::vector<Bytes> ProveStorage(const Address& addr, const U256& key) const {
    auto it = storage_tries.find(addr);
    if (it == storage_tries.end()) return {};
    Bytes key_bytes = key.ToBytes();
    return it->second.Prove(key_bytes);
  }
};

class StateStore {
 public:
  // Resolves an address to its current flat-state record, or nullopt when
  // the account does not exist.
  using AccountLookup =
      std::function<std::optional<AccountData>(const Address&)>;

  // Copies share all trie nodes (the dirty bookkeeping is duplicated so
  // both sides commit correctly afterwards).
  StateStore() = default;
  StateStore(const StateStore&) = default;
  StateStore& operator=(const StateStore&) = default;
  StateStore(StateStore&&) noexcept = default;
  StateStore& operator=(StateStore&&) noexcept = default;

  // ---- Dirty tracking (over-marking is safe, under-marking is a bug) ----
  // The account record (nonce/balance/code, or existence) changed.
  void MarkAccountDirty(const Address& addr);
  // One storage slot changed; implies the account record is dirty too (the
  // storage root is part of it).
  void MarkSlotDirty(const Address& addr, const U256& key);
  // The whole account was deleted or wholesale-replaced: its storage trie
  // must be rebuilt from the flat map instead of patched slot-by-slot.
  void MarkAccountReset(const Address& addr);

  // ---- Commitment ----
  // Incrementally folds all dirty accounts/slots into the tries and returns
  // the state root. With nothing dirty, returns the memoized root.
  Hash32 CommitRoot(const AccountLookup& lookup);
  bool HasUncommittedChanges() const { return !dirty_accounts_.empty(); }

  // ---- Proofs & snapshots (valid for the last committed state) ----
  std::vector<Bytes> ProveAccount(const Address& addr) const {
    return account_trie_.Prove(addr.view());
  }
  std::vector<Bytes> ProveStorage(const Address& addr, const U256& key) const;
  StateSnapshot Snapshot() const;

  // Memoized storage root of one account (empty-trie root when absent).
  Hash32 StorageRoot(const Address& addr) const;

  // ---- Persistence ----
  // Writes every node new since the last persist to `store` and retains
  // the current root at `height`. Call after CommitRoot.
  Status Persist(NodeStore& store, uint64_t height);

  // Introspection for tests/benches.
  size_t TrackedAccounts() const { return per_account_.size(); }
  size_t CountAccountTrieNodes() const {
    return account_trie_.CountNodes();
  }

 private:
  struct PerAccount {
    SecureSharedTrie storage_trie;
    Hash32 storage_root{};  // memoized; valid when root_valid
    bool root_valid = false;
    std::unordered_set<U256> dirty_slots;
    bool reset = false;
  };

  void CommitAccount(const Address& addr, const AccountLookup& lookup);

  SecureSharedTrie account_trie_;
  std::unordered_map<Address, PerAccount> per_account_;
  std::unordered_set<Address> dirty_accounts_;
  Hash32 committed_root_{};
  bool root_valid_ = false;
  // Accounts whose storage tries gained nodes since the last Persist.
  std::unordered_set<Address> pending_persist_;
};

}  // namespace onoff::storage

#endif  // ONOFFCHAIN_STORAGE_STATE_STORE_H_
