// Ethereum contract ABI: 4-byte function selectors and the standard
// head/tail argument encoding for the types this system uses
// (uint256, address, bool, bytes32, dynamic bytes).
//
// `deployVerifiedInstance(bytes,uint8,bytes32,bytes32,uint8,bytes32,bytes32)`
// — the paper's central extra function — takes a dynamic `bytes` (the signed
// off-chain bytecode), so dynamic encoding is load-bearing here.

#ifndef ONOFFCHAIN_ABI_ABI_H_
#define ONOFFCHAIN_ABI_ABI_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/address.h"
#include "support/bytes.h"
#include "support/status.h"
#include "support/u256.h"

namespace onoff::abi {

enum class Type {
  kUint256,  // also uint8/uint64/... (all encode as one word)
  kAddress,
  kBool,
  kBytes32,
  kBytes,    // dynamic
};

// A typed ABI value.
class Value {
 public:
  static Value Uint(const U256& v) { return Value(Type::kUint256, v, {}); }
  static Value Uint(uint64_t v) { return Uint(U256(v)); }
  static Value Addr(const Address& a) {
    return Value(Type::kAddress, a.ToWord(), {});
  }
  static Value Bool(bool b) {
    return Value(Type::kBool, U256(b ? 1 : 0), {});
  }
  static Value Bytes32(const U256& v) { return Value(Type::kBytes32, v, {}); }
  static Value DynBytes(onoff::Bytes data) {
    return Value(Type::kBytes, U256(), std::move(data));
  }

  Type type() const { return type_; }
  const U256& word() const { return word_; }
  const onoff::Bytes& bytes() const { return bytes_; }

  // Typed accessors (assert-free; callers know the schema they decoded).
  U256 AsUint() const { return word_; }
  Address AsAddress() const { return Address::FromWord(word_); }
  bool AsBool() const { return !word_.IsZero(); }
  const onoff::Bytes& AsBytes() const { return bytes_; }

 private:
  Value(Type type, U256 word, onoff::Bytes bytes)
      : type_(type), word_(word), bytes_(std::move(bytes)) {}

  Type type_;
  U256 word_;
  onoff::Bytes bytes_;
};

using Selector = std::array<uint8_t, 4>;

// keccak256("name(type,...)")[0..4).
Selector SelectorOf(std::string_view signature);

// Head/tail-encodes the arguments (no selector).
Bytes EncodeArgs(const std::vector<Value>& args);

// Selector plus encoded arguments: ready-to-send calldata.
Bytes EncodeCall(std::string_view signature, const std::vector<Value>& args);

// Decodes `data` (no selector) against a type schema.
Result<std::vector<Value>> DecodeArgs(BytesView data,
                                      const std::vector<Type>& types);

// Decodes a single return value.
Result<Value> DecodeOne(BytesView data, Type type);

}  // namespace onoff::abi

#endif  // ONOFFCHAIN_ABI_ABI_H_
