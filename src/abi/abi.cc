#include "abi/abi.h"

#include "crypto/keccak.h"

namespace onoff::abi {

namespace {

bool IsDynamic(Type t) { return t == Type::kBytes; }

// Appends `data` right-padded with zeros to a word boundary.
void AppendPadded(Bytes& out, BytesView data) {
  Append(out, data);
  size_t pad = (32 - data.size() % 32) % 32;
  out.insert(out.end(), pad, 0);
}

}  // namespace

Selector SelectorOf(std::string_view signature) {
  Hash32 h = Keccak256(BytesOf(signature));
  return {h[0], h[1], h[2], h[3]};
}

Bytes EncodeArgs(const std::vector<Value>& args) {
  // Head: one word per argument (value or tail offset). Tail: dynamic data.
  size_t head_size = args.size() * 32;
  Bytes head;
  Bytes tail;
  for (const Value& arg : args) {
    if (IsDynamic(arg.type())) {
      U256 offset(head_size + tail.size());
      Bytes w = offset.ToBytes();
      Append(head, w);
      Bytes len = U256(arg.bytes().size()).ToBytes();
      Append(tail, len);
      AppendPadded(tail, arg.bytes());
    } else {
      Bytes w = arg.word().ToBytes();
      Append(head, w);
    }
  }
  Append(head, tail);
  return head;
}

Bytes EncodeCall(std::string_view signature, const std::vector<Value>& args) {
  Selector sel = SelectorOf(signature);
  Bytes out(sel.begin(), sel.end());
  Bytes encoded = EncodeArgs(args);
  Append(out, encoded);
  return out;
}

Result<std::vector<Value>> DecodeArgs(BytesView data,
                                      const std::vector<Type>& types) {
  if (data.size() < types.size() * 32) {
    return Status::InvalidArgument("ABI data shorter than head");
  }
  std::vector<Value> out;
  out.reserve(types.size());
  for (size_t i = 0; i < types.size(); ++i) {
    U256 word = U256::FromBigEndianTruncating(data.subspan(i * 32, 32));
    switch (types[i]) {
      case Type::kUint256:
        out.push_back(Value::Uint(word));
        break;
      case Type::kAddress:
        out.push_back(Value::Addr(Address::FromWord(word)));
        break;
      case Type::kBool:
        out.push_back(Value::Bool(!word.IsZero()));
        break;
      case Type::kBytes32:
        out.push_back(Value::Bytes32(word));
        break;
      case Type::kBytes: {
        if (!word.FitsUint64() || word.low64() + 32 > data.size()) {
          return Status::InvalidArgument("ABI bytes offset out of range");
        }
        uint64_t off = word.low64();
        U256 len_word = U256::FromBigEndianTruncating(data.subspan(off, 32));
        if (!len_word.FitsUint64() ||
            off + 32 + len_word.low64() > data.size()) {
          return Status::InvalidArgument("ABI bytes length out of range");
        }
        Bytes payload(data.begin() + off + 32,
                      data.begin() + off + 32 + len_word.low64());
        out.push_back(Value::DynBytes(std::move(payload)));
        break;
      }
    }
  }
  return out;
}

Result<Value> DecodeOne(BytesView data, Type type) {
  ONOFF_ASSIGN_OR_RETURN(std::vector<Value> vals, DecodeArgs(data, {type}));
  return vals[0];
}

}  // namespace onoff::abi
