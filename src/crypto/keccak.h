// Keccak-256 (the pre-NIST padding variant used by Ethereum).
//
// Ethereum's `keccak256` is Keccak with rate 1088 / capacity 512 and the
// original 0x01 domain padding (NOT SHA3-256's 0x06). All contract
// addresses, transaction hashes, function selectors and the bytecode hash
// signed by participants in the on/off-chain protocol use this function.

#ifndef ONOFFCHAIN_CRYPTO_KECCAK_H_
#define ONOFFCHAIN_CRYPTO_KECCAK_H_

#include <array>
#include <cstdint>

#include "support/bytes.h"

namespace onoff {

using Hash32 = std::array<uint8_t, 32>;

// One-shot Keccak-256 of `data`.
Hash32 Keccak256(BytesView data);

// Convenience: hash as a 32-byte Bytes.
Bytes Keccak256Bytes(BytesView data);

// Incremental hasher (absorb/squeeze), used where inputs are assembled from
// several parts without an intermediate copy.
class Keccak256Hasher {
 public:
  Keccak256Hasher();
  void Update(BytesView data);
  Hash32 Finalize();

 private:
  std::array<uint64_t, 25> state_;
  std::array<uint8_t, 136> buffer_;  // rate = 136 bytes
  size_t buffer_len_;
};

}  // namespace onoff

#endif  // ONOFFCHAIN_CRYPTO_KECCAK_H_
