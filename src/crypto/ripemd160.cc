#include "crypto/ripemd160.h"

#include <cstring>

namespace onoff {

namespace {

inline uint32_t Rotl(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline uint32_t F(int j, uint32_t x, uint32_t y, uint32_t z) {
  if (j < 16) return x ^ y ^ z;
  if (j < 32) return (x & y) | (~x & z);
  if (j < 48) return (x | ~y) ^ z;
  if (j < 64) return (x & z) | (y & ~z);
  return x ^ (y | ~z);
}

inline uint32_t K(int j) {
  if (j < 16) return 0x00000000;
  if (j < 32) return 0x5a827999;
  if (j < 48) return 0x6ed9eba1;
  if (j < 64) return 0x8f1bbcdc;
  return 0xa953fd4e;
}

inline uint32_t KPrime(int j) {
  if (j < 16) return 0x50a28be6;
  if (j < 32) return 0x5c4dd124;
  if (j < 48) return 0x6d703ef3;
  if (j < 64) return 0x7a6d76e9;
  return 0x00000000;
}

constexpr int kR[80] = {
    0, 1, 2,  3,  4,  5,  6,  7,  8,  9,  10, 11, 12, 13, 14, 15,
    7, 4, 13, 1,  10, 6,  15, 3,  12, 0,  9,  5,  2,  14, 11, 8,
    3, 10, 14, 4, 9,  15, 8,  1,  2,  7,  0,  6,  13, 11, 5,  12,
    1, 9, 11, 10, 0,  8,  12, 4,  13, 3,  7,  15, 14, 5,  6,  2,
    4, 0, 5,  9,  7,  12, 2,  10, 14, 1,  3,  8,  11, 6,  15, 13};

constexpr int kRPrime[80] = {
    5,  14, 7,  0, 9,  2,  11, 4,  13, 6,  15, 8,  1,  10, 3,  12,
    6,  11, 3,  7, 0,  13, 5,  10, 14, 15, 8,  12, 4,  9,  1,  2,
    15, 5,  1,  3, 7,  14, 6,  9,  11, 8,  12, 2,  10, 0,  4,  13,
    8,  6,  4,  1, 3,  11, 15, 0,  5,  12, 2,  13, 9,  7,  10, 14,
    12, 15, 10, 4, 1,  5,  8,  7,  6,  2,  13, 14, 0,  3,  9,  11};

constexpr int kS[80] = {
    11, 14, 15, 12, 5,  8,  7,  9,  11, 13, 14, 15, 6,  7,  9,  8,
    7,  6,  8,  13, 11, 9,  7,  15, 7,  12, 15, 9,  11, 7,  13, 12,
    11, 13, 6,  7,  14, 9,  13, 15, 14, 8,  13, 6,  5,  12, 7,  5,
    11, 12, 14, 15, 14, 15, 9,  8,  9,  14, 5,  6,  8,  6,  5,  12,
    9,  15, 5,  11, 6,  8,  13, 12, 5,  12, 13, 14, 11, 8,  5,  6};

constexpr int kSPrime[80] = {
    8,  9,  9,  11, 13, 15, 15, 5,  7,  7,  8,  11, 14, 14, 12, 6,
    9,  13, 15, 7,  12, 8,  9,  11, 7,  7,  12, 7,  6,  15, 13, 11,
    9,  7,  15, 11, 8,  6,  6,  14, 12, 13, 5,  14, 13, 13, 7,  5,
    15, 5,  8,  11, 14, 14, 6,  14, 6,  9,  12, 9,  12, 5,  15, 8,
    8,  5,  12, 9,  12, 5,  14, 6,  8,  13, 6,  5,  15, 13, 11, 11};

struct Ripemd160State {
  uint32_t h[5] = {0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0};

  void Compress(const uint8_t* block) {
    uint32_t x[16];
    for (int i = 0; i < 16; ++i) {
      x[i] = uint32_t(block[i * 4]) | (uint32_t(block[i * 4 + 1]) << 8) |
             (uint32_t(block[i * 4 + 2]) << 16) |
             (uint32_t(block[i * 4 + 3]) << 24);
    }
    uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
    uint32_t ap = h[0], bp = h[1], cp = h[2], dp = h[3], ep = h[4];
    for (int j = 0; j < 80; ++j) {
      uint32_t t = Rotl(a + F(j, b, c, d) + x[kR[j]] + K(j), kS[j]) + e;
      a = e;
      e = d;
      d = Rotl(c, 10);
      c = b;
      b = t;
      t = Rotl(ap + F(79 - j, bp, cp, dp) + x[kRPrime[j]] + KPrime(j),
               kSPrime[j]) +
          ep;
      ap = ep;
      ep = dp;
      dp = Rotl(cp, 10);
      cp = bp;
      bp = t;
    }
    uint32_t t = h[1] + c + dp;
    h[1] = h[2] + d + ep;
    h[2] = h[3] + e + ap;
    h[3] = h[4] + a + bp;
    h[4] = h[0] + b + cp;
    h[0] = t;
  }
};

}  // namespace

std::array<uint8_t, 20> Ripemd160(BytesView data) {
  Ripemd160State st;
  size_t full_blocks = data.size() / 64;
  for (size_t i = 0; i < full_blocks; ++i) st.Compress(data.data() + i * 64);

  uint8_t tail[128] = {0};
  size_t rem = data.size() - full_blocks * 64;
  if (rem > 0) std::memcpy(tail, data.data() + full_blocks * 64, rem);
  tail[rem] = 0x80;
  size_t tail_len = (rem + 1 + 8 <= 64) ? 64 : 128;
  uint64_t bit_len = static_cast<uint64_t>(data.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[tail_len - 8 + i] = static_cast<uint8_t>(bit_len >> (8 * i));
  }
  st.Compress(tail);
  if (tail_len == 128) st.Compress(tail + 64);

  std::array<uint8_t, 20> out;
  for (int i = 0; i < 5; ++i) {
    out[i * 4] = static_cast<uint8_t>(st.h[i]);
    out[i * 4 + 1] = static_cast<uint8_t>(st.h[i] >> 8);
    out[i * 4 + 2] = static_cast<uint8_t>(st.h[i] >> 16);
    out[i * 4 + 3] = static_cast<uint8_t>(st.h[i] >> 24);
  }
  return out;
}

}  // namespace onoff
