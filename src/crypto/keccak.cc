#include "crypto/keccak.h"

#include <cstring>

namespace onoff {

namespace {

constexpr int kRounds = 24;
constexpr size_t kRate = 136;  // bytes, for 256-bit output

constexpr uint64_t kRoundConstants[kRounds] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL,
};

constexpr int kRotations[24] = {1,  3,  6,  10, 15, 21, 28, 36,
                                45, 55, 2,  14, 27, 41, 56, 8,
                                25, 43, 62, 18, 39, 61, 20, 44};

constexpr int kPiLanes[24] = {10, 7,  11, 17, 18, 3,  5,  16,
                              8,  21, 24, 4,  15, 23, 19, 13,
                              12, 2,  20, 14, 22, 9,  6,  1};

inline uint64_t Rotl64(uint64_t x, int n) {
  return (x << n) | (x >> (64 - n));
}

void KeccakF1600(std::array<uint64_t, 25>& st) {
  for (int round = 0; round < kRounds; ++round) {
    // Theta
    uint64_t bc[5];
    for (int i = 0; i < 5; ++i) {
      bc[i] = st[i] ^ st[i + 5] ^ st[i + 10] ^ st[i + 15] ^ st[i + 20];
    }
    for (int i = 0; i < 5; ++i) {
      uint64_t t = bc[(i + 4) % 5] ^ Rotl64(bc[(i + 1) % 5], 1);
      for (int j = 0; j < 25; j += 5) st[j + i] ^= t;
    }
    // Rho + Pi
    uint64_t t = st[1];
    for (int i = 0; i < 24; ++i) {
      int j = kPiLanes[i];
      uint64_t tmp = st[j];
      st[j] = Rotl64(t, kRotations[i]);
      t = tmp;
    }
    // Chi
    for (int j = 0; j < 25; j += 5) {
      uint64_t row[5];
      for (int i = 0; i < 5; ++i) row[i] = st[j + i];
      for (int i = 0; i < 5; ++i) {
        st[j + i] = row[i] ^ ((~row[(i + 1) % 5]) & row[(i + 2) % 5]);
      }
    }
    // Iota
    st[0] ^= kRoundConstants[round];
  }
}

void AbsorbBlock(std::array<uint64_t, 25>& st, const uint8_t* block) {
  for (size_t i = 0; i < kRate / 8; ++i) {
    uint64_t lane;
    std::memcpy(&lane, block + i * 8, 8);  // little-endian host assumed
    st[i] ^= lane;
  }
  KeccakF1600(st);
}

}  // namespace

Keccak256Hasher::Keccak256Hasher() : state_{}, buffer_{}, buffer_len_(0) {}

void Keccak256Hasher::Update(BytesView data) {
  size_t offset = 0;
  if (buffer_len_ > 0) {
    size_t take = std::min(kRate - buffer_len_, data.size());
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == kRate) {
      AbsorbBlock(state_, buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (data.size() - offset >= kRate) {
    AbsorbBlock(state_, data.data() + offset);
    offset += kRate;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

Hash32 Keccak256Hasher::Finalize() {
  // Keccak (pre-SHA3) multi-rate padding: 0x01 ... 0x80.
  buffer_[buffer_len_] = 0x01;
  for (size_t i = buffer_len_ + 1; i < kRate; ++i) buffer_[i] = 0;
  buffer_[kRate - 1] |= 0x80;
  AbsorbBlock(state_, buffer_.data());

  Hash32 out;
  std::memcpy(out.data(), state_.data(), 32);
  return out;
}

Hash32 Keccak256(BytesView data) {
  Keccak256Hasher hasher;
  hasher.Update(data);
  return hasher.Finalize();
}

Bytes Keccak256Bytes(BytesView data) {
  Hash32 h = Keccak256(data);
  return Bytes(h.begin(), h.end());
}

}  // namespace onoff
