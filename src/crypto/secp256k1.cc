#include "crypto/secp256k1.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>
#include <vector>

#include "crypto/sha256.h"
#include "obs/metrics.h"

namespace onoff::secp256k1 {

namespace {

using u128 = unsigned __int128;
using i128 = __int128;

// p = 2^256 - 2^32 - 977
constexpr U256 kP(0xffffffffffffffffULL, 0xffffffffffffffffULL,
                  0xffffffffffffffffULL, 0xfffffffefffffc2fULL);
// n (group order)
constexpr U256 kN(0xffffffffffffffffULL, 0xfffffffffffffffeULL,
                  0xbaaedce6af48a03bULL, 0xbfd25e8cd0364141ULL);
// 2^256 - p, fits in one limb.
constexpr uint64_t kC = 0x1000003d1ULL;
// Low limb of p; the other three are all-ones, which the reduced-form
// checks below exploit.
constexpr uint64_t kP0 = 0xfffffffefffffc2fULL;

std::atomic<Backend> g_backend{Backend::kFast};

bool UseFast() { return g_backend.load(std::memory_order_relaxed) == Backend::kFast; }

// ---- Shared multi-precision helpers ----

// Adds two 4-limb values, returning the carry-out.
inline uint64_t AddLimbs(const U256& a, const U256& b, uint64_t out[4]) {
  uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    u128 s = static_cast<u128>(a.limb(i)) + b.limb(i) + carry;
    out[i] = static_cast<uint64_t>(s);
    carry = static_cast<uint64_t>(s >> 64);
  }
  return carry;
}

inline U256 FromLimbs(const uint64_t v[4]) { return U256(v[3], v[2], v[1], v[0]); }

// Reduces a value known to be < 2p into [0, p).
inline U256 CondSubP(const U256& a) { return a >= kP ? a - kP : a; }

// (x + m) >> 1 handling the 257-bit intermediate.
U256 HalfMod(const U256& x, const U256& m) {
  if (!x.Bit(0)) return x >> 1;
  uint64_t out[4];
  uint64_t carry = AddLimbs(x, m, out);
  U256 sum = FromLimbs(out) >> 1;
  if (carry) sum.SetBit(255);
  return sum;
}

// a^{-1} mod m for odd m, gcd(a, m) = 1, via binary extended GCD. This is
// the seed implementation, kept verbatim as the reference backend's inverse.
U256 ModInverse(const U256& a, const U256& m) {
  U256 u = a % m;
  assert(!u.IsZero());
  U256 v = m;
  U256 x1(1);
  U256 x2(0);
  while (u != U256(1) && v != U256(1)) {
    while (!u.Bit(0)) {
      u = u >> 1;
      x1 = HalfMod(x1, m);
    }
    while (!v.Bit(0)) {
      v = v >> 1;
      x2 = HalfMod(x2, m);
    }
    if (u >= v) {
      u -= v;
      x1 = x1 >= x2 ? x1 - x2 : x1 + (m - x2);
    } else {
      v -= u;
      x2 = x2 >= x1 ? x2 - x1 : x2 + (m - x1);
    }
  }
  return u == U256(1) ? x1 : x2;
}

// ---- divsteps modular inverse (Bernstein–Yang, variable time) ----
//
// Instead of the ~700 single-bit iterations of the binary GCD above, the
// divstep recurrence is applied 62 steps at a time: the inner loop works
// only on the low 64 bits of (f, g) and accumulates the whole batch as a
// 2x2 signed transition matrix, which is then applied once to the full-size
// f, g (and, mod m, to the Bézout coefficients d, e). Roughly 10 batches
// converge for 256-bit inputs — about 5x faster than the bit-at-a-time GCD.
//
// Numbers are signed, little-endian, 62 bits per limb: every limb is in
// [0, 2^62) except the top one, which carries the sign.

struct Signed62 {
  int64_t v[5];
};

constexpr uint64_t kM62 = (uint64_t{1} << 62) - 1;

Signed62 Signed62FromU256(const U256& a) {
  return {{static_cast<int64_t>(a.limb(0) & kM62),
           static_cast<int64_t>(((a.limb(0) >> 62) | (a.limb(1) << 2)) & kM62),
           static_cast<int64_t>(((a.limb(1) >> 60) | (a.limb(2) << 4)) & kM62),
           static_cast<int64_t>(((a.limb(2) >> 58) | (a.limb(3) << 6)) & kM62),
           static_cast<int64_t>(a.limb(3) >> 56)}};
}

// Only valid for normalized non-negative values < 2^256.
U256 U256FromSigned62(const Signed62& a) {
  const uint64_t v0 = static_cast<uint64_t>(a.v[0]);
  const uint64_t v1 = static_cast<uint64_t>(a.v[1]);
  const uint64_t v2 = static_cast<uint64_t>(a.v[2]);
  const uint64_t v3 = static_cast<uint64_t>(a.v[3]);
  const uint64_t v4 = static_cast<uint64_t>(a.v[4]);
  return U256((v3 >> 6) | (v4 << 56), (v2 >> 4) | (v3 << 58),
              (v1 >> 2) | (v2 << 60), v0 | (v1 << 62));
}

bool Signed62IsZero(const Signed62& a) {
  return (a.v[0] | a.v[1] | a.v[2] | a.v[3] | a.v[4]) == 0;
}

// 62 divsteps on the low bits of (f, g). Writes the transition matrix
// t = [[u, v], [q, r]] (scaled by 2^62) such that the full-width update
// f' = (u*f + v*g) / 2^62, g' = (q*f + r*g) / 2^62 is exact, and returns
// the new delta. Runs of even g are consumed with one count-trailing-zeros.
int64_t Divsteps62(int64_t delta, uint64_t f0, uint64_t g0, int64_t t[4]) {
  int64_t u = 1, v = 0, q = 0, r = 1;
  uint64_t f = f0, g = g0;
  int i = 62;
  for (;;) {
    int zeros = g == 0 ? i : __builtin_ctzll(g);
    if (zeros > i) zeros = i;
    g >>= zeros;
    u <<= zeros;
    v <<= zeros;
    delta += zeros;
    i -= zeros;
    if (i == 0) break;
    // g is odd here.
    if (delta > 0) {
      // (delta, f, g) <- (1 - delta, g, (g - f) / 2).
      delta = 1 - delta;
      uint64_t tf = f;
      f = g;
      g = (g - tf) >> 1;
      int64_t tq = q, tr = r;
      q -= u;
      r -= v;
      u = tq << 1;
      v = tr << 1;
    } else {
      // (delta, f, g) <- (1 + delta, f, (g + f) / 2).
      delta = 1 + delta;
      g = (g + f) >> 1;
      q += u;
      r += v;
      u <<= 1;
      v <<= 1;
    }
    --i;
  }
  t[0] = u;
  t[1] = v;
  t[2] = q;
  t[3] = r;
  return delta;
}

// (f, g) <- (t * [f; g]) / 2^62, exactly (the matrix guarantees the low 62
// bits vanish).
void UpdateFg(Signed62& f, Signed62& g, const int64_t t[4]) {
  i128 cf = static_cast<i128>(t[0]) * f.v[0] + static_cast<i128>(t[1]) * g.v[0];
  i128 cg = static_cast<i128>(t[2]) * f.v[0] + static_cast<i128>(t[3]) * g.v[0];
  cf >>= 62;
  cg >>= 62;
  for (int i = 1; i < 5; ++i) {
    cf += static_cast<i128>(t[0]) * f.v[i] + static_cast<i128>(t[1]) * g.v[i];
    cg += static_cast<i128>(t[2]) * f.v[i] + static_cast<i128>(t[3]) * g.v[i];
    f.v[i - 1] = static_cast<int64_t>(static_cast<uint64_t>(cf) & kM62);
    g.v[i - 1] = static_cast<int64_t>(static_cast<uint64_t>(cg) & kM62);
    cf >>= 62;
    cg >>= 62;
  }
  f.v[4] = static_cast<int64_t>(cf);
  g.v[4] = static_cast<int64_t>(cg);
}

// Brings a into (-m, m) and then, if negative, into [0, m). The values
// produced by UpdateDe drift by at most a few multiples of m per batch, so
// the loops run O(1) times.
void Signed62ReduceMod(Signed62& a, const Signed62& m) {
  auto add = [&](int sign) {
    int64_t carry = 0;
    for (int i = 0; i < 5; ++i) {
      int64_t t = a.v[i] + sign * m.v[i] + carry;
      carry = t >> 62;  // arithmetic: keeps the sign for the top limb
      a.v[i] = t & static_cast<int64_t>(kM62);
    }
    a.v[4] |= carry << 62;  // re-attach the sign to the top limb
  };
  auto geq_m = [&]() {
    if (a.v[4] != m.v[4]) return a.v[4] > m.v[4];
    for (int i = 3; i >= 0; --i) {
      if (a.v[i] != m.v[i]) return a.v[i] > m.v[i];
    }
    return true;
  };
  while (a.v[4] < 0) add(+1);
  while (geq_m()) add(-1);
}

// (d, e) <- (t * [d; e]) / 2^62 mod m. The division is made exact by adding
// the unique multiple of m that clears the low 62 bits (m_inv62 is
// -1/m mod 2^62).
void UpdateDe(Signed62& d, Signed62& e, const int64_t t[4], const Signed62& m,
              uint64_t m_inv62) {
  i128 cd = static_cast<i128>(t[0]) * d.v[0] + static_cast<i128>(t[1]) * e.v[0];
  i128 ce = static_cast<i128>(t[2]) * d.v[0] + static_cast<i128>(t[3]) * e.v[0];
  const uint64_t md = (static_cast<uint64_t>(cd) * m_inv62) & kM62;
  const uint64_t me = (static_cast<uint64_t>(ce) * m_inv62) & kM62;
  cd += static_cast<i128>(md) * m.v[0];
  ce += static_cast<i128>(me) * m.v[0];
  cd >>= 62;
  ce >>= 62;
  for (int i = 1; i < 5; ++i) {
    cd += static_cast<i128>(t[0]) * d.v[i] + static_cast<i128>(t[1]) * e.v[i] +
          static_cast<i128>(md) * m.v[i];
    ce += static_cast<i128>(t[2]) * d.v[i] + static_cast<i128>(t[3]) * e.v[i] +
          static_cast<i128>(me) * m.v[i];
    d.v[i - 1] = static_cast<int64_t>(static_cast<uint64_t>(cd) & kM62);
    e.v[i - 1] = static_cast<int64_t>(static_cast<uint64_t>(ce) & kM62);
    cd >>= 62;
    ce >>= 62;
  }
  d.v[4] = static_cast<int64_t>(cd);
  e.v[4] = static_cast<int64_t>(ce);
  Signed62ReduceMod(d, m);
  Signed62ReduceMod(e, m);
}

// a^-1 mod m for odd m, variable time. Maintains f = m, g = a (mod 2^62
// scaled) with d, e tracking the Bézout coefficients mod m; when g reaches
// zero, f holds ±gcd and ±d is the inverse. Falls back to the generic GCD
// if convergence is not reached in the proven iteration bound (it always
// is; the fallback turns a would-be wrong answer into a slow one).
U256 ModInverseDivsteps(const U256& a, const U256& m_in) {
  U256 ar = a % m_in;
  if (ar.IsZero()) return U256(0);
  const Signed62 m = Signed62FromU256(m_in);
  // -1/m mod 2^64 by Newton iteration (m odd), then truncated to 62 bits.
  uint64_t inv = m_in.limb(0);
  for (int i = 0; i < 5; ++i) inv *= 2 - m_in.limb(0) * inv;
  const uint64_t m_inv62 = (0 - inv) & kM62;
  Signed62 f = m;
  Signed62 g = Signed62FromU256(ar);
  Signed62 d = {{0, 0, 0, 0, 0}};
  Signed62 e = {{1, 0, 0, 0, 0}};
  int64_t delta = 1;
  for (int batch = 0; batch < 12 && !Signed62IsZero(g); ++batch) {
    int64_t t[4];
    const uint64_t f0 =
        static_cast<uint64_t>(f.v[0]) | (static_cast<uint64_t>(f.v[1]) << 62);
    const uint64_t g0 =
        static_cast<uint64_t>(g.v[0]) | (static_cast<uint64_t>(g.v[1]) << 62);
    delta = Divsteps62(delta, f0, g0, t);
    UpdateFg(f, g, t);
    UpdateDe(d, e, t, m, m_inv62);
  }
  if (!Signed62IsZero(g)) return ModInverse(a, m_in);
  if (f.v[4] < 0) {
    // gcd came out as -1: negate d.
    for (int i = 0; i < 5; ++i) d.v[i] = -d.v[i];
    // Restore the limbs-in-[0, 2^62) form before the final reduction.
    int64_t carry = 0;
    for (int i = 0; i < 5; ++i) {
      int64_t t = d.v[i] + carry;
      carry = t >> 62;
      d.v[i] = t & static_cast<int64_t>(kM62);
    }
    d.v[4] |= carry << 62;
  }
  Signed62ReduceMod(d, m);
  return U256FromSigned62(d);
}

// ---- Fast field arithmetic mod p (unrolled comba + fold reduction) ----

U256 FieldAdd(const U256& a, const U256& b) {
  u128 t = static_cast<u128>(a.limb(0)) + b.limb(0);
  uint64_t s0 = static_cast<uint64_t>(t);
  t = static_cast<u128>(a.limb(1)) + b.limb(1) + static_cast<uint64_t>(t >> 64);
  uint64_t s1 = static_cast<uint64_t>(t);
  t = static_cast<u128>(a.limb(2)) + b.limb(2) + static_cast<uint64_t>(t >> 64);
  uint64_t s2 = static_cast<uint64_t>(t);
  t = static_cast<u128>(a.limb(3)) + b.limb(3) + static_cast<uint64_t>(t >> 64);
  uint64_t s3 = static_cast<uint64_t>(t);
  if (static_cast<uint64_t>(t >> 64) != 0) {
    // a + b - 2^256 + c == a + b - p, which is already < p.
    t = static_cast<u128>(s0) + kC;
    s0 = static_cast<uint64_t>(t);
    t = static_cast<u128>(s1) + static_cast<uint64_t>(t >> 64);
    s1 = static_cast<uint64_t>(t);
    t = static_cast<u128>(s2) + static_cast<uint64_t>(t >> 64);
    s2 = static_cast<uint64_t>(t);
    s3 += static_cast<uint64_t>(t >> 64);
    return U256(s3, s2, s1, s0);
  }
  // Any value in [p, 2^256) has its top three limbs all-ones.
  if ((s1 & s2 & s3) == ~uint64_t{0} && s0 >= kP0) {
    s0 -= kP0;
    s1 = s2 = s3 = 0;
  }
  return U256(s3, s2, s1, s0);
}

U256 FieldNeg(const U256& a) { return a.IsZero() ? a : kP - a; }

// 64x64 -> 128 multiply accumulated into a 192-bit column (c0, c1, c2).
inline void MulAdd(uint64_t a, uint64_t b, uint64_t& c0, uint64_t& c1,
                   uint64_t& c2) {
  u128 t = static_cast<u128>(a) * b;
  uint64_t tl = static_cast<uint64_t>(t);
  uint64_t th = static_cast<uint64_t>(t >> 64);  // <= 2^64 - 2: +1 is safe
  c0 += tl;
  th += c0 < tl ? 1 : 0;
  c1 += th;
  c2 += c1 < th ? 1 : 0;
}

// Accumulates 2*a*b — the doubled cross term of a squaring.
inline void MulAddTwice(uint64_t a, uint64_t b, uint64_t& c0, uint64_t& c1,
                        uint64_t& c2) {
  u128 t = static_cast<u128>(a) * b;
  uint64_t tl = static_cast<uint64_t>(t);
  uint64_t th = static_cast<uint64_t>(t >> 64);
  c2 += th >> 63;
  th = (th << 1) | (tl >> 63);
  tl <<= 1;
  c0 += tl;
  th += c0 < tl ? 1 : 0;
  c1 += th;
  c2 += c1 < th ? 1 : 0;
}

// Full 256x256 -> 512 product, column by column (comba). Fully unrolled:
// measured ~1.7x faster than the rolled operand-scanning loop the seed
// used, which the reference backend below preserves.
inline void MulWide(const U256& a, const U256& b, uint64_t f[8]) {
  const uint64_t a0 = a.limb(0), a1 = a.limb(1), a2 = a.limb(2),
                 a3 = a.limb(3);
  const uint64_t b0 = b.limb(0), b1 = b.limb(1), b2 = b.limb(2),
                 b3 = b.limb(3);
  uint64_t c0 = 0, c1 = 0, c2 = 0;
  MulAdd(a0, b0, c0, c1, c2);
  f[0] = c0; c0 = c1; c1 = c2; c2 = 0;
  MulAdd(a0, b1, c0, c1, c2);
  MulAdd(a1, b0, c0, c1, c2);
  f[1] = c0; c0 = c1; c1 = c2; c2 = 0;
  MulAdd(a0, b2, c0, c1, c2);
  MulAdd(a1, b1, c0, c1, c2);
  MulAdd(a2, b0, c0, c1, c2);
  f[2] = c0; c0 = c1; c1 = c2; c2 = 0;
  MulAdd(a0, b3, c0, c1, c2);
  MulAdd(a1, b2, c0, c1, c2);
  MulAdd(a2, b1, c0, c1, c2);
  MulAdd(a3, b0, c0, c1, c2);
  f[3] = c0; c0 = c1; c1 = c2; c2 = 0;
  MulAdd(a1, b3, c0, c1, c2);
  MulAdd(a2, b2, c0, c1, c2);
  MulAdd(a3, b1, c0, c1, c2);
  f[4] = c0; c0 = c1; c1 = c2; c2 = 0;
  MulAdd(a2, b3, c0, c1, c2);
  MulAdd(a3, b2, c0, c1, c2);
  f[5] = c0; c0 = c1; c1 = c2; c2 = 0;
  MulAdd(a3, b3, c0, c1, c2);
  f[6] = c0;
  f[7] = c1;
}

// Dedicated squaring: 6 doubled cross products + 4 squares instead of 16
// general partial products.
inline void SqrWide(const U256& a, uint64_t f[8]) {
  const uint64_t a0 = a.limb(0), a1 = a.limb(1), a2 = a.limb(2),
                 a3 = a.limb(3);
  uint64_t c0 = 0, c1 = 0, c2 = 0;
  MulAdd(a0, a0, c0, c1, c2);
  f[0] = c0; c0 = c1; c1 = c2; c2 = 0;
  MulAddTwice(a0, a1, c0, c1, c2);
  f[1] = c0; c0 = c1; c1 = c2; c2 = 0;
  MulAddTwice(a0, a2, c0, c1, c2);
  MulAdd(a1, a1, c0, c1, c2);
  f[2] = c0; c0 = c1; c1 = c2; c2 = 0;
  MulAddTwice(a0, a3, c0, c1, c2);
  MulAddTwice(a1, a2, c0, c1, c2);
  f[3] = c0; c0 = c1; c1 = c2; c2 = 0;
  MulAddTwice(a1, a3, c0, c1, c2);
  MulAdd(a2, a2, c0, c1, c2);
  f[4] = c0; c0 = c1; c1 = c2; c2 = 0;
  MulAddTwice(a2, a3, c0, c1, c2);
  f[5] = c0; c0 = c1; c1 = c2; c2 = 0;
  MulAdd(a3, a3, c0, c1, c2);
  f[6] = c0;
  f[7] = c1;
}

// 512-bit -> mod-p fold: value = high * 2^256 + low ≡ high * c + low, twice.
inline U256 ReduceWide(const uint64_t f[8]) {
  u128 t = static_cast<u128>(f[4]) * kC + f[0];
  uint64_t r0 = static_cast<uint64_t>(t);
  t = static_cast<u128>(f[5]) * kC + f[1] + static_cast<uint64_t>(t >> 64);
  uint64_t r1 = static_cast<uint64_t>(t);
  t = static_cast<u128>(f[6]) * kC + f[2] + static_cast<uint64_t>(t >> 64);
  uint64_t r2 = static_cast<uint64_t>(t);
  t = static_cast<u128>(f[7]) * kC + f[3] + static_cast<uint64_t>(t >> 64);
  uint64_t r3 = static_cast<uint64_t>(t);
  uint64_t r4 = static_cast<uint64_t>(t >> 64);  // < c
  t = static_cast<u128>(r4) * kC + r0;
  uint64_t s0 = static_cast<uint64_t>(t);
  t = static_cast<u128>(r1) + static_cast<uint64_t>(t >> 64);
  uint64_t s1 = static_cast<uint64_t>(t);
  t = static_cast<u128>(r2) + static_cast<uint64_t>(t >> 64);
  uint64_t s2 = static_cast<uint64_t>(t);
  t = static_cast<u128>(r3) + static_cast<uint64_t>(t >> 64);
  uint64_t s3 = static_cast<uint64_t>(t);
  if (static_cast<uint64_t>(t >> 64) != 0) {
    // Third fold. The overflowed value was < 2^256 + c^2, so what remains
    // after dropping 2^256 is tiny and adding c cannot ripple past s1.
    t = static_cast<u128>(s0) + kC;
    s0 = static_cast<uint64_t>(t);
    s1 += static_cast<uint64_t>(t >> 64);
    return U256(s3, s2, s1, s0);
  }
  if ((s1 & s2 & s3) == ~uint64_t{0} && s0 >= kP0) {
    s0 -= kP0;
    s1 = s2 = s3 = 0;
  }
  return U256(s3, s2, s1, s0);
}

U256 FieldMul(const U256& a, const U256& b) {
  uint64_t f[8];
  MulWide(a, b, f);
  return ReduceWide(f);
}

U256 FieldSqr(const U256& a) {
  uint64_t f[8];
  SqrWide(a, f);
  return ReduceWide(f);
}

// ---- 5x52 lazy-reduction field elements (point-arithmetic hot path) ----
//
// The Jacobian formulas below run on a radix-2^52 representation: five
// 64-bit limbs, value = sum n[i]*2^(52*i), top limb 48 bits when fully
// reduced. The ~12 spare bits per limb make addition and negation plain
// limb arithmetic with no carries or conditional subtractions at all; only
// multiplication and squaring renormalize. Each element carries an
// implicit *magnitude* bound (how far its limbs may exceed the reduced
// range, in units of 2^52): FeMul/FeSqr accept magnitudes up to 32 and
// produce magnitude 1, FeAdd sums magnitudes, FeNegate(a, m) maps
// magnitude <= m to 2(m+1), and FeMulInt scales it. The point formulas
// keep every multiplier input below the kernel bound and weak-normalize
// their stored outputs. The U256 comba kernels above remain the field API
// at module boundaries; conversion happens only when points enter or
// leave the Jacobian core.

struct Fe {
  uint64_t n[5];
};

constexpr uint64_t kM52 = 0xFFFFFFFFFFFFFULL;
constexpr uint64_t kM48 = 0xFFFFFFFFFFFFULL;
constexpr uint64_t kR32 = 0x1000003D1ULL;        // 2^256 mod p
constexpr uint64_t kR36 = 0x1000003D10ULL;       // 2^260 mod p
constexpr uint64_t kP52_0 = 0xFFFFEFFFFFC2FULL;  // p's low 52-bit digit

constexpr Fe kFeZero{{0, 0, 0, 0, 0}};
constexpr Fe kFeOne{{1, 0, 0, 0, 0}};

// Splices four 64-bit limbs into five 52-bit ones; canonical in, magnitude
// 1 out.
inline Fe FeFromU256(const U256& a) {
  return {{a.limb(0) & kM52,
           ((a.limb(0) >> 52) | (a.limb(1) << 12)) & kM52,
           ((a.limb(1) >> 40) | (a.limb(2) << 24)) & kM52,
           ((a.limb(2) >> 28) | (a.limb(3) << 36)) & kM52,
           a.limb(3) >> 16}};
}

// One carry-fold pass: limbs back under 52 bits (top under 48 plus the
// input magnitude), value unchanged mod p but possibly still >= p.
// Tolerates limbs up to ~2^62.
inline void FeNormalizeWeak(Fe& a) {
  uint64_t t0 = a.n[0], t1 = a.n[1], t2 = a.n[2], t3 = a.n[3], t4 = a.n[4];
  t0 += (t4 >> 48) * kR32;
  t4 &= kM48;
  t1 += t0 >> 52; t0 &= kM52;
  t2 += t1 >> 52; t1 &= kM52;
  t3 += t2 >> 52; t2 &= kM52;
  t4 += t3 >> 52; t3 &= kM52;
  a = {{t0, t1, t2, t3, t4}};
}

// Full canonical reduction to [0, p), variable time.
inline void FeNormalizeVar(Fe& a) {
  FeNormalizeWeak(a);
  uint64_t t0 = a.n[0], t1 = a.n[1], t2 = a.n[2], t3 = a.n[3], t4 = a.n[4];
  uint64_t x = t4 >> 48;
  if (x != 0) {  // the weak pass left at most one bit above 2^256
    t4 &= kM48;
    t0 += x * kR32;
    t1 += t0 >> 52; t0 &= kM52;
    t2 += t1 >> 52; t1 &= kM52;
    t3 += t2 >> 52; t2 &= kM52;
    t4 += t3 >> 52; t3 &= kM52;
  }
  if (t4 == kM48 && t3 == kM52 && t2 == kM52 && t1 == kM52 && t0 >= kP52_0) {
    t0 -= kP52_0;  // value was in [p, 2^256)
    t1 = t2 = t3 = t4 = 0;
  }
  a = {{t0, t1, t2, t3, t4}};
}

// Does the element represent 0 mod p? Variable time. One weak pass leaves
// a value < 2p, so zero means limbs exactly 0 or exactly p.
inline bool FeIsZeroVar(const Fe& a) {
  Fe t = a;
  FeNormalizeWeak(t);
  if ((t.n[0] | t.n[1] | t.n[2] | t.n[3] | t.n[4]) == 0) return true;
  return t.n[0] == kP52_0 && t.n[1] == kM52 && t.n[2] == kM52 &&
         t.n[3] == kM52 && t.n[4] == kM48;
}

inline U256 FeToU256(const Fe& a) {
  Fe t = a;
  FeNormalizeVar(t);
  return U256((t.n[3] >> 36) | (t.n[4] << 16),
              (t.n[2] >> 24) | (t.n[3] << 28),
              (t.n[1] >> 12) | (t.n[2] << 40),
              t.n[0] | (t.n[1] << 52));
}

inline Fe FeAdd(const Fe& a, const Fe& b) {
  return {{a.n[0] + b.n[0], a.n[1] + b.n[1], a.n[2] + b.n[2],
           a.n[3] + b.n[3], a.n[4] + b.n[4]}};
}

// 2(m+1)p - a == -a (mod p), underflow-free for magnitude <= m inputs.
inline Fe FeNegate(const Fe& a, uint64_t m) {
  return {{kP52_0 * 2 * (m + 1) - a.n[0], kM52 * 2 * (m + 1) - a.n[1],
           kM52 * 2 * (m + 1) - a.n[2], kM52 * 2 * (m + 1) - a.n[3],
           kM48 * 2 * (m + 1) - a.n[4]}};
}

inline Fe FeMulInt(const Fe& a, uint64_t k) {
  return {{a.n[0] * k, a.n[1] * k, a.n[2] * k, a.n[3] * k, a.n[4] * k}};
}

// Shared tail of FeMul/FeSqr: double-width columns c_k (weight 2^(52k))
// down to five magnitude-1 limbs, folding with 2^260 ≡ kR36 and
// 2^256 ≡ kR32.
inline Fe FeReduce(u128 c0, u128 c1, u128 c2, u128 c3, u128 c4, u128 c5,
                   u128 c6, u128 c7, u128 c8) {
  uint64_t h5 = static_cast<uint64_t>(c5) & kM52;
  c6 += c5 >> 52;
  uint64_t h6 = static_cast<uint64_t>(c6) & kM52;
  c7 += c6 >> 52;
  uint64_t h7 = static_cast<uint64_t>(c7) & kM52;
  c8 += c7 >> 52;
  uint64_t h8 = static_cast<uint64_t>(c8) & kM52;
  uint64_t h9 = static_cast<uint64_t>(c8 >> 52);
  c0 += static_cast<u128>(h5) * kR36;
  c1 += static_cast<u128>(h6) * kR36;
  c2 += static_cast<u128>(h7) * kR36;
  c3 += static_cast<u128>(h8) * kR36;
  c4 += static_cast<u128>(h9) * kR36;
  uint64_t r0 = static_cast<uint64_t>(c0) & kM52; c1 += c0 >> 52;
  uint64_t r1 = static_cast<uint64_t>(c1) & kM52; c2 += c1 >> 52;
  uint64_t r2 = static_cast<uint64_t>(c2) & kM52; c3 += c2 >> 52;
  uint64_t r3 = static_cast<uint64_t>(c3) & kM52; c4 += c3 >> 52;
  uint64_t r4 = static_cast<uint64_t>(c4) & kM48;
  u128 t = static_cast<u128>(r0) + (c4 >> 48) * static_cast<u128>(kR32);
  r0 = static_cast<uint64_t>(t) & kM52;
  t = static_cast<u128>(r1) + (t >> 52);
  r1 = static_cast<uint64_t>(t) & kM52;
  r2 += static_cast<uint64_t>(t >> 52);  // <= 1; cannot ripple further
  return {{r0, r1, r2, r3, r4}};
}

Fe FeMul(const Fe& a, const Fe& b) {
  const uint64_t a0 = a.n[0], a1 = a.n[1], a2 = a.n[2], a3 = a.n[3],
                 a4 = a.n[4];
  const uint64_t b0 = b.n[0], b1 = b.n[1], b2 = b.n[2], b3 = b.n[3],
                 b4 = b.n[4];
  return FeReduce(
      static_cast<u128>(a0) * b0,
      static_cast<u128>(a0) * b1 + static_cast<u128>(a1) * b0,
      static_cast<u128>(a0) * b2 + static_cast<u128>(a1) * b1 +
          static_cast<u128>(a2) * b0,
      static_cast<u128>(a0) * b3 + static_cast<u128>(a1) * b2 +
          static_cast<u128>(a2) * b1 + static_cast<u128>(a3) * b0,
      static_cast<u128>(a0) * b4 + static_cast<u128>(a1) * b3 +
          static_cast<u128>(a2) * b2 + static_cast<u128>(a3) * b1 +
          static_cast<u128>(a4) * b0,
      static_cast<u128>(a1) * b4 + static_cast<u128>(a2) * b3 +
          static_cast<u128>(a3) * b2 + static_cast<u128>(a4) * b1,
      static_cast<u128>(a2) * b4 + static_cast<u128>(a3) * b3 +
          static_cast<u128>(a4) * b2,
      static_cast<u128>(a3) * b4 + static_cast<u128>(a4) * b3,
      static_cast<u128>(a4) * b4);
}

Fe FeSqr(const Fe& a) {
  const uint64_t a0 = a.n[0], a1 = a.n[1], a2 = a.n[2], a3 = a.n[3],
                 a4 = a.n[4];
  const uint64_t d0 = a0 * 2, d1 = a1 * 2, d2 = a2 * 2, d3 = a3 * 2;
  return FeReduce(static_cast<u128>(a0) * a0,
                  static_cast<u128>(d0) * a1,
                  static_cast<u128>(d0) * a2 + static_cast<u128>(a1) * a1,
                  static_cast<u128>(d0) * a3 + static_cast<u128>(d1) * a2,
                  static_cast<u128>(d0) * a4 + static_cast<u128>(d1) * a3 +
                      static_cast<u128>(a2) * a2,
                  static_cast<u128>(d1) * a4 + static_cast<u128>(d2) * a3,
                  static_cast<u128>(d2) * a4 + static_cast<u128>(a3) * a3,
                  static_cast<u128>(d3) * a4,
                  static_cast<u128>(a4) * a4);
}

// x^(2^n) by n squarings. The Fermat ladders below stay on the four-limb
// comba kernels rather than the 5x52 ones: an exponentiation is one long
// serial dependency chain, and the comba squaring has the shorter latency
// (the 5x52 representation wins on throughput, which only point formulas
// with several independent multiplications can exploit).
U256 SqrN(U256 x, int n) {
  for (int i = 0; i < n; ++i) x = FieldSqr(x);
  return x;
}

// Shared ladder for the Fermat exponentiations: x<k> denotes a^(2^k - 1).
// p's binary form (223 ones, then structured low bits) makes both p-2 and
// (p+1)/4 reachable from a^(2^223 - 1) with a handful of extra steps — the
// standard secp256k1 addition chain.
struct FermatLadder {
  U256 x2, x3, x22, x223;
};

FermatLadder BuildLadder(const U256& a) {
  FermatLadder l;
  l.x2 = FieldMul(FieldSqr(a), a);
  l.x3 = FieldMul(FieldSqr(l.x2), a);
  U256 x6 = FieldMul(SqrN(l.x3, 3), l.x3);
  U256 x9 = FieldMul(SqrN(x6, 3), l.x3);
  U256 x11 = FieldMul(SqrN(x9, 2), l.x2);
  l.x22 = FieldMul(SqrN(x11, 11), x11);
  U256 x44 = FieldMul(SqrN(l.x22, 22), l.x22);
  U256 x88 = FieldMul(SqrN(x44, 44), x44);
  U256 x176 = FieldMul(SqrN(x88, 88), x88);
  U256 x220 = FieldMul(SqrN(x176, 44), x44);
  l.x223 = FieldMul(SqrN(x220, 3), l.x3);
  return l;
}

// a^(p-2) mod p — the inverse, by Fermat's little theorem.
U256 FieldInvFastImpl(const U256& a) {
  FermatLadder l = BuildLadder(a);
  U256 t = FieldMul(SqrN(l.x223, 23), l.x22);
  t = FieldMul(SqrN(t, 5), a);
  t = FieldMul(SqrN(t, 3), l.x2);
  return FieldMul(SqrN(t, 2), a);
}

// a^((p+1)/4) mod p — a square root when a is a quadratic residue; callers
// must verify the result squares back (non-residues return garbage).
U256 FieldSqrtFastImpl(const U256& a) {
  FermatLadder l = BuildLadder(a);
  U256 t = FieldMul(SqrN(l.x223, 23), l.x22);
  t = FieldMul(SqrN(t, 6), l.x2);
  return SqrN(t, 2);
}

// ---- Jacobian point arithmetic (a = 0 curve), over 5x52 elements ----
//
// Coordinate magnitude invariants: x, y <= 1 after every formula below
// (outputs are weak-normalized), z <= 2 (the trailing doubling is stored
// as-is), and y <= 6 for the φ-table base point in JacScalarMulFast (an
// unnormalized FeNegate) — every formula's multiplier inputs stay within
// the FeMul/FeSqr magnitude-32 bound under these.

struct Jacobian {
  Fe x;
  Fe y;
  Fe z;  // exact all-zero limbs mean infinity (see IsInfinity)

  // Formulas only ever produce z as a canonical zero (the explicit
  // infinity branches), so the exact-limb test is safe: a FeMul output
  // can represent 0 non-canonically only if an input was ≡ 0 mod p, and
  // the h ≡ 0 / y ≡ 0 cases are branched out first.
  bool IsInfinity() const {
    return (z.n[0] | z.n[1] | z.n[2] | z.n[3] | z.n[4]) == 0;
  }
};

// Affine (z = 1) table entry kept in the 5x52 representation, for mixed
// additions straight out of precomputed tables.
struct FeAffine {
  Fe x;
  Fe y;
};

constexpr Jacobian kJacInfinity{kFeOne, kFeOne, kFeZero};

Jacobian ToJacobian(const AffinePoint& p) {
  if (p.infinity) return kJacInfinity;
  return {FeFromU256(p.x), FeFromU256(p.y), kFeOne};
}

AffinePoint ToAffineFast(const Jacobian& p) {
  if (p.IsInfinity()) return {U256(), U256(), true};
  Fe zinv = FeFromU256(ModInverseDivsteps(FeToU256(p.z), kP));
  Fe zinv2 = FeSqr(zinv);
  Fe zinv3 = FeMul(zinv2, zinv);
  return {FeToU256(FeMul(p.x, zinv2)), FeToU256(FeMul(p.y, zinv3)), false};
}

// dbl-2009-l. A y ≡ 0 input would need a point of order 2, which a prime
// odd-order group has none of; z3 = 2yz still degrades to a canonical-zero
// z for an exact y = 0, keeping the identity representable.
Jacobian JacDouble(const Jacobian& p) {
  if (p.IsInfinity()) return kJacInfinity;
  Fe a = FeSqr(p.x);                            // A = X1^2
  Fe b = FeSqr(p.y);                            // B = Y1^2
  Fe c = FeSqr(b);                              // C = B^2
  Fe t = FeSqr(FeAdd(p.x, b));                  // (X1+B)^2
  Fe d = FeMulInt(FeAdd(FeAdd(t, FeNegate(a, 1)), FeNegate(c, 1)), 2);
  Fe e = FeMulInt(a, 3);                        // E = 3A
  Fe f = FeSqr(e);                              // F = E^2
  Fe x3 = FeAdd(f, FeNegate(FeMulInt(d, 2), 36));  // F - 2D
  FeNormalizeWeak(x3);
  Fe y3 = FeAdd(FeMul(e, FeAdd(d, FeNegate(x3, 1))),   // E(D - X3)
                FeNegate(FeMulInt(c, 8), 8));          // - 8C
  FeNormalizeWeak(y3);
  Fe z3 = FeMulInt(FeMul(p.y, p.z), 2);
  return {x3, y3, z3};
}

// add-2007-bl.
Jacobian JacAdd(const Jacobian& p, const Jacobian& q) {
  if (p.IsInfinity()) return q;
  if (q.IsInfinity()) return p;
  Fe z1z1 = FeSqr(p.z);
  Fe z2z2 = FeSqr(q.z);
  Fe u1 = FeMul(p.x, z2z2);
  Fe u2 = FeMul(q.x, z1z1);
  Fe s1 = FeMul(p.y, FeMul(z2z2, q.z));
  Fe s2 = FeMul(q.y, FeMul(z1z1, p.z));
  Fe h = FeAdd(u2, FeNegate(u1, 1));      // U2 - U1
  Fe sdiff = FeAdd(s2, FeNegate(s1, 1));  // S2 - S1
  if (FeIsZeroVar(h)) {
    if (!FeIsZeroVar(sdiff)) return kJacInfinity;  // P + (-P)
    return JacDouble(p);
  }
  Fe i = FeSqr(FeMulInt(h, 2));
  Fe j = FeMul(h, i);
  Fe r = FeMulInt(sdiff, 2);
  Fe v = FeMul(u1, i);
  Fe x3 = FeAdd(FeAdd(FeSqr(r), FeNegate(j, 1)),
                FeNegate(FeMulInt(v, 2), 2));
  FeNormalizeWeak(x3);
  Fe y3 = FeAdd(FeMul(r, FeAdd(v, FeNegate(x3, 1))),
                FeNegate(FeMulInt(FeMul(s1, j), 2), 2));
  FeNormalizeWeak(y3);
  Fe z3 = FeMulInt(FeMul(FeMul(p.z, q.z), h), 2);
  return {x3, y3, z3};
}

// Mixed addition p + q with q affine (z2 = 1): saves the z2 squaring/cubing
// of the general formula. Table entries are affine precisely for this.
Jacobian JacAddMixed(const Jacobian& p, const FeAffine& q) {
  if (p.IsInfinity()) return {q.x, q.y, kFeOne};
  Fe z1z1 = FeSqr(p.z);
  Fe u2 = FeMul(q.x, z1z1);
  Fe s2 = FeMul(q.y, FeMul(z1z1, p.z));
  Fe h = FeAdd(u2, FeNegate(p.x, 2));      // U2 - X1
  Fe sdiff = FeAdd(s2, FeNegate(p.y, 6));  // S2 - Y1
  if (FeIsZeroVar(h)) {
    if (!FeIsZeroVar(sdiff)) return kJacInfinity;  // P + (-P)
    return JacDouble(p);
  }
  Fe i = FeSqr(FeMulInt(h, 2));
  Fe j = FeMul(h, i);
  Fe r = FeMulInt(sdiff, 2);
  Fe v = FeMul(p.x, i);
  Fe x3 = FeAdd(FeAdd(FeSqr(r), FeNegate(j, 1)),
                FeNegate(FeMulInt(v, 2), 2));
  FeNormalizeWeak(x3);
  Fe y3 = FeAdd(FeMul(r, FeAdd(v, FeNegate(x3, 1))),
                FeNegate(FeMulInt(FeMul(p.y, j), 2), 2));
  FeNormalizeWeak(y3);
  Fe z3 = FeMulInt(FeMul(p.z, h), 2);
  return {x3, y3, z3};
}

Jacobian JacNeg(const Jacobian& p) {
  Fe y = FeNegate(p.y, 6);  // 6 covers every stored-y magnitude in this file
  FeNormalizeWeak(y);
  return {p.x, y, p.z};
}

const AffinePoint kG = {
    U256(0x79be667ef9dcbbacULL, 0x55a06295ce870b07ULL, 0x029bfcdb2dce28d9ULL,
         0x59f2815b16f81798ULL),
    U256(0x483ada7726a3c465ULL, 0x5da4fbfc0e1108a8ULL, 0xfd17b448a6855419ULL,
         0x9c47d08ffb10d4b8ULL),
    false};

namespace ref {

// The reference backend: the seed implementation preserved verbatim —
// rolled operand-scanning multiply, squaring as a general multiply,
// constant multiples via full multiplies, binary-GCD field inverse, generic
// square-and-multiply square root, and per-bit double-and-add scalar
// multiplication. It shares nothing with the fast kernels above except the
// curve constants, so differential tests compare independent code paths.
// It keeps the original four-limb Jacobian layout (the fast path's
// Jacobian now holds 5x52 field elements).

struct Jacobian {
  U256 x;
  U256 y;
  U256 z;  // z == 0 means infinity

  bool IsInfinity() const { return z.IsZero(); }
};

Jacobian ToJacobian(const AffinePoint& p) {
  if (p.infinity) return {U256(1), U256(1), U256(0)};
  return {p.x, p.y, U256(1)};
}

U256 FieldAdd(const U256& a, const U256& b) {
  uint64_t out[4];
  uint64_t carry = AddLimbs(a, b, out);
  U256 r = FromLimbs(out);
  if (carry) {
    // r = a + b - 2^256; add back c (since 2^256 ≡ c mod p).
    r = r + U256(kC);
  }
  return CondSubP(r);
}

U256 FieldSub(const U256& a, const U256& b) {
  if (a >= b) return a - b;
  return a + (kP - b);
}

// 512-bit -> mod-p fold: value = high * 2^256 + low ≡ high * c + low.
U256 FieldMul(const U256& a, const U256& b) {
  // Full 256x256 product.
  uint64_t f[8] = {0};
  for (int i = 0; i < 4; ++i) {
    uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      u128 cur = static_cast<u128>(a.limb(i)) * b.limb(j) + f[i + j] + carry;
      f[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    f[i + 4] = carry;
  }
  // First fold: r (5 limbs) = low + high * c.
  uint64_t r[5] = {f[0], f[1], f[2], f[3], 0};
  uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    u128 cur = static_cast<u128>(f[i + 4]) * kC + r[i] + carry;
    r[i] = static_cast<uint64_t>(cur);
    carry = static_cast<uint64_t>(cur >> 64);
  }
  r[4] = carry;
  // Second fold: r4 * c + r[0..3].
  u128 cur = static_cast<u128>(r[4]) * kC + r[0];
  uint64_t s[4];
  s[0] = static_cast<uint64_t>(cur);
  carry = static_cast<uint64_t>(cur >> 64);
  for (int i = 1; i < 4; ++i) {
    u128 c2 = static_cast<u128>(r[i]) + carry;
    s[i] = static_cast<uint64_t>(c2);
    carry = static_cast<uint64_t>(c2 >> 64);
  }
  U256 res = FromLimbs(s);
  if (carry) res = res + U256(kC);  // third fold, carry can only be 1
  return CondSubP(res);
}

U256 FieldSqr(const U256& a) { return FieldMul(a, a); }

U256 FieldInv(const U256& a) { return ModInverse(a, kP); }

// Square root mod p via a^((p+1)/4); caller must verify the result squares
// back (non-residues return garbage).
U256 FieldSqrt(const U256& a) {
  // (p+1)/4
  static const U256 kExp = (kP + U256(1)) >> 2;
  U256 result(1);
  U256 base = a;
  for (int i = 0; i < kExp.BitLength(); ++i) {
    if (kExp.Bit(i)) result = FieldMul(result, base);
    base = FieldSqr(base);
  }
  return result;
}

AffinePoint ToAffine(const Jacobian& p) {
  if (p.IsInfinity()) return {U256(), U256(), true};
  U256 zinv = FieldInv(p.z);
  U256 zinv2 = FieldSqr(zinv);
  U256 zinv3 = FieldMul(zinv2, zinv);
  return {FieldMul(p.x, zinv2), FieldMul(p.y, zinv3), false};
}

Jacobian JacDouble(const Jacobian& p) {
  if (p.IsInfinity() || p.y.IsZero()) return {U256(1), U256(1), U256(0)};
  U256 a = FieldSqr(p.x);                      // A = X1^2
  U256 b = FieldSqr(p.y);                      // B = Y1^2
  U256 c = FieldSqr(b);                        // C = B^2
  U256 t = FieldSqr(FieldAdd(p.x, b));         // (X1+B)^2
  U256 d = FieldMul(U256(2), FieldSub(FieldSub(t, a), c));  // D
  U256 e = FieldMul(U256(3), a);               // E = 3A
  U256 f = FieldSqr(e);                        // F = E^2
  U256 x3 = FieldSub(f, FieldMul(U256(2), d));
  U256 y3 = FieldSub(FieldMul(e, FieldSub(d, x3)), FieldMul(U256(8), c));
  U256 z3 = FieldMul(U256(2), FieldMul(p.y, p.z));
  return {x3, y3, z3};
}

Jacobian JacAdd(const Jacobian& p, const Jacobian& q) {
  if (p.IsInfinity()) return q;
  if (q.IsInfinity()) return p;
  U256 z1z1 = FieldSqr(p.z);
  U256 z2z2 = FieldSqr(q.z);
  U256 u1 = FieldMul(p.x, z2z2);
  U256 u2 = FieldMul(q.x, z1z1);
  U256 s1 = FieldMul(p.y, FieldMul(z2z2, q.z));
  U256 s2 = FieldMul(q.y, FieldMul(z1z1, p.z));
  if (u1 == u2) {
    if (s1 != s2) return {U256(1), U256(1), U256(0)};  // P + (-P)
    return ref::JacDouble(p);  // qualified: ADL would also find the fast one
  }
  U256 h = FieldSub(u2, u1);
  U256 i = FieldSqr(FieldMul(U256(2), h));
  U256 j = FieldMul(h, i);
  U256 r = FieldMul(U256(2), FieldSub(s2, s1));
  U256 v = FieldMul(u1, i);
  U256 x3 = FieldSub(FieldSub(FieldSqr(r), j), FieldMul(U256(2), v));
  U256 y3 = FieldSub(FieldMul(r, FieldSub(v, x3)),
                     FieldMul(U256(2), FieldMul(s1, j)));
  U256 z3 = FieldMul(U256(2), FieldMul(FieldMul(p.z, q.z), h));
  return {x3, y3, z3};
}

// Per-bit double-and-add (MSB first).
Jacobian JacScalarMul(const Jacobian& p, const U256& k) {
  Jacobian result{U256(1), U256(1), U256(0)};
  if (k.IsZero() || p.IsInfinity()) return result;
  for (int i = k.BitLength() - 1; i >= 0; --i) {
    result = ref::JacDouble(result);
    if (k.Bit(i)) result = ref::JacAdd(result, p);
  }
  return result;
}

}  // namespace ref

// ---- Fast scalar multiplication: comb/wNAF tables + GLV ----

// Normalizes a batch of (non-infinity) Jacobian points with one inversion
// (Montgomery's trick) — used to build affine precomputation tables.
std::vector<FeAffine> BatchToAffine(const std::vector<Jacobian>& pts) {
  std::vector<Fe> prefix(pts.size());
  Fe acc = kFeOne;
  for (size_t i = 0; i < pts.size(); ++i) {
    assert(!pts[i].IsInfinity());
    prefix[i] = acc;                 // z_0 * ... * z_{i-1}
    acc = FeMul(acc, pts[i].z);
  }
  // 1 / (z_0 * ... * z_{n-1})
  Fe inv = FeFromU256(ModInverseDivsteps(FeToU256(acc), kP));
  std::vector<FeAffine> out(pts.size());
  for (size_t i = pts.size(); i-- > 0;) {
    Fe zinv = FeMul(inv, prefix[i]);  // 1 / z_i
    inv = FeMul(inv, pts[i].z);
    Fe zinv2 = FeSqr(zinv);
    out[i] = {FeMul(pts[i].x, zinv2),
              FeMul(pts[i].y, FeMul(zinv2, zinv))};
  }
  return out;
}

// Fixed-base comb for G: table[w][d-1] = d * 2^(8w) * G for d in 1..255,
// w in 0..31. k*G is then at most 32 mixed additions and zero doublings.
// No entry is ever the identity: d * 2^(8w) < 2^256 is never a multiple of
// the (prime, odd, > 2^255) group order. The table is ~574 KiB, built once
// on first use (8k additions + one batched inversion).
constexpr int kCombWindows = 32;
constexpr int kCombDigits = 255;

struct FixedBaseTable {
  FeAffine pts[kCombWindows][kCombDigits];
};

const FixedBaseTable* BuildFixedBaseTable() {
  auto* table = new FixedBaseTable;
  std::vector<Jacobian> jac;
  jac.reserve(kCombWindows * kCombDigits);
  Jacobian base = ToJacobian(kG);
  for (int w = 0; w < kCombWindows; ++w) {
    Jacobian cur = base;
    for (int d = 1; d <= kCombDigits; ++d) {
      jac.push_back(cur);
      if (d < kCombDigits) cur = JacAdd(cur, base);
    }
    for (int i = 0; i < 8; ++i) base = JacDouble(base);  // base *= 256
  }
  std::vector<FeAffine> affine = BatchToAffine(jac);
  for (int w = 0; w < kCombWindows; ++w) {
    for (int d = 0; d < kCombDigits; ++d) {
      table->pts[w][d] = affine[w * kCombDigits + d];
    }
  }
  return table;
}

const FixedBaseTable& GetFixedBaseTable() {
  static const FixedBaseTable* table = BuildFixedBaseTable();
  return *table;
}

// k*G via the comb table; k must already be reduced mod n.
Jacobian ScalarBaseMulFast(const U256& k) {
  const FixedBaseTable& table = GetFixedBaseTable();
  Jacobian acc = kJacInfinity;
  for (int w = 0; w < kCombWindows; ++w) {
    uint32_t digit =
        static_cast<uint32_t>(k.limb(w / 8) >> ((w % 8) * 8)) & 0xFF;
    if (digit != 0) acc = JacAddMixed(acc, table.pts[w][digit - 1]);
  }
  return acc;
}

// Width-5 wNAF: little-endian signed digits, each odd in [-15, 15] or zero.
constexpr int kWnafWidth = 5;
constexpr int kWnafTableSize = 1 << (kWnafWidth - 2);  // 8 odd multiples
// A 256-bit scalar emits at most 257 digits (the +15 adjustment can carry
// one bit past the top).
constexpr int kWnafMaxDigits = 258;

// Digits into a caller-provided buffer, raw-limb (no U256 temporaries, no
// heap): returns the digit count.
int Wnaf(const U256& k, int8_t out[kWnafMaxDigits]) {
  uint64_t w[5] = {k.limb(0), k.limb(1), k.limb(2), k.limb(3), 0};
  int n = 0;
  while ((w[0] | w[1] | w[2] | w[3] | w[4]) != 0) {
    int digit = 0;
    if (w[0] & 1) {
      digit = static_cast<int>(w[0] & 31);
      if (digit > 16) digit -= 32;
      if (digit > 0) {
        uint64_t d = static_cast<uint64_t>(digit);
        uint64_t borrow = w[0] < d ? 1 : 0;
        w[0] -= d;
        for (int i = 1; borrow != 0 && i < 5; ++i) {
          borrow = w[i] == 0 ? 1 : 0;
          --w[i];
        }
      } else {
        uint64_t d = static_cast<uint64_t>(-digit);
        uint64_t before = w[0];
        w[0] += d;
        uint64_t carry = w[0] < before ? 1 : 0;
        for (int i = 1; carry != 0 && i < 5; ++i) {
          ++w[i];
          carry = w[i] == 0 ? 1 : 0;
        }
      }
    }
    out[n++] = static_cast<int8_t>(digit);
    w[0] = (w[0] >> 1) | (w[1] << 63);
    w[1] = (w[1] >> 1) | (w[2] << 63);
    w[2] = (w[2] >> 1) | (w[3] << 63);
    w[3] = (w[3] >> 1) | (w[4] << 63);
    w[4] >>= 1;
  }
  return n;
}

// Odd multiples 1P, 3P, ..., 15P (Jacobian) for a runtime point.
void BuildOddMultiples(const Jacobian& p, Jacobian out[kWnafTableSize]) {
  out[0] = p;
  Jacobian twop = JacDouble(p);
  for (int i = 1; i < kWnafTableSize; ++i) {
    out[i] = JacAdd(out[i - 1], twop);
  }
}

// JacAdd with the result's z-ratio exposed: *zr = z3 / z1. Only valid when
// neither operand is infinity and p != ±q — which the table construction
// below guarantees (every scalar involved is far below the group order).
Jacobian JacAddWithRatio(const Jacobian& p, const Jacobian& q, Fe* zr) {
  Fe z1z1 = FeSqr(p.z);
  Fe z2z2 = FeSqr(q.z);
  Fe u1 = FeMul(p.x, z2z2);
  Fe u2 = FeMul(q.x, z1z1);
  Fe s1 = FeMul(p.y, FeMul(z2z2, q.z));
  Fe s2 = FeMul(q.y, FeMul(z1z1, p.z));
  Fe h = FeAdd(u2, FeNegate(u1, 1));
  Fe sdiff = FeAdd(s2, FeNegate(s1, 1));
  Fe i = FeSqr(FeMulInt(h, 2));
  Fe j = FeMul(h, i);
  Fe r = FeMulInt(sdiff, 2);
  Fe v = FeMul(u1, i);
  Fe x3 = FeAdd(FeAdd(FeSqr(r), FeNegate(j, 1)),
                FeNegate(FeMulInt(v, 2), 2));
  FeNormalizeWeak(x3);
  Fe y3 = FeAdd(FeMul(r, FeAdd(v, FeNegate(x3, 1))),
                FeNegate(FeMulInt(FeMul(s1, j), 2), 2));
  FeNormalizeWeak(y3);
  *zr = FeMulInt(FeMul(q.z, h), 2);  // z3 = z1 * (2 * z2 * h)
  Fe z3 = FeMul(p.z, *zr);
  return {x3, y3, z3};
}

// Odd multiples 1P, 3P, ..., 15P expressed against one shared denominator
// ("effective affine"): out[i] holds affine coordinates of (2i+1)P under
// the curve isomorphism (x, y) -> (x Z^2, y Z^3) for the returned Z. The
// a = 0 Jacobian formulas never touch the curve constant, so mixed-adding
// these entries into an accumulator computes the right group operation on
// the isomorphic curve; the caller repairs the final point with a single
// z *= Z. That turns every table addition in the wNAF loop into the
// cheaper mixed form, at the cost of one inversion-free rescale pass here.
Fe BuildOddMultiplesEffAffine(const Jacobian& p,
                              FeAffine out[kWnafTableSize]) {
  Jacobian jac[kWnafTableSize];
  Fe zr[kWnafTableSize];  // zr[i] = z_i / z_{i-1}
  jac[0] = p;
  Jacobian twop = JacDouble(p);
  for (int i = 1; i < kWnafTableSize; ++i) {
    jac[i] = JacAddWithRatio(jac[i - 1], twop, &zr[i]);
  }
  constexpr int kLast = kWnafTableSize - 1;
  out[kLast] = {jac[kLast].x, jac[kLast].y};
  Fe zs = zr[kLast];  // accumulates Z / z_i as the walk descends
  for (int i = kLast; i-- > 0;) {
    Fe zs2 = FeSqr(zs);
    out[i] = {FeMul(jac[i].x, zs2), FeMul(jac[i].y, FeMul(zs2, zs))};
    if (i > 0) zs = FeMul(zs, zr[i]);
  }
  return jac[kLast].z;
}

FeAffine NegAffine(const FeAffine& a) { return {a.x, FeNegate(a.y, 1)}; }

// Plain (non-GLV) wNAF multiplication; the fallback when the endomorphism
// context fails its startup self-checks, and the oracle those checks use.
Jacobian JacScalarMulWnaf(const Jacobian& p, const U256& k) {
  if (k.IsZero() || p.IsInfinity()) return kJacInfinity;
  int8_t naf[kWnafMaxDigits];
  int len = Wnaf(k, naf);
  Jacobian odd[kWnafTableSize];
  BuildOddMultiples(p, odd);
  Jacobian acc = kJacInfinity;
  for (int i = len; i-- > 0;) {
    acc = JacDouble(acc);
    int d = naf[i];
    if (d > 0) {
      acc = JacAdd(acc, odd[(d - 1) / 2]);
    } else if (d < 0) {
      acc = JacAdd(acc, JacNeg(odd[(-d - 1) / 2]));
    }
  }
  return acc;
}

// ---- GLV endomorphism ----
//
// secp256k1 has an efficient endomorphism φ(x, y) = (βx, y) acting as
// multiplication by λ, where λ³ ≡ 1 (mod n) and β³ ≡ 1 (mod p). Splitting
// k ≡ k1 + k2·λ (mod n) with |k1|, |k2| ≈ √n halves the doubling count of
// a variable-point multiplication: two ~129-bit wNAF scalars share one
// doubling chain, and the second table is φ of the first (one field
// multiplication per entry).
//
// The lattice basis (a1, b1), (a2, b2) below is the classical one for
// secp256k1 (b1 is negative; |b1| is stored). The division estimates
// g_i = floor(2^384 * b_i / n) are not hard-coded: they are re-derived at
// startup by exact long division. Every constant is then verified (λ and β
// are cube roots of unity, a_i + b_i·λ ≡ 0 mod n, and φ(G) = λ·G against
// the plain wNAF path); each decomposition is also checked to recompose.
// Any mismatch disables the context and scalar multiplication degrades to
// the plain path — wrong constants can cost speed, never correctness.

// floor((num << 384) / den) for den > 2^255, by bit-at-a-time long division
// with a 257-bit remainder tracked as (high, rem). The quotient must fit in
// 256 bits; returns 0 (a harmless "no adjustment" estimate) if it would not.
U256 DivShifted384(const U256& num, const U256& den) {
  U256 q(0);
  U256 rem(0);
  for (int i = 512; i >= 0; --i) {
    bool high = rem.Bit(255);
    rem = rem << 1;
    int src = i - 384;
    if (src >= 0 && num.Bit(src)) rem.SetBit(0);
    if (high || rem >= den) {
      rem = high ? rem + (U256(0) - den) : rem - den;
      if (i >= 256) return U256(0);
      q.SetBit(i);
    }
  }
  return q;
}

// round((a * b) / 2^384) via the full 512-bit product.
U256 MulShift384Round(const U256& a, const U256& b) {
  uint64_t f[8];
  MulWide(a, b, f);
  u128 t = static_cast<u128>(f[6]) + (f[5] >> 63);
  uint64_t lo = static_cast<uint64_t>(t);
  uint64_t hi = f[7] + static_cast<uint64_t>(t >> 64);
  return U256(0, 0, hi, lo);
}

struct GlvContext {
  bool ok = false;
  U256 lambda, beta;
  U256 a1, b1, a2, b2;  // b1 holds |b1|; the sign is folded into the algebra
  U256 g1, g2;          // floor(2^384 * b2 / n), floor(2^384 * |b1| / n)
};

const GlvContext& GetGlv() {
  static const GlvContext ctx = [] {
    GlvContext g;
    g.lambda = U256(0x5363ad4cc05c30e0ULL, 0xa5261c028812645aULL,
                    0x122e22ea20816678ULL, 0xdf02967c1b23bd72ULL);
    g.beta = U256(0x7ae96a2b657c0710ULL, 0x6e64479eac3434e9ULL,
                  0x9cf0497512f58995ULL, 0xc1396c28719501eeULL);
    g.a1 = U256(0, 0, 0x3086d221a7d46bcdULL, 0xe86c90e49284eb15ULL);
    g.b1 = U256(0, 0, 0xe4437ed6010e8828ULL, 0x6f547fa90abfe4c3ULL);
    g.a2 = U256(0, 1, 0x14ca50f7a8e2f3f6ULL, 0x57c1108d9d44cfd8ULL);
    g.b2 = g.a1;
    g.g1 = DivShifted384(g.b2, kN);
    g.g2 = DivShifted384(g.b1, kN);
    // λ³ ≡ 1 (mod n), λ ≠ 1.
    U256 l2 = U256::MulMod(g.lambda, g.lambda, kN);
    if (U256::MulMod(l2, g.lambda, kN) != U256(1) || g.lambda == U256(1)) {
      return g;
    }
    // β³ ≡ 1 (mod p), β ≠ 1.
    U256 b2sq = FieldMul(g.beta, g.beta);
    if (FieldMul(b2sq, g.beta) != U256(1) || g.beta == U256(1)) return g;
    // Basis vectors lie in the lattice: a_i + b_i·λ ≡ 0 (mod n).
    if (U256::MulMod(g.b1, g.lambda, kN) != g.a1) return g;  // b1 < 0
    if (U256::AddMod(g.a2, U256::MulMod(g.b2, g.lambda, kN), kN) != U256()) {
      return g;
    }
    // φ(G) must equal λ·G (computed via the plain wNAF path).
    AffinePoint lg = ToAffineFast(JacScalarMulWnaf(ToJacobian(kG), g.lambda));
    if (lg.infinity || lg.x != FieldMul(g.beta, kG.x) || lg.y != kG.y) {
      return g;
    }
    g.ok = true;
    return g;
  }();
  return ctx;
}

inline U256 SubModN(const U256& a, const U256& b) {  // both already < n
  return a >= b ? a - b : a + (kN - b);
}

struct GlvSplit {
  U256 k1, k2;
  bool neg1 = false;
  bool neg2 = false;
  bool ok = false;
};

GlvSplit GlvDecompose(const U256& k, const GlvContext& g) {
  GlvSplit s;
  U256 c1 = MulShift384Round(k, g.g1);
  U256 c2 = MulShift384Round(k, g.g2);
  U256 t = U256::AddMod(U256::MulMod(c1, g.a1, kN),
                        U256::MulMod(c2, g.a2, kN), kN);
  s.k1 = SubModN(k % kN, t);
  // k2 = -(c1*b1 + c2*b2) = c1*|b1| - c2*b2 (mod n).
  s.k2 = SubModN(U256::MulMod(c1, g.b1, kN), U256::MulMod(c2, g.b2, kN));
  // The split must recompose before sign-normalization: k1 + k2·λ ≡ k.
  if (U256::AddMod(s.k1, U256::MulMod(s.k2, g.lambda, kN), kN) != k % kN) {
    return s;
  }
  static const U256 kHalfN = kN >> 1;
  if (s.k1 > kHalfN) {
    s.k1 = kN - s.k1;
    s.neg1 = true;
  }
  if (s.k2 > kHalfN) {
    s.k2 = kN - s.k2;
    s.neg2 = true;
  }
  // Both halves should be ~129 bits; anything larger means the rounding
  // estimates are off, and the plain path is the better choice.
  s.ok = s.k1.BitLength() <= 160 && s.k2.BitLength() <= 160;
  return s;
}

// Fast variable-point multiplication; k must be reduced mod n. GLV split
// when available, plain wNAF otherwise.
Jacobian JacScalarMulFast(const Jacobian& p, const U256& k) {
  if (k.IsZero() || p.IsInfinity()) return kJacInfinity;
  const GlvContext& glv = GetGlv();
  if (!glv.ok) return JacScalarMulWnaf(p, k);
  GlvSplit split = GlvDecompose(k, glv);
  if (!split.ok) return JacScalarMulWnaf(p, k);
  int8_t naf1[kWnafMaxDigits];
  int8_t naf2[kWnafMaxDigits];
  int len1 = split.k1.IsZero() ? 0 : Wnaf(split.k1, naf1);
  int len2 = split.k2.IsZero() ? 0 : Wnaf(split.k2, naf2);
  FeAffine odd1[kWnafTableSize];
  FeAffine odd2[kWnafTableSize];
  // Both tables share one global Z: φ only scales x by β, leaving every
  // entry's denominator — and therefore the isomorphism — unchanged.
  Fe globalz = kFeOne;
  if (len1 > 0) {
    globalz = BuildOddMultiplesEffAffine(split.neg1 ? JacNeg(p) : p, odd1);
  }
  if (len2 > 0) {
    const Fe beta = FeFromU256(glv.beta);
    if (len1 > 0) {
      // φ(d·P1) = d·φ(P1): (βx, y). A sign flip on y reconciles the two
      // halves' negations.
      bool flip = split.neg1 != split.neg2;
      for (int i = 0; i < kWnafTableSize; ++i) {
        Fe y = odd1[i].y;
        if (flip) {
          y = FeNegate(y, 1);
          FeNormalizeWeak(y);
        }
        odd2[i] = {FeMul(beta, odd1[i].x), y};
      }
    } else {
      Jacobian base = {FeMul(beta, p.x),
                       split.neg2 ? FeNegate(p.y, 2) : p.y, p.z};
      globalz = BuildOddMultiplesEffAffine(base, odd2);
    }
  }
  Jacobian acc = kJacInfinity;
  for (int i = std::max(len1, len2); i-- > 0;) {
    acc = JacDouble(acc);
    if (i < len1) {
      int d = naf1[i];
      if (d > 0) {
        acc = JacAddMixed(acc, odd1[(d - 1) / 2]);
      } else if (d < 0) {
        acc = JacAddMixed(acc, NegAffine(odd1[(-d - 1) / 2]));
      }
    }
    if (i < len2) {
      int d = naf2[i];
      if (d > 0) {
        acc = JacAddMixed(acc, odd2[(d - 1) / 2]);
      } else if (d < 0) {
        acc = JacAddMixed(acc, NegAffine(odd2[(-d - 1) / 2]));
      }
    }
  }
  // Undo the table isomorphism. An all-zero z stays all-zero, so the
  // identity survives the rescale.
  acc.z = FeMul(acc.z, globalz);
  return acc;
}

// u1*G + u2*P — the whole cost of a verify/recover. The variable point
// takes the GLV path (~129 shared doublings); G's contribution then folds
// into the same accumulator through the fixed-base comb, which needs no
// doublings at all.
Jacobian DoubleScalarMul(const U256& u1, const U256& u2, const Jacobian& p) {
  Jacobian acc = JacScalarMulFast(p, u2);
  if (!u1.IsZero()) {
    const FixedBaseTable& table = GetFixedBaseTable();
    for (int w = 0; w < kCombWindows; ++w) {
      uint32_t digit =
          static_cast<uint32_t>(u1.limb(w / 8) >> ((w % 8) * 8)) & 0xFF;
      if (digit != 0) acc = JacAddMixed(acc, table.pts[w][digit - 1]);
    }
  }
  return acc;
}

// Backend dispatchers for the generic helpers used by point decompression
// and affine normalization.
U256 FieldSqrt(const U256& a) {
  return UseFast() ? FieldSqrtFastImpl(a) : ref::FieldSqrt(a);
}

U256 ScalarInverse(const U256& a) {
  return UseFast() ? ModInverseDivsteps(a, kN) : ModInverse(a, kN);
}

}  // namespace

void SetBackend(Backend backend) {
  g_backend.store(backend, std::memory_order_relaxed);
}

Backend GetBackend() { return g_backend.load(std::memory_order_relaxed); }

namespace internal {

U256 FieldMul(const U256& a, const U256& b) {
  return onoff::secp256k1::FieldMul(a, b);
}
U256 FieldSqr(const U256& a) { return onoff::secp256k1::FieldSqr(a); }
U256 FieldSqrReference(const U256& a) { return ref::FieldSqr(a); }
U256 FieldInvFast(const U256& a) { return FieldInvFastImpl(a); }
U256 FieldInvReference(const U256& a) { return ModInverse(a, kP); }
U256 FieldSqrtFast(const U256& a) { return FieldSqrtFastImpl(a); }
U256 FieldSqrtReference(const U256& a) { return ref::FieldSqrt(a); }
U256 ScalarInvFast(const U256& a) { return ModInverseDivsteps(a, kN); }
U256 ScalarInvReference(const U256& a) { return ModInverse(a, kN); }
bool GlvEnabled() { return GetGlv().ok; }

}  // namespace internal

const U256& FieldPrime() {
  static const U256 p = kP;
  return p;
}

const U256& GroupOrder() {
  static const U256 n = kN;
  return n;
}

const AffinePoint& Generator() { return kG; }

bool IsOnCurve(const AffinePoint& pt) {
  if (pt.infinity) return true;
  if (pt.x >= kP || pt.y >= kP) return false;
  U256 lhs = FieldSqr(pt.y);
  U256 rhs = FieldAdd(FieldMul(FieldSqr(pt.x), pt.x), U256(7));
  return lhs == rhs;
}

AffinePoint Add(const AffinePoint& a, const AffinePoint& b) {
  if (!UseFast()) {
    return ref::ToAffine(ref::JacAdd(ref::ToJacobian(a), ref::ToJacobian(b)));
  }
  return ToAffineFast(JacAdd(ToJacobian(a), ToJacobian(b)));
}

AffinePoint ScalarMul(const AffinePoint& pt, const U256& scalar) {
  U256 k = scalar % kN;
  if (!UseFast()) {
    return ref::ToAffine(ref::JacScalarMul(ref::ToJacobian(pt), k));
  }
  return ToAffineFast(JacScalarMulFast(ToJacobian(pt), k));
}

AffinePoint ScalarBaseMul(const U256& k) {
  U256 reduced = k % kN;
  if (!UseFast()) {
    return ref::ToAffine(ref::JacScalarMul(ref::ToJacobian(kG), reduced));
  }
  return ToAffineFast(ScalarBaseMulFast(reduced));
}

Bytes Signature::Serialize() const {
  Bytes out = r.ToBytes();
  Bytes sb = s.ToBytes();
  Append(out, sb);
  out.push_back(v);
  return out;
}

Result<Signature> Signature::Deserialize(BytesView data) {
  if (data.size() != 65) {
    return Status::InvalidArgument("signature must be 65 bytes (r||s||v)");
  }
  Signature sig;
  sig.r = U256::FromBigEndianTruncating(data.subspan(0, 32));
  sig.s = U256::FromBigEndianTruncating(data.subspan(32, 32));
  sig.v = data[64];
  return sig;
}

Result<PrivateKey> PrivateKey::FromScalar(const U256& d) {
  if (d.IsZero() || d >= kN) {
    return Status::InvalidArgument("private key scalar out of range [1, n-1]");
  }
  return PrivateKey(d);
}

Result<PrivateKey> PrivateKey::FromHex(std::string_view hex) {
  ONOFF_ASSIGN_OR_RETURN(U256 d, U256::FromHex(hex));
  return FromScalar(d);
}

PrivateKey PrivateKey::FromSeed(std::string_view seed) {
  Bytes material = BytesOf(seed);
  for (;;) {
    Hash32 h = Keccak256(material);
    U256 d = U256::FromBigEndianTruncating(BytesView(h.data(), h.size()));
    if (!d.IsZero() && d < kN) return PrivateKey(d);
    material.assign(h.begin(), h.end());
  }
}

AffinePoint PrivateKey::PublicKey() const { return ScalarBaseMul(d_); }

Address PrivateKey::EthAddress() const {
  return PublicKeyToAddress(PublicKey());
}

Bytes SerializePoint(const AffinePoint& pt, bool compressed) {
  Bytes out;
  if (compressed) {
    out.push_back(pt.y.Bit(0) ? 0x03 : 0x02);
    Bytes x = pt.x.ToBytes();
    Append(out, x);
  } else {
    out.push_back(0x04);
    Bytes x = pt.x.ToBytes();
    Bytes y = pt.y.ToBytes();
    Append(out, x);
    Append(out, y);
  }
  return out;
}

Result<AffinePoint> ParsePoint(BytesView data) {
  if (data.size() == 65 && data[0] == 0x04) {
    AffinePoint pt;
    pt.x = U256::FromBigEndianTruncating(data.subspan(1, 32));
    pt.y = U256::FromBigEndianTruncating(data.subspan(33, 32));
    if (!IsOnCurve(pt)) {
      return Status::VerificationFailed("point not on curve");
    }
    return pt;
  }
  if (data.size() == 33 && (data[0] == 0x02 || data[0] == 0x03)) {
    AffinePoint pt;
    pt.x = U256::FromBigEndianTruncating(data.subspan(1, 32));
    if (pt.x >= kP) {
      return Status::VerificationFailed("x exceeds field prime");
    }
    U256 y2 = FieldAdd(FieldMul(FieldSqr(pt.x), pt.x), U256(7));
    U256 y = FieldSqrt(y2);
    if (FieldSqr(y) != y2) {
      return Status::VerificationFailed("x is not on the curve");
    }
    bool want_odd = data[0] == 0x03;
    pt.y = (y.Bit(0) == want_odd) ? y : FieldNeg(y);
    return pt;
  }
  return Status::VerificationFailed("malformed SEC1 point encoding");
}

Address PublicKeyToAddress(const AffinePoint& pub) {
  Bytes xy = pub.x.ToBytes();
  Bytes yb = pub.y.ToBytes();
  Append(xy, yb);
  Hash32 h = Keccak256(xy);
  Address out;
  auto r = Address::FromBytes(BytesView(h.data() + 12, 20));
  assert(r.ok());
  return *r;
}

namespace {

// RFC 6979 deterministic nonce generation (qlen = hlen = 256 bits).
// Invokes `accept` for each candidate; stops at the first accepted k.
template <typename AcceptFn>
U256 Rfc6979Nonce(const Hash32& digest, const U256& privkey, AcceptFn accept) {
  Bytes x = privkey.ToBytes();
  // bits2octets: digest interpreted mod n.
  U256 z = U256::FromBigEndianTruncating(BytesView(digest.data(), 32)) % kN;
  Bytes h1 = z.ToBytes();

  std::array<uint8_t, 32> v;
  std::array<uint8_t, 32> k;
  v.fill(0x01);
  k.fill(0x00);

  auto hmac = [&](std::initializer_list<BytesView> parts) {
    Bytes msg;
    for (const auto& p : parts) Append(msg, p);
    return HmacSha256(BytesView(k.data(), 32), msg);
  };

  const uint8_t zero = 0x00;
  const uint8_t one = 0x01;
  k = hmac({BytesView(v.data(), 32), BytesView(&zero, 1), BytesView(x), BytesView(h1)});
  v = HmacSha256(BytesView(k.data(), 32), BytesView(v.data(), 32));
  k = hmac({BytesView(v.data(), 32), BytesView(&one, 1), BytesView(x), BytesView(h1)});
  v = HmacSha256(BytesView(k.data(), 32), BytesView(v.data(), 32));

  for (;;) {
    v = HmacSha256(BytesView(k.data(), 32), BytesView(v.data(), 32));
    U256 candidate = U256::FromBigEndianTruncating(BytesView(v.data(), 32));
    if (!candidate.IsZero() && candidate < kN && accept(candidate)) {
      return candidate;
    }
    k = hmac({BytesView(v.data(), 32), BytesView(&zero, 1)});
    v = HmacSha256(BytesView(k.data(), 32), BytesView(v.data(), 32));
  }
}

}  // namespace

Result<Signature> Sign(const Hash32& digest, const PrivateKey& key) {
  static obs::Counter* sign_ops = obs::GetCounterOrNull("crypto.sign_ops");
  if (sign_ops != nullptr) sign_ops->Inc();
  U256 z = U256::FromBigEndianTruncating(BytesView(digest.data(), 32)) % kN;
  Signature sig;
  bool y_odd = false;

  Rfc6979Nonce(digest, key.scalar(), [&](const U256& k) {
    AffinePoint r_point = ScalarBaseMul(k);
    // Reject the (astronomically rare) r >= n case so the recovery id stays
    // in {0, 1} and v in {27, 28}, which is all Ethereum accepts.
    if (r_point.x >= kN) return false;
    U256 r = r_point.x;
    if (r.IsZero()) return false;
    U256 kinv = ScalarInverse(k);
    U256 rd = U256::MulMod(r, key.scalar(), kN);
    U256 s = U256::MulMod(kinv, U256::AddMod(z, rd, kN), kN);
    if (s.IsZero()) return false;
    sig.r = r;
    sig.s = s;
    y_odd = r_point.y.Bit(0);
    return true;
  });

  // Enforce low-s (Ethereum/BIP-62); flipping s mirrors R, flipping parity.
  static const U256 kHalfN = kN >> 1;
  uint8_t recid = y_odd ? 1 : 0;
  if (sig.s > kHalfN) {
    sig.s = kN - sig.s;
    recid ^= 1;
  }
  sig.v = static_cast<uint8_t>(27 + recid);
  return sig;
}

bool Verify(const Hash32& digest, const Signature& sig,
            const AffinePoint& pub) {
  static obs::Counter* verify_ops = obs::GetCounterOrNull("crypto.verify_ops");
  if (verify_ops != nullptr) verify_ops->Inc();
  if (sig.r.IsZero() || sig.r >= kN || sig.s.IsZero() || sig.s >= kN) {
    return false;
  }
  if (!IsOnCurve(pub) || pub.infinity) return false;
  U256 z = U256::FromBigEndianTruncating(BytesView(digest.data(), 32)) % kN;
  U256 sinv = ScalarInverse(sig.s);
  U256 u1 = U256::MulMod(z, sinv, kN);
  U256 u2 = U256::MulMod(sig.r, sinv, kN);
  AffinePoint res =
      UseFast()
          ? ToAffineFast(DoubleScalarMul(u1, u2, ToJacobian(pub)))
          : ref::ToAffine(
                ref::JacAdd(ref::JacScalarMul(ref::ToJacobian(kG), u1),
                            ref::JacScalarMul(ref::ToJacobian(pub), u2)));
  if (res.infinity) return false;
  return res.x % kN == sig.r;
}

Result<AffinePoint> Recover(const Hash32& digest, uint8_t v, const U256& r,
                            const U256& s) {
  static obs::Counter* recover_ops =
      obs::GetCounterOrNull("crypto.recover_ops");
  if (recover_ops != nullptr) recover_ops->Inc();
  if (v != 27 && v != 28) {
    return Status::VerificationFailed("recovery id must be 27 or 28");
  }
  if (r.IsZero() || r >= kN || s.IsZero() || s >= kN) {
    return Status::VerificationFailed("signature scalar out of range");
  }
  // R candidate: x = r (recid < 2), y parity chosen by v.
  U256 x = r;
  if (x >= kP) return Status::VerificationFailed("r exceeds field prime");
  U256 y2 = FieldAdd(FieldMul(FieldSqr(x), x), U256(7));
  U256 y = FieldSqrt(y2);
  if (FieldSqr(y) != y2) {
    return Status::VerificationFailed("r is not an x-coordinate on the curve");
  }
  bool want_odd = (v == 28);
  if (y.Bit(0) != want_odd) y = FieldNeg(y);
  AffinePoint r_point{x, y, false};

  U256 z = U256::FromBigEndianTruncating(BytesView(digest.data(), 32)) % kN;
  U256 rinv = ScalarInverse(r);
  // Q = r^{-1} (s*R - z*G)
  U256 u1 = U256::MulMod(kN - z % kN, rinv, kN);  // -z/r mod n
  U256 u2 = U256::MulMod(s, rinv, kN);
  AffinePoint pub =
      UseFast()
          ? ToAffineFast(DoubleScalarMul(u1, u2, ToJacobian(r_point)))
          : ref::ToAffine(
                ref::JacAdd(ref::JacScalarMul(ref::ToJacobian(kG), u1),
                            ref::JacScalarMul(ref::ToJacobian(r_point), u2)));
  if (pub.infinity) {
    return Status::VerificationFailed("recovered point at infinity");
  }
  return pub;
}

Result<Address> RecoverAddress(const Hash32& digest, uint8_t v, const U256& r,
                               const U256& s) {
  ONOFF_ASSIGN_OR_RETURN(AffinePoint pub, Recover(digest, v, r, s));
  return PublicKeyToAddress(pub);
}

}  // namespace onoff::secp256k1
